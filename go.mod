module lazycm

go 1.22
