package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lazycm/internal/triage"
)

const fuelCrasher = `func f(a, b, p) {
entry:
  br p t e
t:
  x = a + b
  jmp j
e:
  y = a + b
  jmp j
j:
  z = a + b
  ret z
}
`

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunPromoteThenCheck(t *testing.T) {
	dir := t.TempDir()
	d := triage.Directives{Mode: "lcm", Fuel: 1}
	write(t, dir, "raw.ir", "# replay: "+d.String()+"\n\n"+fuelCrasher)

	if code := run([]string{"-dir", dir, "-q"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("promote exit = %d, want 0", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "crash-lcm-run-fuel.ir")); err != nil {
		t.Fatalf("promotion missing: %v", err)
	}
	if code := run([]string{"-dir", dir, "-check"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("check exit = %d, want 0 on a curated corpus", code)
	}

	// A second witness of the same defect makes the corpus dirty: check
	// must fail until it is promoted away.
	variant := strings.ReplaceAll(fuelCrasher, "func f(", "func other(")
	write(t, dir, "dup.ir", "# replay: "+d.String()+"\n\n"+variant)
	if code := run([]string{"-dir", dir, "-check"}, os.Stdout, os.Stderr); code != 1 {
		t.Fatalf("check exit = %d, want 1 on a duplicate", code)
	}
	if code := run([]string{"-dir", dir, "-q"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("re-promote exit = %d", code)
	}
	if code := run([]string{"-dir", dir, "-check"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("check exit after re-promote = %d, want 0", code)
	}
}

func TestRunBadDir(t *testing.T) {
	if code := run([]string{"-dir", "/no/such/dir"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
