// Command lcmtriage curates a crasher corpus: it replays, minimizes,
// deduplicates and promotes the raw captures the lcmd quarantine
// accumulates, and audits the promoted corpus in CI.
//
// Usage:
//
//	lcmtriage [flags]
//
// Modes:
//
//	(default)   promote: replay every *.ir capture in -dir, minimize the
//	            ones that still reproduce, dedupe them by failure
//	            signature, and write one crash-<signature>.ir per defect
//	            to -out (with a README entry); raw captures are deleted
//	            unless -keep is set
//	-check      audit only: fail if any reproducing crasher is not
//	            minimal, two crashers share a signature, or a recorded
//	            "# signature:" sidecar disagrees with what replays
//
// Flags:
//
//	-dir D      directory of crasher captures (default testdata/crashers)
//	-out D      promotion target directory (default: same as -dir)
//	-check      audit without modifying anything
//	-budget N   reducer replay budget per crasher (default 400)
//	-timeout D  wall-clock bound per replay (default 2s)
//	-keep       keep raw captures after promotion
//	-q          suppress progress output
//
// Exit status: 0 on success, 1 when -check finds issues, 2 on usage or
// I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lazycm/internal/triage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lcmtriage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "testdata/crashers", "directory of crasher captures")
	out := fs.String("out", "", "promotion target directory (default: same as -dir)")
	check := fs.Bool("check", false, "audit the corpus without modifying it")
	budget := fs.Int("budget", triage.DefaultOracleBudget, "reducer replay budget per crasher")
	timeout := fs.Duration("timeout", triage.DefaultTimeout, "wall-clock bound per replay")
	keep := fs.Bool("keep", false, "keep raw captures after promotion")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if st, err := os.Stat(*dir); err != nil || !st.IsDir() {
		fmt.Fprintf(stderr, "lcmtriage: %s is not a directory\n", *dir)
		return 2
	}

	if *check {
		issues, notes, err := triage.Check(*dir, triage.CheckOptions{Budget: *budget, Timeout: *timeout})
		if err != nil {
			fmt.Fprintf(stderr, "lcmtriage: %v\n", err)
			return 2
		}
		for _, n := range notes {
			fmt.Fprintf(stdout, "note: %s\n", n)
		}
		for _, is := range issues {
			fmt.Fprintf(stdout, "FAIL: %s\n", is)
		}
		if len(issues) > 0 {
			fmt.Fprintf(stdout, "lcmtriage: %d issue(s) in %s\n", len(issues), *dir)
			return 1
		}
		fmt.Fprintf(stdout, "lcmtriage: %s is clean\n", *dir)
		return 0
	}

	opt := triage.PromoteOptions{OutDir: *out, Budget: *budget, Timeout: *timeout, Keep: *keep}
	if !*quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}
	proms, err := triage.Promote(*dir, opt)
	if err != nil {
		fmt.Fprintf(stderr, "lcmtriage: %v\n", err)
		return 2
	}
	promoted, duplicates := 0, 0
	for _, p := range proms {
		if p.DupOf != "" {
			duplicates++
		} else {
			promoted++
		}
	}
	fmt.Fprintf(stdout, "lcmtriage: %d promoted, %d duplicates collapsed\n", promoted, duplicates)
	return 0
}
