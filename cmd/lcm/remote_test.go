package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// optimizeWire mirrors lcmd's POST /optimize request body. cmd/lcm and
// cmd/lcmd are both package main, so the real server cannot be imported
// here; this test stand-in runs the same pipeline through the same
// printer, which is exactly the property the round-trip test locks in.
type optimizeWire struct {
	Program   string `json:"program"`
	Mode      string `json:"mode"`
	Fuel      int    `json:"fuel"`
	TimeoutMS int64  `json:"timeout_ms"`
	Verify    bool   `json:"verify"`
	Canonical bool   `json:"canonical"`
}

// remoteTestServer serves lcmd's /optimize contract backed directly by
// pipeline.Run. front, when non-nil, sees every request first with its
// 1-based attempt number and may handle it (return true) — used to
// script sheds and fixed responses in front of the real optimizer.
func remoteTestServer(t *testing.T, front func(w http.ResponseWriter, attempt int64) bool) *httptest.Server {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if front != nil && front(w, attempts.Add(1)) {
			return
		}
		var req optimizeWire
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeWire(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "kind": "decode"})
			return
		}
		mode := req.Mode
		if mode == "" {
			mode = "lcm"
		}
		pass, ok := pipeline.ForMode(mode)
		if !ok {
			writeWire(w, http.StatusBadRequest, map[string]any{"error": "unknown mode " + mode, "kind": "mode"})
			return
		}
		fns, err := textir.Parse(req.Program)
		if err != nil {
			writeWire(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "kind": "parse"})
			return
		}
		resp := map[string]any{}
		var outs []string
		var diags []string
		fellBack := false
		for _, f := range fns {
			res, err := pipeline.Run(f, []pipeline.Pass{pass}, pipeline.Options{
				Fuel: req.Fuel, Canonical: req.Canonical, Verify: req.Verify,
			})
			if err != nil {
				status, kind := http.StatusInternalServerError, "panic"
				if errors.Is(err, pipeline.ErrInvalidInput) {
					status, kind = http.StatusBadRequest, "invalid"
				}
				writeWire(w, status, map[string]any{"error": f.Name + ": " + err.Error(), "kind": kind})
				return
			}
			outs = append(outs, res.F.String())
			if res.FellBack() {
				fellBack = true
				diags = append(diags, res.Diagnostics()...)
			}
		}
		resp["program"] = strings.Join(outs, "\n") // textir.PrintFunctions shape
		resp["fell_back"] = fellBack
		resp["diagnostics"] = diags
		writeWire(w, http.StatusOK, resp)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func writeWire(w http.ResponseWriter, status int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// TestRemoteRoundTripByteIdentical is the acceptance gate for -remote:
// for every testdata input and a multi-function module, optimizing
// through the wire produces byte-for-byte the output of optimizing
// locally, with the same exit code.
func TestRemoteRoundTripByteIdentical(t *testing.T) {
	ts := remoteTestServer(t, nil)
	inputs, err := filepath.Glob(filepath.Join(testdata, "*.ir"))
	if err != nil || len(inputs) == 0 {
		t.Fatalf("no testdata inputs: %v", err)
	}
	// A multi-function module exercises the joined-printer path.
	var module strings.Builder
	for _, in := range inputs[:2] {
		src, err := os.ReadFile(in)
		if err != nil {
			t.Fatal(err)
		}
		module.Write(src)
	}

	type input struct {
		name  string
		args  []string
		stdin string
	}
	cases := []input{{name: "module", stdin: module.String()}}
	for _, in := range inputs {
		cases = append(cases, input{name: filepath.Base(in), args: []string{in}})
	}
	for _, mode := range []string{"lcm", "bcm", "gcse"} {
		for _, tc := range cases {
			t.Run(mode+"/"+tc.name, func(t *testing.T) {
				var local, remote strings.Builder
				localCode, err := run(append([]string{"-mode", mode}, tc.args...),
					strings.NewReader(tc.stdin), &local)
				if err != nil {
					t.Fatalf("local run: %v", err)
				}
				remoteCode, err := run(append([]string{"-mode", mode, "-remote", ts.URL}, tc.args...),
					strings.NewReader(tc.stdin), &remote)
				if err != nil {
					t.Fatalf("remote run: %v", err)
				}
				if localCode != remoteCode {
					t.Errorf("exit codes differ: local %d, remote %d", localCode, remoteCode)
				}
				if local.String() != remote.String() {
					t.Errorf("remote output differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
						local.String(), remote.String())
				}
			})
		}
	}
}

// TestRemoteRejectsLocalOnlyFlags: display and execution flags need the
// in-process analysis and must be refused up front, before any input is
// read or any request sent.
func TestRemoteRejectsLocalOnlyFlags(t *testing.T) {
	for _, flag := range []string{"-predicates", "-dot", "-stats", "-simplify"} {
		code, err := run([]string{flag, "-remote", "http://127.0.0.1:0"},
			strings.NewReader(diamondSrc), &strings.Builder{})
		if code != exitInvalid || err == nil {
			t.Errorf("%s with -remote: code %d err %v, want %d and an error", flag, code, err, exitInvalid)
		}
	}
	code, err := run([]string{"-run", "1,2", "-remote", "http://127.0.0.1:0"},
		strings.NewReader(diamondSrc), &strings.Builder{})
	if code != exitInvalid || err == nil {
		t.Errorf("-run with -remote: code %d err %v, want %d and an error", code, err, exitInvalid)
	}
}

const diamondSrc = "func f(a, b, c) {\nentry:\n  br c then else\nthen:\n  x = a + b\n  jmp join\nelse:\n  jmp join\njoin:\n  y = a + b\n  ret y\n}\n"

// TestRemoteFleetFailover: a comma-separated -remote list engages the
// fleet client; with the first endpoint dead the call fails over to the
// live replica and the output stays byte-identical to a local run.
func TestRemoteFleetFailover(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	live := remoteTestServer(t, nil)

	var local, remote strings.Builder
	if _, err := run([]string{"-mode", "lcm"}, strings.NewReader(diamondSrc), &local); err != nil {
		t.Fatal(err)
	}
	endpoints := dead.URL + "," + live.URL
	code, err := run([]string{"-mode", "lcm", "-remote", endpoints},
		strings.NewReader(diamondSrc), &remote)
	if code != exitOptimized || err != nil {
		t.Fatalf("fleet run with dead first endpoint: code %d err %v", code, err)
	}
	if local.String() != remote.String() {
		t.Errorf("failover output differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String(), remote.String())
	}
}

// TestRemoteTerminalErrors: server-side terminal classifications map to
// the CLI's exit-code contract — parse failures to exitInvalid, expired
// deadlines to exitDeadline — without retrying.
func TestRemoteTerminalErrors(t *testing.T) {
	ts := remoteTestServer(t, nil)
	code, err := run([]string{"-remote", ts.URL}, strings.NewReader("this is not IR"), &strings.Builder{})
	if code != exitInvalid || err == nil {
		t.Errorf("garbage program: code %d err %v, want %d and an error", code, err, exitInvalid)
	}

	var attempts atomic.Int64
	dead := remoteTestServer(t, func(w http.ResponseWriter, n int64) bool {
		attempts.Store(n)
		writeWire(w, http.StatusGatewayTimeout, map[string]any{
			"error": "deadline exceeded during optimization", "kind": "deadline", "canceled": true,
		})
		return true
	})
	code, err = run([]string{"-remote", dead.URL}, strings.NewReader(diamondSrc), &strings.Builder{})
	if code != exitDeadline || err == nil {
		t.Errorf("server deadline: code %d err %v, want %d and an error", code, err, exitDeadline)
	}
	if attempts.Load() != 1 {
		t.Errorf("terminal 504 was retried: %d attempts", attempts.Load())
	}
}

// TestRemoteFallback: a fell-back remote result honors the -fallback
// contract — annotated original with exitFellBack when asked for, a hard
// error otherwise.
func TestRemoteFallback(t *testing.T) {
	ts := remoteTestServer(t, func(w http.ResponseWriter, _ int64) bool {
		writeWire(w, http.StatusOK, map[string]any{
			"program":     diamondSrc,
			"fell_back":   true,
			"diagnostics": []string{"pass lcm: result failed validation"},
		})
		return true
	})
	var out strings.Builder
	code, err := run([]string{"-remote", ts.URL, "-fallback"}, strings.NewReader(diamondSrc), &out)
	if code != exitFellBack || err != nil {
		t.Fatalf("fallback run: code %d err %v, want %d and nil", code, err, exitFellBack)
	}
	if !strings.HasPrefix(out.String(), "# fallback: pass lcm: result failed validation\n") {
		t.Errorf("missing fallback annotation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "func f(a, b, c)") {
		t.Errorf("fallback output missing the original program:\n%s", out.String())
	}

	code, err = run([]string{"-remote", ts.URL}, strings.NewReader(diamondSrc), &strings.Builder{})
	if code != exitError || err == nil {
		t.Errorf("fallback without -fallback: code %d err %v, want %d and an error", code, err, exitError)
	}
}

// TestRemoteRetriesThroughShedding: the CLI rides the client's retry
// contract through a 429 (with a millisecond hint) and a 503, then
// produces output byte-identical to a local run.
func TestRemoteRetriesThroughShedding(t *testing.T) {
	ts := remoteTestServer(t, func(w http.ResponseWriter, attempt int64) bool {
		switch attempt {
		case 1:
			writeWire(w, http.StatusTooManyRequests, map[string]any{
				"error": "server is shedding load", "kind": "overload", "retry_after_ms": 1,
			})
			return true
		case 2:
			writeWire(w, http.StatusServiceUnavailable, map[string]any{
				"error": "server is draining", "kind": "draining", "retry_after_ms": 1,
			})
			return true
		}
		return false
	})
	var local, remote strings.Builder
	if _, err := run(nil, strings.NewReader(diamondSrc), &local); err != nil {
		t.Fatal(err)
	}
	code, err := run([]string{"-remote", ts.URL}, strings.NewReader(diamondSrc), &remote)
	if code != exitOptimized || err != nil {
		t.Fatalf("remote run through sheds: code %d err %v", code, err)
	}
	if local.String() != remote.String() {
		t.Errorf("post-retry output differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String(), remote.String())
	}
}
