package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

const testdata = "../../testdata"

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	code, err := run(args, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if code != exitOptimized {
		t.Fatalf("run(%v): exit code %d", args, code)
	}
	return out.String()
}

// TestGolden locks the CLI output for the whole testdata corpus across all
// modes. Regenerate with: go test ./cmd/lcm -update
func TestGolden(t *testing.T) {
	inputs, err := filepath.Glob(filepath.Join(testdata, "*.ir"))
	if err != nil || len(inputs) == 0 {
		t.Fatalf("no testdata inputs: %v", err)
	}
	modes := []string{"lcm", "alcm", "bcm", "mr", "gcse", "sr"}
	for _, in := range inputs {
		base := strings.TrimSuffix(filepath.Base(in), ".ir")
		for _, mode := range modes {
			t.Run(base+"/"+mode, func(t *testing.T) {
				got := runCLI(t, "-mode", mode, "-stats", in)
				golden := filepath.Join(testdata, "golden", base+"."+mode+".out")
				if *update {
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
				}
			})
		}
	}
}

func TestStdinInput(t *testing.T) {
	var out strings.Builder
	src := "func f(a) {\ne:\n  x = a + 1\n  ret x\n}\n"
	if _, err := run(nil, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "x = a + 1") {
		t.Errorf("output missing program:\n%s", out.String())
	}
}

func TestRunFlagEquivalence(t *testing.T) {
	out := runCLI(t, "-run", "3,4,1", filepath.Join(testdata, "diamond.ir"))
	if !strings.Contains(out, "# original:") || !strings.Contains(out, "# transformed:") {
		t.Errorf("missing run report:\n%s", out)
	}
	if !strings.Contains(out, "ret 7") {
		t.Errorf("wrong value:\n%s", out)
	}
}

func TestPredicatesFlag(t *testing.T) {
	out := runCLI(t, "-predicates", filepath.Join(testdata, "diamond.ir"))
	for _, want := range []string{"EARLIEST", "ISOLATED", "expression a + b"} {
		if !strings.Contains(out, want) {
			t.Errorf("predicates output missing %q:\n%s", want, out)
		}
	}
}

func TestDotFlag(t *testing.T) {
	out := runCLI(t, "-dot", filepath.Join(testdata, "diamond.ir"))
	if !strings.Contains(out, "digraph") {
		t.Errorf("not DOT output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus", filepath.Join(testdata, "diamond.ir")},
		{"a.ir", "b.ir"},
		{"/nonexistent/file.ir"},
		{"-run", "1,x", filepath.Join(testdata, "diamond.ir")},
	}
	for _, args := range cases {
		var out strings.Builder
		code, err := run(args, strings.NewReader(""), &out)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
		if code == exitOptimized {
			t.Errorf("run(%v) exit code 0, want nonzero", args)
		}
	}
}

func TestBadProgramRejected(t *testing.T) {
	var out strings.Builder
	code, err := run(nil, strings.NewReader("not a program"), &out)
	if err == nil {
		t.Error("garbage input accepted")
	}
	if code != exitInvalid {
		t.Errorf("exit code %d, want %d (invalid input)", code, exitInvalid)
	}
}

// TestInvalidModeNamesAllowedSet: the mode is rejected before any input
// is read, and the error names every accepted mode.
func TestInvalidModeNamesAllowedSet(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-mode", "bogus"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatal("bogus mode accepted")
	}
	if code != exitInvalid {
		t.Errorf("exit code %d, want %d", code, exitInvalid)
	}
	for _, m := range []string{"lcm", "alcm", "bcm", "mr", "gcse", "sr", "opt"} {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("error does not name mode %q: %v", m, err)
		}
	}
}

// TestFuelExhaustionExitCodes: a starved fixpoint fails the pass. Without
// -fallback that is an error; with it, the CLI emits the original
// function and exits with the distinct fell-back code.
func TestFuelExhaustionExitCodes(t *testing.T) {
	in := filepath.Join(testdata, "diamond.ir")
	var out strings.Builder
	code, err := run([]string{"-fuel", "1", in}, strings.NewReader(""), &out)
	if err == nil || code != exitError {
		t.Fatalf("starved run: code %d, err %v; want %d and error", code, err, exitError)
	}

	out.Reset()
	code, err = run([]string{"-fuel", "1", "-fallback", in}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitFellBack {
		t.Fatalf("exit code %d, want %d (fell back)", code, exitFellBack)
	}
	s := out.String()
	if !strings.Contains(s, "# fallback:") {
		t.Errorf("missing fallback diagnostic:\n%s", s)
	}
	// The emitted function is the original: the redundant computation in
	// join is still a binop, not a temp copy.
	if !strings.Contains(s, "y = a + b") {
		t.Errorf("fallback output is not the original function:\n%s", s)
	}
}

// TestTimeoutExitCodes: an expired -timeout yields the documented exit
// code 4, and with -fallback still emits the original function.
func TestTimeoutExitCodes(t *testing.T) {
	in := filepath.Join(testdata, "diamond.ir")
	var out strings.Builder
	code, err := run([]string{"-timeout", "1ns", in}, strings.NewReader(""), &out)
	if err == nil || code != exitDeadline {
		t.Fatalf("expired run: code %d, err %v; want %d and error", code, err, exitDeadline)
	}

	out.Reset()
	code, err = run([]string{"-timeout", "1ns", "-fallback", in}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitDeadline {
		t.Fatalf("exit code %d, want %d (deadline with fallback)", code, exitDeadline)
	}
	s := out.String()
	if !strings.Contains(s, "# fallback:") || !strings.Contains(s, "canceled") {
		t.Errorf("missing cancellation diagnostic:\n%s", s)
	}
	if !strings.Contains(s, "y = a + b") {
		t.Errorf("fallback output is not the original function:\n%s", s)
	}
}

// TestGenerousTimeoutStillOptimizes: a timeout that does not expire leaves
// the happy path untouched.
func TestGenerousTimeoutStillOptimizes(t *testing.T) {
	out := runCLI(t, "-timeout", "30s", filepath.Join(testdata, "diamond.ir"))
	if !strings.Contains(out, "ret") {
		t.Errorf("missing output:\n%s", out)
	}
}

// TestVerifyFlag: -verify re-checks the output and accepts a correct
// transformation.
func TestVerifyFlag(t *testing.T) {
	out := runCLI(t, "-verify", filepath.Join(testdata, "diamond.ir"))
	if !strings.Contains(out, "ret") {
		t.Errorf("missing output:\n%s", out)
	}
}

func TestOptMode(t *testing.T) {
	out := runCLI(t, "-mode", "opt", "-stats", filepath.Join(testdata, "diamond.ir"))
	if !strings.Contains(out, "rounds:") {
		t.Errorf("missing opt stats:\n%s", out)
	}
}

func TestParseArgs(t *testing.T) {
	got, err := parseArgs(" 1 , -2 ,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("parseArgs = %v, %v", got, err)
	}
	if _, err := parseArgs("1,,2"); err == nil {
		t.Error("empty field accepted")
	}
	if got, err := parseArgs(""); err != nil || got != nil {
		t.Errorf("empty string: %v, %v", got, err)
	}
}

func TestSimplifyFlag(t *testing.T) {
	// The running example's back-edge split block is empty after LCM and
	// must be folded away by -simplify.
	plain := runCLI(t, filepath.Join(testdata, "running.ir"))
	simplified := runCLI(t, "-simplify", filepath.Join(testdata, "running.ir"))
	if !strings.Contains(plain, ".split") {
		t.Fatalf("expected a split block without -simplify:\n%s", plain)
	}
	if strings.Contains(simplified, ".split") {
		t.Errorf("split block survived -simplify:\n%s", simplified)
	}
	// Semantics must be unchanged.
	out := runCLI(t, "-simplify", "-run", "7,4,0,5", filepath.Join(testdata, "running.ir"))
	if !strings.Contains(out, "# transformed:") {
		t.Errorf("run report missing:\n%s", out)
	}
}

func TestCanonicalFlag(t *testing.T) {
	src := "func f(a, b, p) {\nentry:\n  br p t e\nt:\n  x = a + b\n  jmp j\ne:\n  jmp j\nj:\n  y = b + a\n  ret y\n}\n"
	var plain, canon strings.Builder
	if _, err := run([]string{"-stats"}, strings.NewReader(src), &plain); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-stats", "-canonical"}, strings.NewReader(src), &canon); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "insertions: 2") {
		t.Errorf("lexical mode should see no partial redundancy here:\n%s", plain.String())
	}
	if !strings.Contains(canon.String(), "replacements: 2") {
		t.Errorf("canonical mode should merge a+b and b+a:\n%s", canon.String())
	}
}

func TestMultiFunctionInput(t *testing.T) {
	src := `
func one(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}
func two(p) {
e:
  z = p * 2
  ret z
}
`
	var out strings.Builder
	if _, err := run([]string{"-stats"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "func one(") || !strings.Contains(s, "func two(") {
		t.Errorf("multi-function output missing a function:\n%s", s)
	}
	if !strings.Contains(s, "replacements: 2") {
		t.Errorf("first function not optimized:\n%s", s)
	}
}
