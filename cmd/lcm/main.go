// Command lcm is the optimizer driver: it reads a function in the textual
// IR, applies a partial-redundancy-elimination transformation through the
// hardened pass pipeline, and prints the result.
//
// Usage:
//
//	lcm [flags] [file]
//
// With no file, the program is read from standard input.
//
// Flags:
//
//	-mode lcm|alcm|bcm|mr|gcse|sr|opt  transformation to apply (default lcm)
//	-predicates                  print the LCM predicate table per expression
//	-dot                         print the transformed CFG in Graphviz DOT
//	-stats                       print analysis and edit statistics
//	-simplify                    clean up the CFG after transforming
//	-canonical                   identify commutated commutative expressions
//	-run a,b,c                   run original and transformed on the given
//	                             arguments and print both outcomes
//	-fallback                    on pass failure, emit the original function
//	                             instead of failing
//	-fuel N                      node-visit budget per data-flow fixpoint
//	                             (0 = unlimited)
//	-timeout D                   wall-clock budget for the whole run
//	                             (e.g. 500ms, 2s; 0 = unlimited); fixpoints
//	                             poll the deadline at iteration boundaries
//	-verify                      re-check each transformed function against
//	                             its original on random inputs
//	-remote URL[,URL...]         send the program to lcmd server(s); a list
//	                             fails over across replicas client-side
//	                             instead of optimizing in-process, via the
//	                             hardened retrying client (honors the
//	                             server's Retry-After contract); display
//	                             flags that need local analysis
//	                             (-predicates, -dot, -stats, -run,
//	                             -simplify) are rejected
//
// Exit codes:
//
//	0  every function optimized
//	1  error (including pass failure without -fallback)
//	2  invalid input: unknown mode, unparsable program, or a function
//	   failing IR validation
//	3  a pass failed and -fallback emitted the original function
//	4  deadline exceeded: -timeout expired before the transformation
//	   finished (with -fallback the original function is still emitted)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"lazycm/internal/gcse"
	"lazycm/internal/graph"
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/lcmclient"
	"lazycm/internal/mr"
	"lazycm/internal/nodes"
	"lazycm/internal/opt"
	"lazycm/internal/pipeline"
	"lazycm/internal/props"
	"lazycm/internal/sr"
	"lazycm/internal/textir"
)

// Exit codes. Scripts can distinguish "optimized" from "survived on the
// fallback path" from "the input itself was bad".
const (
	exitOptimized = 0
	exitError     = 1
	exitInvalid   = 2
	exitFellBack  = 3
	exitDeadline  = 4
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcm:", err)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("lcm", flag.ContinueOnError)
	mode := fs.String("mode", "lcm", "transformation: lcm, alcm, bcm, mr, gcse, sr, or opt")
	predicates := fs.Bool("predicates", false, "print the LCM predicate table")
	dot := fs.Bool("dot", false, "print the transformed CFG in Graphviz DOT")
	stats := fs.Bool("stats", false, "print analysis and edit statistics")
	simplify := fs.Bool("simplify", false, "clean up the CFG after transforming (merge trivial blocks)")
	canonical := fs.Bool("canonical", false, "identify commutated expressions (a+b ≡ b+a) in lcm/alcm/bcm modes")
	runArgs := fs.String("run", "", "comma-separated integer arguments to execute with")
	fallback := fs.Bool("fallback", false, "on pass failure, emit the original function instead of failing")
	fuel := fs.Int("fuel", 0, "node-visit budget per data-flow fixpoint (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	verifyFlag := fs.Bool("verify", false, "re-check each transformed function against its original on random inputs")
	remote := fs.String("remote", "", "optimize via lcmd server(s) at this base URL (comma-separate several for client-side failover)")
	if err := fs.Parse(args); err != nil {
		return exitInvalid, err
	}

	// Validate the mode before touching any input, and name the allowed
	// set in the error.
	if _, ok := pipeline.ForMode(*mode); !ok {
		return exitInvalid, fmt.Errorf("unknown mode %q (valid: %s)", *mode, strings.Join(pipeline.ModeNames(), ", "))
	}
	if *remote != "" {
		for flagName, set := range map[string]bool{
			"-predicates": *predicates, "-dot": *dot, "-stats": *stats,
			"-simplify": *simplify, "-run": *runArgs != "",
		} {
			if set {
				return exitInvalid, fmt.Errorf("%s needs local analysis and cannot be combined with -remote", flagName)
			}
		}
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return exitError, fmt.Errorf("at most one input file expected")
	}
	if err != nil {
		return exitError, err
	}
	if *remote != "" {
		return runRemote(*remote, string(src), remoteOpts{
			mode: *mode, fuel: *fuel, timeout: *timeout,
			verify: *verifyFlag, canonical: *canonical, fallback: *fallback,
		}, stdout)
	}
	fns, err := textir.Parse(string(src))
	if err != nil {
		return exitInvalid, err
	}
	// One deadline covers the whole run, shared by every function: the
	// fixpoints inside each pass poll it at iteration boundaries.
	ctx := context.Context(nil)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		defer cancel()
	}
	code := exitOptimized
	for i, f := range fns {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		c, err := optimizeOne(f, opts{
			mode: *mode, predicates: *predicates, dot: *dot, stats: *stats,
			simplify: *simplify, canonical: *canonical, runArgs: *runArgs,
			fallback: *fallback, fuel: *fuel, verify: *verifyFlag, ctx: ctx,
		}, stdout)
		if err != nil {
			return c, fmt.Errorf("%s: %w", f.Name, err)
		}
		if c > code {
			code = c
		}
	}
	return code, nil
}

type opts struct {
	mode                             string
	predicates, dot, stats, simplify bool
	canonical                        bool
	runArgs                          string
	fallback                         bool
	fuel                             int
	verify                           bool
	ctx                              context.Context
}

type remoteOpts struct {
	mode      string
	fuel      int
	timeout   time.Duration
	verify    bool
	canonical bool
	fallback  bool
}

// optimizer is the client surface runRemote needs; both the single-
// and multi-endpoint clients satisfy it.
type optimizer interface {
	Optimize(context.Context, lcmclient.Request) (*lcmclient.Response, error)
}

// runRemote ships the whole program to an lcmd server through the
// hardened client and maps the service's outcome onto the CLI's exit
// codes. The server runs the same pipeline over the same printer, so a
// clean remote round trip is byte-identical to local optimization.
// A comma-separated endpoint list engages the fleet client: consistent-
// hash affinity, per-endpoint circuit breakers, failover across
// replicas — any replica's answer is the answer.
func runRemote(baseURL, src string, o remoteOpts, stdout io.Writer) (int, error) {
	var c optimizer = &lcmclient.Client{BaseURL: baseURL}
	if eps := splitEndpoints(baseURL); len(eps) > 1 {
		c = &lcmclient.MultiClient{Endpoints: eps}
	}
	resp, err := c.Optimize(context.Background(), lcmclient.Request{
		Program:   src,
		Mode:      o.mode,
		Fuel:      o.fuel,
		TimeoutMS: o.timeout.Milliseconds(),
		Verify:    o.verify,
		Canonical: o.canonical,
	})
	if err != nil {
		var term *lcmclient.TerminalError
		if errors.As(err, &term) {
			switch term.Kind {
			case "parse", "invalid", "mode":
				return exitInvalid, err
			case "deadline":
				return exitDeadline, err
			}
		}
		return exitError, err
	}
	if resp.FellBack {
		if !o.fallback {
			msg := "remote optimization fell back"
			if len(resp.Diagnostics) > 0 {
				msg = resp.Diagnostics[0]
			}
			return exitError, errors.New(msg)
		}
		for _, d := range resp.Diagnostics {
			fmt.Fprintln(stdout, "# fallback:", d)
		}
	}
	fmt.Fprint(stdout, resp.Program)
	if resp.FellBack {
		return exitFellBack, nil
	}
	return exitOptimized, nil
}

// splitEndpoints parses a comma-separated -remote value, trimming
// whitespace and trailing slashes.
func splitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func optimizeOne(f *ir.Function, o opts, stdout io.Writer) (int, error) {
	// The mode-specific transform runs as a pipeline pass so a panic, an
	// invalid result, or a busted fixpoint is contained; the statistics
	// are captured through the closure.
	var statLines []string
	var tempFor map[ir.Expr]string
	pass := pipeline.Pass{
		Name: o.mode,
		Run: func(g *ir.Function, po pipeline.Options) (*ir.Function, map[ir.Expr]string, error) {
			out, tf, lines, err := transform(g, o.mode, po)
			if err != nil {
				return nil, nil, err
			}
			statLines, tempFor = lines, tf
			return out, tf, nil
		},
	}
	res, err := pipeline.Run(f, []pipeline.Pass{pass}, pipeline.Options{
		Fuel: o.fuel, Canonical: o.canonical, Verify: o.verify, Ctx: o.ctx,
	})
	if err != nil {
		return exitInvalid, err
	}
	status := exitOptimized
	if res.FellBack() {
		// A deadline expiry is reported as its own exit code; it is not a
		// bug in a pass, just the caller's budget running out.
		if res.Canceled() {
			status = exitDeadline
		}
		if !o.fallback {
			return max(status, exitError), res.Failures[0]
		}
		// Degrade: ship the original function, annotated with what went
		// wrong, and report it in the exit code.
		if status != exitDeadline {
			status = exitFellBack
		}
		statLines, tempFor = nil, nil
		for _, d := range res.Diagnostics() {
			fmt.Fprintln(stdout, "# fallback:", d)
		}
	}
	out := res.F

	if o.simplify {
		out.Simplify()
	}
	if o.predicates {
		if err := printPredicates(stdout, f); err != nil {
			return exitError, err
		}
	}
	if o.dot {
		fmt.Fprint(stdout, graph.Dot(out))
	} else {
		fmt.Fprint(stdout, out.String())
	}
	if o.stats {
		for _, l := range statLines {
			fmt.Fprintln(stdout, "#", l)
		}
		if len(tempFor) > 0 {
			fmt.Fprintln(stdout, "# temporaries:")
			for _, e := range props.Collect(f).Exprs() {
				if t, ok := tempFor[e]; ok {
					fmt.Fprintf(stdout, "#   %s = %s\n", t, e)
				}
			}
		}
	}
	if o.runArgs != "" {
		argv, err := parseArgs(o.runArgs)
		if err != nil {
			return exitInvalid, err
		}
		before, _, err := interp.Run(f, interp.Options{Args: argv})
		if err != nil {
			return exitError, err
		}
		after, _, err := interp.Run(out, interp.Options{Args: argv})
		if err != nil {
			return exitError, err
		}
		fmt.Fprintf(stdout, "# original:    %s\n# transformed: %s\n", before, after)
		if !before.ObservablyEqual(after) {
			return exitError, fmt.Errorf("transformed program behaves differently")
		}
	}
	return status, nil
}

// transform applies one mode to f and reports the result, the inserted
// temporaries, and the human-readable statistics lines.
func transform(f *ir.Function, mode string, po pipeline.Options) (*ir.Function, map[ir.Expr]string, []string, error) {
	switch mode {
	case "lcm", "alcm", "bcm":
		m, _ := lcm.ParseMode(mode)
		res, err := lcm.TransformOpts(f, m, lcm.Options{Canonical: po.Canonical, Fuel: po.Fuel, Ctx: po.Ctx})
		if err != nil {
			return nil, nil, nil, err
		}
		lines := []string{
			fmt.Sprintf("mode: %s", res.Mode),
			fmt.Sprintf("insertions: %d, replacements: %d, critical edges split: %d",
				res.Inserted, res.Replaced, res.EdgesSplit),
			fmt.Sprintf("static computations: %d before, %d after",
				lcm.StaticComputations(f), lcm.StaticComputations(res.F)),
			fmt.Sprintf("analysis vector ops: %d", res.Analysis.TotalVectorOps()),
		}
		for _, s := range res.Analysis.Stats {
			lines = append(lines, "  "+s.String())
		}
		return res.F, res.TempFor, lines, nil
	case "mr":
		res, err := mr.TransformOpts(f, mr.Options{Fuel: po.Fuel, Ctx: po.Ctx})
		if err != nil {
			return nil, nil, nil, err
		}
		lines := []string{
			"mode: Morel–Renvoise",
			fmt.Sprintf("insertions: %d, deletions: %d, saves: %d", res.Inserted, res.Deleted, res.Saved),
			fmt.Sprintf("analysis vector ops: %d (bidirectional passes: %d)",
				res.TotalVectorOps(), res.Bidir.Passes),
		}
		return res.F, res.TempFor, lines, nil
	case "sr":
		res, err := sr.Transform(f)
		if err != nil {
			return nil, nil, nil, err
		}
		lines := []string{
			"mode: strength reduction",
			fmt.Sprintf("reduced: %d, recurrence updates: %d, preheaders: %d",
				res.Reduced, res.Updates, res.Preheaders),
		}
		return res.F, nil, lines, nil
	case "gcse":
		res, err := gcse.TransformOpts(f, gcse.Options{Fuel: po.Fuel, Ctx: po.Ctx})
		if err != nil {
			return nil, nil, nil, err
		}
		lines := []string{
			"mode: GCSE",
			fmt.Sprintf("replacements: %d, saves: %d", res.Replaced, res.Saved),
		}
		return res.F, res.TempFor, lines, nil
	case "opt":
		res, err := opt.PipelineOpts(f, opt.Options{Fuel: po.Fuel, Ctx: po.Ctx})
		if err != nil {
			return nil, nil, nil, err
		}
		lines := []string{
			"mode: opt (LCM + copy propagation + DCE to fixpoint)",
			fmt.Sprintf("rounds: %d", len(res.Rounds)),
		}
		return res.F, nil, lines, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown mode %q", mode)
}

func parseArgs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -run argument %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// printPredicates dumps the full LCM predicate table of f (after critical
// edge splitting), one section per candidate expression.
func printPredicates(w io.Writer, f *ir.Function) error {
	clone := f.Clone()
	graph.SplitCriticalEdges(clone)
	u := props.Collect(clone)
	g := nodes.Build(clone, u)
	a, err := lcm.Analyze(g)
	if err != nil {
		return err
	}
	mark := func(b bool) byte {
		if b {
			return 'X'
		}
		return '.'
	}
	for e := 0; e < u.Size(); e++ {
		fmt.Fprintf(w, "# expression %s\n", u.Expr(e))
		fmt.Fprintf(w, "# %-30s %-4s %-6s %-5s %-5s %-8s %-5s %-6s %-8s\n",
			"node", "COMP", "TRANSP", "DSAFE", "USAFE", "EARLIEST", "DELAY", "LATEST", "ISOLATED")
		for id := 0; id < g.NumNodes(); id++ {
			fmt.Fprintf(w, "# %-30s %-4c %-6c %-5c %-5c %-8c %-5c %-6c %-8c\n",
				g.Nodes[id].String(),
				mark(g.Comp.Get(id, e)), mark(g.Transp.Get(id, e)),
				mark(a.DSafe.Get(id, e)), mark(a.USafe.Get(id, e)),
				mark(a.Earliest.Get(id, e)), mark(a.Delay.Get(id, e)),
				mark(a.Latest.Get(id, e)), mark(a.Isolated.Get(id, e)))
		}
	}
	return nil
}
