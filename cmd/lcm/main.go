// Command lcm is the optimizer driver: it reads a function in the textual
// IR, applies a partial-redundancy-elimination transformation, and prints
// the result.
//
// Usage:
//
//	lcm [flags] [file]
//
// With no file, the program is read from standard input.
//
// Flags:
//
//	-mode lcm|alcm|bcm|mr|gcse|sr  transformation to apply (default lcm)
//	-predicates                  print the LCM predicate table per expression
//	-dot                         print the transformed CFG in Graphviz DOT
//	-stats                       print analysis and edit statistics
//	-simplify                    clean up the CFG after transforming
//	-canonical                   identify commutated commutative expressions
//	-run a,b,c                   run original and transformed on the given
//	                             arguments and print both outcomes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lazycm/internal/gcse"
	"lazycm/internal/graph"
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/mr"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/sr"
	"lazycm/internal/textir"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lcm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("lcm", flag.ContinueOnError)
	mode := fs.String("mode", "lcm", "transformation: lcm, alcm, bcm, mr, gcse, or sr")
	predicates := fs.Bool("predicates", false, "print the LCM predicate table")
	dot := fs.Bool("dot", false, "print the transformed CFG in Graphviz DOT")
	stats := fs.Bool("stats", false, "print analysis and edit statistics")
	simplify := fs.Bool("simplify", false, "clean up the CFG after transforming (merge trivial blocks)")
	canonical := fs.Bool("canonical", false, "identify commutated expressions (a+b ≡ b+a) in lcm/alcm/bcm modes")
	runArgs := fs.String("run", "", "comma-separated integer arguments to execute with")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("at most one input file expected")
	}
	if err != nil {
		return err
	}
	fns, err := textir.Parse(string(src))
	if err != nil {
		return err
	}
	for i, f := range fns {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := optimizeOne(f, opts{
			mode: *mode, predicates: *predicates, dot: *dot, stats: *stats,
			simplify: *simplify, canonical: *canonical, runArgs: *runArgs,
		}, stdout); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}

type opts struct {
	mode                             string
	predicates, dot, stats, simplify bool
	canonical                        bool
	runArgs                          string
}

func optimizeOne(f *ir.Function, o opts, stdout io.Writer) error {

	var out *ir.Function
	var tempFor map[ir.Expr]string
	var statLines []string
	switch o.mode {
	case "lcm", "alcm", "bcm":
		m := map[string]lcm.Mode{"lcm": lcm.LCM, "alcm": lcm.ALCM, "bcm": lcm.BCM}[o.mode]
		res, err := lcm.TransformWith(f, m, o.canonical)
		if err != nil {
			return err
		}
		out, tempFor = res.F, res.TempFor
		statLines = append(statLines,
			fmt.Sprintf("mode: %s", res.Mode),
			fmt.Sprintf("insertions: %d, replacements: %d, critical edges split: %d",
				res.Inserted, res.Replaced, res.EdgesSplit),
			fmt.Sprintf("static computations: %d before, %d after",
				lcm.StaticComputations(f), lcm.StaticComputations(res.F)),
			fmt.Sprintf("analysis vector ops: %d", res.Analysis.TotalVectorOps()))
		for _, s := range res.Analysis.Stats {
			statLines = append(statLines, "  "+s.String())
		}
	case "mr":
		res, err := mr.Transform(f)
		if err != nil {
			return err
		}
		out, tempFor = res.F, res.TempFor
		statLines = append(statLines,
			"mode: Morel–Renvoise",
			fmt.Sprintf("insertions: %d, deletions: %d, saves: %d", res.Inserted, res.Deleted, res.Saved),
			fmt.Sprintf("analysis vector ops: %d (bidirectional passes: %d)",
				res.TotalVectorOps(), res.Bidir.Passes))
	case "sr":
		res, err := sr.Transform(f)
		if err != nil {
			return err
		}
		out = res.F
		statLines = append(statLines,
			"mode: strength reduction",
			fmt.Sprintf("reduced: %d, recurrence updates: %d, preheaders: %d",
				res.Reduced, res.Updates, res.Preheaders))
	case "gcse":
		res, err := gcse.Transform(f)
		if err != nil {
			return err
		}
		out, tempFor = res.F, res.TempFor
		statLines = append(statLines,
			"mode: GCSE",
			fmt.Sprintf("replacements: %d, saves: %d", res.Replaced, res.Saved))
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}

	if o.simplify {
		out.Simplify()
	}
	if o.predicates {
		if err := printPredicates(stdout, f); err != nil {
			return err
		}
	}
	if o.dot {
		fmt.Fprint(stdout, graph.Dot(out))
	} else {
		fmt.Fprint(stdout, out.String())
	}
	if o.stats {
		for _, l := range statLines {
			fmt.Fprintln(stdout, "#", l)
		}
		if len(tempFor) > 0 {
			fmt.Fprintln(stdout, "# temporaries:")
			for _, e := range props.Collect(f).Exprs() {
				if t, ok := tempFor[e]; ok {
					fmt.Fprintf(stdout, "#   %s = %s\n", t, e)
				}
			}
		}
	}
	if o.runArgs != "" {
		argv, err := parseArgs(o.runArgs)
		if err != nil {
			return err
		}
		before, _, err := interp.Run(f, interp.Options{Args: argv})
		if err != nil {
			return err
		}
		after, _, err := interp.Run(out, interp.Options{Args: argv})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# original:    %s\n# transformed: %s\n", before, after)
		if !before.ObservablyEqual(after) {
			return fmt.Errorf("transformed program behaves differently")
		}
	}
	return nil
}

func parseArgs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -run argument %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// printPredicates dumps the full LCM predicate table of f (after critical
// edge splitting), one section per candidate expression.
func printPredicates(w io.Writer, f *ir.Function) error {
	clone := f.Clone()
	graph.SplitCriticalEdges(clone)
	u := props.Collect(clone)
	g := nodes.Build(clone, u)
	a := lcm.Analyze(g)
	mark := func(b bool) byte {
		if b {
			return 'X'
		}
		return '.'
	}
	for e := 0; e < u.Size(); e++ {
		fmt.Fprintf(w, "# expression %s\n", u.Expr(e))
		fmt.Fprintf(w, "# %-30s %-4s %-6s %-5s %-5s %-8s %-5s %-6s %-8s\n",
			"node", "COMP", "TRANSP", "DSAFE", "USAFE", "EARLIEST", "DELAY", "LATEST", "ISOLATED")
		for id := 0; id < g.NumNodes(); id++ {
			fmt.Fprintf(w, "# %-30s %-4c %-6c %-5c %-5c %-8c %-5c %-6c %-8c\n",
				g.Nodes[id].String(),
				mark(g.Comp.Get(id, e)), mark(g.Transp.Get(id, e)),
				mark(a.DSafe.Get(id, e)), mark(a.USafe.Get(id, e)),
				mark(a.Earliest.Get(id, e)), mark(a.Delay.Get(id, e)),
				mark(a.Latest.Get(id, e)), mark(a.Isolated.Get(id, e)))
		}
	}
	return nil
}
