// Command lcmbench runs the repository's Go benchmarks and distills the
// result into a machine-readable BENCH_lcm.json: one record per
// benchmark with ns/op, B/op and allocs/op. CI runs it with
// -benchtime=1x as a smoke pass and uploads the JSON as an artifact;
// locally, longer benchtimes give stable numbers to diff across
// commits (see the Performance section in README.md).
//
// The solver-core benchmarks (the T4/T4b solver-cost comparison and the
// scratch-arena isolation) are re-run in a second pass at a fixed higher
// iteration count, repeated -core-count times with the fastest run kept
// (noise only ever adds time, so min-of-N is the stable estimator),
// because a single 1x sample of a multi-millisecond benchmark is too
// noisy to diff across commits. The JSON records the actual iteration
// count per benchmark in "runs" — a 1x record honestly says runs:1
// rather than pretending to be a stable number.
//
// With -baseline, lcmbench additionally compares the fresh results
// against a previously committed BENCH_lcm.json and exits nonzero when a
// compared benchmark's ns_per_op regressed by more than -max-regress
// percent: the CI bench-delta gate.
//
// Usage:
//
//	lcmbench [-bench regex] [-benchtime d] [-o file] [-input file] [pkg...]
//
// Flags:
//
//	-bench R          benchmark regex passed to go test (default ".")
//	-benchtime D      per-benchmark budget passed to go test (default 1x)
//	-core-bench R     solver-core benchmark regex re-run at -core-benchtime
//	                  (default T4/T4b/SolveScratch; "" disables the pass)
//	-core-benchtime D fixed budget for the core pass (default 25x)
//	-core-count N     core pass repetitions, fastest kept (default 3)
//	-core-pkg P       package the core pass runs in (default ".")
//	-o FILE           output path (default BENCH_lcm.json)
//	-input FILE       parse an existing `go test -bench` output file instead
//	                  of running the benchmarks ("-" reads stdin; skips the
//	                  core pass)
//	-baseline FILE    compare fresh results against this BENCH_lcm.json and
//	                  fail on regression
//	-delta-bench R    benchmark regex the baseline comparison covers
//	                  (default: the T4 and T4b solver-cost benchmarks)
//	-max-regress P    tolerated ns_per_op regression in percent (default 25)
//
// Remaining arguments are the packages to benchmark (default: ./... ).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark's measurements. Fields that a benchmark
// did not report (MB/s without SetBytes, allocs without -benchmem) stay
// zero and are omitted.
type benchResult struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, exactly as go test printed it.
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line.
	Package string `json:"package,omitempty"`
	Runs    int64  `json:"runs"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// benchFile is the BENCH_lcm.json document.
type benchFile struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchtime string `json:"benchtime,omitempty"`
	// CoreBenchtime is the fixed budget the solver-core benchmarks were
	// re-run at; their "runs" fields reflect it.
	CoreBenchtime string        `json:"core_benchtime,omitempty"`
	Generated     string        `json:"generated,omitempty"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. It tolerates interleaved log lines, tracks "pkg:" headers to
// attribute results, and ignores lines it does not recognize.
func parseBench(r io.Reader) ([]benchResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []benchResult
	pkg := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name runs ns/op-value "ns/op" [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: fields[0], Package: pkg, Runs: runs, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "MB/s":
				res.MBPerSec, _ = strconv.ParseFloat(val, 64)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// coreBenchDefault matches the solver-core benchmarks whose numbers gate
// the bench-delta step: one 1x sample of these is runs:1 noise, so they
// get a fixed multi-iteration second pass, repeated -core-count times
// with the fastest run kept. Benchmark noise is strictly additive
// (preemption, frequency scaling, GC pauses only ever slow an
// iteration), so min-of-N is the stable estimator — two min-of-N
// measurements of the same binary agree far more tightly than two
// single samples, which is what a ±25% regression gate needs to not
// cry wolf.
const coreBenchDefault = `^(BenchmarkT4SolverCost|BenchmarkT4bSolverCostBlockLevel|BenchmarkSolveScratch)$`

// deltaBenchDefault matches the benchmarks the baseline comparison
// covers by default: the two solver-cost experiments.
const deltaBenchDefault = `^(BenchmarkT4SolverCost|BenchmarkT4bSolverCostBlockLevel)$`

// runBench shells out to go test -bench and parses the results. count > 1
// repeats each benchmark (go test -count) and the caller reduces with
// bestOf.
func runBench(bench, benchtime string, count int, pkgs []string) []benchResult {
	args := append([]string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime, "-count", strconv.Itoa(count)}, pkgs...)
	cmd := exec.Command("go", args...)
	var buf strings.Builder
	// Stream to stderr so long runs stay observable while the full
	// output is captured for parsing.
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("lcmbench: go %s: %v", strings.Join(args, " "), err)
	}
	results, err := parseBench(strings.NewReader(buf.String()))
	if err != nil {
		log.Fatalf("lcmbench: parse: %v", err)
	}
	return results
}

// bestOf keeps the fastest (minimum ns/op) record per benchmark name,
// reducing a -count N repeated run to its noise-resistant estimate. The
// first record's memory numbers ride along — allocs are deterministic
// across runs, so any record's B/op and allocs/op would do.
func bestOf(results []benchResult) []benchResult {
	idx := make(map[string]int, len(results))
	var out []benchResult
	for _, r := range results {
		i, ok := idx[r.Name]
		if !ok {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i] = r
		}
	}
	return out
}

// mergeResults overlays the core pass onto the main results: a core
// record replaces the main record of the same name, so the JSON carries
// the stable multi-iteration numbers with their honest run counts.
func mergeResults(main, core []benchResult) []benchResult {
	byName := make(map[string]benchResult, len(core))
	for _, c := range core {
		byName[c.Name] = c
	}
	for i, r := range main {
		if c, ok := byName[r.Name]; ok {
			main[i] = c
			delete(byName, c.Name)
		}
	}
	// Core benchmarks the main regex did not select still belong in the
	// document.
	for _, c := range core {
		if _, left := byName[c.Name]; left {
			main = append(main, c)
		}
	}
	return main
}

// baseName strips the -N GOMAXPROCS suffix so comparisons survive a
// change in parallelism between the baseline and the fresh run.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compareBaseline checks every fresh benchmark matching deltaRe against
// the baseline document and returns the number of regressions beyond
// maxRegress percent in ns/op. Benchmarks present on only one side are
// reported but never fail the gate: adding or renaming a benchmark must
// not require a baseline override.
func compareBaseline(fresh []benchResult, baselinePath string, deltaRe *regexp.Regexp, maxRegress float64) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("lcmbench: baseline: %v", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("lcmbench: baseline %s: %v", baselinePath, err)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[baseName(b.Name)] = b.NsPerOp
	}
	regressions := 0
	compared := 0
	for _, f := range fresh {
		name := baseName(f.Name)
		if !deltaRe.MatchString(name) {
			continue
		}
		old, ok := baseNs[name]
		if !ok || old <= 0 {
			fmt.Printf("lcmbench: delta %-45s  no baseline, skipped\n", name)
			continue
		}
		compared++
		pct := (f.NsPerOp - old) / old * 100
		status := "ok"
		if pct > maxRegress {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("lcmbench: delta %-45s  %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			name, old, f.NsPerOp, pct, status)
	}
	if compared == 0 {
		log.Fatalf("lcmbench: baseline %s: no comparable benchmarks matched %v", baselinePath, deltaRe)
	}
	return regressions
}

func main() {
	fs := flag.NewFlagSet("lcmbench", flag.ExitOnError)
	bench := fs.String("bench", ".", "benchmark regex passed to go test")
	benchtime := fs.String("benchtime", "1x", "per-benchmark budget passed to go test")
	coreBench := fs.String("core-bench", coreBenchDefault, "solver-core benchmark regex re-run at -core-benchtime (empty disables)")
	coreBenchtime := fs.String("core-benchtime", "25x", "fixed budget for the solver-core pass")
	coreCount := fs.Int("core-count", 3, "solver-core pass repetitions; the fastest run is kept")
	corePkg := fs.String("core-pkg", ".", "package the core pass runs in")
	out := fs.String("o", "BENCH_lcm.json", "output path")
	input := fs.String("input", "", "parse an existing go test -bench output file instead of running (\"-\" = stdin)")
	baseline := fs.String("baseline", "", "compare results against this BENCH_lcm.json and fail on regression")
	deltaBench := fs.String("delta-bench", deltaBenchDefault, "benchmark regex the baseline comparison covers")
	maxRegress := fs.Float64("max-regress", 25, "tolerated ns_per_op regression in percent")
	_ = fs.Parse(os.Args[1:])
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	var results []benchResult
	coreUsed := ""
	switch *input {
	case "":
		// The core pass runs FIRST and against -core-pkg only: bench-delta
		// measures these same benchmarks from an idle machine with a
		// single test binary, and baseline and fresh measurement must be
		// taken under the same conditions or the gate compares machine
		// states instead of code. (A ./... core pass would race the
		// benchmark against the concurrent compilation of every other
		// package's test binary; the broad documentation pass heats the
		// machine for minutes.)
		var core []benchResult
		if *coreBench != "" {
			coreUsed = *coreBenchtime
			core = bestOf(runBench(*coreBench, *coreBenchtime, *coreCount, []string{*corePkg}))
		}
		results = mergeResults(runBench(*bench, *benchtime, 1, pkgs), core)
	case "-":
		var err error
		if results, err = parseBench(os.Stdin); err != nil {
			log.Fatalf("lcmbench: parse: %v", err)
		}
	default:
		f, err := os.Open(*input)
		if err != nil {
			log.Fatalf("lcmbench: %v", err)
		}
		results, err = parseBench(f)
		f.Close()
		if err != nil {
			log.Fatalf("lcmbench: parse: %v", err)
		}
	}
	if len(results) == 0 {
		log.Fatal("lcmbench: no benchmark results found")
	}
	doc := benchFile{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Benchtime:     *benchtime,
		CoreBenchtime: coreUsed,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		Benchmarks:    results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("lcmbench: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("lcmbench: %v", err)
	}
	fmt.Printf("lcmbench: wrote %d benchmark(s) to %s\n", len(results), *out)

	if *baseline != "" {
		deltaRe, err := regexp.Compile(*deltaBench)
		if err != nil {
			log.Fatalf("lcmbench: -delta-bench: %v", err)
		}
		if n := compareBaseline(results, *baseline, deltaRe, *maxRegress); n > 0 {
			log.Fatalf("lcmbench: %d benchmark(s) regressed more than %.0f%% vs %s", n, *maxRegress, *baseline)
		}
		fmt.Printf("lcmbench: no ns/op regression beyond %.0f%% vs %s\n", *maxRegress, *baseline)
	}
}
