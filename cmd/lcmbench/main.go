// Command lcmbench runs the repository's Go benchmarks and distills the
// result into a machine-readable BENCH_lcm.json: one record per
// benchmark with ns/op, B/op and allocs/op. CI runs it with
// -benchtime=1x as a smoke pass and uploads the JSON as an artifact;
// locally, longer benchtimes give stable numbers to diff across
// commits (see the Performance section in README.md).
//
// Usage:
//
//	lcmbench [-bench regex] [-benchtime d] [-o file] [-input file] [pkg...]
//
// Flags:
//
//	-bench R      benchmark regex passed to go test (default ".")
//	-benchtime D  per-benchmark budget passed to go test (default 1x)
//	-o FILE       output path (default BENCH_lcm.json)
//	-input FILE   parse an existing `go test -bench` output file instead
//	              of running the benchmarks ("-" reads stdin)
//
// Remaining arguments are the packages to benchmark (default: ./... ).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark's measurements. Fields that a benchmark
// did not report (MB/s without SetBytes, allocs without -benchmem) stay
// zero and are omitted.
type benchResult struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, exactly as go test printed it.
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line.
	Package string `json:"package,omitempty"`
	Runs    int64  `json:"runs"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// benchFile is the BENCH_lcm.json document.
type benchFile struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchtime  string        `json:"benchtime,omitempty"`
	Generated  string        `json:"generated,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. It tolerates interleaved log lines, tracks "pkg:" headers to
// attribute results, and ignores lines it does not recognize.
func parseBench(r io.Reader) ([]benchResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []benchResult
	pkg := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name runs ns/op-value "ns/op" [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: fields[0], Package: pkg, Runs: runs, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "MB/s":
				res.MBPerSec, _ = strconv.ParseFloat(val, 64)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func main() {
	fs := flag.NewFlagSet("lcmbench", flag.ExitOnError)
	bench := fs.String("bench", ".", "benchmark regex passed to go test")
	benchtime := fs.String("benchtime", "1x", "per-benchmark budget passed to go test")
	out := fs.String("o", "BENCH_lcm.json", "output path")
	input := fs.String("input", "", "parse an existing go test -bench output file instead of running (\"-\" = stdin)")
	_ = fs.Parse(os.Args[1:])
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	var src io.Reader
	switch *input {
	case "":
		args := append([]string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}, pkgs...)
		cmd := exec.Command("go", args...)
		var buf strings.Builder
		// Stream to stderr so long runs stay observable while the full
		// output is captured for parsing.
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("lcmbench: go %s: %v", strings.Join(args, " "), err)
		}
		src = strings.NewReader(buf.String())
	case "-":
		src = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			log.Fatalf("lcmbench: %v", err)
		}
		defer f.Close()
		src = f
	}

	results, err := parseBench(src)
	if err != nil {
		log.Fatalf("lcmbench: parse: %v", err)
	}
	if len(results) == 0 {
		log.Fatal("lcmbench: no benchmark results found")
	}
	doc := benchFile{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("lcmbench: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("lcmbench: %v", err)
	}
	fmt.Printf("lcmbench: wrote %d benchmark(s) to %s\n", len(results), *out)
}
