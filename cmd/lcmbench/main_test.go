package main

import (
	"strings"
	"testing"
)

// sample is real `go test -bench -benchmem` output shape: pkg headers,
// noise lines, sub-benchmarks, a SetBytes benchmark with MB/s, and a
// line without -benchmem columns.
const sample = `goos: linux
goarch: amd64
pkg: lazycm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkLCMAnalyze/depth=1/stmts=9/exprs=4-8         	  126920	      9271 ns/op	   18488 B/op	     211 allocs/op
BenchmarkParsePrintRoundTrip-8                        	    1352	    884322 ns/op	  64.66 MB/s	  522134 B/op	    9295 allocs/op
BenchmarkBare-8                                       	     100	     12345 ns/op
--- BENCH: BenchmarkFigure1
    bench_test.go:28: ignored log line
PASS
pkg: lazycm/cmd/lcmd
BenchmarkBatchServer/latency/parallel-8               	       3	  12053926 ns/op	  259461 B/op	    5762 allocs/op
ok  	lazycm/cmd/lcmd	0.700s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	first := got[0]
	if first.Name != "BenchmarkLCMAnalyze/depth=1/stmts=9/exprs=4-8" ||
		first.Package != "lazycm" || first.Runs != 126920 ||
		first.NsPerOp != 9271 || first.BytesPerOp != 18488 || first.AllocsPerOp != 211 {
		t.Errorf("first result mismatch: %+v", first)
	}
	rt := got[1]
	if rt.MBPerSec != 64.66 || rt.AllocsPerOp != 9295 {
		t.Errorf("throughput result mismatch: %+v", rt)
	}
	bare := got[2]
	if bare.NsPerOp != 12345 || bare.BytesPerOp != 0 || bare.AllocsPerOp != 0 {
		t.Errorf("bare result mismatch: %+v", bare)
	}
	last := got[3]
	if last.Package != "lazycm/cmd/lcmd" || last.Name != "BenchmarkBatchServer/latency/parallel-8" {
		t.Errorf("package attribution lost: %+v", last)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

// TestBestOf pins the min-of-N reduction of a -count repeated core pass:
// per name, the fastest record survives and ordering follows first
// appearance.
func TestBestOf(t *testing.T) {
	in := []benchResult{
		{Name: "A", NsPerOp: 300, AllocsPerOp: 7},
		{Name: "B", NsPerOp: 50},
		{Name: "A", NsPerOp: 100, AllocsPerOp: 7},
		{Name: "A", NsPerOp: 200, AllocsPerOp: 7},
		{Name: "B", NsPerOp: 80},
	}
	got := bestOf(in)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(got), got)
	}
	if got[0].Name != "A" || got[0].NsPerOp != 100 || got[0].AllocsPerOp != 7 {
		t.Errorf("A: got %+v, want fastest run (100 ns/op)", got[0])
	}
	if got[1].Name != "B" || got[1].NsPerOp != 50 {
		t.Errorf("B: got %+v, want fastest run (50 ns/op)", got[1])
	}
}
