package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/fleet"
	"lazycm/internal/lcmserver"
)

// syncBuffer lets the soak read the routing log after traffic stops
// while the gateway's health pollers may still be writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFleetChaosSoak is the fleet-scope stress gate: three real lcmd
// backends behind chaos proxies, traffic hammering the gateway while
// one backend is killed and revived and another is partitioned. The
// single-node soak invariants must hold at fleet scope:
//
//   - every clean 200 carries the byte-identical program a healthy
//     single node computes for that input (routing never changes results)
//   - every response is an expected status, and everything shed carries
//     an explicit Retry-After
//   - each backend's outcome buckets still sum exactly to its admitted
//     requests, with nothing queued or in flight after the drain
//   - a dead backend's breaker opens and freezes its routed counter
//     until half-open probes succeed after revival
//   - the whole fleet tears down without leaking goroutines
//
// Set LCMGATE_SOAK_LOG to a path to also write the gateway routing log
// there (CI uploads it as the failure artifact).
func TestFleetChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// -short (CI fleet-smoke) runs the same phases on shorter traffic
	// windows; the full soak is `make fleet`.
	window := func(d time.Duration) time.Duration {
		if testing.Short() {
			return d / 2
		}
		return d
	}

	var logBuf syncBuffer
	var logDst io.Writer = &logBuf
	if path := os.Getenv("LCMGATE_SOAK_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("opening LCMGATE_SOAK_LOG: %v", err)
		}
		defer f.Close()
		logDst = io.MultiWriter(&logBuf, f)
	}

	// Three real backends behind chaos proxies.
	const nBackends = 3
	srvs := make([]*lcmserver.Server, nBackends)
	proxies := make([]*chaos.Backend, nBackends)
	tss := make([]*httptest.Server, nBackends)
	urls := make([]string, nBackends)
	for i := range srvs {
		srvs[i] = lcmserver.NewServer(lcmserver.Config{Workers: 4, Queue: 16, Timeout: 2 * time.Second})
		proxies[i] = chaos.NewBackend(srvs[i].Handler())
		tss[i] = httptest.NewServer(proxies[i])
		urls[i] = tss[i].URL
	}

	const cooldown = 2 * time.Second
	gw, err := NewGateway(Config{
		Backends:       urls,
		AttemptTimeout: 500 * time.Millisecond,
		Timeout:        5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		Breaker:        fleet.BreakerConfig{FailureThreshold: 3, Cooldown: cooldown, HalfOpenProbes: 2},
		AccessLog:      logDst,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())

	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			gts.Close()
			gw.Close()
			for i := range srvs {
				tss[i].Close()
				srvs[i].Close()
			}
		}
	}
	defer shutdown()

	// Corpus: one valid program owned by each backend (so every node sees
	// traffic and chaos on any node is traffic-visible), plus an invalid
	// program for pass-through coverage. Expected outputs are precomputed
	// on a reference single node — the fleet must reproduce them byte for
	// byte.
	corpus := make([][]byte, nBackends)
	expected := make(map[string]string, nBackends)
	for i := range corpus {
		corpus[i] = bodyOwnedBy(t, gw, urls, "/optimize", i)
	}
	ref := lcmserver.NewServer(lcmserver.Config{Workers: 1, Queue: 4})
	refTS := httptest.NewServer(ref.Handler())
	for _, body := range corpus {
		code, _, raw := postRaw(t, refTS.URL, "/optimize", body)
		if code != http.StatusOK {
			t.Fatalf("reference node answered %d: %s", code, raw)
		}
		var out struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		expected[string(body)] = out.Program
	}
	refTS.Close()
	ref.Close()
	invalidBody := optBody(t, "func broken {")

	// Traffic: workers hammer the gateway until told to stop, classifying
	// every response. Any status outside the contract is a failure.
	var c200, c400, c429, c503, cOther, sent atomic.Int64
	var identityViolations, missingRetryAfter atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 6
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := corpus[rng.Intn(len(corpus))]
				if i%13 == 12 {
					body = invalidBody
				}
				sent.Add(1)
				resp, err := http.Post(gts.URL+"/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					cOther.Add(1)
					t.Errorf("gateway transport error: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var out struct {
					Program      string `json:"program"`
					Error        string `json:"error"`
					FellBack     bool   `json:"fell_back"`
					Canceled     bool   `json:"canceled"`
					RetryAfterMS int64  `json:"retry_after_ms"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					cOther.Add(1)
					t.Errorf("non-JSON response (status %d): %s", resp.StatusCode, raw)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					c200.Add(1)
					if out.Error == "" && !out.FellBack && !out.Canceled {
						if want := expected[string(body)]; out.Program != want {
							identityViolations.Add(1)
							t.Errorf("200 diverged from single-node output:\n got: %q\nwant: %q", out.Program, want)
						}
					}
				case http.StatusBadRequest:
					c400.Add(1)
				case http.StatusTooManyRequests:
					c429.Add(1)
					if resp.Header.Get("Retry-After") == "" || out.RetryAfterMS <= 0 {
						missingRetryAfter.Add(1)
					}
				case http.StatusServiceUnavailable:
					c503.Add(1)
					if resp.Header.Get("Retry-After") == "" || out.RetryAfterMS <= 0 {
						missingRetryAfter.Add(1)
					}
				default:
					cOther.Add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
				}
			}
		}(g)
	}

	// Phase 1: healthy warm-up.
	time.Sleep(window(600 * time.Millisecond))

	// Phase 2: kill backend 0 mid-soak. Its breaker must open within a
	// few failed attempts, and while open its routed counter must freeze
	// dead — not one request reaches it until a half-open probe.
	killed := gw.backends[urls[0]]
	proxies[0].SetMode(chaos.BackendKilled)
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerOpen })
	frozen := killed.routed.Load()
	time.Sleep(cooldown / 4) // well inside the cooldown: no probe can be admitted
	if got := killed.routed.Load(); got != frozen {
		t.Errorf("open breaker leaked traffic to the killed backend: routed %d -> %d", frozen, got)
	}

	// Phase 3: revive backend 0. Health probes and traffic drive the
	// half-open recovery; once closed, the backend takes traffic again.
	proxies[0].SetMode(chaos.BackendHealthy)
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerClosed })
	waitFor(t, func() bool { return killed.routed.Load() > frozen })

	// Phase 4: partition backend 1 — reachable but black-holed; only the
	// attempt timeout detects it. Its breaker must open too.
	partitioned := gw.backends[urls[1]]
	proxies[1].SetMode(chaos.BackendPartitioned)
	waitFor(t, func() bool { return partitioned.breaker.State() == fleet.BreakerOpen })

	// Phase 5: heal everything, let the fleet settle, stop traffic.
	proxies[1].SetMode(chaos.BackendHealthy)
	time.Sleep(window(600 * time.Millisecond))
	close(stop)
	wg.Wait()
	shutdown() // full drain before auditing the books

	// Every request got exactly one in-contract response.
	if got := c200.Load() + c400.Load() + c429.Load() + c503.Load() + cOther.Load(); got != sent.Load() {
		t.Errorf("responses %d != requests sent %d", got, sent.Load())
	}
	if cOther.Load() != 0 {
		t.Errorf("out-of-contract responses: %d", cOther.Load())
	}
	if identityViolations.Load() != 0 {
		t.Errorf("byte-identity violations: %d", identityViolations.Load())
	}
	if missingRetryAfter.Load() != 0 {
		t.Errorf("shed responses missing Retry-After: %d", missingRetryAfter.Load())
	}
	if c200.Load() == 0 {
		t.Error("soak produced no successful responses")
	}

	// Fleet-scope exact accounting: every backend's outcome buckets sum
	// to its admitted requests, and the drained pools are empty.
	for i, s := range srvs {
		st := s.Stats()
		sum := st.Optimized + st.FellBack + st.Canceled + st.Invalid + st.Panics
		if sum != st.Requests {
			t.Errorf("backend %d outcome buckets sum to %d, want %d (%+v)", i, sum, st.Requests, st)
		}
		if st.Panics != 0 {
			t.Errorf("backend %d recovered %d panics", i, st.Panics)
		}
		if st.Queued != 0 || st.Inflight != 0 {
			t.Errorf("backend %d drained with queued=%d inflight=%d", i, st.Queued, st.Inflight)
		}
	}

	// Routing-log audit: the killed backend was skipped as breaker-open,
	// and the health pollers were probing throughout.
	lg := logBuf.String()
	if !strings.Contains(lg, fmt.Sprintf("backend=%s reason=breaker-open", urls[0])) {
		t.Error("routing log has no breaker-open skips for the killed backend")
	}
	if !strings.Contains(lg, "probe backend=") {
		t.Error("routing log has no health-probe entries")
	}

	// No goroutine leaks once the whole fleet is down.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
