package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/lcmserver"
	"lazycm/internal/vfs"
)

// corpusOwnedBy collects n distinct valid programs whose ring primary
// is the wanted backend.
func corpusOwnedBy(t *testing.T, gw *Gateway, urls []string, want, n int, tag string) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; len(out) < n && i < 4096; i++ {
		body := optBody(t, strings.ReplaceAll(diamond, "func f", fmt.Sprintf("func %s%d", tag, i)))
		if ownerIndex(t, gw, urls, "/optimize", body) == want {
			out = append(out, body)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d/%d probe bodies hashed to backend %d", len(out), n, want)
	}
	return out
}

// freshProgram mints a program no cache in the fleet has seen — the
// chaos driver uses these to force durable-tier writes and reads on the
// faulted backend at will.
func freshProgram(tag string, i int) string {
	return strings.ReplaceAll(diamond, "func f", fmt.Sprintf("func %s%d", tag, i))
}

// TestDiskChaosSoak is the hostile-storage soak: a three-backend fleet
// under live gateway traffic while backend 0's filesystem cycles
// through an ENOSPC storm, an EIO-on-read phase, multi-second fsync
// stalls, and torn renames. The assertions are the fail-open contract:
//
//   - every 200, throughout every fault phase, is byte-identical to a
//     healthy single-node reference — storage faults cost recompute,
//     never a wrong byte;
//   - the faulted backend's disk tier quarantines itself under the
//     storm (new ?job= submissions get the structured journal_degraded
//     503; plain requests keep answering 200) and re-enables once the
//     background probe sees the disk healthy again;
//   - stalled fsyncs are bounded by the IO deadline — requests keep
//     completing promptly and no goroutine wedges;
//   - admission accounting stays exact on every backend.
//
// Set LCM_DISK_CHAOS_DIR to keep the injected-fault log on disk for CI
// artifacts; LCMGATE_SOAK_LOG captures the gateway routing log.
func TestDiskChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	window := func(d time.Duration) time.Duration {
		if testing.Short() {
			return d / 2
		}
		return d
	}

	var logBuf syncBuffer
	var logDst io.Writer = &logBuf
	if path := os.Getenv("LCMGATE_SOAK_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("opening LCMGATE_SOAK_LOG: %v", err)
		}
		defer f.Close()
		logDst = io.MultiWriter(&logBuf, f)
	}

	// The injected-fault log: every fault FaultFS fires, one line each,
	// kept as a CI artifact when LCM_DISK_CHAOS_DIR is set.
	var faultMu sync.Mutex
	var faultDst io.Writer = io.Discard
	if dir := os.Getenv("LCM_DISK_CHAOS_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(filepath.Join(dir, "faults.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("opening fault log: %v", err)
		}
		defer f.Close()
		faultDst = f
	}

	fault := vfs.NewFaultFS(vfs.OS, 31)
	fault.Logf = func(format string, args ...any) {
		faultMu.Lock()
		fmt.Fprintf(faultDst, format+"\n", args...)
		faultMu.Unlock()
	}

	// Three real backends, no proxies: the chaos is inside backend 0's
	// filesystem, not on the wire. Memory caches are big enough that the
	// steady corpus stays memory-resident — the chaos driver decides
	// when the durable tier is exercised, so each fault phase measures
	// its own class.
	const nBackends = 3
	servers := make([]*lcmserver.Server, nBackends)
	tss := make([]*httptest.Server, nBackends)
	urls := make([]string, nBackends)
	for i := range servers {
		cfg := lcmserver.Config{
			Workers: 4, Queue: 32, Timeout: 2 * time.Second,
			Quarantine: "",
			CacheSize:  64,
			CacheDir:   t.TempDir(),
			JournalDir: t.TempDir(),
			IOTimeout:  250 * time.Millisecond,
		}
		if i == 0 {
			cfg.FS = fault
			cfg.DiskHealth = lcmserver.DiskHealthConfig{
				Window: 32, TripAfter: 6, TripFrac: 0.25,
				ProbeInterval: 25 * time.Millisecond, ProbeAfter: 3,
			}
		}
		servers[i] = lcmserver.NewServer(cfg)
		tss[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = tss[i].URL
	}
	s0 := servers[0]

	gw, err := NewGateway(Config{
		Backends:       urls,
		AttemptTimeout: time.Second,
		Timeout:        5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		AccessLog:      logDst,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())

	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			gts.Close()
			gw.Close()
			for i := range tss {
				tss[i].Close()
			}
			for _, s := range servers {
				s.Close()
			}
		}
	}
	defer shutdown()

	// Corpus: a handful of programs per backend. The healthy reference
	// node stays up the whole soak so chaos-driver responses can be
	// checked byte-for-byte too.
	var corpus [][]byte
	for i := 0; i < nBackends; i++ {
		corpus = append(corpus, corpusOwnedBy(t, gw, urls, i, 3, fmt.Sprintf("dc%d", i))...)
	}
	ref := lcmserver.NewServer(lcmserver.Config{Workers: 1, Queue: 4, Quarantine: ""})
	refTS := httptest.NewServer(ref.Handler())
	defer func() { refTS.Close(); ref.Close() }()
	var refMu sync.Mutex
	refExpected := map[string]string{}
	expect := func(body []byte) string {
		refMu.Lock()
		defer refMu.Unlock()
		if want, ok := refExpected[string(body)]; ok {
			return want
		}
		code, _, raw := postRaw(t, refTS.URL, "/optimize", body)
		if code != http.StatusOK {
			t.Fatalf("reference node answered %d: %s", code, raw)
		}
		var out struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		refExpected[string(body)] = out.Program
		return out.Program
	}
	for _, body := range corpus {
		expect(body)
	}

	// Live traffic: modest and steady, so the chaos driver's filesystem
	// operations dominate the fault window during each phase.
	var c200, cShed, cOther, sent atomic.Int64
	var identityViolations atomic.Int64
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				body := corpus[rng.Intn(len(corpus))]
				sent.Add(1)
				resp, err := http.Post(gts.URL+"/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					cOther.Add(1)
					t.Errorf("gateway transport error: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var out struct {
					Program  string `json:"program"`
					Error    string `json:"error"`
					FellBack bool   `json:"fell_back"`
					Canceled bool   `json:"canceled"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					cOther.Add(1)
					t.Errorf("non-JSON response (status %d): %s", resp.StatusCode, raw)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					c200.Add(1)
					if out.Error == "" && !out.FellBack && !out.Canceled {
						if want := expect(body); out.Program != want {
							identityViolations.Add(1)
							t.Errorf("200 diverged from single-node output:\n got: %q\nwant: %q", out.Program, want)
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					cShed.Add(1)
				default:
					cOther.Add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(g)
	}

	// drive posts one fresh program straight at backend 0 and verifies
	// it against the reference — every driver response is held to the
	// same byte-identity bar as the steady traffic.
	driven := 0
	drive := func(tag string) {
		t.Helper()
		driven++
		body := optBody(t, freshProgram(tag, driven))
		code, _, raw := postRaw(t, urls[0], "/optimize", body)
		if code != http.StatusOK {
			t.Fatalf("driver %s%d: status %d: %s", tag, driven, code, raw)
		}
		var out struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if want := expect(body); out.Program != want {
			identityViolations.Add(1)
			t.Errorf("driver 200 diverged from single-node output under faults:\n got: %q\nwant: %q", out.Program, want)
		}
	}

	// Phase 0: healthy warm-up — backend 0 persists durable entries.
	drive("warm")
	drive("warm")
	waitFor(t, func() bool { return s0.Stats().DiskEntries > 0 })
	// A resumable job lands on a healthy disk; re-attaching to it must
	// keep working even while the journal is degraded.
	preJob := optBody(t, freshProgram("job", 1))
	if code, _, raw := postRaw(t, urls[0], "/optimize/batch?job=1", preJob); code != http.StatusOK {
		t.Fatalf("healthy ?job= submit: status %d: %s", code, raw)
	}
	time.Sleep(window(200 * time.Millisecond))

	// Phase 1: ENOSPC storm. Every durable write fails until the health
	// tracker quarantines the tier.
	fault.SetWindow(vfs.Window{WriteErrProb: 0.95, ShortWriteProb: 0.3, SyncErrProb: 0.5})
	deadline := time.Now().Add(10 * time.Second)
	for !s0.Stats().DiskDisabled {
		if time.Now().After(deadline) {
			t.Fatal("ENOSPC storm did not quarantine the disk tier")
		}
		drive("enospc")
	}
	if got := s0.Stats().DiskFaultsWrite; got == 0 {
		t.Errorf("DiskFaultsWrite = %d after ENOSPC storm, want > 0", got)
	}

	// While quarantined: plain requests still 200 (the drive() above
	// keeps proving it); a NEW resumable submission is refused with the
	// structured contract; attaching to the pre-storm job still works.
	drive("quarantined")
	code, _, raw := postRaw(t, urls[0], "/optimize/batch?job=1", optBody(t, freshProgram("jobrefused", 1)))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("new ?job= while degraded: status %d: %s", code, raw)
	}
	var refusal struct {
		Kind            string `json:"kind"`
		JournalDegraded bool   `json:"journal_degraded"`
		RetryAfterMS    int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(raw, &refusal); err != nil {
		t.Fatalf("degraded refusal is not JSON: %v: %s", err, raw)
	}
	if refusal.Kind != "journal_degraded" || !refusal.JournalDegraded || refusal.RetryAfterMS <= 0 {
		t.Fatalf("degraded refusal missing contract fields: %+v", refusal)
	}
	if code, _, raw := postRaw(t, urls[0], "/optimize/batch?job=1", preJob); code != http.StatusOK {
		t.Fatalf("attach to pre-storm job while degraded: status %d: %s", code, raw)
	}

	// The gateway's fleet view folds the quarantine in from its probes.
	waitFor(t, func() bool {
		_, _, hraw := postRawGet(t, gts.URL+"/healthz")
		var h struct {
			Fleet map[string]int64 `json:"fleet"`
		}
		if err := json.Unmarshal(hraw, &h); err != nil {
			return false
		}
		return h.Fleet["disk_disabled_backends"] == 1 && h.Fleet["journal_degraded_backends"] == 1
	})

	// Storm clears: the background probe re-enables the tier and new
	// resumable submissions are accepted again.
	fault.SetWindow(vfs.Window{})
	waitFor(t, func() bool { return !s0.Stats().DiskDisabled })
	if code, _, raw := postRaw(t, urls[0], "/optimize/batch?job=1", optBody(t, freshProgram("jobback", 1))); code != http.StatusOK {
		t.Fatalf("?job= after recovery: status %d: %s", code, raw)
	}

	// Phase 2: EIO on read. Fresh writes land (the disk takes bytes
	// fine) and churn the memory LRU, so steady traffic re-reads its
	// corpus from the durable tier and hits the injected EIO — which
	// must surface as plain recomputes, never corruption or 500s.
	baseRead := s0.Stats().DiskFaultsRead
	fault.SetWindow(vfs.Window{ReadErrProb: 0.95})
	deadline = time.Now().Add(10 * time.Second)
	for s0.Stats().DiskFaultsRead < baseRead+8 {
		if time.Now().After(deadline) {
			t.Fatal("EIO-on-read phase injected too few read faults")
		}
		drive("eio")
	}
	fault.SetWindow(vfs.Window{})

	// Phase 3: fsync stalls far beyond the IO deadline. Writes must be
	// cut off by WithTimeout — requests keep completing promptly, no
	// handler wedges on a hung fsync.
	baseSync := s0.Stats().DiskFaultsSync
	fault.SetWindow(vfs.Window{SyncStallProb: 0.9, SyncStall: 2 * time.Second})
	deadline = time.Now().Add(15 * time.Second)
	for s0.Stats().DiskFaultsSync < baseSync+4 {
		if time.Now().After(deadline) {
			t.Fatal("fsync-stall phase injected too few sync faults")
		}
		begin := time.Now()
		drive("stall")
		if d := time.Since(begin); d > 1500*time.Millisecond {
			t.Errorf("request under fsync stall took %v — IO deadline (250ms) did not bound it", d)
		}
	}
	fault.SetWindow(vfs.Window{})

	// Phase 4: torn renames — publication drops the target and never
	// installs the new name. The store must deindex, the driver's 200s
	// stay byte-identical, and nothing torn is ever served.
	baseRename := s0.Stats().DiskFaultsRename
	fault.SetWindow(vfs.Window{TornRenameProb: 0.9})
	deadline = time.Now().Add(10 * time.Second)
	for s0.Stats().DiskFaultsRename < baseRename+4 {
		if time.Now().After(deadline) {
			t.Fatal("torn-rename phase injected too few rename faults")
		}
		drive("torn")
	}
	fault.SetWindow(vfs.Window{})

	// Let the tier settle healthy, then stop.
	waitFor(t, func() bool { return !s0.Stats().DiskDisabled })
	time.Sleep(window(200 * time.Millisecond))
	close(stopTraffic)
	wg.Wait()

	// Snapshot fleet health before teardown.
	_, _, hraw := postRawGet(t, gts.URL+"/healthz")
	shutdown()

	// Response contract held end to end, under every fault regime.
	if got := c200.Load() + cShed.Load() + cOther.Load(); got != sent.Load() {
		t.Errorf("responses %d != requests sent %d", got, sent.Load())
	}
	if cOther.Load() != 0 {
		t.Errorf("out-of-contract responses: %d", cOther.Load())
	}
	if identityViolations.Load() != 0 {
		t.Errorf("byte-identity violations: %d", identityViolations.Load())
	}
	if c200.Load() == 0 {
		t.Error("soak produced no successful responses")
	}

	// All four fault classes were actually exercised, on both the
	// injector's and the server's books.
	fw, fr, fsy, frn := fault.Injected()
	if fw == 0 || fr == 0 || fsy == 0 || frn == 0 {
		t.Errorf("injected faults write=%d read=%d sync=%d rename=%d, want all > 0", fw, fr, fsy, frn)
	}
	st0 := s0.Stats()
	if st0.DiskFaultsWrite == 0 || st0.DiskFaultsRead == 0 || st0.DiskFaultsSync == 0 || st0.DiskFaultsRename == 0 {
		t.Errorf("server fault classes write=%d read=%d sync=%d rename=%d, want all > 0",
			st0.DiskFaultsWrite, st0.DiskFaultsRead, st0.DiskFaultsSync, st0.DiskFaultsRename)
	}
	// The tier went down and came back — and ended healthy.
	if st0.DiskDisableTransitions < 2 {
		t.Errorf("DiskDisableTransitions = %d, want >= 2", st0.DiskDisableTransitions)
	}
	if st0.DiskDisabled {
		t.Error("disk tier still quarantined after the faults cleared")
	}

	// Exact accounting on every backend: whatever was admitted was
	// classified, and the queues drained to zero.
	for i, s := range servers {
		st := s.Stats()
		sum := st.Optimized + st.FellBack + st.Canceled + st.Invalid + st.Panics
		if sum != st.Requests {
			t.Errorf("backend %d outcome buckets sum to %d, want %d (%+v)", i, sum, st.Requests, st)
		}
		if st.Panics != 0 {
			t.Errorf("backend %d recovered %d panics", i, st.Panics)
		}
		if st.Queued != 0 || st.Inflight != 0 {
			t.Errorf("backend %d drained with queued=%d inflight=%d", i, st.Queued, st.Inflight)
		}
	}

	// The gateway folded the hostile-storage story into its fleet view.
	var health struct {
		Fleet map[string]int64 `json:"fleet"`
	}
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatalf("gateway healthz is not JSON: %v", err)
	}
	if health.Fleet["disk_disable_transitions"] < 2 {
		t.Errorf("fleet disk_disable_transitions = %d, want >= 2", health.Fleet["disk_disable_transitions"])
	}
	if health.Fleet["disk_faults_write"] == 0 {
		t.Error("fleet disk_faults_write = 0, want > 0")
	}

	// No goroutine wedges: stalled fsyncs were abandoned by their
	// deadline and drained; everything else shut down.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
