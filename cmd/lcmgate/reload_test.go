package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/chaos"
)

// gateOwners records which backend the gateway's ring makes primary for
// each of a set of probe bodies.
func gateOwners(gw *Gateway, bodies [][]byte) []string {
	out := make([]string, len(bodies))
	gw.mu.RLock()
	defer gw.mu.RUnlock()
	for i, body := range bodies {
		key, _ := requestKey("/optimize", body)
		out[i] = gw.ring.Owner(key)
	}
	return out
}

// TestReloadMinimalMovement: growing or shrinking the fleet by one moves
// only about 1/N of placements — surviving backends keep every key the
// change does not force off them. This is the property that makes a
// rolling restart cheap: each step invalidates one node's share of cache
// affinity, not the whole fleet's.
func TestReloadMinimalMovement(t *testing.T) {
	gw, nodes, _ := newScriptedFleet(t, 4, Config{}, nil)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	const K = 600
	bodies := make([][]byte, K)
	for i := range bodies {
		bodies[i] = optBody(t, fmt.Sprintf("func k%d(a) {\nentry:\n  ret a\n}\n", i))
	}
	before := gateOwners(gw, bodies)

	// Shrink: every key the leaver did not own stays put.
	removed := urls[0]
	if err := gw.Reload(urls[1:]); err != nil {
		t.Fatal(err)
	}
	after := gateOwners(gw, bodies)
	moved := 0
	for i := range bodies {
		if before[i] == removed {
			if after[i] == removed {
				t.Fatalf("key %d still owned by the removed backend", i)
			}
			moved++
			continue
		}
		if after[i] != before[i] {
			t.Errorf("key %d moved %s→%s though its owner survived", i, before[i], after[i])
		}
	}
	if bound := (K + 2) / 3; moved == 0 || moved > bound {
		t.Errorf("shrink moved %d keys, want 1..%d (the leaver's fair share)", moved, bound)
	}

	// Grow back: only the joiner may take keys.
	if err := gw.Reload(urls); err != nil {
		t.Fatal(err)
	}
	regrown := gateOwners(gw, bodies)
	moved = 0
	for i := range bodies {
		if regrown[i] == after[i] {
			continue
		}
		moved++
		if regrown[i] != removed {
			t.Errorf("key %d moved %s→%s, neither is the joining backend", i, after[i], regrown[i])
		}
	}
	if bound := (K + 2) / 3; moved == 0 || moved > bound { // ceil(K/3): one pre-join node's fair share
		t.Errorf("grow moved %d keys, want 1..%d (the joiner's fair share)", moved, bound)
	}
	if got := gw.reloads.Load(); got != 2 {
		t.Errorf("reloads = %d, want 2", got)
	}
}

// TestReloadDrainsInflight: a request already executing on a backend
// survives that backend's removal — it completes normally while new
// requests immediately route elsewhere, and the backend is reported as
// draining until its last request finishes. Nothing hangs.
func TestReloadDrainsInflight(t *testing.T) {
	release := make(chan struct{})
	// Any failure before the explicit release must still unblock the
	// scripted backend, or cleanup hangs in httptest.Server.Close behind
	// the parked handler until the whole package's test timeout panics —
	// turning a fast failure into ten lost minutes and no other results.
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	var entered atomic.Int64
	gw, nodes, gts := newScriptedFleet(t, 3, Config{Timeout: 20 * time.Second, AttemptTimeout: 20 * time.Second},
		func(i int, w http.ResponseWriter, r *http.Request) {
			if i == 0 {
				entered.Add(1)
				select {
				case <-release:
				case <-r.Context().Done():
				}
			}
			writeGateJSON(w, http.StatusOK, map[string]any{"served_by": i})
		})
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	slow := bodyOwnedBy(t, gw, urls, "/optimize", 0)

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(gts.URL+"/optimize", "application/json", bytes.NewReader(slow))
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		done <- result{resp.StatusCode, buf.Bytes()}
	}()
	waitFor(t, func() bool { return entered.Load() == 1 })

	// Remove the busy backend mid-request.
	if err := gw.Reload(urls[1:]); err != nil {
		t.Fatal(err)
	}
	gw.mu.RLock()
	_, stillDraining := gw.draining[urls[0]]
	gw.mu.RUnlock()
	if !stillDraining {
		t.Error("busy backend not reported as draining")
	}

	// New traffic for the same content must not wait on the drain: the
	// ring now owns the key elsewhere. (A different body dodges the
	// single-flight join with the blocked request.)
	probe := bodyOwnedBy(t, gw, urls[1:], "/optimize", 0) // owner among survivors
	code, _, raw := postRaw(t, gts.URL, "/optimize", probe)
	if code != http.StatusOK {
		t.Fatalf("request during drain = %d: %s", code, raw)
	}

	// Let the stranded request finish: it completes on the removed
	// backend, and the drain then reaps it.
	releaseOnce()
	select {
	case res := <-done:
		if res.code != http.StatusOK || !bytes.Contains(res.body, []byte(`"served_by":0`)) {
			t.Fatalf("in-flight request across reload = %d: %s", res.code, res.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request hung across reload")
	}
	waitFor(t, func() bool {
		gw.mu.RLock()
		defer gw.mu.RUnlock()
		return len(gw.draining) == 0
	})
	if nodes[0].hits.Load() != 1 {
		t.Errorf("removed backend served %d requests, want exactly the stranded one", nodes[0].hits.Load())
	}
}

// TestAdminReloadEndpoint: the HTTP reload path applies membership,
// refuses an empty fleet, and a re-added backend comes back with a
// fresh, closed breaker.
func TestAdminReloadEndpoint(t *testing.T) {
	gw, nodes, gts := newScriptedFleet(t, 3, Config{}, nil)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}

	// Kill node 0 and drive its breaker open through traffic.
	nodes[0].chaos.SetMode(chaos.BackendKilled)
	body := bodyOwnedBy(t, gw, urls, "/optimize", 0)
	for i := 0; i < 8; i++ {
		postRaw(t, gts.URL, "/optimize", body)
	}
	healthz := func() map[string]any {
		code, _, raw := postRawGet(t, gts.URL+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		var h map[string]any
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	bk := healthz()["backends"].(map[string]any)
	if bk[urls[0]].(map[string]any)["breaker"] != "open" {
		t.Fatalf("breaker for killed backend = %v, want open", bk[urls[0]].(map[string]any)["breaker"])
	}

	// Empty reload refused.
	code, _, _ := postRaw(t, gts.URL, "/admin/reload", []byte(`{"backends":[]}`))
	if code != http.StatusBadRequest {
		t.Fatalf("empty reload = %d, want 400", code)
	}

	// Drop node 0, then bring it back (healed): its breaker history must
	// not follow it into its new life.
	for _, set := range [][]string{urls[1:], urls} {
		payload, _ := json.Marshal(map[string]any{"backends": set})
		code, _, raw := postRaw(t, gts.URL, "/admin/reload", payload)
		if code != http.StatusOK {
			t.Fatalf("reload = %d: %s", code, raw)
		}
	}
	nodes[0].chaos.SetMode(chaos.BackendHealthy)
	bk = healthz()["backends"].(map[string]any)
	if got := bk[urls[0]].(map[string]any)["breaker"]; got != "closed" {
		t.Errorf("re-added backend's breaker = %v, want a fresh closed one", got)
	}
	if got := len(bk); got != 3 {
		t.Errorf("healthz reports %d backends, want 3", got)
	}
	// And it serves again.
	code, _, raw := postRaw(t, gts.URL, "/optimize", body)
	if code != http.StatusOK || !bytes.Contains(raw, []byte(`"served_by":0`)) {
		t.Errorf("re-added backend not serving: %d %s", code, raw)
	}
}

func postRawGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}
