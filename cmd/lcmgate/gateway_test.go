package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/fleet"
	"lazycm/internal/lcmserver"
)

const diamond = `func f(a, b, p) {
entry:
  br p t e
t:
  x = a + b
  jmp j
e:
  y = a + b
  jmp j
j:
  z = a + b
  ret z
}
`

// optBody marshals the one request body a test will both send and hash;
// routing is content-addressed, so the exact bytes matter.
func optBody(t *testing.T, program string) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]string{"program": program})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postRaw(t *testing.T, base, path string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}

// fleetNode is one real lcmd backend wrapped in a chaos proxy.
type fleetNode struct {
	srv   *lcmserver.Server
	chaos *chaos.Backend
	ts    *httptest.Server
}

// newFleet spins up n real backends behind chaos proxies and a gateway
// routing across them. Health polling is off unless cfg asks for it, so
// tests drive breakers purely through traffic.
func newFleet(t *testing.T, n int, cfg Config) (*Gateway, []*fleetNode, *httptest.Server) {
	t.Helper()
	nodes := make([]*fleetNode, n)
	urls := make([]string, n)
	for i := range nodes {
		s := lcmserver.NewServer(lcmserver.Config{Workers: 2, Queue: 32})
		cb := chaos.NewBackend(s.Handler())
		ts := httptest.NewServer(cb)
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		nodes[i] = &fleetNode{srv: s, chaos: cb, ts: ts}
		urls[i] = ts.URL
	}
	cfg.Backends = urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	return gw, nodes, gts
}

// scriptedNode is a canned backend that reports which node served a
// request — for routing tests where result bytes don't matter.
type scriptedNode struct {
	hits  atomic.Int64
	chaos *chaos.Backend
	ts    *httptest.Server
}

func newScriptedFleet(t *testing.T, n int, cfg Config, handler func(i int, w http.ResponseWriter, r *http.Request)) (*Gateway, []*scriptedNode, *httptest.Server) {
	t.Helper()
	nodes := make([]*scriptedNode, n)
	urls := make([]string, n)
	for i := range nodes {
		node := &scriptedNode{}
		idx := i
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.hits.Add(1)
			if handler != nil {
				handler(idx, w, r)
				return
			}
			writeGateJSON(w, http.StatusOK, map[string]any{"served_by": idx})
		})
		node.chaos = chaos.NewBackend(inner)
		node.ts = httptest.NewServer(node.chaos)
		t.Cleanup(node.ts.Close)
		nodes[i] = node
		urls[i] = node.ts.URL
	}
	cfg.Backends = urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	return gw, nodes, gts
}

// ownerIndex resolves which node the ring makes primary for a body.
func ownerIndex(t *testing.T, gw *Gateway, urls []string, path string, body []byte) int {
	t.Helper()
	key, _ := requestKey(path, body)
	owner := gw.ring.Owner(key)
	for i, u := range urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("ring owner %q is not a configured backend", owner)
	return -1
}

// bodyOwnedBy searches distinct valid programs until one's primary is
// the wanted node.
func bodyOwnedBy(t *testing.T, gw *Gateway, urls []string, path string, want int) []byte {
	t.Helper()
	for i := 0; i < 512; i++ {
		body := optBody(t, strings.ReplaceAll(diamond, "func f", fmt.Sprintf("func p%d", i)))
		if ownerIndex(t, gw, urls, path, body) == want {
			return body
		}
	}
	t.Fatalf("no probe body hashed to backend %d", want)
	return nil
}

// stripTimings removes every elapsed_ms field (top level and per batch
// item) so responses can be compared as bytes: timing is the one field
// that legitimately differs between identical computations.
func stripTimings(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response is not JSON: %v: %s", err, raw)
	}
	delete(m, "elapsed_ms")
	if results, ok := m["results"].([]any); ok {
		for _, r := range results {
			if item, ok := r.(map[string]any); ok {
				delete(item, "elapsed_ms")
			}
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestGatewayPassThrough: a proxied 200 and a proxied 400 are
// byte-identical — status, Content-Type, body — to asking the backend
// directly. The gateway adds routing, never opinions.
func TestGatewayPassThrough(t *testing.T) {
	_, nodes, gts := newFleet(t, 3, Config{})

	for name, program := range map[string]string{"valid": diamond, "invalid": "func broken {"} {
		body := optBody(t, program)
		viaGate, gateHdr, gateBody := postRaw(t, gts.URL, "/optimize", body)

		// The same bytes from every backend directly: location
		// independence is what makes pass-through comparable at all.
		for i, n := range nodes {
			direct, _, directBody := postRaw(t, n.ts.URL, "/optimize", body)
			if direct != viaGate {
				t.Fatalf("%s: gateway status %d, backend %d status %d", name, viaGate, i, direct)
			}
			if got, want := stripTimings(t, gateBody), stripTimings(t, directBody); got != want {
				t.Errorf("%s: gateway body differs from backend %d:\n gate: %s\n node: %s", name, i, got, want)
			}
		}
		if ct := gateHdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", name, ct)
		}
	}
}

// TestGatewayAffinity: each distinct request lands on its ring owner,
// and replays land on the same node.
func TestGatewayAffinity(t *testing.T) {
	gw, nodes, gts := newScriptedFleet(t, 3, Config{}, nil)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	for i := 0; i < 8; i++ {
		body := optBody(t, fmt.Sprintf("affinity-%d", i))
		want := ownerIndex(t, gw, urls, "/optimize", body)
		for rep := 0; rep < 2; rep++ {
			code, _, raw := postRaw(t, gts.URL, "/optimize", body)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, raw)
			}
			var out struct {
				ServedBy int `json:"served_by"`
			}
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatal(err)
			}
			if out.ServedBy != want {
				t.Fatalf("request %d rep %d served by %d, ring owner is %d", i, rep, out.ServedBy, want)
			}
		}
	}
}

// TestGatewaySingleFlight: identical concurrent requests collapse into
// one backend call; every caller gets the leader's bytes.
func TestGatewaySingleFlight(t *testing.T) {
	gate := make(chan struct{})
	gw, nodes, gts := newScriptedFleet(t, 1, Config{}, func(i int, w http.ResponseWriter, r *http.Request) {
		<-gate
		writeGateJSON(w, http.StatusOK, map[string]any{"served_by": i, "nonce": "leader"})
	})

	const callers = 8
	body := optBody(t, diamond)
	results := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, raw := postRaw(t, gts.URL, "/optimize", body)
			results[i] = raw
		}(i)
	}
	// All callers in flight: one leader at the backend, everyone else
	// joined to it. Only then release the backend.
	waitFor(t, func() bool {
		return nodes[0].hits.Load() == 1 && gw.dedupeJoins.Load() == callers-1
	})
	close(gate)
	wg.Wait()

	if hits := nodes[0].hits.Load(); hits != 1 {
		t.Fatalf("backend hit %d times for %d identical requests", hits, callers)
	}
	for i, raw := range results {
		if !bytes.Equal(raw, results[0]) {
			t.Errorf("caller %d got different bytes: %s vs %s", i, raw, results[0])
		}
	}
}

// TestGatewayFailover: killing a request's primary mid-fleet reroutes
// it to the next replica and the response stays byte-identical to a
// healthy single node's answer.
func TestGatewayFailover(t *testing.T) {
	gw, nodes, gts := newFleet(t, 3, Config{AttemptTimeout: time.Second})
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	body := optBody(t, diamond)
	primary := ownerIndex(t, gw, urls, "/optimize", body)

	// The healthy answer, from a non-primary node directly.
	other := (primary + 1) % len(nodes)
	wantCode, _, wantBody := postRaw(t, nodes[other].ts.URL, "/optimize", body)
	if wantCode != http.StatusOK {
		t.Fatalf("healthy backend answered %d: %s", wantCode, wantBody)
	}

	nodes[primary].chaos.SetMode(chaos.BackendKilled)
	code, _, raw := postRaw(t, gts.URL, "/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("failover answered %d: %s", code, raw)
	}
	if got, want := stripTimings(t, raw), stripTimings(t, wantBody); got != want {
		t.Errorf("failover bytes differ from healthy output:\n got: %s\nwant: %s", got, want)
	}
	if gw.failovers.Load() == 0 {
		t.Error("failover counter did not move")
	}
}

// TestGatewayBreakerIsolation is the acceptance check for breaker
// routing: once a dead backend's breaker opens, not one more request is
// routed to it while open; after revival, cooldown probes close the
// breaker and traffic returns.
func TestGatewayBreakerIsolation(t *testing.T) {
	var logBuf bytes.Buffer
	gw, nodes, gts := newScriptedFleet(t, 3, Config{
		AttemptTimeout: time.Second,
		Breaker:        fleet.BreakerConfig{FailureThreshold: 2, Cooldown: 150 * time.Millisecond, HalfOpenProbes: 1},
		AccessLog:      &logBuf,
	}, nil)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	dead := 0
	body := bodyOwnedBy(t, gw, urls, "/optimize", dead)
	nodes[dead].chaos.SetMode(chaos.BackendKilled)
	deadB := gw.backends[urls[dead]]

	// Trip the breaker through traffic: 2 failed attempts.
	for i := 0; i < 2; i++ {
		if code, _, raw := postRaw(t, gts.URL, "/optimize", body); code != http.StatusOK {
			t.Fatalf("failover during trip answered %d: %s", code, raw)
		}
	}
	if got := deadB.breaker.State(); got != fleet.BreakerOpen {
		t.Fatalf("breaker state after failure streak = %v, want open", got)
	}

	// Open: the routed counter must freeze — zero attempts reach the
	// dead backend no matter how much traffic wants it.
	frozen := deadB.routed.Load()
	for i := 0; i < 10; i++ {
		if code, _, raw := postRaw(t, gts.URL, "/optimize", body); code != http.StatusOK {
			t.Fatalf("request while open answered %d: %s", code, raw)
		}
	}
	if got := deadB.routed.Load(); got != frozen {
		t.Fatalf("open breaker leaked traffic: routed %d -> %d", frozen, got)
	}
	if !strings.Contains(logBuf.String(), "reason=breaker-open") {
		t.Error("access log has no breaker-open skip entries")
	}

	// Revive, wait out the cooldown: the next request is the half-open
	// probe, it succeeds, and the backend is back in rotation.
	nodes[dead].chaos.SetMode(chaos.BackendHealthy)
	time.Sleep(gw.cfg.Breaker.Cooldown + 20*time.Millisecond)
	if code, _, raw := postRaw(t, gts.URL, "/optimize", body); code != http.StatusOK {
		t.Fatalf("probe request answered %d: %s", code, raw)
	}
	if got := deadB.breaker.State(); got != fleet.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if got := deadB.routed.Load(); got != frozen+1 {
		t.Fatalf("probe routed count = %d, want %d", got, frozen+1)
	}
	// And the next replay is served by the revived primary again.
	before := deadB.routed.Load()
	if code, _, _ := postRaw(t, gts.URL, "/optimize", body); code != http.StatusOK {
		t.Fatal("post-recovery request failed")
	}
	if deadB.routed.Load() != before+1 {
		t.Error("recovered backend did not take its traffic back")
	}
}

// TestGatewayShedJitter: with the whole fleet down the gateway sheds
// with an explicit 503 + Retry-After; the hint is deterministic per
// request (replay → same hint) and seeded by the primary backend, so
// requests owned by different backends spread their retries.
func TestGatewayShedJitter(t *testing.T) {
	gw, nodes, gts := newScriptedFleet(t, 2, Config{
		AttemptTimeout: time.Second,
		Breaker:        fleet.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
	}, nil)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	for _, n := range nodes {
		n.chaos.SetMode(chaos.BackendKilled)
	}

	shedMS := func(body []byte) int64 {
		t.Helper()
		code, hdr, raw := postRaw(t, gts.URL, "/optimize", body)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("all-down fleet answered %d: %s", code, raw)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("shed response missing Retry-After header")
		}
		var out struct {
			Kind         string `json:"kind"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.Kind != "unavailable" || out.RetryAfterMS <= 0 {
			t.Fatalf("shed body %s", raw)
		}
		return out.RetryAfterMS
	}

	body0 := bodyOwnedBy(t, gw, urls, "/optimize", 0)
	first := shedMS(body0)
	if replay := shedMS(body0); replay != first {
		t.Fatalf("replayed shed hint changed: %d then %d", first, replay)
	}

	// Requests owned by the other backend draw from different seeds. A
	// single pair can still land on the same millisecond by chance, so
	// sample a few distinct other-owner requests before declaring the
	// jitter broken.
	differs, sampled := false, 0
	for i := 0; i < 512 && !differs && sampled < 3; i++ {
		body1 := optBody(t, fmt.Sprintf("other-owner-%d", i))
		if ownerIndex(t, gw, urls, "/optimize", body1) != 1 {
			continue
		}
		sampled++
		differs = shedMS(body1) != first
	}
	if sampled == 0 {
		t.Fatal("no probe body hashed to backend 1")
	}
	if !differs {
		t.Error("requests owned by different backends all drew the same retry hint")
	}
	if gw.shed.Load() == 0 {
		t.Error("shed counter did not move")
	}
}

// TestGatewayBatchRouting: batch requests route through the same path
// and come back byte-identical to a direct backend batch.
func TestGatewayBatchRouting(t *testing.T) {
	_, nodes, gts := newFleet(t, 3, Config{})
	module := diamond + strings.ReplaceAll(diamond, "func f", "func g")
	body := optBody(t, module)

	wantCode, _, want := postRaw(t, nodes[0].ts.URL, "/optimize/batch", body)
	if wantCode != http.StatusOK {
		t.Fatalf("direct batch answered %d: %s", wantCode, want)
	}
	code, _, raw := postRaw(t, gts.URL, "/optimize/batch", body)
	if code != http.StatusOK {
		t.Fatalf("gateway batch answered %d: %s", code, raw)
	}
	if got, wantN := stripTimings(t, raw), stripTimings(t, want); got != wantN {
		t.Errorf("batch bytes differ:\n gate: %s\nnode: %s", got, wantN)
	}
}

// TestGatewayHealthPolling: the poller marks a draining backend
// not-ready and the preferred pass stops placing traffic on it, before
// any request has to fail.
func TestGatewayHealthPolling(t *testing.T) {
	gw, nodes, gts := newFleet(t, 2, Config{HealthInterval: 20 * time.Millisecond})
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.ts.URL
	}
	body := bodyOwnedBy(t, gw, urls, "/optimize", 0)

	nodes[0].srv.BeginDrain()
	waitFor(t, func() bool { return !gw.backends[urls[0]].ready.Load() })

	before := gw.backends[urls[0]].routed.Load()
	if code, _, raw := postRaw(t, gts.URL, "/optimize", body); code != http.StatusOK {
		t.Fatalf("request during drain answered %d: %s", code, raw)
	}
	if got := gw.backends[urls[0]].routed.Load(); got != before {
		t.Errorf("draining backend still took traffic: routed %d -> %d", before, got)
	}
}

// TestGatewayReadyz: ready while any breaker admits; 503 once every
// backend's breaker is open.
func TestGatewayReadyz(t *testing.T) {
	gw, nodes, gts := newScriptedFleet(t, 2, Config{
		AttemptTimeout: time.Second,
		Breaker:        fleet.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
	}, nil)

	code, _, _ := postRaw(t, gts.URL, "/optimize", optBody(t, "warm"))
	if code != http.StatusOK {
		t.Fatalf("healthy fleet answered %d", code)
	}
	resp, err := http.Get(gts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on healthy fleet = %d", resp.StatusCode)
	}

	for _, n := range nodes {
		n.chaos.SetMode(chaos.BackendKilled)
	}
	postRaw(t, gts.URL, "/optimize", optBody(t, "trip-both"))
	waitFor(t, func() bool {
		open := 0
		for _, b := range gw.backends {
			if b.breaker.State() == fleet.BreakerOpen {
				open++
			}
		}
		return open == len(gw.backends)
	})
	resp, err = http.Get(gts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Ready             bool `json:"ready"`
		BackendsAvailable int  `json:"backends_available"`
	}
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || status.Ready || status.BackendsAvailable != 0 {
		t.Fatalf("readyz with all breakers open = %d, %+v", resp.StatusCode, status)
	}

	// healthz stays 200 regardless — it's the observability surface.
	resp, err = http.Get(gts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if _, ok := h["backends"].(map[string]any); !ok {
		t.Errorf("healthz missing backends map: %v", h)
	}
}
