package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// gateRecord is one decoded NDJSON line from a proxied stream. It only
// carries the fields the gateway tests assert on; notably fell_back is
// omitted because it is a bool on items and an int on trailers.
type gateRecord struct {
	Type      string `json:"type"`
	ID        string `json:"id"`
	Functions int    `json:"functions"`
	Index     int    `json:"index"`
	Name      string `json:"name"`
	Status    int    `json:"status"`
	Program   string `json:"program"`
	Done      bool   `json:"done"`
	Completed int    `json:"completed"`
	Optimized int    `json:"optimized"`
}

// readNDJSON performs one streaming request through base and decodes
// every line, failing unless the response is a well-formed NDJSON stream.
func readNDJSON(t *testing.T, method, url string, body []byte) []gateRecord {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if method == http.MethodPost {
		resp, err = http.Post(url, "application/json", bytes.NewReader(body))
	} else {
		resp, err = http.Get(url)
	}
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d", method, url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want the backend's NDJSON type passed through", ct)
	}
	var recs []gateRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec gateRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("undecodable stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return recs
}

// frame splits a proxied stream into meta, items, and trailer, checking
// the framing invariants every well-formed stream carries.
func frame(t *testing.T, recs []gateRecord) (gateRecord, []gateRecord, gateRecord) {
	t.Helper()
	if len(recs) < 2 {
		t.Fatalf("stream too short: %+v", recs)
	}
	meta, trailer := recs[0], recs[len(recs)-1]
	if meta.Type != "job" {
		t.Fatalf("first record type %q, want the job meta line", meta.Type)
	}
	if trailer.Type != "trailer" {
		t.Fatalf("last record type %q, want the trailer", trailer.Type)
	}
	var items []gateRecord
	for _, r := range recs[1 : len(recs)-1] {
		switch r.Type {
		case "item":
			items = append(items, r)
		case "heartbeat":
		default:
			t.Fatalf("unexpected record type %q mid-stream", r.Type)
		}
	}
	return meta, items, trailer
}

// TestGatewayStreamProxyEndToEnd drives the full resumable-stream
// surface through the gateway: a ?job= stream proxied unbuffered to its
// ring owner, the job then found by ID via the replica walk (the gateway
// cannot know which backend admitted it), its stream replayed, and the
// whole exchange visible in the gateway's healthz — streams_proxied plus
// the per-backend and fleet job/fn-cache gauges fed by /readyz probes.
func TestGatewayStreamProxyEndToEnd(t *testing.T) {
	_, nodes, gts := newFleet(t, 3, Config{HealthInterval: 20 * time.Millisecond})
	body := optBody(t, diamond)

	// Reference: the same module through the plain buffered endpoint on a
	// backend directly. Routing and streaming must not change bytes.
	code, _, refRaw := postRaw(t, nodes[0].ts.URL, "/optimize", body)
	if code != 200 {
		t.Fatalf("reference optimize: %d: %s", code, refRaw)
	}
	var ref struct {
		Program string `json:"program"`
	}
	if err := json.Unmarshal(refRaw, &ref); err != nil {
		t.Fatal(err)
	}

	// The resumable stream through the gateway.
	meta, items, trailer := frame(t, readNDJSON(t, http.MethodPost, gts.URL+"/optimize/stream?job=1", body))
	if !strings.HasPrefix(meta.ID, "j-") {
		t.Fatalf("job meta ID = %q, want a derived job ID for ?job=", meta.ID)
	}
	if len(items) != 1 || items[0].Status != 200 {
		t.Fatalf("items = %+v, want the one diamond function optimized", items)
	}
	if items[0].Program != ref.Program {
		t.Errorf("streamed function diverges from direct optimize:\n got: %q\nwant: %q", items[0].Program, ref.Program)
	}
	if !trailer.Done || trailer.Completed != 1 || trailer.Optimized != 1 {
		t.Errorf("trailer %+v, want done 1/1", trailer)
	}

	// The job is findable by ID through the gateway even though exactly
	// one backend holds it and the ID hashes to an arbitrary ring
	// position: 404s from the wrong replicas are "not mine", not "gone".
	holders := 0
	for _, n := range nodes {
		if st, _, _ := postRawGet(t, n.ts.URL+"/jobs/"+meta.ID); st == 200 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("job held by %d backends, want exactly 1 (the walk must matter)", holders)
	}
	st, _, raw := postRawGet(t, gts.URL+"/jobs/"+meta.ID)
	if st != 200 {
		t.Fatalf("GET /jobs/%s via gateway = %d: %s", meta.ID, st, raw)
	}
	var snap struct {
		Done bool `json:"done"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil || !snap.Done {
		t.Errorf("job snapshot via gateway: done=%v err=%v (%s)", snap.Done, err, raw)
	}
	if st, _, _ := postRawGet(t, gts.URL+"/jobs/j-0000000000000000"); st != http.StatusNotFound {
		t.Errorf("unknown job via gateway = %d, want 404 after every replica says not-mine", st)
	}

	// Resuming the finished job's stream through the gateway replays the
	// item and closes with a done trailer.
	_, ritems, rtrailer := frame(t, readNDJSON(t, http.MethodGet, gts.URL+"/jobs/"+meta.ID+"/stream", nil))
	if len(ritems) != 1 || ritems[0].Program != ref.Program {
		t.Errorf("replayed items = %+v, want the completed function again", ritems)
	}
	if !rtrailer.Done {
		t.Errorf("replay trailer %+v, want done", rtrailer)
	}

	// Observability: both streams counted, and once a probe cycle has run
	// the fleet view shows the function-cache traffic the job generated.
	healthz := func() map[string]any {
		code, _, raw := postRawGet(t, gts.URL+"/healthz")
		if code != 200 {
			t.Fatalf("healthz = %d", code)
		}
		var h map[string]any
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	waitFor(t, func() bool {
		fleet, _ := healthz()["fleet"].(map[string]any)
		miss, _ := fleet["fn_cache_misses"].(float64)
		return miss >= 1
	})
	h := healthz()
	if got, _ := h["streams_proxied"].(float64); got < 2 {
		t.Errorf("streams_proxied = %v, want >= 2 (submission + resume)", h["streams_proxied"])
	}
	for _, n := range nodes {
		b, ok := h["backends"].(map[string]any)[n.ts.URL].(map[string]any)
		if !ok {
			t.Fatalf("backend %s missing from healthz", n.ts.URL)
		}
		for _, k := range []string{"jobs_active", "jobs_resumed", "jobs_expired", "stream_clients",
			"fn_cache_hits", "fn_cache_misses", "solver_parallel_slices", "solver_sparse_skips"} {
			if _, ok := b[k]; !ok {
				t.Errorf("backend %s healthz entry missing %q", n.ts.URL, k)
			}
		}
	}
}
