// Command lcmgate is the fleet front end for lcmd: it consistent-hashes
// optimization requests across N backends for cache affinity, fails
// over along the ring when a node dies or sheds, circuit-breaks dead
// backends out of the rotation, and collapses identical in-flight
// requests into a single backend call.
//
// Endpoints:
//
//	POST /optimize        — proxied to the owning backend (failover on error)
//	POST /optimize/batch  — same routing, batch payloads (?job= passes through)
//	POST /optimize/stream — NDJSON stream proxied unbuffered, flush per
//	                        chunk; failover only before the first byte
//	GET  /jobs/{id}        — buffered proxy; 404s walk the replicas (a job
//	                        lives only on the backend that admitted it)
//	GET  /jobs/{id}/stream — unbuffered resume stream, same 404 walk
//	GET  /healthz         — gateway + per-backend routing statistics,
//	                        including per-backend job and fn-cache gauges
//	GET  /readyz          — 200 while at least one backend is admittable
//	POST /admin/reload    — swap the backend set: {"backends": [...]}
//
// Membership is live: -backends-file names a file with one backend URL
// per line (# comments allowed); SIGHUP re-reads it and applies the
// change with minimal ring movement — surviving backends keep their
// placements and breaker history, removed ones drain their in-flight
// work, added ones start fresh. /admin/reload does the same over HTTP.
//
// Routing cannot change results: every backend computes byte-identical
// output for the same request (see DESIGN.md §8), so failover and
// dedupe are always safe.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lazycm/internal/fleet"
)

func main() {
	var (
		addr           = flag.String("addr", ":8656", "listen address")
		backends       = flag.String("backends", "", "comma-separated lcmd base URLs (required unless -backends-file)")
		backendsFile   = flag.String("backends-file", "", "file with one backend URL per line; SIGHUP re-reads it")
		attemptTimeout = flag.Duration("attempt-timeout", DefaultAttemptTimeout, "per-backend attempt budget")
		timeout        = flag.Duration("timeout", DefaultTimeout, "end-to-end budget per proxied request")
		streamTimeout  = flag.Duration("stream-timeout", DefaultStreamTimeout, "end-to-end budget per proxied NDJSON stream")
		healthInterval = flag.Duration("health-interval", DefaultHealthInterval, "per-backend /readyz polling period")
		vnodes         = flag.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per backend on the hash ring")
		loadFactor     = flag.Float64("load-factor", DefaultLoadFactor, "bounded-load placement factor (<=1 disables)")
		brkFailures    = flag.Int("breaker-failures", 0, "consecutive failures that open a backend's breaker (0 = default)")
		brkCooldown    = flag.Duration("breaker-cooldown", 0, "how long an open breaker refuses before probing (0 = default)")
		brkProbes      = flag.Int("breaker-probes", 0, "successful half-open probes required to close (0 = default)")
		accessLog      = flag.String("access-log", "", "routing log destination: a file path, '-' for stderr, empty for none")
	)
	flag.Parse()

	ids := splitBackends(*backends)
	if *backendsFile != "" {
		fileIDs, err := readBackendsFile(*backendsFile)
		if err != nil {
			log.Fatalf("lcmgate: %v", err)
		}
		ids = append(ids, fileIDs...)
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lcmgate: -backends or -backends-file is required (lcmd base URLs)")
		os.Exit(2)
	}

	var logDst io.Writer
	switch *accessLog {
	case "":
	case "-":
		logDst = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("lcmgate: opening access log: %v", err)
		}
		defer f.Close()
		logDst = f
	}

	gw, err := NewGateway(Config{
		Backends:       ids,
		Vnodes:         *vnodes,
		LoadFactor:     *loadFactor,
		AttemptTimeout: *attemptTimeout,
		Timeout:        *timeout,
		StreamTimeout:  *streamTimeout,
		HealthInterval: *healthInterval,
		Breaker: fleet.BreakerConfig{
			FailureThreshold: *brkFailures,
			Cooldown:         *brkCooldown,
			HalfOpenProbes:   *brkProbes,
		},
		AccessLog: logDst,
	})
	if err != nil {
		log.Fatalf("lcmgate: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("lcmgate listening on %s, routing across %d backends", *addr, len(ids))

	// SIGHUP re-reads -backends-file and applies the membership change
	// without dropping a request; without the flag it is ignored.
	if *backendsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := readBackendsFile(*backendsFile)
				if err != nil {
					log.Printf("lcmgate: SIGHUP: %v (membership unchanged)", err)
					continue
				}
				if err := gw.Reload(next); err != nil {
					log.Printf("lcmgate: SIGHUP: %v (membership unchanged)", err)
					continue
				}
				log.Printf("lcmgate: SIGHUP: membership reloaded, %d backends", len(next))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("lcmgate: %v", err)
	case s := <-sig:
		log.Printf("lcmgate: %v received, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2**timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("lcmgate: shutdown: %v", err)
	}
	gw.Close()
}

// readBackendsFile parses a membership file: one backend URL per line,
// blank lines and #-comments ignored.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading backends file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, strings.TrimRight(line, "/"))
	}
	return out, nil
}

// splitBackends parses the -backends flag, trimming whitespace and
// trailing slashes so joined URLs stay clean.
func splitBackends(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
