package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/fleet"
	"lazycm/internal/lcmserver"
)

// corruptEntries flips one byte in every durable cache entry under dir —
// the disk-rot fault the store's per-read verification must catch.
func corruptEntries(t *testing.T, dir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.ce"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-2] ^= 0x10
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(files)
}

// TestFleetWarmRestart is the durable-state soak: three lcmd backends
// with disk caches and peer fill behind chaos proxies, traffic flowing
// through the gateway while backend 0 crash-restarts twice — once to
// prove the revived process serves its old hits from disk byte-identical
// to a single-node reference, and once over a deliberately bit-flipped
// cache directory to prove rotted entries are dropped and recomputed,
// never served. Throughout: exact outcome accounting on every server
// generation, breaker-driven recovery of the revived address, and no
// goroutine leaks.
//
// Set LCM_RESTART_CACHE to a directory to keep the cache tier on disk
// for CI artifacts; LCMGATE_SOAK_LOG captures the routing log.
func TestFleetWarmRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	window := func(d time.Duration) time.Duration {
		if testing.Short() {
			return d / 2
		}
		return d
	}

	var logBuf syncBuffer
	var logDst io.Writer = &logBuf
	if path := os.Getenv("LCMGATE_SOAK_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("opening LCMGATE_SOAK_LOG: %v", err)
		}
		defer f.Close()
		logDst = io.MultiWriter(&logBuf, f)
	}

	cacheRoot := os.Getenv("LCM_RESTART_CACHE")
	if cacheRoot == "" {
		cacheRoot = t.TempDir()
	}

	// The proxies allocate their addresses first: each backend's config
	// needs the *other* proxies' URLs as its peer list, so the servers
	// can only be built once every address exists.
	const nBackends = 3
	proxies := make([]*chaos.Backend, nBackends)
	tss := make([]*httptest.Server, nBackends)
	urls := make([]string, nBackends)
	dirs := make([]string, nBackends)
	for i := range proxies {
		proxies[i] = chaos.NewBackend(nil)
		tss[i] = httptest.NewServer(proxies[i])
		urls[i] = tss[i].URL
		dirs[i] = filepath.Join(cacheRoot, fmt.Sprintf("backend%d", i))
	}
	serverConfig := func(i int) lcmserver.Config {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		return lcmserver.Config{
			Workers: 4, Queue: 16, Timeout: 2 * time.Second,
			Quarantine: "",
			CacheDir:   dirs[i],
			Peers:      peers,
		}
	}
	// generations collects every server instance ever started so the
	// final audit can check each one's books; gen0..gen2 are the current
	// process behind each proxy.
	var genMu sync.Mutex
	generations := []*lcmserver.Server{}
	current := make([]*lcmserver.Server, nBackends)
	boot := func(i int) *lcmserver.Server {
		s := lcmserver.NewServer(serverConfig(i))
		genMu.Lock()
		generations = append(generations, s)
		current[i] = s
		genMu.Unlock()
		proxies[i].SetHandler(s.Handler())
		return s
	}
	for i := range proxies {
		boot(i)
	}

	const cooldown = 2 * time.Second
	gw, err := NewGateway(Config{
		Backends:       urls,
		AttemptTimeout: 500 * time.Millisecond,
		Timeout:        5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		Breaker:        fleet.BreakerConfig{FailureThreshold: 3, Cooldown: cooldown, HalfOpenProbes: 2},
		AccessLog:      logDst,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())

	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			gts.Close()
			gw.Close()
			genMu.Lock()
			gens := append([]*lcmserver.Server{}, generations...)
			genMu.Unlock()
			for i := range tss {
				tss[i].Close()
			}
			for _, s := range gens {
				s.Close()
			}
		}
	}
	defer shutdown()

	// Corpus: one program owned by each backend, reference outputs from
	// a pristine single node. Every clean 200 from the fleet — before,
	// during, and after the restarts — must match these bytes.
	corpus := make([][]byte, nBackends)
	for i := range corpus {
		corpus[i] = bodyOwnedBy(t, gw, urls, "/optimize", i)
	}
	expected := make(map[string]string, nBackends)
	ref := lcmserver.NewServer(lcmserver.Config{Workers: 1, Queue: 4, Quarantine: ""})
	refTS := httptest.NewServer(ref.Handler())
	for _, body := range corpus {
		code, _, raw := postRaw(t, refTS.URL, "/optimize", body)
		if code != http.StatusOK {
			t.Fatalf("reference node answered %d: %s", code, raw)
		}
		var out struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		expected[string(body)] = out.Program
	}
	refTS.Close()
	ref.Close()

	// Traffic workers: hammer the corpus, verify the byte-identity and
	// response contract on everything.
	var c200, cShed, cOther, sent atomic.Int64
	var identityViolations atomic.Int64
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				body := corpus[rng.Intn(len(corpus))]
				sent.Add(1)
				resp, err := http.Post(gts.URL+"/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					cOther.Add(1)
					t.Errorf("gateway transport error: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var out struct {
					Program  string `json:"program"`
					Error    string `json:"error"`
					FellBack bool   `json:"fell_back"`
					Canceled bool   `json:"canceled"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					cOther.Add(1)
					t.Errorf("non-JSON response (status %d): %s", resp.StatusCode, raw)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					c200.Add(1)
					if out.Error == "" && !out.FellBack && !out.Canceled {
						if want := expected[string(body)]; out.Program != want {
							identityViolations.Add(1)
							t.Errorf("200 diverged from single-node output:\n got: %q\nwant: %q", out.Program, want)
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					cShed.Add(1)
				default:
					cOther.Add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
				}
			}
		}(g)
	}

	// Phase 1: healthy warm-up — every backend computes and persists its
	// share of the corpus.
	gen1 := current[0]
	waitFor(t, func() bool { return gen1.Stats().DiskEntries > 0 })
	time.Sleep(window(400 * time.Millisecond))

	// Phase 2: crash-restart backend 0. The address stays, the process
	// is replaced; the new one boots over the old cache directory.
	killed := gw.backends[urls[0]]
	revived := make(chan *lcmserver.Server, 1)
	proxies[0].Restart(window(200*time.Millisecond), func() http.Handler {
		s := lcmserver.NewServer(serverConfig(0))
		genMu.Lock()
		generations = append(generations, s)
		current[0] = s
		genMu.Unlock()
		revived <- s
		return s.Handler()
	})
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerOpen })
	gen2 := <-revived

	// Warm-start proof: the revived process booted with the dead one's
	// entries already on disk ...
	if gen2.Stats().DiskEntries == 0 {
		t.Error("revived backend booted with an empty disk cache")
	}
	// ... the gateway routes to it again once its breaker recloses ...
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerClosed })
	routedBefore := killed.routed.Load()
	waitFor(t, func() bool { return killed.routed.Load() > routedBefore })
	// ... and its old hits are served from disk, not recomputed. The
	// traffic workers verify those responses byte-for-byte against the
	// single-node reference as they arrive.
	waitFor(t, func() bool { return gen2.Stats().DiskHits > 0 })

	// Phase 3: disk rot. Flip a byte in every entry backend 0 holds,
	// then crash-restart it again over the rotted directory. The store
	// must detect every rotted entry on read — count it, unlink it,
	// recompute — and the traffic workers keep proving nothing corrupt
	// ever reaches a client.
	proxies[0].SetMode(chaos.BackendKilled)
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerOpen })
	if n := corruptEntries(t, dirs[0]); n == 0 {
		t.Fatal("no disk entries to corrupt")
	}
	proxies[0].Restart(window(200*time.Millisecond), func() http.Handler {
		s := lcmserver.NewServer(serverConfig(0))
		genMu.Lock()
		generations = append(generations, s)
		current[0] = s
		genMu.Unlock()
		revived <- s
		return s.Handler()
	})
	gen3 := <-revived
	waitFor(t, func() bool { return killed.breaker.State() == fleet.BreakerClosed })
	waitFor(t, func() bool { return gen3.Stats().CorruptDropped > 0 })

	// Phase 4: settle and stop.
	time.Sleep(window(400 * time.Millisecond))
	close(stopTraffic)
	wg.Wait()
	shutdown()

	// Response contract held end to end.
	if got := c200.Load() + cShed.Load() + cOther.Load(); got != sent.Load() {
		t.Errorf("responses %d != requests sent %d", got, sent.Load())
	}
	if cOther.Load() != 0 {
		t.Errorf("out-of-contract responses: %d", cOther.Load())
	}
	if identityViolations.Load() != 0 {
		t.Errorf("byte-identity violations: %d", identityViolations.Load())
	}
	if c200.Load() == 0 {
		t.Error("soak produced no successful responses")
	}

	// Exact accounting on every server generation — including the two
	// that were killed mid-soak: whatever each admitted, it classified.
	var fleetRequests, fleetOutcomes int64
	for i, s := range generations {
		st := s.Stats()
		sum := st.Optimized + st.FellBack + st.Canceled + st.Invalid + st.Panics
		if sum != st.Requests {
			t.Errorf("generation %d outcome buckets sum to %d, want %d (%+v)", i, sum, st.Requests, st)
		}
		if st.Panics != 0 {
			t.Errorf("generation %d recovered %d panics", i, st.Panics)
		}
		if st.Queued != 0 || st.Inflight != 0 {
			t.Errorf("generation %d drained with queued=%d inflight=%d", i, st.Queued, st.Inflight)
		}
		fleetRequests += st.Requests
		fleetOutcomes += sum
	}
	if fleetRequests != fleetOutcomes {
		t.Errorf("fleet-wide accounting drifted across revivals: %d requests, %d outcomes", fleetRequests, fleetOutcomes)
	}

	// The rotted entries were detected, never served (the identity check
	// above is the serving-side proof; this is the detection-side one).
	if gen3.Stats().CorruptDropped == 0 {
		t.Error("rotted cache directory produced no corrupt-dropped count")
	}

	// Routing-log audit: the killed address was breaker-skipped while
	// down and served again after each revival.
	lg := logBuf.String()
	if !strings.Contains(lg, fmt.Sprintf("backend=%s reason=breaker-open", urls[0])) {
		t.Error("routing log has no breaker-open skips for the restarted backend")
	}
	if !strings.Contains(lg, "serve key=") || !strings.Contains(lg, fmt.Sprintf("backend=%s status=200", urls[0])) {
		t.Error("routing log shows no serves from the restarted backend")
	}

	// Proxy audit: exactly two completed restarts, with real drops while
	// down.
	if got := proxies[0].Restarts.Load(); got != 2 {
		t.Errorf("chaos proxy completed %d restarts, want 2", got)
	}
	if proxies[0].Dropped.Load() == 0 {
		t.Error("restarting backend never dropped a connection")
	}

	// No goroutine leaks once the whole fleet is down.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
