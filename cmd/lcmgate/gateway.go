package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/fleet"
	"lazycm/internal/overload"
)

// Config tunes the fleet gateway.
type Config struct {
	// Backends is the set of lcmd base URLs the gateway routes across.
	// At least one is required.
	Backends []string
	// Vnodes is the per-backend virtual-node count on the hash ring;
	// 0 means fleet.DefaultVnodes.
	Vnodes int
	// LoadFactor is the bounded-load placement factor: a backend stops
	// receiving new placements while its in-flight count exceeds
	// LoadFactor × the fleet average. <=1 disables the bound; 0 means
	// DefaultLoadFactor.
	LoadFactor float64
	// AttemptTimeout bounds one backend attempt, so a partitioned
	// backend costs one timeout, not the whole request budget. 0 means
	// DefaultAttemptTimeout.
	AttemptTimeout time.Duration
	// Timeout bounds one proxied request end to end, across every
	// failover attempt. 0 means DefaultTimeout.
	Timeout time.Duration
	// StreamTimeout bounds one proxied NDJSON stream end to end. Streams
	// are long-lived by design (heartbeats keep them open while a large
	// job computes), so this is generous where Timeout is tight. 0 means
	// DefaultStreamTimeout.
	StreamTimeout time.Duration
	// HealthInterval is the /readyz polling period per backend; 0 means
	// DefaultHealthInterval, negative disables polling (tests drive
	// breakers through traffic alone).
	HealthInterval time.Duration
	// Breaker tunes the per-backend circuit breakers.
	Breaker fleet.BreakerConfig
	// AccessLog, when non-nil, receives one line per routing event
	// (attempts, failovers, breaker skips, sheds, dedupe joins) — the
	// audit trail the fleet soak and CI artifacts read.
	AccessLog io.Writer
	// Transport overrides the outbound round tripper; nil means
	// http.DefaultTransport.
	Transport http.RoundTripper
}

const (
	// DefaultTimeout is the end-to-end budget for one proxied request.
	DefaultTimeout = 10 * time.Second
	// DefaultStreamTimeout is the end-to-end budget for one proxied
	// NDJSON stream.
	DefaultStreamTimeout = 5 * time.Minute
	// DefaultAttemptTimeout is the per-backend attempt budget.
	DefaultAttemptTimeout = 2 * time.Second
	// DefaultHealthInterval is the /readyz polling period.
	DefaultHealthInterval = 500 * time.Millisecond
	// DefaultLoadFactor is the bounded-load placement factor.
	DefaultLoadFactor = 1.25
	// maxBody mirrors the backend's request-body cap so the gateway
	// rejects oversized programs without spending a backend slot.
	maxBody = 4 << 20
	// maxRespBody bounds what the gateway buffers from a backend.
	maxRespBody = 8 << 20
)

func (c Config) withDefaults() Config {
	if c.LoadFactor == 0 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = DefaultStreamTimeout
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	return c
}

// backend is the gateway's view of one lcmd node: its breaker, its
// load, and what the health poller last learned about it.
type backend struct {
	id      string
	breaker *fleet.Breaker

	inflight  atomic.Int64
	routed    atomic.Int64 // proxied attempts dispatched (health probes excluded)
	succeeded atomic.Int64 // attempts the backend answered (any non-5xx status)
	failed    atomic.Int64 // transport errors and 5xx answers
	probes    atomic.Int64 // health probes sent
	ready     atomic.Bool
	degrade   atomic.Int32 // degrade_level from the last readiness probe

	// Job and cache gauges harvested from the backend's last readiness
	// probe — the fleet view of its resumable-job and per-function-cache
	// health, surfaced verbatim on the gateway's /healthz.
	jobsActive    atomic.Int64
	jobsResumed   atomic.Int64
	jobsExpired   atomic.Int64
	streamClients atomic.Int64
	fnCacheHits   atomic.Int64
	fnCacheMisses atomic.Int64
	// Solver-core telemetry: how often the backend's data-flow solver
	// engaged its parallel word-sliced and sparse-worklist fast paths.
	// The chaos soak asserts these advance fleet-wide under load.
	solverSlices      atomic.Int64
	solverSparseSkips atomic.Int64

	// Hostile-storage state harvested from the probe: whether the
	// backend has quarantined its disk tier (and is refusing new
	// journaled jobs), how many times it has flipped, and the per-class
	// fault totals its health tracker has seen.
	diskDisabled     atomic.Bool
	journalDegraded  atomic.Bool
	diskTransitions  atomic.Int64
	diskFaultsWrite  atomic.Int64
	diskFaultsRead   atomic.Int64
	diskFaultsSync   atomic.Int64
	diskFaultsRename atomic.Int64

	// gone closes when the backend leaves the fleet, stopping its
	// health loop without touching the gateway-wide stop channel.
	gone chan struct{}
}

// Gateway consistent-hashes optimization requests across a fleet of
// lcmd backends. Placement buys cache affinity only — every backend
// computes byte-identical results — so the gateway's whole job is to
// keep that placement cheap to violate: failover walks the ring's
// replica order when a breaker is open or an attempt fails, identical
// in-flight requests collapse into one backend slot, and when nothing
// can serve, the client gets the same explicit 503 + Retry-After
// contract a single node would give it.
type Gateway struct {
	cfg    Config
	client *http.Client
	logger *log.Logger
	start  time.Time

	// mu guards the membership view: ring, backends, ids, draining.
	// Reload swaps members under the write lock; every routing decision
	// snapshots under the read lock, so a reload mid-request can at
	// worst make one failover attempt find its backend gone — never a
	// torn view, never a hang.
	mu       sync.RWMutex
	ring     *fleet.Ring
	backends map[string]*backend
	ids      []string // sorted, for stable reporting
	// draining holds removed backends still finishing in-flight work.
	// They receive no new placements (they left the ring and the map)
	// and are reaped once their inflight gauge touches zero.
	draining map[string]*backend

	stop chan struct{}
	wg   sync.WaitGroup

	flightMu sync.Mutex
	flight   map[string]*call

	received      atomic.Int64 // proxied requests accepted for routing
	dedupeJoins   atomic.Int64 // requests served by joining an identical in-flight one
	failovers     atomic.Int64 // failed attempts that moved on to another replica
	shed          atomic.Int64 // gateway-generated 503s (no backend could serve)
	streams       atomic.Int64 // NDJSON streams proxied (unbuffered pass-through)
	reloads       atomic.Int64 // membership reloads applied
	totalInflight atomic.Int64
	lastRetryMS   atomic.Int64
}

// call is one in-flight deduplicated request. done closes once res is
// set; every joiner replays the same bytes.
type call struct {
	done chan struct{}
	res  *proxyResult
}

// proxyResult is one routed outcome: the backend's response verbatim,
// or a gateway-generated rejection.
type proxyResult struct {
	status  int
	header  http.Header // Content-Type and Retry-After only
	body    []byte
	backend string // serving backend; "" for gateway-generated results
}

// NewGateway builds the router and starts its health pollers.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("lcmgate: no backends configured")
	}
	g := &Gateway{
		cfg:      cfg,
		ring:     fleet.NewRing(cfg.Vnodes),
		backends: make(map[string]*backend, len(cfg.Backends)),
		draining: make(map[string]*backend),
		client:   &http.Client{Transport: cfg.Transport},
		start:    time.Now(),
		stop:     make(chan struct{}),
		flight:   make(map[string]*call),
	}
	if cfg.AccessLog != nil {
		g.logger = log.New(cfg.AccessLog, "", log.Lmicroseconds)
	}
	for _, id := range cfg.Backends {
		if _, dup := g.backends[id]; dup {
			return nil, fmt.Errorf("lcmgate: duplicate backend %q", id)
		}
		g.admitLocked(id)
	}
	return g, nil
}

// admitLocked adds one backend to the live membership: fresh breaker
// (no history carried over from any earlier life), optimistic readiness,
// a ring slot, and its own health loop. Caller holds g.mu (or is the
// constructor, before the gateway is shared).
func (g *Gateway) admitLocked(id string) {
	b := &backend{id: id, breaker: fleet.NewBreaker(g.cfg.Breaker), gone: make(chan struct{})}
	b.ready.Store(true) // optimistic until the first probe says otherwise
	g.backends[id] = b
	g.ring.Add(id)
	g.ids = append(g.ids, id)
	sort.Strings(g.ids)
	if g.cfg.HealthInterval > 0 {
		g.wg.Add(1)
		go g.healthLoop(b)
	}
}

// Reload swaps the fleet membership to exactly backends, moving as few
// keys as possible: surviving members keep their ring slots, breakers,
// and counters untouched, so only ~1/N of placements move per change.
// Removed backends stop receiving new work immediately but keep their
// in-flight requests, which finish normally while the backend drains in
// the background. Added backends start with a fresh breaker. Safe to
// call at any time under live traffic.
func (g *Gateway) Reload(backends []string) error {
	next := make(map[string]bool, len(backends))
	for _, id := range backends {
		if id == "" {
			continue
		}
		if next[id] {
			return fmt.Errorf("lcmgate: duplicate backend %q", id)
		}
		next[id] = true
	}
	if len(next) == 0 {
		return fmt.Errorf("lcmgate: reload to an empty fleet refused")
	}

	g.mu.Lock()
	var added, removed []string
	for id := range next {
		if _, ok := g.backends[id]; !ok {
			added = append(added, id)
		}
	}
	for id := range g.backends {
		if !next[id] {
			removed = append(removed, id)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, id := range removed {
		b := g.backends[id]
		close(b.gone)
		delete(g.backends, id)
		g.ring.Remove(id)
		g.draining[id] = b
		g.wg.Add(1)
		go g.drain(b)
	}
	for _, id := range added {
		// A backend re-added while its previous life is still draining
		// gets a brand-new identity; the old struct finishes its
		// in-flight work and is reaped independently.
		g.admitLocked(id)
	}
	if len(removed) > 0 {
		g.ids = g.ids[:0]
		for id := range g.backends {
			g.ids = append(g.ids, id)
		}
		sort.Strings(g.ids)
	}
	g.mu.Unlock()

	g.reloads.Add(1)
	g.logf("reload members=%d added=%v removed=%v", len(next), added, removed)
	return nil
}

// drain waits for a removed backend's in-flight requests to finish,
// then forgets it. Bounded by the end-to-end request budget (plus
// slack): nothing can legitimately be in flight longer than that, so
// the wait cannot leak even if a gauge were to misbehave.
func (g *Gateway) drain(b *backend) {
	defer g.wg.Done()
	deadline := time.NewTimer(2 * g.cfg.Timeout)
	defer deadline.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for b.inflight.Load() > 0 {
		select {
		case <-tick.C:
		case <-deadline.C:
			g.logf("drain backend=%s abandoned inflight=%d", b.id, b.inflight.Load())
			b.inflight.Store(0)
		case <-g.stop:
			return
		}
	}
	g.mu.Lock()
	if g.draining[b.id] == b {
		delete(g.draining, b.id)
	}
	g.mu.Unlock()
	g.logf("drain backend=%s complete", b.id)
}

// Close stops the health pollers. In-flight proxied requests are owned
// by their handlers and finish on their own deadlines.
func (g *Gateway) Close() {
	close(g.stop)
	g.wg.Wait()
}

// Handler returns the HTTP surface: the two proxied optimization
// endpoints plus the gateway's own health and readiness probes.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", g.handleProxy)
	mux.HandleFunc("POST /optimize/batch", g.handleProxy)
	mux.HandleFunc("POST /optimize/stream", g.handleStreamProxy)
	mux.HandleFunc("GET /jobs/{id}", g.handleJobProxy)
	mux.HandleFunc("GET /jobs/{id}/stream", g.handleStreamProxy)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("POST /admin/reload", g.handleReload)
	return mux
}

// handleReload applies a membership change over HTTP: the same
// operation the SIGHUP path performs, for orchestrators that prefer an
// API to a signal. Body: {"backends": ["http://...", ...]}.
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Backends []string `json:"backends"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeGateJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("decoding reload request: %v", err), "kind": "parse",
		})
		return
	}
	if err := g.Reload(req.Backends); err != nil {
		writeGateJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(), "kind": "reload",
		})
		return
	}
	g.mu.RLock()
	members := append([]string(nil), g.ids...)
	g.mu.RUnlock()
	writeGateJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"backends": members,
		"reloads":  g.reloads.Load(),
	})
}

func (g *Gateway) logf(format string, args ...any) {
	if g.logger != nil {
		g.logger.Printf(format, args...)
	}
}

// requestKey hashes a request's routing identity — path plus raw body —
// into the ring key (64-bit) and the single-flight key (128-bit hex).
// Routing on content is what makes placement deterministic across
// gateway replicas and retries; the wider single-flight key keeps a
// ring collision from ever serving one program's bytes for another.
func requestKey(path string, body []byte) (uint64, string) {
	h := sha256.New()
	io.WriteString(h, path)
	h.Write([]byte{0})
	h.Write(body)
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8]), hex.EncodeToString(sum[:16])
}

func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeGateJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("reading request body: %v", err), "kind": "parse",
		})
		return
	}
	g.received.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Timeout)
	defer cancel()

	ringKey, flightKey := requestKey(r.URL.Path, body)
	res := g.deduped(ctx, r.URL.Path, body, ringKey, flightKey)
	writeProxyResult(w, res)
}

func writeProxyResult(w http.ResponseWriter, res *proxyResult) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// handleJobProxy is GET /jobs/{id}: a buffered proxy with 404 failover.
// A job's ID is derived from the module bytes the gateway may never have
// seen (it cannot recompute the ring position), and the job lives only
// on the backend that admitted it — so the proxy walks the replica order
// for the path and treats a 404 as one replica saying "not mine" until
// every live backend has answered.
func (g *Gateway) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	g.received.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Timeout)
	defer cancel()
	key, _ := requestKey(r.URL.Path, nil)
	writeProxyResult(w, g.route(ctx, http.MethodGet, r.URL.Path, nil, key))
}

// handleStreamProxy proxies POST /optimize/stream and GET
// /jobs/{id}/stream without buffering: response bytes are copied to the
// client chunk by chunk with a flush after each, so per-item records and
// heartbeats arrive as the backend emits them. Streams are not deduped —
// every consumer needs its own connection — and failover is possible
// only before the first response byte reaches the client: once bytes
// are through, a mid-stream backend death simply ends the response and
// the client resumes by job ID (which is the whole point of the job
// layer; the gateway must not buy false continuity by buffering).
func (g *Gateway) handleStreamProxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			writeGateJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("reading request body: %v", err), "kind": "parse",
			})
			return
		}
	}
	g.received.Add(1)
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.StreamTimeout)
	defer cancel()
	key, _ := requestKey(r.URL.Path, body)
	g.streamRoute(ctx, w, r.Method, path, body, key)
}

// streamRoute is route for unbuffered streams: the same two-pass replica
// walk, the same breaker and 404 semantics, but a successful attempt
// writes directly to the client instead of returning buffered bytes.
func (g *Gateway) streamRoute(ctx context.Context, w http.ResponseWriter, method, path string, body []byte, key uint64) {
	prefs, members := g.replicaOrder(key)
	tried := make(map[string]bool, len(prefs))
	lastFailure := "no backend attempted"
	var notFound *proxyResult
	for pass := 0; pass < 2; pass++ {
		for _, b := range prefs {
			id := b.id
			if ctx.Err() != nil {
				writeProxyResult(w, g.shedResult(key, fmt.Sprintf("request budget exhausted during failover: %v", ctx.Err())))
				return
			}
			if tried[id] {
				continue
			}
			if pass == 0 {
				if !b.ready.Load() || b.degrade.Load() >= int32(overload.LevelShed) {
					g.logf("skip key=%016x backend=%s reason=not-ready degrade=%d", key, id, b.degrade.Load())
					continue
				}
				if !fleet.WithinBound(b.inflight.Load(), g.totalInflight.Load(), members, g.cfg.LoadFactor) {
					g.logf("skip key=%016x backend=%s reason=over-bound inflight=%d", key, id, b.inflight.Load())
					continue
				}
			}
			if !b.breaker.Allow() {
				g.logf("skip key=%016x backend=%s reason=breaker-open", key, id)
				continue
			}
			tried[id] = true
			res, streamed, err := g.streamAttempt(ctx, w, b, method, path, body, key)
			if streamed {
				return
			}
			if err == nil {
				if method == http.MethodGet && res.status == http.StatusNotFound {
					notFound = res
					g.logf("job-miss key=%016x backend=%s", key, id)
					continue
				}
				writeProxyResult(w, res)
				return
			}
			lastFailure = err.Error()
			g.failovers.Add(1)
			g.logf("failover key=%016x backend=%s err=%q", key, id, err)
		}
	}
	if notFound != nil {
		writeProxyResult(w, notFound)
		return
	}
	writeProxyResult(w, g.shedResult(key, lastFailure))
}

// streamAttempt opens one backend stream. The attempt timeout bounds
// only the wait for response headers; an answered stream then runs under
// the caller's stream budget. Returns streamed=true once any part of the
// response (including just the 200 header) has reached the client —
// after which no failover is possible and the attempt owns the response.
// Non-200 answers are small JSON rejections: they are buffered and
// classified exactly like the buffered path, so breakers and failover
// see the same world regardless of endpoint shape.
func (g *Gateway) streamAttempt(ctx context.Context, w http.ResponseWriter, b *backend, method, path string, body []byte, key uint64) (*proxyResult, bool, error) {
	b.routed.Add(1)
	b.inflight.Add(1)
	g.totalInflight.Add(1)
	defer func() {
		b.inflight.Add(-1)
		g.totalInflight.Add(-1)
	}()

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, b.id+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("building request for %s: %w", b.id, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Bound only the header wait: a backend that does not answer within
	// the attempt timeout is failed over, but once headers arrive the
	// timer is disarmed and the stream lives on the caller's budget.
	hdrTimer := time.AfterFunc(g.cfg.AttemptTimeout, cancel)
	resp, err := g.client.Do(req)
	hdrTimer.Stop()
	if err != nil {
		b.failed.Add(1)
		b.breaker.Record(false)
		return nil, false, fmt.Errorf("backend %s: %w", b.id, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRespBody))
		if rerr != nil {
			b.failed.Add(1)
			b.breaker.Record(false)
			return nil, false, fmt.Errorf("backend %s: reading response: %w", b.id, rerr)
		}
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
			b.failed.Add(1)
			b.breaker.Record(false)
			return nil, false, fmt.Errorf("backend %s answered %d", b.id, resp.StatusCode)
		}
		b.succeeded.Add(1)
		b.breaker.Record(true)
		hdr := make(http.Header, 2)
		for _, k := range []string{"Content-Type", "Retry-After"} {
			if v := resp.Header.Get(k); v != "" {
				hdr.Set(k, v)
			}
		}
		return &proxyResult{status: resp.StatusCode, header: hdr, body: raw, backend: b.id}, false, nil
	}

	b.succeeded.Add(1)
	b.breaker.Record(true)
	g.streams.Add(1)
	g.logf("stream key=%016x backend=%s", key, b.id)
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	var sent int64
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			sent += int64(n)
			if _, werr := w.Write(buf[:n]); werr != nil {
				g.logf("stream key=%016x backend=%s client-gone bytes=%d", key, b.id, sent)
				return nil, true, nil
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				// Mid-stream loss of the backend: the client has a valid
				// prefix and resumes by job ID. Nothing is fabricated to
				// paper over the cut.
				g.logf("stream key=%016x backend=%s cut bytes=%d err=%q", key, b.id, sent, rerr)
			} else {
				g.logf("stream key=%016x backend=%s done bytes=%d", key, b.id, sent)
			}
			return nil, true, nil
		}
	}
}

// deduped collapses identical in-flight requests into one backend call:
// the first arrival routes, everyone else joins and replays the same
// bytes. Sound because results are content-addressed — the response is
// a pure function of the body being hashed — and clean for rejections
// too: a shed answer with its Retry-After is exactly what every member
// of a thundering herd should hear.
func (g *Gateway) deduped(ctx context.Context, path string, body []byte, ringKey uint64, flightKey string) *proxyResult {
	g.flightMu.Lock()
	if c, ok := g.flight[flightKey]; ok {
		g.flightMu.Unlock()
		g.dedupeJoins.Add(1)
		g.logf("join key=%016x", ringKey)
		select {
		case <-c.done:
			return c.res
		case <-ctx.Done():
			// The joiner's own budget died while the leader was still
			// working; answer for ourselves instead of waiting forever.
			return g.shedResult(ringKey, fmt.Sprintf("abandoned while joined to an in-flight request: %v", ctx.Err()))
		}
	}
	c := &call{done: make(chan struct{})}
	g.flight[flightKey] = c
	g.flightMu.Unlock()

	c.res = g.route(ctx, http.MethodPost, path, body, ringKey)

	g.flightMu.Lock()
	delete(g.flight, flightKey)
	g.flightMu.Unlock()
	close(c.done)
	return c.res
}

// route walks the ring's replica order for the key and returns the
// first answer a backend produces. Two passes: the first respects every
// routing signal (readiness, degrade level, bounded load, breaker); the
// second is the last resort — any backend whose breaker admits — so a
// uniformly degraded fleet still gets to say its own explicit 429/503
// rather than having the gateway guess. If nothing answers, the gateway
// sheds with its own 503 + Retry-After.
func (g *Gateway) route(ctx context.Context, method, path string, body []byte, key uint64) *proxyResult {
	prefs, members := g.replicaOrder(key)
	tried := make(map[string]bool, len(prefs))
	lastFailure := "no backend attempted"
	var notFound *proxyResult
	for pass := 0; pass < 2; pass++ {
		for _, b := range prefs {
			id := b.id
			if ctx.Err() != nil {
				return g.shedResult(key, fmt.Sprintf("request budget exhausted during failover: %v", ctx.Err()))
			}
			if tried[id] {
				continue
			}
			if pass == 0 {
				if !b.ready.Load() || b.degrade.Load() >= int32(overload.LevelShed) {
					g.logf("skip key=%016x backend=%s reason=not-ready degrade=%d", key, id, b.degrade.Load())
					continue
				}
				if !fleet.WithinBound(b.inflight.Load(), g.totalInflight.Load(), members, g.cfg.LoadFactor) {
					g.logf("skip key=%016x backend=%s reason=over-bound inflight=%d", key, id, b.inflight.Load())
					continue
				}
			}
			if !b.breaker.Allow() {
				g.logf("skip key=%016x backend=%s reason=breaker-open", key, id)
				continue
			}
			tried[id] = true
			res, err := g.attempt(ctx, b, method, path, body, key)
			if err == nil {
				// A job lives only on the backend that admitted it, so a GET
				// 404 is one replica saying "not mine" — keep walking and
				// return this answer only if every replica agrees.
				if method == http.MethodGet && res.status == http.StatusNotFound {
					notFound = res
					g.logf("job-miss key=%016x backend=%s", key, id)
					continue
				}
				return res
			}
			lastFailure = err.Error()
			g.failovers.Add(1)
			g.logf("failover key=%016x backend=%s err=%q", key, id, err)
		}
	}
	if notFound != nil {
		return notFound
	}
	return g.shedResult(key, lastFailure)
}

// replicaOrder snapshots the ring's replica preference for key under the
// membership lock: the routing loop then works on stable *backend
// pointers, untouched by a concurrent Reload. A backend removed
// mid-route still answers the attempt it was already given — exactly
// the drain contract.
func (g *Gateway) replicaOrder(key uint64) ([]*backend, int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.ring.Pick(key, g.ring.Len())
	prefs := make([]*backend, 0, len(ids))
	for _, id := range ids {
		if b, ok := g.backends[id]; ok {
			prefs = append(prefs, b)
		}
	}
	return prefs, len(g.backends)
}

// attempt sends the request to one backend and classifies the outcome
// for its breaker: transport errors and 5xx are failures the router
// moves past (a 503 means draining or shedding everything — the next
// replica may well serve); any other answer — 200, 429, 4xx, and 504 —
// proves the backend alive and is passed to the client verbatim.
func (g *Gateway) attempt(ctx context.Context, b *backend, method, path string, body []byte, key uint64) (*proxyResult, error) {
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	b.routed.Add(1)
	b.inflight.Add(1)
	g.totalInflight.Add(1)
	defer func() {
		b.inflight.Add(-1)
		g.totalInflight.Add(-1)
	}()

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, b.id+path, rd)
	if err != nil {
		return nil, fmt.Errorf("building request for %s: %w", b.id, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.failed.Add(1)
		b.breaker.Record(false)
		return nil, fmt.Errorf("backend %s: %w", b.id, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBody))
	if err != nil {
		b.failed.Add(1)
		b.breaker.Record(false)
		return nil, fmt.Errorf("backend %s: reading response: %w", b.id, err)
	}
	// 504 is the request's own deadline expiring — it would expire on
	// every replica, so it passes through instead of failing over.
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
		b.failed.Add(1)
		b.breaker.Record(false)
		return nil, fmt.Errorf("backend %s answered %d", b.id, resp.StatusCode)
	}
	b.succeeded.Add(1)
	b.breaker.Record(true)
	g.logf("serve key=%016x backend=%s status=%d bytes=%d", key, b.id, resp.StatusCode, len(raw))
	hdr := make(http.Header, 2)
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	return &proxyResult{status: resp.StatusCode, header: hdr, body: raw, backend: b.id}, nil
}

// shedResult is the gateway's own 503: every replica was down, open, or
// out of budget. The Retry-After hint follows the fleet-wide jitter
// contract — seeded from the primary backend id plus the request hash,
// so the replicas of one shed request spread their retries instead of
// stampeding back together, while a replay of the same request gets the
// same hint.
func (g *Gateway) shedResult(key uint64, reason string) *proxyResult {
	g.shed.Add(1)
	g.mu.RLock()
	primary := g.ring.Owner(key)
	openFrac := 0.0
	for _, id := range g.ids {
		if g.backends[id].breaker.State() == fleet.BreakerOpen {
			openFrac += 1.0 / float64(len(g.ids))
		}
	}
	g.mu.RUnlock()
	ms := overload.RetryAfter(overload.LevelShed, openFrac, overload.Seed(primary, fmt.Sprintf("%016x", key))).Milliseconds()
	g.lastRetryMS.Store(ms)
	g.logf("shed key=%016x retry_after_ms=%d reason=%q", key, ms, reason)

	body, _ := json.Marshal(map[string]any{
		"error":          fmt.Sprintf("no backend available: %s", reason),
		"kind":           "unavailable",
		"retry_after_ms": ms,
	})
	hdr := make(http.Header, 2)
	hdr.Set("Content-Type", "application/json")
	hdr.Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
	return &proxyResult{status: http.StatusServiceUnavailable, header: hdr, body: append(body, '\n')}
}

// healthLoop polls one backend's /readyz. A reachable backend — ready
// or not — proves liveness to its breaker; only transport failures
// count against it. Readiness and degrade level steer the preferred
// pass of route separately, so a draining or level-3 backend stops
// receiving new placements without being treated as dead.
func (g *Gateway) healthLoop(b *backend) {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-b.gone:
			return
		case <-t.C:
			g.probe(b)
		}
	}
}

func (g *Gateway) probe(b *backend) {
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.id+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.ready.Store(false)
		b.breaker.Record(false)
		g.logf("probe backend=%s err=%q", b.id, err)
		return
	}
	defer resp.Body.Close()
	var status struct {
		Ready                bool  `json:"ready"`
		DegradeLevel         int   `json:"degrade_level"`
		JobsActive           int64 `json:"jobs_active"`
		JobsResumed          int64 `json:"jobs_resumed"`
		JobsExpired          int64 `json:"jobs_expired"`
		StreamClients        int64 `json:"stream_clients"`
		FnCacheHits          int64 `json:"fn_cache_hits"`
		FnCacheMisses        int64 `json:"fn_cache_misses"`
		SolverParallelSlices int64 `json:"solver_parallel_slices"`
		SolverSparseSkips    int64 `json:"solver_sparse_skips"`
		DiskDisabled         bool  `json:"disk_disabled"`
		DiskTransitions      int64 `json:"disk_disable_transitions"`
		JournalDegraded      bool  `json:"journal_degraded"`
		DiskFaultsWrite      int64 `json:"disk_faults_write"`
		DiskFaultsRead       int64 `json:"disk_faults_read"`
		DiskFaultsSync       int64 `json:"disk_faults_sync"`
		DiskFaultsRename     int64 `json:"disk_faults_rename"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&status)
	b.ready.Store(resp.StatusCode == http.StatusOK)
	b.degrade.Store(int32(status.DegradeLevel))
	b.jobsActive.Store(status.JobsActive)
	b.jobsResumed.Store(status.JobsResumed)
	b.jobsExpired.Store(status.JobsExpired)
	b.streamClients.Store(status.StreamClients)
	b.fnCacheHits.Store(status.FnCacheHits)
	b.fnCacheMisses.Store(status.FnCacheMisses)
	b.solverSlices.Store(status.SolverParallelSlices)
	b.solverSparseSkips.Store(status.SolverSparseSkips)
	b.diskDisabled.Store(status.DiskDisabled)
	b.journalDegraded.Store(status.JournalDegraded)
	b.diskTransitions.Store(status.DiskTransitions)
	b.diskFaultsWrite.Store(status.DiskFaultsWrite)
	b.diskFaultsRead.Store(status.DiskFaultsRead)
	b.diskFaultsSync.Store(status.DiskFaultsSync)
	b.diskFaultsRename.Store(status.DiskFaultsRename)
	b.breaker.Record(true)
	g.logf("probe backend=%s status=%d ready=%v degrade=%d", b.id, resp.StatusCode, resp.StatusCode == http.StatusOK, status.DegradeLevel)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	bk := make(map[string]any, len(g.ids))
	// Present even at zero, so a fleet watcher reads "no disk trouble"
	// rather than "field missing".
	fleetJobs := map[string]int64{
		"disk_disabled_backends":    0,
		"journal_degraded_backends": 0,
	}
	for _, id := range g.ids {
		b := g.backends[id]
		bk[id] = map[string]any{
			"breaker":                  b.breaker.State().String(),
			"breaker_opened":           b.breaker.Opened(),
			"ready":                    b.ready.Load(),
			"degrade_level":            b.degrade.Load(),
			"inflight":                 b.inflight.Load(),
			"routed":                   b.routed.Load(),
			"succeeded":                b.succeeded.Load(),
			"failed":                   b.failed.Load(),
			"probes":                   b.probes.Load(),
			"jobs_active":              b.jobsActive.Load(),
			"jobs_resumed":             b.jobsResumed.Load(),
			"jobs_expired":             b.jobsExpired.Load(),
			"stream_clients":           b.streamClients.Load(),
			"fn_cache_hits":            b.fnCacheHits.Load(),
			"fn_cache_misses":          b.fnCacheMisses.Load(),
			"solver_parallel_slices":   b.solverSlices.Load(),
			"solver_sparse_skips":      b.solverSparseSkips.Load(),
			"disk_disabled":            b.diskDisabled.Load(),
			"journal_degraded":         b.journalDegraded.Load(),
			"disk_disable_transitions": b.diskTransitions.Load(),
			"disk_faults_write":        b.diskFaultsWrite.Load(),
			"disk_faults_read":         b.diskFaultsRead.Load(),
			"disk_faults_sync":         b.diskFaultsSync.Load(),
			"disk_faults_rename":       b.diskFaultsRename.Load(),
		}
		if b.diskDisabled.Load() {
			fleetJobs["disk_disabled_backends"]++
		}
		if b.journalDegraded.Load() {
			fleetJobs["journal_degraded_backends"]++
		}
		fleetJobs["disk_disable_transitions"] += b.diskTransitions.Load()
		fleetJobs["disk_faults_write"] += b.diskFaultsWrite.Load()
		fleetJobs["disk_faults_read"] += b.diskFaultsRead.Load()
		fleetJobs["disk_faults_sync"] += b.diskFaultsSync.Load()
		fleetJobs["disk_faults_rename"] += b.diskFaultsRename.Load()
		fleetJobs["jobs_active"] += b.jobsActive.Load()
		fleetJobs["jobs_resumed"] += b.jobsResumed.Load()
		fleetJobs["jobs_expired"] += b.jobsExpired.Load()
		fleetJobs["stream_clients"] += b.streamClients.Load()
		fleetJobs["fn_cache_hits"] += b.fnCacheHits.Load()
		fleetJobs["fn_cache_misses"] += b.fnCacheMisses.Load()
		fleetJobs["solver_parallel_slices"] += b.solverSlices.Load()
		fleetJobs["solver_sparse_skips"] += b.solverSparseSkips.Load()
	}
	draining := make([]string, 0, len(g.draining))
	for id := range g.draining {
		draining = append(draining, id)
	}
	g.mu.RUnlock()
	sort.Strings(draining)
	writeGateJSON(w, http.StatusOK, map[string]any{
		"status":              "ok",
		"start_time":          g.start.UTC().Format(time.RFC3339Nano),
		"uptime_ms":           time.Since(g.start).Milliseconds(),
		"backends":            bk,
		"fleet":               fleetJobs,
		"draining":            draining,
		"reloads":             g.reloads.Load(),
		"received":            g.received.Load(),
		"dedupe_joins":        g.dedupeJoins.Load(),
		"failovers":           g.failovers.Load(),
		"shed":                g.shed.Load(),
		"streams_proxied":     g.streams.Load(),
		"inflight_total":      g.totalInflight.Load(),
		"last_retry_after_ms": g.lastRetryMS.Load(),
	})
}

// handleReadyz: the gateway is ready while at least one backend's
// breaker would admit traffic (closed or probing half-open).
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	available, total := 0, len(g.ids)
	for _, id := range g.ids {
		if g.backends[id].breaker.State() != fleet.BreakerOpen {
			available++
		}
	}
	g.mu.RUnlock()
	code := http.StatusOK
	if available == 0 {
		code = http.StatusServiceUnavailable
	}
	writeGateJSON(w, code, map[string]any{
		"ready":              available > 0,
		"backends_available": available,
		"backends_total":     total,
	})
}

func writeGateJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
