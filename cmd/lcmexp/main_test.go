package main

import (
	"strings"
	"testing"
)

func TestAllFigures(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"f1", "f2", "f3", "f4", "f5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"== F1:", "== F2:", "== F3:", "== F4:", "== F5:"} {
		if !strings.Contains(s, id) {
			t.Errorf("missing %q", id)
		}
	}
}

func TestSelectedTheorems(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-programs", "5", "-runs", "2", "t1", "t5", "t5b"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"== T1:", "== T5:", "== T5b:"} {
		if !strings.Contains(s, id) {
			t.Errorf("missing %q:\n%s", id, s)
		}
	}
	if strings.Contains(s, "== T2:") {
		t.Error("unselected experiment ran")
	}
}

func TestCaseInsensitiveIDs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"F3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F3:") {
		t.Error("uppercase id not matched")
	}
}

func TestUnknownID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"f9"}, &out); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-programs", "x"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
