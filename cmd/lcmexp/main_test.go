package main

import (
	"strings"
	"testing"

	"lazycm/internal/exp"
)

func TestAllFigures(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"f1", "f2", "f3", "f4", "f5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitOK {
		t.Fatalf("exit code %d", code)
	}
	s := out.String()
	for _, id := range []string{"== F1:", "== F2:", "== F3:", "== F4:", "== F5:"} {
		if !strings.Contains(s, id) {
			t.Errorf("missing %q", id)
		}
	}
}

func TestSelectedTheorems(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-programs", "5", "-runs", "2", "t1", "t5", "t5b"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"== T1:", "== T5:", "== T5b:"} {
		if !strings.Contains(s, id) {
			t.Errorf("missing %q:\n%s", id, s)
		}
	}
	if strings.Contains(s, "== T2:") {
		t.Error("unselected experiment ran")
	}
}

func TestCaseInsensitiveIDs(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"F3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F3:") {
		t.Error("uppercase id not matched")
	}
}

func TestUnknownID(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"f9"}, &out)
	if err == nil {
		t.Error("unknown experiment id accepted")
	}
	if code != exitInvalid {
		t.Errorf("exit code %d, want %d", code, exitInvalid)
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-programs", "x"}, &out)
	if err == nil {
		t.Error("bad flag accepted")
	}
	if code != exitInvalid {
		t.Errorf("exit code %d, want %d", code, exitInvalid)
	}
}

// TestCrashingExperimentContained: with -fallback a panicking experiment
// is reported as FAILED and the remaining experiments still run; without
// it, the run stops with an error — but never an uncontained panic.
func TestCrashingExperimentContained(t *testing.T) {
	testExperiments = []experiment{{
		id: "tboom",
		gen: func() *exp.Report {
			panic("experiment exploded")
		},
	}}
	defer func() { testExperiments = nil }()

	var out strings.Builder
	code, err := run([]string{"-fallback", "tboom", "f1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitFellBack {
		t.Fatalf("exit code %d, want %d", code, exitFellBack)
	}
	s := out.String()
	if !strings.Contains(s, "TBOOM: FAILED") || !strings.Contains(s, "experiment exploded") {
		t.Errorf("missing failure report:\n%s", s)
	}
	if !strings.Contains(s, "== F1:") {
		t.Errorf("surviving experiment did not run:\n%s", s)
	}

	out.Reset()
	code, err = run([]string{"tboom"}, &out)
	if err == nil {
		t.Fatal("crash not surfaced as an error")
	}
	if code != exitError {
		t.Errorf("exit code %d, want %d", code, exitError)
	}
}

// TestTimeoutExitCode: an already-expired -timeout stops the regeneration
// at the first experiment boundary with the documented exit code 4.
func TestTimeoutExitCode(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-timeout", "1ns", "f1", "f2"}, &out)
	if err == nil {
		t.Fatal("expired timeout did not report an error")
	}
	if code != exitDeadline {
		t.Fatalf("exit code %d, want %d", code, exitDeadline)
	}
	if strings.Contains(out.String(), "== F2:") {
		t.Errorf("experiment ran past the deadline:\n%s", out.String())
	}
}

// TestGenerousTimeoutCompletes: a non-expiring timeout changes nothing.
func TestGenerousTimeoutCompletes(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-timeout", "5m", "f1"}, &out)
	if err != nil || code != exitOK {
		t.Fatalf("code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "== F1:") {
		t.Errorf("missing report:\n%s", out.String())
	}
}
