// Command lcmexp regenerates every experiment of the reproduction: the
// paper's worked figures (F1–F5) and the theorem measurements (T1–T6).
//
// Usage:
//
//	lcmexp [flags] [ids...]
//
// With no ids, all experiments run in order. Ids are case-insensitive
// (f1 … f5, t1 … t6).
//
// Flags:
//
//	-programs N   random programs per theorem experiment (default 100)
//	-runs N       inputs per program (default 4)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lazycm/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lcmexp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lcmexp", flag.ContinueOnError)
	fs.SetOutput(w)
	programs := fs.Int("programs", 100, "random programs per theorem experiment")
	runs := fs.Int("runs", 4, "inputs per program")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := []struct {
		id  string
		gen func() *exp.Report
	}{
		{"f1", exp.Figure1},
		{"f2", exp.Figure2},
		{"f3", exp.Figure3},
		{"f4", exp.Figure4},
		{"f5", exp.Figure5},
		{"t1", func() *exp.Report { return exp.T1Correctness(*programs, *runs) }},
		{"t2", func() *exp.Report { return exp.T2CompOptimality(*programs, *runs) }},
		{"t3", func() *exp.Report { return exp.T3Lifetimes(*programs) }},
		{"t3b", func() *exp.Report { return exp.T3bRegisterPressure(*programs, []int{4, 6, 8}) }},
		{"t4", func() *exp.Report { return exp.T4SolverCost([]int{1, 2, 3, 4}, 10) }},
		{"t4b", func() *exp.Report { return exp.T4bSolverCostBlockLevel([]int{1, 2, 3, 4}, 10) }},
		{"t5", func() *exp.Report { return exp.T5LoopInvariant([]int64{1, 10, 100, 1000}) }},
		{"t5b", func() *exp.Report { return exp.T5bSecondOrder() }},
		{"t6", func() *exp.Report { return exp.T6GCSE(*programs, *runs) }},
		{"t7", func() *exp.Report { return exp.T7Canonicalization(*programs, *runs) }},
		{"t8", func() *exp.Report { return exp.T8StrengthReduction([]int64{1, 10, 100, 1000}) }},
	}

	want := map[string]bool{}
	for _, id := range fs.Args() {
		want[strings.ToLower(id)] = true
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Fprintln(w, e.gen().String())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %v (known: f1–f5, t1–t8, t3b, t4b, t5b)", fs.Args())
	}
	return nil
}
