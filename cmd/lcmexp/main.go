// Command lcmexp regenerates every experiment of the reproduction: the
// paper's worked figures (F1–F5) and the theorem measurements (T1–T6).
//
// Usage:
//
//	lcmexp [flags] [ids...]
//
// With no ids, all experiments run in order. Ids are case-insensitive
// (f1 … f5, t1 … t6).
//
// Flags:
//
//	-programs N   random programs per theorem experiment (default 100)
//	-runs N       inputs per program (default 4)
//	-fallback     contain a crashing experiment and continue with the rest
//	-timeout D    wall-clock budget for the whole regeneration (e.g. 30s,
//	              2m; 0 = unlimited), checked between experiments
//
// Exit codes:
//
//	0  every selected experiment completed
//	1  error (including an experiment failure without -fallback)
//	2  invalid usage: bad flags or no matching experiment ids
//	3  at least one experiment failed under -fallback; the others ran
//	4  deadline exceeded: -timeout expired with experiments still pending
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lazycm/internal/exp"
	"lazycm/internal/pipeline"
)

// Exit codes, mirroring cmd/lcm.
const (
	exitOK       = 0
	exitError    = 1
	exitInvalid  = 2
	exitFellBack = 3
	exitDeadline = 4
)

type experiment struct {
	id  string
	gen func() *exp.Report
}

// testExperiments lets the tests append deliberately failing experiments
// to exercise the containment path.
var testExperiments []experiment

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcmexp:", err)
	}
	os.Exit(code)
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("lcmexp", flag.ContinueOnError)
	fs.SetOutput(w)
	programs := fs.Int("programs", 100, "random programs per theorem experiment")
	runs := fs.Int("runs", 4, "inputs per program")
	fallback := fs.Bool("fallback", false, "contain a crashing experiment and continue with the rest")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole regeneration (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return exitInvalid, err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	all := []experiment{
		{"f1", exp.Figure1},
		{"f2", exp.Figure2},
		{"f3", exp.Figure3},
		{"f4", exp.Figure4},
		{"f5", exp.Figure5},
		{"t1", func() *exp.Report { return exp.T1Correctness(*programs, *runs) }},
		{"t2", func() *exp.Report { return exp.T2CompOptimality(*programs, *runs) }},
		{"t3", func() *exp.Report { return exp.T3Lifetimes(*programs) }},
		{"t3b", func() *exp.Report { return exp.T3bRegisterPressure(*programs, []int{4, 6, 8}) }},
		{"t4", func() *exp.Report { return exp.T4SolverCost([]int{1, 2, 3, 4}, 10) }},
		{"t4b", func() *exp.Report { return exp.T4bSolverCostBlockLevel([]int{1, 2, 3, 4}, 10) }},
		{"t5", func() *exp.Report { return exp.T5LoopInvariant([]int64{1, 10, 100, 1000}) }},
		{"t5b", func() *exp.Report { return exp.T5bSecondOrder() }},
		{"t6", func() *exp.Report { return exp.T6GCSE(*programs, *runs) }},
		{"t7", func() *exp.Report { return exp.T7Canonicalization(*programs, *runs) }},
		{"t8", func() *exp.Report { return exp.T8StrengthReduction([]int64{1, 10, 100, 1000}) }},
	}
	all = append(all, testExperiments...)

	want := map[string]bool{}
	for _, id := range fs.Args() {
		want[strings.ToLower(id)] = true
	}
	ran, failed := 0, 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		// The budget is checked between experiments: a regeneration that
		// blows its deadline stops cleanly at the next boundary instead of
		// grinding through the remaining figures.
		if err := ctx.Err(); err != nil {
			return exitDeadline, fmt.Errorf("timeout expired before %s: %w", e.id, err)
		}
		ran++
		// Experiments call into the same optimizer code paths the pipeline
		// hardens; Guard gives the driver the same panic containment, so
		// one broken experiment cannot take down a full regeneration run.
		var rep *exp.Report
		pe := pipeline.Guard(e.id, func() error {
			rep = e.gen()
			return nil
		})
		switch {
		case pe == nil:
			fmt.Fprintln(w, rep.String())
		case *fallback:
			failed++
			fmt.Fprintf(w, "== %s: FAILED ==\n%v\n\n", strings.ToUpper(e.id), pe)
		default:
			return exitError, pe
		}
	}
	if ran == 0 {
		return exitInvalid, fmt.Errorf("no experiments matched %v (known: f1–f5, t1–t8, t3b, t4b, t5b)", fs.Args())
	}
	if failed > 0 {
		return exitFellBack, nil
	}
	return exitOK, nil
}
