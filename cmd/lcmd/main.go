// Command lcmd serves the lazy-code-motion optimizer over HTTP/JSON.
//
// Usage:
//
//	lcmd [flags]
//
// Endpoints:
//
//	POST /optimize        {"program": "...", "mode": "lcm", "timeout_ms": 500}
//	                      → {"program": "...", "applied": [...], ...}
//	POST /optimize/batch  whole-module optimization with per-function
//	                      fault isolation: one result entry per function;
//	                      with ?job= the batch becomes a resumable job
//	                      (idempotent, content-addressed job_id)
//	POST /optimize/stream NDJSON streaming batch: one record per function
//	                      as it completes, heartbeats, then a trailer with
//	                      the aggregates; ?job= makes it resumable
//	GET  /jobs/{id}        point-in-time job progress snapshot
//	GET  /jobs/{id}/stream resume a job's stream: replay completed items,
//	                      follow the rest
//	GET  /healthz         pool and outcome counters; 503 while draining
//	GET  /readyz          cheap readiness probe for gateways: 503 while
//	                      draining or shedding all work (degrade level 3)
//
// Flags:
//
//	-addr A          listen address (default :8657)
//	-workers N       optimization worker pool size (default GOMAXPROCS)
//	-queue N         admission queue capacity; a full queue sheds load
//	                 with 429 + Retry-After (default 4×workers)
//	-timeout D       default per-request budget (default 5s)
//	-max-timeout D   cap on client-requested budgets (default 4×timeout)
//	-fuel N          default node-visit budget per fixpoint (0 = unlimited)
//	-batch-parallel N  concurrent dispatch lanes per /optimize/batch
//	                 request (default workers; 1 = serial batches)
//	-cache N         result-cache capacity in entries: identical
//	                 (program, directives) requests replay their clean
//	                 outcome (default 128; negative disables)
//	-cache-dir DIR   durable cache directory: clean outcomes are written
//	                 through to disk (hash-verified on read) and reloaded
//	                 on restart, so a rebooted server keeps its warmth
//	                 ("" disables)
//	-cache-bytes N   byte budget for -cache-dir, LRU-evicted (default 64MiB)
//	-peers LIST      comma-separated base URLs of fleet peers; a local
//	                 cache miss asks the key's ring-owner neighbors before
//	                 computing — strictly fail-open ("" disables)
//	-peer-timeout D  per-peer budget for one cache fetch (default 150ms)
//	-journal-dir DIR write-ahead journal directory for ?job= submissions:
//	                 jobs survive a crash-restart and resume without
//	                 recomputing finished functions ("" disables jobs'
//	                 durability; they remain resumable in-process)
//	-job-ttl D       journaled jobs older than this are swept at boot
//	                 (default 1h)
//	-io-timeout D    deadline on every blocking filesystem operation on
//	                 the durable paths — a stalled fsync errors out
//	                 instead of wedging a worker (default 2s; 0 disables)
//	-stream-heartbeat D  keep-alive cadence on NDJSON streams (default 10s)
//	-verify          re-check every pass output on random interpreted runs
//	-quarantine DIR  capture inputs that fault or fall back as .ir seeds
//	                 ("" disables; default testdata/crashers)
//	-drain D         grace period for in-flight work on SIGTERM/SIGINT
//	                 (default 30s)
//	-degraded-fuel N fuel cap applied at degrade level 1+ (0 = default,
//	                 negative disables the shrink)
//	-target-latency D  latency the pressure gauge normalizes against
//	                 (0 = timeout/4)
//	-chaos SPEC      TEST ONLY: inject service-level faults, e.g.
//	                 "seed=7,latency=5ms:0.2,stall=50ms:0.05,panic=0.02,
//	                 fault=0.1,corrupt=0.2" (see internal/chaos)
//	-triage          maintenance mode: instead of serving, replay the
//	                 quarantine directory, minimize and dedupe the
//	                 crashers, promote one file per defect, then exit
//	                 (see cmd/lcmtriage for the full triage CLI)
//
// The service wraps the hardened pass pipeline: every request runs under
// its own deadline (threaded into each data-flow fixpoint), panics are
// contained per request, and a faulting pass degrades that one response
// to the validated input instead of killing the server. On SIGTERM the
// server stops admitting work (503), finishes what is in flight, and
// exits cleanly.
//
// Under sustained pressure the server walks a degradation ladder instead
// of collapsing: level 1 disables verification and shrinks fuel, level 2
// sheds batch work and serves singles (cache first), level 3 sheds all
// new work. Every 429/503 carries a load-aware Retry-After. The current
// level is visible on /healthz as degrade_level.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/lcmserver"
	"lazycm/internal/triage"
)

// splitPeers turns the -peers flag's comma-separated list into the
// config slice, dropping empty segments.
func splitPeers(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	fs := flag.NewFlagSet("lcmd", flag.ExitOnError)
	addr := fs.String("addr", ":8657", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "optimization worker pool size")
	queue := fs.Int("queue", 0, "admission queue capacity (0 = 4×workers)")
	timeout := fs.Duration("timeout", lcmserver.DefaultTimeout, "default per-request budget")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on client-requested budgets (0 = 4×timeout)")
	fuel := fs.Int("fuel", 0, "default node-visit budget per fixpoint (0 = unlimited)")
	batchParallel := fs.Int("batch-parallel", 0, "concurrent dispatch lanes per batch request (0 = workers)")
	cacheSize := fs.Int("cache", 0, "result-cache capacity in entries (0 = default, negative disables)")
	cacheDir := fs.String("cache-dir", "", "durable cache directory (\"\" disables)")
	cacheBytes := fs.Int64("cache-bytes", 0, "byte budget for -cache-dir (0 = 64MiB)")
	peers := fs.String("peers", "", "comma-separated fleet peer base URLs for cache fill (\"\" disables)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-peer budget for one cache fetch (0 = 150ms)")
	journalDir := fs.String("journal-dir", "", "write-ahead journal directory for resumable jobs (\"\" disables durability)")
	jobTTL := fs.Duration("job-ttl", 0, "journaled jobs older than this are swept at boot (0 = 1h)")
	ioTimeout := fs.Duration("io-timeout", 2*time.Second, "deadline per blocking filesystem operation on durable paths (0 disables)")
	streamHeartbeat := fs.Duration("stream-heartbeat", 0, "keep-alive cadence on NDJSON streams (0 = 10s)")
	verify := fs.Bool("verify", false, "re-check every pass output on random interpreted runs")
	quarantine := fs.String("quarantine", "testdata/crashers", "directory for faulting inputs (\"\" disables)")
	drain := fs.Duration("drain", 30*time.Second, "grace period for in-flight work on shutdown")
	degradedFuel := fs.Int("degraded-fuel", 0, "fuel cap at degrade level 1+ (0 = default, negative disables)")
	targetLatency := fs.Duration("target-latency", 0, "latency the pressure gauge normalizes against (0 = timeout/4)")
	chaosSpec := fs.String("chaos", "", "TEST ONLY: service-level fault injection spec (see internal/chaos)")
	triageMode := fs.Bool("triage", false, "promote the quarantine directory instead of serving")
	_ = fs.Parse(os.Args[1:])

	if *triageMode {
		if *quarantine == "" {
			log.Fatal("lcmd: -triage needs a -quarantine directory")
		}
		proms, err := triage.Promote(*quarantine, triage.PromoteOptions{
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("lcmd: triage: %v", err)
		}
		log.Printf("lcmd: triage done, %d promotion(s) in %s", len(proms), *quarantine)
		return
	}

	var injector *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatalf("lcmd: %v", err)
		}
		log.Printf("lcmd: CHAOS MODE (test only): %q", *chaosSpec)
		injector = chaos.New(cfg)
	}

	srv := lcmserver.NewServer(lcmserver.Config{
		Workers:         *workers,
		Queue:           *queue,
		Timeout:         *timeout,
		MaxTimeout:      *maxTimeout,
		Fuel:            *fuel,
		Verify:          *verify,
		Quarantine:      *quarantine,
		BatchParallel:   *batchParallel,
		CacheSize:       *cacheSize,
		CacheDir:        *cacheDir,
		CacheBytes:      *cacheBytes,
		Peers:           splitPeers(*peers),
		PeerTimeout:     *peerTimeout,
		JournalDir:      *journalDir,
		JobTTL:          *jobTTL,
		IOTimeout:       *ioTimeout,
		StreamHeartbeat: *streamHeartbeat,
		DegradedFuel:    *degradedFuel,
		TargetLatency:   *targetLatency,
		Chaos:           injector,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lcmd: listening on %s (%d workers, queue %d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("lcmd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: reject new work first, let in-flight handlers finish
	// within the grace period, then stop the worker pool.
	log.Printf("lcmd: draining (up to %v)...", *drain)
	srv.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("lcmd: forced shutdown: %v", err)
		_ = httpSrv.Close()
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "lcmd:", err)
		os.Exit(1)
	}
	log.Printf("lcmd: drained, bye")
}
