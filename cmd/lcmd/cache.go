package main

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// resultCache is a content-addressed LRU of optimization outcomes. Under
// load the same programs arrive over and over (retry loops, shared
// modules across batches, popular inputs); the pipeline is deterministic
// for a fixed (program, directives) pair, so a clean result can be
// replayed from memory instead of re-running parse → four fixpoints →
// rewrite. Only clean outcomes are stored: fallbacks carry quarantine
// side effects and cancellations depend on the request's deadline, so
// both always re-execute.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	out outcome
}

// newResultCache returns a cache holding up to max outcomes, or nil when
// max <= 0 (a nil *resultCache is a valid, always-miss cache).
func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

// cacheKey hashes everything that determines an optimization outcome:
// the program source and the directives (mode, effective fuel, effective
// verify, canonical). The request deadline is deliberately excluded — it
// decides whether a result is produced, never which result.
func cacheKey(req optimizeRequest, fuel int, verify bool) string {
	h := sha256.New()
	var nums [9]byte
	binary.LittleEndian.PutUint64(nums[:8], uint64(fuel))
	var flags byte
	if verify {
		flags |= 1
	}
	if req.Canonical {
		flags |= 2
	}
	nums[8] = flags
	h.Write(nums[:])
	h.Write([]byte(req.Mode))
	h.Write([]byte{0})
	h.Write([]byte(req.Program))
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached outcome for key and marks it most recently
// used.
func (c *resultCache) get(key string) (outcome, bool) {
	if c == nil {
		return outcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return outcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// put stores an outcome, evicting the least recently used entry beyond
// capacity. Storing an existing key refreshes its recency.
func (c *resultCache) put(key string, out outcome) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached outcomes.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
