package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/faultify"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// TestSoakConcurrentRequests hammers the server from many goroutines with
// a mix of valid, invalid, fault-injected and deadline-doomed inputs.
// Under -race this is the tentpole's stress gate: no panic escapes, every
// response carries a known status, the outcome counters balance exactly
// against admissions, and the pool drains without leaking goroutines.
func TestSoakConcurrentRequests(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Config{Workers: 4, Queue: 8, Timeout: 2 * time.Second, Quarantine: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			ts.Close()
			s.Close()
		}
	}
	defer shutdown()

	big := bigProgram(t)
	faults := faultify.All()

	const goroutines = 8
	const perG = 20
	var c200, c400, c429, c504, cOther atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				var req optimizeRequest
				switch i % 6 {
				case 0:
					req = optimizeRequest{Program: diamond}
				case 1:
					// A budget far below the work: must come back as 504,
					// promptly, without wedging a worker.
					req = optimizeRequest{Program: big, TimeoutMS: 1}
				case 2:
					req = optimizeRequest{Program: "garbage {{{"}
				case 3:
					// A buggy-compiler mutation of a random program: the
					// server may optimize, reject or fall back — never die.
					f := randprog.Generate(randprog.Config{
						Seed: rng.Int63(), MaxDepth: 3, MaxItems: 3, MaxStmts: 4,
						Vars: 6, Params: 3, MaxTrips: 3,
					})
					faults[rng.Intn(len(faults))].Apply(f)
					req = optimizeRequest{Program: textir.PrintFunctions([]*ir.Function{f})}
				case 4:
					req = optimizeRequest{Program: diamond, Fuel: 1}
				default:
					f := randprog.Generate(randprog.Config{
						Seed: rng.Int63(), MaxDepth: 3, MaxItems: 3, MaxStmts: 4,
						Vars: 6, Params: 3, MaxTrips: 3,
					})
					req = optimizeRequest{Program: textir.PrintFunctions([]*ir.Function{f}), Verify: true}
				}
				start := time.Now()
				code, out := postOptimize(t, ts, req)
				if elapsed := time.Since(start); elapsed > 15*time.Second {
					t.Errorf("request took %v, cancellation/budget bound broken", elapsed)
				}
				switch code {
				case http.StatusOK:
					c200.Add(1)
					if out.Program == "" {
						t.Errorf("200 without a program: %+v", out)
					}
				case http.StatusBadRequest:
					c400.Add(1)
				case http.StatusTooManyRequests:
					c429.Add(1)
				case http.StatusGatewayTimeout:
					c504.Add(1)
				default:
					cOther.Add(1)
					t.Errorf("unexpected status %d: %+v", code, out)
				}
			}
		}(g)
	}
	wg.Wait()
	shutdown() // full drain: every admitted job is processed and accounted

	sent := int64(goroutines * perG)
	if got := c200.Load() + c400.Load() + c429.Load() + c504.Load() + cOther.Load(); got != sent {
		t.Errorf("responses %d != requests sent %d", got, sent)
	}
	if s.panics.Load() != 0 {
		t.Errorf("panics escaped into the request guard: %d", s.panics.Load())
	}
	// Admission accounting: everything not shed was admitted...
	admitted := sent - c429.Load()
	if got := s.requests.Load(); got != admitted {
		t.Errorf("server admitted %d, client saw %d non-shed responses", got, admitted)
	}
	if got := s.shed.Load(); got != c429.Load() {
		t.Errorf("server shed %d, client saw %d 429s", got, c429.Load())
	}
	// ...and after the drain, every admitted job landed in exactly one
	// outcome bucket.
	sum := s.optimized.Load() + s.fellBack.Load() + s.canceled.Load() +
		s.invalid.Load() + s.panics.Load()
	if sum != admitted {
		t.Errorf("outcome counters sum to %d, want %d (optimized=%d fell_back=%d canceled=%d invalid=%d panics=%d)",
			sum, admitted, s.optimized.Load(), s.fellBack.Load(), s.canceled.Load(),
			s.invalid.Load(), s.panics.Load())
	}
	if s.queued.Load() != 0 || s.inflight.Load() != 0 {
		t.Errorf("drained pool still reports queued=%d inflight=%d", s.queued.Load(), s.inflight.Load())
	}

	// The drained server must not leak goroutines: workers exited with
	// Close, handler goroutines with ts.Close. Allow slack for the test
	// runtime's own background goroutines.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
