package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/ir"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// Config tunes the optimization service.
type Config struct {
	// Workers is the size of the optimization worker pool; 0 means
	// GOMAXPROCS.
	Workers int
	// Queue is the number of requests that may wait for a worker beyond
	// the ones in flight; 0 means 4×Workers. When the queue is full the
	// service sheds load with 429 + Retry-After instead of queueing
	// unboundedly.
	Queue int
	// Timeout is the per-request budget applied when the client does not
	// ask for one; 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxTimeout caps client-requested budgets (timeout_ms), so one
	// client cannot park a worker indefinitely; 0 means 4×Timeout.
	MaxTimeout time.Duration
	// Fuel is the default node-visit budget per data-flow fixpoint;
	// 0 means unlimited. A client may lower effort further per request.
	Fuel int
	// Verify re-checks every pass output against its input on random
	// interpreted runs (requests may also opt in individually).
	Verify bool
	// Quarantine is the directory where inputs that fault or fall back
	// are captured as regression seeds; "" disables capture.
	Quarantine string

	// hook, when non-nil, runs on the worker goroutine before each job;
	// tests use it to hold workers busy deterministically.
	hook func()
}

// DefaultTimeout is the per-request budget when neither the server
// configuration nor the client names one.
const DefaultTimeout = 5 * time.Second

// maxBody bounds request bodies; a program larger than this is rejected
// before any parsing work.
const maxBody = 4 << 20

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 4 * c.Timeout
	}
	return c
}

// Server is a resilient optimization service over the hardened pipeline:
// a bounded worker pool with admission control, per-request deadlines
// enforced through the context threaded into every fixpoint, per-request
// panic isolation, and quarantine capture of any input that faults or
// falls back.
type Server struct {
	cfg   Config
	jobs  chan *job
	wg    sync.WaitGroup
	start time.Time

	draining atomic.Bool
	queued   atomic.Int64
	inflight atomic.Int64

	requests  atomic.Int64 // admitted optimize requests
	optimized atomic.Int64 // clean 200s
	fellBack  atomic.Int64 // 200s that shipped a fallback
	canceled  atomic.Int64 // deadline/cancel results
	invalid   atomic.Int64 // parse or validation rejections
	shed      atomic.Int64 // 429s from a full queue
	panics    atomic.Int64 // contained pass/driver panics
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, jobs: make(chan *job, cfg.Queue), start: time.Now()}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface: POST /optimize and GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// BeginDrain flips the server into draining mode: new requests are
// rejected with 503 + Retry-After while in-flight work completes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the worker pool. It must be called only after every HTTP
// handler has returned (http.Server.Shutdown or httptest.Server.Close),
// since handlers enqueue into the pool.
func (s *Server) Close() {
	close(s.jobs)
	s.wg.Wait()
}

// optimizeRequest is the JSON body of POST /optimize.
type optimizeRequest struct {
	// Program is the textual-IR source (one or more functions).
	Program string `json:"program"`
	// Mode is the transformation to apply (lcm, alcm, bcm, mr, gcse, sr,
	// opt); empty means lcm.
	Mode string `json:"mode,omitempty"`
	// Fuel overrides the server's default node-visit budget per fixpoint
	// when positive.
	Fuel int `json:"fuel,omitempty"`
	// TimeoutMS is the client's budget for this request in milliseconds;
	// it is capped by the server's MaxTimeout. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify opts this request into behavioural re-verification.
	Verify bool `json:"verify,omitempty"`
	// Canonical identifies commutated commutative expressions.
	Canonical bool `json:"canonical,omitempty"`
}

// optimizeResponse is the JSON body of every /optimize outcome. On
// success Program holds the optimized source; on fallback or cancellation
// it holds the last-known-good source (ultimately the validated input) —
// never a partial rewrite.
type optimizeResponse struct {
	Program     string   `json:"program,omitempty"`
	Functions   int      `json:"functions,omitempty"`
	Applied     []string `json:"applied,omitempty"`
	FellBack    bool     `json:"fell_back,omitempty"`
	Canceled    bool     `json:"canceled,omitempty"`
	Diagnostics []string `json:"diagnostics,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Kind classifies failures: "parse", "invalid", "mode", "deadline",
	// "panic", "overload", "draining".
	Kind        string `json:"kind,omitempty"`
	Quarantined string `json:"quarantined,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms"`
}

// outcome pairs an HTTP status with its JSON body.
type outcome struct {
	status int
	body   optimizeResponse
}

// job is one admitted request waiting for (or being processed by) a
// worker. done is buffered so a worker can always complete a job even
// when the handler has already given up on its deadline — that is what
// keeps cancellation leak-free.
type job struct {
	ctx   context.Context
	req   optimizeRequest
	done  chan outcome
	start time.Time
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, optimizeResponse{
			Error: "server is draining", Kind: "draining", ElapsedMS: msSince(start),
		})
		return
	}
	var req optimizeRequest
	body := http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: fmt.Sprintf("bad request body: %v", err), Kind: "parse", ElapsedMS: msSince(start),
		})
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "lcm"
	}
	if _, ok := pipeline.ForMode(mode); !ok {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: fmt.Sprintf("unknown mode %q (valid: %s)", mode, strings.Join(pipeline.ModeNames(), ", ")),
			Kind:  "mode", ElapsedMS: msSince(start),
		})
		return
	}
	req.Mode = mode

	// Per-request budget: the server default unless the client asks for
	// less; client requests are capped so no request parks a worker
	// beyond MaxTimeout.
	budget := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	budget = min(budget, s.cfg.MaxTimeout)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	j := &job{ctx: ctx, req: req, done: make(chan outcome, 1), start: start}
	select {
	case s.jobs <- j:
		s.queued.Add(1)
		s.requests.Add(1)
	default:
		// Admission control: a full queue sheds load instead of building
		// an unbounded backlog.
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, optimizeResponse{
			Error: "optimization queue is full", Kind: "overload", ElapsedMS: msSince(start),
		})
		return
	}

	select {
	case out := <-j.done:
		out.body.ElapsedMS = msSince(start)
		writeJSON(w, out.status, out.body)
	case <-ctx.Done():
		// The deadline fired while the job was queued or in flight. The
		// worker observes the same context at its next iteration boundary,
		// abandons the work, and does the canceled-counter accounting; the
		// buffered done channel lets it finish without a receiver, so
		// nothing leaks.
		writeJSON(w, http.StatusGatewayTimeout, optimizeResponse{
			Error: fmt.Sprintf("request abandoned: %v", ctx.Err()), Kind: "deadline",
			Canceled: true, ElapsedMS: msSince(start),
		})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.Queue,
		"queue_depth":    s.queued.Load(),
		"inflight":       s.inflight.Load(),
		"uptime_ms":      time.Since(s.start).Milliseconds(),
		"requests":       s.requests.Load(),
		"optimized":      s.optimized.Load(),
		"fell_back":      s.fellBack.Load(),
		"canceled":       s.canceled.Load(),
		"invalid":        s.invalid.Load(),
		"shed":           s.shed.Load(),
		"panics":         s.panics.Load(),
	})
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.queued.Add(-1)
		s.inflight.Add(1)
		if s.cfg.hook != nil {
			s.cfg.hook()
		}
		out := s.process(j)
		s.inflight.Add(-1)
		s.account(out)
		j.done <- out
	}
}

// account maintains the outcome counters the soak test audits.
func (s *Server) account(out outcome) {
	switch {
	case out.body.Canceled:
		s.canceled.Add(1)
	case out.status == http.StatusBadRequest:
		s.invalid.Add(1)
	case out.status == http.StatusInternalServerError:
		s.panics.Add(1)
	case out.body.FellBack:
		s.fellBack.Add(1)
	case out.status == http.StatusOK:
		s.optimized.Add(1)
	}
}

// process runs one request end to end under panic isolation. It never
// panics and never returns a partial rewrite: the program it reports is
// the pipeline's last-known-good function set.
func (s *Server) process(j *job) outcome {
	if err := j.ctx.Err(); err != nil {
		return outcome{http.StatusGatewayTimeout, optimizeResponse{
			Error: fmt.Sprintf("abandoned before work started: %v", err), Kind: "deadline", Canceled: true,
		}}
	}
	var out outcome
	perr := pipeline.Guard("optimize", func() error {
		out = s.optimize(j)
		return nil
	})
	if perr != nil {
		// A panic escaped the pipeline's own containment (e.g. in the
		// parser or printer). Contain it here, quarantine the input, and
		// keep the worker alive.
		q := s.quarantine(j.req.Program)
		return outcome{http.StatusInternalServerError, optimizeResponse{
			Error: perr.Error(), Kind: "panic", Quarantined: q,
		}}
	}
	return out
}

func (s *Server) optimize(j *job) outcome {
	fns, err := textir.Parse(j.req.Program)
	if err != nil {
		return outcome{http.StatusBadRequest, optimizeResponse{
			Error: err.Error(), Kind: "parse",
		}}
	}
	if len(fns) == 0 {
		return outcome{http.StatusBadRequest, optimizeResponse{
			Error: "no functions in program", Kind: "parse",
		}}
	}
	pass, _ := pipeline.ForMode(j.req.Mode)
	fuel := s.cfg.Fuel
	if j.req.Fuel > 0 {
		fuel = j.req.Fuel
	}
	opts := pipeline.Options{
		Fuel:      fuel,
		Canonical: j.req.Canonical,
		Verify:    s.cfg.Verify || j.req.Verify,
		Ctx:       j.ctx,
	}

	resp := optimizeResponse{Functions: len(fns)}
	outs := make([]*ir.Function, 0, len(fns))
	canceled := false
	for _, f := range fns {
		res, err := pipeline.Run(f, []pipeline.Pass{pass}, opts)
		if err != nil {
			if errors.Is(err, pipeline.ErrInvalidInput) {
				return outcome{http.StatusBadRequest, optimizeResponse{
					Error: fmt.Sprintf("%s: %v", f.Name, err), Kind: "invalid",
				}}
			}
			return outcome{http.StatusInternalServerError, optimizeResponse{
				Error: fmt.Sprintf("%s: %v", f.Name, err), Kind: "panic",
			}}
		}
		// Whatever happened, res.F is validated: the optimized function,
		// or the last-known-good fallback (ultimately the input clone).
		outs = append(outs, res.F)
		resp.Applied = append(resp.Applied, res.Applied...)
		if res.FellBack() {
			resp.Diagnostics = append(resp.Diagnostics, res.Diagnostics()...)
			if res.Canceled() {
				canceled = true
				break // the shared deadline is gone; later functions would only repeat it
			}
			resp.FellBack = true
		}
	}
	resp.Program = textir.PrintFunctions(outs)

	if canceled {
		resp.Canceled = true
		resp.Error = "deadline exceeded during optimization"
		resp.Kind = "deadline"
		return outcome{http.StatusGatewayTimeout, resp}
	}
	if resp.FellBack {
		// A fallback means some pass faulted on this input: capture it so
		// failures under load become regression seeds.
		resp.Quarantined = s.quarantine(j.req.Program)
	}
	return outcome{http.StatusOK, resp}
}

// quarantine captures a faulting input in the configured directory, named
// by content hash so duplicates collapse. It returns the file path, or ""
// when capture is disabled or failed (capture must never take the request
// down with it).
func (s *Server) quarantine(program string) string {
	if s.cfg.Quarantine == "" || program == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(program))
	path := filepath.Join(s.cfg.Quarantine, "crash-"+hex.EncodeToString(sum[:8])+".ir")
	if _, err := os.Stat(path); err == nil {
		return path // already captured
	}
	if err := os.MkdirAll(s.cfg.Quarantine, 0o755); err != nil {
		return ""
	}
	if err := os.WriteFile(path, []byte(program), 0o644); err != nil {
		return ""
	}
	return path
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func msSince(t time.Time) int64 {
	return time.Since(t).Milliseconds()
}
