package lazycm

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun smoke-tests every runnable example: each must build,
// exit successfully, and print its headline output. This keeps the
// examples honest as the library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples need go run; skipped in -short mode")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"./examples/quickstart", nil, []string{
			"after lazy code motion",
			"verified: observably equivalent",
			"cond=1: a+b evaluated 2 time(s) before, 1 after",
		}},
		{"./examples/loopinvariant", nil, []string{
			"invariant is hoisted",
			"LCM declines",
		}},
		{"./examples/tradeoff", nil, []string{
			"BCM", "ALCM", "LCM", "temp lifetime",
		}},
		{"./examples/randomsuite", []string{"-n", "10"}, []string{
			"all verified",
			"LCM/BCM lifetime ratio",
		}},
		{"./examples/pipeline", nil, []string{
			"after 2 round(s): 102 evaluations",
			"copies propagated",
		}},
	}
	for _, c := range cases {
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", append([]string{"run", c.dir}, c.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, w := range c.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("%s output missing %q:\n%s", c.dir, w, out)
				}
			}
		})
	}
}
