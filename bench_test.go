package lazycm

import (
	"fmt"
	"testing"

	"lazycm/internal/dataflow"
	"lazycm/internal/exp"
	"lazycm/internal/gcse"
	"lazycm/internal/graph"
	"lazycm/internal/lcm"
	"lazycm/internal/lcmblock"
	"lazycm/internal/mr"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// The benchmarks below regenerate every experiment of the reproduction —
// one per figure (F1–F5) and one per measured theorem (T1–T6) — plus
// scaling benchmarks of the analysis itself. Each experiment benchmark
// reports, once, the same rows cmd/lcmexp prints, then times the
// regeneration.

func reportOnce(b *testing.B, gen func() *exp.Report) {
	b.Helper()
	b.Log("\n" + gen().String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen()
	}
}

func BenchmarkFigure1(b *testing.B) { reportOnce(b, exp.Figure1) }

func BenchmarkFigure2Safety(b *testing.B) { reportOnce(b, exp.Figure2) }

func BenchmarkFigure3BCM(b *testing.B) { reportOnce(b, exp.Figure3) }

func BenchmarkFigure4Delay(b *testing.B) { reportOnce(b, exp.Figure4) }

func BenchmarkFigure5Isolation(b *testing.B) { reportOnce(b, exp.Figure5) }

func BenchmarkT1Correctness(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T1Correctness(20, 3) })
}

func BenchmarkT2CompOptimality(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T2CompOptimality(20, 3) })
}

func BenchmarkT3Lifetimes(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T3Lifetimes(20) })
}

func BenchmarkT3bRegisterPressure(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T3bRegisterPressure(10, []int{4, 8}) })
}

// T4/T4b benchmark the analyses, so the program workload is generated
// once outside the timed region — the same fixed-workload discipline as
// BenchmarkLCMAnalyze and BenchmarkSolveScratch. (reportOnce resets the
// timer after its display run, so generation here is never timed.)
func BenchmarkT4SolverCost(b *testing.B) {
	sizes := []int{1, 2, 3}
	progs := exp.T4Programs(sizes, 5)
	reportOnce(b, func() *exp.Report { return exp.T4SolverCostOn(sizes, progs) })
}

func BenchmarkT4bSolverCostBlockLevel(b *testing.B) {
	sizes := []int{1, 2, 3}
	progs := exp.T4Programs(sizes, 5)
	reportOnce(b, func() *exp.Report { return exp.T4bSolverCostBlockLevelOn(sizes, progs) })
}

func BenchmarkT5LoopInvariant(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T5LoopInvariant([]int64{1, 10, 100, 1000}) })
}

func BenchmarkT5bSecondOrder(b *testing.B) {
	reportOnce(b, exp.T5bSecondOrder)
}

func BenchmarkT6GCSE(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T6GCSE(20, 3) })
}

func BenchmarkT7Canonicalization(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T7Canonicalization(20, 3) })
}

func BenchmarkT8StrengthReduction(b *testing.B) {
	reportOnce(b, func() *exp.Report { return exp.T8StrengthReduction([]int64{1, 10, 100}) })
}

// Scaling benchmarks: raw analysis and transformation cost on generated
// programs of growing size.

func sizedProgram(depth int) string {
	cfg := randprog.Default(int64(depth))
	cfg.MaxDepth = depth
	cfg.MaxItems = 3
	return randprog.Generate(cfg).String()
}

func BenchmarkLCMAnalyze(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 4, 5} {
		src := sizedProgram(depth)
		f, err := textir.ParseFunction(src)
		if err != nil {
			b.Fatal(err)
		}
		clone := f.Clone()
		graph.SplitCriticalEdges(clone)
		u := props.Collect(clone)
		g := nodes.Build(clone, u)
		b.Run(fmt.Sprintf("depth=%d/stmts=%d/exprs=%d", depth, clone.NumInstrs(), u.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lcm.Analyze(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveScratch isolates the shared-arena win: the same LCM
// analysis with a fresh allocation set per call ("fresh") versus one
// scratch arena reused across calls ("scratch"), as the server's workers
// and the experiment drivers use it. The allocs/op gap is the point.
func BenchmarkSolveScratch(b *testing.B) {
	for _, depth := range []int{3, 5} {
		f, err := textir.ParseFunction(sizedProgram(depth))
		if err != nil {
			b.Fatal(err)
		}
		clone := f.Clone()
		graph.SplitCriticalEdges(clone)
		u := props.Collect(clone)
		g := nodes.Build(clone, u)
		b.Run(fmt.Sprintf("depth=%d/fresh", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lcm.Analyze(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("depth=%d/scratch", depth), func(b *testing.B) {
			sc := dataflow.NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := lcm.AnalyzeOpts(g, lcm.Options{Scratch: sc})
				if err != nil {
					b.Fatal(err)
				}
				// Releasing is the point: without it the six retained
				// predicate matrices can never recycle and the arena
				// degenerates to fresh allocation (the old scaling cliff).
				a.Release()
			}
		})
	}
}

func BenchmarkLCMTransform(b *testing.B) {
	for _, depth := range []int{1, 3, 5} {
		f, err := textir.ParseFunction(sizedProgram(depth))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d/stmts=%d", depth, f.NumInstrs()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lcm.Transform(f, lcm.LCM); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMRTransform(b *testing.B) {
	for _, depth := range []int{1, 3, 5} {
		f, err := textir.ParseFunction(sizedProgram(depth))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d/stmts=%d", depth, f.NumInstrs()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mr.Transform(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGCSETransform(b *testing.B) {
	f, err := textir.ParseFunction(sizedProgram(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gcse.Transform(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePrintRoundTrip(b *testing.B) {
	src := sizedProgram(4)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := textir.ParseFunction(src)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.String()
	}
}

func BenchmarkRandProgGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = randprog.ForSeed(int64(i))
	}
}

// TestScratchAllocReduction pins the arena contract as a hard floor, not
// a benchmark eyeball: a released analysis on a warm shared arena must
// allocate at least 3× less than a fresh one. (The flat matrix layout
// already makes "fresh" cheap — tens of allocations, not thousands — and
// the warm arena's remaining allocations are dominated by the sliced
// strategy's worker goroutines, which are spawned per solve by design.)
// If a matrix stops being released, or a new per-call allocation sneaks
// into the steady-state path, this fails long before anyone reads a
// benchmark delta.
func TestScratchAllocReduction(t *testing.T) {
	f, err := textir.ParseFunction(sizedProgram(5))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.Clone()
	graph.SplitCriticalEdges(clone)
	u := props.Collect(clone)
	g := nodes.Build(clone, u)

	fresh := testing.AllocsPerRun(5, func() {
		if _, err := lcm.Analyze(g); err != nil {
			t.Fatal(err)
		}
	})

	sc := dataflow.NewScratch()
	warm, err := lcm.AnalyzeOpts(g, lcm.Options{Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	reused := testing.AllocsPerRun(5, func() {
		a, err := lcm.AnalyzeOpts(g, lcm.Options{Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		a.Release()
	})

	t.Logf("allocs/op: fresh=%.0f, warm arena=%.0f", fresh, reused)
	if reused > fresh/3 {
		t.Errorf("warm arena allocates %.0f/op vs %.0f/op fresh; want at least a 3x reduction", reused, fresh)
	}
}

// TestScale ensures the whole pipeline stays tractable on programs an
// order of magnitude larger than the experiment defaults (~2k statements).
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	cfg := randprog.Default(424242)
	cfg.MaxDepth = 7
	cfg.MaxItems = 4
	f := randprog.Generate(cfg)
	if f.NumInstrs() < 500 {
		t.Fatalf("generator too small for a scale test: %d statements", f.NumInstrs())
	}
	res, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.F.Validate(); err != nil {
		t.Fatal(err)
	}
	blockRes, err := lcmblock.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	mrRes, err := mr.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scale: %d statements, %d blocks, %d exprs; LCM %d/%d edits, edge-LCM %d/%d, MR %d/%d",
		f.NumInstrs(), f.NumBlocks(), props.Collect(f).Size(),
		res.Inserted, res.Replaced,
		blockRes.Inserted, blockRes.Deleted,
		mrRes.Inserted, mrRes.Deleted)
}
