// Random fleet: generate a batch of random structured programs, run every
// optimizer in the module over each, verify the paper's guarantees
// (equivalence, per-path never-worse, computational-optimality agreement,
// lifetime ordering), and print aggregate metrics.
//
// Run with: go run ./examples/randomsuite [-n programs] [-seed base]
package main

import (
	"flag"
	"fmt"
	"log"

	"lazycm/internal/interp"
	"lazycm/internal/lcm"
	"lazycm/internal/live"
	"lazycm/internal/mr"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
	"lazycm/internal/verify"
)

func main() {
	n := flag.Int("n", 50, "number of random programs")
	base := flag.Int64("seed", 0, "base seed")
	flag.Parse()

	var evalOrig, evalLCM, evalMR int
	var lifeBCM, lifeLCM int
	var lcmBeatsMR int
	for i := 0; i < *n; i++ {
		seed := *base + int64(i)
		f := randprog.ForSeed(seed)

		lres, err := lcm.Transform(f, lcm.LCM)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		bres, err := lcm.Transform(f, lcm.BCM)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		mres, err := mr.Transform(f)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}

		for _, tr := range []verify.Transformation{
			{Name: "LCM", F: lres.F, TempFor: lres.TempFor},
			{Name: "BCM", F: bres.F, TempFor: bres.TempFor},
			{Name: "MR", F: mres.F, TempFor: mres.TempFor},
		} {
			if err := verify.Check(f, tr, seed*131, 4); err != nil {
				log.Fatalf("seed %d: %v\n%s", seed, err, f)
			}
		}

		exprs := props.Collect(f).Exprs()
		strictly := false
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*977+int64(run))
			count := func(fn *lcm.Result) int {
				_, c, err := interp.Run(fn.F, interp.Options{Args: args})
				if err != nil {
					log.Fatal(err)
				}
				return interp.CountsRestrictedTo(c, exprs).Total()
			}
			_, co, err := interp.Run(f, interp.Options{Args: args})
			if err != nil {
				log.Fatal(err)
			}
			_, cm, err := interp.Run(mres.F, interp.Options{Args: args})
			if err != nil {
				log.Fatal(err)
			}
			o := interp.CountsRestrictedTo(co, exprs).Total()
			m := interp.CountsRestrictedTo(cm, exprs).Total()
			l := count(lres)
			evalOrig += o
			evalLCM += l
			evalMR += m
			if l < m {
				strictly = true
			}
		}
		if strictly {
			lcmBeatsMR++
		}

		sum := func(res *lcm.Result) int {
			t := 0
			life, err := live.TempLifetimes(res.F, res.TempFor)
			if err != nil {
				log.Fatal(err)
			}
			for _, v := range life {
				t += v
			}
			return t
		}
		lifeBCM += sum(bres)
		lifeLCM += sum(lres)
	}

	fmt.Printf("programs: %d (all verified: equivalent, never worse, temps defined)\n", *n)
	fmt.Printf("dynamic candidate evaluations: original %d, MR %d, LCM %d\n", evalOrig, evalMR, evalLCM)
	fmt.Printf("LCM strictly beats MR on %d/%d programs\n", lcmBeatsMR, *n)
	fmt.Printf("temporary lifetimes: BCM %d live points, LCM %d live points\n", lifeBCM, lifeLCM)
	if lifeBCM > 0 {
		fmt.Printf("LCM/BCM lifetime ratio: %.3f\n", float64(lifeLCM)/float64(lifeBCM))
	}
}
