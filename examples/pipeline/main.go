// Pipeline: PRE in context. A single LCM round hoists a+b out of the loop
// but leaves x*2 behind (it depends on the local x). Copy propagation
// rewrites it over the PRE temporary, a second round hoists it, and
// dead-code elimination plus CFG simplification tidy the result — the
// reapplication story for second-order redundancies.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"lazycm/internal/interp"
	"lazycm/internal/opt"
	"lazycm/internal/textir"
)

const src = `
func hot(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  y = x * 2
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret y
}
`

func main() {
	f, err := textir.ParseFunction(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- original ---")
	fmt.Print(f)

	for rounds := 1; rounds <= 3; rounds++ {
		res, err := opt.Pipeline(f, rounds)
		if err != nil {
			log.Fatal(err)
		}
		args := []int64{3, 4, 50}
		_, counts, err := interp.Run(res.F, interp.Options{Args: args})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- after %d round(s): %d evaluations for 50 iterations ---\n", rounds, counts.Total())
		fmt.Print(res.F)
		for i, rs := range res.Rounds {
			fmt.Printf("round %d: inserted %d, replaced %d, copies propagated %d, dead removed %d\n",
				i+1, rs.Inserted, rs.Replaced, rs.CopiesPropagated, rs.DeadRemoved)
		}
	}
}
