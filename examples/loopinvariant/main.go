// Loop-invariant code motion as a special case of PRE: in a bottom-test
// loop the invariant computation is down-safe at the preheader, so Lazy
// Code Motion hoists it without any loop-specific machinery — one of the
// paper's headline claims.
//
// The example also shows the safety boundary: in a top-test (while) loop
// the zero-trip path never needs the value, so classic (non-speculative)
// LCM must leave the computation inside the body.
//
// Run with: go run ./examples/loopinvariant
package main

import (
	"fmt"
	"log"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/textir"
)

const bottomTest = `
func bottom(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}
`

const topTest = `
func top(a, b, n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = a + b
  i = i + 1
  jmp head
exit:
  ret i
}
`

func main() {
	demo("bottom-test loop (do-while): invariant is hoisted", bottomTest)
	demo("top-test loop (while): hoisting would be speculative, LCM declines", topTest)
}

func demo(title, src string) {
	f, err := textir.ParseFunction(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("===", title, "===")
	fmt.Println("--- original ---")
	fmt.Print(f)
	fmt.Println("--- after LCM ---")
	fmt.Print(res.F)

	e := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	fmt.Println("dynamic evaluations of a+b by trip count:")
	fmt.Printf("%8s %10s %8s\n", "trips", "original", "LCM")
	for _, n := range []int64{0, 1, 10, 100} {
		args := []int64{5, 7, n}
		_, before, err := interp.Run(f, interp.Options{Args: args})
		if err != nil {
			log.Fatal(err)
		}
		_, after, err := interp.Run(res.F, interp.Options{Args: args})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10d %8d\n", n, before[e], after[e])
	}
	fmt.Println()
}
