// The BCM/ALCM/LCM trade-off: all three placements are computationally
// optimal, but they differ in where the temporary lives. Busy code motion
// hoists as early as possible and maximizes register pressure; almost-lazy
// sinks as late as possible but emits isolated single-use copies; lazy code
// motion sinks late and suppresses the isolated insertions — the paper's
// lifetime-optimality result.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"lazycm/internal/lcm"
	"lazycm/internal/live"
	"lazycm/internal/textir"
)

// The diamond with a padded else-arm: the longer the early region, the
// bigger BCM's lifetime penalty.
const src = `
func tradeoff(a, b, p) {
entry:
  u = p * 2
  v = u - 1
  br p then else
then:
  x = a + b
  jmp join
else:
  w = u * v
  w = w + 1
  w = w * w
  jmp join
join:
  y = a + b
  ret y
}
`

func main() {
	f, err := textir.ParseFunction(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- original ---")
	fmt.Print(f)
	fmt.Println()

	fmt.Printf("%-6s %10s %12s %15s\n", "mode", "inserted", "replaced", "temp lifetime")
	for _, mode := range []lcm.Mode{lcm.BCM, lcm.ALCM, lcm.LCM} {
		res, err := lcm.Transform(f, mode)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		life, err := live.TempLifetimes(res.F, res.TempFor)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range life {
			total += v
		}
		fmt.Printf("%-6s %10d %12d %15d\n", mode, res.Inserted, res.Replaced, total)
	}
	fmt.Println()

	for _, mode := range []lcm.Mode{lcm.BCM, lcm.LCM} {
		res, err := lcm.Transform(f, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- after %s ---\n", mode)
		fmt.Print(res.F)
		fmt.Println()
	}
}
