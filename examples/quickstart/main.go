// Quickstart: build a function with the ir.Builder API, run Lazy Code
// Motion over it, and check the result against the interpreter.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/verify"
)

func main() {
	// The motivating shape of PRE: a + b is computed on the then-arm and
	// again at the join, so the join computation is redundant whenever the
	// then-arm ran — a *partial* redundancy that neither global CSE nor
	// loop-invariant code motion can remove.
	f, err := ir.NewBuilder("quickstart", "a", "b", "cond").
		Block("entry").Branch(ir.Var("cond"), "then", "else").
		Block("then").BinOp("x", ir.Add, ir.Var("a"), ir.Var("b")).Jump("join").
		Block("else").Jump("join").
		Block("join").BinOp("y", ir.Add, ir.Var("a"), ir.Var("b")).Ret(ir.Var("y")).
		Finish()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- original ---")
	fmt.Print(f)

	res, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- after lazy code motion ---")
	fmt.Print(res.F)
	fmt.Printf("inserted %d computation(s), replaced %d, temporaries: %v\n\n",
		res.Inserted, res.Replaced, res.TempFor)

	// The transformed program must behave identically...
	if err := verify.Check(f, verify.Transformation{Name: "LCM", F: res.F, TempFor: res.TempFor}, 1, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: observably equivalent and never worse on any path")

	// ...and evaluate a+b exactly once per execution.
	for _, cond := range []int64{0, 1} {
		_, before, err := interp.Run(f, interp.Options{Args: []int64{3, 4, cond}})
		if err != nil {
			log.Fatal(err)
		}
		_, after, err := interp.Run(res.F, interp.Options{Args: []int64{3, 4, cond}})
		if err != nil {
			log.Fatal(err)
		}
		e := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
		fmt.Printf("cond=%d: a+b evaluated %d time(s) before, %d after\n", cond, before[e], after[e])
	}
}
