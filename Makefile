GO ?= go

.PHONY: check build vet test race fuzz bench bench-json bench-delta serve triage chaos fleet restart-smoke resume-smoke disk-smoke

# Tier-1 gate: everything CI and pre-commit must hold.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the parser and the hardened pipeline.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/textir
	$(GO) test -run=NONE -fuzz=FuzzPipeline -fuzztime=30s ./internal/textir

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable benchmark numbers: ns/op and allocs/op per benchmark,
# written to BENCH_lcm.json (see the Performance section in README.md).
# The solver-core benchmarks (T4, T4b, SolveScratch) automatically get a
# second pass at a fixed -core-benchtime so their recorded numbers are
# multi-iteration averages with honest run counts, not one noisy sample.
# Override BENCHTIME for stabler numbers elsewhere, e.g.
#   make bench-json BENCHTIME=100x
BENCHTIME ?= 1x
bench-json:
	$(GO) run ./cmd/lcmbench -benchtime $(BENCHTIME) -o BENCH_lcm.json ./...

# Benchmark regression gate: re-measure the T4/T4b solver-cost
# benchmarks and fail when ns/op regressed more than MAX_REGRESS percent
# against the committed BENCH_lcm.json. CI runs this on every push; a PR
# that legitimately trades solver speed for something else overrides the
# gate by carrying the `bench-delta-override` label (CI skips the step)
# or locally with e.g.
#   make bench-delta MAX_REGRESS=60
# After an intentional performance change, refresh the baseline with
# `make bench-json` and commit the new BENCH_lcm.json.
MAX_REGRESS ?= 25
bench-delta:
	$(GO) run ./cmd/lcmbench -bench '^$$' -o /tmp/BENCH_fresh.json \
		-baseline BENCH_lcm.json -max-regress $(MAX_REGRESS) .

# Run the optimization server (see the lcmd section in README.md).
serve:
	$(GO) run ./cmd/lcmd

# Service-level chaos soak under the race detector: latency, worker
# stalls, induced panics, buggy passes, and cache corruption injected
# against the full lcmd server while the accounting, quarantine, and
# no-goroutine-leak invariants are asserted. Crashers captured during
# the soak land in _quarantine/chaos for triage.
chaos:
	mkdir -p _quarantine/chaos
	LCM_CHAOS_QUARANTINE=$(CURDIR)/_quarantine/chaos \
		$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/lcmserver/

# Fleet-level chaos soak under the race detector: three lcmd backends
# behind the lcmgate router while one backend is killed and another
# partitioned mid-soak. Asserts exact per-backend accounting, breaker
# isolation of the dead backend, byte-identical results from whichever
# replica answers, explicit Retry-After on every shed, and zero
# goroutine leaks. The gateway routing log lands in _quarantine/fleet.
fleet:
	mkdir -p _quarantine/fleet
	LCMGATE_SOAK_LOG=$(CURDIR)/_quarantine/fleet/gateway.log \
		$(GO) test -race -run 'TestFleet' -count=1 -v ./cmd/lcmgate/

# Crash-restart soak under the race detector (-short windows): three
# lcmd backends with durable caches behind the gateway while one backend
# is killed and revived twice — the second time over a deliberately
# bit-flipped cache directory. Asserts disk-served answers byte-identical
# to computed ones, corruption counted and never served, exact
# per-generation accounting across revivals, and breaker-driven
# re-routing while the node is down. The cache directories and routing
# log land in _cache/restart for inspection.
restart-smoke:
	mkdir -p _cache/restart
	LCM_RESTART_CACHE=$(CURDIR)/_cache/restart \
	LCMGATE_SOAK_LOG=$(CURDIR)/_cache/restart/gateway.log \
		$(GO) test -race -short -run 'TestFleetWarmRestart' -count=1 -v ./cmd/lcmgate/

# Crash-resume soak under the race detector: a client streams a
# resumable batch job while the server behind it is killed mid-batch
# twice; each revived generation runs over the same journal and durable
# cache. Asserts that no finished function is ever recomputed (counted
# per generation), admission accounting balances inside every
# generation, and the resumed result is byte-identical to an
# uninterrupted run. The journal and cache tiers land in _cache/resume
# for inspection.
resume-smoke:
	mkdir -p _cache/resume
	LCM_RESUME_DIR=$(CURDIR)/_cache/resume \
		$(GO) test -race -short -run 'TestResumeSoakKillMidBatch' -count=1 -v ./internal/lcmserver/

# Hostile-storage soak under the race detector (-short windows): three
# lcmd backends behind the gateway while backend 0's filesystem cycles
# through an ENOSPC storm, EIO on reads, multi-second fsync stalls, and
# torn renames via the internal/vfs fault injector. Asserts every 200
# byte-identical to a healthy reference, the disk tier self-quarantines
# (new ?job= refused with the journal_degraded contract) and re-enables
# via the background probe, stalled fsyncs bounded by the IO deadline,
# and exact admission accounting. The injected-fault log and gateway
# routing log land in _cache/diskchaos for inspection.
disk-smoke:
	mkdir -p _cache/diskchaos
	LCM_DISK_CHAOS_DIR=$(CURDIR)/_cache/diskchaos \
	LCMGATE_SOAK_LOG=$(CURDIR)/_cache/diskchaos/gateway.log \
		$(GO) test -race -short -run 'TestDiskChaosSoak' -count=1 -v ./cmd/lcmgate/

# Corpus hygiene gate: every crasher in testdata/crashers must be
# minimal, signatures must be unique, and recorded sidecars must match
# what actually replays. Fix failures with: go run ./cmd/lcmtriage
triage:
	$(GO) run ./cmd/lcmtriage -check -dir testdata/crashers
