GO ?= go

.PHONY: check build vet test race fuzz bench bench-json serve triage chaos fleet restart-smoke resume-smoke

# Tier-1 gate: everything CI and pre-commit must hold.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the parser and the hardened pipeline.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/textir
	$(GO) test -run=NONE -fuzz=FuzzPipeline -fuzztime=30s ./internal/textir

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable benchmark numbers: ns/op and allocs/op per benchmark,
# written to BENCH_lcm.json (see the Performance section in README.md).
# Override BENCHTIME for stabler numbers, e.g.
#   make bench-json BENCHTIME=100x
BENCHTIME ?= 1x
bench-json:
	$(GO) run ./cmd/lcmbench -benchtime $(BENCHTIME) -o BENCH_lcm.json ./...

# Run the optimization server (see the lcmd section in README.md).
serve:
	$(GO) run ./cmd/lcmd

# Service-level chaos soak under the race detector: latency, worker
# stalls, induced panics, buggy passes, and cache corruption injected
# against the full lcmd server while the accounting, quarantine, and
# no-goroutine-leak invariants are asserted. Crashers captured during
# the soak land in _quarantine/chaos for triage.
chaos:
	mkdir -p _quarantine/chaos
	LCM_CHAOS_QUARANTINE=$(CURDIR)/_quarantine/chaos \
		$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/lcmserver/

# Fleet-level chaos soak under the race detector: three lcmd backends
# behind the lcmgate router while one backend is killed and another
# partitioned mid-soak. Asserts exact per-backend accounting, breaker
# isolation of the dead backend, byte-identical results from whichever
# replica answers, explicit Retry-After on every shed, and zero
# goroutine leaks. The gateway routing log lands in _quarantine/fleet.
fleet:
	mkdir -p _quarantine/fleet
	LCMGATE_SOAK_LOG=$(CURDIR)/_quarantine/fleet/gateway.log \
		$(GO) test -race -run 'TestFleet' -count=1 -v ./cmd/lcmgate/

# Crash-restart soak under the race detector (-short windows): three
# lcmd backends with durable caches behind the gateway while one backend
# is killed and revived twice — the second time over a deliberately
# bit-flipped cache directory. Asserts disk-served answers byte-identical
# to computed ones, corruption counted and never served, exact
# per-generation accounting across revivals, and breaker-driven
# re-routing while the node is down. The cache directories and routing
# log land in _cache/restart for inspection.
restart-smoke:
	mkdir -p _cache/restart
	LCM_RESTART_CACHE=$(CURDIR)/_cache/restart \
	LCMGATE_SOAK_LOG=$(CURDIR)/_cache/restart/gateway.log \
		$(GO) test -race -short -run 'TestFleetWarmRestart' -count=1 -v ./cmd/lcmgate/

# Crash-resume soak under the race detector: a client streams a
# resumable batch job while the server behind it is killed mid-batch
# twice; each revived generation runs over the same journal and durable
# cache. Asserts that no finished function is ever recomputed (counted
# per generation), admission accounting balances inside every
# generation, and the resumed result is byte-identical to an
# uninterrupted run. The journal and cache tiers land in _cache/resume
# for inspection.
resume-smoke:
	mkdir -p _cache/resume
	LCM_RESUME_DIR=$(CURDIR)/_cache/resume \
		$(GO) test -race -short -run 'TestResumeSoakKillMidBatch' -count=1 -v ./internal/lcmserver/

# Corpus hygiene gate: every crasher in testdata/crashers must be
# minimal, signatures must be unique, and recorded sidecars must match
# what actually replays. Fix failures with: go run ./cmd/lcmtriage
triage:
	$(GO) run ./cmd/lcmtriage -check -dir testdata/crashers
