// Package lazycm is a from-scratch Go reproduction of Lazy Code Motion
// (Knoop, Rüthing & Steffen, PLDI 1992): computationally and lifetime
// optimal partial-redundancy elimination by four unidirectional bit-vector
// data-flow analyses.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the executables under cmd/lcm and cmd/lcmexp, runnable
// examples under examples/, and the per-figure/per-theorem benchmark
// harness in bench_test.go at this root. EXPERIMENTS.md records the
// paper-expected versus measured outcome of every experiment.
package lazycm
