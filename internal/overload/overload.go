// Package overload implements the service-level overload story: a
// pressure gauge that condenses the server's live signals (queue depth,
// pool utilization, recent deadline-miss/fallback rate, smoothed
// latency) into one score, a degradation ladder that turns the score
// into an ordered shedding policy with hysteresis, and the load-aware
// Retry-After contract handed to shed clients.
//
// The design mirrors the paper's safety argument for the optimizer
// itself: a degraded response must be *provably safe* — correct output
// at reduced effort, never a wrong one. Every rung of the ladder only
// trades effort (verification battery off, fuel shrunk, work refused);
// none of them can alter what a completed optimization computes, so the
// ladder can act on pure load signals without consulting the semantics
// of in-flight requests.
//
// Determinism rules: the ladder is a pure function of the observed
// sample stream (no clocks), and Retry-After jitter is seeded from a
// hash of the request, not from time.Now — a shed request always gets
// the same hint, while distinct requests spread their retries instead
// of stampeding back in lockstep.
package overload

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Level is a rung of the degradation ladder. Higher levels shed more
// work; every level serves only correct results.
type Level int

const (
	// LevelFull is full service: every feature at full effort.
	LevelFull Level = iota
	// LevelNoVerify disables per-request behavioural re-verification and
	// shrinks the fixpoint fuel budget. Output programs are unchanged —
	// verification is a re-check, and fuel only decides whether a result
	// is produced, never which result.
	LevelNoVerify
	// LevelCacheSingle serves cached results and single requests only;
	// batch requests shed. Batches are the widest unit of admission, so
	// they are the first whole class refused.
	LevelCacheSingle
	// LevelShed refuses all new work. Cached results may still replay —
	// a cache hit does no computation.
	LevelShed
)

func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelNoVerify:
		return "no-verify"
	case LevelCacheSingle:
		return "cache+single"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level-%d", int(l))
}

// InflightWeight discounts pool utilization in the pressure score: a
// fully busy worker pool is the normal operating point of a loaded but
// healthy server, so on its own it can push the score only to this
// value (into the first rung, never into shedding). Queue depth, missed
// deadlines and latency are the signals that distinguish "busy" from
// "drowning".
const InflightWeight = 0.5

// Sample is one pressure observation. Every component is normalized so
// that 1.0 means "at capacity".
type Sample struct {
	// QueueFrac is queued work over queue capacity.
	QueueFrac float64
	// InflightFrac is busy workers over pool size.
	InflightFrac float64
	// MissRate is the fraction of recent completions that missed their
	// deadline or fell back.
	MissRate float64
	// LatencyFrac is the smoothed completion latency over the target
	// latency.
	LatencyFrac float64
}

// Score condenses the sample into one pressure value. The max (rather
// than a weighted sum) is deliberate: any single exhausted dimension is
// enough to justify shedding, and a max cannot be argued down by three
// healthy dimensions averaging out one critical one.
func (s Sample) Score() float64 {
	score := s.QueueFrac
	if v := InflightWeight * s.InflightFrac; v > score {
		score = v
	}
	if s.MissRate > score {
		score = s.MissRate
	}
	if s.LatencyFrac > score {
		score = s.LatencyFrac
	}
	return score
}

// Config tunes the ladder's thresholds and hysteresis.
type Config struct {
	// Enter[i] is the score at or above which the ladder escalates from
	// level i toward level i+1.
	Enter [3]float64
	// Exit[i] is the score below which the ladder de-escalates from
	// level i+1 toward level i. Exit[i] < Enter[i] is what gives the
	// ladder hysteresis: between the two the level holds.
	Exit [3]float64
	// UpAfter is how many consecutive over-threshold samples it takes to
	// climb one level; DownAfter how many consecutive under-threshold
	// samples to descend one. Escalation is deliberately faster than
	// recovery so a flapping signal degrades rather than oscillates.
	UpAfter   int
	DownAfter int
}

func (c Config) withDefaults() Config {
	var zero [3]float64
	if c.Enter == zero {
		c.Enter = [3]float64{0.50, 0.75, 0.95}
	}
	if c.Exit == zero {
		c.Exit = [3]float64{0.35, 0.55, 0.75}
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 4
	}
	return c
}

// Ladder tracks the current degradation level. It moves at most one
// level per Observe call, so shedding always happens in order: verify
// off, then batch shed, then full shed — and recovery retraces the same
// rungs. The zero-ish value via NewLadder starts at LevelFull.
type Ladder struct {
	mu          sync.Mutex
	cfg         Config
	level       Level
	upStreak    int
	downStreak  int
	transitions int64
}

// NewLadder builds a ladder at LevelFull with cfg (zero fields take
// defaults).
func NewLadder(cfg Config) *Ladder {
	return &Ladder{cfg: cfg.withDefaults()}
}

// Observe feeds one sample and returns the (possibly updated) level.
func (l *Ladder) Observe(s Sample) Level {
	score := s.Score()
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.level < LevelShed && score >= l.cfg.Enter[l.level]:
		l.upStreak++
		l.downStreak = 0
		if l.upStreak >= l.cfg.UpAfter {
			l.level++
			l.transitions++
			l.upStreak = 0
		}
	case l.level > LevelFull && score < l.cfg.Exit[l.level-1]:
		l.downStreak++
		l.upStreak = 0
		if l.downStreak >= l.cfg.DownAfter {
			l.level--
			l.transitions++
			l.downStreak = 0
		}
	default:
		// Inside the hysteresis band (or pinned at an end): hold, and
		// require fresh consecutive evidence for the next move.
		l.upStreak, l.downStreak = 0, 0
	}
	return l.level
}

// Level returns the current level without feeding a sample.
func (l *Ladder) Level() Level {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// Transitions returns how many level changes have occurred (in either
// direction) since the ladder was built.
func (l *Ladder) Transitions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transitions
}

// Gauge smooths the completion-side signals: an EWMA of request latency
// and a sliding-window rate of deadline misses and fallbacks. It is the
// half of the pressure sample that queue counters cannot see — a queue
// can be short while every request that does run is timing out.
type Gauge struct {
	mu     sync.Mutex
	target time.Duration
	alpha  float64
	ewma   time.Duration
	ring   []bool // true = missed deadline or fell back
	next   int
	filled int
	misses int
}

// DefaultGaugeWindow is the miss-rate window when NewGauge is given a
// non-positive size.
const DefaultGaugeWindow = 256

// NewGauge builds a gauge normalizing latency against target (0 means
// 1s) over a window of the last `window` completions.
func NewGauge(target time.Duration, window int) *Gauge {
	if target <= 0 {
		target = time.Second
	}
	if window <= 0 {
		window = DefaultGaugeWindow
	}
	return &Gauge{target: target, alpha: 0.2, ring: make([]bool, window)}
}

// Record feeds one completed request: its wall-clock latency and
// whether it missed its deadline or fell back.
func (g *Gauge) Record(latency time.Duration, missed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.filled == 0 {
		g.ewma = latency
	} else {
		g.ewma = time.Duration(g.alpha*float64(latency) + (1-g.alpha)*float64(g.ewma))
	}
	if g.filled == len(g.ring) {
		if g.ring[g.next] {
			g.misses--
		}
	} else {
		g.filled++
	}
	g.ring[g.next] = missed
	if missed {
		g.misses++
	}
	g.next = (g.next + 1) % len(g.ring)
}

// EWMA returns the smoothed completion latency.
func (g *Gauge) EWMA() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ewma
}

// MissRate returns the windowed deadline-miss/fallback fraction.
func (g *Gauge) MissRate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.filled == 0 {
		return 0
	}
	return float64(g.misses) / float64(g.filled)
}

// LatencyFrac returns EWMA latency normalized against the target.
func (g *Gauge) LatencyFrac() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.ewma) / float64(g.target)
}

// Retry-After bounds. Every hint the server hands out lives in this
// range, so a client can never be told to wait pathologically long and
// never told to hammer back instantly.
const (
	MinRetryAfter = 100 * time.Millisecond
	MaxRetryAfter = 30 * time.Second
)

// Seed hashes request-identifying strings (FNV-64a) into the jitter
// seed for RetryAfter. Using the request content instead of a clock
// keeps the hint deterministic — the same shed request always gets the
// same answer — while distinct requests land on distinct points of the
// jitter range instead of retrying in lockstep.
func Seed(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// JitterFrac maps a deterministic seed onto [0, 1) through a
// splitmix64-style finalizer: FNV output is well distributed but the
// mix makes even near-identical seeds diverge across the whole band.
// It is the one jitter primitive every layer shares — the server's
// Retry-After, the gateway's shed hints (seeded with backend id +
// request hash so replicas of the same shed request spread out), and
// the client's backoff — so "deterministic per request, decorrelated
// across requests" holds fleet-wide by construction.
func JitterFrac(seed uint64) float64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>40) / float64(uint64(1)<<24)
}

// RetryAfter computes the backoff hint for a shed request: the base
// grows with queue depth and ladder level (a deeper queue or a higher
// rung means genuinely longer until capacity returns), and the
// per-request jitter spreads synchronized clients across a ±25% band.
func RetryAfter(level Level, queueFrac float64, seed uint64) time.Duration {
	if queueFrac < 0 {
		queueFrac = 0
	}
	if queueFrac > 1 {
		queueFrac = 1
	}
	base := MinRetryAfter +
		time.Duration(queueFrac*float64(2*time.Second)) +
		time.Duration(level)*750*time.Millisecond
	d := time.Duration(float64(base) * (0.75 + JitterFrac(seed)/2))
	if d < MinRetryAfter {
		d = MinRetryAfter
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return d
}
