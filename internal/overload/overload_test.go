package overload

import (
	"testing"
	"time"
)

func TestScoreIsMaxOfComponents(t *testing.T) {
	cases := []struct {
		s    Sample
		want float64
	}{
		{Sample{}, 0},
		{Sample{QueueFrac: 0.8}, 0.8},
		{Sample{InflightFrac: 1.0}, InflightWeight}, // full pool alone is not an emergency
		{Sample{MissRate: 0.9, QueueFrac: 0.1}, 0.9},
		{Sample{LatencyFrac: 1.2}, 1.2},
		{Sample{QueueFrac: 0.3, InflightFrac: 1, MissRate: 0.2, LatencyFrac: 0.4}, 0.5},
	}
	for _, tc := range cases {
		if got := tc.s.Score(); got != tc.want {
			t.Errorf("Score(%+v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// ladderCfg is a deliberately twitchy config so tests can drive exact
// transitions: one over-threshold sample escalates, one under-threshold
// sample de-escalates.
var ladderCfg = Config{
	Enter:   [3]float64{0.3, 0.5, 0.8},
	Exit:    [3]float64{0.1, 0.2, 0.3},
	UpAfter: 1, DownAfter: 1,
}

func TestLadderClimbsOneLevelAtATime(t *testing.T) {
	l := NewLadder(ladderCfg)
	// A catastrophic score still climbs one rung per observation: the
	// shedding order (verify off → batch shed → full shed) is preserved
	// even under a step overload.
	for i, want := range []Level{LevelNoVerify, LevelCacheSingle, LevelShed, LevelShed} {
		if got := l.Observe(Sample{QueueFrac: 1}); got != want {
			t.Fatalf("observation %d: level %v, want %v", i, got, want)
		}
	}
	if got := l.Transitions(); got != 3 {
		t.Errorf("transitions = %d, want 3", got)
	}
}

func TestLadderRecoversInOrder(t *testing.T) {
	l := NewLadder(ladderCfg)
	for i := 0; i < 3; i++ {
		l.Observe(Sample{QueueFrac: 1})
	}
	for i, want := range []Level{LevelCacheSingle, LevelNoVerify, LevelFull, LevelFull} {
		if got := l.Observe(Sample{}); got != want {
			t.Fatalf("recovery observation %d: level %v, want %v", i, got, want)
		}
	}
	if got := l.Transitions(); got != 6 {
		t.Errorf("transitions = %d, want 6", got)
	}
}

// TestLadderHysteresis: a score inside the (Exit, Enter) band neither
// escalates nor de-escalates — levels do not flap on a signal hovering
// near one threshold.
func TestLadderHysteresis(t *testing.T) {
	l := NewLadder(ladderCfg)
	l.Observe(Sample{QueueFrac: 0.4}) // ≥ Enter[0] → level 1
	if got := l.Level(); got != LevelNoVerify {
		t.Fatalf("level = %v, want no-verify", got)
	}
	// 0.2 is below Enter[1]=0.5 and above Exit[0]=0.1: hold.
	for i := 0; i < 10; i++ {
		if got := l.Observe(Sample{QueueFrac: 0.2}); got != LevelNoVerify {
			t.Fatalf("observation %d inside band moved level to %v", i, got)
		}
	}
	if got := l.Transitions(); got != 1 {
		t.Errorf("transitions = %d, want 1", got)
	}
	// Dropping below Exit[0] recovers.
	if got := l.Observe(Sample{QueueFrac: 0.05}); got != LevelFull {
		t.Errorf("level = %v after calm sample, want full", got)
	}
}

// TestLadderDwell: with UpAfter=3 a single spike does not escalate; only
// three consecutive over-threshold samples do, and an interleaved calm
// sample resets the streak.
func TestLadderDwell(t *testing.T) {
	cfg := ladderCfg
	cfg.UpAfter, cfg.DownAfter = 3, 2
	l := NewLadder(cfg)
	hot, calm := Sample{QueueFrac: 0.9}, Sample{QueueFrac: 0.2}
	l.Observe(hot)
	l.Observe(hot)
	if got := l.Observe(calm); got != LevelFull {
		t.Fatalf("two hot samples escalated early: %v", got)
	}
	l.Observe(hot)
	l.Observe(hot)
	if got := l.Observe(hot); got != LevelNoVerify {
		t.Fatalf("three consecutive hot samples did not escalate: %v", got)
	}
	// Recovery needs DownAfter=2 consecutive calm samples.
	l.Observe(Sample{})
	if got := l.Level(); got != LevelNoVerify {
		t.Fatalf("one calm sample de-escalated early: %v", got)
	}
	if got := l.Observe(Sample{}); got != LevelFull {
		t.Fatalf("two calm samples did not de-escalate: %v", got)
	}
}

func TestGaugeMissRateWindow(t *testing.T) {
	g := NewGauge(time.Second, 4)
	if got := g.MissRate(); got != 0 {
		t.Fatalf("empty gauge miss rate = %v", got)
	}
	g.Record(time.Millisecond, true)
	g.Record(time.Millisecond, false)
	if got := g.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
	// Fill the window with hits: the early miss ages out.
	for i := 0; i < 4; i++ {
		g.Record(time.Millisecond, false)
	}
	if got := g.MissRate(); got != 0 {
		t.Errorf("miss rate after window rolled = %v, want 0", got)
	}
}

func TestGaugeLatencyFrac(t *testing.T) {
	g := NewGauge(100*time.Millisecond, 8)
	g.Record(100*time.Millisecond, false)
	if got := g.LatencyFrac(); got != 1.0 {
		t.Errorf("latency frac = %v, want 1.0", got)
	}
	if got := g.EWMA(); got != 100*time.Millisecond {
		t.Errorf("ewma = %v", got)
	}
	// EWMA moves toward new observations without jumping to them.
	g.Record(200*time.Millisecond, false)
	if e := g.EWMA(); e <= 100*time.Millisecond || e >= 200*time.Millisecond {
		t.Errorf("ewma after spike = %v, want strictly between 100ms and 200ms", e)
	}
}

func TestRetryAfterDeterministicAndBounded(t *testing.T) {
	seedA := Seed("program-a", "lcm")
	seedB := Seed("program-b", "lcm")
	if seedA == seedB {
		t.Fatal("distinct requests hashed to the same seed")
	}
	a1 := RetryAfter(LevelFull, 1, seedA)
	a2 := RetryAfter(LevelFull, 1, seedA)
	b := RetryAfter(LevelFull, 1, seedB)
	if a1 != a2 {
		t.Errorf("same request got different hints: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct requests got identical hints: %v", a1)
	}
	for _, lvl := range []Level{LevelFull, LevelNoVerify, LevelCacheSingle, LevelShed} {
		for _, qf := range []float64{-1, 0, 0.5, 1, 2} {
			d := RetryAfter(lvl, qf, seedA)
			if d < MinRetryAfter || d > MaxRetryAfter {
				t.Errorf("RetryAfter(%v, %v) = %v out of bounds", lvl, qf, d)
			}
		}
	}
}

// TestRetryAfterGrowsWithPressure: with jitter held fixed (same seed),
// a deeper queue and a higher ladder level both lengthen the hint.
func TestRetryAfterGrowsWithPressure(t *testing.T) {
	seed := Seed("p", "lcm")
	if shallow, deep := RetryAfter(LevelFull, 0.1, seed), RetryAfter(LevelFull, 0.9, seed); deep <= shallow {
		t.Errorf("deeper queue did not lengthen hint: %v vs %v", shallow, deep)
	}
	if low, high := RetryAfter(LevelNoVerify, 0.5, seed), RetryAfter(LevelShed, 0.5, seed); high <= low {
		t.Errorf("higher level did not lengthen hint: %v vs %v", low, high)
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelFull: "full", LevelNoVerify: "no-verify",
		LevelCacheSingle: "cache+single", LevelShed: "shed", Level(9): "level-9",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lvl), got, want)
		}
	}
}
