package vfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOsFSRoundTrip exercises every FS method against the real
// filesystem: the passthrough must behave exactly like the os package.
func TestOsFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}

	f, err := OS.CreateTemp(sub, "x-*.tmp")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := OS.Chmod(tmp, 0o644); err != nil {
		t.Fatalf("Chmod: %v", err)
	}

	final := filepath.Join(sub, "final")
	if err := OS.Rename(tmp, final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	b, err := OS.ReadFile(final)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}

	linked := filepath.Join(sub, "linked")
	if err := OS.Link(final, linked); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if err := OS.Link(final, linked); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("Link over existing = %v, want ErrExist", err)
	}

	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 2 {
		t.Fatalf("ReadDir = %d entries, %v", len(ents), err)
	}
	fi, err := OS.Stat(final)
	if err != nil || fi.Size() != 5 {
		t.Fatalf("Stat = %v, %v", fi, err)
	}

	g, err := OS.OpenFile(final, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	buf := make([]byte, 8)
	n, _ := g.Read(buf)
	if string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q", buf[:n])
	}
	g.Close()

	if err := OS.Remove(linked); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Stat(linked); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat after remove = %v, want ErrNotExist", err)
	}
}

// TestFaultFSDeterministic proves the same seed and op sequence yields
// identical fault decisions.
func TestFaultFSDeterministic(t *testing.T) {
	run := func() []bool {
		f := NewFaultFS(OS, 42)
		f.SetWindow(Window{ReadErrProb: 0.5})
		var got []bool
		for i := 0; i < 64; i++ {
			got = append(got, f.roll(0.5))
		}
		return got
	}
	a, b := run(), run()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
		if i > 0 && a[i] != a[i-1] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("all 64 decisions identical — mixer is not mixing")
	}
}

// TestFaultFSClasses triggers each fault class at probability 1 and
// checks the injected error carries the right errno.
func TestFaultFSClasses(t *testing.T) {
	dir := t.TempDir()
	seedFile := filepath.Join(dir, "seed")
	if err := os.WriteFile(seedFile, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	f := NewFaultFS(OS, 1)

	// Write error: ENOSPC on Write and on write-intent open.
	f.SetWindow(Window{WriteErrProb: 1})
	if _, err := f.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("write-intent open = %v, want EROFS", err)
	}
	if err := f.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("MkdirAll = %v, want EROFS", err)
	}
	if _, err := f.CreateTemp(dir, "t-*"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("CreateTemp = %v, want ENOSPC", err)
	}

	// File.Write fails while open (window cleared for the open itself).
	f.SetWindow(Window{})
	wf, err := f.OpenFile(filepath.Join(dir, "w2"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.SetWindow(Window{WriteErrProb: 1})
	if _, err := wf.Write([]byte("data")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write = %v, want ENOSPC", err)
	}
	wf.Close()

	// Short write: half the bytes land, then ENOSPC.
	f.SetWindow(Window{})
	sf, err := f.OpenFile(filepath.Join(dir, "short"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.SetWindow(Window{ShortWriteProb: 1})
	n, err := sf.Write([]byte("12345678"))
	if n != 4 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short Write = %d, %v; want 4, ENOSPC", n, err)
	}
	sf.Close()
	f.SetWindow(Window{})
	if b, _ := os.ReadFile(filepath.Join(dir, "short")); string(b) != "1234" {
		t.Fatalf("short write persisted %q, want %q", b, "1234")
	}

	// Read error.
	f.SetWindow(Window{ReadErrProb: 1})
	if _, err := f.ReadFile(seedFile); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile = %v, want EIO", err)
	}
	if _, err := f.ReadDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadDir = %v, want EIO", err)
	}
	if _, err := f.Stat(seedFile); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Stat = %v, want EIO", err)
	}

	// Sync error.
	f.SetWindow(Window{})
	yf, err := f.OpenFile(filepath.Join(dir, "y"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.SetWindow(Window{SyncErrProb: 1})
	if err := yf.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync = %v, want EIO", err)
	}
	yf.Close()

	// Rename error leaves the target intact.
	f.SetWindow(Window{RenameErrProb: 1})
	if err := f.Rename(seedFile, filepath.Join(dir, "moved")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Rename = %v, want EIO", err)
	}
	if _, err := os.Stat(seedFile); err != nil {
		t.Fatalf("rename-err must leave source: %v", err)
	}

	// Torn rename drops the destination and fails.
	tornDst := filepath.Join(dir, "torn-dst")
	if err := os.WriteFile(tornDst, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.SetWindow(Window{TornRenameProb: 1})
	if err := f.Rename(seedFile, tornDst); err == nil {
		t.Fatalf("torn rename must fail")
	}
	if _, err := os.Stat(tornDst); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("torn rename must drop the target, Stat = %v", err)
	}
	if _, err := os.Stat(seedFile); err != nil {
		t.Fatalf("torn rename must leave source (tmp) behind: %v", err)
	}

	// Remove error.
	f.SetWindow(Window{RemoveErrProb: 1})
	if err := f.Remove(seedFile); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Remove = %v, want EIO", err)
	}

	w, r, s, rn := f.Injected()
	if w == 0 || r == 0 || s == 0 || rn == 0 {
		t.Fatalf("Injected() = %d,%d,%d,%d — every class must have fired", w, r, s, rn)
	}

	// A cleared window is perfectly healthy again.
	f.SetWindow(Window{})
	if _, err := f.ReadFile(seedFile); err != nil {
		t.Fatalf("healthy ReadFile after clearing window: %v", err)
	}
}

// TestObserve checks every op reports its outcome with the right class.
func TestObserve(t *testing.T) {
	dir := t.TempDir()
	var faults [NumClasses]int
	var ok [NumClasses]int
	fsys := Observe(OS, func(op Op, err error) {
		if err != nil {
			faults[op.Class()]++
		} else {
			ok[op.Class()]++
		}
	})

	p := filepath.Join(dir, "f")
	fh, err := fsys.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte("x"))
	fh.Sync()
	fh.Close()
	fsys.ReadFile(p)
	fsys.Rename(p, p+"2")
	fsys.Remove(p + "2")
	fsys.ReadFile(filepath.Join(dir, "missing")) // fails

	if ok[ClassWrite] < 2 || ok[ClassSync] != 1 || ok[ClassRead] != 1 || ok[ClassRename] != 1 {
		t.Fatalf("ok counts = %v", ok)
	}
	if faults[ClassRead] != 1 {
		t.Fatalf("fault counts = %v, want one read fault", faults)
	}
}

// TestWithTimeout proves a stalled fsync is bounded by the IO deadline
// instead of wedging the caller.
func TestWithTimeout(t *testing.T) {
	dir := t.TempDir()
	fault := NewFaultFS(OS, 7)
	fsys := WithTimeout(fault, 50*time.Millisecond)

	f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	fault.SetWindow(Window{SyncStallProb: 1, SyncStall: 2 * time.Second})
	start := time.Now()
	err = f.Sync()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled Sync = %v, want ErrTimeout", err)
	}
	if elapsed > time.Second {
		t.Fatalf("stalled Sync took %v — deadline did not bound it", elapsed)
	}
	fault.SetWindow(Window{})
	f.Close()

	// Healthy ops pass straight through.
	if b, err := fsys.ReadFile(filepath.Join(dir, "f")); err != nil || string(b) != "x" {
		t.Fatalf("healthy ReadFile through timeout FS = %q, %v", b, err)
	}

	// d <= 0 is the identity.
	if got := WithTimeout(OS, 0); got != OS {
		t.Fatalf("WithTimeout(OS, 0) must return the inner FS")
	}
}
