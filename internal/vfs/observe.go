package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
)

// Observe wraps fsys so that every operation outcome — success or
// failure — is reported to fn before the result is returned to the
// caller. The server's disk-health tracker uses this to measure the
// sliding-window fault rate without cachestore, atomicio, or the
// journal knowing they are being watched.
//
// fn must be safe for concurrent use; it is called inline on the IO
// path so it should be cheap (counter updates, not IO).
func Observe(fsys FS, fn func(op Op, err error)) FS {
	return &observedFS{inner: fsys, fn: fn}
}

type observedFS struct {
	inner FS
	fn    func(op Op, err error)
}

func (o *observedFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := o.inner.OpenFile(name, flag, perm)
	o.fn(openOp(flag), err)
	if err != nil {
		return nil, err
	}
	return &observedFile{inner: f, fn: o.fn}, nil
}

func (o *observedFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := o.inner.CreateTemp(dir, pattern)
	o.fn(OpTemp, err)
	if err != nil {
		return nil, err
	}
	return &observedFile{inner: f, fn: o.fn}, nil
}

func (o *observedFS) ReadFile(name string) ([]byte, error) {
	b, err := o.inner.ReadFile(name)
	o.fn(OpRead, err)
	return b, err
}

func (o *observedFS) Rename(oldpath, newpath string) error {
	err := o.inner.Rename(oldpath, newpath)
	o.fn(OpRename, err)
	return err
}

func (o *observedFS) Link(oldpath, newpath string) error {
	err := o.inner.Link(oldpath, newpath)
	o.fn(OpLink, err)
	return err
}

func (o *observedFS) Remove(name string) error {
	err := o.inner.Remove(name)
	o.fn(OpRemove, err)
	return err
}

func (o *observedFS) ReadDir(name string) ([]fs.DirEntry, error) {
	ents, err := o.inner.ReadDir(name)
	o.fn(OpReadDir, err)
	return ents, err
}

func (o *observedFS) Stat(name string) (fs.FileInfo, error) {
	fi, err := o.inner.Stat(name)
	o.fn(OpStat, err)
	return fi, err
}

func (o *observedFS) MkdirAll(path string, perm os.FileMode) error {
	err := o.inner.MkdirAll(path, perm)
	o.fn(OpMkdir, err)
	return err
}

func (o *observedFS) Chmod(name string, mode os.FileMode) error {
	err := o.inner.Chmod(name, mode)
	o.fn(OpChmod, err)
	return err
}

type observedFile struct {
	inner File
	fn    func(op Op, err error)
}

func (f *observedFile) Read(p []byte) (int, error) {
	n, err := f.inner.Read(p)
	// EOF is how reads end, not a fault.
	if errors.Is(err, io.EOF) {
		return n, err
	}
	f.fn(OpRead, err)
	return n, err
}

func (f *observedFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	f.fn(OpWrite, err)
	return n, err
}

func (f *observedFile) Sync() error {
	err := f.inner.Sync()
	f.fn(OpSync, err)
	return err
}

func (f *observedFile) Close() error { return f.inner.Close() }
func (f *observedFile) Name() string { return f.inner.Name() }
