package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"
)

// ErrTimeout is returned (wrapped) by a WithTimeout filesystem when a
// single operation exceeds the IO deadline. It satisfies
// errors.Is(err, ErrTimeout).
var ErrTimeout = errors.New("vfs: io deadline exceeded")

// WithTimeout wraps fsys so every potentially blocking operation is
// bounded by d: the operation runs in its own goroutine and if it has
// not completed within d the caller gets ErrTimeout instead of
// blocking. This is what keeps a stalled fsync from wedging a request
// goroutine — the caller treats the timeout like any other IO error
// (the write failed, recompute/skip the tier) while the abandoned
// goroutine drains whenever the underlying operation finally returns.
// Results cross a buffered channel, never shared locals, so an
// abandoned operation completing late cannot race the caller.
//
// d <= 0 returns fsys unchanged.
//
// An abandoned operation may still complete later; the durable paths
// tolerate that (crash-atomic writes publish via rename, so a late
// write touches only a temp file, and every cache read re-verifies a
// content hash). The one residual hazard is an abandoned File.Read or
// File.Write touching a caller-owned buffer after timeout; the fault
// injector therefore only ever stalls operations that own their
// buffers (Sync, ReadFile, Rename, Remove).
func WithTimeout(fsys FS, d time.Duration) FS {
	if d <= 0 {
		return fsys
	}
	return &timeoutFS{inner: fsys, d: d}
}

type timeoutFS struct {
	inner FS
	d     time.Duration
}

type ioResult[T any] struct {
	v   T
	err error
}

// deadline runs op in its own goroutine and returns its result, or
// ErrTimeout if it does not complete within d. The channel is buffered
// so the abandoned goroutine can always deliver and exit.
func deadline[T any](d time.Duration, what string, op func() (T, error)) (T, error) {
	ch := make(chan ioResult[T], 1)
	go func() {
		v, err := op()
		ch <- ioResult[T]{v, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("%s: %w", what, ErrTimeout)
	}
}

// deadline0 is deadline for error-only operations.
func deadline0(d time.Duration, what string, op func() error) error {
	_, err := deadline(d, what, func() (struct{}, error) { return struct{}{}, op() })
	return err
}

func (t *timeoutFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := deadline(t.d, "openfile", func() (File, error) {
		return t.inner.OpenFile(name, flag, perm)
	})
	if err != nil {
		return nil, err
	}
	return &timeoutFile{inner: f, d: t.d}, nil
}

func (t *timeoutFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := deadline(t.d, "createtemp", func() (File, error) {
		return t.inner.CreateTemp(dir, pattern)
	})
	if err != nil {
		return nil, err
	}
	return &timeoutFile{inner: f, d: t.d}, nil
}

func (t *timeoutFS) ReadFile(name string) ([]byte, error) {
	return deadline(t.d, "readfile", func() ([]byte, error) { return t.inner.ReadFile(name) })
}

func (t *timeoutFS) Rename(oldpath, newpath string) error {
	return deadline0(t.d, "rename", func() error { return t.inner.Rename(oldpath, newpath) })
}

func (t *timeoutFS) Link(oldpath, newpath string) error {
	return deadline0(t.d, "link", func() error { return t.inner.Link(oldpath, newpath) })
}

func (t *timeoutFS) Remove(name string) error {
	return deadline0(t.d, "remove", func() error { return t.inner.Remove(name) })
}

func (t *timeoutFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return deadline(t.d, "readdir", func() ([]fs.DirEntry, error) { return t.inner.ReadDir(name) })
}

func (t *timeoutFS) Stat(name string) (fs.FileInfo, error) {
	return deadline(t.d, "stat", func() (fs.FileInfo, error) { return t.inner.Stat(name) })
}

func (t *timeoutFS) MkdirAll(path string, perm os.FileMode) error {
	return deadline0(t.d, "mkdirall", func() error { return t.inner.MkdirAll(path, perm) })
}

func (t *timeoutFS) Chmod(name string, mode os.FileMode) error {
	return deadline0(t.d, "chmod", func() error { return t.inner.Chmod(name, mode) })
}

// timeoutFile bounds the per-handle operations. Read and Write results
// cross the channel like everything else; see the package note about
// caller-owned buffers for why injected stalls never target them.
type timeoutFile struct {
	inner File
	d     time.Duration
}

func (f *timeoutFile) Read(p []byte) (int, error) {
	return deadline(f.d, "read", func() (int, error) { return f.inner.Read(p) })
}

func (f *timeoutFile) Write(p []byte) (int, error) {
	return deadline(f.d, "write", func() (int, error) { return f.inner.Write(p) })
}

func (f *timeoutFile) Sync() error {
	return deadline0(f.d, "sync", func() error { return f.inner.Sync() })
}

func (f *timeoutFile) Close() error { return f.inner.Close() }
func (f *timeoutFile) Name() string { return f.inner.Name() }
