package vfs

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Window describes one fault regime: per-class probabilities of
// injecting a failure on the next matching operation. A zero Window is
// perfectly healthy. Windows are swapped atomically mid-run with
// SetWindow, which is how a chaos soak cycles through an ENOSPC storm,
// an EIO-on-read phase, an fsync-stall phase, and a torn-rename phase
// against a live server.
//
// All probabilities are in [0,1]. Error fields default to the
// canonical errno for the class when left nil (ENOSPC for writes, EIO
// for reads/syncs/renames/removes, EROFS for opens) so tests usually
// set only probabilities.
type Window struct {
	// WriteErrProb fails File.Write (and write-intent OpenFile /
	// CreateTemp / MkdirAll / Chmod) with WriteErr.
	WriteErrProb float64
	WriteErr     error
	// ShortWriteProb makes File.Write persist only half the buffer
	// before failing with ENOSPC — the torn-write case crash-atomic
	// publication must survive.
	ShortWriteProb float64
	// ReadErrProb fails ReadFile, File.Read, ReadDir, Stat, and
	// read-only opens with ReadErr.
	ReadErrProb float64
	ReadErr     error
	// SyncErrProb fails File.Sync with SyncErr.
	SyncErrProb float64
	SyncErr     error
	// SyncStallProb delays File.Sync by SyncStall before it proceeds —
	// the multi-second-fsync case. Bounded by WithTimeout when the
	// caller stacked one above this FS.
	SyncStallProb float64
	SyncStall     time.Duration
	// RenameErrProb fails Rename (and Link) with RenameErr, leaving
	// the target untouched.
	RenameErrProb float64
	RenameErr     error
	// TornRenameProb models the worst non-atomic rename: the target is
	// removed but the new name is never published, then the call fails.
	TornRenameProb float64
	// RemoveErrProb fails Remove with RemoveErr.
	RemoveErrProb float64
	RemoveErr     error
	// StallProb delays ReadFile, Rename, and Remove by Stall before
	// they proceed (generic disk latency). Operations that write into
	// caller-owned buffers are never stalled — see WithTimeout.
	StallProb float64
	Stall     time.Duration
}

func errOr(err, def error) error {
	if err != nil {
		return err
	}
	return def
}

// FaultFS wraps an inner FS and injects faults per the active Window.
// Decisions are deterministic: a seeded counter is hashed per
// operation (splitmix64), so the same seed and operation sequence
// yields the same faults — no clocks, no global rand. Injected faults
// are counted per class and optionally logged via Logf for CI
// artifacts.
type FaultFS struct {
	inner FS
	seed  uint64
	ops   atomic.Uint64

	mu     sync.Mutex
	window Window

	injected [NumClasses]atomic.Int64

	// Logf, when set before first use, receives one line per injected
	// fault (op, path, fault kind). It must be safe for concurrent use.
	Logf func(format string, args ...any)
}

// NewFaultFS wraps inner with a healthy (zero) window.
func NewFaultFS(inner FS, seed uint64) *FaultFS {
	return &FaultFS{inner: inner, seed: seed}
}

// SetWindow swaps the active fault regime. Safe to call while
// operations are in flight; in-flight operations finish under the
// window they sampled.
func (f *FaultFS) SetWindow(w Window) {
	f.mu.Lock()
	f.window = w
	f.mu.Unlock()
}

// Injected reports how many faults have been injected per class.
func (f *FaultFS) Injected() (write, read, sync, rename int64) {
	return f.injected[ClassWrite].Load(), f.injected[ClassRead].Load(),
		f.injected[ClassSync].Load(), f.injected[ClassRename].Load()
}

func (f *FaultFS) snapshot() Window {
	f.mu.Lock()
	w := f.window
	f.mu.Unlock()
	return w
}

// roll draws the next deterministic uniform in [0,1) and compares it
// to p. Each call consumes one point of the sequence.
func (f *FaultFS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	n := f.ops.Add(1)
	x := f.seed + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p
}

func (f *FaultFS) inject(op Op, path, kind string) {
	f.injected[op.Class()].Add(1)
	if f.Logf != nil {
		f.Logf("fault %s %s %s", op, kind, path)
	}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	w := f.snapshot()
	op := openOp(flag)
	if op == OpCreate {
		if f.roll(w.WriteErrProb) {
			f.inject(op, name, "open-err")
			return nil, &fs.PathError{Op: "open", Path: name, Err: errOr(w.WriteErr, syscall.EROFS)}
		}
	} else if f.roll(w.ReadErrProb) {
		f.inject(op, name, "open-err")
		return nil, &fs.PathError{Op: "open", Path: name, Err: errOr(w.ReadErr, syscall.EIO)}
	}
	g, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: g, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	w := f.snapshot()
	if f.roll(w.WriteErrProb) {
		f.inject(OpTemp, dir, "createtemp-err")
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: errOr(w.WriteErr, syscall.ENOSPC)}
	}
	g, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: g, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	w := f.snapshot()
	if w.Stall > 0 && f.roll(w.StallProb) {
		f.inject(OpRead, name, "stall")
		time.Sleep(w.Stall)
	}
	if f.roll(w.ReadErrProb) {
		f.inject(OpRead, name, "read-err")
		return nil, &fs.PathError{Op: "read", Path: name, Err: errOr(w.ReadErr, syscall.EIO)}
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	w := f.snapshot()
	if w.Stall > 0 && f.roll(w.StallProb) {
		f.inject(OpRename, newpath, "stall")
		time.Sleep(w.Stall)
	}
	if f.roll(w.TornRenameProb) {
		// Worst-case non-atomic rename: the destination is dropped but
		// the new name never appears. The source (a temp file on every
		// durable path) is left behind for SweepTmp.
		f.inject(OpRename, newpath, "torn-rename")
		_ = f.inner.Remove(newpath)
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	if f.roll(w.RenameErrProb) {
		f.inject(OpRename, newpath, "rename-err")
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: errOr(w.RenameErr, syscall.EIO)}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Link(oldpath, newpath string) error {
	w := f.snapshot()
	if f.roll(w.RenameErrProb) {
		f.inject(OpLink, newpath, "link-err")
		return &os.LinkError{Op: "link", Old: oldpath, New: newpath, Err: errOr(w.RenameErr, syscall.EIO)}
	}
	return f.inner.Link(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	w := f.snapshot()
	if w.Stall > 0 && f.roll(w.StallProb) {
		f.inject(OpRemove, name, "stall")
		time.Sleep(w.Stall)
	}
	if f.roll(w.RemoveErrProb) {
		f.inject(OpRemove, name, "remove-err")
		return &fs.PathError{Op: "remove", Path: name, Err: errOr(w.RemoveErr, syscall.EIO)}
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	w := f.snapshot()
	if f.roll(w.ReadErrProb) {
		f.inject(OpReadDir, name, "readdir-err")
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: errOr(w.ReadErr, syscall.EIO)}
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	w := f.snapshot()
	if f.roll(w.ReadErrProb) {
		f.inject(OpStat, name, "stat-err")
		return nil, &fs.PathError{Op: "stat", Path: name, Err: errOr(w.ReadErr, syscall.EIO)}
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	w := f.snapshot()
	if f.roll(w.WriteErrProb) {
		f.inject(OpMkdir, path, "mkdir-err")
		return &fs.PathError{Op: "mkdir", Path: path, Err: errOr(w.WriteErr, syscall.EROFS)}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Chmod(name string, mode os.FileMode) error {
	w := f.snapshot()
	if f.roll(w.WriteErrProb) {
		f.inject(OpChmod, name, "chmod-err")
		return &fs.PathError{Op: "chmod", Path: name, Err: errOr(w.WriteErr, syscall.EROFS)}
	}
	return f.inner.Chmod(name, mode)
}

type faultFile struct {
	inner File
	fs    *FaultFS
}

func (f *faultFile) Read(p []byte) (int, error) {
	w := f.fs.snapshot()
	if f.fs.roll(w.ReadErrProb) {
		f.fs.inject(OpRead, f.inner.Name(), "read-err")
		return 0, &fs.PathError{Op: "read", Path: f.inner.Name(), Err: errOr(w.ReadErr, syscall.EIO)}
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	w := f.fs.snapshot()
	if f.fs.roll(w.ShortWriteProb) {
		// Persist half the buffer, then fail: the torn write a crashed
		// or full disk leaves behind. The caller sees an error; the
		// partial bytes really are on disk.
		f.fs.inject(OpWrite, f.inner.Name(), "short-write")
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("short write %d/%d: %w", n, len(p), syscall.ENOSPC)
	}
	if f.fs.roll(w.WriteErrProb) {
		f.fs.inject(OpWrite, f.inner.Name(), "write-err")
		return 0, &fs.PathError{Op: "write", Path: f.inner.Name(), Err: errOr(w.WriteErr, syscall.ENOSPC)}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	w := f.fs.snapshot()
	if w.SyncStall > 0 && f.fs.roll(w.SyncStallProb) {
		f.fs.inject(OpSync, f.inner.Name(), "sync-stall")
		time.Sleep(w.SyncStall)
	}
	if f.fs.roll(w.SyncErrProb) {
		f.fs.inject(OpSync, f.inner.Name(), "sync-err")
		return &fs.PathError{Op: "sync", Path: f.inner.Name(), Err: errOr(w.SyncErr, syscall.EIO)}
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
func (f *faultFile) Name() string { return f.inner.Name() }
