// Package vfs is the filesystem seam for every durable path in the
// repo: the content-addressed disk cache, the write-ahead job journal,
// crash-atomic writes in atomicio, and quarantine capture all perform
// their file IO through the FS interface instead of calling the os
// package directly.
//
// Production uses OS, a zero-cost passthrough to the real filesystem,
// so behavior is unchanged. Tests wrap it:
//
//   - FaultFS injects deterministic, seeded storage faults (ENOSPC,
//     EIO, EROFS, short writes, torn renames, fsync stalls) inside
//     togglable fault windows.
//   - WithTimeout bounds every potentially blocking operation with an
//     IO deadline so a stalled fsync cannot wedge a request goroutine.
//   - Observe reports every operation outcome to a callback, which is
//     how the server's disk-health tracker sees fault rates without
//     any of the durable layers knowing about it.
//
// The interface is deliberately minimal: exactly the operations the
// durable paths use, nothing more.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// Op identifies one filesystem operation for observers and fault
// policies. Ops fold into four coarse classes (see Class) that match
// the healthz fault counters.
type Op uint8

const (
	OpOpen    Op = iota // open for reading
	OpCreate            // open with write intent (create/append/trunc)
	OpRead              // read bytes (ReadFile or File.Read)
	OpWrite             // write bytes (File.Write)
	OpSync              // File.Sync (fsync)
	OpRename            // Rename
	OpLink              // Link
	OpRemove            // Remove
	OpReadDir           // ReadDir
	OpStat              // Stat
	OpMkdir             // MkdirAll
	OpChmod             // Chmod
	OpTemp              // CreateTemp
)

var opNames = [...]string{
	OpOpen: "open", OpCreate: "create", OpRead: "read", OpWrite: "write",
	OpSync: "sync", OpRename: "rename", OpLink: "link", OpRemove: "remove",
	OpReadDir: "readdir", OpStat: "stat", OpMkdir: "mkdir", OpChmod: "chmod",
	OpTemp: "createtemp",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// Class is the coarse fault bucket an Op belongs to, matching the
// disk_faults_{write,read,sync,rename} healthz counters.
type Class uint8

const (
	ClassWrite Class = iota
	ClassRead
	ClassSync
	ClassRename
	NumClasses = 4
)

func (c Class) String() string {
	switch c {
	case ClassWrite:
		return "write"
	case ClassRead:
		return "read"
	case ClassSync:
		return "sync"
	case ClassRename:
		return "rename"
	}
	return "class?"
}

// Class folds an Op into its fault bucket. Link lands in the rename
// class (both are directory-entry publication); everything that
// mutates data or metadata lands in write; pure lookups land in read.
func (op Op) Class() Class {
	switch op {
	case OpSync:
		return ClassSync
	case OpRename, OpLink:
		return ClassRename
	case OpOpen, OpRead, OpReadDir, OpStat:
		return ClassRead
	default: // OpCreate, OpWrite, OpRemove, OpMkdir, OpChmod, OpTemp
		return ClassWrite
	}
}

// File is the handle the durable paths operate on. It is the subset
// of *os.File they use; Sync is included because crash-atomicity
// depends on fsync ordering.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem the durable paths go through. All semantics
// match the corresponding os functions; implementations that inject
// faults or deadlines must still return os-shaped errors (fs.ErrNotExist,
// fs.ErrExist, syscall errnos) so callers' errors.Is checks keep working.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file with os.ReadFile semantics.
	ReadFile(name string) ([]byte, error)
	// Rename renames oldpath to newpath (atomic on POSIX when healthy).
	Rename(oldpath, newpath string) error
	// Link creates newpath as a hard link to oldpath (fails with
	// fs.ErrExist if newpath exists — the O_EXCL publication primitive).
	Link(oldpath, newpath string) error
	// Remove removes the named file.
	Remove(name string) error
	// ReadDir lists a directory with os.ReadDir semantics.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat stats the named file.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Chmod changes the mode of the named file.
	Chmod(name string, mode os.FileMode) error
}

// OS is the passthrough filesystem used in production: every method
// delegates straight to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Link(oldpath, newpath string) error           { return os.Link(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Chmod(name string, mode os.FileMode) error    { return os.Chmod(name, mode) }

// openOp classifies an OpenFile call: opens with write intent count as
// OpCreate (write class) so an EROFS/ENOSPC on them is attributed to
// the write bucket, while read-only opens stay in the read bucket.
func openOp(flag int) Op {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND|os.O_CREATE|os.O_TRUNC) != 0 {
		return OpCreate
	}
	return OpOpen
}
