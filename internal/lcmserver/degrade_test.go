package lcmserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/overload"
)

// steadyLadder pins the ladder at level 0 for the test's lifetime: the
// streak requirements are far beyond anything a test emits, so shed
// responses differ only by their per-request jitter.
var steadyLadder = overload.Config{UpAfter: 1 << 20, DownAfter: 1 << 20}

// rawOptimize posts and returns the raw response so headers can be
// inspected alongside the decoded body.
func rawOptimize(t *testing.T, ts *httptest.Server, req optimizeRequest) (*http.Response, optimizeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out optimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return resp, out
}

// TestRetryAfterLoadAwareJitter is the regression test for the
// hardcoded-hint bug: every shed response used to say "Retry-After: 1",
// so synchronized clients retried in lockstep. Now the hint is computed
// from queue depth and ladder level with per-request jitter — two
// rejections of different requests name different waits, while the same
// request always gets the same deterministic answer.
func TestRetryAfterLoadAwareJitter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Workers: 1, Queue: 1, Timeout: time.Minute, Degrade: steadyLadder,
		hook: func(optimizeRequest) { <-release },
	})
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	other := strings.Replace(diamond, "func f(", "func g(", 1)
	respA, outA := rawOptimize(t, ts, optimizeRequest{Program: diamond})
	respB, outB := rawOptimize(t, ts, optimizeRequest{Program: other})
	respA2, outA2 := rawOptimize(t, ts, optimizeRequest{Program: diamond})
	for i, r := range []*http.Response{respA, respB, respA2} {
		if r.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed response %d: status %d, want 429", i, r.StatusCode)
		}
	}

	if outA.RetryAfterMS == outB.RetryAfterMS {
		t.Errorf("two distinct shed requests got the identical hint %dms — jitter is not per-request",
			outA.RetryAfterMS)
	}
	if outA.RetryAfterMS != outA2.RetryAfterMS {
		t.Errorf("same request got different hints (%d vs %d) — jitter is not deterministic",
			outA.RetryAfterMS, outA2.RetryAfterMS)
	}
	for _, out := range []optimizeResponse{outA, outB} {
		if out.RetryAfterMS < overload.MinRetryAfter.Milliseconds() ||
			out.RetryAfterMS > overload.MaxRetryAfter.Milliseconds() {
			t.Errorf("hint %dms outside [%v, %v]", out.RetryAfterMS, overload.MinRetryAfter, overload.MaxRetryAfter)
		}
	}
	// The whole-second header is the body hint rounded up, never down to
	// a lie about how soon capacity returns.
	wantHeader := strconv.FormatInt((outB.RetryAfterMS+999)/1000, 10)
	if got := respB.Header.Get("Retry-After"); got != wantHeader {
		t.Errorf("Retry-After header %q, want %q (ceil of %dms)", got, wantHeader, outB.RetryAfterMS)
	}
	// /healthz reports the last hint issued.
	_, h := getHealthz(t, ts)
	if got := int64(h["retry_after_ms"].(float64)); got != outA2.RetryAfterMS {
		t.Errorf("healthz retry_after_ms = %d, want %d", got, outA2.RetryAfterMS)
	}
}

// TestLadderShedsAndRecovers walks the whole ladder under a controlled
// queue: pressure escalates one level per observation (UpAfter=1), each
// level sheds exactly its class of work, and draining the queue walks
// the ladder back down the same rungs — 6 transitions, visible on
// /healthz throughout.
func TestLadderShedsAndRecovers(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1, Queue: 8, Timeout: time.Minute, CacheSize: -1,
		Degrade: overload.Config{
			// Thresholds chosen so the queue fraction alone drives the
			// climb: the busy-pool term maxes out at InflightWeight (0.5),
			// below Enter[0].
			Enter:   [3]float64{0.55, 0.70, 0.85},
			Exit:    [3]float64{0.10, 0.20, 0.30},
			UpAfter: 1, DownAfter: 1,
		},
		hook: func(optimizeRequest) { <-release },
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	level := func() float64 {
		t.Helper()
		_, h := getHealthz(t, ts)
		return h["degrade_level"].(float64)
	}

	// One request occupies the worker; a busy-but-empty-queue server is
	// full service.
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	if lvl := level(); lvl != 0 {
		t.Fatalf("busy pool alone pushed level to %v", lvl)
	}

	// Queue 5/8 = 0.625 ≥ Enter[0]: one observation climbs to level 1.
	for i := int64(1); i <= 5; i++ {
		asyncOptimize(ts, diamond)
		waitFor(t, func() bool { return s.queued.Load() == i })
	}
	if lvl := level(); lvl != 1 {
		t.Fatalf("level = %v at queue 5/8, want 1", lvl)
	}

	// Queue 6/8 = 0.75 ≥ Enter[1]: level 2. Batches shed, singles pass.
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.queued.Load() == 6 })
	if lvl := level(); lvl != 2 {
		t.Fatalf("level = %v at queue 6/8, want 2", lvl)
	}
	bcode, bout := postBatch(t, ts, optimizeRequest{Program: diamond})
	if bcode != http.StatusTooManyRequests || bout.Kind != "overload" {
		t.Fatalf("level-2 batch: %d %q, want 429/overload", bcode, bout.Kind)
	}
	asyncOptimize(ts, diamond) // a single is still admitted at level 2
	waitFor(t, func() bool { return s.queued.Load() == 7 })

	// Queue 7/8 = 0.875 ≥ Enter[2]: level 3. Everything new sheds.
	if lvl := level(); lvl != 3 {
		t.Fatalf("level = %v at queue 7/8, want 3", lvl)
	}
	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusTooManyRequests || out.Kind != "overload" {
		t.Fatalf("level-3 single: %d %+v, want 429/overload", code, out)
	}
	if out.DegradeLevel != 3 || out.RetryAfterMS <= 0 {
		t.Errorf("level-3 shed body = %+v, want degrade_level 3 with a retry hint", out)
	}

	// Release the pool; the ladder must retrace its rungs back to full
	// service as probes observe the drained queue.
	close(release)
	waitFor(t, func() bool { return s.queued.Load() == 0 && s.inflight.Load() == 0 })
	waitFor(t, func() bool { return level() == 0 })
	if got := s.ladder.Transitions(); got != 6 {
		t.Errorf("transitions = %d, want 6 (3 up, 3 down, one rung at a time)", got)
	}
}

// TestOptionsForDegradesEffort: level 1+ turns verification off and
// shrinks the fuel budget, and only in the tightening direction — a
// client already running leaner than the degraded cap keeps its own
// budget.
func TestOptionsForDegradesEffort(t *testing.T) {
	s := NewServer(Config{Workers: 1, Verify: true, DegradedFuel: 500})
	defer s.Close()
	req := optimizeRequest{Program: diamond}

	if fuel, verify := s.optionsFor(req, overload.LevelFull); fuel != 0 || !verify {
		t.Errorf("full service = fuel %d verify %v, want 0/true", fuel, verify)
	}
	if fuel, verify := s.optionsFor(req, overload.LevelNoVerify); fuel != 500 || verify {
		t.Errorf("degraded = fuel %d verify %v, want 500/false (unlimited shrinks to cap)", fuel, verify)
	}
	req.Fuel = 100
	if fuel, _ := s.optionsFor(req, overload.LevelNoVerify); fuel != 100 {
		t.Errorf("degraded fuel = %d, want the client's own tighter 100", fuel)
	}
	req.Fuel = 10000
	if fuel, _ := s.optionsFor(req, overload.LevelNoVerify); fuel != 500 {
		t.Errorf("degraded fuel = %d, want clamped to 500", fuel)
	}

	s2 := NewServer(Config{Workers: 1, DegradedFuel: -1})
	defer s2.Close()
	if fuel, verify := s2.optionsFor(optimizeRequest{Fuel: 10000}, overload.LevelShed); fuel != 10000 || verify {
		t.Errorf("disabled shrink = fuel %d verify %v, want 10000/false", fuel, verify)
	}
}

// climbingLadder escalates on every observation regardless of score, so
// a test can walk the server to any level with /healthz probes.
var climbingLadder = overload.Config{
	Enter: [3]float64{-1, -1, -1}, Exit: [3]float64{-1, -1, -1},
	UpAfter: 1, DownAfter: 1,
}

// TestCacheServesAtFullShed: level 3 refuses all new computation but a
// cached result costs none — popular inputs keep getting answers, with
// exact accounting, while everything else sheds.
func TestCacheServesAtFullShed(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Degrade: climbingLadder})

	// Prime the cache. This request itself observes once (level 1), so it
	// already runs — and is keyed — under the degraded options that later
	// probes will look up.
	code, primed := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusOK {
		t.Fatalf("priming request: %d %+v", code, primed)
	}
	for i := 0; i < 2; i++ { // two probes: level 2, then 3
		getHealthz(t, ts)
	}

	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusOK {
		t.Fatalf("cached request at shed level: %d %+v", code, out)
	}
	if out.Program != primed.Program {
		t.Errorf("cache replay differs from the primed result:\n%s\nvs\n%s", out.Program, primed.Program)
	}
	if out.DegradeLevel != 3 {
		t.Errorf("degrade_level = %d, want 3", out.DegradeLevel)
	}
	if s.cacheHits.Load() != 1 {
		t.Errorf("cache hits = %d, want 1", s.cacheHits.Load())
	}

	// An uncached program at level 3 sheds.
	other := strings.Replace(diamond, "func f(", "func g(", 1)
	code, out = postOptimize(t, ts, optimizeRequest{Program: other})
	if code != http.StatusTooManyRequests || out.Kind != "overload" {
		t.Fatalf("uncached at shed level: %d %+v, want 429/overload", code, out)
	}

	// Accounting stayed exact: two served requests, one shed, and the
	// cache hit landed in the optimized bucket like any other success.
	if r, o, sh := s.requests.Load(), s.optimized.Load(), s.shed.Load(); r != 2 || o != 2 || sh != 1 {
		t.Errorf("requests/optimized/shed = %d/%d/%d, want 2/2/1", r, o, sh)
	}
}

// TestCacheCorruptionDetected: a bit flipped in a cached program on its
// way out of memory is caught by the integrity checksum — the entry is
// evicted and recomputed, and a corrupted result is never served.
func TestCacheCorruptionDetected(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Degrade: steadyLadder,
		Chaos:   chaos.New(chaos.Config{Seed: 11, CorruptP: 1}),
	})
	var programs []string
	for i := 0; i < 3; i++ {
		code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v)", i, code, out)
		}
		programs = append(programs, out.Program)
	}
	for i, p := range programs[1:] {
		if p != programs[0] {
			t.Errorf("response %d differs from the first — corruption leaked out:\n%s\nvs\n%s",
				i+1, p, programs[0])
		}
	}
	// Every lookup after the first hit a corrupted entry: detected,
	// evicted, recomputed — never served.
	if got := s.cacheCorrupt.Load(); got != 2 {
		t.Errorf("cacheCorrupt = %d, want 2", got)
	}
	if got := s.cacheHits.Load(); got != 0 {
		t.Errorf("cache hits = %d, want 0 (all reads were corrupted)", got)
	}
	if got := s.cacheMisses.Load(); got != 3 {
		t.Errorf("cache misses = %d, want 3", got)
	}
	_, h := getHealthz(t, ts)
	if got := h["cache_corrupt"].(float64); got != 2 {
		t.Errorf("healthz cache_corrupt = %v, want 2", got)
	}
}

// TestDrainStopsMidFlightBatch is the drain-vs-wide-batch race: drain
// begins while a wide batch is mid-flight. The in-flight item finishes,
// every not-yet-dispatched item is refused explicitly (never silently
// dropped), the queue drains to exactly zero, and the outcome counters
// still balance item-for-item.
func TestDrainStopsMidFlightBatch(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1, BatchParallel: 1, Queue: 32, Timeout: time.Minute,
		Degrade: steadyLadder,
		hook:    func(optimizeRequest) { <-release },
	})

	var wide strings.Builder
	const n = 12
	for i := 0; i < n; i++ {
		wide.WriteString(strings.Replace(diamond, "func f(", "func w"+strconv.Itoa(i)+"(", 1))
		wide.WriteString("\n")
	}

	type result struct {
		code int
		out  batchResponse
	}
	done := make(chan result, 1)
	go func() {
		code, out := postBatch(t, ts, optimizeRequest{Program: wide.String()})
		done <- result{code, out}
	}()

	// The single lane has dispatched item 0 into the single worker; items
	// 1..n-1 are waiting their turn when the drain begins.
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	s.BeginDrain()
	close(release)

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("mid-flight batch: status %d (the batch was admitted; drain must not retract it)", r.code)
	}
	if len(r.out.Results) != n {
		t.Fatalf("batch returned %d results, want %d — items were silently dropped", len(r.out.Results), n)
	}
	if r.out.Results[0].Status != http.StatusOK {
		t.Errorf("the in-flight item did not complete: %+v", r.out.Results[0])
	}
	for i, res := range r.out.Results[1:] {
		if res.Status != http.StatusServiceUnavailable || res.Kind != "draining" {
			t.Errorf("undispatched item %d = %d/%q, want 503/draining", i+1, res.Status, res.Kind)
		}
		if res.RetryAfterMS <= 0 {
			t.Errorf("undispatched item %d has no retry hint", i+1)
		}
	}
	if r.out.Optimized != 1 || r.out.Failed != n-1 {
		t.Errorf("aggregates = %d optimized, %d failed, want 1/%d", r.out.Optimized, r.out.Failed, n-1)
	}

	// Accounting: the queue drained to zero with nothing in flight, the
	// refused items were re-accounted as shed, and the one processed item
	// is the only admitted request.
	waitFor(t, func() bool { return s.queued.Load() == 0 && s.inflight.Load() == 0 })
	if got := s.requests.Load(); got != 1 {
		t.Errorf("requests = %d, want 1 (refused items rolled back)", got)
	}
	if got := s.shed.Load(); got != n-1 {
		t.Errorf("shed = %d, want %d", got, n-1)
	}
	if got := s.optimized.Load(); got != 1 {
		t.Errorf("optimized = %d, want 1", got)
	}
}

// TestHealthzDegradeHygiene: the new operational fields are present and
// truthful on a fresh server, and the quarantine writability probe
// reports the states an operator needs to see.
func TestHealthzDegradeHygiene(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Quarantine: dir, Degrade: steadyLadder})
	_, h := getHealthz(t, ts)
	for field, want := range map[string]float64{
		"degrade_level":       0,
		"degrade_transitions": 0,
		"retry_after_ms":      0,
		"cache_corrupt":       0,
	} {
		got, ok := h[field]
		if !ok {
			t.Errorf("healthz missing %s", field)
			continue
		}
		if got.(float64) != want {
			t.Errorf("healthz %s = %v, want %v", field, got, want)
		}
	}
	if _, ok := h["latency_ewma_ms"]; !ok {
		t.Error("healthz missing latency_ewma_ms")
	}
	if w, ok := h["quarantine_writable"].(bool); !ok || !w {
		t.Errorf("quarantine_writable = %v, want true for %s", h["quarantine_writable"], dir)
	}

	// No quarantine directory configured: capture is off, and /healthz
	// says so instead of pretending seeds are being collected.
	_, ts2 := newTestServer(t, Config{Quarantine: "", Degrade: steadyLadder})
	_, h2 := getHealthz(t, ts2)
	if w, _ := h2["quarantine_writable"].(bool); w {
		t.Error("quarantine_writable = true with capture disabled")
	}

	// An unusable path (a path component that is a regular file) is
	// detected even when running as root, where permission bits lie.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, Config{
		Quarantine: filepath.Join(blocker, "sub"), Degrade: steadyLadder,
	})
	_, h3 := getHealthz(t, ts3)
	if w, _ := h3["quarantine_writable"].(bool); w {
		t.Error("quarantine_writable = true for a path under a regular file")
	}
}
