package lcmserver

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"lazycm/internal/vfs"
	"strings"
	"testing"
	"time"

	"lazycm/internal/textir"
)

// jobsModule is three strict-parser-clean functions, each with hoistable
// redundancy — the all-healthy streaming workload.
const jobsModule = diamond + `
func second(m, n) {
top:
  s = m * n
  t = m * n
  print s
  ret t
}

func third(q, r) {
top:
  u = q + r
  v = q + r
  ret v
}
`

// streamRecord is the union of every NDJSON record type a stream emits,
// decoded loosely for assertions. (Item and trailer records both carry a
// fell_back field of different types, so neither is declared here.)
type streamRecord struct {
	Type      string `json:"type"`
	ID        string `json:"id"`
	Functions int    `json:"functions"`
	Index     int    `json:"index"`
	Name      string `json:"name"`
	Status    int    `json:"status"`
	Program   string `json:"program"`
	Done      bool   `json:"done"`
	Completed int    `json:"completed"`
	Optimized int    `json:"optimized"`
	Error     string `json:"error"`
}

// readStream consumes one NDJSON response to its end and returns every
// record in arrival order.
func readStream(t *testing.T, body *http.Response) []streamRecord {
	t.Helper()
	defer body.Body.Close()
	var recs []streamRecord
	sc := bufio.NewScanner(body.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec streamRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("malformed stream record %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return recs
}

func postStream(t *testing.T, ts *httptest.Server, req optimizeRequest, job bool) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/optimize/stream"
	if job {
		url += "?job=1"
	}
	resp, err := ts.Client().Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// splitRecords separates a stream's records by type and sanity-checks
// the framing: exactly one meta first, exactly one trailer last.
func splitRecords(t *testing.T, recs []streamRecord) (meta streamRecord, items []streamRecord, trailer streamRecord) {
	t.Helper()
	if len(recs) < 2 || recs[0].Type != "job" || recs[len(recs)-1].Type != "trailer" {
		t.Fatalf("bad stream framing: %+v", recs)
	}
	for _, r := range recs[1 : len(recs)-1] {
		if r.Type == "item" {
			items = append(items, r)
		} else if r.Type != "heartbeat" {
			t.Fatalf("unexpected mid-stream record type %q", r.Type)
		}
	}
	return recs[0], items, recs[len(recs)-1]
}

// assembleItems joins item programs in module order — the client-side
// reconstruction whose bytes must match a single /optimize of the module.
func assembleItems(t *testing.T, items []streamRecord, n int) string {
	t.Helper()
	parts := make([]string, n)
	seen := 0
	for _, it := range items {
		if it.Index < 0 || it.Index >= n || parts[it.Index] != "" {
			t.Fatalf("bad or duplicate item index %d", it.Index)
		}
		parts[it.Index] = it.Program
		seen++
	}
	if seen != n {
		t.Fatalf("assembled %d of %d items", seen, n)
	}
	return strings.Join(parts, "\n")
}

// TestStreamTransient: a plain /optimize/stream emits one record per
// function plus a done trailer, and the assembled module is byte-
// identical to the buffered /optimize answer for the same input.
func TestStreamTransient(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, whole := postOptimize(t, ts, optimizeRequest{Program: jobsModule})
	if code != http.StatusOK {
		t.Fatalf("reference optimize: %d %+v", code, whole)
	}

	resp := postStream(t, ts, optimizeRequest{Program: jobsModule}, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	meta, items, trailer := splitRecords(t, readStream(t, resp))
	if meta.ID != "" {
		t.Errorf("transient stream advertised a job ID %q", meta.ID)
	}
	if meta.Functions != 3 || len(items) != 3 {
		t.Fatalf("functions=%d items=%d, want 3/3", meta.Functions, len(items))
	}
	if !trailer.Done || trailer.Completed != 3 || trailer.Optimized != 3 {
		t.Errorf("trailer %+v, want done with 3/3 optimized", trailer)
	}
	if got := assembleItems(t, items, 3); got != whole.Program {
		t.Errorf("assembled stream diverges from /optimize:\n got: %q\nwant: %q", got, whole.Program)
	}
	// Per-function cache: the stream's items were computed by /optimize
	// already, so every one replayed.
	if s.cacheHits.Load() != 3 {
		t.Errorf("cache hits = %d, want 3 (stream replays /optimize's per-function entries)", s.cacheHits.Load())
	}
}

// TestStreamJobIdempotent: ?job= registers a durable, content-addressed
// job. Resubmitting the same module attaches to the finished job and
// replays it — no second admission, no recompute — and the journal on
// disk carries the done marker.
func TestStreamJobIdempotent(t *testing.T) {
	jdir := t.TempDir()
	s, ts := newTestServer(t, Config{JournalDir: jdir, CacheDir: t.TempDir()})

	resp := postStream(t, ts, optimizeRequest{Program: jobsModule}, true)
	meta, items, trailer := splitRecords(t, readStream(t, resp))
	if meta.ID == "" || !strings.HasPrefix(meta.ID, "j-") {
		t.Fatalf("job stream meta ID = %q", meta.ID)
	}
	if len(items) != 3 || !trailer.Done {
		t.Fatalf("first run: %d items, done=%v", len(items), trailer.Done)
	}
	reqs, opt := s.requests.Load(), s.optimized.Load()

	hdr, recs, finished, err := readJournal(vfs.OS, filepath.Join(jdir, meta.ID+journalExt))
	if err != nil || !finished || len(recs) != 3 || hdr.ID != meta.ID {
		t.Fatalf("journal: hdr.ID=%q records=%d finished=%v err=%v", hdr.ID, len(recs), finished, err)
	}
	for _, rec := range recs {
		if rec.Key == "" || rec.Body != nil {
			t.Errorf("clean item journaled inline (key=%q body=%v), want key-only", rec.Key, rec.Body)
		}
	}

	// Idempotent resubmission: same records, same trailer, zero new work.
	resp = postStream(t, ts, optimizeRequest{Program: jobsModule}, true)
	meta2, items2, trailer2 := splitRecords(t, readStream(t, resp))
	if meta2.ID != meta.ID {
		t.Errorf("resubmission got job %q, want %q", meta2.ID, meta.ID)
	}
	if len(items2) != 3 || !trailer2.Done {
		t.Errorf("resubmission replay: %d items, done=%v", len(items2), trailer2.Done)
	}
	if s.requests.Load() != reqs || s.optimized.Load() != opt {
		t.Errorf("resubmission admitted new work: requests %d→%d optimized %d→%d",
			reqs, s.requests.Load(), opt, s.optimized.Load())
	}

	// GET /jobs/{id} serves the snapshot.
	st, snap := getJob(t, ts, meta.ID)
	if st != http.StatusOK || !snap.Done || snap.Completed != 3 {
		t.Errorf("job snapshot: status %d %+v", st, snap)
	}
	// Unknown job: authoritative 404.
	if st, _ := getJob(t, ts, "j-0000000000000000"); st != http.StatusNotFound {
		t.Errorf("unknown job answered %d, want 404", st)
	}
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobSnapshot) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("bad job snapshot: %v", err)
	}
	return resp.StatusCode, snap
}

// TestBatchJobRoundTrip: POST /optimize/batch?job= answers the batch
// shape plus job_id, waits for completion, and resubmission replays
// without admitting again.
func TestBatchJobRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{JournalDir: t.TempDir(), CacheDir: t.TempDir()})
	postJobBatch := func() (int, batchResponse) {
		body, _ := json.Marshal(optimizeRequest{Program: jobsModule})
		resp, err := ts.Client().Post(ts.URL+"/optimize/batch?job=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code, out := postJobBatch()
	if code != http.StatusOK || out.JobID == "" || out.Optimized != 3 || out.Pending != 0 {
		t.Fatalf("batch job: %d %+v", code, out)
	}
	reqs := s.requests.Load()
	code2, out2 := postJobBatch()
	if code2 != http.StatusOK || out2.JobID != out.JobID || out2.Optimized != 3 {
		t.Fatalf("batch job replay: %d %+v", code2, out2)
	}
	if s.requests.Load() != reqs {
		t.Errorf("batch job resubmission admitted new work: %d → %d", reqs, s.requests.Load())
	}
	for i, r := range out.Results {
		if r.Program != out2.Results[i].Program {
			t.Errorf("replayed item %d diverges", i)
		}
	}
}

// TestJobRebootAttachResolvesResults: a finished journaled job boots
// with key-only records, and a POST attach (stream or batch ?job=) must
// resolve them from the durable cache before answering — not reply with
// a done trailer carrying zero items, which is what a client that lost
// its response and resubmitted after a server restart would otherwise
// get. The GET paths already resolve; this pins the POST paths.
func TestJobRebootAttachResolvesResults(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	cfg := Config{Workers: 2, Queue: 16, JournalDir: jdir, CacheDir: cdir, Quarantine: ""}
	a := NewServer(cfg)
	ats := httptest.NewServer(a.Handler())
	resp := postStream(t, ats, optimizeRequest{Program: jobsModule}, true)
	meta, items, _ := splitRecords(t, readStream(t, resp))
	want := assembleItems(t, items, 3)
	ats.Close()
	a.Close()

	b := NewServer(cfg)
	bts := httptest.NewServer(b.Handler())
	defer func() {
		bts.Close()
		b.Close()
	}()

	// Stream attach: every completed item replays, trailer counts them.
	resp = postStream(t, bts, optimizeRequest{Program: jobsModule}, true)
	meta2, items2, trailer2 := splitRecords(t, readStream(t, resp))
	if meta2.ID != meta.ID {
		t.Fatalf("reboot attach got job %q, want %q", meta2.ID, meta.ID)
	}
	if len(items2) != 3 || !trailer2.Done || trailer2.Completed != 3 {
		t.Fatalf("reboot stream attach: %d items, done=%v completed=%d, want 3/true/3",
			len(items2), trailer2.Done, trailer2.Completed)
	}
	if got := assembleItems(t, items2, 3); got != want {
		t.Errorf("reboot replay diverges:\n got: %q\nwant: %q", got, want)
	}

	// Batch attach: full results, nothing pending, nothing recomputed.
	body, _ := json.Marshal(optimizeRequest{Program: jobsModule})
	bresp, err := bts.Client().Post(bts.URL+"/optimize/batch?job=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if bresp.StatusCode != http.StatusOK || out.Pending != 0 || out.Optimized != 3 || len(out.Results) != 3 {
		t.Fatalf("reboot batch attach: %d %+v", bresp.StatusCode, out)
	}
	if b.requests.Load() != 0 {
		t.Errorf("reboot attach admitted %d requests, want 0 (everything from the journal + cache)", b.requests.Load())
	}
}

// TestJobBootResumeNoRecompute is the crash-resume kernel: a journaled
// job is cut short (two of three functions complete), the process goes
// away, and a new server booted over the same journal and cache
// directories finishes the job — serving the completed functions from
// the durable cache (cache hits, zero recompute) and computing only the
// pending one. Admission sums across the two generations and the final
// module is byte-identical to an uninterrupted run.
func TestJobBootResumeNoRecompute(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	release := make(chan struct{})
	cfg := func(hooked bool) Config {
		c := Config{Workers: 2, Queue: 16, JournalDir: jdir, CacheDir: cdir, Quarantine: ""}
		if hooked {
			c.hook = func(req optimizeRequest) {
				if strings.Contains(req.Program, "func third(") {
					<-release
				}
			}
		}
		return c
	}

	// Reference: the whole module on a pristine node.
	_, refTS := newTestServer(t, Config{Quarantine: ""})
	code, want := postOptimize(t, refTS, optimizeRequest{Program: jobsModule})
	if code != http.StatusOK {
		t.Fatalf("reference: %d", code)
	}

	// Generation 1: admit the job, let two items finish, then go down
	// mid-batch. The third function's worker is pinned in the test hook,
	// so it provably cannot complete in this generation.
	a := NewServer(cfg(true))
	ats := httptest.NewServer(a.Handler())
	resp := postStream(t, ats, optimizeRequest{Program: jobsModule}, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var jobID string
	emitted := 0
	for emitted < 2 && sc.Scan() {
		var rec streamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Type {
		case "job":
			jobID = rec.ID
		case "item":
			emitted++
		}
	}
	if jobID == "" || emitted != 2 {
		t.Fatalf("saw job=%q emitted=%d before crash", jobID, emitted)
	}
	resp.Body.Close()

	// Crash: Close cancels the job context first; the pinned worker is
	// released into a dead context, so its item is abandoned (504), left
	// out of the journal, and stays pending.
	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	waitFor(t, func() bool { return a.jobsCtx.Err() != nil })
	close(release)
	<-closed
	ats.Close()

	ast := a.Stats()
	if ast.Requests != 3 {
		t.Errorf("gen1 admitted %d, want 3", ast.Requests)
	}
	if sum := ast.Optimized + ast.FellBack + ast.Canceled + ast.Invalid + ast.Panics; sum != ast.Requests {
		t.Errorf("gen1 outcome sum %d != requests %d", sum, ast.Requests)
	}
	hdr, recs, finished, err := readJournal(vfs.OS, filepath.Join(jdir, jobID+journalExt))
	if err != nil || finished {
		t.Fatalf("gen1 journal: finished=%v err=%v", finished, err)
	}
	if len(recs) != 2 {
		t.Fatalf("gen1 journaled %d items, want exactly the 2 completed ones", len(recs))
	}
	if len(hdr.Funcs) != 3 {
		t.Fatalf("journal header names %d functions, want 3", len(hdr.Funcs))
	}

	// Generation 2: boot over the same directories. The job re-admits
	// itself, adopts the two journaled completions from the durable cache
	// and computes only the third function.
	b := NewServer(cfg(false))
	bts := httptest.NewServer(b.Handler())
	defer func() {
		bts.Close()
		b.Close()
	}()
	js := b.jobStore.get(jobID)
	if js == nil {
		t.Fatal("gen2 did not re-admit the journaled job")
	}
	select {
	case <-js.doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("resumed job did not finish")
	}

	st := b.Stats()
	if st.JobsResumed != 1 {
		t.Errorf("gen2 jobs_resumed = %d, want 1", st.JobsResumed)
	}
	if st.CacheHits != 2 {
		t.Errorf("gen2 cache hits = %d, want 2 (both completed functions adopted, not recomputed)", st.CacheHits)
	}
	if st.CacheMisses != 1 || st.Optimized != 1 {
		t.Errorf("gen2 misses/optimized = %d/%d, want 1/1 (only the pending function computes)", st.CacheMisses, st.Optimized)
	}
	// Admission sums across generations: gen1 admitted all three (one
	// ended canceled and stayed pending), gen2 re-admitted exactly the
	// pending one. No item was admitted-and-completed twice.
	if st.Requests != 1 {
		t.Errorf("gen2 admitted %d, want 1", st.Requests)
	}
	if total := ast.Optimized + st.Optimized; total != 3 {
		t.Errorf("functions computed across generations = %d, want 3 (each exactly once)", total)
	}

	// The resumed stream replays everything and the assembled module is
	// byte-identical to the uninterrupted reference.
	sresp, err := bts.Client().Get(bts.URL + "/jobs/" + jobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("resume stream status %d", sresp.StatusCode)
	}
	_, items, trailer := splitRecords(t, readStream(t, sresp))
	if !trailer.Done {
		t.Errorf("resume trailer not done: %+v", trailer)
	}
	if got := assembleItems(t, items, 3); got != want.Program {
		t.Errorf("resumed module diverges from uninterrupted run:\n got: %q\nwant: %q", got, want.Program)
	}
}

// TestJobBootExpiryAndSweep: boot removes journals past their TTL and
// undecodable ones, counts them, and sweeps atomicio's *.tmp partials.
func TestJobBootExpiryAndSweep(t *testing.T) {
	jdir := t.TempDir()
	old := jobHeader{
		Type: "header", ID: "j-aaaaaaaaaaaaaaaa", Created: time.Now().Add(-2 * time.Hour),
		Funcs: []jobUnit{{Name: "f", Src: diamond}},
	}
	b, _ := json.Marshal(old)
	if err := os.WriteFile(filepath.Join(jdir, old.ID+journalExt), append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jdir, "j-bbbbbbbbbbbbbbbb"+journalExt), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(jdir, "j-cccccccccccccccc"+journalExt+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{JournalDir: jdir, JobTTL: time.Hour})
	if got := s.jobsExpired.Load(); got != 2 {
		t.Errorf("jobs_expired = %d, want 2 (one stale, one undecodable)", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("tmp partial survived boot: %v", err)
	}
	ents, err := os.ReadDir(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("journal dir not cleaned at boot: %d entries remain", len(ents))
	}
	if st, _ := getJob(t, ts, old.ID); st != http.StatusNotFound {
		t.Errorf("expired job answered %d, want 404", st)
	}
}

// TestStreamClientDisconnect: a consumer that vanishes mid-stream must
// not hurt the job — the server notices (stream_clients returns to
// zero), the persisted job runs to completion, the journal stays
// consistent, nothing is refunded or counted twice, and a reconnect
// replays the full result set.
func TestStreamClientDisconnect(t *testing.T) {
	jdir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers: 1, JournalDir: jdir, CacheDir: t.TempDir(),
		hook: func(optimizeRequest) { time.Sleep(20 * time.Millisecond) },
	})

	body, _ := json.Marshal(optimizeRequest{Program: jobsModule})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/optimize/stream?job=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var jobID string
	for sc.Scan() {
		var rec streamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == "job" {
			jobID = rec.ID
		}
		if rec.Type == "item" {
			break // one item seen: hang up mid-stream
		}
	}
	cancel()
	resp.Body.Close()

	js := s.jobStore.get(jobID)
	if js == nil {
		t.Fatal("job not registered")
	}
	select {
	case <-js.doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish after its consumer left")
	}
	waitFor(t, func() bool { return s.streamClients.Load() == 0 })

	// Accounting is exact: the disconnect refunded nothing and double-
	// counted nothing.
	if r, o := s.requests.Load(), s.optimized.Load(); r != 3 || o != 3 {
		t.Errorf("requests/optimized = %d/%d, want 3/3", r, o)
	}
	_, recs, finished, err := readJournal(vfs.OS, filepath.Join(jdir, jobID+journalExt))
	if err != nil || !finished || len(recs) != 3 {
		t.Fatalf("journal after disconnect: records=%d finished=%v err=%v", len(recs), finished, err)
	}

	// Reconnect: the full result set replays.
	sresp, err := ts.Client().Get(ts.URL + "/jobs/" + jobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	_, items, trailer := splitRecords(t, readStream(t, sresp))
	if len(items) != 3 || !trailer.Done {
		t.Errorf("reconnect replayed %d items, done=%v; want 3/true", len(items), trailer.Done)
	}
}

// TestStreamDegradeContract: the new endpoints obey the same ladder and
// rejection contract as batches — level 2+ sheds stream submissions with
// 429 + Retry-After, and a draining server answers 503 + Retry-After.
func TestStreamDegradeContract(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Degrade: climbingLadder, JournalDir: t.TempDir()})
	getHealthz(t, ts) // observe #1 → level 1

	// The POST below observes (#2 → level 2) and must shed.
	resp := postStream(t, ts, optimizeRequest{Program: jobsModule}, true)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stream at level 2: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("stream shed without a Retry-After header")
	}
	var out optimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "overload" || out.RetryAfterMS <= 0 || out.DegradeLevel < 2 {
		t.Errorf("stream shed body %+v, want overload kind with retry_after_ms and level ≥ 2", out)
	}
	if s.shed.Load() != 3 {
		t.Errorf("shed = %d, want 3 (item-exact, one per function)", s.shed.Load())
	}

	// Batch jobs shed identically (this observes #3 → level 3).
	body, _ := json.Marshal(optimizeRequest{Program: jobsModule})
	bresp, err := ts.Client().Post(ts.URL+"/optimize/batch?job=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusTooManyRequests || bresp.Header.Get("Retry-After") == "" {
		t.Errorf("batch job at level 3: status %d Retry-After %q", bresp.StatusCode, bresp.Header.Get("Retry-After"))
	}

	// Draining beats everything: 503 with the same hint contract.
	s.BeginDrain()
	dresp := postStream(t, ts, optimizeRequest{Program: jobsModule}, false)
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable || dresp.Header.Get("Retry-After") == "" {
		t.Errorf("stream while draining: status %d Retry-After %q, want 503 with hint",
			dresp.StatusCode, dresp.Header.Get("Retry-After"))
	}
}

// TestJobStreamWithholdsRunnerWhenShedding: at level 2+ a resume stream
// still replays what is already computed — replay costs no pipeline work
// — but the idle job's runner is not restarted; the trailer's done:false
// tells the client to come back.
func TestJobStreamWithholdsRunnerWhenShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Degrade: climbingLadder, JournalDir: t.TempDir()})
	mod, err := textir.ParseModule(jobsModule)
	if err != nil {
		t.Fatal(err)
	}
	units := s.unitsFor(optimizeRequest{}, mod, 0, false)
	hdr := jobHeader{Type: "header", Created: time.Now(), Funcs: units}
	hdr.ID = deriveJobID(hdr)
	js, created := s.createJob(hdr)
	if !created {
		t.Fatal("job not created")
	}
	js.complete(0, outcome{status: http.StatusOK, body: optimizeResponse{Program: units[0].Src, Functions: 1}}, true)

	getHealthz(t, ts) // observe #1 → level 1; the GET below observes #2 → level 2
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + hdr.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume stream at level 2: status %d, want 200 (replay is free)", resp.StatusCode)
	}
	_, items, trailer := splitRecords(t, readStream(t, resp))
	if len(items) != 1 || trailer.Done {
		t.Errorf("replay at level 2: %d items done=%v, want 1/false", len(items), trailer.Done)
	}
	js.mu.Lock()
	running := js.running
	js.mu.Unlock()
	if running {
		t.Error("shedding level restarted the job runner")
	}
	if s.requests.Load() != 0 {
		t.Errorf("shedding-level replay admitted %d items", s.requests.Load())
	}
}

// TestFunctionCacheModuleEdit is the re-keying payoff: after one module
// optimization, editing a single function and resubmitting costs exactly
// one pipeline run — every untouched function replays from its
// per-function cache entry.
func TestFunctionCacheModuleEdit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, first := postOptimize(t, ts, optimizeRequest{Program: jobsModule})
	if code != http.StatusOK {
		t.Fatalf("first optimize: %d", code)
	}
	if h, m := s.cacheHits.Load(), s.cacheMisses.Load(); h != 0 || m != 3 {
		t.Fatalf("cold module: hits/misses = %d/%d, want 0/3", h, m)
	}

	edited := strings.Replace(jobsModule, "z = a + b", "z = a - b", 1) // touches only f
	code, second := postOptimize(t, ts, optimizeRequest{Program: edited})
	if code != http.StatusOK {
		t.Fatalf("edited optimize: %d", code)
	}
	if h, m := s.cacheHits.Load(), s.cacheMisses.Load(); h != 2 || m != 4 {
		t.Errorf("one-function edit: hits/misses = %d/%d, want 2/4 (N−1 replay, 1 compute)", h, m)
	}
	// The unchanged functions' output is byte-identical between runs.
	firstFns, err := textir.Parse(first.Program)
	if err != nil {
		t.Fatal(err)
	}
	secondFns, err := textir.Parse(second.Program)
	if err != nil {
		t.Fatal(err)
	}
	if len(firstFns) != 3 || len(secondFns) != 3 {
		t.Fatalf("parsed %d/%d functions", len(firstFns), len(secondFns))
	}
	for i := 1; i < 3; i++ {
		if firstFns[i].String() != secondFns[i].String() {
			t.Errorf("untouched function %q changed across the edit", firstFns[i].Name)
		}
	}
}
