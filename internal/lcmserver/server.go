// Package lcmserver is the resilient optimization service behind
// cmd/lcmd: a bounded worker pool with admission control over the
// hardened pass pipeline, a degradation ladder, a content-addressed
// result cache, and quarantine capture of faulting inputs. It lives as
// a library (rather than inside package main) so a fleet of servers can
// be embedded in-process — cmd/lcmgate's fleet soak runs N real
// backends this way and audits their accounting after backend-level
// chaos.
package lcmserver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/atomicio"
	"lazycm/internal/cachestore"
	"lazycm/internal/chaos"
	"lazycm/internal/dataflow"
	"lazycm/internal/fleet"
	"lazycm/internal/ir"
	"lazycm/internal/overload"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
	"lazycm/internal/triage"
	"lazycm/internal/vfs"
)

// Config tunes the optimization service.
type Config struct {
	// Workers is the size of the optimization worker pool; 0 means
	// GOMAXPROCS.
	Workers int
	// Queue is the number of requests that may wait for a worker beyond
	// the ones in flight; 0 means 4×Workers. When the queue is full the
	// service sheds load with 429 + Retry-After instead of queueing
	// unboundedly.
	Queue int
	// Timeout is the per-request budget applied when the client does not
	// ask for one; 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxTimeout caps client-requested budgets (timeout_ms), so one
	// client cannot park a worker indefinitely; 0 means 4×Timeout.
	MaxTimeout time.Duration
	// Fuel is the default node-visit budget per data-flow fixpoint;
	// 0 means unlimited. A client may lower effort further per request.
	Fuel int
	// Verify re-checks every pass output against its input on random
	// interpreted runs (requests may also opt in individually).
	Verify bool
	// Quarantine is the directory where inputs that fault or fall back
	// are captured as regression seeds; "" disables capture.
	Quarantine string
	// BatchParallel bounds how many items of one /optimize/batch request
	// are dispatched to the worker pool concurrently; 0 means Workers.
	// 1 recovers strictly serial batch processing.
	BatchParallel int
	// CacheSize is the capacity of the content-addressed result cache:
	// identical (program, directives) pairs replay their clean outcome
	// without re-running the pipeline. 0 means DefaultCacheSize; negative
	// disables caching.
	CacheSize int
	// CacheDir, when non-empty, adds a durable tier behind the result
	// cache: clean outcomes are written through to this directory as
	// self-verifying entries (internal/cachestore) and re-indexed on the
	// next boot, so a restarted server answers its old hits without
	// recomputing. Requires caching enabled; "" keeps the cache
	// memory-only.
	CacheDir string
	// CacheBytes bounds the durable tier's disk footprint with LRU
	// eviction; 0 means cachestore.DefaultMaxBytes.
	CacheBytes int64
	// Peers are other fleet members' base URLs for the shared cache
	// tier: on a local miss the server asks the cache key's ring-owner
	// neighbors (GET /cache/<key>) before running the pipeline. Strictly
	// fail-open — any peer error, timeout, open breaker, or integrity
	// mismatch falls back to local compute. Empty disables peer fill.
	Peers []string
	// PeerTimeout bounds one peer cache fetch; 0 means
	// DefaultPeerTimeout. Kept tight: a peer consult must cost a small
	// fraction of what the pipeline would.
	PeerTimeout time.Duration
	// PeerBreaker tunes the per-peer circuit breakers that take dead or
	// flaky peers out of the consult path.
	PeerBreaker fleet.BreakerConfig
	// Degrade tunes the degradation ladder's thresholds and hysteresis;
	// the zero value takes overload's defaults.
	Degrade overload.Config
	// TargetLatency is what the pressure gauge normalizes smoothed
	// request latency against; 0 means Timeout/4. When average latency
	// approaches the request budget, the service is drowning even if the
	// queue looks short.
	TargetLatency time.Duration
	// DegradedFuel caps the per-fixpoint fuel budget while the ladder is
	// at level 1 or above, trading optimization effort for throughput.
	// 0 means DefaultDegradedFuel; negative disables the shrink.
	DegradedFuel int
	// JournalDir, when non-empty, makes ?job= batch/stream work durable:
	// each job writes a write-ahead journal here (header + per-function
	// completion records, via internal/atomicio) and a restarted server
	// re-admits unfinished jobs, serving already-completed functions from
	// the durable cache without recomputation. "" keeps jobs in-memory
	// only (they still survive client disconnects, not process death).
	JournalDir string
	// JobTTL is how long a journaled job may age before boot expires it;
	// 0 means DefaultJobTTL.
	JobTTL time.Duration
	// StreamHeartbeat is the keep-alive cadence on NDJSON streams while
	// no item completes; 0 means DefaultStreamHeartbeat.
	StreamHeartbeat time.Duration
	// Chaos, when non-nil, injects service-level faults (latency, worker
	// stalls, induced panics, buggy passes, cache corruption) into the
	// request path. Test-only: never set it on a production server.
	Chaos *chaos.Injector
	// FS is the filesystem every durable path — disk cache tier, job
	// journal, quarantine capture — goes through; nil means the real
	// OS filesystem (vfs.OS). Tests inject a vfs.FaultFS here to make
	// the storage lie underneath a live server.
	FS vfs.FS
	// IOTimeout bounds every single blocking filesystem operation on
	// the durable paths (vfs.WithTimeout): a stalled fsync returns an
	// error to its caller instead of wedging a request goroutine. 0
	// disables the deadline (production filesystems are trusted not to
	// stall forever; soaks always set it).
	IOTimeout time.Duration
	// DiskHealth tunes the self-quarantining disk tier: sustained
	// filesystem faults disable the disk cache and mark the journal
	// degraded until a background probe sees the disk healthy again.
	// The zero value takes the documented defaults.
	DiskHealth DiskHealthConfig

	// hook, when non-nil, runs on the worker goroutine before each job,
	// inside the per-request panic guard; tests use it to hold workers
	// busy deterministically or to panic on a chosen input.
	hook func(optimizeRequest)
}

// DefaultTimeout is the per-request budget when neither the server
// configuration nor the client names one.
const DefaultTimeout = 5 * time.Second

// maxBody bounds request bodies; a program larger than this is rejected
// before any parsing work.
const maxBody = 4 << 20

// DefaultCacheSize is the result-cache capacity when Config.CacheSize is
// unset.
const DefaultCacheSize = 128

// DefaultPeerTimeout is the per-peer cache-fetch budget when
// Config.PeerTimeout is unset.
const DefaultPeerTimeout = 150 * time.Millisecond

// DefaultDegradedFuel is the per-fixpoint fuel cap applied at degrade
// level 1+ when Config.DegradedFuel is unset: generous enough that
// ordinary programs still optimize fully, tight enough that a
// pathological fixpoint cannot monopolize a worker while the service is
// under pressure.
const DefaultDegradedFuel = 1 << 16

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 4 * c.Timeout
	}
	if c.BatchParallel <= 0 {
		c.BatchParallel = c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = c.Timeout / 4
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.DegradedFuel == 0 {
		c.DegradedFuel = DefaultDegradedFuel
	}
	return c
}

// Server is a resilient optimization service over the hardened pipeline:
// a bounded worker pool with admission control, per-request deadlines
// enforced through the context threaded into every fixpoint, per-request
// panic isolation, and quarantine capture of any input that faults or
// falls back.
type Server struct {
	cfg    Config
	jobs   chan *job
	wg     sync.WaitGroup
	start  time.Time
	cache  *resultCache // nil when caching is disabled
	peers  *peerGroup   // nil when peer fill is disabled
	ladder *overload.Ladder
	gauge  *overload.Gauge

	// fs is the observed filesystem every durable path uses: the
	// configured FS (or vfs.OS), deadline-bounded by IOTimeout, with
	// every outcome reported to diskHealth. rawFS is the same stack
	// minus the observer — the background probe uses it so probe
	// traffic never pollutes the live fault window.
	fs         vfs.FS
	rawFS      vfs.FS
	diskHealth *diskHealth
	probeWG    sync.WaitGroup

	// jobStore registers resumable batch/stream jobs; jobsCtx parents
	// every persisted job runner and jobsWG tracks them, so Close can
	// stop runners before the worker channel closes.
	jobStore   *jobStore
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
	jobsWG     sync.WaitGroup

	draining    atomic.Bool
	queued      atomic.Int64
	inflight    atomic.Int64
	lastRetryMS atomic.Int64 // last Retry-After hint issued, for /healthz

	requests     atomic.Int64 // admitted work items (a batch item counts like a request)
	optimized    atomic.Int64 // clean 200s
	fellBack     atomic.Int64 // 200s that shipped a fallback
	canceled     atomic.Int64 // deadline/cancel results
	invalid      atomic.Int64 // parse or validation rejections
	shed         atomic.Int64 // work items shed by admission control
	panics       atomic.Int64 // contained pass/driver panics
	quarantined  atomic.Int64 // distinct crashers captured (duplicates collapse)
	cacheHits    atomic.Int64 // results replayed from the content cache (memory or disk)
	cacheMisses  atomic.Int64 // lookups that ran the pipeline
	cacheCorrupt atomic.Int64 // in-memory cache reads failing the integrity checksum
	peerHits     atomic.Int64 // local misses served by a fleet peer's cache
	peerMisses   atomic.Int64 // peer consults that found nothing usable
	peerServed   atomic.Int64 // GET /cache hits served to fleet peers

	jobsActive    atomic.Int64 // gauge: job runner generations in flight
	jobsResumed   atomic.Int64 // unfinished journaled jobs re-admitted at boot
	jobsExpired   atomic.Int64 // journals expired (TTL) or dropped (undecodable) at boot
	streamClients atomic.Int64 // gauge: NDJSON followers currently connected
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg, jobs: make(chan *job, cfg.Queue), start: time.Now(),
		cache:      newResultCache(cfg.CacheSize),
		ladder:     overload.NewLadder(cfg.Degrade),
		gauge:      overload.NewGauge(cfg.TargetLatency, 0),
		diskHealth: newDiskHealth(cfg.DiskHealth),
	}
	// The durable-path filesystem stack, bottom to top: the configured
	// FS (production: the real OS; soaks: a FaultFS), an IO deadline so
	// no single stalled operation wedges a goroutine, and the health
	// observer feeding the self-quarantining tracker.
	base := cfg.FS
	if base == nil {
		base = vfs.OS
	}
	s.rawFS = vfs.WithTimeout(base, cfg.IOTimeout)
	s.fs = vfs.Observe(s.rawFS, s.diskHealth.record)
	if cfg.Chaos != nil && s.cache != nil {
		// Chaos corrupts cached programs on their way out; the cache's
		// integrity checksum is what must catch it.
		s.cache.corrupt = cfg.Chaos.CorruptRead
	}
	if cfg.CacheDir != "" && s.cache != nil {
		// The durable tier is an accelerator, never a dependency: if the
		// directory cannot be opened the server runs memory-only rather
		// than failing to start.
		if store, err := cachestore.OpenFS(s.fs, cfg.CacheDir, cfg.CacheBytes); err == nil {
			s.cache.disk = store
			// While the health tracker has the tier quarantined, the
			// cache skips straight past disk to peers/compute.
			s.cache.diskGate = func() bool { return !s.diskHealth.Disabled() }
		}
	}
	s.peers = newPeerGroup(cfg)
	if cfg.Quarantine != "" {
		// A process killed mid-capture leaves *.tmp partials, never a
		// partial .ir; sweep them before the first new capture.
		atomicio.SweepTmpFS(s.fs, cfg.Quarantine)
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	s.jobStore = newJobStore(cfg.JournalDir, cfg.JobTTL)
	s.jobStore.fs = s.fs
	resumable := s.bootJobs()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	// Re-admit unfinished journaled jobs only once the workers exist:
	// their completed functions replay from the durable cache, the rest
	// recompute, and their clients reconnect by job ID whenever they like.
	for _, js := range resumable {
		s.jobsResumed.Add(1)
		s.ensureRunner(js)
	}
	if s.probeDir() != "" {
		// Background recovery probe for the quarantined disk tier.
		s.probeWG.Add(1)
		go s.diskProbeLoop()
	}
	return s
}

// Handler returns the HTTP surface: POST /optimize, POST /optimize/batch,
// POST /optimize/stream, GET /jobs/{id}[/stream], GET /healthz and
// GET /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /optimize/batch", s.handleBatch)
	mux.HandleFunc("POST /optimize/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// BeginDrain flips the server into draining mode: new requests are
// rejected with 503 + Retry-After while in-flight work completes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the job runners, then the worker pool. It must be called
// only after every HTTP handler has returned (http.Server.Shutdown or
// httptest.Server.Close), since handlers enqueue into the pool. Runner
// goroutines also enqueue, so they are stopped and drained strictly
// before the channel closes; a persisted job cut short here stays
// journaled and resumes on the next boot.
func (s *Server) Close() {
	s.jobsCancel()
	s.jobsWG.Wait()
	s.probeWG.Wait()
	close(s.jobs)
	s.wg.Wait()
}

// optimizeRequest is the JSON body of POST /optimize.
type optimizeRequest struct {
	// Program is the textual-IR source (one or more functions).
	Program string `json:"program"`
	// Mode is the transformation to apply (lcm, alcm, bcm, mr, gcse, sr,
	// opt); empty means lcm.
	Mode string `json:"mode,omitempty"`
	// Fuel overrides the server's default node-visit budget per fixpoint
	// when positive.
	Fuel int `json:"fuel,omitempty"`
	// TimeoutMS is the client's budget for this request in milliseconds;
	// it is capped by the server's MaxTimeout. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify opts this request into behavioural re-verification.
	Verify bool `json:"verify,omitempty"`
	// Canonical identifies commutated commutative expressions.
	Canonical bool `json:"canonical,omitempty"`
}

// optimizeResponse is the JSON body of every /optimize outcome. On
// success Program holds the optimized source; on fallback or cancellation
// it holds the last-known-good source (ultimately the validated input) —
// never a partial rewrite.
type optimizeResponse struct {
	Program     string   `json:"program,omitempty"`
	Functions   int      `json:"functions,omitempty"`
	Applied     []string `json:"applied,omitempty"`
	FellBack    bool     `json:"fell_back,omitempty"`
	Canceled    bool     `json:"canceled,omitempty"`
	Diagnostics []string `json:"diagnostics,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Kind classifies failures: "parse", "invalid", "mode", "deadline",
	// "panic", "overload", "draining", "journal_degraded".
	Kind        string `json:"kind,omitempty"`
	Quarantined string `json:"quarantined,omitempty"`
	// JournalDegraded marks a 503 caused by the disk tier being
	// quarantined under storage faults: the request itself is fine and
	// an identical non-persisted submission would be served, but a new
	// ?job= cannot be made durable right now. Clients should resubmit
	// (still with ?job=) after RetryAfterMS.
	JournalDegraded bool `json:"journal_degraded,omitempty"`
	// DegradeLevel is the ladder level the request was handled under
	// (0 = full service, omitted).
	DegradeLevel int `json:"degrade_level,omitempty"`
	// RetryAfterMS is the millisecond-precise form of the Retry-After
	// header on 429/503 rejections; clients should prefer it over the
	// whole-second header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	ElapsedMS    int64 `json:"elapsed_ms"`
}

// outcome pairs an HTTP status with its JSON body.
type outcome struct {
	status int
	body   optimizeResponse
}

// job is one admitted request waiting for (or being processed by) a
// worker. done is buffered so a worker can always complete a job even
// when the handler has already given up on its deadline — that is what
// keeps cancellation leak-free.
type job struct {
	ctx   context.Context
	req   optimizeRequest
	done  chan outcome
	start time.Time
	// level is the degradation level the request was admitted under;
	// fuel and verify are the effort options already resolved for that
	// level, so the worker, the cache key and the quarantine directives
	// all agree on what actually ran.
	level  overload.Level
	fuel   int
	verify bool
}

// observe feeds the ladder one pressure sample built from the live
// gauges and returns the (possibly updated) degradation level. Every
// admission decision and every /healthz probe observes, so the ladder
// keeps moving — up under pressure, back down as the queue drains —
// without a dedicated sampling goroutine.
func (s *Server) observe() overload.Level {
	return s.ladder.Observe(overload.Sample{
		QueueFrac:    float64(s.queued.Load()) / float64(s.cfg.Queue),
		InflightFrac: float64(s.inflight.Load()) / float64(s.cfg.Workers),
		MissRate:     s.gauge.MissRate(),
		LatencyFrac:  s.gauge.LatencyFrac(),
	})
}

// retryAfterMS computes the load-aware Retry-After hint for one shed
// request: longer when the queue is deeper or the ladder higher, spread
// by deterministic per-request jitter (seeded from the request hash,
// never the clock) so subsumed clients do not retry in lockstep. The
// last issued hint is kept for /healthz.
func (s *Server) retryAfterMS(lvl overload.Level, seed uint64) int64 {
	queueFrac := float64(s.queued.Load()) / float64(s.cfg.Queue)
	ms := overload.RetryAfter(lvl, queueFrac, seed).Milliseconds()
	s.lastRetryMS.Store(ms)
	return ms
}

// reject writes a load-control response. Every rejection a client can
// cure by retrying — shed load (429) and draining (503) — carries the
// same Retry-After contract, so retry loops need exactly one code path:
// the header in whole seconds (rounded up, per HTTP), the JSON body in
// milliseconds.
func (s *Server) reject(w http.ResponseWriter, status int, kind, msg string, start time.Time, lvl overload.Level, seed uint64) {
	ms := s.retryAfterMS(lvl, seed)
	w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
	writeJSON(w, status, optimizeResponse{
		Error: msg, Kind: kind, DegradeLevel: int(lvl), RetryAfterMS: ms, ElapsedMS: msSince(start),
	})
}

// requestSeed derives the deterministic jitter seed from the request
// content.
func requestSeed(req optimizeRequest) uint64 {
	return overload.Seed(req.Program, req.Mode)
}

// decodeOptimize reads and vets the shared request shape of /optimize and
// /optimize/batch: body size cap, JSON decode, mode defaulting and
// validation. It writes the 400 itself and reports false on failure.
func (s *Server) decodeOptimize(w http.ResponseWriter, r *http.Request, start time.Time) (optimizeRequest, bool) {
	var req optimizeRequest
	body := http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: fmt.Sprintf("bad request body: %v", err), Kind: "parse", ElapsedMS: msSince(start),
		})
		return req, false
	}
	if req.Mode == "" {
		req.Mode = "lcm"
	}
	if _, ok := pipeline.ForMode(req.Mode); !ok {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: fmt.Sprintf("unknown mode %q (valid: %s)", req.Mode, strings.Join(pipeline.ModeNames(), ", ")),
			Kind:  "mode", ElapsedMS: msSince(start),
		})
		return req, false
	}
	return req, true
}

// budgetFor resolves the request's wall-clock budget: the server default
// unless the client asks for less; client requests are capped so no
// request parks a worker beyond MaxTimeout.
func (s *Server) budgetFor(req optimizeRequest) time.Duration {
	budget := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return min(budget, s.cfg.MaxTimeout)
}

// admit atomically reserves n queue slots, or none at all when fewer
// than n are free. Single requests and batches go through the same
// reservation, so a batch item is accounted exactly like a request and a
// batch is admitted in full or shed in full — it can never wedge half
// its functions into the queue. A successful reservation guarantees the
// subsequent channel sends cannot block: jobs resident in the channel
// never exceed the reserved count, which never exceeds the capacity.
func (s *Server) admit(n int64) bool {
	for {
		q := s.queued.Load()
		if q+n > int64(s.cfg.Queue) {
			return false
		}
		if s.queued.CompareAndSwap(q, q+n) {
			s.requests.Add(n)
			return true
		}
	}
}

// optionsFor resolves the effort options a request runs under at the
// given degradation level. Level 1+ turns the behavioural verify
// battery off and shrinks the fuel budget — both trade effort only:
// verification is a re-check of an already-validated result, and fuel
// decides whether a result is produced, never which result, so degraded
// service can reduce work without ever changing an answer.
func (s *Server) optionsFor(req optimizeRequest, lvl overload.Level) (fuel int, verify bool) {
	fuel = s.effectiveFuel(req)
	verify = s.cfg.Verify || req.Verify
	if lvl >= overload.LevelNoVerify {
		verify = false
		if df := s.cfg.DegradedFuel; df > 0 && (fuel <= 0 || fuel > df) {
			fuel = df
		}
	}
	return fuel, verify
}

// probeCache serves a request straight from the result cache without
// touching the admission queue — the degraded-mode path that keeps
// popular inputs answered even while new work sheds. The cache is
// function-granular, so the probe parses the program (cheap next to the
// pipeline) and answers only when every function hits; a partial hit is
// a miss and counts nothing, keeping the hit counters exact. A full hit
// is accounted like an admitted, optimized request so the outcome
// counters keep balancing.
func (s *Server) probeCache(req optimizeRequest, fuel int, verify bool) (outcome, bool) {
	if s.cache == nil {
		return outcome{}, false
	}
	fns, err := textir.Parse(req.Program)
	if err != nil || len(fns) == 0 {
		return outcome{}, false
	}
	resp := optimizeResponse{Functions: len(fns)}
	parts := make([]string, 0, len(fns))
	for _, f := range fns {
		out, ok, corrupted := s.cache.get(fnCacheKey(req, f.String(), fuel, verify))
		if corrupted {
			s.cacheCorrupt.Add(1)
		}
		if !ok {
			return outcome{}, false
		}
		parts = append(parts, out.body.Program)
		resp.Applied = append(resp.Applied, out.body.Applied...)
	}
	s.cacheHits.Add(int64(len(fns)))
	s.requests.Add(1)
	s.optimized.Add(1)
	resp.Program = strings.Join(parts, "\n")
	return outcome{http.StatusOK, resp}, true
}

// handleCacheGet serves one content-addressed cache entry to a fleet
// peer in cachestore's self-verifying wire format. Only the local tiers
// (memory, then disk) are consulted — never this server's own peers, so
// a fleet of mutually configured peers cannot recurse. A miss is an
// authoritative 404: the asking peer computes locally. Serving a cached
// entry costs no worker slot and goes through the same integrity checks
// as serving it to a client, so this endpoint can never leak a corrupt
// or non-clean result into the fleet.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.cache == nil || !cachestore.ValidKey(key) {
		http.Error(w, "no such cache entry", http.StatusNotFound)
		return
	}
	out, ok, corrupted := s.cache.get(key)
	if corrupted {
		s.cacheCorrupt.Add(1)
	}
	if !ok {
		http.Error(w, "no such cache entry", http.StatusNotFound)
		return
	}
	payload, err := encodeOutcome(out)
	if err != nil {
		http.Error(w, "no such cache entry", http.StatusNotFound)
		return
	}
	s.peerServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cachestore.Encode(key, payload))
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, ok := s.decodeOptimize(w, r, start)
	if !ok {
		return
	}
	lvl := s.observe()
	seed := requestSeed(req)
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining", start, lvl, seed)
		return
	}
	fuel, verify := s.optionsFor(req, lvl)
	if lvl >= overload.LevelCacheSingle {
		// Degraded: a cached result costs no worker time, so serve it
		// even while shedding. At level 3 everything else sheds; at
		// level 2 the miss still competes for admission below.
		if out, hit := s.probeCache(req, fuel, verify); hit {
			out.body.ElapsedMS = msSince(start)
			out.body.DegradeLevel = int(lvl)
			writeJSON(w, out.status, out.body)
			return
		}
		if lvl >= overload.LevelShed {
			s.shed.Add(1)
			s.reject(w, http.StatusTooManyRequests, "overload",
				"server is shedding all new work (degrade level 3)", start, lvl, seed)
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.budgetFor(req))
	defer cancel()

	j := &job{
		ctx: ctx, req: req, done: make(chan outcome, 1), start: start,
		level: lvl, fuel: fuel, verify: verify,
	}
	if !s.admit(1) {
		// Admission control: a full queue sheds load instead of building
		// an unbounded backlog.
		s.shed.Add(1)
		s.reject(w, http.StatusTooManyRequests, "overload", "optimization queue is full", start, lvl, seed)
		return
	}
	s.jobs <- j

	select {
	case out := <-j.done:
		out.body.ElapsedMS = msSince(start)
		out.body.DegradeLevel = int(lvl)
		writeJSON(w, out.status, out.body)
	case <-ctx.Done():
		// The deadline fired while the job was queued or in flight. The
		// worker observes the same context at its next iteration boundary,
		// abandons the work, and does the canceled-counter accounting; the
		// buffered done channel lets it finish without a receiver, so
		// nothing leaks.
		writeJSON(w, http.StatusGatewayTimeout, optimizeResponse{
			Error: fmt.Sprintf("request abandoned: %v", ctx.Err()), Kind: "deadline",
			Canceled: true, ElapsedMS: msSince(start),
		})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A health probe is also a pressure sample: a server left idle after a
	// burst recovers its degradation level on the next probe instead of
	// staying stuck at the level the burst pushed it to.
	lvl := s.observe()
	tele := dataflow.Telemetry()
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":         status,
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.Queue,
		"queue_depth":    s.queued.Load(),
		"inflight":       s.inflight.Load(),
		// start_time + uptime_ms together let an operator (or a soak)
		// distinguish a warm restart from a long-running process: a young
		// uptime with a populated disk tier is a warm boot.
		"start_time":   s.start.UTC().Format(time.RFC3339Nano),
		"uptime_ms":    time.Since(s.start).Milliseconds(),
		"requests":     s.requests.Load(),
		"optimized":    s.optimized.Load(),
		"fell_back":    s.fellBack.Load(),
		"canceled":     s.canceled.Load(),
		"invalid":      s.invalid.Load(),
		"shed":         s.shed.Load(),
		"panics":       s.panics.Load(),
		"quarantined":  s.quarantined.Load(),
		"cache_hits":   s.cacheHits.Load(),
		"cache_misses": s.cacheMisses.Load(),
		// fn_cache_* are the function-granular aliases: the cache is keyed
		// per function, so hits/misses count functions, not requests.
		"fn_cache_hits":       s.cacheHits.Load(),
		"fn_cache_misses":     s.cacheMisses.Load(),
		"jobs_active":         s.jobsActive.Load(),
		"jobs_resumed":        s.jobsResumed.Load(),
		"jobs_expired":        s.jobsExpired.Load(),
		"stream_clients":      s.streamClients.Load(),
		"cache_entries":       s.cache.len(),
		"cache_corrupt":       s.cacheCorrupt.Load(),
		"disk_entries":        s.disk().Len(),
		"disk_bytes":          s.disk().Bytes(),
		"disk_hits":           s.diskHits(),
		"corrupt_dropped":     s.disk().CorruptDropped(),
		"peer_hits":           s.peerHits.Load(),
		"peer_misses":         s.peerMisses.Load(),
		"peer_served":         s.peerServed.Load(),
		"degrade_level":       int(lvl),
		"degrade_transitions": s.ladder.Transitions(),
		"retry_after_ms":      s.lastRetryMS.Load(),
		"latency_ewma_ms":     s.gauge.EWMA().Milliseconds(),
		"quarantine_writable": s.quarantineWritable(),
		"disk_write_errors":   s.disk().WriteErrors(),
		"disk_read_errors":    s.disk().ReadErrors(),
		// Solver-core telemetry (process-wide): slices launched by the
		// word-parallel strategy and words the sparse worklist skipped.
		// A soak asserts these advance, proving the fast paths actually
		// engage under load rather than silently falling back to serial.
		"solver_parallel_slices": tele.ParallelSlices,
		"solver_sparse_skips":    tele.SparseSkips,
	}
	// Hostile-storage telemetry: per-class fault totals from the vfs
	// observer, plus the self-quarantining tier's state. disk_disabled
	// true means the disk cache is bypassed (memory + peers + compute
	// still serve) and journal_degraded means new ?job= submissions are
	// refused with a structured 503 until the background probe
	// re-enables the tier.
	fw, fr, fsy, frn := s.diskHealth.Faults()
	body["disk_faults_write"] = fw
	body["disk_faults_read"] = fr
	body["disk_faults_sync"] = fsy
	body["disk_faults_rename"] = frn
	body["disk_disabled"] = s.diskHealth.Disabled()
	body["disk_disable_transitions"] = s.diskHealth.Transitions()
	body["journal_degraded"] = s.journalDegraded()
	if ps := s.peers.states(); ps != nil {
		body["peers"] = ps
	}
	writeJSON(w, code, body)
}

// disk returns the durable cache tier, possibly nil (every cachestore
// method is nil-safe, reporting zero).
func (s *Server) disk() *cachestore.Store {
	if s.cache == nil {
		return nil
	}
	return s.cache.disk
}

// diskHits reports memory misses the durable tier served.
func (s *Server) diskHits() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.diskHits.Load()
}

// handleReadyz is the cheap readiness probe: 503 while draining or
// while the degradation ladder is shedding all new work (level 3), 200
// otherwise. A gateway polls this instead of parsing the full healthz
// body; the tiny JSON payload still carries the degrade level so the
// poller can bias routing away from a degraded-but-alive backend
// without a second request.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Like healthz, a readiness probe is also a pressure sample: frequent
	// polling keeps the ladder descending after a burst.
	lvl := s.observe()
	tele := dataflow.Telemetry()
	ready := !s.draining.Load() && lvl < overload.LevelShed
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":         ready,
		"draining":      s.draining.Load(),
		"degrade_level": int(lvl),
		// The job/stream gauges ride on the probe so a gateway can fold
		// them into its fleet healthz view without a second request.
		"jobs_active":     s.jobsActive.Load(),
		"jobs_resumed":    s.jobsResumed.Load(),
		"jobs_expired":    s.jobsExpired.Load(),
		"stream_clients":  s.streamClients.Load(),
		"fn_cache_hits":   s.cacheHits.Load(),
		"fn_cache_misses": s.cacheMisses.Load(),
		// Solver-core telemetry rides along for the gateway's fleet view.
		"solver_parallel_slices": tele.ParallelSlices,
		"solver_sparse_skips":    tele.SparseSkips,
		// Disk-tier health rides along too, so the gateway folds the
		// hostile-storage state per backend into its fleet summary.
		"disk_disabled":            s.diskHealth.Disabled(),
		"disk_disable_transitions": s.diskHealth.Transitions(),
		"journal_degraded":         s.journalDegraded(),
		"disk_faults_write":        diskFaultAt(s, vfs.ClassWrite),
		"disk_faults_read":         diskFaultAt(s, vfs.ClassRead),
		"disk_faults_sync":         diskFaultAt(s, vfs.ClassSync),
		"disk_faults_rename":       diskFaultAt(s, vfs.ClassRename),
	})
}

// diskFaultAt reads one per-class fault total for the probes.
func diskFaultAt(s *Server, c vfs.Class) int64 {
	return s.diskHealth.classFaults[c].Load()
}

// Stats is a point-in-time snapshot of the server's accounting
// counters, exported so an embedding test (the fleet soak) can audit
// the single-node invariants — outcome buckets summing exactly to
// admissions, the queue drained to zero — across every backend of a
// fleet.
type Stats struct {
	Requests     int64
	Optimized    int64
	FellBack     int64
	Canceled     int64
	Invalid      int64
	Shed         int64
	Panics       int64
	Quarantined  int64
	CacheHits    int64
	CacheMisses  int64
	CacheCorrupt int64
	DiskEntries  int64
	DiskBytes    int64
	DiskHits     int64
	// CorruptDropped counts durable-tier entries dropped by integrity
	// verification — detected disk rot, never served. DiskWriteErrors
	// and DiskReadErrors are the distinct IO-failure signals (the disk
	// refusing bytes, not lying about them).
	CorruptDropped  int64
	DiskWriteErrors int64
	DiskReadErrors  int64
	PeerHits        int64
	PeerMisses      int64
	PeerServed      int64
	JobsActive      int64
	JobsResumed     int64
	JobsExpired     int64
	StreamClients   int64
	Queued          int64
	Inflight        int64

	// Hostile-storage health: per-class fault totals seen by the vfs
	// observer and the self-quarantining tier's state.
	DiskFaultsWrite        int64
	DiskFaultsRead         int64
	DiskFaultsSync         int64
	DiskFaultsRename       int64
	DiskDisabled           bool
	DiskDisableTransitions int64
	JournalDegraded        bool
}

// Stats snapshots the accounting counters. The snapshot is not atomic
// across counters; audit it only on a drained server.
func (s *Server) Stats() Stats {
	fw, fr, fsy, frn := s.diskHealth.Faults()
	return Stats{
		DiskWriteErrors:        s.disk().WriteErrors(),
		DiskReadErrors:         s.disk().ReadErrors(),
		DiskFaultsWrite:        fw,
		DiskFaultsRead:         fr,
		DiskFaultsSync:         fsy,
		DiskFaultsRename:       frn,
		DiskDisabled:           s.diskHealth.Disabled(),
		DiskDisableTransitions: s.diskHealth.Transitions(),
		JournalDegraded:        s.journalDegraded(),

		Requests:       s.requests.Load(),
		Optimized:      s.optimized.Load(),
		FellBack:       s.fellBack.Load(),
		Canceled:       s.canceled.Load(),
		Invalid:        s.invalid.Load(),
		Shed:           s.shed.Load(),
		Panics:         s.panics.Load(),
		Quarantined:    s.quarantined.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMisses.Load(),
		CacheCorrupt:   s.cacheCorrupt.Load(),
		DiskEntries:    int64(s.disk().Len()),
		DiskBytes:      s.disk().Bytes(),
		DiskHits:       s.diskHits(),
		CorruptDropped: s.disk().CorruptDropped(),
		PeerHits:       s.peerHits.Load(),
		PeerMisses:     s.peerMisses.Load(),
		PeerServed:     s.peerServed.Load(),
		JobsActive:     s.jobsActive.Load(),
		JobsResumed:    s.jobsResumed.Load(),
		JobsExpired:    s.jobsExpired.Load(),
		StreamClients:  s.streamClients.Load(),
		Queued:         s.queued.Load(),
		Inflight:       s.inflight.Load(),
	}
}

// quarantineWritable probes whether crasher capture can actually land on
// disk: the directory exists (or can be created) and a file can be
// created in it. A server that silently cannot quarantine is losing its
// regression seeds; /healthz is where that should surface.
func (s *Server) quarantineWritable() bool {
	if s.cfg.Quarantine == "" {
		return false
	}
	if err := s.fs.MkdirAll(s.cfg.Quarantine, 0o755); err != nil {
		return false
	}
	f, err := s.fs.CreateTemp(s.cfg.Quarantine, ".probe-*")
	if err != nil {
		return false
	}
	name := f.Name()
	f.Close()
	s.fs.Remove(name)
	return true
}

func (s *Server) worker() {
	defer s.wg.Done()
	// Each worker owns one analysis arena for its whole lifetime: jobs on
	// this goroutine reuse traversal orders and bit-vector storage across
	// requests instead of reallocating them per fixpoint. Workers never
	// share arenas, so there is no contention on the hot path.
	sc := dataflow.NewScratch()
	for j := range s.jobs {
		s.queued.Add(-1)
		s.inflight.Add(1)
		out := s.process(j, sc)
		s.inflight.Add(-1)
		s.account(out)
		// Feed the pressure gauge: smoothed latency plus the miss rate
		// (deadline losses and fallbacks) are two of the ladder's signals.
		s.gauge.Record(time.Since(j.start), out.body.Canceled || out.body.FellBack)
		j.done <- out
	}
}

// account maintains the outcome counters the soak test audits.
func (s *Server) account(out outcome) {
	switch {
	case out.body.Canceled:
		s.canceled.Add(1)
	case out.status == http.StatusBadRequest:
		s.invalid.Add(1)
	case out.status == http.StatusInternalServerError:
		s.panics.Add(1)
	case out.body.FellBack:
		s.fellBack.Add(1)
	case out.status == http.StatusOK:
		s.optimized.Add(1)
	}
}

// process runs one request end to end under panic isolation. It never
// panics and never returns a partial rewrite: the program it reports is
// the pipeline's last-known-good function set.
func (s *Server) process(j *job, sc *dataflow.Scratch) outcome {
	if err := j.ctx.Err(); err != nil {
		return outcome{http.StatusGatewayTimeout, optimizeResponse{
			Error: fmt.Sprintf("abandoned before work started: %v", err), Kind: "deadline", Canceled: true,
		}}
	}
	var out outcome
	perr := pipeline.Guard("optimize", func() error {
		// The test hook runs inside the guard: even a hook that panics is
		// contained like any other per-request fault, which is how the
		// tests prove a worker survives an arbitrary panic on its goroutine.
		if s.cfg.hook != nil {
			s.cfg.hook(j.req)
		}
		if in := s.cfg.Chaos; in != nil {
			if d := in.Delay(); d > 0 {
				// Injected latency respects the request context, like any
				// slow-but-honest dependency would.
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-j.ctx.Done():
				}
				t.Stop()
			}
			if d := in.StallFor(); d > 0 {
				// A stall deliberately ignores the context: it models a
				// wedged worker, and the handler's deadline path must cope.
				time.Sleep(d)
			}
			if in.ShouldPanic() {
				panic("chaos: induced worker panic")
			}
		}
		out = s.optimize(j, sc)
		return nil
	})
	if perr != nil {
		// A panic escaped the pipeline's own containment (e.g. in the
		// parser or printer). Contain it here, quarantine the input, and
		// keep the worker alive.
		q := s.quarantine(j.req, j.fuel, j.verify)
		return outcome{http.StatusInternalServerError, optimizeResponse{
			Error: perr.Error(), Kind: "panic", Quarantined: q,
		}}
	}
	return out
}

func (s *Server) optimize(j *job, sc *dataflow.Scratch) outcome {
	fns, err := textir.Parse(j.req.Program)
	if err != nil {
		return outcome{http.StatusBadRequest, optimizeResponse{
			Error: err.Error(), Kind: "parse",
		}}
	}
	if len(fns) == 0 {
		return outcome{http.StatusBadRequest, optimizeResponse{
			Error: "no functions in program", Kind: "parse",
		}}
	}
	passes, opts := s.pipelineFor(j, sc)

	// Function-granular cache-or-compute. LCM's analyses are
	// intraprocedural, so each function's outcome is a pure function of
	// its own body plus the resolved directives — one edited function in
	// a large module misses alone while its neighbors replay, and a
	// module request shares cache entries with batch/stream items that
	// carry the same functions.
	resp := optimizeResponse{Functions: len(fns)}
	parts := make([]string, 0, len(fns))
	for _, f := range fns {
		u, fail := s.optimizeFn(j, f, passes, opts)
		if fail != nil {
			return *fail
		}
		parts = append(parts, u.body.Program)
		resp.Applied = append(resp.Applied, u.body.Applied...)
		resp.Diagnostics = append(resp.Diagnostics, u.body.Diagnostics...)
		if u.body.FellBack {
			resp.FellBack = true
			if resp.Quarantined == "" {
				resp.Quarantined = u.body.Quarantined
			}
		}
		if u.body.Canceled {
			resp.Canceled = true
			break // the shared deadline is gone; later functions would only repeat it
		}
	}
	resp.Program = strings.Join(parts, "\n")

	if resp.Canceled {
		resp.Error = "deadline exceeded during optimization"
		resp.Kind = "deadline"
		return outcome{http.StatusGatewayTimeout, resp}
	}
	return outcome{http.StatusOK, resp}
}

// pipelineFor builds the pass list and options one job runs under,
// including the chaos fault pass when injection is on.
func (s *Server) pipelineFor(j *job, sc *dataflow.Scratch) ([]pipeline.Pass, pipeline.Options) {
	pass, _ := pipeline.ForMode(j.req.Mode)
	opts := pipeline.Options{
		Fuel:      j.fuel,
		Canonical: j.req.Canonical,
		Verify:    j.verify,
		Ctx:       j.ctx,
		Scratch:   sc,
	}
	passes := []pipeline.Pass{pass}
	if in := s.cfg.Chaos; in != nil {
		if ft, ok := in.FaultPass(); ok {
			// Splice a buggy-but-detectable pass behind the real one. The
			// pipeline's always-on checkers must catch it and fall back; it
			// must never surface as a wrong answer, even with verify off.
			passes = append(passes, pipeline.Pass{
				Name: "chaos-" + ft.Name,
				Run: func(f *ir.Function, _ pipeline.Options) (*ir.Function, map[ir.Expr]string, error) {
					return ft.RunFunc(f)
				},
			})
		}
	}
	return passes, opts
}

// optimizeFn runs one function through cache-or-compute: consult the
// function-granular key (memory → disk → peers), run the pipeline on a
// full miss, store only clean results. The second return, when non-nil,
// is a whole-request failure (invalid input or an escaped pipeline
// error) that aborts the surrounding module, mirroring the pre-split
// behavior.
func (s *Server) optimizeFn(j *job, f *ir.Function, passes []pipeline.Pass, opts pipeline.Options) (outcome, *outcome) {
	src := f.String()
	var key string
	if s.cache != nil {
		key = fnCacheKey(j.req, src, j.fuel, j.verify)
		out, ok, corrupted := s.cache.get(key)
		if corrupted {
			s.cacheCorrupt.Add(1)
		}
		if ok {
			s.cacheHits.Add(1)
			return out, nil
		}
		// Every local tier missed: ask the key's ring-owner neighbors
		// before paying for the pipeline. Strictly fail-open — a nil
		// payload or an undecodable one just means computing locally,
		// exactly as if the tier did not exist.
		if s.peers != nil {
			if payload := s.peers.fetch(j.ctx, key); payload != nil {
				if out, ok := decodeOutcome(payload); ok {
					s.peerHits.Add(1)
					s.cache.putPayload(key, out, payload)
					return out, nil
				}
			}
			s.peerMisses.Add(1)
		}
		s.cacheMisses.Add(1)
	}

	res, err := pipeline.Run(f, passes, opts)
	if err != nil {
		if errors.Is(err, pipeline.ErrInvalidInput) {
			return outcome{}, &outcome{http.StatusBadRequest, optimizeResponse{
				Error: fmt.Sprintf("%s: %v", f.Name, err), Kind: "invalid",
			}}
		}
		return outcome{}, &outcome{http.StatusInternalServerError, optimizeResponse{
			Error: fmt.Sprintf("%s: %v", f.Name, err), Kind: "panic",
		}}
	}
	// Whatever happened, res.F is validated: the optimized function, or
	// the last-known-good fallback (ultimately the input clone).
	body := optimizeResponse{Program: res.F.String(), Functions: 1, Applied: res.Applied}
	if res.FellBack() {
		body.Diagnostics = res.Diagnostics()
		if res.Canceled() {
			body.Canceled = true
		} else {
			body.FellBack = true
			// A fallback means some pass faulted on this function: capture
			// exactly the faulting function so failures under load become
			// minimal regression seeds.
			qreq := j.req
			qreq.Program = src
			body.Quarantined = s.quarantine(qreq, j.fuel, j.verify)
		}
	}
	out := outcome{http.StatusOK, body}
	if s.cache != nil && !body.FellBack && !body.Canceled {
		// Only clean successes are cacheable: the outcome is then a pure
		// function of the key. (Cancellations depend on the request
		// deadline; fallbacks must keep quarantining.)
		s.cache.put(key, out)
	}
	return out, nil
}

// quarantine captures a faulting input in the configured directory as a
// self-describing crasher: a "# replay:" directive line recording the
// pipeline configuration the failure was observed under (mode, fuel,
// verify — a fuel-starved crasher reproduces only under its fuel), then
// the program. Files are named by content hash and created with O_EXCL,
// so concurrent captures of the same defect collapse to one file and one
// count. It returns the file path, or "" when capture is disabled or
// failed (capture must never take the request down with it).
func (s *Server) quarantine(req optimizeRequest, fuel int, verify bool) string {
	if s.cfg.Quarantine == "" || req.Program == "" {
		return ""
	}
	d := triage.Directives{
		Mode:      req.Mode,
		Fuel:      fuel,
		Verify:    verify,
		Canonical: req.Canonical,
	}
	var b strings.Builder
	b.WriteString("# replay: " + d.String() + "\n\n")
	b.WriteString(req.Program)
	if !strings.HasSuffix(req.Program, "\n") {
		b.WriteByte('\n')
	}
	content := b.String()

	sum := sha256.Sum256([]byte(content))
	path := filepath.Join(s.cfg.Quarantine, "crash-"+hex.EncodeToString(sum[:8])+".ir")
	if err := s.fs.MkdirAll(s.cfg.Quarantine, 0o755); err != nil {
		return ""
	}
	// Crash-atomic capture: the .ir name appears only after its full
	// content is on disk (tmp + fsync + link), so a server killed
	// mid-capture leaves at worst a *.tmp partial the triage scanner
	// ignores and the next boot sweeps — never a truncated crasher. The
	// link doubles as the O_EXCL dedupe: concurrent captures of the same
	// defect produce one file and one count.
	switch err := atomicio.CreateExclusiveFS(s.fs, path, []byte(content), 0o644); {
	case err == nil:
		s.quarantined.Add(1)
		return path
	case errors.Is(err, os.ErrExist):
		return path // already captured: no second file, no second count
	default:
		return ""
	}
}

// effectiveFuel resolves the fixpoint budget a request runs under.
func (s *Server) effectiveFuel(req optimizeRequest) int {
	if req.Fuel > 0 {
		return req.Fuel
	}
	return s.cfg.Fuel
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func msSince(t time.Time) int64 {
	return time.Since(t).Milliseconds()
}
