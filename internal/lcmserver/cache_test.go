package lcmserver

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestResultCacheLRU exercises the cache data structure alone: capacity
// eviction in least-recently-used order, recency refresh on get and on
// re-put, and the nil cache behaving as an always-miss cache.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	out := func(s int) outcome { return outcome{status: s} }
	c.put("a", out(1))
	c.put("b", out(2))
	if _, ok, _ := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", out(3)) // evicts b
	if _, ok, _ := c.get("b"); ok {
		t.Error("b survived eviction past capacity")
	}
	if got, ok, _ := c.get("a"); !ok || got.status != 1 {
		t.Errorf("a = %+v %v, want status 1", got, ok)
	}
	if got, ok, _ := c.get("c"); !ok || got.status != 3 {
		t.Errorf("c = %+v %v, want status 3", got, ok)
	}
	c.put("c", out(4)) // re-put refreshes in place, no growth
	if got, _, _ := c.get("c"); got.status != 4 {
		t.Errorf("re-put did not replace: %+v", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	var nilCache *resultCache
	if _, ok, _ := nilCache.get("x"); ok {
		t.Error("nil cache returned a hit")
	}
	nilCache.put("x", out(1)) // must not panic
	if nilCache.len() != 0 {
		t.Error("nil cache has entries")
	}
}

// TestCacheKeyDiscriminates: every directive that can change the result
// must change the key; the deadline must not.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := optimizeRequest{Program: diamond, Mode: "lcm"}
	k := func(req optimizeRequest, fuel int, verify bool) string {
		return cacheKey(req, fuel, verify)
	}
	ref := k(base, 0, false)
	alts := map[string]string{}
	{
		r := base
		r.Program += "\n"
		alts["program"] = k(r, 0, false)
	}
	{
		r := base
		r.Mode = "bcm"
		alts["mode"] = k(r, 0, false)
	}
	{
		r := base
		r.Canonical = true
		alts["canonical"] = k(r, 0, false)
	}
	alts["fuel"] = k(base, 7, false)
	alts["verify"] = k(base, 0, true)
	for name, alt := range alts {
		if alt == ref {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	r := base
	r.TimeoutMS = 123
	if k(r, 0, false) != ref {
		t.Error("deadline leaked into the cache key")
	}
}

// TestCacheReplaysCleanResults: the second identical request is a cache
// hit with a byte-identical optimized program, and /healthz reports the
// hit/miss counters.
func TestCacheReplaysCleanResults(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code1, out1 := postOptimize(t, ts, optimizeRequest{Program: diamond})
	code2, out2 := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", code1, code2)
	}
	if out1.Program != out2.Program {
		t.Errorf("cache hit changed the program:\n%s\nvs\n%s", out1.Program, out2.Program)
	}
	if got := s.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := s.cacheMisses.Load(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	// A different directive set is a different key: no false hit.
	if code, _ := postOptimize(t, ts, optimizeRequest{Program: diamond, Mode: "bcm"}); code != http.StatusOK {
		t.Fatalf("bcm status %d", code)
	}
	if got := s.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits after different mode = %d, want still 1", got)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["cache_hits"] != float64(1) || health["cache_misses"] != float64(2) {
		t.Errorf("healthz cache counters = %v/%v, want 1/2", health["cache_hits"], health["cache_misses"])
	}
}

// TestCacheSkipsFailures: outcomes that carry side effects or depend on
// the deadline — panics here — are never cached; every identical request
// re-executes.
func TestCacheSkipsFailures(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Quarantine: t.TempDir(),
		hook: func(req optimizeRequest) {
			if strings.Contains(req.Program, "boom") {
				panic("injected fault")
			}
		},
	})
	prog := "func boom(a) {\ne:\n  print a\n  ret\n}\n"
	for i := 0; i < 2; i++ {
		if code, _ := postOptimize(t, ts, optimizeRequest{Program: prog}); code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, code)
		}
	}
	if got := s.cacheHits.Load(); got != 0 {
		t.Errorf("failed outcome served from cache: hits = %d", got)
	}
	if got := s.panics.Load(); got != 2 {
		t.Errorf("panics = %d, want 2 (both requests executed)", got)
	}
}

// TestCacheDisabled: a negative CacheSize turns the cache off entirely —
// no hits, no misses, repeated requests all execute.
func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 2; i++ {
		if code, _ := postOptimize(t, ts, optimizeRequest{Program: diamond}); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}
	if h, m := s.cacheHits.Load(), s.cacheMisses.Load(); h != 0 || m != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d", h, m)
	}
}
