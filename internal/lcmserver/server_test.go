package lcmserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/triage"
)

const diamond = `func f(a, b, p) {
entry:
  br p t e
t:
  x = a + b
  jmp j
e:
  y = a + b
  jmp j
j:
  z = a + b
  ret z
}
`

// newTestServer wires a Server behind httptest. Teardown order matters:
// the HTTP server closes first (waiting for handlers), then the worker
// pool, mirroring the production drain sequence.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postOptimize(t *testing.T, ts *httptest.Server, req optimizeRequest) (int, optimizeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out optimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return resp.StatusCode, out
}

func getHealthz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

func bigProgram(t testing.TB) string {
	t.Helper()
	f := randprog.Generate(randprog.Config{
		Seed: 7, MaxDepth: 6, MaxItems: 5, MaxStmts: 8, Vars: 12, Params: 4, MaxTrips: 4,
	})
	if err := f.Validate(); err != nil {
		t.Fatalf("generated function invalid: %v", err)
	}
	return textir.PrintFunctions([]*ir.Function{f})
}

func TestOptimizeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %+v", code, out)
	}
	if out.FellBack || out.Canceled || out.Error != "" {
		t.Fatalf("clean request degraded: %+v", out)
	}
	if len(out.Applied) == 0 || out.Applied[0] != "lcm" {
		t.Errorf("applied = %v, want [lcm]", out.Applied)
	}
	// LCM hoists the fully redundant a+b: the join recomputation is gone.
	if strings.Count(out.Program, "a + b") >= strings.Count(diamond, "a + b") {
		t.Errorf("program not optimized:\n%s", out.Program)
	}
	// The result must parse and validate: never a partial rewrite.
	fns, err := textir.Parse(out.Program)
	if err != nil {
		t.Fatalf("response program does not parse: %v", err)
	}
	for _, f := range fns {
		if err := f.Validate(); err != nil {
			t.Errorf("response function invalid: %v", err)
		}
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  optimizeRequest
		kind string
	}{
		{"garbage program", optimizeRequest{Program: "not a program"}, "parse"},
		{"empty program", optimizeRequest{Program: ""}, "parse"},
		{"unknown mode", optimizeRequest{Program: diamond, Mode: "bogus"}, "mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postOptimize(t, ts, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%+v)", code, out)
			}
			if out.Kind != tc.kind {
				t.Errorf("kind = %q, want %q (%+v)", out.Kind, tc.kind, out)
			}
		})
	}
	// A non-JSON body is rejected the same way.
	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", strings.NewReader("{{{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d, want 400", resp.StatusCode)
	}
}

// TestOptimizeDeadline: a 1ms client budget on a large generated function
// comes back promptly as 504 with the deadline classified, not a hung
// worker or a partial rewrite.
func TestOptimizeDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	start := time.Now()
	code, out := postOptimize(t, ts, optimizeRequest{Program: bigProgram(t), TimeoutMS: 1})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, out)
	}
	if !out.Canceled || out.Kind != "deadline" {
		t.Errorf("not classified as deadline: %+v", out)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline not honored promptly: %v", elapsed)
	}
	// If the worker got far enough to ship a body, it must be valid IR.
	if out.Program != "" {
		if _, err := textir.Parse(out.Program); err != nil {
			t.Errorf("canceled response carries unparseable program: %v", err)
		}
	}
}

// TestLoadShedding: with one worker held busy and a one-slot queue full,
// the next request is shed with 429 + Retry-After instead of queueing
// unboundedly; releasing the worker lets the admitted jobs finish.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1, Queue: 1, Timeout: time.Minute,
		hook: func(optimizeRequest) { <-release },
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	type result struct {
		code int
		out  optimizeResponse
	}
	results := make(chan result, 2)
	post := func() {
		code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
		results <- result{code, out}
	}

	go post() // occupies the single worker
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	go post() // fills the single queue slot
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", code, out)
	}
	if out.Kind != "overload" {
		t.Errorf("kind = %q, want overload", out.Kind)
	}
	if s.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.shed.Load())
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("admitted request failed: %d %+v", r.code, r.out)
		}
	}
}

// TestRetryAfterHeader: shed responses tell clients when to come back.
func TestRetryAfterHeader(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Workers: 1, Queue: 1, Timeout: time.Minute,
		hook: func(optimizeRequest) { <-release },
	})
	body, _ := json.Marshal(optimizeRequest{Program: diamond})
	post := func() {
		resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}
	go post()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	go post()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestRetryAfterParity: both retryable rejections — shed load (429) and
// draining (503) — carry the Retry-After header, on the single and the
// batch endpoint alike, so client retry loops need one code path.
func TestRetryAfterParity(t *testing.T) {
	body, _ := json.Marshal(optimizeRequest{Program: diamond})
	post := func(ts *httptest.Server, path string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// 503: draining.
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	for _, path := range []string{"/optimize", "/optimize/batch"} {
		resp := post(ts, path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s 503 without Retry-After header", path)
		}
	}

	// 429: queue full.
	release := make(chan struct{})
	defer close(release)
	s2, ts2 := newTestServer(t, Config{
		Workers: 1, Queue: 1, Timeout: time.Minute,
		hook: func(optimizeRequest) { <-release },
	})
	asyncOptimize(ts2, diamond)
	waitFor(t, func() bool { return s2.inflight.Load() == 1 })
	asyncOptimize(ts2, diamond)
	waitFor(t, func() bool { return s2.queued.Load() == 1 })
	for _, path := range []string{"/optimize", "/optimize/batch"} {
		resp := post(ts2, path)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s with full queue: status %d, want 429", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s 429 without Retry-After header", path)
		}
	}
}

// TestFallbackQuarantine: an input that makes a pass fail (here via a
// starved fuel budget) still gets a 200 with the validated original
// function, and the offending input is captured as a regression seed.
func TestFallbackQuarantine(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Quarantine: dir})
	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond, Fuel: 1})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 with fallback (%+v)", code, out)
	}
	if !out.FellBack {
		t.Fatalf("fuel-starved request did not fall back: %+v", out)
	}
	if len(out.Diagnostics) == 0 {
		t.Error("fallback without diagnostics")
	}
	// The shipped program is the validated original.
	if !strings.Contains(out.Program, "z = a + b") {
		t.Errorf("fallback did not ship the original function:\n%s", out.Program)
	}
	if out.Quarantined == "" {
		t.Fatal("fallback input was not quarantined")
	}
	got, err := os.ReadFile(out.Quarantined)
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The capture is self-describing: replay directives record the
	// configuration the failure was observed under, then the verbatim
	// program.
	if !strings.HasSuffix(string(got), diamond) {
		t.Errorf("quarantine did not capture the program verbatim:\n%s", got)
	}
	d := triage.ParseDirectives(string(got))
	if d.Mode != "lcm" || d.Fuel != 1 || d.Verify {
		t.Errorf("replay directives = %+v, want mode=lcm fuel=1 verify=false", d)
	}
	// And it reproduces: replaying under its own directives yields the
	// fuel-exhaustion signature.
	if sig, reproduces := triage.Replay(string(got), d, time.Second); !reproduces || sig.String() != "lcm-run-fuel" {
		t.Errorf("capture does not reproduce: %s reproduces=%v", sig, reproduces)
	}
}

// TestQuarantineDedupe: the same defect captured twice yields one file
// and one count — the content hash names the file, O_EXCL arbitrates the
// race, and the counter moves only on a genuinely new capture.
func TestQuarantineDedupe(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Quarantine: dir})
	_, out1 := postOptimize(t, ts, optimizeRequest{Program: diamond, Fuel: 1})
	_, out2 := postOptimize(t, ts, optimizeRequest{Program: diamond, Fuel: 1})
	if out1.Quarantined == "" || out2.Quarantined != out1.Quarantined {
		t.Fatalf("duplicate crasher got a new file: %q vs %q", out2.Quarantined, out1.Quarantined)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("quarantine dir has %d entries, want 1", len(entries))
	}
	if got := s.quarantined.Load(); got != 1 {
		t.Errorf("quarantined counter = %d, want 1", got)
	}
	// A different defect (different fuel ⇒ different directives) is a new
	// capture even for the same program text.
	_, out3 := postOptimize(t, ts, optimizeRequest{Program: diamond, Fuel: 2})
	if out3.Quarantined == "" || out3.Quarantined == out1.Quarantined {
		t.Fatalf("distinct defect collapsed into the same file: %q", out3.Quarantined)
	}
	if got := s.quarantined.Load(); got != 2 {
		t.Errorf("quarantined counter = %d, want 2", got)
	}
	_, h := getHealthz(t, ts)
	if got := h["quarantined"].(float64); got != 2 {
		t.Errorf("healthz quarantined = %v, want 2", got)
	}
}

// TestDrainRejectsNewWork: once draining, /optimize sheds with 503 and
// /healthz reports the state with the same status code.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	code, out := postOptimize(t, ts, optimizeRequest{Program: diamond})
	if code != http.StatusServiceUnavailable || out.Kind != "draining" {
		t.Errorf("draining optimize: %d %+v, want 503/draining", code, out)
	}
	hcode, h := getHealthz(t, ts)
	if hcode != http.StatusServiceUnavailable || h["status"] != "draining" {
		t.Errorf("draining healthz: %d %v", hcode, h["status"])
	}
}

// TestHealthzCounters: outcome counters add up after a mixed workload.
func TestHealthzCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postOptimize(t, ts, optimizeRequest{Program: diamond})                     // optimized
	postOptimize(t, ts, optimizeRequest{Program: diamond, Mode: "gcse"})       // optimized
	postOptimize(t, ts, optimizeRequest{Program: "garbage"})                   // invalid
	postOptimize(t, ts, optimizeRequest{Program: diamond, Fuel: 1})            // fell back
	postOptimize(t, ts, optimizeRequest{Program: bigProgram(t), TimeoutMS: 1}) // canceled

	// The canceled job is counted by its worker, which may lag the 504
	// response; poll until accounting settles.
	waitFor(t, func() bool {
		_, h := getHealthz(t, ts)
		return h["canceled"].(float64) >= 1
	})
	_, h := getHealthz(t, ts)
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	if got := h["requests"].(float64); got != 5 {
		t.Errorf("requests = %v, want 5", got)
	}
	if got := h["optimized"].(float64); got != 2 {
		t.Errorf("optimized = %v, want 2", got)
	}
	if got := h["invalid"].(float64); got != 1 {
		t.Errorf("invalid = %v, want 1", got)
	}
	if got := h["fell_back"].(float64); got != 1 {
		t.Errorf("fell_back = %v, want 1", got)
	}
}

// TestModesOverHTTP: every registered mode is reachable through the API.
func TestModesOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, mode := range []string{"lcm", "alcm", "bcm", "mr", "gcse", "sr", "opt"} {
		code, out := postOptimize(t, ts, optimizeRequest{Program: diamond, Mode: mode})
		if code != http.StatusOK || out.Error != "" {
			t.Errorf("mode %s: status %d, %+v", mode, code, out)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
