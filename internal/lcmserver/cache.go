package lcmserver

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// resultCache is a content-addressed LRU of optimization outcomes. Under
// load the same programs arrive over and over (retry loops, shared
// modules across batches, popular inputs); the pipeline is deterministic
// for a fixed (program, directives) pair, so a clean result can be
// replayed from memory instead of re-running parse → four fixpoints →
// rewrite. Only clean outcomes are stored: fallbacks carry quarantine
// side effects and cancellations depend on the request's deadline, so
// both always re-execute.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	// corrupt, when non-nil, mutates a stored program on its way out of
	// the cache — the chaos injector's model of memory rot. It exists so
	// tests can prove the integrity checksum below actually catches
	// corruption; production servers never set it.
	corrupt func(program string) (string, bool)
}

type cacheEntry struct {
	key string
	out outcome
	// sum is the integrity checksum of out.body.Program taken at store
	// time. A cached result is replayed verbatim possibly much later; the
	// checksum guarantees that what goes out is what was computed, and
	// turns any in-memory corruption into an eviction instead of a served
	// wrong answer.
	sum [sha256.Size]byte
}

// newResultCache returns a cache holding up to max outcomes, or nil when
// max <= 0 (a nil *resultCache is a valid, always-miss cache).
func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

// cacheKey hashes everything that determines an optimization outcome:
// the program source and the directives (mode, effective fuel, effective
// verify, canonical). The request deadline is deliberately excluded — it
// decides whether a result is produced, never which result.
func cacheKey(req optimizeRequest, fuel int, verify bool) string {
	h := sha256.New()
	var nums [9]byte
	binary.LittleEndian.PutUint64(nums[:8], uint64(fuel))
	var flags byte
	if verify {
		flags |= 1
	}
	if req.Canonical {
		flags |= 2
	}
	nums[8] = flags
	h.Write(nums[:])
	h.Write([]byte(req.Mode))
	h.Write([]byte{0})
	h.Write([]byte(req.Program))
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached outcome for key and marks it most recently
// used. The stored program is re-checksummed on every read; an entry
// that fails the check is evicted, never served, and the third result
// reports the corruption so the server can count it.
func (c *resultCache) get(key string) (out outcome, ok, corrupted bool) {
	if c == nil {
		return outcome{}, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.byKey[key]
	if !found {
		return outcome{}, false, false
	}
	ent := el.Value.(*cacheEntry)
	if c.corrupt != nil {
		if p, did := c.corrupt(ent.out.body.Program); did {
			ent.out.body.Program = p
		}
	}
	if sha256.Sum256([]byte(ent.out.body.Program)) != ent.sum {
		c.ll.Remove(el)
		delete(c.byKey, key)
		return outcome{}, false, true
	}
	c.ll.MoveToFront(el)
	return ent.out, true, false
}

// put stores an outcome, evicting the least recently used entry beyond
// capacity. Storing an existing key refreshes its recency.
func (c *resultCache) put(key string, out outcome) {
	if c == nil {
		return
	}
	sum := sha256.Sum256([]byte(out.body.Program))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.out, ent.sum = out, sum
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, out: out, sum: sum})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached outcomes.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
