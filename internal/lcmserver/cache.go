package lcmserver

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"lazycm/internal/cachestore"
)

// resultCache is a content-addressed LRU of optimization outcomes. Under
// load the same programs arrive over and over (retry loops, shared
// modules across batches, popular inputs); the pipeline is deterministic
// for a fixed (program, directives) pair, so a clean result can be
// replayed from memory instead of re-running parse → four fixpoints →
// rewrite. Only clean outcomes are stored: fallbacks carry quarantine
// side effects and cancellations depend on the request's deadline, so
// both always re-execute.
//
// Behind the in-memory tier sits an optional durable one (disk, an
// internal/cachestore directory): entries written through to it survive
// a process restart, so a rebooted backend answers its old hits without
// recomputing. A disk read that fails the store's integrity check is a
// plain miss (the store unlinks and counts it); a disk hit is promoted
// back into memory. Every failure on the disk path falls open to a
// miss — the durable tier can make requests faster, never wrong.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	// disk, when non-nil, is the durable tier consulted on memory miss
	// and written through on every put. diskGate, when non-nil, is
	// consulted before every disk access: while the disk-health tracker
	// has the tier quarantined it returns false and the cache behaves
	// exactly as if the tier were not configured — memory and peer fill
	// keep serving, misses recompute.
	disk     *cachestore.Store
	diskGate func() bool

	diskHits atomic.Int64 // memory misses served by the durable tier

	// corrupt, when non-nil, mutates a stored program on its way out of
	// the cache — the chaos injector's model of memory rot. It exists so
	// tests can prove the integrity checksum below actually catches
	// corruption; production servers never set it.
	corrupt func(program string) (string, bool)
}

type cacheEntry struct {
	key string
	out outcome
	// sum is the integrity checksum of out.body.Program taken at store
	// time. A cached result is replayed verbatim possibly much later; the
	// checksum guarantees that what goes out is what was computed, and
	// turns any in-memory corruption into an eviction instead of a served
	// wrong answer.
	sum [sha256.Size]byte
}

// newResultCache returns a cache holding up to max outcomes, or nil when
// max <= 0 (a nil *resultCache is a valid, always-miss cache).
func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

// cacheKey hashes everything that determines an optimization outcome:
// the program source and the directives (mode, effective fuel, effective
// verify, canonical). The request deadline is deliberately excluded — it
// decides whether a result is produced, never which result.
func cacheKey(req optimizeRequest, fuel int, verify bool) string {
	h := sha256.New()
	var nums [9]byte
	binary.LittleEndian.PutUint64(nums[:8], uint64(fuel))
	var flags byte
	if verify {
		flags |= 1
	}
	if req.Canonical {
		flags |= 2
	}
	nums[8] = flags
	h.Write(nums[:])
	h.Write([]byte(req.Mode))
	h.Write([]byte{0})
	h.Write([]byte(req.Program))
	return hex.EncodeToString(h.Sum(nil))
}

// fnCacheKey is the function-granular cache key: one function's
// canonical printed body under the request's directives. The analyses
// are intraprocedural — a function's placement decisions can never
// depend on a neighbor — so this key is sound, and a one-function edit
// to a large module invalidates exactly one entry. Keying on the
// canonical print (not the raw request chunk) makes single, batch and
// stream requests share entries for byte-different spellings of the
// same function.
func fnCacheKey(req optimizeRequest, fnSrc string, fuel int, verify bool) string {
	r := req
	r.Program = fnSrc
	return cacheKey(r, fuel, verify)
}

// encodeOutcome flattens a cacheable (clean 200) outcome into the
// payload bytes the durable tier and the peer-fill wire share.
func encodeOutcome(out outcome) ([]byte, error) {
	return json.Marshal(out.body)
}

// decodeOutcome is the inverse, with the semantic gate both remote
// tiers need: only a clean success is a legal cache entry, so anything
// that decodes to an error, fallback, cancellation, or empty program is
// rejected — whatever wrote it, it must not be replayed.
func decodeOutcome(payload []byte) (outcome, bool) {
	var body optimizeResponse
	if err := json.Unmarshal(payload, &body); err != nil {
		return outcome{}, false
	}
	if body.Program == "" || body.Error != "" || body.FellBack || body.Canceled {
		return outcome{}, false
	}
	body.ElapsedMS = 0
	return outcome{status: http.StatusOK, body: body}, true
}

// get returns the cached outcome for key, consulting memory first and
// the durable tier on miss, and marks it most recently used. The stored
// program is re-checksummed on every memory read; an entry that fails
// the check is evicted, never served, and the third result reports the
// corruption so the server can count it. Disk-tier integrity failures
// are counted by the store itself and surface here as plain misses; a
// disk hit is promoted into memory.
func (c *resultCache) get(key string) (out outcome, ok, corrupted bool) {
	if c == nil {
		return outcome{}, false, false
	}
	c.mu.Lock()
	if el, found := c.byKey[key]; found {
		ent := el.Value.(*cacheEntry)
		if c.corrupt != nil {
			if p, did := c.corrupt(ent.out.body.Program); did {
				ent.out.body.Program = p
			}
		}
		if sha256.Sum256([]byte(ent.out.body.Program)) != ent.sum {
			c.ll.Remove(el)
			delete(c.byKey, key)
			c.mu.Unlock()
			return outcome{}, false, true
		}
		c.ll.MoveToFront(el)
		out = ent.out
		c.mu.Unlock()
		return out, true, false
	}
	c.mu.Unlock()

	if !c.diskEnabled() {
		return outcome{}, false, false
	}
	payload, found, _ := c.disk.Get(key)
	if !found {
		return outcome{}, false, false
	}
	out, okDecode := decodeOutcome(payload)
	if !okDecode {
		return outcome{}, false, false
	}
	c.diskHits.Add(1)
	c.putMem(key, out)
	return out, true, false
}

// put stores an outcome in memory and writes it through to the durable
// tier, evicting the least recently used entry beyond capacity. Storing
// an existing key refreshes its recency.
func (c *resultCache) put(key string, out outcome) {
	if c == nil {
		return
	}
	c.putMem(key, out)
	if c.diskEnabled() {
		if payload, err := encodeOutcome(out); err == nil {
			_ = c.disk.Put(key, payload) // best-effort: a failed durable write only costs warmth
		}
	}
}

// putPayload stores an outcome whose wire payload is already in hand (a
// peer fill), avoiding a re-marshal on the write-through.
func (c *resultCache) putPayload(key string, out outcome, payload []byte) {
	if c == nil {
		return
	}
	c.putMem(key, out)
	if c.diskEnabled() {
		_ = c.disk.Put(key, payload)
	}
}

// diskEnabled reports whether the durable tier exists and is not
// quarantined by the disk-health tracker.
func (c *resultCache) diskEnabled() bool {
	return c.disk != nil && (c.diskGate == nil || c.diskGate())
}

func (c *resultCache) putMem(key string, out outcome) {
	sum := sha256.Sum256([]byte(out.body.Program))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.out, ent.sum = out, sum
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, out: out, sum: sum})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached outcomes in memory.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
