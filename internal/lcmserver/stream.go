package lcmserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lazycm/internal/overload"
	"lazycm/internal/textir"
)

// DefaultStreamHeartbeat is the keep-alive cadence on NDJSON streams
// when Config.StreamHeartbeat is unset.
const DefaultStreamHeartbeat = 10 * time.Second

// streamMeta is the first NDJSON record of a stream: the job handle (ID
// empty for a transient, non-resumable stream) and the item count.
type streamMeta struct {
	Type      string `json:"type"` // "job"
	ID        string `json:"id,omitempty"`
	Functions int    `json:"functions"`
}

// streamItem is one function's completion on the wire, in completion
// order: the standard per-item response plus its module index, name,
// and the HTTP status it would have received as a single request —
// mirroring batch semantics record for record.
type streamItem struct {
	Type   string `json:"type"` // "item"
	Index  int    `json:"index"`
	Name   string `json:"name,omitempty"`
	Status int    `json:"status"`
	optimizeResponse
}

// streamBeat is the keep-alive record emitted while no item lands.
type streamBeat struct {
	Type      string `json:"type"` // "heartbeat"
	ElapsedMS int64  `json:"elapsed_ms"`
}

// streamTrailer closes a stream with the batch-shaped aggregates. Done
// false means this generation ended with items still pending (drain,
// shutdown, per-item deadline losses): the client should reconnect with
// the job ID rather than treat the stream as complete.
type streamTrailer struct {
	Type      string `json:"type"` // "trailer"
	ID        string `json:"id,omitempty"`
	Done      bool   `json:"done"`
	Functions int    `json:"functions"`
	Completed int    `json:"completed"`
	Optimized int    `json:"optimized"`
	FellBack  int    `json:"fell_back"`
	Failed    int    `json:"failed"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// handleStream is POST /optimize/stream: the batch workload with
// incremental results — one NDJSON record per function as it lands,
// heartbeats while nothing does, a trailer with the aggregates. With
// ?job=1 the work is registered (and, when a journal directory is
// configured, journaled) as a resumable job that survives client
// disconnects and server crashes; without it the stream is transient
// and cancels with the request, exactly like a batch.
//
// Admission is item-exact and shares every rule with /optimize/batch:
// draining 503s, level 2+ sheds whole modules, and both rejections
// carry the Retry-After contract.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, ok := s.decodeOptimize(w, r, start)
	if !ok {
		return
	}
	lvl := s.observe()
	seed := requestSeed(req)
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining", start, lvl, seed)
		return
	}
	mod, err := textir.ParseModule(req.Program)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: err.Error(), Kind: "parse", ElapsedMS: msSince(start),
		})
		return
	}
	n := len(mod.Funcs)
	fuel, verify := s.optionsFor(req, lvl)
	units := s.unitsFor(req, mod, fuel, verify)
	persist := r.URL.Query().Has("job") && s.jobStore != nil

	if persist {
		hdr := jobHeader{
			Type: "header", ID: "", Mode: req.Mode, Fuel: fuel, Verify: verify,
			Canonical: req.Canonical, Created: time.Now(), Funcs: units,
		}
		hdr.ID = deriveJobID(hdr)
		// Attach before admission: re-submitting an in-flight (or already
		// finished) job must not admit — or shed — its work twice. A job
		// loaded from a journal holds key-only records until resolved.
		if js := s.jobStore.get(hdr.ID); js != nil {
			if s.cache != nil {
				s.resolveRecorded(js)
			}
			s.ensureRunner(js)
			s.follow(w, r, js, start)
			return
		}
		if s.journalDegraded() {
			s.rejectDegradedJournal(w, start, lvl, seed)
			return
		}
		if !s.shedStream(w, n, lvl, start, seed) {
			return
		}
		js, created := s.createJob(hdr)
		if created {
			js.mu.Lock()
			js.running = true
			js.mu.Unlock()
			s.startRunner(js, s.jobsCtx, nil, true)
		} else {
			// Lost a create race: the winner's admission stands, refund ours.
			s.queued.Add(int64(-n))
			s.requests.Add(int64(-n))
			s.ensureRunner(js)
		}
		s.follow(w, r, js, start)
		return
	}

	if !s.shedStream(w, n, lvl, start, seed) {
		return
	}
	hdr := jobHeader{Type: "header", Mode: req.Mode, Fuel: fuel, Verify: verify,
		Canonical: req.Canonical, Created: time.Now(), Funcs: units}
	js := newJobState(hdr, false)
	js.running = true
	// A transient stream lives and dies with its request: the budget is
	// sliced across items like a batch, and a dropped client cancels the
	// remaining work (the workers account it canceled).
	budget := s.budgetFor(req)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	bb := newBatchBudget(time.Now().Add(budget), n, min(s.cfg.BatchParallel, n))
	s.startRunner(js, ctx, bb, true)
	s.follow(w, r, js, start)
}

// shedStream applies the batch admission rules to a stream of n items:
// level 2+ sheds the whole module, then the queue reservation is
// all-or-nothing. Reports whether the stream was admitted.
func (s *Server) shedStream(w http.ResponseWriter, n int, lvl overload.Level, start time.Time, seed uint64) bool {
	if lvl >= overload.LevelCacheSingle {
		// A stream is batch-wide work: level 2 sheds it first, item-exact,
		// while single requests and cache hits keep flowing.
		s.shed.Add(int64(n))
		s.reject(w, http.StatusTooManyRequests, "overload",
			fmt.Sprintf("server is shedding stream work (degrade level %d)", int(lvl)), start, lvl, seed)
		return false
	}
	if !s.admit(int64(n)) {
		s.shed.Add(int64(n))
		s.reject(w, http.StatusTooManyRequests, "overload",
			fmt.Sprintf("optimization queue cannot hold %d functions", n), start, lvl, seed)
		return false
	}
	return true
}

// snapshotFollow returns the stream records completed beyond emitted,
// plus the job's liveness, under one lock acquisition.
func (js *jobState) snapshotFollow(emitted int) (items []streamItem, done, running bool, notify chan struct{}) {
	js.mu.Lock()
	defer js.mu.Unlock()
	for _, i := range js.order[emitted:] {
		out := js.results[i]
		items = append(items, streamItem{
			Type: "item", Index: i, Name: js.hdr.Funcs[i].Name,
			Status: out.status, optimizeResponse: out.body,
		})
	}
	return items, js.done, js.running, js.notify
}

// counts aggregates completed items batch-style.
func (js *jobState) counts() (completed, optimized, fellBack, failed int) {
	js.mu.Lock()
	defer js.mu.Unlock()
	for _, out := range js.results {
		completed++
		switch {
		case out.status == http.StatusOK && !out.body.FellBack && !out.body.Canceled:
			optimized++
		case out.status == http.StatusOK:
			fellBack++
		default:
			failed++
		}
	}
	return
}

// follow writes one NDJSON stream for a job: replay what is already
// complete, then follow live completions, heartbeating through quiet
// stretches. It returns when the job finishes, this generation settles
// with work pending (trailer says done:false — reconnect), or the
// client goes away; a persisted job keeps computing regardless, which
// is what makes a dropped consumer harmless.
func (s *Server) follow(w http.ResponseWriter, r *http.Request, js *jobState, start time.Time) {
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.streamClients.Add(1)
	defer s.streamClients.Add(-1)

	enc := json.NewEncoder(w)
	write := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	id := ""
	if js.persisted {
		id = js.id
	}
	if !write(streamMeta{Type: "job", ID: id, Functions: len(js.hdr.Funcs)}) {
		return
	}
	hb := s.cfg.StreamHeartbeat
	if hb <= 0 {
		hb = DefaultStreamHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	emitted := 0
	for {
		items, done, running, notify := js.snapshotFollow(emitted)
		for _, it := range items {
			if !write(it) {
				return
			}
		}
		emitted += len(items)
		if done || !running {
			completed, optimized, fellBack, failed := js.counts()
			write(streamTrailer{
				Type: "trailer", ID: id, Done: done,
				Functions: len(js.hdr.Funcs), Completed: completed,
				Optimized: optimized, FellBack: fellBack, Failed: failed,
				ElapsedMS: msSince(start),
			})
			return
		}
		select {
		case <-notify:
		case <-ticker.C:
			if !write(streamBeat{Type: "heartbeat", ElapsedMS: msSince(start)}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// jobSnapshot is the JSON body of GET /jobs/{id}: progress plus every
// finished item, batch-shaped.
type jobSnapshot struct {
	ID        string       `json:"id"`
	Done      bool         `json:"done"`
	Running   bool         `json:"running"`
	Functions int          `json:"functions"`
	Completed int          `json:"completed"`
	Optimized int          `json:"optimized"`
	FellBack  int          `json:"fell_back"`
	Failed    int          `json:"failed"`
	Results   []streamItem `json:"results,omitempty"`
}

// handleJobGet is GET /jobs/{id}: a point-in-time progress snapshot.
// Unknown IDs (never submitted, or expired at boot) are authoritative
// 404s — at fleet scope the gateway walks replicas on 404, since a
// job lives only on the backend that admitted it.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	js := s.jobStore.get(r.PathValue("id"))
	if js == nil {
		writeJSON(w, http.StatusNotFound, optimizeResponse{Error: "no such job", Kind: "job"})
		return
	}
	if s.cache != nil {
		s.resolveRecorded(js)
	}
	items, done, running, _ := js.snapshotFollow(0)
	completed, optimized, fellBack, failed := js.counts()
	writeJSON(w, http.StatusOK, jobSnapshot{
		ID: js.id, Done: done, Running: running,
		Functions: len(js.hdr.Funcs), Completed: completed,
		Optimized: optimized, FellBack: fellBack, Failed: failed,
		Results: items,
	})
}

// handleJobStream is GET /jobs/{id}/stream: the resume half of the
// streaming contract. It replays every completed item and follows the
// rest; if the job is unfinished and idle (a previous generation was
// cut short), a new runner generation is started first — unless the
// ladder is shedding batch-wide work, in which case the replay still
// serves and the trailer's done:false tells the client to come back.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	js := s.jobStore.get(r.PathValue("id"))
	if js == nil {
		writeJSON(w, http.StatusNotFound, optimizeResponse{Error: "no such job", Kind: "job"})
		return
	}
	if s.cache != nil {
		s.resolveRecorded(js)
	}
	if lvl := s.observe(); lvl < overload.LevelCacheSingle {
		s.ensureRunner(js)
	}
	s.follow(w, r, js, start)
}
