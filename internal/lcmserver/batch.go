package lcmserver

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lazycm/internal/conc"
	"lazycm/internal/overload"
	"lazycm/internal/textir"
)

// batchResult is one function's outcome inside a batch response: the
// standard optimize response plus the function's name and the HTTP
// status it would have received as a single request.
type batchResult struct {
	Name   string `json:"name,omitempty"`
	Status int    `json:"status"`
	optimizeResponse
}

// batchResponse is the JSON body of POST /optimize/batch. Results holds
// one entry per function of the submitted module, in module order; the
// aggregate counters classify them. The batch as a whole answers 200
// whenever it was admitted and processed — failure is per item, which is
// the point: one broken function must not poison its neighbors.
type batchResponse struct {
	Functions int           `json:"functions"`
	Optimized int           `json:"optimized"`
	FellBack  int           `json:"fell_back"`
	Failed    int           `json:"failed"`
	Results   []batchResult `json:"results"`
	Error     string        `json:"error,omitempty"`
	Kind      string        `json:"kind,omitempty"`
	// JobID names the resumable job behind a ?job= batch; Pending counts
	// items not yet complete when the response was cut (status 202) —
	// follow up with GET /jobs/{id}.
	JobID     string `json:"job_id,omitempty"`
	Pending   int    `json:"pending,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// batchBudget divides a batch's wall-clock budget among its items at
// dispatch time rather than up front. Each item's slice is its fair
// share of the time actually left:
//
//	slice = left × min(lanes, remaining) / remaining
//
// With `remaining` items still to dispatch across `lanes` concurrent
// lanes, the items drain in about remaining/lanes sequential waves, so
// one wave's fair share of the remaining time is left/(remaining/lanes).
// For a single lane and a fresh budget this reduces to the classic
// budget/n split; the difference is that time an early item did not use
// is redistributed to later items instead of expiring with it. One
// pathological item still exhausts only its own slice — the division is
// what keeps a batch's failure modes per-item.
type batchBudget struct {
	mu        sync.Mutex
	deadline  time.Time
	remaining int // items not yet dispatched
	lanes     int // concurrent dispatch lanes
}

func newBatchBudget(deadline time.Time, items, lanes int) *batchBudget {
	return &batchBudget{deadline: deadline, remaining: items, lanes: lanes}
}

// next returns the deadline slice for the next dispatched item. It is
// never less than a millisecond, so even an expired batch produces
// well-formed per-item contexts (which cancel immediately through the
// parent anyway).
func (b *batchBudget) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	rem := b.remaining
	b.remaining--
	if rem < 1 {
		rem = 1
	}
	lanes := min(b.lanes, rem)
	slice := time.Until(b.deadline) * time.Duration(lanes) / time.Duration(rem)
	return max(slice, time.Millisecond)
}

// handleBatch optimizes a whole module with per-function fault isolation:
// the module is split once, each function becomes its own job with its
// own slice of the batch deadline, runs under its own panic guard, and
// quarantines its own source on failure. Admission reserves one queue
// slot per function, so a batch cannot starve single requests beyond its
// size and the counters balance item-for-item.
//
// Items are dispatched to the worker pool from up to Config.BatchParallel
// concurrent lanes, so a batch keeps several workers busy at once instead
// of trickling jobs one handler-side wait at a time. Results are
// collected per index and assembled in module order — parallelism is
// invisible in the response. Every item is dispatched even when the
// batch deadline has already expired: the worker observes the dead
// context, does the canceled accounting, and the queued counter drains
// to zero, which is what keeps admission accounting item-exact.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, ok := s.decodeOptimize(w, r, start)
	if !ok {
		return
	}
	lvl := s.observe()
	seed := requestSeed(req)
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining", start, lvl, seed)
		return
	}
	// Split structurally, not strictly: a function body the strict parser
	// rejects still becomes its own item (and its own per-item error)
	// instead of failing the whole module.
	mod, err := textir.ParseModule(req.Program)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, optimizeResponse{
			Error: err.Error(), Kind: "parse", ElapsedMS: msSince(start),
		})
		return
	}
	n := len(mod.Funcs)
	if r.URL.Query().Has("job") {
		s.handleBatchJob(w, r, req, mod, lvl, start, seed)
		return
	}
	if lvl >= overload.LevelCacheSingle {
		// Degraded: a batch is the widest work unit the service accepts,
		// so it is the first thing level 2 sheds — single requests and
		// cache hits keep flowing while modules wait out the pressure.
		// Shedding happens after the split so it stays item-exact: a shed
		// batch counts one shed item per function, same as a full queue.
		s.shed.Add(int64(n))
		s.reject(w, http.StatusTooManyRequests, "overload",
			fmt.Sprintf("server is shedding batch work (degrade level %d)", int(lvl)), start, lvl, seed)
		return
	}
	fuel, verify := s.optionsFor(req, lvl)
	if !s.admit(int64(n)) {
		s.shed.Add(int64(n))
		s.reject(w, http.StatusTooManyRequests, "overload",
			fmt.Sprintf("optimization queue cannot hold %d functions", n), start, lvl, seed)
		return
	}

	budget := s.budgetFor(req)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	lanes := min(s.cfg.BatchParallel, n)
	bb := newBatchBudget(time.Now().Add(budget), n, lanes)

	results := make([]outcome, n)
	elapsed := make([]int64, n)
	// conc.Parallel visits every index exactly once, and admit reserved n
	// queue slots, so every send below is non-blocking and every admitted
	// item reaches a worker — the accounting invariant does not depend on
	// deadlines or lane scheduling.
	_ = conc.Parallel(n, lanes, func(i int) error {
		if s.draining.Load() {
			// Drain arrived while this batch was mid-flight: stop feeding
			// the pool. The reserved slot is released and the admission
			// count rolled back, so "queued" still drains to exactly zero
			// and the outcome counters still sum to the requests counter —
			// the item is re-accounted as shed, and its result says
			// explicitly that it was refused, not silently dropped.
			s.queued.Add(-1)
			s.requests.Add(-1)
			s.shed.Add(1)
			results[i] = outcome{http.StatusServiceUnavailable, optimizeResponse{
				Error: "server is draining; batch item not dispatched", Kind: "draining",
				RetryAfterMS: s.retryAfterMS(lvl, overload.Seed(mod.Funcs[i].Name, req.Mode)),
			}}
			return nil
		}
		ictx, icancel := context.WithTimeout(ctx, bb.next())
		defer icancel()
		ireq := req
		ireq.Program = mod.Funcs[i].String()
		j := &job{
			ctx: ictx, req: ireq, done: make(chan outcome, 1), start: time.Now(),
			level: lvl, fuel: fuel, verify: verify,
		}
		s.jobs <- j
		select {
		case out := <-j.done:
			results[i] = out
		case <-ctx.Done():
			// The whole batch's deadline is gone; report this item as
			// abandoned. Its worker observes the same context, does the
			// canceled accounting, and completes into the buffered channel.
			results[i] = outcome{http.StatusGatewayTimeout, optimizeResponse{
				Error: fmt.Sprintf("batch abandoned: %v", ctx.Err()), Kind: "deadline", Canceled: true,
			}}
		}
		elapsed[i] = msSince(j.start)
		return nil
	})

	resp := batchResponse{Functions: n, Results: make([]batchResult, 0, n)}
	for i, out := range results {
		out.body.ElapsedMS = elapsed[i]
		resp.Results = append(resp.Results, batchResult{
			Name: mod.Funcs[i].Name, Status: out.status, optimizeResponse: out.body,
		})
		switch {
		case out.status == http.StatusOK && !out.body.FellBack:
			resp.Optimized++
		case out.status == http.StatusOK:
			resp.FellBack++
		default:
			resp.Failed++
		}
	}
	resp.ElapsedMS = msSince(start)
	writeJSON(w, http.StatusOK, resp)
}

// handleBatchJob is POST /optimize/batch?job=: the batch workload as a
// resumable job. Submission is idempotent — the job is content-
// addressed, so a client retrying a response it lost attaches to the
// in-flight (or finished) job instead of admitting the work twice. The
// handler waits for completion and answers the plain batch shape plus
// job_id; if the job's runner generation is cut short first (drain,
// shutdown) it answers 202 with the completed prefix and a pending
// count, and the client follows up with GET /jobs/{id}.
func (s *Server) handleBatchJob(w http.ResponseWriter, r *http.Request, req optimizeRequest, mod *textir.Module, lvl overload.Level, start time.Time, seed uint64) {
	n := len(mod.Funcs)
	fuel, verify := s.optionsFor(req, lvl)
	units := s.unitsFor(req, mod, fuel, verify)
	hdr := jobHeader{
		Type: "header", Mode: req.Mode, Fuel: fuel, Verify: verify,
		Canonical: req.Canonical, Created: time.Now(), Funcs: units,
	}
	hdr.ID = deriveJobID(hdr)
	js := s.jobStore.get(hdr.ID)
	if js == nil {
		if s.journalDegraded() {
			s.rejectDegradedJournal(w, start, lvl, seed)
			return
		}
		if !s.shedStream(w, n, lvl, start, seed) {
			return
		}
		var created bool
		js, created = s.createJob(hdr)
		if created {
			js.mu.Lock()
			js.running = true
			js.mu.Unlock()
			s.startRunner(js, s.jobsCtx, nil, true)
		} else {
			// Lost a create race: the winner's admission stands, refund ours.
			s.queued.Add(int64(-n))
			s.requests.Add(int64(-n))
			s.ensureRunner(js)
		}
	} else {
		// A job loaded from a journal holds key-only records until
		// resolved; without this an attach to a rebooted finished job
		// would answer done with every item still pending.
		if s.cache != nil {
			s.resolveRecorded(js)
		}
		s.ensureRunner(js)
	}

	for {
		_, done, running, notify := js.snapshotFollow(0)
		if done || !running {
			writeJSON(w, s.batchJobStatus(done), s.batchJobResponse(js, done, start))
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			// The client went away; the job keeps computing and the next
			// submission or GET /jobs/{id} picks the results up.
			return
		}
	}
}

func (s *Server) batchJobStatus(done bool) int {
	if done {
		return http.StatusOK
	}
	return http.StatusAccepted
}

// batchJobResponse assembles the batch shape from a job's completed
// items, in module order.
func (s *Server) batchJobResponse(js *jobState, done bool, start time.Time) batchResponse {
	js.mu.Lock()
	n := len(js.hdr.Funcs)
	resp := batchResponse{Functions: n, JobID: js.id, Results: make([]batchResult, 0, n)}
	for i := 0; i < n; i++ {
		out, ok := js.results[i]
		if !ok {
			resp.Pending++
			continue
		}
		resp.Results = append(resp.Results, batchResult{
			Name: js.hdr.Funcs[i].Name, Status: out.status, optimizeResponse: out.body,
		})
		switch {
		case out.status == http.StatusOK && !out.body.FellBack && !out.body.Canceled:
			resp.Optimized++
		case out.status == http.StatusOK:
			resp.FellBack++
		default:
			resp.Failed++
		}
	}
	js.mu.Unlock()
	resp.ElapsedMS = msSince(start)
	return resp
}
