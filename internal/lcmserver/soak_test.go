package lcmserver

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/faultify"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// TestSoakConcurrentRequests hammers the server from many goroutines with
// a mix of valid, invalid, fault-injected and deadline-doomed inputs.
// Under -race this is the tentpole's stress gate: no panic escapes, every
// response carries a known status, the outcome counters balance exactly
// against admissions, and the pool drains without leaking goroutines.
func TestSoakConcurrentRequests(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Config{Workers: 4, Queue: 8, Timeout: 2 * time.Second, Quarantine: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			ts.Close()
			s.Close()
		}
	}
	defer shutdown()

	big := bigProgram(t)
	faults := faultify.All()
	// A 3-function batch module: one healthy, one the strict parser
	// rejects, one healthy. Fault isolation must hold for every copy
	// under concurrency.
	batchModule := diamond + "\nfunc hole(a) {\ne:\n  zzz junk statement\n}\n\nfunc tail(q) {\ne:\n  out = q + q\n  print out\n  ret out\n}\n"
	const batchN = 3
	// A wide all-healthy module: twice the worker count, so its lanes
	// saturate the pool and parallel dispatch actually overlaps items of
	// the same batch while single requests and other batches interleave.
	var wide strings.Builder
	const wideN = 8
	for i := 0; i < wideN; i++ {
		fmt.Fprintf(&wide, "func w%d(a, b) {\ne:\n  x = a + b\n  y = a + b\n  print x\n  ret y\n}\n\n", i)
	}
	wideModule := wide.String()

	const goroutines = 8
	const perG = 21
	var c200, c400, c429, c504, cOther atomic.Int64
	// Item-level admission accounting: a batch admits (or sheds) one item
	// per function, so the server-side counters are audited against items,
	// not HTTP round trips.
	var itemsAdmitted, itemsShed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				if i%7 == 6 {
					// Batch lanes: per-item isolation under load. Odd
					// goroutines submit the wide all-healthy module, whose
					// items dispatch concurrently and fill the whole pool;
					// even ones the mixed module. Both must keep the
					// item-exact accounting below.
					module, modN := batchModule, batchN
					if g%2 == 1 {
						module, modN = wideModule, wideN
					}
					code, out := postBatch(t, ts, optimizeRequest{Program: module})
					switch code {
					case http.StatusOK:
						itemsAdmitted.Add(int64(modN))
						if len(out.Results) != modN {
							t.Errorf("batch returned %d results, want %d", len(out.Results), modN)
						}
						if out.Optimized+out.FellBack+out.Failed != modN {
							t.Errorf("batch aggregates do not cover the module: %+v", out)
						}
					case http.StatusTooManyRequests:
						itemsShed.Add(int64(modN))
					default:
						cOther.Add(1)
						t.Errorf("unexpected batch status %d: %+v", code, out)
					}
					continue
				}
				var req optimizeRequest
				switch i % 6 {
				case 0:
					req = optimizeRequest{Program: diamond}
				case 1:
					// A budget far below the work: must come back as 504,
					// promptly, without wedging a worker.
					req = optimizeRequest{Program: big, TimeoutMS: 1}
				case 2:
					req = optimizeRequest{Program: "garbage {{{"}
				case 3:
					// A buggy-compiler mutation of a random program: the
					// server may optimize, reject or fall back — never die.
					f := randprog.Generate(randprog.Config{
						Seed: rng.Int63(), MaxDepth: 3, MaxItems: 3, MaxStmts: 4,
						Vars: 6, Params: 3, MaxTrips: 3,
					})
					faults[rng.Intn(len(faults))].Apply(f)
					req = optimizeRequest{Program: textir.PrintFunctions([]*ir.Function{f})}
				case 4:
					req = optimizeRequest{Program: diamond, Fuel: 1}
				default:
					f := randprog.Generate(randprog.Config{
						Seed: rng.Int63(), MaxDepth: 3, MaxItems: 3, MaxStmts: 4,
						Vars: 6, Params: 3, MaxTrips: 3,
					})
					req = optimizeRequest{Program: textir.PrintFunctions([]*ir.Function{f}), Verify: true}
				}
				start := time.Now()
				code, out := postOptimize(t, ts, req)
				if elapsed := time.Since(start); elapsed > 15*time.Second {
					t.Errorf("request took %v, cancellation/budget bound broken", elapsed)
				}
				switch code {
				case http.StatusOK:
					c200.Add(1)
					itemsAdmitted.Add(1)
					if out.Program == "" {
						t.Errorf("200 without a program: %+v", out)
					}
				case http.StatusBadRequest:
					c400.Add(1)
					itemsAdmitted.Add(1)
				case http.StatusTooManyRequests:
					c429.Add(1)
					itemsShed.Add(1)
				case http.StatusGatewayTimeout:
					c504.Add(1)
					itemsAdmitted.Add(1)
				default:
					cOther.Add(1)
					t.Errorf("unexpected status %d: %+v", code, out)
				}
			}
		}(g)
	}
	wg.Wait()
	shutdown() // full drain: every admitted job is processed and accounted

	singles := int64(goroutines * perG * 6 / 7)
	if got := c200.Load() + c400.Load() + c429.Load() + c504.Load(); got != singles {
		t.Errorf("responses %d != single requests sent %d", got, singles)
	}
	if cOther.Load() != 0 {
		t.Errorf("unexpected statuses: %d", cOther.Load())
	}
	if s.panics.Load() != 0 {
		t.Errorf("panics escaped into the request guard: %d", s.panics.Load())
	}
	// Admission accounting, item for item: a batch item counts exactly
	// like a single request on both sides of the gate...
	if got := s.requests.Load(); got != itemsAdmitted.Load() {
		t.Errorf("server admitted %d items, client accounted %d", got, itemsAdmitted.Load())
	}
	if got := s.shed.Load(); got != itemsShed.Load() {
		t.Errorf("server shed %d items, client accounted %d", got, itemsShed.Load())
	}
	// ...and after the drain, every admitted item landed in exactly one
	// outcome bucket.
	sum := s.optimized.Load() + s.fellBack.Load() + s.canceled.Load() +
		s.invalid.Load() + s.panics.Load()
	if sum != itemsAdmitted.Load() {
		t.Errorf("outcome counters sum to %d, want %d (optimized=%d fell_back=%d canceled=%d invalid=%d panics=%d)",
			sum, itemsAdmitted.Load(), s.optimized.Load(), s.fellBack.Load(), s.canceled.Load(),
			s.invalid.Load(), s.panics.Load())
	}
	if s.queued.Load() != 0 || s.inflight.Load() != 0 {
		t.Errorf("drained pool still reports queued=%d inflight=%d", s.queued.Load(), s.inflight.Load())
	}

	// The drained server must not leak goroutines: workers exited with
	// Close, handler goroutines with ts.Close. Allow slack for the test
	// runtime's own background goroutines.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
