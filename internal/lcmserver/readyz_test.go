package lcmserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lazycm/internal/overload"
)

func getReadyz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyz: the readiness probe is 200 on a healthy server, 503 at
// degrade level 3 (all new work shedding), 200 again once the ladder
// recovers, and 503 while draining — and its tiny body always carries
// the degrade level so a gateway can bias routing without a full
// healthz parse.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	code, body := getReadyz(t, ts)
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("healthy server not ready: %d %v", code, body)
	}
	if body["degrade_level"] != float64(0) {
		t.Fatalf("healthy server reports degrade level %v", body["degrade_level"])
	}

	// Saturated samples walk the ladder to level 3 (one level per UpAfter
	// observations); the probe's own idle sample starts a down-streak but
	// cannot descend on its own.
	for i := 0; i < 8; i++ {
		s.ladder.Observe(overload.Sample{QueueFrac: 1})
	}
	code, body = getReadyz(t, ts)
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("level-3 server still ready: %d %v", code, body)
	}
	if body["degrade_level"] != float64(3) {
		t.Fatalf("level-3 server reports degrade level %v", body["degrade_level"])
	}

	// Idle samples recover the ladder; readiness returns with it.
	for i := 0; i < 16; i++ {
		s.ladder.Observe(overload.Sample{})
	}
	if code, body = getReadyz(t, ts); code != http.StatusOK {
		t.Fatalf("recovered server not ready: %d %v", code, body)
	}

	s.BeginDrain()
	code, body = getReadyz(t, ts)
	if code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("draining server still ready: %d %v", code, body)
	}
}
