package lcmserver

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lazycm/internal/cachestore"
)

// startServer is newTestServer without the deferred teardown, for tests
// that must stop a server mid-test (restart simulations).
func startServer(cfg Config) (*Server, *httptest.Server, func()) {
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	return s, ts, func() {
		ts.Close()
		s.Close()
	}
}

// entryFiles lists the durable tier's entry files under dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.ce"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestDiskCacheWarmStart: a clean outcome written through to the cache
// directory survives the process; a fresh server over the same directory
// serves it byte-identically from disk without running the pipeline.
func TestDiskCacheWarmStart(t *testing.T) {
	dir := t.TempDir()

	s1, ts1, stop1 := startServer(Config{Quarantine: "", CacheDir: dir})
	code, first := postOptimize(t, ts1, optimizeRequest{Program: diamond})
	if code != http.StatusOK || first.Error != "" {
		t.Fatalf("seed request failed: %d %q", code, first.Error)
	}
	if st := s1.Stats(); st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("write-through missing: DiskEntries=%d DiskBytes=%d", st.DiskEntries, st.DiskBytes)
	}
	if got := entryFiles(t, dir); len(got) != 1 {
		t.Fatalf("%d entry files on disk, want 1", len(got))
	}
	stop1() // the "crash": only the directory survives

	s2, ts2, stop2 := startServer(Config{Quarantine: "", CacheDir: dir})
	defer stop2()
	code, again := postOptimize(t, ts2, optimizeRequest{Program: diamond})
	if code != http.StatusOK {
		t.Fatalf("warm request failed: %d %q", code, again.Error)
	}
	if again.Program != first.Program {
		t.Fatalf("warm-start answer diverged:\n got %q\nwant %q", again.Program, first.Program)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Errorf("warm hit not served from disk: DiskHits=%d CacheHits=%d CacheMisses=%d",
			st.DiskHits, st.CacheHits, st.CacheMisses)
	}
	// The accounting invariant must hold across the tier: a disk hit is
	// an optimized request like any other.
	if st.Optimized != st.Requests {
		t.Errorf("accounting drifted: optimized=%d requests=%d", st.Optimized, st.Requests)
	}

	// The disk hit was promoted into memory: the next request must not
	// touch the disk tier again.
	postOptimize(t, ts2, optimizeRequest{Program: diamond})
	if st := s2.Stats(); st.DiskHits != 1 || st.CacheHits != 2 {
		t.Errorf("promotion missing: DiskHits=%d CacheHits=%d", st.DiskHits, st.CacheHits)
	}
}

// TestDiskCorruptionRecomputedNeverServed: an entry that rots on disk
// between boots reads as a miss, is counted and unlinked, and the
// request recomputes the identical clean answer.
func TestDiskCorruptionRecomputedNeverServed(t *testing.T) {
	dir := t.TempDir()
	_, ts1, stop1 := startServer(Config{Quarantine: "", CacheDir: dir})
	_, first := postOptimize(t, ts1, optimizeRequest{Program: diamond})
	stop1()

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d entry files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20 // disk rot: one flipped bit in the payload
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2, stop2 := startServer(Config{Quarantine: "", CacheDir: dir})
	defer stop2()
	code, again := postOptimize(t, ts2, optimizeRequest{Program: diamond})
	if code != http.StatusOK || again.Error != "" {
		t.Fatalf("request over corrupt cache failed: %d %q", code, again.Error)
	}
	if again.Program != first.Program {
		t.Fatalf("recomputed answer diverged:\n got %q\nwant %q", again.Program, first.Program)
	}
	st := s2.Stats()
	if st.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
	if st.DiskHits != 0 || st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Errorf("corrupt entry served: DiskHits=%d CacheHits=%d CacheMisses=%d",
			st.DiskHits, st.CacheHits, st.CacheMisses)
	}
	// The corrupt file was unlinked and the recomputed clean outcome
	// written through in its place: the entry on disk verifies again.
	healed, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("recomputed entry not re-persisted: %v", err)
	}
	key := filepath.Base(files[0])
	key = key[:len(key)-len(".ce")]
	if _, err := cachestore.Decode(key, healed); err != nil {
		t.Errorf("re-persisted entry fails verification: %v", err)
	}
}

// TestCacheGetEndpoint: GET /cache/{key} serves a held entry in the
// self-verifying wire format and answers authoritative 404s for misses
// and malformed keys.
func TestCacheGetEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Quarantine: ""})
	_, out := postOptimize(t, ts, optimizeRequest{Program: diamond})

	req := optimizeRequest{Program: diamond, Mode: "lcm"}
	key := cacheKey(req, s.effectiveFuel(req), false)

	resp, err := ts.Client().Get(ts.URL + "/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cache/%s = %d", key, resp.StatusCode)
	}
	payload, err := cachestore.Decode(key, body)
	if err != nil {
		t.Fatalf("wire entry failed verification: %v", err)
	}
	dec, ok := decodeOutcome(payload)
	if !ok || dec.body.Program != out.Program {
		t.Fatalf("wire entry decoded to %q, want %q", dec.body.Program, out.Program)
	}
	if s.Stats().PeerServed != 1 {
		t.Errorf("PeerServed = %d, want 1", s.Stats().PeerServed)
	}

	for _, bad := range []string{cacheKey(optimizeRequest{Program: "absent"}, 0, false), "not-a-key", "../etc/passwd"} {
		resp, err := ts.Client().Get(ts.URL + "/cache/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /cache/%s = %d, want 404", bad, resp.StatusCode)
		}
	}
}

// TestPeerFillServesRemoteHit: a local miss is filled from the peer that
// already computed the result — byte-identical, counted as a peer hit on
// the asker and a serve on the owner, and cached locally afterwards.
func TestPeerFillServesRemoteHit(t *testing.T) {
	owner, tsOwner := newTestServer(t, Config{Quarantine: ""})
	_, first := postOptimize(t, tsOwner, optimizeRequest{Program: diamond})

	asker, tsAsker := newTestServer(t, Config{
		Quarantine: "",
		Peers:      []string{tsOwner.URL},
	})
	code, got := postOptimize(t, tsAsker, optimizeRequest{Program: diamond})
	if code != http.StatusOK {
		t.Fatalf("peer-filled request failed: %d %q", code, got.Error)
	}
	if got.Program != first.Program {
		t.Fatalf("peer fill diverged:\n got %q\nwant %q", got.Program, first.Program)
	}
	st := asker.Stats()
	if st.PeerHits != 1 || st.CacheMisses != 0 || st.CacheHits != 0 {
		t.Errorf("fill not attributed to the peer tier: PeerHits=%d CacheHits=%d CacheMisses=%d",
			st.PeerHits, st.CacheHits, st.CacheMisses)
	}
	if st.Optimized != st.Requests {
		t.Errorf("accounting drifted: optimized=%d requests=%d", st.Optimized, st.Requests)
	}
	if owner.Stats().PeerServed != 1 {
		t.Errorf("owner PeerServed = %d, want 1", owner.Stats().PeerServed)
	}

	// The fill landed in the local cache: the repeat is a local hit, not
	// another network round trip.
	postOptimize(t, tsAsker, optimizeRequest{Program: diamond})
	if st := asker.Stats(); st.PeerHits != 1 || st.CacheHits != 1 {
		t.Errorf("fill not cached locally: PeerHits=%d CacheHits=%d", st.PeerHits, st.CacheHits)
	}
}

// TestPeerFillStrictlyFailOpen is the tier's core promise, proven the
// unpleasant way: with every configured peer hostile — one dead, one
// answering garbage, one stalled past the peer timeout — every request
// still succeeds via local compute. No user-visible error may originate
// in the cache tier.
func TestPeerFillStrictlyFailOpen(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("lcmcache1 this is not a valid entry at all"))
	}))
	defer garbage.Close()

	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	defer stalled.Close()

	s, ts := newTestServer(t, Config{
		Quarantine:  "",
		Peers:       []string{dead.URL, garbage.URL, stalled.URL},
		PeerTimeout: 30 * time.Millisecond,
	})

	const n = 6
	for i := 0; i < n; i++ {
		prog := fmt.Sprintf("func f%d(a, b) {\nentry:\n  x = a + b\n  ret x\n}\n", i)
		code, out := postOptimize(t, ts, optimizeRequest{Program: prog})
		if code != http.StatusOK || out.Error != "" {
			t.Fatalf("request %d surfaced a cache-tier failure: %d %q", i, code, out.Error)
		}
	}
	st := s.Stats()
	if st.PeerHits != 0 || st.PeerMisses != int64(n) {
		t.Errorf("hostile peers produced hits: PeerHits=%d PeerMisses=%d", st.PeerHits, st.PeerMisses)
	}
	if st.Optimized != int64(n) || st.CacheMisses != int64(n) {
		t.Errorf("local compute did not cover every request: Optimized=%d CacheMisses=%d", st.Optimized, st.CacheMisses)
	}
}

// TestPeerFillSkipsSelfRecursion: the /cache endpoint consults local
// tiers only, so two servers configured as each other's peers resolve a
// double miss with one round of fetches, not a recursion.
func TestPeerFillSkipsSelfRecursion(t *testing.T) {
	// Build both handlers before either knows its peer: a placeholder
	// proxy gives each server the other's eventual URL.
	var tsB *httptest.Server
	proxyB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tsB.Config.Handler.ServeHTTP(w, r)
	}))
	defer proxyB.Close()

	a, tsA := newTestServer(t, Config{Quarantine: "", Peers: []string{proxyB.URL}, PeerTimeout: 200 * time.Millisecond})
	b, tsB2 := newTestServer(t, Config{Quarantine: "", Peers: []string{tsA.URL}, PeerTimeout: 200 * time.Millisecond})
	tsB = tsB2

	// Both cold: the request to A misses locally, asks B, gets an
	// authoritative 404 (B does not ask A back), and computes.
	code, out := postOptimize(t, tsA, optimizeRequest{Program: diamond})
	if code != http.StatusOK || out.Error != "" {
		t.Fatalf("double-miss request failed: %d %q", code, out.Error)
	}
	if st := a.Stats(); st.PeerMisses != 1 || st.Optimized != 1 {
		t.Errorf("A: PeerMisses=%d Optimized=%d", st.PeerMisses, st.Optimized)
	}
	// B served an authoritative miss without recursing into A: its own
	// peer counters never moved.
	if st := b.Stats(); st.PeerHits != 0 || st.PeerMisses != 0 || st.Requests != 0 {
		t.Errorf("B recursed: PeerHits=%d PeerMisses=%d Requests=%d", st.PeerHits, st.PeerMisses, st.Requests)
	}
}
