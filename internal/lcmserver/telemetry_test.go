package lcmserver

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// TestHealthzSolverTelemetry: optimizing a large program must engage the
// solver's word-sliced parallel path and its sparse worklist, and both
// must surface as monotone counters on /healthz — the signal the fleet
// soak uses to prove the fast paths run under load instead of silently
// falling back to serial.
func TestHealthzSolverTelemetry(t *testing.T) {
	before := dataflow.Telemetry()
	// Generous budget: the program below is mid-sized but mode "opt" runs
	// the full multi-round pipeline, which can exceed the default 5s on a
	// loaded CI box.
	_, ts := newTestServer(t, Config{Timeout: 2 * time.Minute})

	// This shape engages both fast paths through mode "opt": ~270
	// candidate expressions (≥4 words wide → the LCM problems dispatch to
	// the word-sliced parallel strategy) and ~500+ statement nodes with a
	// narrow multi-word liveness universe (→ the DCE rounds dispatch to
	// the sparse worklist, whose partial-mask revisits record skipped
	// words).
	f := randprog.Generate(randprog.Config{
		Seed: 9, MaxDepth: 5, MaxItems: 3, MaxStmts: 6, Vars: 10, Params: 4, MaxTrips: 4,
	})
	if err := f.Validate(); err != nil {
		t.Fatalf("generated function invalid: %v", err)
	}
	prog := textir.PrintFunctions([]*ir.Function{f})
	code, out := postOptimize(t, ts, optimizeRequest{Program: prog, Mode: "opt"})
	if code != http.StatusOK || out.Error != "" {
		t.Fatalf("optimize status %d, err %q", code, out.Error)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	slices, ok := health["solver_parallel_slices"].(float64)
	if !ok {
		t.Fatalf("healthz missing solver_parallel_slices: %v", health)
	}
	skips, ok := health["solver_sparse_skips"].(float64)
	if !ok {
		t.Fatalf("healthz missing solver_sparse_skips: %v", health)
	}
	if int64(slices) <= before.ParallelSlices {
		t.Errorf("solver_parallel_slices did not advance: %v -> %v (parallel path never engaged)",
			before.ParallelSlices, slices)
	}
	if int64(skips) <= before.SparseSkips {
		t.Errorf("solver_sparse_skips did not advance: %v -> %v (sparse path never engaged)",
			before.SparseSkips, skips)
	}

	// The readiness probe carries the same gauges for the gateway's
	// fleet fold.
	resp2, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ready map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"solver_parallel_slices", "solver_sparse_skips"} {
		if _, ok := ready[k].(float64); !ok {
			t.Errorf("readyz missing %s: %v", k, ready)
		}
	}
}
