package lcmserver

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lazycm/internal/atomicio"
	"lazycm/internal/conc"
	"lazycm/internal/textir"
	"lazycm/internal/vfs"
)

// DefaultJobTTL is how long an unfinished (or finished-but-unclaimed)
// journaled job survives across restarts before boot expires it.
const DefaultJobTTL = time.Hour

// journalExt names on-disk job journals; atomicio's *.tmp partials in
// the same directory are swept at boot, so a crash mid-write can never
// wedge a restart.
const journalExt = ".journal"

// jobUnit is one function of a job: its name, its canonical source, and
// its function-granular cache key. Key is empty when the chunk fails
// the strict parser — such an item can never be served from cache, so
// its outcome is always journaled inline.
type jobUnit struct {
	Name string `json:"name"`
	Key  string `json:"key,omitempty"`
	Src  string `json:"src"`
}

// jobHeader is the first journal line: everything needed to recompute
// the job from scratch after a crash. The resolved directives (fuel,
// verify — degrade-level dependent at admission time) are frozen here,
// so a resume runs under exactly the options the client was admitted
// with and cannot produce different results.
type jobHeader struct {
	Type      string    `json:"type"` // "header"
	ID        string    `json:"id"`
	Mode      string    `json:"mode"`
	Fuel      int       `json:"fuel"`
	Verify    bool      `json:"verify,omitempty"`
	Canonical bool      `json:"canonical,omitempty"`
	Created   time.Time `json:"created"`
	Funcs     []jobUnit `json:"funcs"`
}

// jobRecord is one post-header journal line: a per-function completion
// ("item") or the job-finished marker ("done"). Clean successes record
// only their cache key — the body lives in the durable result cache and
// is reloaded from there on resume, which is what makes "no completed
// function recomputes" provable from cache counters. Everything else
// (per-item failures) inlines its body.
type jobRecord struct {
	Type   string            `json:"type"`
	Index  int               `json:"index"`
	Status int               `json:"status,omitempty"`
	Key    string            `json:"key,omitempty"`
	Body   *optimizeResponse `json:"body,omitempty"`
}

// jobState is one batch/stream job's in-memory state. A persisted job
// outlives its submitting request (and, when journaled, the process);
// a transient job is the plumbing behind one /optimize/stream response
// and dies with it.
type jobState struct {
	id        string
	hdr       jobHeader
	persisted bool
	path      string // journal path; "" when not journaled

	mu      sync.Mutex
	file    vfs.File        // open journal append handle
	results map[int]outcome // completed items
	order   []int           // completion order, what stream followers replay
	// recorded maps journaled-but-unresolved clean items (known only by
	// cache key after a restart) until adopt/drop resolves them.
	recorded map[int]string
	running  bool // a runner generation is driving pending items
	done     bool
	doneCh   chan struct{}
	notify   chan struct{} // broadcast: closed+replaced on every state change
}

func newJobState(hdr jobHeader, persisted bool) *jobState {
	return &jobState{
		id: hdr.ID, hdr: hdr, persisted: persisted,
		results:  make(map[int]outcome, len(hdr.Funcs)),
		recorded: make(map[int]string),
		doneCh:   make(chan struct{}),
		notify:   make(chan struct{}),
	}
}

// broadcast wakes every follower; callers must hold mu.
func (js *jobState) broadcastLocked() {
	close(js.notify)
	js.notify = make(chan struct{})
}

// complete records one item's outcome: into memory, into the journal,
// and — when it is the last item — the done marker. Duplicate
// completions are dropped, which is what guarantees an item is
// journaled (and refunded, and counted) at most once no matter how many
// followers or generations observe it.
func (js *jobState) complete(i int, out outcome, inlineClean bool) bool {
	js.mu.Lock()
	if _, dup := js.results[i]; dup || js.done {
		js.mu.Unlock()
		return false
	}
	js.results[i] = out
	delete(js.recorded, i)
	js.order = append(js.order, i)
	if js.file != nil {
		rec := jobRecord{Type: "item", Index: i, Status: out.status}
		if key := js.hdr.Funcs[i].Key; key != "" && isCleanOutcome(out) && !inlineClean {
			rec.Key = key
		} else {
			body := out.body
			rec.Body = &body
		}
		appendJournalLine(js.file, rec)
	}
	finished := len(js.results) == len(js.hdr.Funcs)
	if finished {
		js.done = true
		if js.file != nil {
			appendJournalLine(js.file, jobRecord{Type: "done"})
			js.file.Close()
			js.file = nil
		}
	}
	js.broadcastLocked()
	js.mu.Unlock()
	if finished {
		close(js.doneCh)
	}
	return true
}

// adopt restores one journaled completion from the durable cache
// without re-journaling its item record (it is already on disk).
func (js *jobState) adopt(i int, out outcome) {
	js.mu.Lock()
	if _, dup := js.results[i]; !dup {
		js.results[i] = out
		js.order = append(js.order, i)
	}
	delete(js.recorded, i)
	finished := !js.done && len(js.results) == len(js.hdr.Funcs)
	if finished {
		js.done = true
		if js.file != nil {
			appendJournalLine(js.file, jobRecord{Type: "done"})
			js.file.Close()
			js.file = nil
		}
	}
	js.broadcastLocked()
	js.mu.Unlock()
	if finished {
		close(js.doneCh)
	}
}

// drop forgets a journaled completion whose cached body is gone (cache
// eviction or loss); the item recomputes like any pending one.
func (js *jobState) drop(i int) {
	js.mu.Lock()
	delete(js.recorded, i)
	js.mu.Unlock()
}

// settle ends one runner generation: pending items stay pending (the
// journal keeps the job resumable), followers are woken so they can
// tell their client to reconnect rather than hang.
func (js *jobState) settle() {
	js.mu.Lock()
	js.running = false
	if js.file != nil {
		js.file.Close()
		js.file = nil
	}
	js.broadcastLocked()
	js.mu.Unlock()
}

// pendingIndexes lists items with neither a result nor a journaled
// completion awaiting cache resolution.
func (js *jobState) pendingIndexes() []int {
	js.mu.Lock()
	defer js.mu.Unlock()
	var p []int
	for i := range js.hdr.Funcs {
		if _, ok := js.results[i]; ok {
			continue
		}
		if _, ok := js.recorded[i]; ok {
			continue
		}
		p = append(p, i)
	}
	return p
}

// isCleanOutcome mirrors decodeOutcome's semantic gate: only a clean
// success may round-trip through the durable cache.
func isCleanOutcome(out outcome) bool {
	return out.status == http.StatusOK && !out.body.FellBack && !out.body.Canceled &&
		out.body.Error == "" && out.body.Program != ""
}

// appendJournalLine appends one JSON record and syncs it. A torn append
// (crash mid-write) leaves a partial final line the journal reader
// drops — the item just recomputes, it can never resurrect garbage. A
// failed append (hostile disk) is likewise safe: the item's outcome
// still lives in memory for this generation, and after a crash it
// recomputes — journaling accelerates resume, it never gates results.
func appendJournalLine(f vfs.File, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if _, err := f.Write(b); err == nil {
		f.Sync()
	}
}

// jobStore registers live jobs by ID and owns the journal directory.
type jobStore struct {
	dir string
	ttl time.Duration
	fs  vfs.FS // the server's observed durable-path filesystem
	mu  sync.Mutex
	m   map[string]*jobState
}

func newJobStore(dir string, ttl time.Duration) *jobStore {
	if ttl <= 0 {
		ttl = DefaultJobTTL
	}
	return &jobStore{dir: dir, ttl: ttl, fs: vfs.OS, m: make(map[string]*jobState)}
}

func (st *jobStore) get(id string) *jobState {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[id]
}

// deriveJobID content-addresses a job: the same module under the same
// resolved directives is the same job, so a duplicate submission (a
// client retrying a request whose response it lost) attaches to the
// in-flight job instead of admitting the work twice.
func deriveJobID(hdr jobHeader) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%t|%d|%t", hdr.Mode, hdr.Canonical, hdr.Fuel, hdr.Verify)
	for _, u := range hdr.Funcs {
		h.Write([]byte{0})
		h.Write([]byte(u.Src))
	}
	return "j-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// unitsFor splits a module into job units. Each chunk that passes the
// strict parser is canonicalized and keyed function-granularly (the
// same entries single requests and other jobs hit); a chunk that does
// not keeps its loose source and no key — it will fail per-item in the
// worker exactly like a batch item does.
func (s *Server) unitsFor(req optimizeRequest, mod *textir.Module, fuel int, verify bool) []jobUnit {
	units := make([]jobUnit, len(mod.Funcs))
	for i, fd := range mod.Funcs {
		src := fd.String()
		u := jobUnit{Name: fd.Name, Src: src}
		if s.cache != nil {
			if fns, err := textir.Parse(src); err == nil && len(fns) == 1 {
				canon := fns[0].String()
				u.Src = canon
				u.Key = fnCacheKey(req, canon, fuel, verify)
			}
		}
		units[i] = u
	}
	return units
}

// createJob registers a new persisted job (journaled when a journal
// directory is configured) or returns the existing one for the same ID.
func (s *Server) createJob(hdr jobHeader) (*jobState, bool) {
	st := s.jobStore
	st.mu.Lock()
	defer st.mu.Unlock()
	if js := st.m[hdr.ID]; js != nil {
		return js, false
	}
	js := newJobState(hdr, true)
	if st.dir != "" {
		js.path = filepath.Join(st.dir, hdr.ID+journalExt)
		if b, err := json.Marshal(hdr); err == nil {
			// The header lands crash-atomically (tmp + fsync + rename): a
			// journal either names every function of its job or does not
			// exist. Item records are then plain syncs appended behind it.
			if err := atomicio.WriteFileFS(st.fs, js.path, append(b, '\n'), 0o644); err == nil {
				if f, err := st.fs.OpenFile(js.path, os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
					js.file = f
				}
			}
		}
	}
	st.m[hdr.ID] = js
	return js, true
}

// readJournal replays one journal file. It tolerates exactly the damage
// a crash can cause — a torn final line — by dropping undecodable
// trailing data; the affected item simply recomputes.
func readJournal(fsys vfs.FS, path string) (hdr jobHeader, items []jobRecord, finished bool, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return hdr, nil, false, err
	}
	r := bufio.NewReader(bytes.NewReader(data))
	first := true
	for {
		line, rerr := r.ReadBytes('\n')
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			if first {
				if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Type != "header" || len(hdr.Funcs) == 0 {
					return hdr, nil, false, fmt.Errorf("journal %s: bad header", path)
				}
				first = false
			} else {
				var rec jobRecord
				if jerr := json.Unmarshal(line, &rec); jerr != nil {
					break // torn append; nothing after it is reachable
				}
				switch rec.Type {
				case "item":
					if rec.Index >= 0 && rec.Index < len(hdr.Funcs) {
						items = append(items, rec)
					}
				case "done":
					finished = true
				}
			}
		}
		if rerr != nil {
			break
		}
	}
	if first {
		return hdr, nil, false, fmt.Errorf("journal %s: empty", path)
	}
	return hdr, items, finished, nil
}

// bootJobs scans the journal directory at startup: sweep *.tmp
// partials, expire journals past their TTL (and undecodable ones),
// register finished jobs for GET /jobs serving, and return unfinished
// ones for re-admission.
func (s *Server) bootJobs() []*jobState {
	st := s.jobStore
	if st == nil || st.dir == "" {
		return nil
	}
	if err := st.fs.MkdirAll(st.dir, 0o755); err != nil {
		return nil
	}
	atomicio.SweepTmpFS(st.fs, st.dir)
	ents, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var resumable []*jobState
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), journalExt) {
			continue
		}
		path := filepath.Join(st.dir, ent.Name())
		hdr, items, finished, err := readJournal(st.fs, path)
		if err != nil || time.Since(hdr.Created) > st.ttl {
			st.fs.Remove(path)
			s.jobsExpired.Add(1)
			continue
		}
		js := newJobState(hdr, true)
		js.path = path
		for _, rec := range items {
			if rec.Body != nil {
				js.results[rec.Index] = outcome{status: rec.Status, body: *rec.Body}
				js.order = append(js.order, rec.Index)
			} else if rec.Key != "" {
				js.recorded[rec.Index] = rec.Key
			}
		}
		if finished {
			js.done = true
			close(js.doneCh)
		}
		st.mu.Lock()
		st.m[hdr.ID] = js
		st.mu.Unlock()
		if !finished {
			resumable = append(resumable, js)
		}
	}
	return resumable
}

// resolveRecorded turns journaled clean completions back into served
// results by reloading their bodies from the durable cache — the step
// that makes a revived server answer already-computed functions without
// recomputation. An entry the cache lost is dropped back to pending and
// recomputes.
func (s *Server) resolveRecorded(js *jobState) {
	js.mu.Lock()
	recorded := make(map[int]string, len(js.recorded))
	for i, key := range js.recorded {
		recorded[i] = key
	}
	js.mu.Unlock()
	for i, key := range recorded {
		out, ok, corrupted := s.cache.get(key)
		if corrupted {
			s.cacheCorrupt.Add(1)
		}
		if ok {
			s.cacheHits.Add(1)
			js.adopt(i, out)
		} else {
			js.drop(i)
		}
	}
}

// ensureRunner starts a runner generation for an unfinished job that
// has none — the attach path (a reconnecting client) and the boot
// resume path share it. Items are admitted one by one, so a resumed job
// larger than the queue still drains through it.
func (s *Server) ensureRunner(js *jobState) {
	js.mu.Lock()
	if js.done || js.running || s.draining.Load() {
		js.mu.Unlock()
		return
	}
	if js.path != "" && js.file == nil {
		if f, err := s.jobStore.fs.OpenFile(js.path, os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			js.file = f
		}
	}
	js.running = true
	js.mu.Unlock()
	s.startRunner(js, s.jobsCtx, nil, false)
}

// startRunner launches one runner generation. The caller has already
// set js.running; budget, when non-nil, slices a live request's
// wall-clock across items (transient streams) — journaled generations
// instead give every item the full single-request budget, since a
// resumable job has no client waiting on a deadline.
func (s *Server) startRunner(js *jobState, ctx context.Context, budget *batchBudget, preAdmitted bool) {
	s.jobsActive.Add(1)
	s.jobsWG.Add(1)
	go s.runJob(ctx, js, budget, preAdmitted)
}

// admitOne reserves a single queue slot, waiting out a full queue —
// resumed work yields to live traffic instead of shedding it.
func (s *Server) admitOne(ctx context.Context) bool {
	for {
		if ctx.Err() != nil || s.draining.Load() {
			return false
		}
		if s.admit(1) {
			return true
		}
		t := time.NewTimer(5 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
	}
}

// runJob drives one job generation: resolve journaled completions from
// the durable cache, then dispatch every still-pending item through the
// worker pool. On drain or shutdown the reserved-but-undispatched slots
// are refunded (not shed — the journal keeps the items, a later
// generation completes them), which is what keeps per-item admission
// accounting summing exactly across server generations.
func (s *Server) runJob(ctx context.Context, js *jobState, budget *batchBudget, preAdmitted bool) {
	defer s.jobsWG.Done()
	defer s.jobsActive.Add(-1)
	defer js.settle()

	if s.cache != nil {
		s.resolveRecorded(js)
	}
	pending := js.pendingIndexes()
	if len(pending) == 0 {
		js.mu.Lock()
		finished := !js.done && len(js.results) == len(js.hdr.Funcs)
		if finished {
			js.done = true
			if js.file != nil {
				appendJournalLine(js.file, jobRecord{Type: "done"})
				js.file.Close()
				js.file = nil
			}
		}
		js.mu.Unlock()
		if finished {
			close(js.doneCh)
		}
		return
	}
	hdr := js.hdr
	lanes := min(s.cfg.BatchParallel, len(pending))
	_ = conc.Parallel(len(pending), lanes, func(k int) error {
		i := pending[k]
		stopped := ctx.Err() != nil || s.draining.Load()
		if stopped && js.persisted {
			if preAdmitted {
				// Refund the reserved slot: the item was neither dispatched
				// nor shed — it stays journaled and completes next generation.
				s.queued.Add(-1)
				s.requests.Add(-1)
			}
			return nil
		}
		if !preAdmitted && !s.admitOne(ctx) {
			return nil
		}
		ireq := optimizeRequest{
			Program: hdr.Funcs[i].Src, Mode: hdr.Mode, Canonical: hdr.Canonical,
		}
		slice := s.budgetFor(optimizeRequest{Mode: hdr.Mode})
		if budget != nil {
			slice = budget.next()
		}
		ictx, cancel := context.WithTimeout(ctx, slice)
		defer cancel()
		j := &job{
			ctx: ictx, req: ireq, done: make(chan outcome, 1), start: time.Now(),
			fuel: hdr.Fuel, verify: hdr.Verify,
		}
		// Even a stopped transient job dispatches (the worker observes the
		// dead context and does the canceled accounting), mirroring batch.
		s.jobs <- j
		out := <-j.done
		if js.persisted && out.body.Canceled {
			// A deadline loss is retryable: leave the item pending rather
			// than journaling a 504 — a later generation recomputes it.
			return nil
		}
		js.complete(i, out, s.inlineClean())
		return nil
	})
}

// inlineClean reports whether clean outcomes must be journaled with
// their bodies inline: without a durable cache tier — or while the
// disk-health tracker has it quarantined, when write-through is off —
// a key-only record could not be resolved after a restart.
func (s *Server) inlineClean() bool {
	return s.cache == nil || !s.cache.diskEnabled()
}
