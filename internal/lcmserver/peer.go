package lcmserver

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lazycm/internal/fleet"
	"lazycm/internal/lcmclient"
)

// peerGroup is the shared-cache tier's fleet half: on a local miss, ask
// the cache key's ring-owner neighbors for the entry before paying for
// the pipeline. The group is strictly fail-open by construction —
// every possible failure (peer down, slow past the tight per-peer
// timeout, breaker open, garbage bytes, integrity mismatch, semantic
// non-entry) is swallowed and reported as "no payload", after which the
// caller computes locally. The tier can therefore only ever make a
// request faster, never wrong and never failed.
type peerGroup struct {
	ring    *fleet.Ring
	peers   map[string]*fleet.Breaker
	ids     []string // insertion order, for stable reporting
	client  *http.Client
	timeout time.Duration
	consult int // how many ring-ordered neighbors one miss may ask
}

// peerConsult is how many neighbors a single local miss asks, in ring
// order from the key: the owner (most likely holder under affinity
// routing) plus one replica. More would trade tail latency for little
// extra hit rate.
const peerConsult = 2

// newPeerGroup builds the tier from the configured peer base URLs, or
// returns nil (a valid, never-fetching group) when none are configured.
func newPeerGroup(cfg Config) *peerGroup {
	pg := &peerGroup{
		peers:   make(map[string]*fleet.Breaker),
		ring:    fleet.NewRing(0),
		timeout: cfg.PeerTimeout,
		consult: peerConsult,
		client:  &http.Client{},
	}
	for _, raw := range cfg.Peers {
		id := strings.TrimRight(strings.TrimSpace(raw), "/")
		if id == "" {
			continue
		}
		if _, dup := pg.peers[id]; dup {
			continue
		}
		pg.peers[id] = fleet.NewBreaker(cfg.PeerBreaker)
		pg.ring.Add(id)
		pg.ids = append(pg.ids, id)
	}
	if len(pg.ids) == 0 {
		return nil
	}
	return pg
}

// fetch asks the key's ring-owner neighbors for the entry and returns
// the first verified payload, or nil when no peer could help. Each
// attempt runs under its own tight timeout carved from the request
// context and is gated by that peer's breaker, so a dead or partitioned
// peer costs at most one short stall before its breaker takes it out of
// the consult path entirely.
func (p *peerGroup) fetch(ctx context.Context, key string) []byte {
	if p == nil {
		return nil
	}
	order := p.ring.Pick(ringKeyOf(key), p.consult)
	for _, id := range order {
		if ctx.Err() != nil {
			return nil
		}
		br := p.peers[id]
		if !br.Allow() {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, p.timeout)
		payload, err := lcmclient.FetchCacheEntry(cctx, p.client, id, key)
		cancel()
		switch {
		case err == nil:
			br.Record(true)
			return payload
		case errors.Is(err, lcmclient.ErrCacheMiss):
			// An authoritative miss proves the peer alive; it just ran cold.
			br.Record(true)
		default:
			br.Record(false)
		}
	}
	return nil
}

// states reports each peer's breaker state for /healthz.
func (p *peerGroup) states() map[string]string {
	if p == nil {
		return nil
	}
	out := make(map[string]string, len(p.ids))
	for _, id := range p.ids {
		out[id] = p.peers[id].State().String()
	}
	return out
}

// ringKeyOf maps a cache key (hex sha256) onto the peer ring's circle.
// The key's leading 64 bits are already uniformly mixed, so they are
// the ring position; every fleet member computes the same mapping from
// the same key, which is what makes "ask the ring owner first" land on
// the node most likely to hold the entry.
func ringKeyOf(key string) uint64 {
	if len(key) < 16 {
		return 0
	}
	v, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 0
	}
	return v
}
