package lcmserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/ir"
	"lazycm/internal/lcmclient"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

// chaosCorpus generates n healthy single-function programs with stable
// names, returning both the source texts and the original functions for
// equivalence checking.
func chaosCorpus(t testing.TB, n int) ([]string, map[string]*ir.Function) {
	t.Helper()
	programs := make([]string, n)
	origs := make(map[string]*ir.Function, n)
	for i := 0; i < n; i++ {
		f := randprog.Generate(randprog.Config{
			Seed: int64(100 + i), MaxDepth: 3, MaxItems: 3, MaxStmts: 4,
			Vars: 6, Params: 3, MaxTrips: 3,
		})
		f.Name = fmt.Sprintf("chaos%d", i)
		if err := f.Validate(); err != nil {
			t.Fatalf("corpus function %d invalid: %v", i, err)
		}
		programs[i] = textir.PrintFunctions([]*ir.Function{f})
		origs[f.Name] = f
	}
	return programs, origs
}

// checkChaosBody is the soak's core safety assertion: every 200 body is
// a clean, validated program — never a partial rewrite, never a wrong
// answer — even though buggy passes, panics and corrupted cache reads
// were being injected the whole time. A sample of bodies is additionally
// re-verified behaviourally against the original function.
func checkChaosBody(t *testing.T, program string, origs map[string]*ir.Function, sample bool) {
	t.Helper()
	fns, err := textir.Parse(program)
	if err != nil {
		t.Errorf("200 body does not parse: %v\n%s", err, program)
		return
	}
	for _, f := range fns {
		if err := f.Validate(); err != nil {
			t.Errorf("200 body function %s invalid: %v", f.Name, err)
			continue
		}
		orig, ok := origs[f.Name]
		if !ok {
			t.Errorf("200 body carries unknown function %q", f.Name)
			continue
		}
		if sample {
			if err := verify.Equivalent(orig, f, 1, 3); err != nil {
				t.Errorf("200 body for %s is not equivalent to the input: %v", f.Name, err)
			}
		}
	}
}

// TestChaosSoak is the service-level chaos gate (run under -race in CI):
// with latency injection, context-ignoring worker stalls, induced
// panics, buggy-but-detectable passes spliced into pipelines, and cache
// corruption-on-read all firing at once, the server must keep every
// invariant it promises when healthy — exact outcome accounting, no
// goroutine leaks, quarantine still capturing, and every response either
// a clean optimized program or an honest error status.
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	qdir := os.Getenv("LCM_CHAOS_QUARANTINE")
	if qdir == "" {
		qdir = t.TempDir()
	}
	injector := chaos.New(chaos.Config{
		Seed:     42,
		LatencyP: 0.3, Latency: 2 * time.Millisecond,
		StallP: 0.05, Stall: 20 * time.Millisecond,
		PanicP:   0.05,
		FaultP:   0.2,
		CorruptP: 0.5,
	})
	s := NewServer(Config{
		Workers: 4, Queue: 16, Timeout: 2 * time.Second,
		Quarantine: qdir, Chaos: injector,
	})
	ts := httptest.NewServer(s.Handler())
	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			ts.Close()
			s.Close()
		}
	}
	defer shutdown()

	const nProgs = 6
	programs, origs := chaosCorpus(t, nProgs)

	iters := 40
	if testing.Short() {
		iters = 12
	}
	const goroutines = 6
	var itemsAdmitted, itemsShed, checked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%5 == 4 {
					// A 3-function batch module assembled from the corpus.
					module := strings.Join([]string{
						programs[(g+i)%nProgs], programs[(g+i+1)%nProgs], programs[(g+i+2)%nProgs],
					}, "\n")
					code, out := postBatch(t, ts, optimizeRequest{Program: module})
					switch code {
					case http.StatusOK:
						itemsAdmitted.Add(3)
						if len(out.Results) != 3 {
							t.Errorf("batch returned %d results, want 3", len(out.Results))
						}
						for _, res := range out.Results {
							switch res.Status {
							case http.StatusOK:
								checkChaosBody(t, res.Program, origs, checked.Add(1)%5 == 0)
							case http.StatusInternalServerError, http.StatusGatewayTimeout:
								// Contained panic or expired slice: honest
								// failure, no body to trust.
							default:
								t.Errorf("batch item status %d: %+v", res.Status, res)
							}
						}
					case http.StatusTooManyRequests:
						itemsShed.Add(3)
					default:
						t.Errorf("unexpected batch status %d: %+v", code, out)
					}
					continue
				}
				// Singles cycle through the corpus, so identical requests
				// recur and the (chaos-corrupted) cache stays hot.
				code, out := postOptimize(t, ts, optimizeRequest{Program: programs[(g*7+i)%nProgs]})
				switch code {
				case http.StatusOK:
					itemsAdmitted.Add(1)
					checkChaosBody(t, out.Program, origs, checked.Add(1)%5 == 0)
				case http.StatusTooManyRequests:
					itemsShed.Add(1)
				case http.StatusInternalServerError, http.StatusGatewayTimeout:
					itemsAdmitted.Add(1)
				default:
					t.Errorf("unexpected status %d: %+v", code, out)
				}
			}
		}(g)
	}
	wg.Wait()
	shutdown() // full drain: every admitted job processed and accounted

	// The injector actually fired; a soak that injected nothing proves
	// nothing.
	stats := injector.Stats()
	if stats["latencies"] == 0 || stats["faults"] == 0 {
		t.Errorf("chaos injector barely fired: %v", stats)
	}

	// Accounting stayed exact through the chaos: admissions match the
	// client's view item-for-item, every admitted item landed in exactly
	// one outcome bucket, and the queue drained to zero.
	if got := s.requests.Load(); got != itemsAdmitted.Load() {
		t.Errorf("server admitted %d items, client accounted %d", got, itemsAdmitted.Load())
	}
	if got := s.shed.Load(); got != itemsShed.Load() {
		t.Errorf("server shed %d items, client accounted %d", got, itemsShed.Load())
	}
	sum := s.optimized.Load() + s.fellBack.Load() + s.canceled.Load() +
		s.invalid.Load() + s.panics.Load()
	if sum != itemsAdmitted.Load() {
		t.Errorf("outcome counters sum to %d, want %d (optimized=%d fell_back=%d canceled=%d invalid=%d panics=%d)",
			sum, itemsAdmitted.Load(), s.optimized.Load(), s.fellBack.Load(), s.canceled.Load(),
			s.invalid.Load(), s.panics.Load())
	}
	if s.invalid.Load() != 0 {
		t.Errorf("healthy inputs were rejected as invalid %d times", s.invalid.Load())
	}
	if s.queued.Load() != 0 || s.inflight.Load() != 0 {
		t.Errorf("drained pool still reports queued=%d inflight=%d", s.queued.Load(), s.inflight.Load())
	}

	// Chaos-induced failures (fault-pass fallbacks, contained panics) are
	// real failures: quarantine must have captured seeds for them.
	if s.fellBack.Load()+s.panics.Load() == 0 {
		t.Error("chaos soak produced no fallbacks or contained panics; injection is not reaching the pipeline")
	}
	if s.quarantined.Load() == 0 {
		t.Error("no crashers captured: quarantine stopped working under chaos")
	}
	// Corrupted cache reads were detected, not served (checkChaosBody
	// would also have caught a served one as a parse/validate failure).
	if injector.Corruptions.Load() > 0 && s.cacheCorrupt.Load() == 0 {
		t.Errorf("injector corrupted %d reads but the checksum caught none", injector.Corruptions.Load())
	}

	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}

// TestChaosClientRecovers drives the hardened client against the worst
// reasonable service: a front that sheds the first attempts with
// 429/503 (with millisecond retry hints), then a real server with
// chaos injection behind it. The client's retry contract must deliver a
// valid optimized program within its attempt budget.
func TestChaosClientRecovers(t *testing.T) {
	injector := chaos.New(chaos.Config{
		Seed:     9,
		LatencyP: 0.5, Latency: time.Millisecond,
		PanicP:   0.1,
		FaultP:   0.3,
		CorruptP: 0.5,
	})
	s := NewServer(Config{Workers: 2, Timeout: 5 * time.Second, Quarantine: t.TempDir(), Chaos: injector})
	inner := s.Handler()
	var hits atomic.Int64
	front := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"kind": "overload", "retry_after_ms": 5, "elapsed_ms": 0})
		case 2:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"kind": "draining", "retry_after_ms": 5, "elapsed_ms": 0})
		default:
			inner.ServeHTTP(w, r)
		}
	})
	ts := httptest.NewServer(front)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	c := &lcmclient.Client{
		BaseURL: ts.URL, MaxAttempts: 12,
		BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		Budget: time.Minute,
	}
	resp, err := c.Optimize(t.Context(), lcmclient.Request{Program: diamond})
	if err != nil {
		t.Fatalf("client did not recover: %v (server saw %d attempts)", err, hits.Load())
	}
	if resp.Status != http.StatusOK || resp.Program == "" {
		t.Fatalf("recovered response malformed: %+v", resp)
	}
	if hits.Load() < 3 {
		t.Errorf("server saw %d attempts; the 429/503 front was not exercised", hits.Load())
	}
	fns, err := textir.Parse(resp.Program)
	if err != nil {
		t.Fatalf("recovered program does not parse: %v", err)
	}
	for _, f := range fns {
		if err := f.Validate(); err != nil {
			t.Errorf("recovered function invalid: %v", err)
		}
	}
}
