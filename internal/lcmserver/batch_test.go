package lcmserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"maps"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lazycm/internal/textir"
	"lazycm/internal/triage"
)

func postBatch(t testing.TB, ts *httptest.Server, req optimizeRequest) (int, batchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad batch response body: %v", err)
	}
	return resp.StatusCode, out
}

// batchModule is four functions: two healthy, one the strict parser
// rejects, one that trips the (test-injected) panic. Fault isolation
// means the healthy ones must come back optimized regardless.
const batchModule = diamond + `
func broken(a) {
e:
  zzz this is not a statement
}

func boom(a) {
e:
  print a
  ret
}

func ok2(m, n) {
top:
  s = m * n
  t = m * n
  print s
  ret t
}
`

// TestBatchFaultIsolation is the tentpole's acceptance scenario: a batch
// mixing valid, invalid and panic-inducing functions returns per-item
// results — healthy functions optimized, the panicking one contained and
// quarantined, the invalid one rejected — and the healthz counters
// balance exactly against the admitted items.
func TestBatchFaultIsolation(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Quarantine: dir,
		hook: func(req optimizeRequest) {
			if strings.Contains(req.Program, "boom") {
				panic("injected worker fault")
			}
		},
	})
	code, out := postBatch(t, ts, optimizeRequest{Program: batchModule})
	if code != http.StatusOK {
		t.Fatalf("batch status %d, want 200 (%+v)", code, out)
	}
	if out.Functions != 4 || len(out.Results) != 4 {
		t.Fatalf("functions=%d results=%d, want 4/4", out.Functions, len(out.Results))
	}
	if out.Optimized != 2 || out.Failed != 2 || out.FellBack != 0 {
		t.Fatalf("aggregate optimized=%d failed=%d fell_back=%d, want 2/2/0", out.Optimized, out.Failed, out.FellBack)
	}

	byName := map[string]batchResult{}
	for _, r := range out.Results {
		byName[r.Name] = r
	}

	// Healthy functions are optimized: the redundant recomputation is gone.
	for _, name := range []string{"f", "ok2"} {
		r := byName[name]
		if r.Status != http.StatusOK || r.Error != "" || r.FellBack {
			t.Errorf("%s: %+v, want clean 200", name, r)
		}
		if len(r.Applied) == 0 {
			t.Errorf("%s: no passes applied", name)
		}
		fns, err := textir.Parse(r.Program)
		if err != nil || len(fns) != 1 {
			t.Errorf("%s: result program bad: %v", name, err)
		}
	}
	if r := byName["f"]; strings.Count(r.Program, "a + b") >= strings.Count(diamond, "a + b") {
		t.Errorf("f not optimized:\n%s", r.Program)
	}

	// The unparseable function failed alone, classified as a parse error.
	if r := byName["broken"]; r.Status != http.StatusBadRequest || r.Kind != "parse" {
		t.Errorf("broken: %+v, want 400/parse", r)
	}

	// The panicking function was contained, classified and quarantined.
	r := byName["boom"]
	if r.Status != http.StatusInternalServerError || r.Kind != "panic" {
		t.Fatalf("boom: %+v, want 500/panic", r)
	}
	if r.Quarantined == "" {
		t.Fatal("panicking batch item was not quarantined")
	}
	got, err := os.ReadFile(r.Quarantined)
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if !strings.Contains(string(got), "func boom") || strings.Contains(string(got), "func f") {
		t.Errorf("quarantine captured the wrong item:\n%s", got)
	}
	if d := triage.ParseDirectives(string(got)); d.Mode != "lcm" {
		t.Errorf("quarantine directives = %+v", d)
	}

	// Counters: 4 admitted items, each in exactly one outcome bucket.
	if got := s.requests.Load(); got != 4 {
		t.Errorf("requests = %d, want 4", got)
	}
	waitFor(t, func() bool {
		return s.optimized.Load()+s.invalid.Load()+s.panics.Load()+s.fellBack.Load()+s.canceled.Load() == 4
	})
	if s.optimized.Load() != 2 || s.invalid.Load() != 1 || s.panics.Load() != 1 {
		t.Errorf("counters optimized=%d invalid=%d panics=%d, want 2/1/1",
			s.optimized.Load(), s.invalid.Load(), s.panics.Load())
	}
	if got := s.quarantined.Load(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
}

// TestBatchRejectsNonModule: a body with no module structure at all fails
// the batch as a whole, before admission.
func TestBatchRejectsNonModule(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, program := range []string{"", "not a module at all"} {
		body, _ := json.Marshal(optimizeRequest{Program: program})
		resp, err := ts.Client().Post(ts.URL+"/optimize/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("program %q: status %d, want 400", program, resp.StatusCode)
		}
	}
	if got := s.requests.Load(); got != 0 {
		t.Errorf("unadmittable batches counted as requests: %d", got)
	}
}

// TestBatchAdmissionIsAllOrNothing: a batch larger than the free queue is
// shed in full — it never wedges a prefix of its functions into the
// queue — and the shed counter accounts every item.
func TestBatchAdmissionIsAllOrNothing(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Workers: 1, Queue: 2, Timeout: time.Minute,
		hook: func(optimizeRequest) { <-release },
	})
	// Occupy the worker so queue slots stay scarce.
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	// One queue slot taken, one free: a 2-function batch must not fit.
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	code, _ := postBatch(t, ts, optimizeRequest{Program: diamond + "\nfunc g(q) {\ne:\n  print q\n  ret\n}\n"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch status %d, want 429", code)
	}
	if got := s.shed.Load(); got != 2 {
		t.Errorf("shed = %d, want 2 (every batch item)", got)
	}
	if got := s.queued.Load(); got != 1 {
		t.Errorf("queued = %d after shed batch, want 1 (no partial admission)", got)
	}
	// A single request still fits in the remaining slot.
	asyncOptimize(ts, diamond)
	waitFor(t, func() bool { return s.queued.Load() == 2 })
}

// asyncOptimize fires a single-optimize request from a background
// goroutine, ignoring the response; tests use it to occupy workers and
// queue slots.
func asyncOptimize(ts *httptest.Server, program string) {
	body, _ := json.Marshal(optimizeRequest{Program: program})
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
}

// TestBatchParallelDeterminism: parallel dispatch is invisible in the
// response. The same mixed module — healthy, unparseable and panicking
// functions — run through a parallel server and a strictly serial one
// yields the same results in the same (module) order, the same aggregate
// counts, and byte-identical quarantine captures.
func TestBatchParallelDeterminism(t *testing.T) {
	hook := func(req optimizeRequest) {
		if strings.Contains(req.Program, "boom") {
			panic("injected worker fault")
		}
	}
	dirPar, dirSer := t.TempDir(), t.TempDir()
	sPar, tsPar := newTestServer(t, Config{Workers: 4, BatchParallel: 4, Quarantine: dirPar, hook: hook})
	sSer, tsSer := newTestServer(t, Config{Workers: 1, BatchParallel: 1, Quarantine: dirSer, hook: hook})

	codePar, outPar := postBatch(t, tsPar, optimizeRequest{Program: batchModule})
	codeSer, outSer := postBatch(t, tsSer, optimizeRequest{Program: batchModule})
	if codePar != http.StatusOK || codeSer != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", codePar, codeSer)
	}
	if len(outPar.Results) != len(outSer.Results) {
		t.Fatalf("result counts %d != %d", len(outPar.Results), len(outSer.Results))
	}
	for i := range outPar.Results {
		p, q := outPar.Results[i], outSer.Results[i]
		if p.Name != q.Name {
			t.Errorf("result %d: order diverged, %q vs %q", i, p.Name, q.Name)
		}
		if p.Status != q.Status || p.Program != q.Program || p.FellBack != q.FellBack || p.Kind != q.Kind {
			t.Errorf("result %d (%s): parallel %+v != serial %+v", i, p.Name, p, q)
		}
	}
	if outPar.Optimized != outSer.Optimized || outPar.FellBack != outSer.FellBack || outPar.Failed != outSer.Failed {
		t.Errorf("aggregates diverged: parallel %d/%d/%d, serial %d/%d/%d",
			outPar.Optimized, outPar.FellBack, outPar.Failed,
			outSer.Optimized, outSer.FellBack, outSer.Failed)
	}

	// Both servers captured the same defects: identical file names
	// (content-hashed) with identical bytes.
	waitFor(t, func() bool { return sPar.quarantined.Load() == 1 && sSer.quarantined.Load() == 1 })
	readDir := func(dir string) map[string]string {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]string{}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			m[e.Name()] = string(b)
		}
		return m
	}
	capPar, capSer := readDir(dirPar), readDir(dirSer)
	if len(capPar) == 0 {
		t.Error("no quarantine captures")
	}
	if !maps.Equal(capPar, capSer) {
		t.Errorf("quarantine diverged:\nparallel %v\nserial %v", capPar, capSer)
	}
}

// TestBatchDeadlineRedistribution: time an early item does not use must
// flow to later items instead of expiring with it. One slow function at
// the end of a module of fast ones succeeds only if it inherits the
// budget its predecessors left behind — a fixed budget/n slice (the old
// scheme) would cancel it.
func TestBatchDeadlineRedistribution(t *testing.T) {
	const hold = 600 * time.Millisecond
	_, ts := newTestServer(t, Config{
		Workers: 1, Queue: 16, BatchParallel: 1, CacheSize: -1,
		hook: func(req optimizeRequest) {
			if strings.Contains(req.Program, "slowpoke") {
				time.Sleep(hold)
			}
		},
	})
	var b strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, "func fast%d(a, b) {\ne:\n  x = a + b\n  y = a + b\n  print x\n  ret y\n}\n\n", i)
	}
	b.WriteString("func slowpoke(a, b) {\ne:\n  x = a + b\n  y = a + b\n  print x\n  ret y\n}\n")

	// Ten items in 3s: a fixed split gives every item 300ms, under the
	// 600ms the slow item needs. Redistribution hands it the ~2.9s the
	// nine fast items left unspent.
	code, out := postBatch(t, ts, optimizeRequest{Program: b.String(), TimeoutMS: 3000})
	if code != http.StatusOK {
		t.Fatalf("batch status %d, want 200", code)
	}
	if out.Optimized != out.Functions || out.Failed != 0 {
		t.Fatalf("optimized=%d failed=%d of %d, want all optimized (slow item starved?)",
			out.Optimized, out.Failed, out.Functions)
	}
	last := out.Results[len(out.Results)-1]
	if last.Name != "slowpoke" || last.Status != http.StatusOK || last.Canceled {
		t.Errorf("slow item did not inherit unused budget: %+v", last)
	}
}

// TestBatchDeadlineSlices: a starved batch budget is divided among the
// items; every item reports its own deadline instead of the batch
// hanging, and the program that does come back is never a partial
// rewrite.
func TestBatchDeadlineSlices(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	module := bigProgram(t) + "\n" + strings.Replace(bigProgram(t), "func ", "func second_", 1)
	code, out := postBatch(t, ts, optimizeRequest{Program: module, TimeoutMS: 1})
	if code != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-item deadlines", code)
	}
	if out.Failed != out.Functions {
		t.Fatalf("failed=%d, want all %d items", out.Failed, out.Functions)
	}
	for _, r := range out.Results {
		if r.Status != http.StatusGatewayTimeout || !r.Canceled {
			t.Errorf("%s: %+v, want 504 deadline", r.Name, r.optimizeResponse)
		}
		if r.Program != "" {
			if _, err := textir.Parse(r.Program); err != nil {
				t.Errorf("%s: canceled item ships unparseable program: %v", r.Name, err)
			}
		}
	}
}
