package lcmserver

import (
	"net/http/httptest"
	"os"
	"path/filepath"

	"lazycm/internal/vfs"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lazycm/internal/chaos"
	"lazycm/internal/lcmclient"
)

// soakModule is six strict-clean functions; "pinhole" is the one each
// crashing generation pins in its worker hook so the kill provably lands
// mid-batch with work still pending.
const soakModule = diamond + `
func alpha(a, b) {
entry:
  x = a + b
  y = a + b
  ret y
}

func beta(a, b) {
entry:
  x = a * b
  y = a * b
  ret y
}

func pinhole(a, b) {
entry:
  x = a - b
  y = a - b
  ret y
}

func gamma(a, b) {
entry:
  x = a + b
  z = x * b
  w = x * b
  ret w
}

func delta(a, b) {
entry:
  p = a % b
  q = a % b
  print p
  ret q
}
`

// TestResumeSoakKillMidBatch is the crash-restart soak for resumable
// streaming jobs: a client streams a six-function module through a
// chaos proxy while the server behind it is killed mid-batch twice.
// Each revived generation runs over the same journal and durable-cache
// directories; the client cures every interruption by resuming the job.
// The test proves, from counters, that no completed function was ever
// recomputed, that per-item admission accounting balances inside every
// server generation, and that the final module is byte-identical to an
// uninterrupted run.
//
// Set LCM_RESUME_DIR to keep the journal and durable-cache directories
// on disk for CI artifacts; otherwise they live in the test tempdir.
func TestResumeSoakKillMidBatch(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	if root := os.Getenv("LCM_RESUME_DIR"); root != "" {
		jdir, cdir = filepath.Join(root, "journal"), filepath.Join(root, "cache")
		for _, d := range []string{jdir, cdir} {
			// A stale journal from a previous run would let the job attach
			// to an already-finished generation and skew every counter.
			if err := os.RemoveAll(d); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
	}
	const n = 6

	// Reference result from an untouched node. Created before the
	// goroutine baseline: it outlives the soak (cleaned up by t.Cleanup),
	// so its pool must not count against the leak check.
	_, refTS := newTestServer(t, Config{Quarantine: ""})
	code, want := postOptimize(t, refTS, optimizeRequest{Program: soakModule})
	if code != 200 {
		t.Fatalf("reference optimize: %d", code)
	}
	baseline := runtime.NumGoroutine()

	mkServer := func(pin chan struct{}) *Server {
		cfg := Config{Workers: 2, Queue: 16, JournalDir: jdir, CacheDir: cdir, Quarantine: ""}
		if pin != nil {
			cfg.hook = func(req optimizeRequest) {
				if strings.Contains(req.Program, "func pinhole(") {
					<-pin
				}
			}
		}
		return NewServer(cfg)
	}

	// The chaos proxy owns the only listener: server generations swap in
	// behind a stable URL, exactly like a process restarting on its port.
	proxy := chaos.NewBackend(nil)
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	releaseA := make(chan struct{})
	a := mkServer(releaseA)
	proxy.SetHandler(a.Handler())

	// crash kills the node (new connections drop, live streams sever) and
	// then shuts the server down; the pinned worker is released only once
	// the job context is dead, so its item always ends canceled-pending.
	crash := func(s *Server, release chan struct{}) Stats {
		proxy.SetMode(chaos.BackendKilled)
		ts.CloseClientConnections()
		closed := make(chan struct{})
		go func() { s.Close(); close(closed) }()
		waitFor(t, func() bool { return s.jobsCtx.Err() != nil })
		close(release)
		<-closed
		return s.Stats()
	}
	revive := func(pin chan struct{}) *Server {
		s := mkServer(pin)
		proxy.SetHandler(s.Handler())
		proxy.SetMode(chaos.BackendHealthy)
		return s
	}

	// The client under test: real backoff, enough attempts to ride out
	// each revive window, budget far beyond the whole soak.
	client := &lcmclient.Client{
		BaseURL:     ts.URL,
		MaxAttempts: 12,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Budget:      30 * time.Second,
	}
	var mu sync.Mutex
	seen := 0
	seenCh := make(chan int, n)
	type streamOut struct {
		res *lcmclient.StreamResult
		err error
	}
	outCh := make(chan streamOut, 1)
	go func() {
		res, err := client.StreamBatch(nil, lcmclient.Request{Program: soakModule}, lcmclient.StreamOptions{
			Resumable: true,
			OnItem: func(lcmclient.StreamItem) {
				mu.Lock()
				seen++
				seenCh <- seen
				mu.Unlock()
			},
		})
		outCh <- streamOut{res, err}
	}()
	waitSeen := func(k int) {
		t.Helper()
		deadline := time.After(20 * time.Second)
		for {
			select {
			case s := <-seenCh:
				if s >= k {
					return
				}
			case out := <-outCh:
				t.Fatalf("stream ended early (seen<%d): res=%+v err=%v", k, out.res, out.err)
			case <-deadline:
				t.Fatalf("soak stalled waiting for %d items", k)
			}
		}
	}

	// Generation A: kill once at least two functions have streamed back.
	waitSeen(2)
	aStats := crash(a, releaseA)
	if sum := aStats.Optimized + aStats.FellBack + aStats.Canceled + aStats.Invalid + aStats.Panics; sum != aStats.Requests {
		t.Errorf("gen A outcome sum %d != requests %d", sum, aStats.Requests)
	}
	aDone := aStats.Optimized
	if aDone < 2 || aDone > n-1 {
		t.Errorf("gen A optimized %d, want within [2,%d] (pinhole can never finish there)", aDone, n-1)
	}

	// Generation B: same journal, same pin. It must adopt every function
	// A finished straight from the durable cache and compute only fresh
	// ones; the second kill lands once everything but pinhole is done.
	releaseB := make(chan struct{})
	b := revive(releaseB)
	// Don't pull the rug until the client has actually resumed onto B and
	// everything except the pinned function has streamed back — otherwise
	// the whole generation can fit inside one client backoff window.
	waitFor(t, func() bool { return b.Stats().StreamClients >= 1 })
	waitSeen(n - 1)
	bStats := crash(b, releaseB)
	if bStats.JobsResumed != 1 {
		t.Errorf("gen B jobs_resumed = %d, want 1", bStats.JobsResumed)
	}
	if bStats.CacheHits != aDone {
		t.Errorf("gen B cache hits = %d, want %d (every gen-A completion adopted, none recomputed)", bStats.CacheHits, aDone)
	}
	if bStats.Optimized != int64(n-1)-aDone {
		t.Errorf("gen B optimized = %d, want %d", bStats.Optimized, int64(n-1)-aDone)
	}
	if sum := bStats.Optimized + bStats.FellBack + bStats.Canceled + bStats.Invalid + bStats.Panics; sum != bStats.Requests {
		t.Errorf("gen B outcome sum %d != requests %d", sum, bStats.Requests)
	}

	// Generation C: no pin. It adopts the n-1 journaled completions and
	// computes exactly the one function no generation ever finished.
	c := revive(nil)
	out := <-outCh
	if out.err != nil {
		t.Fatalf("StreamBatch: %v", out.err)
	}
	res := out.res
	cStats := c.Stats()
	if cStats.JobsResumed != 1 {
		t.Errorf("gen C jobs_resumed = %d, want 1", cStats.JobsResumed)
	}
	if cStats.CacheHits != n-1 || cStats.Optimized != 1 || cStats.Requests != 1 {
		t.Errorf("gen C hits/optimized/requests = %d/%d/%d, want %d/1/1",
			cStats.CacheHits, cStats.Optimized, cStats.Requests, n-1)
	}
	if total := aStats.Optimized + bStats.Optimized + cStats.Optimized; total != n {
		t.Errorf("functions computed across generations = %d, want %d (each exactly once)", total, n)
	}

	// Client-visible contract: every interruption was cured by resuming,
	// and the result is indistinguishable from an uninterrupted run.
	if res.Reconnects < 2 {
		t.Errorf("reconnects = %d, want >= 2 (two kills were injected)", res.Reconnects)
	}
	if res.Functions != n || res.Optimized != n || res.Failed != 0 {
		t.Errorf("stream result %d/%d optimized, %d failed; want %d/%d and 0", res.Optimized, res.Functions, res.Failed, n, n)
	}
	if res.Program != want.Program {
		t.Errorf("resumed module diverges from uninterrupted run:\n got: %q\nwant: %q", res.Program, want.Program)
	}
	if res.JobID == "" {
		t.Fatal("no job ID on a resumable stream")
	}
	if _, recs, finished, err := readJournal(vfs.OS, filepath.Join(jdir, res.JobID+journalExt)); err != nil || !finished || len(recs) != n {
		t.Errorf("final journal: records=%d finished=%v err=%v; want %d/true/nil", len(recs), finished, err, n)
	}
	// Everything drains: no follower, runner, or connection goroutines
	// survive the soak. The proxy listener closes first (severing idle
	// client connections), then the final server generation.
	waitFor(t, func() bool { return c.Stats().StreamClients == 0 })
	ts.Close()
	c.Close()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+5 })
}
