package lcmserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	iofs "io/fs"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"lazycm/internal/vfs"
)

// TestDiskHealthTrip: the breaker trips only once TripAfter faults are
// present AND the windowed rate crosses TripFrac — a single fault on a
// busy disk never quarantines the tier.
func TestDiskHealthTrip(t *testing.T) {
	h := newDiskHealth(DiskHealthConfig{Window: 8, TripAfter: 4, TripFrac: 0.5, ProbeAfter: 2})

	// A healthy stretch, then one fault: rate is 1/5, count is 1 — no trip.
	for i := 0; i < 4; i++ {
		h.record(vfs.OpWrite, nil)
	}
	h.record(vfs.OpWrite, syscall.EIO)
	if h.Disabled() {
		t.Fatal("one fault in a healthy window must not trip the breaker")
	}

	// Sustained faults: count reaches TripAfter with rate >= 1/2 — trip.
	for i := 0; i < 3 && !h.Disabled(); i++ {
		h.record(vfs.OpWrite, syscall.ENOSPC)
	}
	if !h.Disabled() {
		t.Fatal("sustained faults must trip the breaker")
	}
	if got := h.Transitions(); got != 1 {
		t.Fatalf("Transitions = %d, want 1", got)
	}
	// Faults keep counting per class while disabled (monotonic totals).
	h.record(vfs.OpSync, syscall.EIO)
	fw, _, fsy, _ := h.Faults()
	if fw == 0 || fsy != 1 {
		t.Fatalf("Faults write=%d sync=%d, want >0 and 1", fw, fsy)
	}
}

// TestDiskHealthNotExistIsNotAFault: cache misses and O_EXCL dedupe are
// protocol, not disk sickness — fs.ErrNotExist and fs.ErrExist must
// never move the breaker.
func TestDiskHealthNotExistIsNotAFault(t *testing.T) {
	h := newDiskHealth(DiskHealthConfig{Window: 8, TripAfter: 2, TripFrac: 0.1})
	for i := 0; i < 32; i++ {
		h.record(vfs.OpStat, iofs.ErrNotExist)
		h.record(vfs.OpCreate, iofs.ErrExist)
	}
	if h.Disabled() {
		t.Fatal("not-exist/exist outcomes tripped the breaker")
	}
	fw, fr, fsy, frn := h.Faults()
	if fw+fr+fsy+frn != 0 {
		t.Fatalf("Faults = %d/%d/%d/%d, want all zero", fw, fr, fsy, frn)
	}
}

// TestDiskHealthProbeHysteresis: re-enable needs ProbeAfter consecutive
// clean probes; any failed probe resets the streak, and probes while
// the tier is healthy are ignored.
func TestDiskHealthProbeHysteresis(t *testing.T) {
	h := newDiskHealth(DiskHealthConfig{Window: 4, TripAfter: 2, TripFrac: 0.5, ProbeAfter: 3})

	// Probes while enabled must not accumulate a streak.
	h.recordProbe(true)
	h.recordProbe(true)
	h.recordProbe(true)
	if h.Disabled() {
		t.Fatal("probes while enabled flipped the breaker")
	}

	for i := 0; i < 4; i++ {
		h.record(vfs.OpRename, syscall.EIO)
	}
	if !h.Disabled() {
		t.Fatal("breaker did not trip")
	}

	h.recordProbe(true)
	h.recordProbe(true)
	h.recordProbe(false) // relapse: streak resets
	h.recordProbe(true)
	h.recordProbe(true)
	if !h.Disabled() {
		t.Fatal("breaker re-enabled without ProbeAfter consecutive successes")
	}
	h.recordProbe(true)
	if h.Disabled() {
		t.Fatal("three consecutive clean probes must re-enable the tier")
	}
	if got := h.Transitions(); got != 2 {
		t.Fatalf("Transitions = %d, want 2", got)
	}
}

// TestDiskHealthWindowResetOnTransition: faults recorded before a trip
// must not re-trip the tier right after a probe re-enables it — each
// regime starts from a clean window.
func TestDiskHealthWindowResetOnTransition(t *testing.T) {
	h := newDiskHealth(DiskHealthConfig{Window: 16, TripAfter: 4, TripFrac: 0.25, ProbeAfter: 1})
	for i := 0; i < 8; i++ {
		h.record(vfs.OpWrite, syscall.ENOSPC)
	}
	if !h.Disabled() {
		t.Fatal("breaker did not trip")
	}
	h.recordProbe(true)
	if h.Disabled() {
		t.Fatal("probe did not re-enable")
	}
	// One more fault: count 1 < TripAfter 4. If the pre-trip faults had
	// survived the transition this would trip immediately.
	h.record(vfs.OpWrite, syscall.ENOSPC)
	if h.Disabled() {
		t.Fatal("stale pre-trip faults re-tripped a freshly probed tier")
	}
}

// postBatchJob posts a module to /optimize/batch?job=1 and returns the
// raw status plus both decodings (batch shape for success, optimize
// shape for structured refusals).
func postBatchJob(t *testing.T, ts *httptest.Server, program string) (int, batchResponse, optimizeResponse) {
	t.Helper()
	body, err := json.Marshal(optimizeRequest{Program: program})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize/batch?job=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	var or optimizeResponse
	_ = json.Unmarshal(buf.Bytes(), &br)
	_ = json.Unmarshal(buf.Bytes(), &or)
	return resp.StatusCode, br, or
}

// fnVariant returns the diamond program under a distinct function name,
// so each variant is its own cache key and forces its own disk write.
func fnVariant(i int) string {
	return fmt.Sprintf(`func f%d(a, b, p) {
entry:
  br p t e
t:
  x = a + b
  jmp j
e:
  y = a + b
  jmp j
j:
  z = a + b
  ret z
}
`, i)
}

// TestServerDiskQuarantineAndRecovery is the end-to-end breaker story:
// a write storm quarantines the disk tier (requests keep answering 200
// from memory/compute, new ?job= submissions get the structured
// journal_degraded 503, attaching to an existing job still works), the
// storm clears, the background probe re-enables the tier, and new jobs
// are accepted again.
func TestServerDiskQuarantineAndRecovery(t *testing.T) {
	fault := vfs.NewFaultFS(vfs.OS, 21)
	s, ts := newTestServer(t, Config{
		Workers:    2,
		FS:         fault,
		CacheDir:   t.TempDir(),
		JournalDir: t.TempDir(),
		DiskHealth: DiskHealthConfig{
			Window: 16, TripAfter: 4, TripFrac: 0.25,
			ProbeInterval: 10 * time.Millisecond, ProbeAfter: 2,
		},
	})

	// A job submitted on a healthy disk: its journal exists, so attaching
	// later — even while degraded — must keep working.
	if code, br, _ := postBatchJob(t, ts, diamond); code != http.StatusOK || br.JobID == "" {
		t.Fatalf("healthy job submit: status %d, %+v", code, br)
	}

	// ENOSPC storm: every durable write fails until the breaker trips.
	fault.SetWindow(vfs.Window{WriteErrProb: 1, SyncErrProb: 1})
	for i := 0; i < 64 && !s.diskHealth.Disabled(); i++ {
		if code, out := postOptimize(t, ts, optimizeRequest{Program: fnVariant(i)}); code != http.StatusOK {
			t.Fatalf("optimize %d under write storm: status %d, %+v", i, code, out)
		}
	}
	if !s.diskHealth.Disabled() {
		t.Fatal("write storm did not quarantine the disk tier")
	}

	// Requests still answer 200 — the tier fails open to memory/compute.
	if code, out := postOptimize(t, ts, optimizeRequest{Program: diamond}); code != http.StatusOK {
		t.Fatalf("optimize while quarantined: status %d, %+v", code, out)
	}

	// New persisted jobs are refused with the structured 503.
	code, _, or := postBatchJob(t, ts, fnVariant(900))
	if code != http.StatusServiceUnavailable || or.Kind != "journal_degraded" {
		t.Fatalf("new job while degraded: status %d kind %q, want 503 journal_degraded", code, or.Kind)
	}
	if !or.JournalDegraded || or.RetryAfterMS <= 0 {
		t.Fatalf("degraded refusal missing contract fields: %+v", or)
	}

	// Attaching to the pre-storm job is not a new submission: still 200.
	if code, br, _ := postBatchJob(t, ts, diamond); code != http.StatusOK || br.JobID == "" {
		t.Fatalf("attach while degraded: status %d, %+v", code, br)
	}

	// Health surfaces the quarantine.
	if _, h := getHealthz(t, ts); h["disk_disabled"] != true || h["journal_degraded"] != true {
		t.Fatalf("healthz while degraded: disk_disabled=%v journal_degraded=%v", h["disk_disabled"], h["journal_degraded"])
	}
	if st := s.Stats(); !st.DiskDisabled || st.DiskFaultsWrite == 0 {
		t.Fatalf("Stats while degraded: %+v", st)
	}

	// Storm clears: the background probe re-enables the tier.
	fault.SetWindow(vfs.Window{})
	waitFor(t, func() bool { return !s.diskHealth.Disabled() })

	// New jobs are accepted again, and the flip count shows the round trip.
	if code, br, _ := postBatchJob(t, ts, fnVariant(901)); code != http.StatusOK || br.JobID == "" {
		t.Fatalf("job after recovery: status %d, %+v", code, br)
	}
	if got := s.diskHealth.Transitions(); got < 2 {
		t.Fatalf("Transitions = %d, want >= 2 (disable + re-enable)", got)
	}
	if _, h := getHealthz(t, ts); h["disk_disabled"] != false || h["journal_degraded"] != false {
		t.Fatalf("healthz after recovery: disk_disabled=%v journal_degraded=%v", h["disk_disabled"], h["journal_degraded"])
	}
}
