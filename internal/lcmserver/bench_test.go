package lcmserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// benchModule builds an all-healthy module of n moderately sized
// functions, each with hoistable redundancy, so batch wall-clock is
// dominated by real analysis work.
func benchModule(tb testing.TB, n int) string {
	tb.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		f := randprog.Generate(randprog.Config{
			Seed: int64(i + 1), MaxDepth: 4, MaxItems: 4, MaxStmts: 6,
			Vars: 10, Params: 4, MaxTrips: 4,
		})
		one := textir.PrintFunctions([]*ir.Function{f})
		b.WriteString(strings.Replace(one, "func ", fmt.Sprintf("func fn%d_", i), 1))
		b.WriteString("\n")
	}
	return b.String()
}

func benchBatch(b *testing.B, cfg Config, module string) {
	cfg.Workers = 8
	cfg.Queue = 64
	cfg.Timeout = time.Minute // measure throughput, not deadline slicing
	cfg.CacheSize = -1        // every iteration must do the work being measured
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, out := postBatch(b, ts, optimizeRequest{Program: module})
		if code != http.StatusOK || out.Optimized != out.Functions {
			b.Fatalf("batch degraded: status %d, %d/%d optimized (failed=%d)",
				code, out.Optimized, out.Functions, out.Failed)
		}
	}
}

// BenchmarkBatchServer measures a batch of 8 functions end to end over
// HTTP, serial dispatch (BatchParallel=1, the pre-parallel behavior)
// against full-width dispatch (8 lanes into 8 workers).
//
// The compute variants run real LCM pipelines, so their serial/parallel
// ratio tracks the host's core count (on a single-core machine they tie).
// The latency variants pin per-item cost to a 10ms worker-side stall on a
// trivial program, isolating what the batch rewrite itself buys: with
// serial dispatch the stalls serialize (~8×10ms per batch), with parallel
// dispatch they overlap (~10ms), independent of core count.
func BenchmarkBatchServer(b *testing.B) {
	compute := benchModule(b, 8)
	b.Run("compute/serial", func(b *testing.B) {
		benchBatch(b, Config{BatchParallel: 1}, compute)
	})
	b.Run("compute/parallel", func(b *testing.B) {
		benchBatch(b, Config{BatchParallel: 8}, compute)
	})

	var tiny strings.Builder
	for i := 0; i < 8; i++ {
		tiny.WriteString(strings.Replace(diamond, "func ", fmt.Sprintf("func fn%d_", i), 1))
		tiny.WriteString("\n")
	}
	stall := func(optimizeRequest) { time.Sleep(10 * time.Millisecond) }
	b.Run("latency/serial", func(b *testing.B) {
		benchBatch(b, Config{BatchParallel: 1, hook: stall}, tiny.String())
	})
	b.Run("latency/parallel", func(b *testing.B) {
		benchBatch(b, Config{BatchParallel: 8, hook: stall}, tiny.String())
	})
}

// warmTrace builds the request bodies of a replayed production trace:
// distinct real programs, each requested more than once, the shape a
// durable cache exists for.
func warmTrace(tb testing.TB, n int) [][]byte {
	tb.Helper()
	bodies := make([][]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		f := randprog.Generate(randprog.Config{
			Seed: int64(i + 1), MaxDepth: 4, MaxItems: 4, MaxStmts: 6,
			Vars: 10, Params: 4, MaxTrips: 4,
		})
		body, err := json.Marshal(map[string]string{"program": textir.PrintFunctions([]*ir.Function{f})})
		if err != nil {
			tb.Fatal(err)
		}
		bodies = append(bodies, body, body)
	}
	return bodies
}

// replayTrace drives the trace through a server's handler in-process.
func replayTrace(b *testing.B, s *Server, trace [][]byte) {
	h := s.Handler()
	for _, body := range trace {
		req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("trace request answered %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkFunctionCacheReplay measures what function-granular cache
// keys buy on the canonical editing workload: a request for a module in
// which exactly one function changed since the last request. cold is the
// module-granular world — any edit invalidates everything, all n
// functions recompute. edit replays the n-1 untouched functions from the
// per-function cache and computes only the edited one; every iteration
// is verified from the counters to be exactly n-1 hits and one miss.
func BenchmarkFunctionCacheReplay(b *testing.B) {
	const n = 8
	funcs := make([]string, n)
	for i := range funcs {
		f := randprog.Generate(randprog.Config{
			Seed: int64(i + 1), MaxDepth: 4, MaxItems: 4, MaxStmts: 6,
			Vars: 10, Params: 4, MaxTrips: 4,
		})
		one := textir.PrintFunctions([]*ir.Function{f})
		funcs[i] = strings.Replace(one, "func ", fmt.Sprintf("func fn%d_", i), 1)
	}
	module := strings.Join(funcs, "\n")
	// editions[i] is the module with function 0 swapped for a fresh body
	// no prior iteration has seen, so each request misses exactly once.
	edition := func(i int) string {
		f := randprog.Generate(randprog.Config{
			Seed: int64(1000 + i), MaxDepth: 4, MaxItems: 4, MaxStmts: 6,
			Vars: 10, Params: 4, MaxTrips: 4,
		})
		one := strings.Replace(textir.PrintFunctions([]*ir.Function{f}), "func ", "func fn0_", 1)
		return one + "\n" + strings.Join(funcs[1:], "\n")
	}
	post := func(b *testing.B, s *Server, program string) {
		b.Helper()
		body, err := json.Marshal(map[string]string{"program": program})
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("optimize answered %d: %s", rec.Code, rec.Body.String())
		}
	}
	cfg := Config{Workers: 4, Queue: 64, Timeout: time.Minute, Quarantine: ""}

	b.Run("cold", func(b *testing.B) {
		cold := cfg
		cold.CacheSize = -1
		s := NewServer(cold)
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, s, module)
		}
	})
	b.Run("edit", func(b *testing.B) {
		s := NewServer(cfg)
		defer s.Close()
		post(b, s, module) // warm all n functions
		editions := make([]string, b.N)
		for i := range editions {
			editions[i] = edition(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			before := s.Stats()
			post(b, s, editions[i])
			after := s.Stats()
			if hits, misses := after.CacheHits-before.CacheHits, after.CacheMisses-before.CacheMisses; hits != n-1 || misses != 1 {
				b.Fatalf("iteration %d: %d hits / %d misses, want %d/1 (only the edited function recomputes)",
					i, hits, misses, n-1)
			}
		}
	})
}

// BenchmarkWarmStart measures what the durable tier buys a rebooted
// server: one iteration boots a server and replays the same trace, cold
// over an empty cache directory (every program computes) versus warm
// over the directory a previous boot left behind (every program replays
// from verified disk entries). The delta is the restart cost the tier
// deletes.
func BenchmarkWarmStart(b *testing.B) {
	trace := warmTrace(b, 8)
	cfg := func(dir string) Config {
		return Config{Workers: 4, Queue: 64, Timeout: time.Minute, Quarantine: "", CacheDir: dir}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewServer(cfg(b.TempDir()))
			replayTrace(b, s, trace)
			s.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		seed := NewServer(cfg(dir))
		replayTrace(b, seed, trace)
		seed.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := NewServer(cfg(dir))
			replayTrace(b, s, trace)
			if s.Stats().DiskHits == 0 {
				b.Fatal("warm boot served nothing from disk")
			}
			s.Close()
		}
	})
}
