package lcmserver

import (
	"errors"
	iofs "io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/overload"
	"lazycm/internal/vfs"
)

// DiskHealthConfig tunes the self-quarantining disk tier: the sliding
// window the fault rate is measured over, the trip condition, and the
// background probe that re-enables the tier. The zero value takes the
// defaults below; soaks shrink everything to make transitions fast.
type DiskHealthConfig struct {
	// Window is how many recent filesystem operations the fault rate
	// is measured over; 0 means DefaultDiskWindow.
	Window int
	// TripFrac is the fault fraction of the window at or above which
	// the tier disables; 0 means DefaultDiskTripFrac.
	TripFrac float64
	// TripAfter is the minimum number of faults that must be present
	// in the window before the rate can trip — hysteresis against a
	// single fault on a quiet disk; 0 means DefaultDiskTripAfter.
	TripAfter int
	// ProbeInterval is the cadence of the background write/read/remove
	// probe while the tier is disabled; 0 means DefaultDiskProbeInterval.
	ProbeInterval time.Duration
	// ProbeAfter is how many consecutive probes must succeed before
	// the tier re-enables; 0 means DefaultDiskProbeAfter.
	ProbeAfter int
}

// Defaults for DiskHealthConfig. The window is small enough that a
// genuinely sick disk trips within a handful of requests, and the
// probe hysteresis (three clean probes) keeps a flapping disk from
// re-enabling on one lucky fsync.
const (
	DefaultDiskWindow        = 64
	DefaultDiskTripFrac      = 0.5
	DefaultDiskTripAfter     = 8
	DefaultDiskProbeInterval = time.Second
	DefaultDiskProbeAfter    = 3
)

func (c DiskHealthConfig) withDefaults() DiskHealthConfig {
	if c.Window <= 0 {
		c.Window = DefaultDiskWindow
	}
	if c.TripFrac <= 0 {
		c.TripFrac = DefaultDiskTripFrac
	}
	if c.TripAfter <= 0 {
		c.TripAfter = DefaultDiskTripAfter
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultDiskProbeInterval
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = DefaultDiskProbeAfter
	}
	return c
}

// diskHealth is the per-tier health tracker behind the self-quarantining
// disk: every filesystem operation on a durable path reports its
// outcome here (via vfs.Observe), a ring window measures the fault
// rate, and sustained faults disable the tier — the disk cache skips
// to memory+peer+compute, the journal refuses new persisted jobs —
// until the background probe has seen the disk healthy ProbeAfter
// times in a row. Same shape as the overload ladder: rate over a
// window to go up, a success streak (of probes) to come back down.
type diskHealth struct {
	cfg DiskHealthConfig

	mu     sync.Mutex
	ring   []bool // true = fault
	next   int
	filled int
	faults int
	probes int // consecutive successful probes while disabled

	disabled    atomic.Bool
	transitions atomic.Int64

	// Fault totals per class, monotonic, for /healthz.
	classFaults [vfs.NumClasses]atomic.Int64
}

func newDiskHealth(cfg DiskHealthConfig) *diskHealth {
	cfg = cfg.withDefaults()
	return &diskHealth{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// ioFault decides whether an operation outcome counts as a disk fault.
// Not-exist and already-exists are normal protocol (cache misses,
// O_EXCL dedupe, probe cleanup), never faults.
func ioFault(err error) bool {
	return err != nil && !errors.Is(err, iofs.ErrNotExist) && !errors.Is(err, iofs.ErrExist)
}

// record is the vfs.Observe callback: one outcome per filesystem
// operation on a durable path. It trips the breaker when the windowed
// fault rate crosses the configured threshold with enough faults
// present.
func (h *diskHealth) record(op vfs.Op, err error) {
	fault := ioFault(err)
	if fault {
		h.classFaults[op.Class()].Add(1)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ring[h.next] {
		h.faults--
	}
	h.ring[h.next] = fault
	if fault {
		h.faults++
	}
	h.next = (h.next + 1) % len(h.ring)
	if h.filled < len(h.ring) {
		h.filled++
	}
	if fault && !h.disabled.Load() &&
		h.faults >= h.cfg.TripAfter &&
		float64(h.faults) >= h.cfg.TripFrac*float64(h.filled) {
		h.disabled.Store(true)
		h.transitions.Add(1)
		h.resetWindowLocked()
	}
}

// recordProbe feeds one background-probe outcome. ProbeAfter
// consecutive successes while disabled re-enable the tier; any failure
// resets the streak. Probe outcomes never enter the op window — the
// window measures live traffic, the probe measures recovery.
func (h *diskHealth) recordProbe(ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.disabled.Load() {
		h.probes = 0
		return
	}
	if !ok {
		h.probes = 0
		return
	}
	h.probes++
	if h.probes >= h.cfg.ProbeAfter {
		h.probes = 0
		h.disabled.Store(false)
		h.transitions.Add(1)
		h.resetWindowLocked()
	}
}

// resetWindowLocked clears the op window on every transition so the
// next regime starts from a clean slate: stale faults cannot re-trip a
// freshly probed-healthy tier, and stale successes cannot mask a
// relapse.
func (h *diskHealth) resetWindowLocked() {
	for i := range h.ring {
		h.ring[i] = false
	}
	h.next, h.filled, h.faults = 0, 0, 0
}

// Disabled reports whether the disk tier is currently quarantined.
func (h *diskHealth) Disabled() bool { return h.disabled.Load() }

// Transitions reports how many disable/enable flips have happened.
func (h *diskHealth) Transitions() int64 { return h.transitions.Load() }

// Faults reports the monotonic per-class fault totals.
func (h *diskHealth) Faults() (write, read, sync, rename int64) {
	return h.classFaults[vfs.ClassWrite].Load(), h.classFaults[vfs.ClassRead].Load(),
		h.classFaults[vfs.ClassSync].Load(), h.classFaults[vfs.ClassRename].Load()
}

// diskProbeLoop runs the background active probe while the server is
// alive: whenever the tier is disabled, write/read/remove a probe file
// on the durable directory and feed the result to recordProbe. The
// probe goes through the deadline-bounded (but unobserved) filesystem,
// so a still-sick disk fails the probe instead of wedging it, and
// probe traffic never pollutes the live fault window.
func (s *Server) diskProbeLoop() {
	defer s.probeWG.Done()
	t := time.NewTicker(s.diskHealth.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.jobsCtx.Done():
			return
		case <-t.C:
			if s.diskHealth.Disabled() {
				s.diskHealth.recordProbe(s.diskProbe())
			}
		}
	}
}

// diskProbe performs one active write/read/remove round-trip against
// the first configured durable directory (the same probe shape as
// quarantineWritable, but through the vfs stack so injected faults and
// deadlines apply). Any error fails the probe.
func (s *Server) diskProbe() bool {
	dir := s.probeDir()
	if dir == "" {
		return true
	}
	fsys := s.rawFS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return false
	}
	path := filepath.Join(dir, ".disk-probe")
	const payload = "lcm-disk-probe"
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	_, werr := f.Write([]byte(payload))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		_ = fsys.Remove(path)
		return false
	}
	b, err := fsys.ReadFile(path)
	if err != nil || string(b) != payload {
		_ = fsys.Remove(path)
		return false
	}
	return fsys.Remove(path) == nil
}

// probeDir picks the directory the health probe exercises: the disk
// cache if configured, else the journal, else the quarantine.
func (s *Server) probeDir() string {
	switch {
	case s.cfg.CacheDir != "":
		return s.cfg.CacheDir
	case s.cfg.JournalDir != "":
		return s.cfg.JournalDir
	default:
		return s.cfg.Quarantine
	}
}

// journalDegraded reports whether new persisted (?job=) submissions
// must be refused: the journal depends on the disk, and the disk tier
// is quarantined. Existing journals keep replaying — their cached
// results live in memory and the durable cache, and a replay that
// cannot journal simply recomputes after the next boot.
func (s *Server) journalDegraded() bool {
	return s.jobStore != nil && s.jobStore.dir != "" && s.diskHealth.Disabled()
}

// rejectDegradedJournal refuses a new persisted job while the journal's
// disk is quarantined. The refusal is structured exactly like the load
// shed (Retry-After header, retry_after_ms body) plus journal_degraded
// so clients can tell "come back later" from "resubmit without ?job= —
// transient work is still flowing". Attaching to an existing job never
// reaches this: its journal is already on disk and replay costs nothing.
func (s *Server) rejectDegradedJournal(w http.ResponseWriter, start time.Time, lvl overload.Level, seed uint64) {
	ms := s.retryAfterMS(lvl, seed)
	w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
	writeJSON(w, http.StatusServiceUnavailable, optimizeResponse{
		Error:           "journal degraded: disk tier quarantined; retry later or resubmit without ?job=",
		Kind:            "journal_degraded",
		JournalDegraded: true,
		DegradeLevel:    int(lvl),
		RetryAfterMS:    ms,
		ElapsedMS:       msSince(start),
	})
}
