package lcmserver

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalTornWriteEveryPrefix proves the journal's crash contract
// byte by byte: a journal truncated at ANY offset — the exact damage a
// power cut mid-append can leave — boots a server that (a) never
// wedges, (b) never reports a completed function as uncompleted or
// wrong, and (c) never recomputes a function whose clean body is in the
// durable cache (CacheMisses stays zero across every boot). A prefix
// that does not even contain the header is expired at boot and its file
// removed — a journal either names its whole job or does not exist.
func TestJournalTornWriteEveryPrefix(t *testing.T) {
	cacheDir := t.TempDir()

	// Donor run: a 4-function job completes on a healthy disk, filling
	// the journal (key-only records — durable cache present) and the
	// shared durable cache every truncated boot will resolve from.
	var program strings.Builder
	const n = 4
	for i := 0; i < n; i++ {
		program.WriteString(fnVariant(i))
	}
	donorJdir := t.TempDir()
	donor := NewServer(Config{Workers: 2, JournalDir: donorJdir, CacheDir: cacheDir})
	donorTS := httptest.NewServer(donor.Handler())
	code, br, _ := postBatchJob(t, donorTS, program.String())
	if code != http.StatusOK || br.Pending != 0 || len(br.Results) != n {
		t.Fatalf("donor job: status %d, %+v", code, br)
	}
	jobID := br.JobID
	reference := make(map[string]string, n) // function name -> optimized program
	for _, res := range br.Results {
		if res.Status != http.StatusOK || res.Program == "" {
			t.Fatalf("donor item %s unclean: %+v", res.Name, res)
		}
		reference[res.Name] = res.Program
	}
	donorTS.Close()
	donor.Close()

	journalPath := filepath.Join(donorJdir, jobID+journalExt)
	full, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := strings.IndexByte(string(full), '\n') + 1
	if headerLen <= 0 {
		t.Fatal("donor journal has no header line")
	}

	step := 1
	if testing.Short() {
		step = 13
	}
	for cut := 0; cut <= len(full); cut += step {
		jdir := t.TempDir()
		path := filepath.Join(jdir, jobID+journalExt)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := NewServer(Config{Workers: 2, JournalDir: jdir, CacheDir: cacheDir})

		// The header is legible once its JSON is complete — the trailing
		// newline is not part of the contract (ReadBytes tolerates EOF).
		if cut < headerLen-1 {
			// No complete header: the job never legally existed. Boot must
			// expire the fragment, not wedge on it.
			if js := s.jobStore.get(jobID); js != nil {
				t.Fatalf("cut=%d: headerless journal registered a job", cut)
			}
			if got := s.jobsExpired.Load(); got != 1 {
				t.Fatalf("cut=%d: jobsExpired = %d, want 1", cut, got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cut=%d: headerless journal not removed: %v", cut, err)
			}
			s.Close()
			continue
		}

		js := s.jobStore.get(jobID)
		if js == nil {
			t.Fatalf("cut=%d: journal with intact header lost its job", cut)
		}
		// A prefix without the done marker resumes at boot; wait for that
		// generation (it resolves everything from the durable cache). A
		// prefix with the marker is done already — resolve like GET /jobs.
		select {
		case <-js.doneCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("cut=%d: resumed job did not finish — boot wedged", cut)
		}
		s.resolveRecorded(js)

		js.mu.Lock()
		results := make(map[int]outcome, len(js.results))
		for i, out := range js.results {
			results[i] = out
		}
		js.mu.Unlock()
		if len(results) != n {
			t.Fatalf("cut=%d: %d/%d items resolved", cut, len(results), n)
		}
		for i := 0; i < n; i++ {
			out := results[i]
			name := js.hdr.Funcs[i].Name
			if out.status != http.StatusOK || out.body.Program != reference[name] {
				t.Fatalf("cut=%d item %d (%s): status %d, program mismatch", cut, i, name, out.status)
			}
		}
		// The zero-recompute invariant: every intact item record resolved
		// from its journaled key, and every torn-off one was still a
		// function-granular cache hit — the pipeline never re-ran.
		if got := s.cacheMisses.Load(); got != 0 {
			t.Fatalf("cut=%d: CacheMisses = %d, want 0 — a completed function recomputed", cut, got)
		}
		s.Close()
	}
}
