package graph

import "lazycm/internal/ir"

// DomTree holds the immediate-dominator relation of a function's CFG,
// computed with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	f *ir.Function
	// idom[blockID] is the immediate dominator's block ID; the entry block
	// is its own idom.
	idom []int
	rpo  []int
}

// Dominators computes the dominator tree of f.
func Dominators(f *ir.Function) *DomTree {
	rpoBlocks := ReversePostorder(f)
	rpoNum := make([]int, f.NumBlocks())
	for i, b := range rpoBlocks {
		rpoNum[b.ID] = i
	}
	const undef = -1
	idom := make([]int, f.NumBlocks())
	for i := range idom {
		idom[i] = undef
	}
	entry := f.Entry()
	idom[entry.ID] = entry.ID

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpoBlocks {
			if b == entry {
				continue
			}
			newIdom := undef
			for _, p := range b.Preds() {
				if idom[p.ID] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = p.ID
				} else {
					newIdom = intersect(p.ID, newIdom)
				}
			}
			if newIdom != undef && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{f: f, idom: idom, rpo: rpoNum}
}

// IDom returns the immediate dominator of b, or nil for the entry block.
func (d *DomTree) IDom(b *ir.Block) *ir.Block {
	if b == d.f.Entry() {
		return nil
	}
	return d.f.Blocks[d.idom[b.ID]]
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	entryID := d.f.Entry().ID
	x := b.ID
	for {
		if x == a.ID {
			return true
		}
		if x == entryID {
			return false
		}
		x = d.idom[x]
	}
}
