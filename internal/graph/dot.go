package graph

import (
	"fmt"
	"strings"

	"lazycm/internal/ir"
)

// Dot renders the function's CFG in Graphviz DOT syntax, one record node
// per block with its statements, for debugging and documentation.
func Dot(f *ir.Function) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range f.Blocks {
		var lines []string
		lines = append(lines, blk.Name+":")
		for _, in := range blk.Instrs {
			lines = append(lines, "  "+in.String())
		}
		lines = append(lines, "  "+blk.Term.String())
		label := strings.Join(lines, "\\l") + "\\l"
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", blk.Name, label)
	}
	for _, blk := range f.Blocks {
		for i, n := 0, blk.NumSuccs(); i < n; i++ {
			attr := ""
			if blk.Term.Kind == ir.Branch {
				if i == 0 {
					attr = " [label=\"T\"]"
				} else {
					attr = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", blk.Name, blk.Succ(i).Name, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
