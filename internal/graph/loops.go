package graph

import (
	"sort"

	"lazycm/internal/ir"
)

// Loop is a natural loop: the set of blocks of the union of the natural
// loops of every back edge sharing a header.
type Loop struct {
	// Header is the loop header: the target of the back edges.
	Header *ir.Block
	// Blocks is the loop body including the header, sorted by block ID.
	Blocks []*ir.Block
	// Depth is the nesting depth: 1 for an outermost loop.
	Depth int
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i].ID >= b.ID })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// NaturalLoops finds the natural loops of f via back edges of the dominator
// tree. It returns loops sorted by header block ID, with nesting depths and
// parent links resolved. Irreducible control flow (a back-edge target that
// does not dominate its source) yields no loop for that edge; the random
// program generator only emits reducible graphs, and hand-written inputs
// with irreducible flow simply get fewer recognized loops — the analyses
// themselves do not depend on loop structure.
func NaturalLoops(f *ir.Function) []*Loop {
	dom := Dominators(f)
	bodies := make(map[*ir.Block]map[*ir.Block]bool) // header -> body set
	for _, b := range f.Blocks {
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			h := b.Succ(i)
			if !dom.Dominates(h, b) {
				continue // not a back edge
			}
			body := bodies[h]
			if body == nil {
				body = map[*ir.Block]bool{h: true}
				bodies[h] = body
			}
			// Walk predecessors backward from the latch until the header.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range x.Preds() {
					stack = append(stack, p)
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(bodies))
	for h, body := range bodies {
		l := &Loop{Header: h}
		for b := range body {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].ID < l.Blocks[j].ID })
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.ID < loops[j].Header.ID })

	// Resolve nesting: the parent of l is the smallest loop strictly
	// containing l's header that is not l itself.
	for _, l := range loops {
		var best *Loop
		for _, m := range loops {
			if m == l || !m.Contains(l.Header) {
				continue
			}
			if len(m.Blocks) <= len(l.Blocks) && m.Header != l.Header {
				// A distinct loop with the same or fewer blocks containing
				// our header must actually be larger; guard anyway.
			}
			if best == nil || len(m.Blocks) < len(best.Blocks) {
				best = m
			}
		}
		l.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// LoopDepths returns depth[blockID] = nesting depth of the innermost loop
// containing the block (0 if none).
func LoopDepths(f *ir.Function) []int {
	depth := make([]int, f.NumBlocks())
	for _, l := range NaturalLoops(f) {
		for _, b := range l.Blocks {
			if l.Depth > depth[b.ID] {
				depth[b.ID] = l.Depth
			}
		}
	}
	return depth
}
