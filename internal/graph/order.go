// Package graph provides control-flow-graph algorithms over ir.Function:
// traversal orders, dominators, natural loops, critical-edge splitting, and
// DOT export. These are the substrate the data-flow engine and the
// experiment harness are built on.
package graph

import "lazycm/internal/ir"

// Postorder returns the blocks of f in a depth-first postorder starting at
// entry. Successors are visited in terminator order, so the result is
// deterministic. Unreachable blocks (which Validate rejects anyway) are
// omitted.
func Postorder(f *ir.Function) []*ir.Block {
	seen := make([]bool, f.NumBlocks())
	out := make([]*ir.Block, 0, f.NumBlocks())

	// Iterative DFS with an explicit frame stack so deep CFGs cannot
	// overflow the goroutine stack.
	type frame struct {
		b *ir.Block
		i int
	}
	stack := []frame{{b: f.Entry()}}
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.i < fr.b.NumSuccs() {
			s := fr.b.Succ(fr.i)
			fr.i++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		out = append(out, fr.b)
		stack = stack[:len(stack)-1]
	}
	return out
}

// ReversePostorder returns the blocks of f in reverse postorder, the
// canonical iteration order for forward data-flow problems.
func ReversePostorder(f *ir.Function) []*ir.Block {
	po := Postorder(f)
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// RPONumbers returns rpo[blockID] = position of the block in reverse
// postorder.
func RPONumbers(f *ir.Function) []int {
	rpo := ReversePostorder(f)
	num := make([]int, f.NumBlocks())
	for i, b := range rpo {
		num[b.ID] = i
	}
	return num
}

// ExitBlocks returns the blocks whose terminator is a return, in function
// order.
func ExitBlocks(f *ir.Function) []*ir.Block {
	var out []*ir.Block
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.Ret {
			out = append(out, b)
		}
	}
	return out
}

// Edge identifies a CFG edge as (source block, successor slot).
type Edge struct {
	From *ir.Block
	// Index is the successor slot in From's terminator (0 for Jump/Then,
	// 1 for Else).
	Index int
}

// To returns the edge's destination block.
func (e Edge) To() *ir.Block { return e.From.Succ(e.Index) }

// Edges returns all CFG edges of f in deterministic (block, slot) order.
func Edges(f *ir.Function) []Edge {
	var out []Edge
	for _, b := range f.Blocks {
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			out = append(out, Edge{From: b, Index: i})
		}
	}
	return out
}

// IsCritical reports whether the edge leaves a block with several
// successors and enters a block with several predecessors. Code cannot be
// placed on such an edge without a synthetic block.
func IsCritical(e Edge) bool {
	return e.From.NumSuccs() > 1 && len(e.To().Preds()) > 1
}

// CriticalEdges returns the critical edges of f.
func CriticalEdges(f *ir.Function) []Edge {
	var out []Edge
	for _, e := range Edges(f) {
		if IsCritical(e) {
			out = append(out, e)
		}
	}
	return out
}

// SplitCriticalEdges inserts an empty block on every critical edge of f,
// recomputes CFG metadata, and returns the number of edges split. Split
// blocks are named "<from>.<to>.split" (made fresh if taken). This realizes
// the paper's assumption that synthetic nodes exist on all critical edges,
// so that insertions on an edge never execute on other paths.
func SplitCriticalEdges(f *ir.Function) int {
	crit := CriticalEdges(f)
	for _, e := range crit {
		to := e.To()
		name := f.FreshBlockName(e.From.Name + "." + to.Name + ".split")
		nb := f.AddBlock(name)
		nb.Term = ir.Terminator{Kind: ir.Jump, Then: to}
		e.From.SetSucc(e.Index, nb)
	}
	f.Recompute()
	return len(crit)
}
