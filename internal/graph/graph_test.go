package graph

import (
	"strings"
	"testing"

	"lazycm/internal/ir"
)

// buildDiamond: entry -> {then, else} -> join -> ret
func buildDiamond(t *testing.T) *ir.Function {
	t.Helper()
	return mustBuild(t, ir.NewBuilder("diamond", "c").
		Block("entry").Branch(ir.Var("c"), "then", "else").
		Block("then").Jump("join").
		Block("else").Jump("join").
		Block("join").RetVoid())
}

// buildLoop: entry -> head; head -> (body | exit); body -> head
func buildLoop(t *testing.T) *ir.Function {
	t.Helper()
	return mustBuild(t, ir.NewBuilder("loop", "c").
		Block("entry").Jump("head").
		Block("head").Branch(ir.Var("c"), "body", "exit").
		Block("body").Jump("head").
		Block("exit").RetVoid())
}

// buildNested: two-level nested loop.
func buildNested(t *testing.T) *ir.Function {
	t.Helper()
	return mustBuild(t, ir.NewBuilder("nested", "c", "d").
		Block("entry").Jump("h1").
		Block("h1").Branch(ir.Var("c"), "h2", "exit").
		Block("h2").Branch(ir.Var("d"), "b2", "latch1").
		Block("b2").Jump("h2").
		Block("latch1").Jump("h1").
		Block("exit").RetVoid())
}

func mustBuild(t *testing.T, bd *ir.Builder) *ir.Function {
	t.Helper()
	f, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func names(bs []*ir.Block) string {
	var ns []string
	for _, b := range bs {
		ns = append(ns, b.Name)
	}
	return strings.Join(ns, " ")
}

func TestPostorderDiamond(t *testing.T) {
	f := buildDiamond(t)
	po := Postorder(f)
	if len(po) != 4 {
		t.Fatalf("postorder len = %d", len(po))
	}
	// Entry must come last in postorder; join must precede then/else.
	if po[len(po)-1].Name != "entry" {
		t.Errorf("postorder = %s", names(po))
	}
	pos := map[string]int{}
	for i, b := range po {
		pos[b.Name] = i
	}
	if pos["join"] > pos["then"] || pos["join"] > pos["else"] {
		t.Errorf("join after branch arms: %s", names(po))
	}
}

func TestReversePostorder(t *testing.T) {
	f := buildDiamond(t)
	rpo := ReversePostorder(f)
	if rpo[0].Name != "entry" || rpo[len(rpo)-1].Name != "join" {
		t.Errorf("rpo = %s", names(rpo))
	}
	num := RPONumbers(f)
	for i, b := range rpo {
		if num[b.ID] != i {
			t.Errorf("RPONumbers[%s] = %d, want %d", b.Name, num[b.ID], i)
		}
	}
}

func TestPostorderDeterministic(t *testing.T) {
	f := buildNested(t)
	a := names(Postorder(f))
	for i := 0; i < 10; i++ {
		if got := names(Postorder(f)); got != a {
			t.Fatalf("postorder nondeterministic: %q vs %q", got, a)
		}
	}
}

func TestExitBlocks(t *testing.T) {
	f := buildLoop(t)
	ex := ExitBlocks(f)
	if len(ex) != 1 || ex[0].Name != "exit" {
		t.Errorf("ExitBlocks = %s", names(ex))
	}
}

func TestEdges(t *testing.T) {
	f := buildDiamond(t)
	es := Edges(f)
	if len(es) != 4 {
		t.Fatalf("edges = %d", len(es))
	}
	if es[0].From.Name != "entry" || es[0].To().Name != "then" {
		t.Errorf("edge 0 = %s->%s", es[0].From.Name, es[0].To().Name)
	}
	if es[1].From.Name != "entry" || es[1].To().Name != "else" {
		t.Errorf("edge 1 = %s->%s", es[1].From.Name, es[1].To().Name)
	}
}

func TestCriticalEdges(t *testing.T) {
	// entry branches to join directly (critical: entry has 2 succs, join 2 preds)
	f := mustBuild(t, ir.NewBuilder("crit", "c").
		Block("entry").Branch(ir.Var("c"), "mid", "join").
		Block("mid").Jump("join").
		Block("join").RetVoid())
	crit := CriticalEdges(f)
	if len(crit) != 1 || crit[0].From.Name != "entry" || crit[0].To().Name != "join" {
		t.Fatalf("critical edges wrong: %d", len(crit))
	}
	n := SplitCriticalEdges(f)
	if n != 1 {
		t.Fatalf("split %d edges", n)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(CriticalEdges(f)) != 0 {
		t.Fatal("critical edges remain after splitting")
	}
	// The new block must sit between entry and join.
	nb := f.Entry().Succ(1)
	if nb.Name == "join" || nb.Succ(0).Name != "join" {
		t.Fatalf("split block misplaced: %s", nb.Name)
	}
	if len(nb.Instrs) != 0 {
		t.Fatal("split block not empty")
	}
}

func TestSplitCriticalEdgesIdempotent(t *testing.T) {
	f := buildLoop(t)
	// head->exit edge: head has 2 succs; exit has 1 pred, so not critical.
	// head->body: body has 1 pred. No critical edges here.
	if n := SplitCriticalEdges(f); n != 0 {
		t.Fatalf("split %d edges in loop", n)
	}
	// Self-loop on head via branch creates a critical edge (head has 2
	// succs, head has 2 preds).
	g := mustBuild(t, ir.NewBuilder("self", "c").
		Block("entry").Jump("head").
		Block("head").Branch(ir.Var("c"), "head", "exit").
		Block("exit").RetVoid())
	if n := SplitCriticalEdges(g); n != 1 {
		t.Fatalf("self-loop split = %d", n)
	}
	if n := SplitCriticalEdges(g); n != 0 {
		t.Fatalf("second split = %d", n)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := buildDiamond(t)
	d := Dominators(f)
	entry := f.Entry()
	join := f.BlockByName("join")
	then := f.BlockByName("then")
	if d.IDom(entry) != nil {
		t.Error("entry has an idom")
	}
	if d.IDom(join) != entry {
		t.Errorf("idom(join) = %v", d.IDom(join).Name)
	}
	if d.IDom(then) != entry {
		t.Errorf("idom(then) = %v", d.IDom(then).Name)
	}
	if !d.Dominates(entry, join) || !d.Dominates(join, join) {
		t.Error("Dominates reflexive/entry wrong")
	}
	if d.Dominates(then, join) {
		t.Error("then should not dominate join")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := buildLoop(t)
	d := Dominators(f)
	head := f.BlockByName("head")
	body := f.BlockByName("body")
	exit := f.BlockByName("exit")
	if d.IDom(body) != head || d.IDom(exit) != head {
		t.Error("loop idoms wrong")
	}
	if !d.Dominates(head, body) {
		t.Error("head must dominate body")
	}
}

func TestNaturalLoops(t *testing.T) {
	f := buildLoop(t)
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "head" || l.Depth != 1 {
		t.Errorf("loop = %+v", l)
	}
	if !l.Contains(f.BlockByName("body")) || l.Contains(f.BlockByName("exit")) {
		t.Error("loop membership wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	f := buildNested(t)
	loops := NaturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		switch l.Header.Name {
		case "h1":
			outer = l
		case "h2":
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if outer.Depth != 1 || inner.Depth != 2 || inner.Parent != outer {
		t.Errorf("nesting wrong: outer depth %d, inner depth %d", outer.Depth, inner.Depth)
	}
	depths := LoopDepths(f)
	if depths[f.BlockByName("b2").ID] != 2 {
		t.Errorf("b2 depth = %d", depths[f.BlockByName("b2").ID])
	}
	if depths[f.BlockByName("entry").ID] != 0 {
		t.Error("entry in a loop?")
	}
	if depths[f.BlockByName("latch1").ID] != 1 {
		t.Errorf("latch1 depth = %d", depths[f.BlockByName("latch1").ID])
	}
}

func TestNoLoops(t *testing.T) {
	f := buildDiamond(t)
	if loops := NaturalLoops(f); len(loops) != 0 {
		t.Errorf("diamond has %d loops", len(loops))
	}
}

func TestDot(t *testing.T) {
	f := buildDiamond(t)
	s := Dot(f)
	for _, want := range []string{"digraph", `"entry" -> "then" [label="T"]`, `"entry" -> "else" [label="F"]`, `"then" -> "join"`} {
		if !strings.Contains(s, want) {
			t.Errorf("Dot missing %q:\n%s", want, s)
		}
	}
}

func TestPostorderDeepCFGNoOverflow(t *testing.T) {
	// A long chain exercises the iterative DFS.
	bd := ir.NewBuilder("chain")
	const n = 20000
	for i := 0; i < n; i++ {
		bd.Block(blockName(i))
		if i == n-1 {
			bd.RetVoid()
		} else {
			bd.Jump(blockName(i + 1))
		}
	}
	f := mustBuild(t, bd)
	po := Postorder(f)
	if len(po) != n {
		t.Fatalf("postorder len = %d", len(po))
	}
	if po[0].Name != blockName(n-1) {
		t.Errorf("first postorder = %s", po[0].Name)
	}
}

func blockName(i int) string {
	return "b" + string(rune('A'+i/1000%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
