package graph

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/randprog"
)

// bruteDominates is the definition of dominance, computed the slow way:
// a dominates b iff removing a from the graph makes b unreachable from
// entry (and a block dominates itself).
func bruteDominates(f *ir.Function, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := make([]bool, f.NumBlocks())
	stack := []*ir.Block{f.Entry()}
	if f.Entry() == a {
		return true // removing the entry makes everything unreachable
	}
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, n := 0, x.NumSuccs(); i < n; i++ {
			s := x.Succ(i)
			if s == a || seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			stack = append(stack, s)
		}
	}
	return !seen[b.ID]
}

// TestDominatorsAgainstBruteForce checks the iterative dominator
// computation against the definition on a fleet of random CFGs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := randprog.ForSeed(seed)
		d := Dominators(f)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				want := bruteDominates(f, a, b)
				got := d.Dominates(a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%s, %s) = %v, brute force says %v",
						seed, a.Name, b.Name, got, want)
				}
			}
		}
	}
}

// TestIDomIsStrictDominatorProperty: the immediate dominator of b strictly
// dominates b and is dominated by every other strict dominator of b.
func TestIDomIsClosestStrictDominator(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := randprog.ForSeed(seed)
		d := Dominators(f)
		for _, b := range f.Blocks {
			idom := d.IDom(b)
			if b == f.Entry() {
				if idom != nil {
					t.Fatalf("seed %d: entry has idom %s", seed, idom.Name)
				}
				continue
			}
			if idom == nil || !d.Dominates(idom, b) || idom == b {
				t.Fatalf("seed %d: idom(%s) invalid", seed, b.Name)
			}
			for _, a := range f.Blocks {
				if a != b && d.Dominates(a, b) && !d.Dominates(a, idom) {
					t.Fatalf("seed %d: strict dominator %s of %s does not dominate idom %s",
						seed, a.Name, b.Name, idom.Name)
				}
			}
		}
	}
}

// TestLoopsContainTheirBackEdgeSources: every natural loop contains the
// sources of the back edges that define it.
func TestLoopsContainBackEdgeSources(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := randprog.ForSeed(seed)
		d := Dominators(f)
		loops := NaturalLoops(f)
		byHeader := map[*ir.Block]*Loop{}
		for _, l := range loops {
			byHeader[l.Header] = l
		}
		for _, b := range f.Blocks {
			for i, n := 0, b.NumSuccs(); i < n; i++ {
				h := b.Succ(i)
				if !d.Dominates(h, b) {
					continue
				}
				l := byHeader[h]
				if l == nil {
					t.Fatalf("seed %d: back edge %s->%s has no loop", seed, b.Name, h.Name)
				}
				if !l.Contains(b) {
					t.Fatalf("seed %d: loop at %s missing latch %s", seed, h.Name, b.Name)
				}
			}
		}
	}
}
