// Package mr implements the Morel–Renvoise partial-redundancy elimination
// (CACM 1979), the bidirectional baseline that Lazy Code Motion supersedes.
// It is the comparator of experiments T2 (eliminated computations) and T4
// (solver cost): MR requires a bidirectional fixpoint over the
// placement-possible system, places code at block ends rather than on
// edges (so it misses placements that need a critical edge split), guards
// placement with partial availability, and does not minimize temporary
// lifetimes.
//
// The transformation, for each candidate expression e with temporary t:
//
//	insert  — blocks with INSERT get "t = e" appended at the block end;
//	delete  — the upward-exposed computation x = e of a block with PPIN
//	          becomes "x = t";
//	save    — the surviving downward-exposed computation x = e of a block
//	          becomes "t = e; x = t", so t is current wherever AVOUT
//	          justifies a later deletion. (Saving unconditionally adds
//	          copies, never evaluations; MR's published refinements that
//	          avoid some copies are orthogonal to the measurements here.)
package mr

import (
	"context"
	"fmt"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/props"
	"lazycm/internal/rewrite"
)

// Options tunes an MR analysis or transformation run.
type Options struct {
	// Fuel bounds each unidirectional data-flow problem (in node visits)
	// and the bidirectional placement-possible fixpoint (in block visits);
	// 0 means unlimited.
	Fuel int
	// Ctx, when non-nil, is polled at iteration boundaries of every
	// fixpoint; once done the run fails with an error unwrapping to
	// dataflow.ErrCanceled. Nil means "never canceled".
	Ctx context.Context
	// Scratch, when non-nil, is the shared analysis arena: the
	// unidirectional solves, the bidirectional working state, and the
	// predicate matrices all draw from it, and Transform releases them
	// back when done, so repeated MR runs (experiment loops, pipeline
	// passes) recycle one backing store. Results are identical either way.
	Scratch *dataflow.Scratch
}

// Result is the outcome of the MR transformation.
type Result struct {
	// F is the transformed clone; the input is not mutated.
	F *ir.Function
	// TempFor maps each touched expression to its temporary.
	TempFor map[ir.Expr]string
	// Inserted, Deleted and Saved count the code edits.
	Inserted, Deleted, Saved int
	// UniStats are the unidirectional preparatory problems (availability,
	// partial availability).
	UniStats []dataflow.Stats
	// Bidir is the effort of the bidirectional placement-possible
	// fixpoint, reported in the same currency as dataflow.Stats.
	Bidir dataflow.Stats
}

// TotalVectorOps returns all whole-vector operations spent, the T4 metric.
func (r *Result) TotalVectorOps() int {
	total := r.Bidir.VectorOps
	for _, s := range r.UniStats {
		total += s.VectorOps
	}
	return total
}

// Analysis exposes MR's global predicates for inspection and testing.
type Analysis struct {
	U                      *props.Universe
	Local                  *props.BlockLocal
	AvIn, AvOut            *bitvec.Matrix
	PavIn, PavOut          *bitvec.Matrix
	PPIn, PPOut            *bitvec.Matrix
	Insert, Delete         *bitvec.Matrix
	UniStats               []dataflow.Stats
	Passes, BidirVectorOps int

	// sc is the arena the matrices were drawn from, when one was used.
	sc *dataflow.Scratch
}

// Release returns every predicate matrix to the arena it came from (no-op
// without one) and nils them out; see lcm.Analysis.Release for the
// contract. Transform calls it once the rewrite no longer needs the
// predicates.
func (a *Analysis) Release() {
	if a == nil || a.sc == nil {
		return
	}
	a.sc.Release(a.AvIn, a.AvOut, a.PavIn, a.PavOut, a.PPIn, a.PPOut, a.Insert, a.Delete)
	a.AvIn, a.AvOut, a.PavIn, a.PavOut = nil, nil, nil, nil
	a.PPIn, a.PPOut, a.Insert, a.Delete = nil, nil, nil, nil
}

// Analyze computes MR's global predicates for f.
func Analyze(f *ir.Function) (*Analysis, error) {
	return AnalyzeOpts(f, Options{})
}

// AnalyzeFuel is Analyze with a node-visit budget per data-flow problem
// and the same budget (in block visits) on the bidirectional
// placement-possible fixpoint; 0 means unlimited. The bidirectional system
// is exactly where a bound earns its keep: unlike the unidirectional
// problems, its convergence argument is subtler, and a bug in the transfer
// functions would otherwise spin forever.
func AnalyzeFuel(f *ir.Function, fuel int) (*Analysis, error) {
	return AnalyzeOpts(f, Options{Fuel: fuel})
}

// AnalyzeOpts is Analyze with full options. The same reasoning that makes
// the bidirectional system the right place for a fuel bound makes it the
// right place for cancellation: it is the most iteration-hungry fixpoint
// in the tree, so o.Ctx is polled every sweep.
func AnalyzeOpts(f *ir.Function, o Options) (*Analysis, error) {
	fuel := o.Fuel
	sc := o.Scratch
	u := props.Collect(f)
	local := props.ComputeBlockLocal(f, u)
	n := f.NumBlocks()
	w := u.Size()
	g := dataflow.BlockGraph{F: f}
	newMat := func() *bitvec.Matrix {
		if sc != nil {
			return sc.Matrix(n, w)
		}
		return bitvec.NewMatrix(n, w)
	}

	notTransp := newMat()
	for i := 0; i < n; i++ {
		row := notTransp.Row(i)
		row.CopyFrom(local.Transp.Row(i))
		row.Not()
	}

	av, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "mr-avail", Dir: dataflow.Forward, Meet: dataflow.Must,
		Width: w, Gen: local.Comp, Kill: notTransp,
		Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("mr: %w", err)
	}
	pav, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "mr-pavail", Dir: dataflow.Forward, Meet: dataflow.May,
		Width: w, Gen: local.Comp, Kill: notTransp,
		Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("mr: %w", err)
	}
	if sc != nil {
		sc.Release(notTransp) // kill set only feeds the two solves above
	}

	a := &Analysis{
		U: u, Local: local,
		AvIn: av.In, AvOut: av.Out,
		PavIn: pav.In, PavOut: pav.Out,
		PPIn: newMat(), PPOut: newMat(),
		UniStats: []dataflow.Stats{av.Stats, pav.Stats},
		sc:       sc,
	}

	// Bidirectional placement-possible system, solved as a decreasing
	// round-robin fixpoint from the all-true start:
	//
	//	PPOUT(i) = ∏_{s∈succ(i)} PPIN(s)                (false at exits)
	//	PPIN(i)  = PAVIN(i)
	//	         ∧ (ANTLOC(i) ∨ (TRANSP(i) ∧ PPOUT(i)))
	//	         ∧ ∏_{p∈pred(i)} (PPOUT(p) ∨ AVOUT(p))  (false at entry)
	//
	// Like dataflow's serial solver, the sweep works on the matrices'
	// flat word backing: the universes here are a word or two wide, so
	// per-row Vector views would cost more in dispatch than the word
	// math. The op accounting mirrors the vector formulation exactly.
	stride := a.PPIn.Stride()
	lastMask := ^uint64(0)
	if rem := uint(w) & 63; rem != 0 {
		lastMask = (uint64(1) << rem) - 1
	}
	ppInW, ppOutW := a.PPIn.Data(), a.PPOut.Data()
	if stride > 0 {
		for i := range ppInW {
			ppInW[i] = ^uint64(0)
			ppOutW[i] = ^uint64(0)
		}
		for i := 0; i < n; i++ {
			ppInW[i*stride+stride-1] &= lastMask
			ppOutW[i*stride+stride-1] &= lastMask
		}
	}
	transpW, antlocW := local.Transp.Data(), local.Antloc.Data()
	pavInW, avOutW := a.PavIn.Data(), a.AvOut.Data()
	var acc []uint64
	if sc != nil {
		acc = sc.Words(stride)
	} else {
		acc = make([]uint64, stride)
	}
	releaseWork := func() {
		if sc != nil {
			sc.ReleaseWords(acc)
		}
	}
	visits := 0
	for {
		if err := dataflow.Canceled(o.Ctx, "mr-pp"); err != nil {
			releaseWork()
			return nil, err
		}
		a.Passes++
		changed := false
		for _, b := range f.Blocks {
			i := b.ID
			visits++
			if fuel > 0 && visits > fuel {
				releaseWork()
				return nil, fmt.Errorf("mr: placement-possible fixpoint: %w",
					&dataflow.FuelError{Problem: "mr-pp", Fuel: fuel})
			}
			base := i * stride
			// PPOUT
			if b.NumSuccs() == 0 {
				for k := 0; k < stride; k++ {
					acc[k] = 0
				}
			} else {
				for k := 0; k < stride; k++ {
					acc[k] = ^uint64(0)
				}
				if stride > 0 {
					acc[stride-1] &= lastMask
				}
				for s := 0; s < b.NumSuccs(); s++ {
					sb := b.Succ(s).ID * stride
					for k := 0; k < stride; k++ {
						acc[k] &= ppInW[sb+k]
					}
					a.BidirVectorOps++
				}
			}
			for k := 0; k < stride; k++ {
				if ppOutW[base+k] != acc[k] {
					ppOutW[base+k] = acc[k]
					changed = true
				}
			}
			a.BidirVectorOps++

			// PPIN
			preds := b.Preds()
			if len(preds) == 0 {
				for k := 0; k < stride; k++ {
					acc[k] = 0
				}
			} else {
				// PAVIN ∧ (ANTLOC ∨ (TRANSP ∧ PPOUT)), fused per word,
				// counted as the four vector ops it replaces.
				for k := 0; k < stride; k++ {
					acc[k] = pavInW[base+k] & (antlocW[base+k] | (transpW[base+k] & ppOutW[base+k]))
				}
				a.BidirVectorOps += 4
				for p := 0; p < len(preds); p++ {
					pb := preds[p].ID * stride
					for k := 0; k < stride; k++ {
						acc[k] &= ppOutW[pb+k] | avOutW[pb+k]
					}
					a.BidirVectorOps += 3
				}
			}
			for k := 0; k < stride; k++ {
				if ppInW[base+k] != acc[k] {
					ppInW[base+k] = acc[k]
					changed = true
				}
			}
			a.BidirVectorOps++
		}
		if !changed {
			break
		}
	}

	releaseWork()

	// INSERT(i) = PPOUT(i) ∧ ¬AVOUT(i) ∧ (¬PPIN(i) ∨ ¬TRANSP(i))
	// DELETE(i) = ANTLOC(i) ∧ PPIN(i)
	a.Insert = newMat()
	a.Delete = newMat()
	for i := 0; i < n; i++ {
		ins := a.Insert.Row(i)
		ins.CopyFrom(a.PPIn.Row(i))
		ins.And(local.Transp.Row(i))
		ins.Not()
		ins.And(a.PPOut.Row(i))
		ins.AndNot(a.AvOut.Row(i))

		del := a.Delete.Row(i)
		del.CopyFrom(local.Antloc.Row(i))
		del.And(a.PPIn.Row(i))
	}
	return a, nil
}

// Transform applies the MR transformation to a clone of f.
func Transform(f *ir.Function) (*Result, error) {
	return TransformOpts(f, Options{})
}

// TransformFuel is Transform with AnalyzeFuel's budget; 0 means unlimited.
func TransformFuel(f *ir.Function, fuel int) (*Result, error) {
	return TransformOpts(f, Options{Fuel: fuel})
}

// TransformOpts is Transform with full options (fuel and cancellation).
func TransformOpts(f *ir.Function, o Options) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("mr: input invalid: %w", err)
	}
	clone := f.Clone()
	a, err := AnalyzeOpts(clone, o)
	if err != nil {
		return nil, err
	}
	u := a.U
	n := clone.NumBlocks()
	w := u.Size()

	res := &Result{
		F: clone, TempFor: make(map[ir.Expr]string),
		UniStats: a.UniStats,
		Bidir: dataflow.Stats{
			Name: "mr-pp", Passes: a.Passes,
			NodeVisits: a.Passes * n, VectorOps: a.BidirVectorOps,
		},
	}

	// Temp naming: deterministic, by expression number, for expressions
	// with any insertion or deletion.
	touched := make([]bool, w)
	for i := 0; i < n; i++ {
		a.Insert.Row(i).ForEach(func(e int) { touched[e] = true })
		a.Delete.Row(i).ForEach(func(e int) { touched[e] = true })
	}
	tempName, tempFor := rewrite.TempNamer(clone, u, touched, "m")
	res.TempFor = tempFor

	for _, b := range clone.Blocks {
		ed := rewrite.Edits{}
		a.Delete.Row(b.ID).ForEach(func(e int) { ed.Delete = append(ed.Delete, e) })
		for e := 0; e < w; e++ {
			if touched[e] && a.Local.Comp.Get(b.ID, e) {
				ed.SaveDown = append(ed.SaveDown, e)
			}
		}
		a.Insert.Row(b.ID).ForEach(func(e int) { ed.Append = append(ed.Append, e) })
		c := rewrite.Apply(b, u, ed, tempName)
		res.Deleted += c.Deleted
		res.Saved += c.Saved
		res.Inserted += c.Inserted
	}
	// The Result does not retain the Analysis, so every predicate matrix
	// can go straight back to the arena for the caller's next run.
	a.Release()
	clone.Recompute()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("mr: transformed function invalid: %w", err)
	}
	return res, nil
}
