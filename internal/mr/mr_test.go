package mr

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Transform(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`

func TestDiamond(t *testing.T) {
	res := transform(t, diamondSrc)
	f := res.F
	// MR handles this shape: insert in else (block end), delete at join,
	// save at then.
	if res.Deleted != 1 {
		t.Errorf("deleted = %d, want 1\n%s", res.Deleted, f)
	}
	if res.Inserted != 1 {
		t.Errorf("inserted = %d, want 1\n%s", res.Inserted, f)
	}
	if res.Saved != 1 {
		t.Errorf("saved = %d, want 1\n%s", res.Saved, f)
	}
	els := f.BlockByName("else")
	if len(els.Instrs) != 1 || els.Instrs[0].Kind != ir.BinOp {
		t.Errorf("no insertion at end of else:\n%s", f)
	}
	join := f.BlockByName("join")
	if join.Instrs[0].Kind != ir.Copy {
		t.Errorf("join computation not deleted:\n%s", f)
	}
}

func TestDiamondSemanticsPreserved(t *testing.T) {
	f := parse(t, diamondSrc)
	res := transform(t, diamondSrc)
	for _, args := range [][]int64{{2, 3, 0}, {2, 3, 1}, {-5, 5, 1}, {0, 0, 0}} {
		orig, _, err := interp.Run(f, interp.Options{Args: args})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := interp.Run(res.F, interp.Options{Args: args})
		if err != nil {
			t.Fatal(err)
		}
		if !orig.ObservablyEqual(got) {
			t.Errorf("args %v: %s vs %s\n%s", args, orig, got, res.F)
		}
	}
}

func TestFullRedundancy(t *testing.T) {
	res := transform(t, `
func f(a, b) {
one:
  x = a + b
  jmp two
two:
  y = a + b
  ret y
}`)
	if res.Deleted != 1 {
		t.Errorf("deleted = %d, want 1\n%s", res.Deleted, res.F)
	}
	// No insertion needed: availability covers the deletion.
	if res.Inserted != 0 {
		t.Errorf("inserted = %d, want 0\n%s", res.Inserted, res.F)
	}
	// Dynamic count must drop from 2 to 1.
	_, counts, err := interp.Run(res.F, interp.Options{Args: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 1 {
		t.Errorf("a+b evaluated %d times, want 1\n%s", counts[add], res.F)
	}
}

func TestCriticalEdgeWeakness(t *testing.T) {
	// entry branches straight to join: the needed insertion point lies on
	// a critical edge. Block-level MR cannot place there. It must remain
	// correct and must not make the program dynamically worse, but it is
	// allowed to miss the elimination (this is exactly the gap LCM's
	// edge-splitting model closes; experiment T2 quantifies it).
	src := `
func f(a, b, c) {
entry:
  br c then join
then:
  x = a + b
  jmp join
join:
  y = a + b
  ret y
}`
	f := parse(t, src)
	res := transform(t, src)
	for _, c := range []int64{0, 1} {
		args := []int64{3, 4, c}
		orig, origCounts, err := interp.Run(f, interp.Options{Args: args})
		if err != nil {
			t.Fatal(err)
		}
		got, newCounts, err := interp.Run(res.F, interp.Options{Args: args})
		if err != nil {
			t.Fatal(err)
		}
		if !orig.ObservablyEqual(got) {
			t.Fatalf("c=%d: behaviour changed: %s vs %s\n%s", c, orig, got, res.F)
		}
		if newCounts.Total() > origCounts.Total() {
			t.Errorf("c=%d: MR made the program worse: %d > %d",
				c, newCounts.Total(), origCounts.Total())
		}
	}
}

func TestNoPartialAvailabilityNoPlacement(t *testing.T) {
	// The expression is computed only at the join: nothing is partially
	// available, so MR must do nothing (PAVIN guard).
	res := transform(t, `
func f(a, b, c) {
entry:
  br c then else
then:
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`)
	if res.Inserted != 0 || res.Deleted != 0 {
		t.Errorf("MR placed code without partial availability: %d/%d\n%s",
			res.Inserted, res.Deleted, res.F)
	}
}

func TestLoopInvariantBottomTest(t *testing.T) {
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`
	f := parse(t, src)
	res := transform(t, src)
	// Behaviour preserved and the loop body no longer evaluates a+b each
	// iteration... MR hoists here because the expression is partially
	// available at body (around the back edge) and anticipated.
	args := []int64{2, 3, 8}
	orig, origCounts, err := interp.Run(f, interp.Options{Args: args})
	if err != nil {
		t.Fatal(err)
	}
	got, newCounts, err := interp.Run(res.F, interp.Options{Args: args})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.ObservablyEqual(got) {
		t.Fatalf("behaviour changed: %s vs %s\n%s", orig, got, res.F)
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if origCounts[add] != 8 {
		t.Fatalf("original count = %d", origCounts[add])
	}
	if newCounts[add] >= origCounts[add] {
		t.Errorf("MR did not reduce loop evaluations: %d vs %d\n%s",
			newCounts[add], origCounts[add], res.F)
	}
}

func TestSelfKillUntouched(t *testing.T) {
	res := transform(t, `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  a = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret a
}`)
	if res.Deleted != 0 {
		t.Errorf("self-killing accumulation deleted\n%s", res.F)
	}
	f := parse(t, `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  a = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret a
}`)
	args := []int64{1, 2, 5}
	orig, _, _ := interp.Run(f, interp.Options{Args: args})
	got, _, _ := interp.Run(res.F, interp.Options{Args: args})
	if !orig.ObservablyEqual(got) {
		t.Errorf("behaviour changed: %s vs %s\n%s", orig, got, res.F)
	}
}

func TestStatsAndDeterminism(t *testing.T) {
	res := transform(t, diamondSrc)
	if len(res.UniStats) != 2 {
		t.Errorf("UniStats = %d", len(res.UniStats))
	}
	if res.Bidir.Passes < 2 || res.Bidir.VectorOps == 0 {
		t.Errorf("Bidir stats implausible: %+v", res.Bidir)
	}
	if res.TotalVectorOps() <= res.Bidir.VectorOps {
		t.Error("TotalVectorOps must include unidirectional problems")
	}
	first := res.F.String()
	for i := 0; i < 10; i++ {
		if got := transform(t, diamondSrc).F.String(); got != first {
			t.Fatal("MR transform nondeterministic")
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	f := parse(t, diamondSrc)
	before := f.String()
	if _, err := Transform(f); err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("Transform mutated its input")
	}
}

func TestTempNamesFresh(t *testing.T) {
	res := transform(t, `
func f(a, b, c) {
entry:
  m0 = 1
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  print m0
  ret y
}`)
	for _, tmp := range res.TempFor {
		if tmp == "m0" {
			t.Fatalf("temp collides with program variable m0\n%s", res.F)
		}
	}
}

func TestInvalidInputRejected(t *testing.T) {
	f := parse(t, diamondSrc)
	f.Blocks[1], f.Blocks[2] = f.Blocks[2], f.Blocks[1]
	if _, err := Transform(f); err == nil {
		t.Error("invalid input accepted")
	}
}
