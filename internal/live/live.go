// Package live computes variable liveness at statement granularity and the
// temporary-lifetime metric of the paper's lifetime-optimality theorem
// (experiment T3): the number of program points at which a PRE temporary is
// live. Busy code motion maximizes these ranges; lazy code motion
// provably minimizes them among all computationally optimal placements.
package live

import (
	"context"
	"fmt"
	"sort"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
)

// Info is the liveness solution for one function over a chosen variable
// set.
type Info struct {
	G    *nodes.Graph
	Vars []string
	// LiveIn and LiveOut are node×variable matrices: LiveIn(n, v) means v
	// is live immediately before node n.
	LiveIn, LiveOut *bitvec.Matrix

	index map[string]int
	// Stats are the liveness solver's statistics.
	Stats dataflow.Stats

	// sc is the arena the solution matrices came from, when one was used.
	sc *dataflow.Scratch
}

// Release returns the liveness matrices to the arena they were drawn from
// (no-op without one) and nils them out. Repeated liveness solves over one
// arena — the DCE fixpoint rounds, lifetime metrics over many functions —
// recycle the same backing store this way.
func (i *Info) Release() {
	if i == nil || i.sc == nil {
		return
	}
	i.sc.Release(i.LiveIn, i.LiveOut)
	i.LiveIn, i.LiveOut = nil, nil
}

// Compute solves liveness for f. If vars is nil, all variables of f are
// tracked; otherwise only the given ones. Variables in vars that f never
// mentions are legal and simply never live.
func Compute(f *ir.Function, vars []string) (*Info, error) {
	return ComputeCtx(nil, f, vars)
}

// ComputeCtx is Compute with cancellation: a non-nil ctx is polled at the
// liveness solver's iteration boundaries, and once done the computation
// fails with an error unwrapping to dataflow.ErrCanceled. A nil ctx means
// "never canceled".
func ComputeCtx(ctx context.Context, f *ir.Function, vars []string) (*Info, error) {
	return ComputeScratch(ctx, f, vars, nil)
}

// ComputeScratch is ComputeCtx with a shared analysis arena: a non-nil
// scratch supplies the liveness solver's traversal order and bit-vector
// storage, so repeated liveness queries (lifetime metrics over many
// temporaries, pipeline runs over many functions) reuse allocations. The
// solution is identical with or without it.
func ComputeScratch(ctx context.Context, f *ir.Function, vars []string, sc *dataflow.Scratch) (*Info, error) {
	if vars == nil {
		vars = f.Vars()
	}
	info := &Info{Vars: vars, index: make(map[string]int, len(vars))}
	for i, v := range vars {
		info.index[v] = i
	}
	u := props.Collect(f)
	g := nodes.Build(f, u)
	info.G = g

	n := g.NumNodes()
	w := len(vars)
	var use, def *bitvec.Matrix
	if sc != nil {
		use, def = sc.Matrix(n, w), sc.Matrix(n, w)
	} else {
		use, def = bitvec.NewMatrix(n, w), bitvec.NewMatrix(n, w)
	}
	var scratch []string
	for id, nd := range g.Nodes {
		switch nd.Kind {
		case nodes.Stmt:
			in := nd.Block.Instrs[nd.Index]
			scratch = in.UsedVars(scratch[:0])
			for _, v := range scratch {
				if i, ok := info.index[v]; ok {
					use.Set(id, i)
				}
			}
			if d := in.Defs(); d != "" {
				if i, ok := info.index[d]; ok {
					def.Set(id, i)
				}
			}
		case nodes.Term:
			scratch = nd.Block.Term.UsedVars(scratch[:0])
			for _, v := range scratch {
				if i, ok := info.index[v]; ok {
					use.Set(id, i)
				}
			}
		}
	}

	res, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "liveness", Dir: dataflow.Backward, Meet: dataflow.May,
		Width: w, Gen: use, Kill: def,
		Boundary: dataflow.BoundaryEmpty, Ctx: ctx, Scratch: sc,
	})
	if sc != nil {
		sc.Release(use, def) // gen/kill are solver inputs only; the solution is retained
	}
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	info.LiveIn = res.In
	info.LiveOut = res.Out
	info.Stats = res.Stats
	info.sc = sc
	return info, nil
}

// LiveBefore reports whether v is live immediately before node id.
func (i *Info) LiveBefore(id int, v string) bool {
	vi, ok := i.index[v]
	if !ok {
		return false
	}
	return i.LiveIn.Get(id, vi)
}

// LiveAfter reports whether v is live immediately after node id.
func (i *Info) LiveAfter(id int, v string) bool {
	vi, ok := i.index[v]
	if !ok {
		return false
	}
	return i.LiveOut.Get(id, vi)
}

// LiveRange returns the number of nodes at whose entry v is live: the
// lifetime metric.
func (i *Info) LiveRange(v string) int {
	vi, ok := i.index[v]
	if !ok {
		return 0
	}
	return i.LiveIn.Column(vi).Count()
}

// TotalLiveRange sums LiveRange over the given variables; with vars nil it
// sums over all tracked variables.
func (i *Info) TotalLiveRange(vars []string) int {
	if vars == nil {
		vars = i.Vars
	}
	t := 0
	for _, v := range vars {
		t += i.LiveRange(v)
	}
	return t
}

// TempLifetimes measures, for a PRE result with the given expression→temp
// mapping, the live range of each temporary. The returned map is keyed by
// the temporary name.
func TempLifetimes(f *ir.Function, tempFor map[ir.Expr]string) (map[string]int, error) {
	if len(tempFor) == 0 {
		return map[string]int{}, nil
	}
	var temps []string
	for _, t := range tempFor {
		temps = append(temps, t)
	}
	// Deterministic order for reproducible stats.
	sort.Strings(temps)
	info, err := Compute(f, temps)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(temps))
	for _, t := range temps {
		out[t] = info.LiveRange(t)
	}
	return out, nil
}
