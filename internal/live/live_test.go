package live

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/textir"
)

func mustCompute(t *testing.T, f *ir.Function, vars []string) *Info {
	t.Helper()
	info, err := Compute(f, vars)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func mustTempLifetimes(t *testing.T, f *ir.Function, tempFor map[ir.Expr]string) map[string]int {
	t.Helper()
	life, err := TempLifetimes(f, tempFor)
	if err != nil {
		t.Fatal(err)
	}
	return life
}

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStraightLineLiveness(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = x * 2
  print y
  ret
}`)
	info := mustCompute(t, f, nil)
	g := info.G
	e := f.Entry()
	n0 := g.FirstOf(e) // x = a + b
	n1 := n0 + 1       // y = x * 2
	n2 := n0 + 2       // print y

	if !info.LiveBefore(n0, "a") || !info.LiveBefore(n0, "b") {
		t.Error("params must be live at first use")
	}
	if info.LiveBefore(n0, "x") {
		t.Error("x live before its definition")
	}
	if !info.LiveBefore(n1, "x") {
		t.Error("x dead before its use")
	}
	if info.LiveBefore(n2, "x") {
		t.Error("x live after last use")
	}
	if !info.LiveBefore(n2, "y") {
		t.Error("y dead before print")
	}
}

func TestBranchAndRetUses(t *testing.T) {
	f := parse(t, `
func f(c, r) {
e:
  br c a b
a:
  ret r
b:
  ret 0
}`)
	info := mustCompute(t, f, nil)
	g := info.G
	if !info.LiveBefore(g.TermOf(f.Entry()), "c") {
		t.Error("branch condition dead at branch")
	}
	if !info.LiveBefore(g.FirstOf(f.Entry()), "r") {
		t.Error("returned var dead on path to ret")
	}
	bBlock := f.BlockByName("b")
	if info.LiveBefore(g.TermOf(bBlock), "r") {
		t.Error("r live on the arm that never uses it")
	}
}

func TestLoopLiveness(t *testing.T) {
	f := parse(t, `
func f(n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  i = i + 1
  jmp head
exit:
  ret i
}`)
	info := mustCompute(t, f, nil)
	g := info.G
	head := f.BlockByName("head")
	// i is live around the whole loop.
	if !info.LiveBefore(g.FirstOf(head), "i") || !info.LiveBefore(g.FirstOf(f.BlockByName("body")), "i") {
		t.Error("loop variable dead inside loop")
	}
	if info.LiveRange("i") < 5 {
		t.Errorf("LiveRange(i) = %d, implausibly small", info.LiveRange("i"))
	}
}

func TestRestrictedVars(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  print x
  ret
}`)
	info := mustCompute(t, f, []string{"x", "nosuch"})
	if len(info.Vars) != 2 {
		t.Fatalf("Vars = %v", info.Vars)
	}
	if info.LiveRange("nosuch") != 0 {
		t.Error("unknown var has live range")
	}
	if info.LiveRange("x") == 0 {
		t.Error("tracked var has no range")
	}
	if info.LiveRange("a") != 0 || info.LiveBefore(0, "a") {
		t.Error("untracked var reported live")
	}
	if info.TotalLiveRange(nil) != info.LiveRange("x") {
		t.Error("TotalLiveRange(nil) wrong")
	}
	if info.TotalLiveRange([]string{"x"}) != info.LiveRange("x") {
		t.Error("TotalLiveRange(subset) wrong")
	}
}

// TestLifetimeOrdering is the micro version of experiment T3: on the
// diamond, the BCM temp (inserted at entry) must live strictly longer than
// the LCM temp (inserted at the latest points).
func TestLifetimeOrdering(t *testing.T) {
	src := `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  nop
  nop
  nop
  jmp join
join:
  y = a + b
  ret y
}`
	f := parse(t, src)
	bcmRes, err := lcm.Transform(f, lcm.BCM)
	if err != nil {
		t.Fatal(err)
	}
	lcmRes, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		t.Fatal(err)
	}
	bcmLife := mustTempLifetimes(t, bcmRes.F, bcmRes.TempFor)
	lcmLife := mustTempLifetimes(t, lcmRes.F, lcmRes.TempFor)
	bcmTotal, lcmTotal := 0, 0
	for _, v := range bcmLife {
		bcmTotal += v
	}
	for _, v := range lcmLife {
		lcmTotal += v
	}
	if bcmTotal <= lcmTotal {
		t.Errorf("BCM lifetime %d not greater than LCM lifetime %d\nBCM:\n%s\nLCM:\n%s",
			bcmTotal, lcmTotal, bcmRes.F, lcmRes.F)
	}
}

func TestTempLifetimesEmpty(t *testing.T) {
	f := parse(t, "func f() {\ne:\n  ret\n}")
	if got := mustTempLifetimes(t, f, nil); len(got) != 0 {
		t.Errorf("TempLifetimes(no temps) = %v", got)
	}
}

func TestDeadCodeVariable(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  x = a + 1
  ret a
}`)
	info := mustCompute(t, f, nil)
	if info.LiveRange("x") != 0 {
		t.Errorf("dead x has live range %d", info.LiveRange("x"))
	}
}
