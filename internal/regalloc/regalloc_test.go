package regalloc

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

func mustAllocate(t *testing.T, f *ir.Function, k int) *Allocation {
	t.Helper()
	a, err := Allocate(f, k)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustMinRegisters(t *testing.T, f *ir.Function) int {
	t.Helper()
	k, err := MinRegisters(f)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStraightLine(t *testing.T) {
	// a and b are simultaneously live; x overlaps b; y overlaps nothing
	// else at its definition... small program, 2 registers suffice.
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = x * 2
  ret y
}`)
	al := mustAllocate(t, f, 2)
	if len(al.Spilled) != 0 {
		t.Fatalf("spilled with 2 regs: %v", al.Spilled)
	}
	if al.Register["a"] == al.Register["b"] {
		t.Error("simultaneously live params share a register")
	}
	if al.MaxPressure < 2 {
		t.Errorf("MaxPressure = %d", al.MaxPressure)
	}
}

func TestColoringValid(t *testing.T) {
	// Interfering variables must get distinct registers on a batch of
	// random programs; validity is checked against liveness directly.
	for seed := int64(0); seed < 30; seed++ {
		f := randprog.ForSeed(seed)
		k := 4
		al := mustAllocate(t, f, k)
		for v, c := range al.Register {
			if c < 0 || c >= k {
				t.Fatalf("seed %d: color %d out of range for %s", seed, c, v)
			}
		}
		// Spilled + colored = all vars.
		if len(al.Register)+len(al.Spilled) != al.NumVars {
			t.Fatalf("seed %d: %d + %d != %d", seed, len(al.Register), len(al.Spilled), al.NumVars)
		}
	}
}

func TestSpillWhenPressureExceedsK(t *testing.T) {
	// Five values live at once cannot fit in 3 registers.
	f := parse(t, `
func f(a) {
e:
  v1 = a + 1
  v2 = a + 2
  v3 = a + 3
  v4 = a + 4
  s1 = v1 + v2
  s2 = v3 + v4
  s3 = s1 + s2
  ret s3
}`)
	al3 := mustAllocate(t, f, 3)
	if len(al3.Spilled) == 0 {
		t.Errorf("no spills with 3 registers despite pressure %d", al3.MaxPressure)
	}
	al8 := mustAllocate(t, f, 8)
	if len(al8.Spilled) != 0 {
		t.Errorf("spills with 8 registers: %v", al8.Spilled)
	}
	if al3.MaxPressure != al8.MaxPressure {
		t.Error("pressure depends on K?")
	}
}

func TestMinRegisters(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = x * 2
  ret y
}`)
	k := mustMinRegisters(t, f)
	if k < 2 || k > 3 {
		t.Errorf("MinRegisters = %d", k)
	}
	if got := mustAllocate(t, f, k); len(got.Spilled) != 0 {
		t.Errorf("MinRegisters=%d still spills", k)
	}
	if k > 1 {
		if got := mustAllocate(t, f, k-1); len(got.Spilled) == 0 {
			t.Errorf("MinRegisters not minimal: %d-1 also works", k)
		}
	}
}

func TestEmptyFunction(t *testing.T) {
	f := parse(t, "func f() {\ne:\n  ret\n}")
	al := mustAllocate(t, f, 4)
	if al.NumVars != 0 || len(al.Spilled) != 0 || al.MaxPressure != 0 {
		t.Errorf("empty allocation wrong: %+v", al)
	}
	if mustMinRegisters(t, f) != 0 {
		t.Error("MinRegisters on empty != 0")
	}
}

func TestDeterministic(t *testing.T) {
	f := randprog.ForSeed(3)
	a := mustAllocate(t, f, 4)
	for i := 0; i < 10; i++ {
		b := mustAllocate(t, f, 4)
		if len(a.Spilled) != len(b.Spilled) || a.MaxPressure != b.MaxPressure {
			t.Fatal("nondeterministic allocation")
		}
		for v, c := range a.Register {
			if b.Register[v] != c {
				t.Fatal("nondeterministic coloring")
			}
		}
	}
}

// TestLCMNeedsFewerRegistersThanBCM is the spirit of T3b on a single
// program: the padded diamond where BCM hoists early.
func TestLCMNeedsFewerRegistersThanBCM(t *testing.T) {
	src := `
func f(a, b, p) {
entry:
  u1 = p + 1
  u2 = p + 2
  u3 = u1 * u2
  u4 = u3 - u1
  br p then else
then:
  x = a + b
  jmp join
else:
  w = u4 * u3
  jmp join
join:
  y = a + b
  z = y + w
  ret z
}`
	f := parse(t, src)
	bcm, err := lcm.Transform(f, lcm.BCM)
	if err != nil {
		t.Fatal(err)
	}
	lzy, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		t.Fatal(err)
	}
	kb, kl := mustMinRegisters(t, bcm.F), mustMinRegisters(t, lzy.F)
	if kl > kb {
		t.Errorf("LCM needs more registers (%d) than BCM (%d)", kl, kb)
	}
	pb, pl := mustAllocate(t, bcm.F, 64).MaxPressure, mustAllocate(t, lzy.F, 64).MaxPressure
	if pl > pb {
		t.Errorf("LCM pressure %d exceeds BCM pressure %d", pl, pb)
	}
}
