// Package regalloc implements a Chaitin–Briggs-style graph-coloring
// register allocator over the IR. It exists to measure the practical
// consequence of the paper's lifetime-optimality theorem: busy code motion
// stretches temporary live ranges, which raises register pressure and
// forces spills, while lazy code motion provably minimizes those ranges —
// experiment T3b quantifies the difference in spill counts under a fixed
// register budget.
//
// The allocator builds an interference graph at statement granularity
// (a definition interferes with everything live after it), simplifies with
// optimistic (Briggs) coloring, and reports which variables could not be
// colored with K registers. No spill code is generated — the spill set is
// the metric.
package regalloc

import (
	"sort"

	"lazycm/internal/ir"
	"lazycm/internal/live"
	"lazycm/internal/nodes"
)

// Allocation is the result of coloring one function with K registers.
type Allocation struct {
	// K is the register budget.
	K int
	// Register assigns a color in [0, K) to every colored variable.
	Register map[string]int
	// Spilled lists the variables that did not receive a register,
	// sorted.
	Spilled []string
	// MaxPressure is the maximum number of simultaneously live variables
	// at any program point.
	MaxPressure int
	// NumVars is the total number of variables considered.
	NumVars int
}

// Allocate colors the variables of f with k registers. It fails only when
// the liveness analysis does (a malformed function).
func Allocate(f *ir.Function, k int) (*Allocation, error) {
	vars := f.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	n := len(vars)
	a := &Allocation{K: k, Register: make(map[string]int), NumVars: n}
	if n == 0 {
		return a, nil
	}

	info, err := live.Compute(f, vars)
	if err != nil {
		return nil, err
	}
	g := info.G

	// Interference graph as adjacency sets.
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		adj[u][v] = true
		adj[v][u] = true
	}
	for id, nd := range g.Nodes {
		// Pressure at node entry.
		pressure := 0
		for _, v := range vars {
			if info.LiveBefore(id, v) {
				pressure++
			}
		}
		if pressure > a.MaxPressure {
			a.MaxPressure = pressure
		}
		if nd.Kind != nodes.Stmt {
			continue
		}
		d := nd.Block.Instrs[nd.Index].Defs()
		if d == "" {
			continue
		}
		di := idx[d]
		for _, v := range vars {
			if v != d && info.LiveAfter(id, v) {
				addEdge(di, idx[v])
			}
		}
	}
	// Parameters are live on entry together: they interfere pairwise if
	// both are ever used (they hold distinct incoming values).
	entry := g.EntryNode()
	var liveParams []int
	for _, p := range f.Params {
		if info.LiveBefore(entry, p) {
			liveParams = append(liveParams, idx[p])
		}
	}
	for i := 0; i < len(liveParams); i++ {
		for j := i + 1; j < len(liveParams); j++ {
			addEdge(liveParams[i], liveParams[j])
		}
	}

	// Briggs optimistic coloring: simplify low-degree nodes first; when
	// stuck, push a maximum-degree node anyway and hope.
	degree := make([]int, n)
	removed := make([]bool, n)
	for i := range adj {
		degree[i] = len(adj[i])
	}
	stack := make([]int, 0, n)
	for len(stack) < n {
		// Prefer the lowest-index node with degree < k (determinism).
		pick := -1
		for i := 0; i < n; i++ {
			if !removed[i] && degree[i] < k {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Spill candidate: maximum current degree, lowest index ties.
			best := -1
			for i := 0; i < n; i++ {
				if removed[i] {
					continue
				}
				if best < 0 || degree[i] > degree[best] {
					best = i
				}
			}
			pick = best
		}
		removed[pick] = true
		stack = append(stack, pick)
		for v := range adj[pick] {
			if !removed[v] {
				degree[v]--
			}
		}
	}

	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		used := make([]bool, k)
		for w := range adj[v] {
			if c := color[w]; c >= 0 {
				used[c] = true
			}
		}
		assigned := -1
		for c := 0; c < k; c++ {
			if !used[c] {
				assigned = c
				break
			}
		}
		color[v] = assigned
		if assigned < 0 {
			a.Spilled = append(a.Spilled, vars[v])
		} else {
			a.Register[vars[v]] = assigned
		}
	}
	sort.Strings(a.Spilled)
	return a, nil
}

// MinRegisters returns the smallest K for which f colors without spills
// (by doubling then binary search). The result is bounded by the number of
// variables.
func MinRegisters(f *ir.Function) (int, error) {
	n := len(f.Vars())
	if n == 0 {
		return 0, nil
	}
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		a, err := Allocate(f, mid)
		if err != nil {
			return 0, err
		}
		if len(a.Spilled) == 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
