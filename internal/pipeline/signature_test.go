package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/textir"
)

const sigVictim = `
func victim(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  nop
  jmp join
join:
  y = a + b
  ret y
}
`

func sigParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func passOf(run func(f *ir.Function) error) Pass {
	return Pass{Name: "probe", Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		if err := run(f); err != nil {
			return nil, nil, err
		}
		return f, nil, nil
	}}
}

// TestSignatureClasses drives one failure of each class through Run and
// checks the structured signature that comes out.
func TestSignatureClasses(t *testing.T) {
	t.Run("panic", func(t *testing.T) {
		res, err := Run(sigParse(t, sigVictim), []Pass{passOf(func(*ir.Function) error { panic("boom") })}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok {
			t.Fatal("panic run reported no failure")
		}
		if sig.Pass != "probe" || sig.Stage != StageRun || sig.Class != "panic" || sig.Frame == "" {
			t.Fatalf("bad panic signature: %+v", sig)
		}
		if !strings.HasPrefix(sig.String(), "probe-run-panic-") {
			t.Errorf("String() = %q", sig)
		}
	})

	t.Run("fuel", func(t *testing.T) {
		res, err := Run(sigParse(t, sigVictim), []Pass{LCMPass(lcm.LCM)}, Options{Fuel: 1})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok {
			t.Fatal("fuel-starved run reported no failure")
		}
		if sig.Class != "fuel" || sig.Pass != "lcm" {
			t.Fatalf("bad fuel signature: %+v", sig)
		}
		if sig.String() != "lcm-run-fuel" {
			t.Errorf("String() = %q, want lcm-run-fuel", sig)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		res, err := Run(sigParse(t, sigVictim), []Pass{LCMPass(lcm.LCM)}, Options{Ctx: ctx})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok || sig.Stage != StageCanceled || sig.Class != "deadline" {
			t.Fatalf("bad deadline signature: %+v ok=%v", sig, ok)
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Run(sigParse(t, sigVictim), []Pass{LCMPass(lcm.LCM)}, Options{Ctx: ctx})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok || sig.Stage != StageCanceled || sig.Class != "cancel" {
			t.Fatalf("bad cancel signature: %+v ok=%v", sig, ok)
		}
	})

	t.Run("post-validate", func(t *testing.T) {
		res, err := Run(sigParse(t, sigVictim), []Pass{passOf(func(f *ir.Function) error {
			f.Blocks[0].Term = Terminator(t)
			return nil
		})}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok || sig.Stage != StagePostValidate || sig.Class != "validate" || sig.Frame == "" {
			t.Fatalf("bad validate signature: %+v ok=%v", sig, ok)
		}
	})

	t.Run("verify", func(t *testing.T) {
		res, err := Run(sigParse(t, sigVictim), []Pass{passOf(func(f *ir.Function) error {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Kind == ir.BinOp {
						b.Instrs[i].Op = ir.Sub // flip every binop: the returned y changes
					}
				}
			}
			return nil
		})}, Options{Verify: true, Seed: 3, Runs: 16})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok || sig.Stage != StageVerify || sig.Class != "inequivalent" {
			t.Fatalf("bad verify signature: %+v ok=%v", sig, ok)
		}
	})

	t.Run("invalid-input", func(t *testing.T) {
		bad := &ir.Function{Name: "f"}
		_, err := Run(bad, nil, Options{})
		if err == nil {
			t.Fatal("invalid input accepted")
		}
		sig, ok := RunSignature(nil, err)
		if !ok || sig.Stage != StageInput || sig.Class != "invalid" {
			t.Fatalf("bad input signature: %+v ok=%v", sig, ok)
		}
	})

	t.Run("clean", func(t *testing.T) {
		res, err := Run(sigParse(t, sigVictim), []Pass{LCMPass(lcm.LCM)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sig, ok := RunSignature(res, nil); ok {
			t.Fatalf("clean run produced signature %v", sig)
		}
	})
}

// Terminator returns a structurally invalid terminator for fault tests.
func Terminator(t *testing.T) ir.Terminator {
	t.Helper()
	return ir.Terminator{Kind: ir.TermKind(77)}
}

// TestSignatureStability: the same defect witnessed by two textually
// different programs yields the same signature; different defects yield
// different ones.
func TestSignatureStability(t *testing.T) {
	// Panic from inside package ir (Succ out of range), the realistic shape
	// of a buggy pass: frames outside the containment scaffolding.
	boom := passOf(func(f *ir.Function) error {
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.Ret {
				b.Succ(5) // panics: successor index out of range
			}
		}
		return nil
	})
	sigOf := func(src string, p Pass) Signature {
		res, err := Run(sigParse(t, src), []Pass{p}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig, ok := RunSignature(res, nil)
		if !ok {
			t.Fatal("no failure")
		}
		return sig
	}
	other := `
func g(p, q) {
e:
  z = p * q
  ret z
}
`
	a, b := sigOf(sigVictim, boom), sigOf(other, boom)
	if a != b {
		t.Errorf("same defect, different signatures: %v vs %v", a, b)
	}
	// A different panic site must land a different frame hash.
	nested := passOf(func(f *ir.Function) error {
		empty := &ir.Function{Name: "x"}
		empty.Entry() // panics: function has no blocks
		return nil
	})
	if c := sigOf(sigVictim, nested); c.Frame == a.Frame {
		t.Errorf("different panic sites share frame hash %q", c.Frame)
	}
}

// TestNormalize: volatile message parts collapse, stable parts survive.
func TestNormalize(t *testing.T) {
	a := Normalize(`ir: f.join12 has stale ID 12 (want 3)`)
	b := Normalize(`ir: f.join7 has stale ID 7 (want 4)`)
	if a != b {
		t.Errorf("normalized messages differ: %q vs %q", a, b)
	}
	if Normalize(`x "foo" y`) != Normalize(`x "bar" y`) {
		t.Error("quoted fragments not collapsed")
	}
	if Normalize("unreachable block") == Normalize("duplicate block") {
		t.Error("distinct messages collapsed")
	}
}

// TestPassErrorSignatureErrors: plain errors classify as "error" with a
// message fingerprint.
func TestPassErrorSignatureErrors(t *testing.T) {
	pe := &PassError{Pass: "p", Stage: StageRun, Err: errors.New("bad thing 42")}
	sig := pe.Signature()
	if sig.Class != "error" || sig.Frame == "" {
		t.Fatalf("bad signature: %+v", sig)
	}
	pe2 := &PassError{Pass: "p", Stage: StageRun, Err: errors.New("bad thing 43")}
	if pe2.Signature() != sig {
		t.Error("digit-only difference changed the signature")
	}
}
