// Package pipeline is the hardened pass manager every transformation of
// this module runs through in production settings. The paper's central
// promise is that lazy code motion never makes any path worse; this
// package extends that promise from the algorithm to the implementation:
// a buggy or crashing pass must never ship a corrupted function or take
// the process down with it.
//
// Each pass executes against a snapshot of the current function with four
// layers of containment:
//
//  1. panic containment — a recover() converts a panicking pass into a
//     structured *PassError carrying the panic value and stack;
//  2. invariant checking — ir.Validate runs on the input before the first
//     pass and on every pass's output (CFG successor/predecessor
//     consistency, one terminator per block, reachability of entry and
//     exit, instruction well-formedness), and verify.TempsDefined checks
//     that inserted temporaries are defined before use on all paths;
//  3. fuel — Options.Fuel bounds every data-flow fixpoint inside a pass
//     (threaded into dataflow.Solve/SolveWorklist and the bidirectional
//     and LATER fixpoints), so a non-converging solver returns a bounded
//     error instead of spinning;
//  4. graceful degradation — on any failure the snapshot is discarded,
//     the pipeline keeps the last-known-good function, records the
//     diagnostic, and continues with the next pass; Options.Verify
//     additionally re-checks every surviving pass output against its
//     input with verify.Equivalent on a battery of random inputs;
//  5. cancellation — Options.Ctx is polled before every pass and at the
//     iteration boundaries of every fixpoint inside each pass, so a
//     caller's deadline or cancel abandons the work promptly; the
//     canceled pass is discarded like any other failure and the
//     last-known-good function survives.
//
// The result is a system that degrades to "no optimization" instead of
// crashing or miscompiling — the property production compilers buy with
// between-pass IR verifiers and verified-fallback designs.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"lazycm/internal/dataflow"
	"lazycm/internal/gcse"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/mr"
	"lazycm/internal/opt"
	"lazycm/internal/sr"
	"lazycm/internal/verify"
)

// ErrInvalidInput reports that the input function failed validation before
// any pass ran. It is distinct from a pass failure: there is no
// last-known-good function to fall back to.
var ErrInvalidInput = errors.New("pipeline: invalid input function")

// Stage identifies where in a pass's lifecycle a failure occurred.
type Stage string

const (
	// StageRun is the pass body itself (an error return or a panic).
	StageRun Stage = "run"
	// StagePostValidate is the ir.Validate / verify.TempsDefined check of
	// the pass's output.
	StagePostValidate Stage = "post-validate"
	// StageVerify is the optional behavioural re-verification of the
	// output against the pass's input.
	StageVerify Stage = "verify"
	// StageCanceled marks a pass abandoned because Options.Ctx was done —
	// either the pass itself returned a cancellation error from a fixpoint,
	// or the pipeline observed the done context before starting the pass.
	StageCanceled Stage = "canceled"
)

// PassError is one contained pass failure: which pass, at which stage,
// and either an ordinary error or a recovered panic with its stack.
type PassError struct {
	// Pass is the name of the failing pass.
	Pass string
	// Stage is the lifecycle stage that failed.
	Stage Stage
	// Err is the failure. For a contained panic it wraps the panic value.
	Err error
	// PanicValue is the recovered value when the pass panicked, nil
	// otherwise.
	PanicValue any
	// Stack is the goroutine stack captured at recovery time (panics
	// only).
	Stack []byte
}

func (e *PassError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("pipeline: pass %s panicked: %v", e.Pass, e.PanicValue)
	}
	return fmt.Sprintf("pipeline: pass %s failed at %s: %v", e.Pass, e.Stage, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// Pass is one transformation slot in the pipeline. Run receives a private
// clone of the current function — it may mutate it freely or return a
// fresh function — and reports the transformed function plus the
// expression→temporary mapping for the defined-before-use check (nil when
// the pass introduces no temporaries).
type Pass struct {
	Name string
	Run  func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error)
}

// Options configures a pipeline run.
type Options struct {
	// Fuel bounds every data-flow fixpoint inside each pass to that many
	// node visits; 0 means unlimited.
	Fuel int
	// MaxRounds bounds the reapplication loop of the "opt" cleanup pass;
	// 0 means opt.DefaultMaxRounds.
	MaxRounds int
	// Canonical enables the commutative-canonicalization universe for the
	// LCM-family passes.
	Canonical bool
	// Verify re-runs each surviving pass output against its input with
	// verify.Equivalent on a battery of interpreted runs.
	Verify bool
	// Seed and Runs parameterize the verification battery; Runs <= 0
	// means DefaultVerifyRuns.
	Seed int64
	Runs int
	// Ctx, when non-nil, makes the run cancellable: it is polled before
	// every pass and at the iteration boundaries of every fixpoint inside
	// each pass. Cancellation composes with the fallback machinery — the
	// canceled pass is discarded like any other failure, no further passes
	// run, and Result.F is still the last-known-good function. Nil means
	// "never canceled".
	Ctx context.Context
	// Scratch is the shared analysis arena threaded into every pass that
	// solves data-flow problems: traversal orders are computed once per
	// graph and bit-vector working state is recycled across analyses
	// instead of reallocated. Run fills it in when nil, so every run has
	// one arena; callers that run many pipelines (e.g. a server worker)
	// may share a longer-lived arena across runs. Purely an allocation
	// optimization — results are identical with or without it.
	Scratch *dataflow.Scratch
}

// DefaultVerifyRuns is the verification battery size used when
// Options.Runs is unset.
const DefaultVerifyRuns = 8

// Result is the outcome of a pipeline run.
type Result struct {
	// F is the surviving function: the output of the last successful
	// pass, or a clone of the input when every pass failed.
	F *ir.Function
	// Applied lists the passes whose output was accepted, in order.
	Applied []string
	// Failures lists the contained pass failures, in order.
	Failures []*PassError
}

// FellBack reports whether at least one pass failed and was discarded.
func (r *Result) FellBack() bool { return len(r.Failures) > 0 }

// Canceled reports whether the run was cut short by Options.Ctx. The
// returned function is still valid — it is the output of the last pass
// that completed before the cancellation.
func (r *Result) Canceled() bool {
	for _, f := range r.Failures {
		if f.Stage == StageCanceled {
			return true
		}
	}
	return false
}

// Diagnostics renders the failures as one line each, for CLI output.
func (r *Result) Diagnostics() []string {
	out := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		out[i] = f.Error()
	}
	return out
}

// Run executes the passes in order over a clone of f. The input is
// validated first; an invalid input fails with ErrInvalidInput and no
// fallback. Every pass failure is contained: the pipeline discards that
// pass's output, records a *PassError, and continues with the
// last-known-good function, so Run returns a non-nil Result for every
// valid input.
//
// When Options.Ctx is done — before a pass starts or mid-pass, observed
// at a fixpoint's iteration boundary — the run stops: the in-flight
// pass's partial output is discarded exactly like any other failure, a
// StageCanceled failure is recorded, no further passes run, and Result.F
// is the last-known-good function. Cancellation therefore never ships a
// partial rewrite.
func Run(f *ir.Function, passes []Pass, o Options) (*Result, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil function", ErrInvalidInput)
	}
	if err := ir.Validate(f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if o.Scratch == nil {
		o.Scratch = dataflow.NewScratch()
	}
	res := &Result{F: f.Clone()}
	for _, p := range passes {
		if err := dataflow.Canceled(o.Ctx, p.Name); err != nil {
			res.Failures = append(res.Failures, &PassError{Pass: p.Name, Stage: StageCanceled, Err: err})
			break
		}
		out, perr := runOne(res.F, p, o)
		if perr != nil {
			if errors.Is(perr.Err, dataflow.ErrCanceled) {
				perr.Stage = StageCanceled
				res.Failures = append(res.Failures, perr)
				break
			}
			res.Failures = append(res.Failures, perr)
			continue
		}
		res.F = out
		res.Applied = append(res.Applied, p.Name)
	}
	return res, nil
}

// runOne executes one pass against a snapshot of cur and checks its
// output. Any failure — error, panic, invalid or inequivalent output —
// leaves cur untouched and is reported as a *PassError.
func runOne(cur *ir.Function, p Pass, o Options) (out *ir.Function, perr *PassError) {
	snapshot := cur.Clone()
	var tempFor map[ir.Expr]string
	func() {
		defer func() {
			if v := recover(); v != nil {
				perr = &PassError{
					Pass: p.Name, Stage: StageRun,
					Err:        fmt.Errorf("panic: %v", v),
					PanicValue: v,
					Stack:      debug.Stack(),
				}
			}
		}()
		var err error
		out, tempFor, err = p.Run(snapshot, o)
		if err != nil {
			perr = &PassError{Pass: p.Name, Stage: StageRun, Err: err}
		}
	}()
	if perr != nil {
		return nil, perr
	}
	if out == nil {
		return nil, &PassError{Pass: p.Name, Stage: StageRun, Err: errors.New("pass returned nil function")}
	}
	if err := ir.Validate(out); err != nil {
		return nil, &PassError{Pass: p.Name, Stage: StagePostValidate, Err: err}
	}
	if len(tempFor) > 0 {
		if err := verify.TempsDefined(out, tempFor); err != nil {
			return nil, &PassError{Pass: p.Name, Stage: StagePostValidate, Err: err}
		}
	}
	if o.Verify {
		runs := o.Runs
		if runs <= 0 {
			runs = DefaultVerifyRuns
		}
		if err := verify.Equivalent(cur, out, o.Seed, runs); err != nil {
			return nil, &PassError{Pass: p.Name, Stage: StageVerify, Err: err}
		}
	}
	return out, nil
}

// Guard runs fn with panic containment and returns the failure (error or
// contained panic) as a *PassError, or nil on success. It is the
// standalone form of the pipeline's run stage, used by drivers that
// execute work other than function passes (e.g. experiment generators).
func Guard(name string, fn func() error) (perr *PassError) {
	defer func() {
		if v := recover(); v != nil {
			perr = &PassError{
				Pass: name, Stage: StageRun,
				Err:        fmt.Errorf("panic: %v", v),
				PanicValue: v,
				Stack:      debug.Stack(),
			}
		}
	}()
	if err := fn(); err != nil {
		return &PassError{Pass: name, Stage: StageRun, Err: err}
	}
	return nil
}

// LCMPass returns the pass for one of the paper's placement modes.
func LCMPass(mode lcm.Mode) Pass {
	return Pass{
		Name: strings.ToLower(mode.String()),
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			res, err := lcm.TransformOpts(f, mode, lcm.Options{Canonical: o.Canonical, Fuel: o.Fuel, Ctx: o.Ctx, Scratch: o.Scratch})
			if err != nil {
				return nil, nil, err
			}
			// The pass keeps only the function and temp map; recycle the
			// predicate matrices into the run's shared arena.
			res.Release()
			return res.F, res.TempFor, nil
		},
	}
}

// MRPass returns the Morel–Renvoise baseline pass.
func MRPass() Pass {
	return Pass{
		Name: "mr",
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			res, err := mr.TransformOpts(f, mr.Options{Fuel: o.Fuel, Ctx: o.Ctx, Scratch: o.Scratch})
			if err != nil {
				return nil, nil, err
			}
			return res.F, res.TempFor, nil
		},
	}
}

// GCSEPass returns the global common-subexpression elimination pass.
func GCSEPass() Pass {
	return Pass{
		Name: "gcse",
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			res, err := gcse.TransformOpts(f, gcse.Options{Fuel: o.Fuel, Ctx: o.Ctx})
			if err != nil {
				return nil, nil, err
			}
			return res.F, res.TempFor, nil
		},
	}
}

// SRPass returns the strength-reduction pass.
func SRPass() Pass {
	return Pass{
		Name: "sr",
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			res, err := sr.Transform(f)
			if err != nil {
				return nil, nil, err
			}
			return res.F, nil, nil
		},
	}
}

// OptPass returns the full reapplication pipeline of package opt
// ([LCM, copy propagation, DCE] to a fixed point) as one pass.
func OptPass() Pass {
	return Pass{
		Name: "opt",
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			res, err := opt.PipelineOpts(f, opt.Options{MaxRounds: o.MaxRounds, Fuel: o.Fuel, Ctx: o.Ctx, Scratch: o.Scratch})
			if err != nil {
				return nil, nil, err
			}
			return res.F, nil, nil
		},
	}
}

// CleanupPass returns the post-PRE cleanup (copy propagation, dead-code
// elimination, CFG simplification) as one in-place pass.
func CleanupPass() Pass {
	return Pass{
		Name: "cleanup",
		Run: func(f *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			opt.PropagateCopies(f)
			if _, err := opt.EliminateDeadCodeScratch(o.Ctx, f, o.Scratch); err != nil {
				return nil, nil, err
			}
			f.Simplify()
			f.Recompute()
			return f, nil, nil
		},
	}
}

// ModeNames lists the mode names ForMode accepts, in display order.
func ModeNames() []string {
	return []string{"lcm", "alcm", "bcm", "mr", "gcse", "sr", "opt"}
}

// ForMode resolves a CLI mode name to its pass. The boolean is false for
// unknown names.
func ForMode(name string) (Pass, bool) {
	if m, ok := lcm.ParseMode(name); ok {
		return LCMPass(m), true
	}
	switch strings.ToLower(name) {
	case "mr":
		return MRPass(), true
	case "gcse":
		return GCSEPass(), true
	case "sr":
		return SRPass(), true
	case "opt":
		return OptPass(), true
	}
	return Pass{}, false
}
