package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lazycm/internal/dataflow"
	"lazycm/internal/faultify"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
)

// TestSoakConcurrentRun hammers Run itself from many goroutines with
// valid, fault-injected, fuel-starved and deadline-doomed inputs. Under
// -race this checks the library-level contract the lcmd server builds
// on: Run is safe to call concurrently, no panic escapes, a canceled run
// is classified as such, and whatever ships always validates.
func TestSoakConcurrentRun(t *testing.T) {
	passes := []Pass{
		LCMPass(lcm.LCM), MRPass(), GCSEPass(), OptPass(), CleanupPass(),
	}
	faults := faultify.All()
	const goroutines = 8
	const perG = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				f := randprog.Generate(randprog.Config{
					Seed: rng.Int63(), MaxDepth: 2, MaxItems: 3, MaxStmts: 3,
					Vars: 6, Params: 3, MaxTrips: 2,
				})
				opts := Options{Verify: true, Runs: 2, MaxRounds: 2}
				var cancel context.CancelFunc
				switch i % 4 {
				case 1:
					// A buggy-compiler mutation: Run must reject it or
					// contain the failing pass, never corrupt the result.
					faults[rng.Intn(len(faults))].Apply(f)
				case 2:
					// A deadline somewhere between "already expired" and
					// "mid-pipeline".
					var ctx context.Context
					ctx, cancel = context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(3))*time.Millisecond)
					opts.Ctx = ctx
				case 3:
					opts.Fuel = 1 + rng.Intn(64)
				}
				start := time.Now()
				res, err := Run(f, passes, opts)
				if cancel != nil {
					cancel()
					cancel = nil
					// Only deadlined runs have a promptness contract; an
					// unconstrained run may legitimately grind.
					if elapsed := time.Since(start); elapsed > 10*time.Second {
						t.Errorf("Run took %v past its deadline, cancellation bound broken", elapsed)
					}
				}
				if err != nil {
					if !errors.Is(err, ErrInvalidInput) {
						t.Errorf("non-containment error kind: %v", err)
					}
					continue
				}
				if verr := ir.Validate(res.F); verr != nil {
					t.Errorf("Run shipped an invalid function: %v", verr)
				}
				if res.Canceled() {
					last := res.Failures[len(res.Failures)-1]
					if !errors.Is(last.Err, dataflow.ErrCanceled) {
						t.Errorf("canceled result's failure does not unwrap to ErrCanceled: %v", last.Err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
