package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"lazycm/internal/dataflow"
)

// StageInput marks a failure of the input function itself: pipeline.Run
// rejected it with ErrInvalidInput before any pass ran. It appears only
// in signatures (Run reports the condition as an error, not a PassError).
const StageInput Stage = "input"

// Signature is the structured identity of one contained failure: which
// pass, at which lifecycle stage, which class of error, and — for panics
// and free-form errors — a stable hash of the panic frames or normalized
// message. Two failures with equal signatures are taken to witness the
// same defect; the triage subsystem dedupes quarantined crashers by it
// and names promoted regression files after it.
type Signature struct {
	// Pass is the failing pass name; empty for input-validation and
	// parse-level failures.
	Pass string
	// Stage is the lifecycle stage that failed (run, post-validate,
	// verify, canceled, input — or parse, assigned by the triage layer).
	Stage Stage
	// Class refines the stage: panic, fuel, deadline, cancel, validate,
	// inequivalent, invalid, syntax, error.
	Class string
	// Frame is an 8-hex-digit hash: for panics, of the topmost
	// non-runtime, non-containment stack frames; for free-form errors, of
	// the normalized message. Empty when the class alone identifies the
	// defect (fuel, deadline, cancel, inequivalent).
	Frame string
}

// String renders the signature in its canonical, filename-safe form,
// e.g. "lcm-run-panic-1a2b3c4d" or "input-invalid". Promoted crashers
// are named crash-<this>.ir.
func (s Signature) String() string {
	parts := make([]string, 0, 4)
	for _, p := range []string{s.Pass, string(s.Stage), s.Class, s.Frame} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "-")
}

// IsZero reports whether the signature is empty (no failure).
func (s Signature) IsZero() bool { return s == Signature{} }

// Signature classifies the contained failure. The classification depends
// only on stable properties — stage, sentinel error identity, panic call
// chain, normalized message — so the same defect reproduces the same
// signature across runs and across textually different victim programs.
func (e *PassError) Signature() Signature {
	sig := Signature{Pass: e.Pass, Stage: e.Stage}
	switch {
	case e.PanicValue != nil:
		sig.Class = "panic"
		sig.Frame = frameHash(e.Stack)
	case errors.Is(e.Err, dataflow.ErrCanceled):
		if errors.Is(e.Err, context.DeadlineExceeded) {
			sig.Class = "deadline"
		} else {
			sig.Class = "cancel"
		}
	case errors.Is(e.Err, dataflow.ErrFuelExhausted):
		sig.Class = "fuel"
	case e.Stage == StagePostValidate:
		sig.Class = "validate"
		sig.Frame = HashText(Normalize(errText(e.Err)))
	case e.Stage == StageVerify:
		sig.Class = "inequivalent"
	default:
		sig.Class = "error"
		sig.Frame = HashText(Normalize(errText(e.Err)))
	}
	return sig
}

// FirstFailure returns the run's first contained failure, or nil when
// every pass succeeded.
func (r *Result) FirstFailure() *PassError {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0]
}

// RunSignature classifies the outcome of a Run call. The boolean is
// false when the run completed without any contained failure (there is
// nothing to triage).
func RunSignature(res *Result, err error) (Signature, bool) {
	if err != nil {
		if errors.Is(err, ErrInvalidInput) {
			return Signature{Stage: StageInput, Class: "invalid", Frame: HashText(Normalize(err.Error()))}, true
		}
		return Signature{Stage: StageRun, Class: "error", Frame: HashText(Normalize(err.Error()))}, true
	}
	if pe := res.FirstFailure(); pe != nil {
		return pe.Signature(), true
	}
	return Signature{}, false
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Normalize rewrites the volatile parts of a diagnostic message — digit
// runs and quoted fragments, which typically carry block names, line
// numbers, counts and values — into fixed placeholders, so two textually
// different witnesses of the same defect normalize to the same string.
func Normalize(msg string) string {
	var b strings.Builder
	b.Grow(len(msg))
	inDigits := false
	inQuote := byte(0)
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
				b.WriteByte('Q')
			}
			continue
		}
		switch {
		case c == '"' || c == '\'':
			inQuote = c
		case c >= '0' && c <= '9':
			if !inDigits {
				b.WriteByte('N')
			}
			inDigits = true
			continue
		default:
			b.WriteByte(c)
		}
		inDigits = false
	}
	return b.String()
}

// HashText returns an 8-hex-digit FNV-1a hash of s, the frame/message
// fingerprint format used inside signatures.
func HashText(s string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return fmt.Sprintf("%08x", h.Sum32())
}

// frameHash fingerprints a recovered panic by the function names of its
// topmost meaningful frames. Runtime frames, the containment scaffolding
// of this package, and argument values are excluded, so the hash is
// stable across builds and across victim programs: it identifies where
// the code panicked, not what it panicked with.
func frameHash(stack []byte) string {
	var frames []string
	for _, line := range strings.Split(string(stack), "\n") {
		if line == "" || line[0] == '\t' || line[0] == ' ' {
			continue
		}
		if strings.HasPrefix(line, "goroutine ") {
			continue
		}
		name := line
		if i := strings.LastIndex(name, "("); i > 0 {
			name = name[:i]
		}
		name = strings.TrimPrefix(name, "created by ")
		switch {
		case strings.HasPrefix(name, "runtime"),
			strings.HasPrefix(name, "panic"),
			strings.HasPrefix(name, "testing."),
			strings.Contains(name, "internal/pipeline."):
			continue
		}
		frames = append(frames, name)
		if len(frames) == 4 {
			break
		}
	}
	return HashText(strings.Join(frames, "|"))
}
