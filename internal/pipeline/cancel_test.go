package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
)

// TestRunCanceledBeforeAnyPass: a context that is already done yields the
// validated input unchanged — a Result, not an error — with a single
// StageCanceled failure and no applied passes.
func TestRunCanceledBeforeAnyPass(t *testing.T) {
	f := parse(t, diamondSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(f, []Pass{LCMPass(lcm.LCM), MRPass()}, Options{Ctx: ctx})
	if err != nil {
		t.Fatalf("Run under canceled ctx must still return a Result: %v", err)
	}
	if !res.Canceled() {
		t.Fatal("Result.Canceled() = false under a canceled context")
	}
	if len(res.Applied) != 0 {
		t.Errorf("passes applied under a canceled context: %v", res.Applied)
	}
	if len(res.Failures) != 1 || res.Failures[0].Stage != StageCanceled {
		t.Errorf("want exactly one StageCanceled failure, got %v", res.Diagnostics())
	}
	if !errors.Is(res.Failures[0].Err, dataflow.ErrCanceled) {
		t.Errorf("failure does not unwrap to dataflow.ErrCanceled: %v", res.Failures[0].Err)
	}
	if err := ir.Validate(res.F); err != nil {
		t.Errorf("surviving function invalid: %v", err)
	}
	if res.F.String() != f.String() {
		t.Errorf("surviving function is not the input:\n%s\nvs\n%s", res.F, f)
	}
}

// TestRunCanceledMidPipeline: cancellation between passes keeps the output
// of the passes that completed (last-known-good), discards the rest, and
// runs no further passes.
func TestRunCanceledMidPipeline(t *testing.T) {
	f := parse(t, diamondSrc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var afterFirst *ir.Function
	first := Pass{Name: "first", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		afterFirst = g
		return g, nil, nil
	}}
	boom := Pass{Name: "boom", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		cancel() // the caller gives up while this pass runs
		return nil, nil, dataflow.Canceled(ctx, "boom-fixpoint")
	}}
	never := Pass{Name: "never", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		t.Error("pass after cancellation was executed")
		return g, nil, nil
	}}
	res, err := Run(f, []Pass{first, boom, never}, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled() || !res.FellBack() {
		t.Fatalf("want canceled fallback result, got applied=%v failures=%v", res.Applied, res.Diagnostics())
	}
	if len(res.Applied) != 1 || res.Applied[0] != "first" {
		t.Errorf("applied = %v, want [first]", res.Applied)
	}
	if res.F != afterFirst {
		t.Error("surviving function is not the last-known-good output")
	}
}

// TestRunDeadlineOnLargeFunction: a tiny deadline on a large generated
// function is honored promptly — the canceled run returns well within a
// generous bound and ships the validated input rather than a partial
// rewrite.
func TestRunDeadlineOnLargeFunction(t *testing.T) {
	f := randprog.Generate(randprog.Config{
		Seed: 7, MaxDepth: 6, MaxItems: 5, MaxStmts: 8, Vars: 12, Params: 4, MaxTrips: 4,
	})
	if err := f.Validate(); err != nil {
		t.Fatalf("generated function invalid: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(f, []Pass{LCMPass(lcm.LCM), MRPass(), OptPass()}, Options{Ctx: ctx, Verify: true, Runs: 2})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation not honored within bound: took %v", elapsed)
	}
	if err := ir.Validate(res.F); err != nil {
		t.Errorf("surviving function invalid after deadline: %v", err)
	}
	// Whether or not a pass squeezed through before the deadline, a
	// canceled result must carry the deadline error.
	if res.Canceled() {
		last := res.Failures[len(res.Failures)-1]
		if !errors.Is(last.Err, context.DeadlineExceeded) {
			t.Errorf("canceled failure does not unwrap to DeadlineExceeded: %v", last.Err)
		}
	}
}
