package pipeline

import (
	"errors"
	"strings"
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  nop
  jmp join
join:
  y = a + b
  ret y
}
`

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunAppliesPasses(t *testing.T) {
	f := parse(t, diamondSrc)
	res, err := Run(f, []Pass{LCMPass(lcm.LCM), CleanupPass()}, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack() || len(res.Failures) != 0 {
		t.Fatalf("unexpected fallback: %v", res.Diagnostics())
	}
	if got := strings.Join(res.Applied, ","); got != "lcm,cleanup" {
		t.Fatalf("Applied = %q", got)
	}
	if err := verify.Equivalent(f, res.F, 1, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidInput(t *testing.T) {
	f := parse(t, diamondSrc)
	f.Blocks[0].Term.Then = &ir.Block{Name: "phantom"} // dangling edge
	_, err := Run(f, []Pass{OptPass()}, Options{})
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput, got %v", err)
	}
	if _, err := Run(nil, nil, Options{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("nil function: want ErrInvalidInput, got %v", err)
	}
}

// TestPanickingPassFallsBack is the acceptance check of the hardened
// pipeline: a pass that panics must yield the original function, not a
// crash, and the panic must surface as a structured diagnostic.
func TestPanickingPassFallsBack(t *testing.T) {
	f := parse(t, diamondSrc)
	boom := Pass{
		Name: "boom",
		Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
			panic("kaboom")
		},
	}
	res, err := Run(f, []Pass{boom}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() || len(res.Failures) != 1 {
		t.Fatalf("panic not contained: %+v", res)
	}
	pe := res.Failures[0]
	if pe.Pass != "boom" || pe.Stage != StageRun || pe.PanicValue != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PassError wrong: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	if res.F.String() != f.String() {
		t.Fatalf("fallback is not the original function:\n%s", res.F)
	}
}

// TestPanicDoesNotAbortLaterPasses: after a contained failure the
// pipeline continues from the last-known-good function.
func TestPanicDoesNotAbortLaterPasses(t *testing.T) {
	f := parse(t, diamondSrc)
	boom := Pass{Name: "boom", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		panic("kaboom")
	}}
	lcmPass, _ := ForMode("lcm")
	res, err := Run(f, []Pass{boom, lcmPass}, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || len(res.Applied) != 1 || res.Applied[0] != "lcm" {
		t.Fatalf("continuation wrong: applied=%v failures=%v", res.Applied, res.Diagnostics())
	}
	if err := verify.Equivalent(f, res.F, 3, 16); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptingPassIsRejected: a pass returning a structurally invalid
// function must be caught by post-validation and discarded.
func TestCorruptingPassIsRejected(t *testing.T) {
	f := parse(t, diamondSrc)
	corrupt := Pass{Name: "corrupt", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		g.Blocks[1].Term.Then = &ir.Block{Name: "phantom"} // dangling edge, preds stale
		return g, nil, nil
	}}
	res, err := Run(f, []Pass{corrupt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() || res.Failures[0].Stage != StagePostValidate {
		t.Fatalf("corruption not caught at post-validate: %+v", res.Failures)
	}
	if res.F.String() != f.String() {
		t.Fatal("corrupted function shipped")
	}
}

// TestMiscompilingPassIsRejected: a structurally valid but semantically
// wrong output must be caught by the verify stage when enabled.
func TestMiscompilingPassIsRejected(t *testing.T) {
	f := parse(t, diamondSrc)
	miscompile := Pass{Name: "miscompile", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		// Flip + to - in the join block: valid IR, wrong behaviour.
		b := g.BlockByName("join")
		b.Instrs[0].Op = ir.Sub
		return g, nil, nil
	}}
	res, err := Run(f, []Pass{miscompile}, Options{Verify: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() || res.Failures[0].Stage != StageVerify {
		t.Fatalf("miscompile not caught at verify: %+v", res.Failures)
	}
	if res.F.String() != f.String() {
		t.Fatal("miscompiled function shipped")
	}
}

// TestUndefinedTempIsRejected: a pass claiming a temporary it never
// defines must fail the TempsDefined post-check.
func TestUndefinedTempIsRejected(t *testing.T) {
	f := parse(t, diamondSrc)
	bad := Pass{Name: "badtemp", Run: func(g *ir.Function, o Options) (*ir.Function, map[ir.Expr]string, error) {
		// Rewrite y = a + b to read a temp that is never assigned.
		b := g.BlockByName("join")
		b.Instrs[0] = ir.NewCopy("y", ir.Var("t0"))
		e := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
		return g, map[ir.Expr]string{e: "t0"}, nil
	}}
	res, err := Run(f, []Pass{bad}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() || res.Failures[0].Stage != StagePostValidate {
		t.Fatalf("undefined temp not caught: %+v", res.Failures)
	}
}

// TestFuelExhaustionFallsBack: with a starvation budget the optimizing
// pass fails with a bounded error and the pipeline returns the original.
func TestFuelExhaustionFallsBack(t *testing.T) {
	f := parse(t, diamondSrc)
	lcmPass, _ := ForMode("lcm")
	res, err := Run(f, []Pass{lcmPass}, Options{Fuel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() {
		t.Fatal("fuel 1 did not exhaust")
	}
	if res.F.String() != f.String() {
		t.Fatal("fallback is not the original")
	}
}

// TestAllModesOnRandomPrograms: every standard pass, run through the
// pipeline with verification, either applies cleanly or falls back — and
// the survivor is always equivalent to the input.
func TestAllModesOnRandomPrograms(t *testing.T) {
	for _, name := range ModeNames() {
		p, ok := ForMode(name)
		if !ok {
			t.Fatalf("ForMode(%q) unknown", name)
		}
		for seed := int64(0); seed < 12; seed++ {
			f := randprog.ForSeed(seed)
			res, err := Run(f, []Pass{p}, Options{Verify: true, Seed: seed, Runs: 4})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.FellBack() {
				// A fallback is legal (e.g. sr finds nothing to do and
				// errors) but the survivor must still be the input.
				continue
			}
			if err := verify.Equivalent(f, res.F, seed, 4); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestGuard(t *testing.T) {
	if pe := Guard("ok", func() error { return nil }); pe != nil {
		t.Fatalf("Guard on success: %v", pe)
	}
	pe := Guard("bad", func() error { return errors.New("nope") })
	if pe == nil || pe.Pass != "bad" || pe.PanicValue != nil {
		t.Fatalf("Guard on error: %+v", pe)
	}
	pe = Guard("explode", func() error { panic(42) })
	if pe == nil || pe.PanicValue != 42 || len(pe.Stack) == 0 {
		t.Fatalf("Guard on panic: %+v", pe)
	}
}
