package lcmblock

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Transform(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`

func TestDiamond(t *testing.T) {
	res := transform(t, diamondSrc)
	f := res.F
	if res.Deleted != 1 {
		t.Errorf("deleted = %d, want 1 (the join computation)\n%s", res.Deleted, f)
	}
	if res.Inserted != 1 {
		t.Errorf("inserted = %d, want 1 (on the else edge)\n%s", res.Inserted, f)
	}
	if res.Saved != 1 {
		t.Errorf("saved = %d, want 1 (the then computation)\n%s", res.Saved, f)
	}
	// The insertion must land in the else block (its edge to join is not
	// critical: else has one successor).
	els := f.BlockByName("else")
	if len(els.Instrs) != 1 || els.Instrs[0].Kind != ir.BinOp {
		t.Errorf("insertion not at end of else:\n%s", f)
	}
}

func TestCriticalEdgeSplit(t *testing.T) {
	// entry branches straight to join: insertion must split that edge —
	// the case block-level MR misses entirely.
	src := `
func f(a, b, c) {
entry:
  br c then join
then:
  x = a + b
  jmp join
join:
  y = a + b
  ret y
}`
	res := transform(t, src)
	if res.EdgesSplit != 1 {
		t.Fatalf("EdgesSplit = %d, want 1\n%s", res.EdgesSplit, res.F)
	}
	if res.Deleted != 1 || res.Inserted != 1 {
		t.Errorf("deleted=%d inserted=%d, want 1/1\n%s", res.Deleted, res.Inserted, res.F)
	}
	// Dynamic check: exactly one evaluation on each path.
	f := parse(t, src)
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	for _, c := range []int64{0, 1} {
		_, counts, err := interp.Run(res.F, interp.Options{Args: []int64{3, 4, c}})
		if err != nil {
			t.Fatal(err)
		}
		if counts[add] != 1 {
			t.Errorf("c=%d: a+b evaluated %d times, want 1\n%s", c, counts[add], res.F)
		}
	}
	_ = f
}

func TestLCSEPrePass(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`)
	if res.LCSEEliminated != 1 {
		t.Errorf("LCSEEliminated = %d, want 1\n%s", res.LCSEEliminated, res.F)
	}
	_, counts, _ := interp.Run(res.F, interp.Options{Args: []int64{1, 2}})
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 1 {
		t.Errorf("a+b evaluated %d times, want 1", counts[add])
	}
}

func TestLoopInvariantHoisted(t *testing.T) {
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`
	res := transform(t, src)
	f := parse(t, src)
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	args := []int64{2, 3, 50}
	_, before, _ := interp.Run(f, interp.Options{Args: args})
	_, after, _ := interp.Run(res.F, interp.Options{Args: args})
	if before[add] != 50 || after[add] != 1 {
		t.Errorf("invariant not hoisted: %d -> %d\n%s", before[add], after[add], res.F)
	}
}

func TestTopTestLoopSafe(t *testing.T) {
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = a + b
  i = i + 1
  jmp head
exit:
  ret i
}`
	res := transform(t, src)
	f := parse(t, src)
	// Zero-trip run must not evaluate a+b at all.
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	_, counts, _ := interp.Run(res.F, interp.Options{Args: []int64{1, 2, 0}})
	if counts[add] != 0 {
		t.Errorf("speculative evaluation on zero-trip path\n%s", res.F)
	}
	_ = f
}

func TestRandomProgramsVerified(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := randprog.ForSeed(seed)
		res, err := Transform(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := verify.Transformation{Name: "edge-LCM", F: res.F, TempFor: res.TempFor}
		if err := verify.Check(f, tr, seed*53, 4); err != nil {
			t.Fatalf("seed %d: %v\noriginal:\n%s\ntransformed:\n%s", seed, err, f, res.F)
		}
	}
}

// TestAgreesWithNodeLCM is the cross-validation of the two formulations:
// on every random program and input, the statement-level KRS placement and
// the block-level Drechsler–Stadel placement perform exactly the same
// number of dynamic candidate evaluations (both are computationally
// optimal, and optimal counts are unique per path).
func TestAgreesWithNodeLCM(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := randprog.ForSeed(seed)
		blockRes, err := Transform(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nodeRes, err := lcm.Transform(f, lcm.LCM)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exprs := props.Collect(f).Exprs()
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*411+int64(run))
			_, cb, err := interp.Run(blockRes.F, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			_, cn, err := interp.Run(nodeRes.F, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			nb := interp.CountsRestrictedTo(cb, exprs)
			nn := interp.CountsRestrictedTo(cn, exprs)
			for _, e := range exprs {
				if nb[e] != nn[e] {
					t.Fatalf("seed %d args %v: %s evaluated %d (edge) vs %d (node)\noriginal:\n%s\nedge:\n%s\nnode:\n%s",
						seed, args, e, nb[e], nn[e], f, blockRes.F, nodeRes.F)
				}
			}
		}
	}
}

func TestAnalysisExposed(t *testing.T) {
	res := transform(t, diamondSrc)
	a := res.Analysis
	if len(a.Edges) == 0 || a.Edges[0].From != nil {
		t.Fatal("virtual entry edge missing")
	}
	if a.TotalVectorOps() <= a.LaterVectorOps {
		t.Error("TotalVectorOps must include unidirectional problems")
	}
	if a.LaterPasses < 2 {
		t.Errorf("LaterPasses = %d", a.LaterPasses)
	}
	if len(a.UniStats) != 2 {
		t.Errorf("UniStats = %d", len(a.UniStats))
	}
}

func TestDeterministic(t *testing.T) {
	first := transform(t, diamondSrc).F.String()
	for i := 0; i < 10; i++ {
		if got := transform(t, diamondSrc).F.String(); got != first {
			t.Fatal("nondeterministic")
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	f := parse(t, diamondSrc)
	before := f.String()
	if _, err := Transform(f); err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("input mutated")
	}
}

func TestJumpBackToEntry(t *testing.T) {
	// The entry block is a loop header: the virtual-entry-edge insertion
	// path must not place loop code at the function top incorrectly.
	src := `
func f(a, b, n) {
entry:
  x = a + b
  n = n - 1
  c = 0 < n
  br c entry out
out:
  ret x
}`
	f := parse(t, src)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := verify.Transformation{Name: "edge-LCM", F: res.F, TempFor: res.TempFor}
	if err := verify.Check(f, tr, 99, 8); err != nil {
		t.Fatalf("%v\n%s", err, res.F)
	}
}
