// Package lcmblock implements the block-level, edge-placement formulation
// of Lazy Code Motion (the Drechsler–Stadel variation, SIGPLAN Notices
// 28(5), 1993 — the formulation adopted by GCC's lcm.cc). It computes the
// same computationally optimal placement as the statement-level core in
// package lcm, but expresses it with two derived edge predicates:
//
//	ANTIN/ANTOUT   anticipatability (down-safety), backward/must
//	AVIN/AVOUT     availability (up-safety), forward/must
//	EARLIEST(i,j)  = ANTIN(j) ∧ ¬AVOUT(i) ∧ (¬TRANSP(i) ∨ ¬ANTOUT(i))
//	               (on the virtual entry edge: just ANTIN(entry))
//	LATER(i,j)     = EARLIEST(i,j) ∨ (LATERIN(i) ∧ ¬ANTLOC(i))
//	LATERIN(j)     = ∏ over incoming edges of LATER
//	INSERT(i,j)    = LATER(i,j) ∧ ¬LATERIN(j)       (placed on the edge)
//	DELETE(b)      = ANTLOC(b) ∧ ¬LATERIN(b)
//
// Deleted upward-exposed computations read the temporary; surviving
// downward-exposed computations save into it (so availability-justified
// deletions see the value); INSERT edges get the computation materialized
// on the edge, splitting it into a fresh block when it cannot be attached
// to either endpoint.
//
// The paper's model assumes local common-subexpression elimination has
// run; Transform therefore applies package lcse first. The property that
// this variant and the statement-level core perform identical numbers of
// dynamic evaluations on every path is cross-checked in the tests.
package lcmblock

import (
	"context"
	"fmt"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/graph"
	"lazycm/internal/ir"
	"lazycm/internal/lcse"
	"lazycm/internal/props"
	"lazycm/internal/rewrite"
)

// Analysis exposes the block/edge-level predicates.
type Analysis struct {
	U     *props.Universe
	Local *props.BlockLocal
	// AntIn/AntOut and AvIn/AvOut are per-block.
	AntIn, AntOut *bitvec.Matrix
	AvIn, AvOut   *bitvec.Matrix
	// Edges lists the CFG edges the edge predicates are indexed by;
	// Edges[0] is the virtual entry edge (From == nil, To == entry).
	Edges []EdgeRef
	// Earliest, Later and Insert are per-edge (row = edge index).
	Earliest, Later, Insert *bitvec.Matrix
	// LaterIn and Delete are per-block.
	LaterIn, Delete *bitvec.Matrix
	// UniStats are the two unidirectional problems; LaterPasses and
	// LaterVectorOps are the LATER fixpoint's effort.
	UniStats                    []dataflow.Stats
	LaterPasses, LaterVectorOps int

	// sc is the arena the matrices were drawn from, when one was used.
	sc *dataflow.Scratch
}

// Release returns every predicate matrix to the arena it came from (no-op
// without one) and nils them out; the edge list, stats and locals stay
// valid. Callers that analyze many functions over one shared arena call it
// once they are done reading the predicates. Releasing twice is a no-op.
func (a *Analysis) Release() {
	if a == nil || a.sc == nil {
		return
	}
	a.sc.Release(a.AntIn, a.AntOut, a.AvIn, a.AvOut,
		a.Earliest, a.Later, a.Insert, a.LaterIn, a.Delete)
	a.AntIn, a.AntOut, a.AvIn, a.AvOut = nil, nil, nil, nil
	a.Earliest, a.Later, a.Insert, a.LaterIn, a.Delete = nil, nil, nil, nil, nil
}

// EdgeRef identifies an edge for the edge-indexed predicates. The virtual
// entry edge has From == nil.
type EdgeRef struct {
	From *ir.Block
	// Index is the successor slot in From (meaningless for the virtual
	// entry edge).
	Index int
	To    *ir.Block
}

// TotalVectorOps returns all whole-vector operations spent: the
// same-granularity comparison currency for experiment T4b.
func (a *Analysis) TotalVectorOps() int {
	t := a.LaterVectorOps
	for _, s := range a.UniStats {
		t += s.VectorOps
	}
	return t
}

// Options tunes an analysis or transformation run.
type Options struct {
	// Fuel bounds each data-flow problem (node visits) and the LATER
	// fixpoint (block visits); 0 means unlimited.
	Fuel int
	// Ctx, when non-nil, is polled at iteration boundaries of every
	// fixpoint; once done the run fails with an error unwrapping to
	// dataflow.ErrCanceled. Nil means "never canceled".
	Ctx context.Context
	// Scratch, when non-nil, is the shared analysis arena: the two
	// unidirectional solves and every predicate matrix draw from it.
	// Results are identical either way; callers should Release finished
	// analyses so the matrices recycle. See dataflow.Scratch.
	Scratch *dataflow.Scratch
}

// Analyze computes the edge-LCM predicates for f (which should already be
// LCSE-normalized; Transform takes care of that).
func Analyze(f *ir.Function) (*Analysis, error) {
	return AnalyzeOpts(f, Options{})
}

// AnalyzeFuel is Analyze with a node-visit budget per data-flow problem
// and the same budget (in block visits) on the LATER fixpoint; 0 means
// unlimited.
func AnalyzeFuel(f *ir.Function, fuel int) (*Analysis, error) {
	return AnalyzeOpts(f, Options{Fuel: fuel})
}

// AnalyzeOpts is Analyze with full options (fuel and cancellation).
func AnalyzeOpts(f *ir.Function, o Options) (*Analysis, error) {
	fuel := o.Fuel
	sc := o.Scratch
	u := props.Collect(f)
	local := props.ComputeBlockLocal(f, u)
	n := f.NumBlocks()
	w := u.Size()
	g := dataflow.BlockGraph{F: f}
	newMat := func(rows int) *bitvec.Matrix {
		if sc != nil {
			return sc.Matrix(rows, w)
		}
		return bitvec.NewMatrix(rows, w)
	}

	notTransp := newMat(n)
	for i := 0; i < n; i++ {
		row := notTransp.Row(i)
		row.CopyFrom(local.Transp.Row(i))
		row.Not()
	}

	ant, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "blk-ant", Dir: dataflow.Backward, Meet: dataflow.Must,
		Width: w, Gen: local.Antloc, Kill: notTransp,
		Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("lcmblock: %w", err)
	}
	av, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "blk-avail", Dir: dataflow.Forward, Meet: dataflow.Must,
		Width: w, Gen: local.Comp, Kill: notTransp,
		Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("lcmblock: %w", err)
	}
	if sc != nil {
		sc.Release(notTransp) // kill set only feeds the two solves above
	}

	a := &Analysis{
		U: u, Local: local,
		AntIn: ant.In, AntOut: ant.Out,
		AvIn: av.In, AvOut: av.Out,
		UniStats: []dataflow.Stats{ant.Stats, av.Stats},
		sc:       sc,
	}

	// Edge list: virtual entry edge first, then real edges in
	// deterministic (block, slot) order.
	a.Edges = append(a.Edges, EdgeRef{From: nil, To: f.Entry()})
	for _, e := range graph.Edges(f) {
		a.Edges = append(a.Edges, EdgeRef{From: e.From, Index: e.Index, To: e.To()})
	}
	ne := len(a.Edges)

	// EARLIEST per edge.
	a.Earliest = newMat(ne)
	var tmp, prev *bitvec.Vector
	if sc != nil {
		tmp, prev = sc.Vector(w), sc.Vector(w)
	} else {
		tmp, prev = bitvec.New(w), bitvec.New(w)
	}
	releaseWork := func() {
		if sc != nil {
			sc.ReleaseVector(tmp, prev)
		}
	}
	for x, e := range a.Edges {
		row := a.Earliest.Row(x)
		row.CopyFrom(a.AntIn.Row(e.To.ID))
		if e.From == nil {
			continue // virtual entry: EARLIEST = ANTIN(entry)
		}
		i := e.From.ID
		row.AndNot(a.AvOut.Row(i))
		// ∧ (¬TRANSP(i) ∨ ¬ANTOUT(i)) = ¬(TRANSP(i) ∧ ANTOUT(i))
		tmp.CopyFrom(local.Transp.Row(i))
		tmp.And(a.AntOut.Row(i))
		row.AndNot(tmp)
	}

	// LATER / LATERIN fixpoint (decreasing from all-ones).
	a.Later = newMat(ne)
	a.LaterIn = newMat(n)
	for x := 0; x < ne; x++ {
		a.Later.Row(x).SetAll()
	}
	for b := 0; b < n; b++ {
		a.LaterIn.Row(b).SetAll()
	}
	// Incoming edge indices per block.
	inEdges := make([][]int, n)
	for x, e := range a.Edges {
		inEdges[e.To.ID] = append(inEdges[e.To.ID], x)
	}
	rpo := graph.ReversePostorder(f)
	visits := 0
	for {
		if err := dataflow.Canceled(o.Ctx, "blk-later"); err != nil {
			releaseWork()
			return nil, err
		}
		a.LaterPasses++
		changed := false
		for _, b := range rpo {
			visits++
			if fuel > 0 && visits > fuel {
				releaseWork()
				return nil, fmt.Errorf("lcmblock: later fixpoint: %w",
					&dataflow.FuelError{Problem: "blk-later", Fuel: fuel})
			}
			// LATERIN(b) = ∏ incoming LATER. Every block has at least one
			// incoming edge (entry has the virtual one; others are
			// reachable).
			tmp.SetAll()
			for _, x := range inEdges[b.ID] {
				tmp.And(a.Later.Row(x))
				a.LaterVectorOps++
			}
			if a.LaterIn.Row(b.ID).CopyFrom(tmp) {
				changed = true
			}
			a.LaterVectorOps++
			// Outgoing LATER(b, s) = EARLIEST ∨ (LATERIN(b) ∧ ¬ANTLOC(b)).
			for x, e := range a.Edges {
				if e.From != b {
					continue
				}
				row := a.Later.Row(x)
				prev.CopyFrom(row)
				row.CopyFrom(a.LaterIn.Row(b.ID))
				row.AndNot(local.Antloc.Row(b.ID))
				row.Or(a.Earliest.Row(x))
				a.LaterVectorOps += 3
				if !row.Equal(prev) {
					changed = true
				}
			}
		}
		// The virtual entry edge's LATER is constant: EARLIEST(entry).
		if a.Later.Row(0).CopyFrom(a.Earliest.Row(0)) {
			changed = true
		}
		a.LaterVectorOps++
		if !changed {
			break
		}
	}

	releaseWork()

	// INSERT per edge; DELETE per block.
	a.Insert = newMat(ne)
	for x, e := range a.Edges {
		row := a.Insert.Row(x)
		row.CopyFrom(a.Later.Row(x))
		row.AndNot(a.LaterIn.Row(e.To.ID))
	}
	a.Delete = newMat(n)
	for b := 0; b < n; b++ {
		row := a.Delete.Row(b)
		row.CopyFrom(local.Antloc.Row(b))
		row.AndNot(a.LaterIn.Row(b))
	}
	return a, nil
}

// Result is the outcome of the edge-LCM transformation.
type Result struct {
	// F is the transformed clone (LCSE applied first); the input is not
	// mutated.
	F *ir.Function
	// TempFor maps each touched expression to its temporary.
	TempFor map[ir.Expr]string
	// Analysis is the edge-level analysis of the LCSE-normalized clone.
	Analysis *Analysis
	// Inserted/Deleted/Saved count the PRE edits; LCSEEliminated counts
	// the local pre-pass eliminations; EdgesSplit counts edges that needed
	// a fresh block for their insertion.
	Inserted, Deleted, Saved int
	LCSEEliminated           int
	EdgesSplit               int
}

// Release returns the result's analysis matrices to the scratch arena they
// were drawn from; the transformed function, counters, and TempFor map
// stay valid. No-op without an arena or on a nil/released result.
func (r *Result) Release() {
	if r == nil {
		return
	}
	r.Analysis.Release()
}

// Transform applies LCSE and then edge-based LCM to a clone of f.
func Transform(f *ir.Function) (*Result, error) {
	return TransformOpts(f, Options{})
}

// TransformOpts is Transform with full options (fuel and cancellation).
func TransformOpts(f *ir.Function, o Options) (*Result, error) {
	pre, err := lcse.Transform(f)
	if err != nil {
		return nil, fmt.Errorf("lcmblock: %w", err)
	}
	clone := pre.F
	a, err := AnalyzeOpts(clone, o)
	if err != nil {
		return nil, err
	}
	u := a.U
	w := u.Size()

	res := &Result{F: clone, Analysis: a, LCSEEliminated: pre.Eliminated}

	touched := make([]bool, w)
	for x := range a.Edges {
		a.Insert.Row(x).ForEach(func(e int) { touched[e] = true })
	}
	for b := 0; b < clone.NumBlocks(); b++ {
		a.Delete.Row(b).ForEach(func(e int) { touched[e] = true })
	}
	tempName, tempFor := rewrite.TempNamer(clone, u, touched, "e")
	res.TempFor = tempFor

	// Deletes and saves, per block.
	for _, b := range clone.Blocks {
		ed := rewrite.Edits{}
		a.Delete.Row(b.ID).ForEach(func(e int) { ed.Delete = append(ed.Delete, e) })
		for e := 0; e < w; e++ {
			if touched[e] && a.Local.Comp.Get(b.ID, e) {
				ed.SaveDown = append(ed.SaveDown, e)
			}
		}
		c := rewrite.Apply(b, u, ed, tempName)
		res.Deleted += c.Deleted
		res.Saved += c.Saved
	}

	// Insertions, per edge. Collect first: splitting edges while iterating
	// would disturb the edge references.
	type edgeInsert struct {
		ref   EdgeRef
		exprs []int
	}
	var inserts []edgeInsert
	for x, e := range a.Edges {
		row := a.Insert.Row(x)
		if row.IsEmpty() {
			continue
		}
		ei := edgeInsert{ref: e}
		row.ForEach(func(expr int) { ei.exprs = append(ei.exprs, expr) })
		inserts = append(inserts, ei)
	}
	for _, ins := range inserts {
		blk, split := materializeEdge(clone, ins.ref)
		if split {
			res.EdgesSplit++
		}
		// Insert at the end of blk (it is either a dedicated split block,
		// a single-successor source, or handled at the destination top).
		for _, expr := range ins.exprs {
			e := u.Expr(expr)
			in := ir.NewBinOp(tempName[expr], e.Op, e.A, e.B)
			if blk.atTop {
				blk.b.InsertAt(0, in)
			} else {
				blk.b.Append(in)
			}
			res.Inserted++
		}
	}

	clone.Recompute()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("lcmblock: transformed function invalid: %w", err)
	}
	return res, nil
}

// placement says where on an edge the insertion physically goes.
type placement struct {
	b     *ir.Block
	atTop bool
}

// materializeEdge returns the block that realizes a placement on the given
// edge, splitting the edge with a fresh block when neither endpoint can
// host the code alone.
func materializeEdge(f *ir.Function, e EdgeRef) (placement, bool) {
	if e.From == nil {
		// Virtual entry edge: the top of the entry block (which has no
		// other predecessors... it may have loop back edges; if so, split
		// semantics require a preheader — insert at top only if entry has
		// no predecessors).
		if len(f.Entry().Preds()) == 0 {
			return placement{b: f.Entry(), atTop: true}, false
		}
		// Extremely unusual shape (entry is a loop header): create a
		// fresh pre-entry block.
		nb := f.AddBlock(f.FreshBlockName("preentry"))
		old := f.Entry()
		// Make nb the new entry by swapping it to position 0.
		last := len(f.Blocks) - 1
		f.Blocks[0], f.Blocks[last] = f.Blocks[last], f.Blocks[0]
		nb.Term = ir.Terminator{Kind: ir.Jump, Then: old}
		f.Recompute()
		return placement{b: nb}, true
	}
	to := e.To
	// The destination can host the insertion at its top only if this edge
	// is its sole way in; the entry block always has the virtual entry
	// path in addition to any real predecessors.
	if len(to.Preds()) == 1 && to != f.Entry() {
		return placement{b: to, atTop: true}, false
	}
	if e.From.NumSuccs() == 1 {
		return placement{b: e.From}, false
	}
	// Critical edge: split.
	nb := f.AddBlock(f.FreshBlockName(e.From.Name + "." + to.Name + ".split"))
	nb.Term = ir.Terminator{Kind: ir.Jump, Then: to}
	e.From.SetSucc(e.Index, nb)
	f.Recompute()
	return placement{b: nb}, true
}
