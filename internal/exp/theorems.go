package exp

import (
	"fmt"

	"lazycm/internal/dataflow"
	"lazycm/internal/gcse"
	"lazycm/internal/graph"
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/mr"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

// transformAll runs every optimizer on f, panicking on internal failure
// (the experiments operate on generator output, which must always work).
type allResults struct {
	orig *ir.Function
	bcm  *lcm.Result
	alcm *lcm.Result
	lazy *lcm.Result
	mr   *mr.Result
	gcse *gcse.Result
}

func transformAll(f *ir.Function) allResults {
	bcm, err := lcm.Transform(f, lcm.BCM)
	if err != nil {
		panic(err)
	}
	alcm, err := lcm.Transform(f, lcm.ALCM)
	if err != nil {
		panic(err)
	}
	lazy, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		panic(err)
	}
	mrRes, err := mr.Transform(f)
	if err != nil {
		panic(err)
	}
	gcseRes, err := gcse.Transform(f)
	if err != nil {
		panic(err)
	}
	return allResults{orig: f, bcm: bcm, alcm: alcm, lazy: lazy, mr: mrRes, gcse: gcseRes}
}

// candEvals runs f on args and returns the dynamic candidate-expression
// evaluation count, attributed to the universe of orig.
func candEvals(orig, f *ir.Function, args []int64) int {
	_, counts, err := interp.Run(f, interp.Options{Args: args})
	if err != nil {
		panic(err)
	}
	return interp.CountsRestrictedTo(counts, props.Collect(orig).Exprs()).Total()
}

// T1Correctness verifies every transformation against the full battery on
// a fleet of random programs: the executable form of the paper's
// correctness theorem.
func T1Correctness(programs, runs int) *Report {
	r := &Report{
		ID:      "T1",
		Title:   fmt.Sprintf("correctness battery over %d random programs × %d inputs", programs, runs),
		Headers: []string{"transformation", "programs", "failures"},
	}
	names := []string{"BCM", "ALCM", "LCM", "MR", "GCSE"}
	failures := make(map[string]int, len(names))
	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		all := transformAll(f)
		checks := []verify.Transformation{
			{Name: "BCM", F: all.bcm.F, TempFor: all.bcm.TempFor},
			{Name: "ALCM", F: all.alcm.F, TempFor: all.alcm.TempFor},
			{Name: "LCM", F: all.lazy.F, TempFor: all.lazy.TempFor},
			{Name: "MR", F: all.mr.F, TempFor: all.mr.TempFor},
			{Name: "GCSE", F: all.gcse.F, TempFor: all.gcse.TempFor},
		}
		for _, c := range checks {
			if err := verify.Check(f, c, seed*31, runs); err != nil {
				failures[c.Name]++
			}
		}
	}
	for _, n := range names {
		r.AddRow(n, programs, failures[n])
	}
	return r
}

// T2CompOptimality measures dynamic candidate evaluations across the
// optimizers: the computational-optimality theorem (LCM = ALCM = BCM ≤
// every other safe transformation) and the strict improvements over MR and
// GCSE.
func T2CompOptimality(programs, runs int) *Report {
	r := &Report{
		ID:      "T2",
		Title:   fmt.Sprintf("dynamic candidate evaluations over %d random programs × %d inputs", programs, runs),
		Headers: []string{"transformation", "total evals", "vs original", "programs strictly better than MR"},
	}
	var orig, bcmT, alcmT, lazyT, mrT, gcseT int
	var lcmBeatsMR, lcmEqBCM int
	comparisons := 0
	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		all := transformAll(f)
		progLCMBetter := false
		progMismatch := false
		for run := 0; run < runs; run++ {
			args := randprog.Args(f, seed*977+int64(run))
			o := candEvals(f, f, args)
			bc := candEvals(f, all.bcm.F, args)
			al := candEvals(f, all.alcm.F, args)
			lz := candEvals(f, all.lazy.F, args)
			m := candEvals(f, all.mr.F, args)
			g := candEvals(f, all.gcse.F, args)
			orig += o
			bcmT += bc
			alcmT += al
			lazyT += lz
			mrT += m
			gcseT += g
			comparisons++
			if lz < m {
				progLCMBetter = true
			}
			if lz != bc || lz != al {
				progMismatch = true
			}
		}
		if progLCMBetter {
			lcmBeatsMR++
		}
		if !progMismatch {
			lcmEqBCM++
		}
	}
	ratio := func(v int) string {
		if orig == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(v)/float64(orig))
	}
	r.AddRow("original", orig, ratio(orig), "-")
	r.AddRow("GCSE", gcseT, ratio(gcseT), "-")
	r.AddRow("MR", mrT, ratio(mrT), "-")
	r.AddRow("BCM", bcmT, ratio(bcmT), "-")
	r.AddRow("ALCM", alcmT, ratio(alcmT), "-")
	r.AddRow("LCM", lazyT, ratio(lazyT), fmt.Sprintf("%d/%d", lcmBeatsMR, programs))
	r.Notef("LCM, ALCM and BCM agree on every run in %d/%d programs (computational optimality)", lcmEqBCM, programs)
	r.Notef("%d evaluation comparisons in total", comparisons)
	return r
}

// T3Lifetimes measures total temporary live ranges: the lifetime-optimality
// theorem (LCM ≤ ALCM ≤ BCM, with strict wins wherever delaying helps).
func T3Lifetimes(programs int) *Report {
	r := &Report{
		ID:      "T3",
		Title:   fmt.Sprintf("temporary lifetimes over %d random programs", programs),
		Headers: []string{"transformation", "total live points", "vs BCM", "programs strictly better than BCM"},
	}
	var bcmT, alcmT, lazyT int
	var lcmWins, violations int
	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		all := transformAll(f)
		sum := func(res *lcm.Result) int {
			t := 0
			for _, v := range mustLifetimes(res.F, res.TempFor) {
				t += v
			}
			return t
		}
		b, a, l := sum(all.bcm), sum(all.alcm), sum(all.lazy)
		bcmT += b
		alcmT += a
		lazyT += l
		if l < b {
			lcmWins++
		}
		if l > a || a > b {
			violations++
		}
	}
	ratio := func(v int) string {
		if bcmT == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(v)/float64(bcmT))
	}
	r.AddRow("BCM", bcmT, ratio(bcmT), "-")
	r.AddRow("ALCM", alcmT, ratio(alcmT), "-")
	r.AddRow("LCM", lazyT, ratio(lazyT), fmt.Sprintf("%d/%d", lcmWins, programs))
	r.Notef("ordering LCM ≤ ALCM ≤ BCM violated in %d/%d programs (expected 0)", violations, programs)
	return r
}

// T4Programs generates the workload T4 and T4b measure over: programsPer
// deterministic random programs per entry of sizes. Benchmarks generate
// the workload once and time only the analyses; the experiment driver
// composes the two.
func T4Programs(sizes []int, programsPer int) [][]*ir.Function {
	progs := make([][]*ir.Function, len(sizes))
	for d, depth := range sizes {
		progs[d] = make([]*ir.Function, programsPer)
		for i := range progs[d] {
			cfg := randprog.Default(int64(depth*10000 + i))
			cfg.MaxDepth = depth
			progs[d][i] = randprog.Generate(cfg)
		}
	}
	return progs
}

// T4SolverCost compares the analysis effort of LCM's four unidirectional
// problems against Morel–Renvoise's bidirectional system, over growing
// program sizes: the paper's efficiency argument, in vector operations and
// fixpoint passes.
func T4SolverCost(sizes []int, programsPer int) *Report {
	return T4SolverCostOn(sizes, T4Programs(sizes, programsPer))
}

// T4SolverCostOn runs the T4 measurement over a pre-generated workload:
// progs[d] holds the programs for sizes[d].
func T4SolverCostOn(sizes []int, progs [][]*ir.Function) *Report {
	r := &Report{
		ID:    "T4",
		Title: "solver cost: LCM (4 unidirectional problems) vs MR (bidirectional fixpoint)",
		Headers: []string{
			"max depth", "avg stmts", "avg LCM vec-ops", "avg LCM passes",
			"avg MR vec-ops", "avg MR passes", "MR/LCM ops",
		},
	}
	// One arena for the whole experiment: every analysis draws its
	// matrices from it and releases them, so the measured cost is the
	// solvers', not the allocator's. Only the analyses run — T4 reports
	// solver effort, and the rewrite phase both transforms would bolt on
	// produces programs this experiment immediately discards. The prep
	// below (clone, critical-edge split, universe, graph) mirrors
	// lcm.TransformOpts exactly, so the solver numbers are the ones any
	// caller of the full transform pays.
	sc := dataflow.NewScratch()
	for d, depth := range sizes {
		var stmts, lcmOps, lcmPasses, mrOps, mrPasses int
		for _, f := range progs[d] {
			stmts += f.NumInstrs()
			clone := f.Clone()
			graph.SplitCriticalEdges(clone)
			u := props.Collect(clone)
			g := nodes.Build(clone, u)
			la, err := lcm.AnalyzeOpts(g, lcm.Options{Scratch: sc})
			if err != nil {
				panic(err)
			}
			lcmOps += la.TotalVectorOps()
			for _, s := range la.Stats {
				lcmPasses += s.Passes
			}
			la.Release()
			ma, err := mr.AnalyzeOpts(f, mr.Options{Scratch: sc})
			if err != nil {
				panic(err)
			}
			mrOps += ma.BidirVectorOps
			mrPasses += ma.Passes
			for _, s := range ma.UniStats {
				mrOps += s.VectorOps
				mrPasses += s.Passes
			}
			ma.Release()
		}
		n := len(progs[d])
		ratio := "n/a"
		if lcmOps > 0 {
			ratio = fmt.Sprintf("%.2f", float64(mrOps)/float64(lcmOps))
		}
		r.AddRow(depth, stmts/n, lcmOps/n, lcmPasses/n, mrOps/n, mrPasses/n, ratio)
	}
	r.Notef("LCM runs on statement-level nodes, MR on blocks; vector ops are whole-bit-vector and/or/copy operations")
	return r
}

// T5LoopInvariant measures the loop-invariant subsumption claim: dynamic
// evaluations of an invariant expression in a bottom-test loop, original vs
// LCM, as the trip count grows.
func T5LoopInvariant(trips []int64) *Report {
	const src = `
func loopinv(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  y = x * 2
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret y
}
`
	f, err := textir.ParseFunction(src)
	if err != nil {
		panic(err)
	}
	res, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		panic(err)
	}
	r := &Report{
		ID:      "T5",
		Title:   "loop-invariant code motion as a PRE special case (bottom-test loop)",
		Headers: []string{"trips", "evals original", "evals LCM", "speedup factor"},
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	for _, n := range trips {
		args := []int64{3, 4, n}
		_, before, _ := interp.Run(f, interp.Options{Args: args})
		_, after, _ := interp.Run(res.F, interp.Options{Args: args})
		b, a := before[add], after[add]
		factor := "inf"
		if a > 0 {
			factor = fmt.Sprintf("%.1f", float64(b)/float64(a))
		}
		r.AddRow(n, b, a, factor)
	}
	r.Notef("the multiplication x*2 is also invariant but depends on x; a second LCM pass after copy propagation would lift it — out of scope, as in the paper")
	return r
}

// T6GCSE measures the global-CSE subsumption claim: on every random
// program and input, LCM eliminates at least as many evaluations as GCSE.
func T6GCSE(programs, runs int) *Report {
	r := &Report{
		ID:      "T6",
		Title:   fmt.Sprintf("GCSE subsumption over %d random programs × %d inputs", programs, runs),
		Headers: []string{"relation", "runs", "violations"},
	}
	total, violations, strict := 0, 0, 0
	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		all := transformAll(f)
		for run := 0; run < runs; run++ {
			args := randprog.Args(f, seed*31337+int64(run))
			g := candEvals(f, all.gcse.F, args)
			l := candEvals(f, all.lazy.F, args)
			total++
			if l > g {
				violations++
			}
			if l < g {
				strict++
			}
		}
	}
	r.AddRow("LCM ≤ GCSE", total, violations)
	r.Notef("LCM strictly better than GCSE on %d/%d runs (partial redundancies GCSE cannot touch)", strict, total)
	return r
}
