package exp

import (
	"fmt"

	"lazycm/internal/interp"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

// T7Canonicalization measures the commutative-canonicalization extension:
// the paper's model is purely lexical (a+b and b+a are different
// expressions), so canonicalizing commutative operands can only expose
// more redundancies. The experiment compares total dynamic evaluations of
// lexical LCM against canonical LCM on the random fleet, plus a crafted
// worked example.
func T7Canonicalization(programs, runs int) *Report {
	r := &Report{
		ID:      "T7",
		Title:   fmt.Sprintf("commutative canonicalization over %d random programs × %d inputs", programs, runs),
		Headers: []string{"variant", "total evals", "vs lexical LCM"},
	}
	var lexT, canT int
	strictly, violations := 0, 0
	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		lex, err := lcm.Transform(f, lcm.LCM)
		if err != nil {
			panic(err)
		}
		can, err := lcm.TransformWith(f, lcm.LCM, true)
		if err != nil {
			panic(err)
		}
		progStrict := false
		for run := 0; run < runs; run++ {
			args := randprog.Args(f, seed*4021+int64(run))
			_, cl, err := interp.Run(lex.F, interp.Options{Args: args})
			if err != nil {
				panic(err)
			}
			_, cc, err := interp.Run(can.F, interp.Options{Args: args})
			if err != nil {
				panic(err)
			}
			// Compare TOTAL evaluations: canonicalization moves counts
			// between commuted lexemes, so per-lexeme comparison does not
			// apply.
			l, c := cl.Total(), cc.Total()
			lexT += l
			canT += c
			if c < l {
				progStrict = true
			}
			if c > l {
				violations++
			}
		}
		if progStrict {
			strictly++
		}
	}
	ratio := "n/a"
	if lexT > 0 {
		ratio = fmt.Sprintf("%.4f", float64(canT)/float64(lexT))
	}
	r.AddRow("lexical LCM", lexT, "1.0000")
	r.AddRow("canonical LCM", canT, ratio)
	r.Notef("canonical strictly better on %d/%d programs; worse on %d runs (expected 0)", strictly, programs, violations)

	// Worked example: x = a+b on one arm, y = b+a at the join.
	const src = `
func commuted(a, b, p) {
entry:
  br p then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = b + a
  ret y
}
`
	f, err := textir.ParseFunction(src)
	if err != nil {
		panic(err)
	}
	lex, _ := lcm.Transform(f, lcm.LCM)
	can, _ := lcm.TransformWith(f, lcm.LCM, true)
	args := []int64{3, 4, 1}
	_, cl, _ := interp.Run(lex.F, interp.Options{Args: args})
	_, cc, _ := interp.Run(can.F, interp.Options{Args: args})
	r.Notef("worked example (p=1): lexical LCM evaluates %d, canonical %d (a+b ≡ b+a merged)", cl.Total(), cc.Total())
	return r
}
