package exp

import (
	"fmt"

	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/lcmblock"
	"lazycm/internal/lcse"
	"lazycm/internal/mr"
)

// T4bSolverCostBlockLevel is the same-granularity version of T4: both the
// edge-based LCM variant and Morel–Renvoise run on basic blocks, so their
// whole-vector operation counts are directly comparable. This is the
// paper's efficiency claim in its cleanest measurable form: two
// unidirectional problems plus a unidirectionally-solvable LATER system
// against a genuinely bidirectional fixpoint.
func T4bSolverCostBlockLevel(sizes []int, programsPer int) *Report {
	return T4bSolverCostBlockLevelOn(sizes, T4Programs(sizes, programsPer))
}

// T4bSolverCostBlockLevelOn runs the T4b measurement over a pre-generated
// workload (the same shape T4Programs returns), so benchmarks can keep
// program generation outside the timed region.
func T4bSolverCostBlockLevelOn(sizes []int, progs [][]*ir.Function) *Report {
	r := &Report{
		ID:    "T4b",
		Title: "solver cost at block granularity: edge-LCM vs MR (bidirectional)",
		Headers: []string{
			"max depth", "avg blocks", "avg LCM vec-ops", "avg LCM passes",
			"avg MR vec-ops", "avg MR passes", "MR/LCM ops",
		},
	}
	// One arena for the whole experiment, as in T4: measure the solvers,
	// not the allocator. As in T4 only the analyses run — the report
	// consumes solver effort counts, not the rewritten programs. The
	// local-CSE pre-pass mirrors lcmblock.TransformOpts so the edge-LCM
	// numbers match what the full transform pays.
	sc := dataflow.NewScratch()
	for d, depth := range sizes {
		var blocks, lcmOps, lcmPasses, mrOps, mrPasses int
		for _, f := range progs[d] {
			blocks += f.NumBlocks()

			pre, err := lcse.Transform(f)
			if err != nil {
				panic(err)
			}
			ba, err := lcmblock.AnalyzeOpts(pre.F, lcmblock.Options{Scratch: sc})
			if err != nil {
				panic(err)
			}
			lcmOps += ba.TotalVectorOps()
			lcmPasses += ba.LaterPasses
			for _, s := range ba.UniStats {
				lcmPasses += s.Passes
			}
			ba.Release()

			ma, err := mr.AnalyzeOpts(f, mr.Options{Scratch: sc})
			if err != nil {
				panic(err)
			}
			mrOps += ma.BidirVectorOps
			mrPasses += ma.Passes
			for _, s := range ma.UniStats {
				mrOps += s.VectorOps
				mrPasses += s.Passes
			}
			ma.Release()
		}
		n := len(progs[d])
		ratio := "n/a"
		if lcmOps > 0 {
			ratio = fmt.Sprintf("%.2f", float64(mrOps)/float64(lcmOps))
		}
		r.AddRow(depth, blocks/n, lcmOps/n, lcmPasses/n, mrOps/n, mrPasses/n, ratio)
	}
	r.Notef("both analyses run on basic blocks; LCM = anticipatability + availability + LATER, MR = availability + partial availability + bidirectional PP")
	return r
}
