package exp

import (
	"fmt"

	"lazycm/internal/lcmblock"
	"lazycm/internal/mr"
	"lazycm/internal/randprog"
)

// T4bSolverCostBlockLevel is the same-granularity version of T4: both the
// edge-based LCM variant and Morel–Renvoise run on basic blocks, so their
// whole-vector operation counts are directly comparable. This is the
// paper's efficiency claim in its cleanest measurable form: two
// unidirectional problems plus a unidirectionally-solvable LATER system
// against a genuinely bidirectional fixpoint.
func T4bSolverCostBlockLevel(sizes []int, programsPer int) *Report {
	r := &Report{
		ID:    "T4b",
		Title: "solver cost at block granularity: edge-LCM vs MR (bidirectional)",
		Headers: []string{
			"max depth", "avg blocks", "avg LCM vec-ops", "avg LCM passes",
			"avg MR vec-ops", "avg MR passes", "MR/LCM ops",
		},
	}
	for _, depth := range sizes {
		var blocks, lcmOps, lcmPasses, mrOps, mrPasses int
		for i := 0; i < programsPer; i++ {
			cfg := randprog.Default(int64(depth*10000 + i))
			cfg.MaxDepth = depth
			f := randprog.Generate(cfg)
			blocks += f.NumBlocks()

			bres, err := lcmblock.Transform(f)
			if err != nil {
				panic(err)
			}
			lcmOps += bres.Analysis.TotalVectorOps()
			lcmPasses += bres.Analysis.LaterPasses
			for _, s := range bres.Analysis.UniStats {
				lcmPasses += s.Passes
			}

			mres, err := mr.Transform(f)
			if err != nil {
				panic(err)
			}
			mrOps += mres.TotalVectorOps()
			mrPasses += mres.Bidir.Passes
			for _, s := range mres.UniStats {
				mrPasses += s.Passes
			}
		}
		n := programsPer
		ratio := "n/a"
		if lcmOps > 0 {
			ratio = fmt.Sprintf("%.2f", float64(mrOps)/float64(lcmOps))
		}
		r.AddRow(depth, blocks/n, lcmOps/n, lcmPasses/n, mrOps/n, mrPasses/n, ratio)
	}
	r.Notef("both analyses run on basic blocks; LCM = anticipatability + availability + LATER, MR = availability + partial availability + bidirectional PP")
	return r
}
