// Package exp is the experiment harness: it regenerates, as executable
// measurements, every figure of the paper's development (F1–F5, the worked
// flow-graph examples) and every theorem/claim as a quantitative experiment
// (T1–T6). cmd/lcmexp prints the reports; bench_test.go at the module root
// exposes one benchmark per experiment; EXPERIMENTS.md records the
// paper-expected shape against the measured outcome.
package exp

import (
	"fmt"
	"strings"
)

// Report is one experiment's table.
type Report struct {
	// ID is the experiment identifier (F1…F5, T1…T6).
	ID string
	// Title is a one-line description.
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the table body.
	Rows [][]string
	// Notes carry free-form findings appended after the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	r.Rows = append(r.Rows, row)
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
