package exp

import (
	"fmt"

	"lazycm/internal/graph"
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/live"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/textir"
)

// RunningExampleSrc is the reconstruction of the paper's worked flow-graph
// example. It packs, into one function, every phenomenon the paper's
// figures walk through: a computation that is partially redundant across a
// join, an operand kill that blocks hoisting on one arm, a bottom-test loop
// whose invariant computation must be moved to the preheader, a critical
// back edge that needs a synthetic node, and a fully redundant computation
// after the loop.
const RunningExampleSrc = `
func running(a, b, p, n) {
entry:
  br p left right
left:
  x = a + b
  jmp join
right:
  a = 5
  jmp join
join:
  i = 0
  jmp loop
loop:
  y = a + b
  i = i + 1
  c = i < n
  br c loop after
after:
  z = a + b
  ret z
}
`

// MotivatingExampleSrc is the minimal partially-redundant diamond used by
// figures F2–F4 where the running example would obscure the single
// phenomenon under discussion.
const MotivatingExampleSrc = `
func diamond(a, b, p) {
entry:
  br p then else
then:
  x = a + b
  jmp join
else:
  nop
  jmp join
join:
  y = a + b
  ret y
}
`

// IsolationExampleSrc demonstrates isolation (figure F5): the computation
// in the taken arm has no further uses, so ALCM's insertion would feed only
// the statement it precedes.
const IsolationExampleSrc = `
func isolated(a, b, p) {
entry:
  br p yes no
yes:
  x = a + b
  ret x
no:
  ret 0
}
`

func mustParse(src string) *ir.Function {
	f, err := textir.ParseFunction(src)
	if err != nil {
		panic(fmt.Sprintf("exp: bad embedded example: %v", err))
	}
	return f
}

// analyzed prepares a function for predicate display: clone, split critical
// edges, build the node graph, run the analysis.
func analyzed(src string) (*ir.Function, *nodes.Graph, *lcm.Analysis) {
	f := mustParse(src)
	graph.SplitCriticalEdges(f)
	u := props.Collect(f)
	g := nodes.Build(f, u)
	a, err := lcm.Analyze(g)
	if err != nil {
		panic(err)
	}
	return f, g, a
}

// mustPlacement and mustLifetimes panic on error: figure generation runs
// on fixed known-good inputs, and the guarded experiment driver converts
// any panic into a contained failure report.
func mustPlacement(a *lcm.Analysis, mode lcm.Mode) *lcm.Placement {
	p, err := a.Placement(mode)
	if err != nil {
		panic(err)
	}
	return p
}

func mustLifetimes(f *ir.Function, tempFor map[ir.Expr]string) map[string]int {
	life, err := live.TempLifetimes(f, tempFor)
	if err != nil {
		panic(err)
	}
	return life
}

func mark(b bool) string {
	if b {
		return "X"
	}
	return "."
}

// Figure1 reproduces the motivating worked example: the full predicate
// table over the running example for the expression a+b, plus the dynamic
// evaluation counts before and after LCM.
func Figure1() *Report {
	f, g, a := analyzed(RunningExampleSrc)
	u := g.U
	ei, ok := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	if !ok {
		panic("exp: running example lost its expression")
	}
	r := &Report{
		ID:    "F1",
		Title: "running example: predicates for a+b at every program point",
		Headers: []string{
			"node", "COMP", "TRANSP", "DSAFE", "USAFE", "EARLIEST", "DELAY", "LATEST", "ISOLATED",
		},
	}
	for id := 0; id < g.NumNodes(); id++ {
		r.AddRow(
			g.Nodes[id].String(),
			mark(g.Comp.Get(id, ei)),
			mark(g.Transp.Get(id, ei)),
			mark(a.DSafe.Get(id, ei)),
			mark(a.USafe.Get(id, ei)),
			mark(a.Earliest.Get(id, ei)),
			mark(a.Delay.Get(id, ei)),
			mark(a.Latest.Get(id, ei)),
			mark(a.Isolated.Get(id, ei)),
		)
	}

	orig := mustParse(RunningExampleSrc)
	res, err := lcm.Transform(orig, lcm.LCM)
	if err != nil {
		panic(err)
	}
	addExpr := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	for _, p := range []int64{0, 1} {
		args := []int64{7, 4, p, 5}
		_, before, _ := interp.Run(orig, interp.Options{Args: args})
		_, afterAll, _ := interp.Run(res.F, interp.Options{Args: args})
		after := interp.CountsRestrictedTo(afterAll, props.Collect(orig).Exprs())
		r.Notef("dynamic candidate evaluations with p=%d, n=5: %d before, %d after LCM (a+b alone: %d before, %d after)",
			p, before.Total(), after.Total(), before[addExpr], after[addExpr])
	}
	r.Notef("LCM inserted %d, replaced %d, split %d critical edge(s)", res.Inserted, res.Replaced, res.EdgesSplit)
	_ = f
	return r
}

// Figure2 reproduces the safe-program-points figure: SAFE = DSAFE ∨ USAFE
// on the diamond, and the check that every LCM insertion lies inside the
// safe region.
func Figure2() *Report {
	_, g, a := analyzed(MotivatingExampleSrc)
	const ei = 0
	r := &Report{
		ID:      "F2",
		Title:   "safe program points (DSAFE ∨ USAFE) on the diamond",
		Headers: []string{"node", "DSAFE", "USAFE", "SAFE"},
	}
	safeCount, insertInSafe, insertTotal := 0, 0, 0
	p := mustPlacement(a, lcm.LCM)
	for id := 0; id < g.NumNodes(); id++ {
		ds, us := a.DSafe.Get(id, ei), a.USafe.Get(id, ei)
		if ds || us {
			safeCount++
		}
		if p.Insert.Get(id, ei) {
			insertTotal++
			if ds || us {
				insertInSafe++
			}
		}
		r.AddRow(g.Nodes[id].String(), mark(ds), mark(us), mark(ds || us))
	}
	r.Notef("%d of %d nodes are safe; %d/%d LCM insertions fall on safe nodes",
		safeCount, g.NumNodes(), insertInSafe, insertTotal)
	return r
}

// Figure3 reproduces the busy-code-motion figure: the EARLIEST placement on
// the diamond, its transformed program, and its temporary lifetime.
func Figure3() *Report {
	f := mustParse(MotivatingExampleSrc)
	res, err := lcm.Transform(f, lcm.BCM)
	if err != nil {
		panic(err)
	}
	r := &Report{
		ID:      "F3",
		Title:   "busy code motion: earliest placement on the diamond",
		Headers: []string{"metric", "value"},
	}
	r.AddRow("insertions", res.Inserted)
	r.AddRow("replacements", res.Replaced)
	r.AddRow("static computations before", lcm.StaticComputations(f))
	r.AddRow("static computations after", lcm.StaticComputations(res.F))
	life := mustLifetimes(res.F, res.TempFor)
	total := 0
	for _, v := range life {
		total += v
	}
	r.AddRow("temp lifetime (live points)", total)
	r.Notef("BCM hoists to the entry block: computationally optimal, maximal register pressure")
	return r
}

// Figure4 reproduces the delayability figure: where DELAY pushes the
// insertion on the diamond, and the lifetime win of LCM over BCM.
func Figure4() *Report {
	f, g, a := analyzed(MotivatingExampleSrc)
	const ei = 0
	r := &Report{
		ID:      "F4",
		Title:   "delayability: latest placement and the lifetime gain",
		Headers: []string{"node", "DELAY", "LATEST"},
	}
	for id := 0; id < g.NumNodes(); id++ {
		r.AddRow(g.Nodes[id].String(), mark(a.Delay.Get(id, ei)), mark(a.Latest.Get(id, ei)))
	}
	orig := mustParse(MotivatingExampleSrc)
	for _, mode := range []lcm.Mode{lcm.BCM, lcm.ALCM, lcm.LCM} {
		res, err := lcm.Transform(orig, mode)
		if err != nil {
			panic(err)
		}
		life := mustLifetimes(res.F, res.TempFor)
		total := 0
		for _, v := range life {
			total += v
		}
		r.Notef("%s: %d insertions, temp lifetime %d live points", mode, res.Inserted, total)
	}
	_ = f
	return r
}

// Figure5 reproduces the isolation figure: ALCM emits an insertion that
// feeds only the immediately following statement; LCM suppresses it.
func Figure5() *Report {
	_, g, a := analyzed(IsolationExampleSrc)
	const ei = 0
	r := &Report{
		ID:      "F5",
		Title:   "isolation: suppressing single-use insertions",
		Headers: []string{"node", "LATEST", "ISOLATED"},
	}
	for id := 0; id < g.NumNodes(); id++ {
		r.AddRow(g.Nodes[id].String(), mark(a.Latest.Get(id, ei)), mark(a.Isolated.Get(id, ei)))
	}
	orig := mustParse(IsolationExampleSrc)
	alcmRes, err := lcm.Transform(orig, lcm.ALCM)
	if err != nil {
		panic(err)
	}
	lcmRes, err := lcm.Transform(orig, lcm.LCM)
	if err != nil {
		panic(err)
	}
	r.Notef("ALCM: %d insertions, %d replacements (the useless copy)", alcmRes.Inserted, alcmRes.Replaced)
	r.Notef("LCM: %d insertions, %d replacements (computation left in place)", lcmRes.Inserted, lcmRes.Replaced)
	return r
}
