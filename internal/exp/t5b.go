package exp

import (
	"lazycm/internal/interp"
	"lazycm/internal/opt"
	"lazycm/internal/textir"
)

// T5bSecondOrder measures the reapplication story: a single LCM round
// hoists a+b out of the loop but leaves x*2 (it depends on x); after copy
// propagation rewrites it over the PRE temporary, a second LCM round
// hoists it too. The table shows per-round dynamic evaluations of a
// 50-trip loop.
func T5bSecondOrder() *Report {
	const src = `
func secondorder(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  y = x * 2
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret y
}
`
	f, err := textir.ParseFunction(src)
	if err != nil {
		panic(err)
	}
	r := &Report{
		ID:      "T5b",
		Title:   "second-order redundancies via reapplication (LCM + copyprop + DCE rounds)",
		Headers: []string{"rounds", "total evals (n=50)", "loop-invariant evals"},
	}
	args := []int64{3, 4, 50}
	_, base, _ := interp.Run(f, interp.Options{Args: args})
	// With n=50: i+1 and i<n are unavoidable (50 each); the invariant part
	// is everything beyond those 100.
	r.AddRow(0, base.Total(), base.Total()-100)
	for rounds := 1; rounds <= 3; rounds++ {
		res, err := opt.Pipeline(f, rounds)
		if err != nil {
			panic(err)
		}
		_, counts, _ := interp.Run(res.F, interp.Options{Args: args})
		r.AddRow(rounds, counts.Total(), counts.Total()-100)
	}
	r.Notef("round 1 hoists a+b (50 → 1 invariant evals of it); round 2 hoists the propagated t*2; round 3 is a no-op fixpoint")
	return r
}
