package exp

import (
	"strings"
	"testing"
)

func TestReportFormatting(t *testing.T) {
	r := &Report{ID: "X", Title: "demo", Headers: []string{"a", "bb"}}
	r.AddRow(1, "hello")
	r.AddRow("world", 2)
	r.Notef("n = %d", 3)
	s := r.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "hello", "world", "note: n = 3", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestFigure1(t *testing.T) {
	r := Figure1()
	s := r.String()
	if len(r.Rows) < 10 {
		t.Fatalf("F1 has only %d rows", len(r.Rows))
	}
	// The dynamic-count notes must show a strict improvement.
	if !strings.Contains(s, "before") {
		t.Errorf("F1 missing dynamic counts:\n%s", s)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "split 1 critical edge") {
			found = true
		}
	}
	if !found {
		t.Errorf("running example should split exactly one critical edge (the back edge):\n%s", s)
	}
}

func TestFigure2SafetyContainsInsertions(t *testing.T) {
	r := Figure2()
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "2/2 LCM insertions fall on safe nodes") {
			found = true
		}
	}
	if !found {
		t.Errorf("F2 insertions not all safe:\n%s", r)
	}
}

func TestFigure3BCMShape(t *testing.T) {
	r := Figure3()
	got := map[string]string{}
	for _, row := range r.Rows {
		got[row[0]] = row[1]
	}
	if got["insertions"] != "1" {
		t.Errorf("BCM insertions = %s, want 1 (hoisted to entry)", got["insertions"])
	}
	if got["replacements"] != "2" {
		t.Errorf("BCM replacements = %s, want 2", got["replacements"])
	}
	if got["static computations after"] != "1" {
		t.Errorf("static after = %s, want 1", got["static computations after"])
	}
}

func TestFigure4LifetimeOrdering(t *testing.T) {
	r := Figure4()
	// Parse the lifetime notes: BCM must exceed LCM.
	var bcmLife, lcmLife int
	for _, n := range r.Notes {
		var ins, life int
		var mode string
		if _, err := fmtSscanf(n, &mode, &ins, &life); err == nil {
			switch mode {
			case "BCM":
				bcmLife = life
			case "LCM":
				lcmLife = life
			}
		}
	}
	if bcmLife == 0 || lcmLife == 0 {
		t.Fatalf("could not parse lifetimes from notes: %v", r.Notes)
	}
	if lcmLife >= bcmLife {
		t.Errorf("LCM lifetime %d not smaller than BCM %d:\n%s", lcmLife, bcmLife, r)
	}
}

// fmtSscanf parses the Figure4 note format.
func fmtSscanf(s string, mode *string, ins, life *int) (int, error) {
	var tail string
	n, err := sscanfNote(s, mode, ins, life, &tail)
	return n, err
}

func sscanfNote(s string, mode *string, ins, life *int, tail *string) (int, error) {
	// Format: "<MODE>: <N> insertions, temp lifetime <L> live points"
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, errParse
	}
	*mode = strings.TrimSpace(parts[0])
	var a, b int
	if _, err := sscanTwoInts(parts[1], &a, &b); err != nil {
		return 0, err
	}
	*ins, *life = a, b
	return 3, nil
}

var errParse = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

func sscanTwoInts(s string, a, b *int) (int, error) {
	nums := []int{}
	cur, in := 0, false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			cur = cur*10 + int(r-'0')
			in = true
		} else if in {
			nums = append(nums, cur)
			cur, in = 0, false
		}
	}
	if in {
		nums = append(nums, cur)
	}
	if len(nums) < 2 {
		return 0, errParse
	}
	*a, *b = nums[0], nums[1]
	return 2, nil
}

func TestFigure5Isolation(t *testing.T) {
	r := Figure5()
	s := strings.Join(r.Notes, "\n")
	if !strings.Contains(s, "ALCM: 1 insertions, 1 replacements") {
		t.Errorf("ALCM shape wrong:\n%s", r)
	}
	if !strings.Contains(s, "LCM: 0 insertions, 0 replacements") {
		t.Errorf("LCM shape wrong:\n%s", r)
	}
}

func TestT1NoFailures(t *testing.T) {
	r := T1Correctness(15, 3)
	for _, row := range r.Rows {
		if row[2] != "0" {
			t.Errorf("%s had %s failures:\n%s", row[0], row[2], r)
		}
	}
}

func TestT2Shape(t *testing.T) {
	r := T2CompOptimality(15, 3)
	vals := map[string]string{}
	rowVal := map[string]int{}
	for _, row := range r.Rows {
		vals[row[0]] = row[1]
		n := 0
		for _, ch := range row[1] {
			if ch >= '0' && ch <= '9' {
				n = n*10 + int(ch-'0')
			}
		}
		rowVal[row[0]] = n
	}
	if !(rowVal["LCM"] <= rowVal["MR"] && rowVal["MR"] <= rowVal["original"]) {
		t.Errorf("ordering LCM ≤ MR ≤ original violated:\n%s", r)
	}
	if rowVal["LCM"] != rowVal["BCM"] || rowVal["LCM"] != rowVal["ALCM"] {
		t.Errorf("computational optimality violated (LCM=%d BCM=%d ALCM=%d):\n%s",
			rowVal["LCM"], rowVal["BCM"], rowVal["ALCM"], r)
	}
	if rowVal["LCM"] > rowVal["GCSE"] {
		t.Errorf("LCM worse than GCSE:\n%s", r)
	}
	if rowVal["original"] == 0 {
		t.Error("no evaluations measured")
	}
	// Full optimality agreement note must report all programs agree.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "15/15 programs") {
			found = true
		}
	}
	if !found {
		t.Errorf("optimality agreement not total:\n%s", r)
	}
}

func TestT3Shape(t *testing.T) {
	r := T3Lifetimes(15)
	for _, n := range r.Notes {
		if strings.Contains(n, "violated") && !strings.Contains(n, "0/15") {
			t.Errorf("lifetime ordering violated:\n%s", r)
		}
	}
}

func TestT4Shape(t *testing.T) {
	r := T4SolverCost([]int{1, 2}, 3)
	if len(r.Rows) != 2 {
		t.Fatalf("T4 rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] == "0" {
			t.Errorf("no LCM ops measured:\n%s", r)
		}
	}
}

func TestT5LoopShape(t *testing.T) {
	r := T5LoopInvariant([]int64{1, 10, 100})
	if len(r.Rows) != 3 {
		t.Fatalf("T5 rows = %d", len(r.Rows))
	}
	// At 100 trips the original must evaluate 100×, LCM once.
	last := r.Rows[2]
	if last[1] != "100" || last[2] != "1" {
		t.Errorf("T5 row = %v, want 100 → 1", last)
	}
}

func TestT6NoViolations(t *testing.T) {
	r := T6GCSE(15, 3)
	if r.Rows[0][2] != "0" {
		t.Errorf("GCSE subsumption violated:\n%s", r)
	}
}

func TestExamplesParse(t *testing.T) {
	for _, src := range []string{RunningExampleSrc, MotivatingExampleSrc, IsolationExampleSrc} {
		f := mustParse(src)
		if err := f.Validate(); err != nil {
			t.Errorf("embedded example invalid: %v", err)
		}
	}
}
