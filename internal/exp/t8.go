package exp

import (
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/sr"
	"lazycm/internal/textir"
)

// T8StrengthReduction measures the strength-reduction companion
// transformation (the application the LCM authors develop in "Lazy
// Strength Reduction"): dynamic multiplication counts before and after
// reducing i*k recurrences in loops, by trip count.
func T8StrengthReduction(trips []int64) *Report {
	const src = `
func addressing(n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  off = i * 8
  sum = sum + off
  i = i + 1
  jmp head
exit:
  ret sum
}
`
	f, err := textir.ParseFunction(src)
	if err != nil {
		panic(err)
	}
	res, err := sr.Transform(f)
	if err != nil {
		panic(err)
	}
	r := &Report{
		ID:      "T8",
		Title:   "strength reduction: dynamic multiplications in an array-addressing loop",
		Headers: []string{"trips", "muls original", "muls after SR", "adds original", "adds after SR"},
	}
	count := func(fn *ir.Function, n int64, op ir.Op) int {
		_, counts, err := interp.Run(fn, interp.Options{Args: []int64{n}})
		if err != nil {
			panic(err)
		}
		total := 0
		for e, c := range counts {
			if e.Op == op {
				total += c
			}
		}
		return total
	}
	for _, n := range trips {
		r.AddRow(n,
			count(f, n, ir.Mul), count(res.F, n, ir.Mul),
			count(f, n, ir.Add), count(res.F, n, ir.Add))
	}
	r.Notef("reduced %d multiplication site(s), inserted %d recurrence update(s), %d preheader(s)",
		res.Reduced, res.Updates, res.Preheaders)
	r.Notef("the per-iteration multiplication becomes one addition; on wraparound arithmetic the recurrence is exact")
	return r
}
