package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestT4bShape(t *testing.T) {
	r := T4bSolverCostBlockLevel([]int{1, 3}, 4)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At equal granularity, the unidirectional LCM system must be cheaper
	// than the bidirectional MR system, and the gap must not shrink with
	// size.
	var ratios []float64
	for _, row := range r.Rows {
		lcmOps, err1 := strconv.Atoi(row[2])
		mrOps, err2 := strconv.Atoi(row[4])
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if lcmOps <= 0 || mrOps <= lcmOps {
			t.Errorf("MR (%d ops) not more expensive than edge-LCM (%d ops):\n%s", mrOps, lcmOps, r)
		}
		ratio, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[6])
		}
		ratios = append(ratios, ratio)
	}
	if ratios[1] < ratios[0] {
		t.Errorf("MR/LCM cost ratio shrank with size (%v); expected growth:\n%s", ratios, r)
	}
}

func TestT5bShape(t *testing.T) {
	r := T5bSecondOrder()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(i, j int) int {
		v, err := strconv.Atoi(r.Rows[i][j])
		if err != nil {
			t.Fatalf("bad cell %q", r.Rows[i][j])
		}
		return v
	}
	// Monotone improvement: 200 → 151 → 102 → 102 total evals.
	if !(get(0, 1) > get(1, 1) && get(1, 1) > get(2, 1) && get(2, 1) == get(3, 1)) {
		t.Errorf("reapplication profile wrong:\n%s", r)
	}
	// After two rounds both invariants are hoisted: 2 invariant evals.
	if get(2, 2) != 2 {
		t.Errorf("round 2 invariant evals = %d, want 2:\n%s", get(2, 2), r)
	}
}

func TestT3bShape(t *testing.T) {
	r := T3bRegisterPressure(12, []int{4, 8})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(name string, col int) int {
		for _, row := range r.Rows {
			if row[0] == name {
				v, err := strconv.Atoi(row[col])
				if err != nil {
					t.Fatalf("bad cell %q", row[col])
				}
				return v
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	// Aggregate pressure and spills: LCM ≤ ALCM ≤ BCM.
	for col := 1; col <= 4; col++ {
		l, a, b := get("LCM", col), get("ALCM", col), get("BCM", col)
		if !(l <= a && a <= b) {
			t.Errorf("column %d ordering violated: LCM=%d ALCM=%d BCM=%d\n%s", col, l, a, b, r)
		}
	}
}

func TestT7Shape(t *testing.T) {
	r := T7Canonicalization(20, 3)
	lex, err1 := strconv.Atoi(r.Rows[0][1])
	can, err2 := strconv.Atoi(r.Rows[1][1])
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable rows: %v", r.Rows)
	}
	if can > lex {
		t.Errorf("canonical LCM worse than lexical (%d > %d):\n%s", can, lex, r)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "worked example") && !strings.Contains(n, "lexical LCM evaluates 2, canonical 1") {
			t.Errorf("worked example wrong: %s", n)
		}
	}
}

func TestT8Shape(t *testing.T) {
	r := T8StrengthReduction([]int64{1, 100})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At 100 trips: 100 muls originally, 1 after.
	if r.Rows[1][1] != "100" || r.Rows[1][2] != "1" {
		t.Errorf("T8 row = %v, want 100 → 1", r.Rows[1])
	}
}
