package exp

import (
	"fmt"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
	"lazycm/internal/regalloc"
)

// T3bRegisterPressure measures the practical payoff of lifetime
// optimality: register pressure and spill counts of BCM-, ALCM- and
// LCM-transformed programs under fixed register budgets. Stretched
// temporary live ranges (busy placement) must translate into higher
// pressure and more spills than lazy placement.
func T3bRegisterPressure(programs int, budgets []int) *Report {
	r := &Report{
		ID:    "T3b",
		Title: fmt.Sprintf("register pressure and spills over %d random programs", programs),
		Headers: []string{
			"transformation", "total max pressure", "min regs (sum)",
		},
	}
	for _, k := range budgets {
		r.Headers = append(r.Headers, fmt.Sprintf("spilled vars @K=%d", k))
	}

	type row struct {
		pressure, minRegs int
		spills            []int
	}
	acc := map[string]*row{}
	order := []string{"original", "BCM", "ALCM", "LCM"}
	for _, n := range order {
		acc[n] = &row{spills: make([]int, len(budgets))}
	}
	lcmLighter, violations := 0, 0

	for seed := int64(0); seed < int64(programs); seed++ {
		f := randprog.ForSeed(seed)
		variants := map[string]*lcm.Result{}
		for _, mode := range []lcm.Mode{lcm.BCM, lcm.ALCM, lcm.LCM} {
			res, err := lcm.Transform(f, mode)
			if err != nil {
				panic(err)
			}
			variants[mode.String()] = res
		}
		fns := map[string]*ir.Function{
			"original": f,
			"BCM":      variants["BCM"].F,
			"ALCM":     variants["ALCM"].F,
			"LCM":      variants["LCM"].F,
		}
		var bcmPressure, lcmPressure int
		for _, name := range order {
			fn := fns[name]
			a := acc[name]
			full, err := regalloc.Allocate(fn, 1<<16)
			if err != nil {
				panic(err)
			}
			a.pressure += full.MaxPressure
			minRegs, err := regalloc.MinRegisters(fn)
			if err != nil {
				panic(err)
			}
			a.minRegs += minRegs
			for i, k := range budgets {
				al, err := regalloc.Allocate(fn, k)
				if err != nil {
					panic(err)
				}
				a.spills[i] += len(al.Spilled)
			}
			switch name {
			case "BCM":
				bcmPressure = full.MaxPressure
			case "LCM":
				lcmPressure = full.MaxPressure
			}
		}
		if lcmPressure < bcmPressure {
			lcmLighter++
		}
		if lcmPressure > bcmPressure {
			violations++
		}
	}

	for _, n := range order {
		a := acc[n]
		cells := []any{n, a.pressure, a.minRegs}
		for _, s := range a.spills {
			cells = append(cells, s)
		}
		r.AddRow(cells...)
	}
	r.Notef("LCM pressure strictly below BCM on %d/%d programs; above it on %d", lcmLighter, programs, violations)
	r.Notef("the theorem bounds TEMPORARY lifetimes only: operand lifetimes can move the other way " +
		"(hoisting t=a+b early lets a and b die early), so isolated per-program pressure reversals are legitimate; " +
		"the aggregate must still favour LCM")
	return r
}
