package nodes

import (
	"strings"
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/props"
	"lazycm/internal/textir"
)

func build(t *testing.T, src string) (*ir.Function, *Graph) {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	u := props.Collect(f)
	return f, Build(f, u)
}

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`

func TestBuildShape(t *testing.T) {
	f, g := build(t, diamondSrc)
	// Nodes: entry + (entry:term) + (then: 1 stmt + term) + (else: term)
	// + (join: 1 stmt + term) + exit = 1+1+2+1+2+1 = 8
	if g.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.Nodes[g.EntryNode()].Kind != Entry || g.Nodes[g.ExitNode()].Kind != Exit {
		t.Fatal("entry/exit misplaced")
	}
	// Entry has one succ: first node of entry block (its terminator,
	// since it has no instructions).
	if g.NumSuccs(g.EntryNode()) != 1 || g.Succ(g.EntryNode(), 0) != g.FirstOf(f.Entry()) {
		t.Fatal("entry wiring wrong")
	}
	// Entry block is empty, so its first node is its term node.
	if g.FirstOf(f.Entry()) != g.TermOf(f.Entry()) {
		t.Fatal("empty block first != term")
	}
	// The branch term node has two successors.
	bt := g.TermOf(f.Entry())
	if g.NumSuccs(bt) != 2 {
		t.Fatalf("branch term succs = %d", g.NumSuccs(bt))
	}
	// join's first node has two preds (both jmp term nodes).
	join := f.BlockByName("join")
	if g.NumPreds(g.FirstOf(join)) != 2 {
		t.Fatalf("join first preds = %d", g.NumPreds(g.FirstOf(join)))
	}
	// ret term connects to exit.
	if g.Succ(g.TermOf(join), 0) != g.ExitNode() {
		t.Fatal("ret not wired to exit")
	}
	if g.NumSuccs(g.ExitNode()) != 0 || g.NumPreds(g.EntryNode()) != 0 {
		t.Fatal("virtual boundary degrees wrong")
	}
}

func TestLocalPredicates(t *testing.T) {
	f, g := build(t, `
func f(a, b) {
e:
  x = a + b
  a = 0
  y = a + b
  ret y
}`)
	e := f.Entry()
	n0 := g.FirstOf(e) // x = a + b
	n1 := n0 + 1       // a = 0
	n2 := n0 + 2       // y = a + b
	nt := g.TermOf(e)  // ret
	if !g.Comp.Get(n0, 0) || !g.Comp.Get(n2, 0) {
		t.Error("computations not marked COMP")
	}
	if g.Comp.Get(n1, 0) || g.Comp.Get(nt, 0) {
		t.Error("non-computations marked COMP")
	}
	if !g.Transp.Get(n0, 0) || !g.Transp.Get(n2, 0) || !g.Transp.Get(nt, 0) {
		t.Error("transparent nodes not marked TRANSP")
	}
	if g.Transp.Get(n1, 0) {
		t.Error("a = 0 marked TRANSP")
	}
}

func TestSelfKillNode(t *testing.T) {
	f, g := build(t, `
func f(a, b) {
e:
  a = a + b
  ret a
}`)
	n := g.FirstOf(f.Entry())
	if !g.Comp.Get(n, 0) {
		t.Error("a = a + b computes a + b")
	}
	if g.Transp.Get(n, 0) {
		t.Error("a = a + b is not transparent")
	}
}

func TestEveryNodeOnEntryExitPath(t *testing.T) {
	_, g := build(t, diamondSrc)
	// Forward reachability from entry.
	seen := make([]bool, g.NumNodes())
	stack := []int{g.EntryNode()}
	seen[g.EntryNode()] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < g.NumSuccs(n); i++ {
			s := g.Succ(n, i)
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("node %d (%s) unreachable from entry", i, g.Nodes[i])
		}
	}
	// Backward from exit.
	seen = make([]bool, g.NumNodes())
	stack = []int{g.ExitNode()}
	seen[g.ExitNode()] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < g.NumPreds(n); i++ {
			p := g.Pred(n, i)
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("node %d (%s) cannot reach exit", i, g.Nodes[i])
		}
	}
}

func TestMultipleReturns(t *testing.T) {
	f, g := build(t, `
func f(c) {
e:
  br c a b
a:
  ret
b:
  ret
}`)
	exit := g.ExitNode()
	if g.NumPreds(exit) != 2 {
		t.Fatalf("exit preds = %d", g.NumPreds(exit))
	}
	_ = f
}

func TestNodeStrings(t *testing.T) {
	f, g := build(t, diamondSrc)
	if g.Nodes[g.EntryNode()].String() != "<entry>" {
		t.Error("entry string")
	}
	if g.Nodes[g.ExitNode()].String() != "<exit>" {
		t.Error("exit string")
	}
	then := f.BlockByName("then")
	s := g.Nodes[g.FirstOf(then)].String()
	if !strings.Contains(s, "then[0]") || !strings.Contains(s, "x = a + b") {
		t.Errorf("stmt string = %q", s)
	}
	ts := g.Nodes[g.TermOf(then)].String()
	if !strings.Contains(ts, "term") {
		t.Errorf("term string = %q", ts)
	}
	for _, k := range []Kind{Entry, Exit, Stmt, Term} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestEdgeConsistency(t *testing.T) {
	_, g := build(t, diamondSrc)
	// succ/pred must be mutually consistent.
	for n := 0; n < g.NumNodes(); n++ {
		for i := 0; i < g.NumSuccs(n); i++ {
			s := g.Succ(n, i)
			found := false
			for j := 0; j < g.NumPreds(s); j++ {
				if g.Pred(s, j) == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from preds", n, s)
			}
		}
	}
}
