// Package nodes derives the Lazy Code Motion paper's program model from the
// block IR: a flow graph with one elementary statement per node, a unique
// empty entry node and a unique empty exit node. Block terminators get
// nodes of their own (they are empty program points at block ends, which is
// also what gives empty blocks — including the synthetic blocks created by
// critical-edge splitting — a place to stand), and every node carries the
// paper's local predicates COMP and TRANSP as bit vectors over the
// function's expression universe.
//
// The node graph is a read-only view: analyses run on it, and their results
// are mapped back to (block, position) insertion points on the block IR.
package nodes

import (
	"fmt"

	"lazycm/internal/bitvec"
	"lazycm/internal/ir"
	"lazycm/internal/props"
)

// Kind discriminates node flavours.
type Kind int

const (
	// Entry is the unique empty entry node.
	Entry Kind = iota
	// Exit is the unique empty exit node.
	Exit
	// Stmt is an instruction node.
	Stmt
	// Term is a block-terminator node: an empty program point at the end
	// of its block (branch conditions read variables but modify nothing).
	Term
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Stmt:
		return "stmt"
	case Term:
		return "term"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one program point.
type Node struct {
	Kind Kind
	// Block is the owning block (nil for Entry/Exit).
	Block *ir.Block
	// Index is the instruction index within Block for Stmt nodes.
	Index int
}

// String renders the node for diagnostics, e.g. "join[1] y = a + b".
func (n Node) String() string {
	switch n.Kind {
	case Entry:
		return "<entry>"
	case Exit:
		return "<exit>"
	case Stmt:
		return fmt.Sprintf("%s[%d] %s", n.Block.Name, n.Index, n.Block.Instrs[n.Index])
	case Term:
		return fmt.Sprintf("%s[term] %s", n.Block.Name, n.Block.Term)
	}
	return "<invalid>"
}

// Graph is the statement-level flow graph. It implements dataflow.Graph.
type Graph struct {
	F *ir.Function
	U *props.Universe
	// Nodes[0] is the entry node; Nodes[len-1] is the exit node. Between
	// them, nodes appear in block order, instructions before the block's
	// terminator node.
	Nodes []Node
	// Comp and Transp are the per-node local predicates.
	Comp, Transp *bitvec.Matrix

	succs, preds [][]int
	// firstOf[blockID] is the block's first node (its first instruction,
	// or its terminator node if the block is empty). termOf[blockID] is
	// the block's terminator node.
	firstOf, termOf []int
}

// Build derives the node graph of f over universe u. The caller is
// responsible for having split critical edges first if insertions will be
// derived from the graph (lcm.Transform does this).
func Build(f *ir.Function, u *props.Universe) *Graph {
	g := &Graph{F: f, U: u}
	g.Nodes = append(g.Nodes, Node{Kind: Entry})
	g.firstOf = make([]int, f.NumBlocks())
	g.termOf = make([]int, f.NumBlocks())
	for _, b := range f.Blocks {
		g.firstOf[b.ID] = len(g.Nodes)
		for i := range b.Instrs {
			g.Nodes = append(g.Nodes, Node{Kind: Stmt, Block: b, Index: i})
		}
		g.termOf[b.ID] = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{Kind: Term, Block: b})
	}
	g.Nodes = append(g.Nodes, Node{Kind: Exit})

	n := len(g.Nodes)
	g.succs = make([][]int, n)
	g.preds = make([][]int, n)
	addEdge := func(a, b int) {
		g.succs[a] = append(g.succs[a], b)
		g.preds[b] = append(g.preds[b], a)
	}

	addEdge(g.EntryNode(), g.firstOf[f.Entry().ID])
	for _, b := range f.Blocks {
		// Chain the block's nodes.
		first := g.firstOf[b.ID]
		term := g.termOf[b.ID]
		for i := first; i < term; i++ {
			addEdge(i, i+1)
		}
		// Terminator to successor blocks' first nodes, or to exit.
		if b.Term.Kind == ir.Ret {
			addEdge(term, g.ExitNode())
			continue
		}
		for i, m := 0, b.NumSuccs(); i < m; i++ {
			addEdge(term, g.firstOf[b.Succ(i).ID])
		}
	}

	// Local predicates.
	w := u.Size()
	g.Comp = bitvec.NewMatrix(n, w)
	g.Transp = bitvec.NewMatrix(n, w)
	for id, nd := range g.Nodes {
		tr := g.Transp.Row(id)
		tr.SetAll()
		if nd.Kind != Stmt {
			continue
		}
		in := nd.Block.Instrs[nd.Index]
		if e, ok := in.Expr(); ok {
			if i, found := u.Index(e); found {
				g.Comp.Set(id, i)
			}
		}
		if d := in.Defs(); d != "" {
			if kv := u.KilledBy(d); kv != nil {
				tr.AndNot(kv)
			}
		}
	}
	return g
}

// EntryNode returns the entry node's index (always 0).
func (g *Graph) EntryNode() int { return 0 }

// ExitNode returns the exit node's index.
func (g *Graph) ExitNode() int { return len(g.Nodes) - 1 }

// FirstOf returns the first node of block b.
func (g *Graph) FirstOf(b *ir.Block) int { return g.firstOf[b.ID] }

// TermOf returns the terminator node of block b.
func (g *Graph) TermOf(b *ir.Block) int { return g.termOf[b.ID] }

// NumNodes implements dataflow.Graph.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumSuccs implements dataflow.Graph.
func (g *Graph) NumSuccs(n int) int { return len(g.succs[n]) }

// Succ implements dataflow.Graph.
func (g *Graph) Succ(n, i int) int { return g.succs[n][i] }

// NumPreds implements dataflow.Graph.
func (g *Graph) NumPreds(n int) int { return len(g.preds[n]) }

// Pred implements dataflow.Graph.
func (g *Graph) Pred(n, i int) int { return g.preds[n][i] }
