package lcm

import (
	"testing"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/graph"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
)

// TestAnalyzeScratchDeterministic proves the tentpole's safety claim at
// the lcm level: one shared arena reused across many functions — with
// DSAFE/USAFE solving concurrently inside each analysis — produces
// bit-identical predicates and identical solver statistics to a fresh,
// serial-era Analyze per function. Run under -race this also referees
// the concurrent solves over the shared scratch.
func TestAnalyzeScratchDeterministic(t *testing.T) {
	sc := dataflow.NewScratch()
	for seed := int64(1); seed <= 12; seed++ {
		f := randprog.ForSeed(seed)
		graph.SplitCriticalEdges(f)
		u := props.Collect(f)
		g := nodes.Build(f, u)

		fresh, err := Analyze(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		shared, err := AnalyzeOpts(g, Options{Scratch: sc})
		if err != nil {
			t.Fatalf("seed %d (scratch): %v", seed, err)
		}

		check := func(name string, got, want *bitvec.Matrix) {
			if !got.Equal(want) {
				t.Errorf("seed %d: %s differs between shared-scratch and fresh analysis", seed, name)
			}
		}
		check("DSAFE", shared.DSafe, fresh.DSafe)
		check("USAFE", shared.USafe, fresh.USafe)
		check("EARLIEST", shared.Earliest, fresh.Earliest)
		check("DELAY", shared.Delay, fresh.Delay)
		check("LATEST", shared.Latest, fresh.Latest)
		check("ISOLATED", shared.Isolated, fresh.Isolated)

		if len(shared.Stats) != len(fresh.Stats) {
			t.Fatalf("seed %d: stats count %d != %d", seed, len(shared.Stats), len(fresh.Stats))
		}
		for i := range shared.Stats {
			if shared.Stats[i] != fresh.Stats[i] {
				t.Errorf("seed %d: stats[%d] %+v != fresh %+v", seed, i, shared.Stats[i], fresh.Stats[i])
			}
		}
		if shared.Derived != fresh.Derived {
			t.Errorf("seed %d: Derived %d != fresh %d", seed, shared.Derived, fresh.Derived)
		}
	}
}
