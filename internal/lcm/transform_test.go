package lcm

import (
	"strings"
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string, mode Mode) *Result {
	t.Helper()
	res, err := Transform(parse(t, src), mode)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTransformDiamondLCM(t *testing.T) {
	res := transform(t, diamondSrc, LCM)
	f := res.F
	if res.Inserted != 2 || res.Replaced != 2 {
		t.Fatalf("inserted=%d replaced=%d, want 2/2\n%s", res.Inserted, res.Replaced, f)
	}
	// Static computation count unchanged (2 before, 2 after: one original
	// replaced pair becomes insert+copy on each arm).
	if got := StaticComputations(f); got != 2 {
		t.Errorf("static computations = %d, want 2\n%s", got, f)
	}
	tmp, ok := res.TempFor[ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}]
	if !ok {
		t.Fatal("no temp for a + b")
	}
	then := f.BlockByName("then")
	if len(then.Instrs) != 2 ||
		then.Instrs[0].String() != tmp+" = a + b" ||
		then.Instrs[1].String() != "x = "+tmp {
		t.Errorf("then block wrong:\n%s", f)
	}
	els := f.BlockByName("else")
	if len(els.Instrs) != 1 || els.Instrs[0].String() != tmp+" = a + b" {
		t.Errorf("else block wrong:\n%s", f)
	}
	join := f.BlockByName("join")
	if join.Instrs[0].String() != "y = "+tmp {
		t.Errorf("join block wrong:\n%s", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransformDiamondBCM(t *testing.T) {
	res := transform(t, diamondSrc, BCM)
	f := res.F
	// BCM hoists to program start: one insertion, two replacements.
	if res.Inserted != 1 || res.Replaced != 2 {
		t.Fatalf("inserted=%d replaced=%d, want 1/2\n%s", res.Inserted, res.Replaced, f)
	}
	entry := f.Entry()
	if len(entry.Instrs) != 1 || entry.Instrs[0].Kind != ir.BinOp {
		t.Errorf("BCM insertion not at entry:\n%s", f)
	}
	if got := StaticComputations(f); got != 1 {
		t.Errorf("static computations = %d, want 1\n%s", got, f)
	}
}

func TestTransformIsolationModes(t *testing.T) {
	src := `
func f(a, b, c) {
entry:
  br c yes no
yes:
  x = a + b
  ret x
no:
  ret 0
}`
	lcmRes := transform(t, src, LCM)
	if lcmRes.Inserted != 0 || lcmRes.Replaced != 0 {
		t.Errorf("LCM touched an isolated computation: %d/%d\n%s",
			lcmRes.Inserted, lcmRes.Replaced, lcmRes.F)
	}
	alcmRes := transform(t, src, ALCM)
	if alcmRes.Inserted != 1 || alcmRes.Replaced != 1 {
		t.Errorf("ALCM should emit the isolated copy: %d/%d", alcmRes.Inserted, alcmRes.Replaced)
	}
}

func TestTransformLoopInvariant(t *testing.T) {
	res := transform(t, `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`, LCM)
	f := res.F
	// a+b must be gone from the loop body and live in the preheader.
	body := f.BlockByName("body")
	for _, in := range body.Instrs {
		if e, ok := in.Expr(); ok && e.String() == "a + b" {
			t.Errorf("a + b still in loop body:\n%s", f)
		}
	}
	foundPre := false
	for _, in := range f.Entry().Instrs {
		if e, ok := in.Expr(); ok && e.String() == "a + b" {
			foundPre = true
		}
	}
	if !foundPre {
		t.Errorf("a + b not hoisted to preheader:\n%s", f)
	}
}

func TestTransformCriticalEdgeInsertion(t *testing.T) {
	// entry branches straight to join (critical edge); then computes a+b.
	// LCM must insert on the split block of the critical edge, never in
	// entry (that would be speculative for the then-arm... actually for
	// the else-arm) and never at join (too late: then-arm would recompute).
	src := `
func f(a, b, c) {
entry:
  br c then join
then:
  x = a + b
  jmp join
join:
  y = a + b
  ret y
}`
	res := transform(t, src, LCM)
	f := res.F
	if res.EdgesSplit != 1 {
		t.Fatalf("EdgesSplit = %d", res.EdgesSplit)
	}
	// Find the split block: successor of entry that is not "then".
	var split *ir.Block
	for i := 0; i < f.Entry().NumSuccs(); i++ {
		if s := f.Entry().Succ(i); s.Name != "then" {
			split = s
		}
	}
	if split == nil || split.Name == "join" {
		t.Fatalf("split block missing:\n%s", f)
	}
	found := false
	for _, in := range split.Instrs {
		if e, ok := in.Expr(); ok && e.String() == "a + b" {
			found = true
		}
	}
	if !found {
		t.Errorf("insertion not on split block:\n%s", f)
	}
	if len(f.Entry().Instrs) != 0 {
		t.Errorf("speculative insertion in entry:\n%s", f)
	}
	if got := StaticComputations(f); got != 2 {
		t.Errorf("static computations = %d, want 2\n%s", got, f)
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	f := parse(t, diamondSrc)
	before := f.String()
	if _, err := Transform(f, LCM); err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("Transform mutated its input")
	}
}

func TestTransformDeterministic(t *testing.T) {
	src := `
func f(a, b, c, d) {
entry:
  p = a + b
  q = c * d
  r = a - b
  br p l1 l2
l1:
  s = a + b
  u = c * d
  jmp out
l2:
  v = a - b
  jmp out
out:
  w = a + b
  z = c * d
  ret w
}`
	first := transform(t, src, LCM).F.String()
	for i := 0; i < 20; i++ {
		if got := transform(t, src, LCM).F.String(); got != first {
			t.Fatalf("nondeterministic output:\n%s\nvs\n%s", got, first)
		}
	}
}

func TestTransformTempNamesAvoidCollisions(t *testing.T) {
	// The program already uses t0; the temp must skip it.
	src := `
func f(a, b, c) {
entry:
  t0 = 5
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  print t0
  ret y
}`
	res := transform(t, src, LCM)
	for _, tmp := range res.TempFor {
		if tmp == "t0" {
			t.Fatalf("temp collides with existing variable t0:\n%s", res.F)
		}
	}
}

func TestTransformMultipleExpressions(t *testing.T) {
	src := `
func f(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  y = a * b
  jmp join
else:
  jmp join
join:
  p = a + b
  q = a * b
  ret p
}`
	res := transform(t, src, LCM)
	if len(res.TempFor) != 2 {
		t.Fatalf("TempFor = %v", res.TempFor)
	}
	if got := StaticComputations(res.F); got != 4 {
		t.Errorf("static computations = %d, want 4 (2 per arm)\n%s", got, res.F)
	}
	if res.Replaced != 4 {
		t.Errorf("replaced = %d, want 4", res.Replaced)
	}
}

func TestTransformSelfKillLoop(t *testing.T) {
	// a = a + b in a loop: ANTLOC but not COMP/TRANSP; nothing is
	// eliminable, and the transformation must not corrupt the program.
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  a = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret a
}`
	res := transform(t, src, LCM)
	if err := res.F.Validate(); err != nil {
		t.Fatal(err)
	}
	// The accumulating statement cannot be replaced: its operand changes
	// every iteration.
	if res.Replaced != 0 || res.Inserted != 0 {
		t.Errorf("self-killing accumulation was transformed: %d/%d\n%s",
			res.Inserted, res.Replaced, res.F)
	}
}

func TestTransformNoCandidates(t *testing.T) {
	res := transform(t, `
func f(a) {
e:
  x = a
  print x
  ret
}`, LCM)
	if res.Inserted != 0 || res.Replaced != 0 || len(res.TempFor) != 0 {
		t.Error("transformation on candidate-free function did something")
	}
}

func TestTransformInvalidInput(t *testing.T) {
	f := parse(t, diamondSrc)
	f.Blocks[1], f.Blocks[2] = f.Blocks[2], f.Blocks[1] // stale IDs
	if _, err := Transform(f, LCM); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestTransformOutputParses(t *testing.T) {
	res := transform(t, diamondSrc, LCM)
	if _, err := textir.ParseFunction(res.F.String()); err != nil {
		t.Fatalf("transformed output does not re-parse: %v\n%s", err, res.F)
	}
}

func TestStaticComputations(t *testing.T) {
	f := parse(t, diamondSrc)
	if got := StaticComputations(f); got != 2 {
		t.Errorf("StaticComputations = %d", got)
	}
}

func TestTransformFullRedundancyAllModes(t *testing.T) {
	src := `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`
	for _, mode := range []Mode{BCM, ALCM, LCM} {
		res := transform(t, src, mode)
		if got := StaticComputations(res.F); got != 1 {
			t.Errorf("%s: static computations = %d, want 1\n%s", mode, got, res.F)
		}
		if !strings.Contains(res.F.String(), "= a + b") {
			t.Errorf("%s: computation vanished entirely", mode)
		}
	}
}
