package lcm_test

import (
	"fmt"
	"log"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/textir"
)

// Example optimizes the canonical partially redundant diamond: a + b is
// recomputed at the join although the then-arm already computed it.
func Example() {
	f, err := textir.ParseFunction(`
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.F)
	// Output:
	// func diamond(a, b, c) {
	// entry:
	//   br c then else
	// then:
	//   t0 = a + b
	//   x = t0
	//   jmp join
	// else:
	//   t0 = a + b
	//   jmp join
	// join:
	//   y = t0
	//   ret y
	// }
}

// ExampleTransform_busy shows busy code motion on the same graph: the
// insertion hoists all the way to the entry block, which is what lazy code
// motion exists to avoid.
func ExampleTransform_busy() {
	f := ir.NewBuilder("diamond", "a", "b", "c").
		Block("entry").Branch(ir.Var("c"), "then", "else").
		Block("then").BinOp("x", ir.Add, ir.Var("a"), ir.Var("b")).Jump("join").
		Block("else").Jump("join").
		Block("join").BinOp("y", ir.Add, ir.Var("a"), ir.Var("b")).Ret(ir.Var("y")).
		MustFinish()
	res, err := lcm.Transform(f, lcm.BCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d at %s, replaced %d\n",
		res.Inserted, res.F.Entry().Name, res.Replaced)
	// Output:
	// inserted 1 at entry, replaced 2
}
