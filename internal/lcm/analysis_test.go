package lcm

import (
	"testing"

	"lazycm/internal/graph"
	"lazycm/internal/ir"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/textir"
)

// prep parses src, splits critical edges, and runs the analysis.
func prep(t *testing.T, src string) (*ir.Function, *nodes.Graph, *Analysis) {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	graph.SplitCriticalEdges(f)
	u := props.Collect(f)
	g := nodes.Build(f, u)
	a, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return f, g, a
}

// place derives a placement, failing the test on error.
func place(t *testing.T, a *Analysis, mode Mode) *Placement {
	t.Helper()
	p, err := a.Placement(mode)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stmtNode returns the node index of instruction idx in the named block.
func stmtNode(t *testing.T, f *ir.Function, g *nodes.Graph, block string, idx int) int {
	t.Helper()
	b := f.BlockByName(block)
	if b == nil {
		t.Fatalf("no block %q", block)
	}
	return g.FirstOf(b) + idx
}

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`

// TestDiamondPredicates walks the worked example of the paper's development
// (a partially redundant computation across a join) and checks every
// predicate against the hand-derived values.
func TestDiamondPredicates(t *testing.T) {
	f, g, a := prep(t, diamondSrc)
	const e = 0 // a + b

	thenX := stmtNode(t, f, g, "then", 0)
	joinY := stmtNode(t, f, g, "join", 0)
	elseTerm := g.TermOf(f.BlockByName("else"))
	entryV := g.EntryNode()

	// Down-safety: holds from entry through both arms up to join's
	// computation; fails after it and at exit.
	for _, n := range []int{entryV, thenX, joinY, elseTerm} {
		if !a.DSafe.Get(n, e) {
			t.Errorf("DSAFE(%s) = false", g.Nodes[n])
		}
	}
	if a.DSafe.Get(g.ExitNode(), e) {
		t.Error("DSAFE(exit) must be false")
	}
	joinTerm := g.TermOf(f.BlockByName("join"))
	if a.DSafe.Get(joinTerm, e) {
		t.Error("DSAFE after the last computation must be false")
	}

	// Up-safety: true only after then's computation on the then arm;
	// false at the join (the else arm never computes a+b).
	thenTerm := g.TermOf(f.BlockByName("then"))
	if !a.USafe.Get(thenTerm, e) {
		t.Error("USAFE(then.term) = false; computation precedes it")
	}
	if a.USafe.Get(joinY, e) {
		t.Error("USAFE(join computation) must be false (partial only)")
	}
	if a.USafe.Get(entryV, e) {
		t.Error("USAFE(entry) must be false")
	}

	// Earliest: the whole graph up to the join is down-safe, so the
	// computation hoists all the way to the virtual entry and nowhere
	// else.
	if !a.Earliest.Get(entryV, e) {
		t.Error("EARLIEST(entry) = false")
	}
	for _, n := range []int{thenX, joinY, elseTerm} {
		if a.Earliest.Get(n, e) {
			t.Errorf("EARLIEST(%s) = true; should hoist past it", g.Nodes[n])
		}
	}

	// Delay: from the entry down both arms, stopping at then's
	// computation; at join the then-arm is no longer delayed, so DELAY
	// fails there.
	for _, n := range []int{entryV, thenX, elseTerm} {
		if !a.Delay.Get(n, e) {
			t.Errorf("DELAY(%s) = false", g.Nodes[n])
		}
	}
	if a.Delay.Get(joinY, e) {
		t.Error("DELAY(join) must fail: then-arm already used the value")
	}

	// Latest: then's computation (a use) and the end of the else arm
	// (delay frontier before the join).
	if !a.Latest.Get(thenX, e) {
		t.Error("LATEST(then computation) = false")
	}
	if !a.Latest.Get(elseTerm, e) {
		t.Error("LATEST(else end) = false")
	}
	if a.Latest.Get(joinY, e) || a.Latest.Get(entryV, e) {
		t.Error("LATEST leaked to join or entry")
	}

	// Isolation: neither latest point is isolated — both feed join's
	// replaced computation.
	if a.Isolated.Get(thenX, e) {
		t.Error("ISOLATED(then computation) = true")
	}
	if a.Isolated.Get(elseTerm, e) {
		t.Error("ISOLATED(else end) = true")
	}
}

func TestDiamondPlacements(t *testing.T) {
	f, g, a := prep(t, diamondSrc)
	const e = 0
	thenX := stmtNode(t, f, g, "then", 0)
	joinY := stmtNode(t, f, g, "join", 0)
	elseTerm := g.TermOf(f.BlockByName("else"))

	bcm := place(t, a, BCM)
	if !bcm.Insert.Get(g.EntryNode(), e) {
		t.Error("BCM must insert at entry")
	}
	if !bcm.Replace.Get(thenX, e) || !bcm.Replace.Get(joinY, e) {
		t.Error("BCM must replace both computations")
	}

	lcm := place(t, a, LCM)
	if !lcm.Insert.Get(thenX, e) || !lcm.Insert.Get(elseTerm, e) {
		t.Error("LCM must insert at the two latest points")
	}
	if lcm.Insert.Get(g.EntryNode(), e) {
		t.Error("LCM must not insert at entry")
	}
	if !lcm.Replace.Get(thenX, e) || !lcm.Replace.Get(joinY, e) {
		t.Error("LCM must replace both computations")
	}

	alcm := place(t, a, ALCM)
	if !alcm.Insert.Equal(a.Latest) {
		t.Error("ALCM insertions must equal LATEST")
	}
}

// TestLoopInvariantHoisting: in a bottom-test loop the invariant
// computation is down-safe at the preheader, so LCM hoists it out — the
// paper's claim that PRE subsumes loop-invariant code motion.
func TestLoopInvariantHoisting(t *testing.T) {
	f, g, a := prep(t, `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`)
	u := g.U
	ei, ok := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	if !ok {
		t.Fatal("a + b not in universe")
	}
	bodyX := stmtNode(t, f, g, "body", 0)

	// Earliest is the virtual entry (down-safe everywhere before the
	// loop), so BCM hoists to program start.
	if !a.Earliest.Get(g.EntryNode(), ei) {
		t.Error("EARLIEST(entry) = false for loop invariant")
	}
	if a.Earliest.Get(bodyX, ei) {
		t.Error("EARLIEST inside loop body")
	}

	// LCM's latest point is the end of the preheader (entry block): the
	// delay frontier stops before the loop join.
	entryTerm := g.TermOf(f.Entry())
	if !a.Latest.Get(entryTerm, ei) {
		t.Error("LATEST(end of preheader) = false")
	}
	if a.Latest.Get(bodyX, ei) {
		t.Error("LATEST inside loop body: not hoisted")
	}
	lcm := place(t, a, LCM)
	if !lcm.Insert.Get(entryTerm, ei) || !lcm.Replace.Get(bodyX, ei) {
		t.Error("LCM placement did not hoist the invariant")
	}
	if a.Isolated.Get(entryTerm, ei) {
		t.Error("preheader insertion wrongly isolated")
	}
}

// TestTopTestLoopIsSafe: in a top-test (while) loop the expression is NOT
// down-safe at the preheader (the zero-trip path never computes it), so
// classic LCM must not hoist it — that would be speculative.
func TestTopTestLoopIsSafe(t *testing.T) {
	f, g, a := prep(t, `
func f(a, b, n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = a + b
  i = i + 1
  jmp head
exit:
  ret
}`)
	ei, ok := g.U.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	if !ok {
		t.Fatal("a + b not in universe")
	}
	if a.DSafe.Get(g.EntryNode(), ei) {
		t.Error("a+b must not be down-safe at entry of a zero-trip loop")
	}
	bodyX := stmtNode(t, f, g, "body", 0)
	if !a.Earliest.Get(bodyX, ei) {
		t.Error("earliest must stay at the body computation")
	}
	lcm := place(t, a, LCM)
	head := f.BlockByName("head")
	for n := g.FirstOf(head); n <= g.TermOf(head); n++ {
		if lcm.Insert.Get(n, ei) {
			t.Errorf("speculative insertion at %s", g.Nodes[n])
		}
	}
	entry := f.Entry()
	for n := g.FirstOf(entry); n <= g.TermOf(entry); n++ {
		if lcm.Insert.Get(n, ei) {
			t.Errorf("speculative insertion at %s", g.Nodes[n])
		}
	}
}

// TestIsolation: a computation used only by its own statement must be left
// alone by LCM (no insertion, no replacement), while ALCM rewrites it.
func TestIsolation(t *testing.T) {
	f, g, a := prep(t, `
func f(a, b, c) {
entry:
  br c yes no
yes:
  x = a + b
  ret x
no:
  ret 0
}`)
	const e = 0
	yesX := stmtNode(t, f, g, "yes", 0)
	if !a.Latest.Get(yesX, e) {
		t.Fatal("LATEST(yes computation) = false")
	}
	if !a.Isolated.Get(yesX, e) {
		t.Fatal("ISOLATED(yes computation) = false")
	}
	lcm := place(t, a, LCM)
	if lcm.Insert.Get(yesX, e) || lcm.Replace.Get(yesX, e) {
		t.Error("LCM must leave the isolated computation untouched")
	}
	alcm := place(t, a, ALCM)
	if !alcm.Insert.Get(yesX, e) || !alcm.Replace.Get(yesX, e) {
		t.Error("ALCM should produce the isolated copy")
	}
}

// TestFullRedundancy: straight-line x=a+b; y=a+b collapses to one
// computation under every mode.
func TestFullRedundancy(t *testing.T) {
	f, g, a := prep(t, `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`)
	const e = 0
	x := stmtNode(t, f, g, "e", 0)
	y := stmtNode(t, f, g, "e", 1)
	if !a.USafe.Get(y, e) {
		t.Error("second computation must be up-safe")
	}
	lcm := place(t, a, LCM)
	if !lcm.Insert.Get(x, e) {
		t.Error("LCM inserts before the first computation")
	}
	if !lcm.Replace.Get(x, e) || !lcm.Replace.Get(y, e) {
		t.Error("LCM replaces both computations")
	}
	if lcm.Insert.Get(y, e) {
		t.Error("no insertion at the redundant computation")
	}
}

// TestSelfKillRecomputation: v = a + b; a = 0; w = a + b — the two
// computations are of the same lexeme but different values; no elimination
// may happen across the kill.
func TestKillBlocksMotion(t *testing.T) {
	f, g, a := prep(t, `
func f(a, b) {
e:
  v = a + b
  a = 0
  w = a + b
  ret w
}`)
	const e = 0
	w := stmtNode(t, f, g, "e", 2)
	if a.USafe.Get(w, e) {
		t.Error("expression must not be up-safe across the kill")
	}
	if !a.Earliest.Get(w, e) {
		t.Error("second computation must restart as earliest")
	}
	lcm := place(t, a, LCM)
	// Both computations are isolated single uses: nothing to do at all.
	if lcm.Insert.Row(w).Get(e) && !lcm.Replace.Get(w, e) {
		t.Error("inconsistent placement at second computation")
	}
}

func TestAnalysisStats(t *testing.T) {
	_, _, a := prep(t, diamondSrc)
	if len(a.Stats) != 4 {
		t.Fatalf("expected 4 data-flow problems, got %d", len(a.Stats))
	}
	wantNames := []string{"dsafe", "usafe", "delay", "isolated"}
	for i, s := range a.Stats {
		if s.Name != wantNames[i] {
			t.Errorf("problem %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Passes < 2 || s.VectorOps == 0 {
			t.Errorf("stats implausible for %s: %+v", s.Name, s)
		}
	}
	if a.TotalVectorOps() <= a.Derived {
		t.Error("TotalVectorOps must include solver ops")
	}
}

func TestModeString(t *testing.T) {
	if BCM.String() != "BCM" || ALCM.String() != "ALCM" || LCM.String() != "LCM" {
		t.Error("mode strings wrong")
	}
}

func TestPlacementInvalidModeError(t *testing.T) {
	_, _, a := prep(t, diamondSrc)
	if _, err := a.Placement(Mode(42)); err == nil {
		t.Fatal("invalid mode did not error")
	}
	if _, err := TransformOpts(mustParse(t, diamondSrc), Mode(42), Options{}); err == nil {
		t.Fatal("TransformOpts with invalid mode did not error")
	}
}

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]Mode{"bcm": BCM, "ALCM": ALCM, "Lcm": LCM} {
		got, ok := ParseMode(name)
		if !ok || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseMode("mr"); ok {
		t.Error("ParseMode accepted a non-LCM mode name")
	}
	for _, m := range Modes() {
		if !m.Valid() {
			t.Errorf("mode %v reported invalid", m)
		}
	}
	if Mode(42).Valid() {
		t.Error("Mode(42) reported valid")
	}
}

func TestAnalyzeFuelExhaustion(t *testing.T) {
	_, g, _ := prep(t, diamondSrc)
	if _, err := AnalyzeFuel(g, 1); err == nil {
		t.Fatal("fuel 1 should exhaust on the diamond")
	}
	if _, err := AnalyzeFuel(g, 1<<20); err != nil {
		t.Fatalf("ample fuel: %v", err)
	}
}

// TestDelayWithinDownSafe: every delayed node must be down-safe — the
// structural fact that makes insertion-at-nodes sufficient.
func TestDelayWithinDownSafe(t *testing.T) {
	for _, src := range []string{diamondSrc, `
func g(a, b, p, q) {
entry:
  br p l r
l:
  x = a * b
  jmp m
r:
  a = 1
  jmp m
m:
  y = a * b
  br q l end
end:
  ret y
}`} {
		_, g, a := prep(t, src)
		for n := 0; n < g.NumNodes(); n++ {
			if !a.Delay.Row(n).SubsetOf(a.DSafe.Row(n)) {
				t.Errorf("DELAY ⊄ DSAFE at %s", g.Nodes[n])
			}
			if !a.Earliest.Row(n).SubsetOf(a.DSafe.Row(n)) {
				t.Errorf("EARLIEST ⊄ DSAFE at %s", g.Nodes[n])
			}
			if !a.Latest.Row(n).SubsetOf(a.Delay.Row(n)) {
				t.Errorf("LATEST ⊄ DELAY at %s", g.Nodes[n])
			}
		}
	}
}
