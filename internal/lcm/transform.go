package lcm

import (
	"context"
	"fmt"
	"sort"

	"lazycm/internal/dataflow"
	"lazycm/internal/graph"
	"lazycm/internal/ir"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
)

// Result is the outcome of a PRE transformation.
type Result struct {
	// F is the transformed function: a clone of the input with critical
	// edges split, temporaries inserted, and computations replaced. The
	// input function is never mutated.
	F *ir.Function
	// Mode is the placement mode used.
	Mode Mode
	// Analysis is the full predicate analysis on the (edge-split) clone's
	// node graph.
	Analysis *Analysis
	// Placement is the insert/replace decision applied.
	Placement *Placement
	// TempFor maps each candidate expression to its temporary's name.
	// Only expressions with at least one insertion or replacement appear.
	TempFor map[ir.Expr]string
	// Inserted and Replaced count the code edits.
	Inserted, Replaced int
	// EdgesSplit is the number of critical edges materialized.
	EdgesSplit int
}

// Options tunes a transformation run beyond the placement mode.
type Options struct {
	// Canonical identifies commutated forms of commutative operators
	// (a+b ≡ b+a) in the expression universe, exposing strictly more
	// redundancies than the paper's purely lexical model — the extension
	// measured by experiment T7.
	Canonical bool
	// Fuel bounds each data-flow problem to that many node visits;
	// 0 means unlimited. See dataflow.Problem.Fuel.
	Fuel int
	// Ctx, when non-nil, lets the caller abandon the transformation: the
	// four data-flow problems poll it at iteration boundaries and the
	// whole run fails with an error unwrapping to dataflow.ErrCanceled.
	// Nil means "never canceled". See dataflow.Problem.Ctx.
	Ctx context.Context
	// Scratch, when non-nil, is the shared analysis arena: traversal
	// orders computed once per graph and recycled bit-vector storage
	// across the four data-flow problems (and across calls, e.g. one
	// arena per pipeline run). Nil means a run-private arena. The
	// analysis results are identical either way; see dataflow.Scratch.
	// Callers that keep one arena across calls should Release finished
	// results (Result.Release / Analysis.Release) so the six retained
	// predicate matrices recycle too.
	Scratch *dataflow.Scratch
	// Strategy selects the data-flow solver for all four fixpoints; the
	// zero value Auto picks by problem shape. Every strategy computes
	// bit-identical predicates (asserted by the randomized equivalence
	// suite); tests force Serial/Sliced/Sparse to prove exactly that.
	Strategy dataflow.Strategy
}

// Release returns the result's analysis and placement matrices to the
// scratch arena they were drawn from. Callers that run many
// transformations over one shared arena (pipeline rounds, server workers,
// benchmark loops) call it once they are done reading the predicates; the
// transformed function, counters, and TempFor map stay valid. Releasing a
// nil result or releasing twice is a no-op.
func (r *Result) Release() {
	if r == nil {
		return
	}
	r.Analysis.Release()
	r.Placement.Release()
}

// Transform applies the given placement mode to a clone of f and returns
// the result. The input function must be valid; the output is valid too.
func Transform(f *ir.Function, mode Mode) (*Result, error) {
	return TransformOpts(f, mode, Options{})
}

// TransformWith is Transform with the canonical-universe option.
func TransformWith(f *ir.Function, mode Mode, canonical bool) (*Result, error) {
	return TransformOpts(f, mode, Options{Canonical: canonical})
}

// TransformOpts is Transform with full options.
func TransformOpts(f *ir.Function, mode Mode, o Options) (*Result, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("lcm: invalid mode %d (valid: bcm, alcm, lcm)", int(mode))
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("lcm: input invalid: %w", err)
	}
	clone := f.Clone()
	split := graph.SplitCriticalEdges(clone)

	var u *props.Universe
	if o.Canonical {
		u = props.CollectCanonical(clone)
	} else {
		u = props.Collect(clone)
	}
	g := nodes.Build(clone, u)
	a, err := AnalyzeOpts(g, o)
	if err != nil {
		return nil, err
	}
	p, err := a.Placement(mode)
	if err != nil {
		return nil, err
	}

	res := &Result{
		F: clone, Mode: mode, Analysis: a, Placement: p,
		TempFor: make(map[ir.Expr]string), EdgesSplit: split,
	}
	if err := apply(res, g, u); err != nil {
		return nil, err
	}
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("lcm: transformed function invalid: %w", err)
	}
	return res, nil
}

// insertion is one pending edit: place t_expr = expr before position pos of
// a block.
type insertion struct {
	pos  int
	expr int
}

func apply(res *Result, g *nodes.Graph, u *props.Universe) error {
	clone := res.F

	// Name the temporaries deterministically: in expression-number order,
	// t0, t1, … skipping any names the program already uses. Only
	// expressions the placement touches get a temporary.
	touched := make([]bool, u.Size())
	for id := 0; id < g.NumNodes(); id++ {
		res.Placement.Insert.Row(id).ForEach(func(e int) { touched[e] = true })
		res.Placement.Replace.Row(id).ForEach(func(e int) { touched[e] = true })
	}
	used := make(map[string]bool)
	for _, v := range clone.Vars() {
		used[v] = true
	}
	tempName := make([]string, u.Size())
	next := 0
	for e := range touched {
		if !touched[e] {
			continue
		}
		for {
			cand := fmt.Sprintf("t%d", next)
			next++
			if !used[cand] {
				tempName[e] = cand
				used[cand] = true
				res.TempFor[u.Expr(e)] = cand
				break
			}
		}
	}
	needsTemp := func(e int) string { return tempName[e] }

	// Group insertions by block; record replacements per (block, index).
	insertsByBlock := make(map[*ir.Block][]insertion)
	type replKey struct {
		b   *ir.Block
		idx int
	}
	replace := make(map[replKey][]int)

	for id, nd := range g.Nodes {
		insRow := res.Placement.Insert.Row(id)
		if !insRow.IsEmpty() {
			var blk *ir.Block
			var pos int
			switch nd.Kind {
			case nodes.Stmt:
				blk, pos = nd.Block, nd.Index
			case nodes.Term:
				blk, pos = nd.Block, len(nd.Block.Instrs)
			case nodes.Entry:
				blk, pos = clone.Entry(), 0
			case nodes.Exit:
				return fmt.Errorf("lcm: internal error: insertion at virtual exit")
			}
			insRow.ForEach(func(e int) {
				insertsByBlock[blk] = append(insertsByBlock[blk], insertion{pos: pos, expr: e})
			})
		}
		repRow := res.Placement.Replace.Row(id)
		if !repRow.IsEmpty() {
			if nd.Kind != nodes.Stmt {
				return fmt.Errorf("lcm: internal error: replacement at non-statement node %s", nd)
			}
			repRow.ForEach(func(e int) {
				k := replKey{b: nd.Block, idx: nd.Index}
				replace[k] = append(replace[k], e)
			})
		}
	}

	// Apply replacements first (indices are still the originals).
	for k, exprs := range replace {
		if len(exprs) != 1 {
			return fmt.Errorf("lcm: internal error: %d replacements at one statement", len(exprs))
		}
		e := exprs[0]
		in := &k.b.Instrs[k.idx]
		ie, ok := in.Expr()
		if !ok {
			return fmt.Errorf("lcm: internal error: replacing non-computation %s", in)
		}
		if idx, found := u.Index(ie); !found || idx != e {
			return fmt.Errorf("lcm: internal error: replacement expression mismatch at %s", in)
		}
		*in = ir.NewCopy(in.Dst, ir.Var(needsTemp(e)))
		res.Replaced++
	}

	// Apply insertions back to front within each block so positions stay
	// valid; ties (same position) are applied in expression order.
	for blk, ins := range insertsByBlock {
		sort.Slice(ins, func(i, j int) bool {
			if ins[i].pos != ins[j].pos {
				return ins[i].pos > ins[j].pos
			}
			return ins[i].expr > ins[j].expr
		})
		for _, c := range ins {
			e := u.Expr(c.expr)
			blk.InsertAt(c.pos, ir.NewBinOp(needsTemp(c.expr), e.Op, e.A, e.B))
			res.Inserted++
		}
	}
	clone.Recompute()
	return nil
}

// StaticComputations counts BinOp statements in f: the static code-size
// measure reported by the experiments.
func StaticComputations(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.BinOp {
				n++
			}
		}
	}
	return n
}
