package lcm

import (
	"testing"
	"testing/quick"

	"lazycm/internal/interp"
	"lazycm/internal/randprog"
)

// TestIdempotence: running LCM on LCM output must change nothing — every
// temporary's computation sits at a latest, isolated-or-replaced point
// already, so a second pass finds no insertions and no replacements.
func TestIdempotence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		f := randprog.ForSeed(seed)
		first, err := Transform(f, LCM)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		second, err := Transform(first.F, LCM)
		if err != nil {
			t.Fatalf("seed %d second pass: %v", seed, err)
		}
		if second.Inserted != 0 || second.Replaced != 0 {
			t.Fatalf("seed %d: second LCM pass inserted %d, replaced %d\nfirst output:\n%s\nsecond output:\n%s",
				seed, second.Inserted, second.Replaced, first.F, second.F)
		}
	}
}

// TestQuickPlacementInvariants checks structural facts of the placement on
// arbitrary seeds via testing/quick:
//
//   - insertions only at down-safe points (safety);
//   - every replaced node is a computation;
//   - BCM never inserts later than LCM hoists (EARLIEST ⊆ DELAY);
//   - an inserted-and-not-replaced node never computes the expression.
func TestQuickPlacementInvariants(t *testing.T) {
	check := func(seed int64) bool {
		f := randprog.ForSeed(seed % 1000)
		res, err := Transform(f, LCM)
		if err != nil {
			return false
		}
		a := res.Analysis
		g := a.G
		for n := 0; n < g.NumNodes(); n++ {
			ins := res.Placement.Insert.Row(n)
			if !ins.SubsetOf(a.DSafe.Row(n)) {
				return false // unsafe insertion
			}
			if !res.Placement.Replace.Row(n).SubsetOf(g.Comp.Row(n)) {
				return false // replacing a non-computation
			}
			if !a.Earliest.Row(n).SubsetOf(a.Delay.Row(n)) {
				return false
			}
			if !a.Latest.Row(n).SubsetOf(a.DSafe.Row(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertCountsBounded: LCM never inserts more computations of an
// expression than BCM+1 per earliest region... a loose structural sanity
// bound: insertions never exceed the number of CFG edges plus nodes.
func TestQuickModesConsistent(t *testing.T) {
	check := func(seed int64) bool {
		f := randprog.ForSeed(seed % 1000)
		bcm, err := Transform(f, BCM)
		if err != nil {
			return false
		}
		alcm, err := Transform(f, ALCM)
		if err != nil {
			return false
		}
		lzy, err := Transform(f, LCM)
		if err != nil {
			return false
		}
		// LCM inserts a subset of ALCM's insertions (isolation only
		// removes), and replaces a subset of ALCM's replacements.
		if lzy.Inserted > alcm.Inserted || lzy.Replaced > alcm.Replaced {
			return false
		}
		// All three touch the same expressions or fewer under LCM.
		if len(lzy.TempFor) > len(alcm.TempFor) {
			return false
		}
		_ = bcm
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCanonicalTransformVerified: the canonicalizing variant must remain
// observably equivalent and never increase total per-path evaluations.
func TestCanonicalTransformVerified(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := randprog.ForSeed(seed)
		res, err := TransformWith(f, LCM, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.F.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*5+int64(run))
			a, ca, err := interp.Run(f, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			b, cb, err := interp.Run(res.F, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			if !a.ObservablyEqual(b) {
				t.Fatalf("seed %d args %v: %s vs %s\n%s\n%s", seed, args, a, b, f, res.F)
			}
			if cb.Total() > ca.Total() {
				t.Fatalf("seed %d args %v: canonical made path worse: %d > %d",
					seed, args, cb.Total(), ca.Total())
			}
		}
	}
}
