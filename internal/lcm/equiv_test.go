package lcm

import (
	"fmt"
	"testing"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/randprog"
)

// TestStrategyEquivalence is the transformation-level half of the solver
// equivalence story (the solver-level half lives in internal/dataflow): on
// randomly generated programs, every solver strategy must produce
// bit-identical predicate matrices, placements, and transformed functions.
// The suite runs under -race in CI, so the sliced strategy's concurrent
// word-column writes are also checked for soundness, not just results.
func TestStrategyEquivalence(t *testing.T) {
	strategies := []dataflow.Strategy{dataflow.Sliced, dataflow.Sparse}
	for seed := int64(0); seed < 8; seed++ {
		// Vary program size: shallow programs stay under the dispatch
		// thresholds (forcing the strategy matters there), deep ones cross
		// them.
		cfg := randprog.Default(seed * 7919)
		cfg.MaxDepth = 3 + int(seed%4)
		f := randprog.Generate(cfg)

		ref, err := TransformOpts(f, LCM, Options{Strategy: dataflow.Serial})
		if err != nil {
			t.Fatalf("seed %d: serial transform: %v", seed, err)
		}
		for _, strat := range strategies {
			for _, shared := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/%v/shared=%v", seed, strat, shared)
				var sc *dataflow.Scratch
				if shared {
					sc = dataflow.NewScratch()
				}
				got, err := TransformOpts(f, LCM, Options{Strategy: strat, Scratch: sc})
				if err != nil {
					t.Fatalf("%s: transform: %v", name, err)
				}
				matrices := []struct {
					label    string
					ref, got *bitvec.Matrix
				}{
					{"DSafe", ref.Analysis.DSafe, got.Analysis.DSafe},
					{"USafe", ref.Analysis.USafe, got.Analysis.USafe},
					{"Earliest", ref.Analysis.Earliest, got.Analysis.Earliest},
					{"Delay", ref.Analysis.Delay, got.Analysis.Delay},
					{"Latest", ref.Analysis.Latest, got.Analysis.Latest},
					{"Isolated", ref.Analysis.Isolated, got.Analysis.Isolated},
					{"Insert", ref.Placement.Insert, got.Placement.Insert},
					{"Replace", ref.Placement.Replace, got.Placement.Replace},
				}
				for _, m := range matrices {
					if !m.ref.Equal(m.got) {
						t.Errorf("%s: %s differs from serial", name, m.label)
					}
				}
				if gotS, refS := got.F.String(), ref.F.String(); gotS != refS {
					t.Errorf("%s: transformed function differs from serial", name)
				}
				got.Release()
				// A released result must still round-trip through the arena:
				// a second run on the same scratch must again match.
				if shared {
					again, err := TransformOpts(f, LCM, Options{Strategy: strat, Scratch: sc})
					if err != nil {
						t.Fatalf("%s: second transform on shared arena: %v", name, err)
					}
					if !ref.Analysis.Latest.Equal(again.Analysis.Latest) {
						t.Errorf("%s: arena reuse changed LATEST", name)
					}
					again.Release()
				}
			}
		}
	}
}

// TestStrategyEquivalenceAuto checks that the default dispatcher (Auto)
// agrees with forced-serial on programs large enough to actually engage
// the sliced and sparse paths.
func TestStrategyEquivalenceAuto(t *testing.T) {
	if testing.Short() {
		t.Skip("deep random programs are slow under -short")
	}
	for seed := int64(0); seed < 2; seed++ {
		cfg := randprog.Default(seed*104729 + 17)
		cfg.MaxDepth = 6
		f := randprog.Generate(cfg)
		ref, err := TransformOpts(f, LCM, Options{Strategy: dataflow.Serial})
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		got, err := TransformOpts(f, LCM, Options{})
		if err != nil {
			t.Fatalf("seed %d: auto: %v", seed, err)
		}
		if !ref.Analysis.DSafe.Equal(got.Analysis.DSafe) ||
			!ref.Analysis.Latest.Equal(got.Analysis.Latest) ||
			!ref.Analysis.Isolated.Equal(got.Analysis.Isolated) {
			t.Errorf("seed %d: auto-dispatched predicates differ from serial", seed)
		}
		if ref.F.String() != got.F.String() {
			t.Errorf("seed %d: auto-dispatched transform differs from serial", seed)
		}
	}
}
