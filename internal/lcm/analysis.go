// Package lcm implements the paper's contribution: Lazy Code Motion
// (Knoop, Rüthing & Steffen, PLDI 1992), a partial-redundancy-elimination
// transformation that is computationally optimal and, among all
// computationally optimal placements, lifetime optimal.
//
// The algorithm runs on the paper's program model (package nodes: one
// elementary statement per node, unique empty entry and exit, synthetic
// nodes on critical edges) and consists of four unidirectional bit-vector
// data-flow analyses plus two derived predicates, all computed for every
// candidate expression simultaneously:
//
//	DSAFE    (backward, must)  — down-safety: on every path from the node,
//	                             e is computed before any operand changes.
//	USAFE    (forward, must)   — up-safety (availability): on every path to
//	                             the node, e was computed after the last
//	                             operand change.
//	EARLIEST (derived)         — down-safe nodes where the computation can
//	                             be hoisted no further.
//	DELAY    (forward, must)   — insertions can be postponed from earliest
//	                             points down to here without losing
//	                             computational optimality.
//	LATEST   (derived)         — the frontier of delayability: the latest
//	                             computationally optimal insertion points.
//	ISOLATED (backward, must)  — insertions here would only feed the
//	                             immediately following computation.
//
// Three placement modes expose the paper's development:
//
//	BCM  (busy)        — insert at EARLIEST: computationally optimal,
//	                     maximal temporary lifetimes.
//	ALCM (almost lazy) — insert at LATEST: minimal lifetimes except for
//	                     isolated single-use copies.
//	LCM  (lazy)        — insert at LATEST ∧ ¬ISOLATED, suppressing the
//	                     useless copies: the paper's final transformation.
package lcm

import (
	"fmt"
	"strings"

	"lazycm/internal/bitvec"
	"lazycm/internal/conc"
	"lazycm/internal/dataflow"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
)

// Mode selects a placement strategy.
type Mode int

const (
	// BCM is Busy Code Motion: insert as early as possible.
	BCM Mode = iota
	// ALCM is Almost Lazy Code Motion: insert as late as possible.
	ALCM
	// LCM is Lazy Code Motion: as late as possible, minus isolated
	// insertions.
	LCM
)

// Modes lists the valid placement modes.
func Modes() []Mode { return []Mode{BCM, ALCM, LCM} }

// Valid reports whether m is a defined placement mode.
func (m Mode) Valid() bool { return m == BCM || m == ALCM || m == LCM }

// ParseMode resolves a case-insensitive mode name ("bcm", "alcm", "lcm")
// to its Mode. The second result is false for unknown names.
func ParseMode(s string) (Mode, bool) {
	switch strings.ToLower(s) {
	case "bcm":
		return BCM, true
	case "alcm":
		return ALCM, true
	case "lcm":
		return LCM, true
	}
	return Mode(-1), false
}

// String names the mode.
func (m Mode) String() string {
	switch m {
	case BCM:
		return "BCM"
	case ALCM:
		return "ALCM"
	case LCM:
		return "LCM"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Analysis holds the six global predicates of the paper over a node graph,
// one row per node, one column per candidate expression.
type Analysis struct {
	G *nodes.Graph
	U *props.Universe

	DSafe    *bitvec.Matrix // down-safety at node entry
	USafe    *bitvec.Matrix // up-safety at node entry
	Earliest *bitvec.Matrix
	Delay    *bitvec.Matrix
	Latest   *bitvec.Matrix
	Isolated *bitvec.Matrix

	// Stats holds the solver statistics of the data-flow problems, in the
	// order they were solved (down-safety, up-safety, delay, isolation).
	// The derived predicates' vector operations are accounted in Derived.
	Stats []dataflow.Stats
	// Derived counts the whole-vector operations spent computing EARLIEST
	// and LATEST.
	Derived int

	// sc is the arena every retained matrix was drawn from; Release
	// returns them to it so the next analysis on this arena reuses the
	// same backing storage instead of allocating six fresh matrices.
	sc *dataflow.Scratch
}

// Release returns the six predicate matrices to the analysis arena and
// nils them out. Callers that are done reading the predicates — pipeline
// rounds, server workers between requests, benchmark loops — call it so
// repeated analyses recycle one backing store. Releasing twice is a no-op;
// using the matrices after Release is a caller bug (the arena may hand
// them to the next analysis zeroed).
func (a *Analysis) Release() {
	if a == nil || a.sc == nil {
		return
	}
	a.sc.Release(a.DSafe, a.USafe, a.Earliest, a.Delay, a.Latest, a.Isolated)
	a.DSafe, a.USafe, a.Earliest, a.Delay, a.Latest, a.Isolated = nil, nil, nil, nil, nil, nil
}

// TotalVectorOps returns the total whole-vector operation count across the
// four data-flow problems and the derived predicates: the efficiency
// currency of experiment T4.
func (a *Analysis) TotalVectorOps() int {
	total := a.Derived
	for _, s := range a.Stats {
		total += s.VectorOps
	}
	return total
}

// Analyze computes all six predicates over g with no fuel bound and no
// cancellation.
func Analyze(g *nodes.Graph) (*Analysis, error) {
	return AnalyzeOpts(g, Options{})
}

// AnalyzeFuel computes all six predicates over g. A positive fuel bounds
// each of the four data-flow problems to that many node visits; a problem
// that fails to converge within the budget aborts the analysis with an
// error wrapping dataflow.ErrFuelExhausted.
func AnalyzeFuel(g *nodes.Graph, fuel int) (*Analysis, error) {
	return AnalyzeOpts(g, Options{Fuel: fuel})
}

// AnalyzeOpts is Analyze with full options: o.Fuel bounds each data-flow
// problem and o.Ctx, when non-nil, is polled at iteration boundaries so a
// canceled or expired context aborts the analysis with an error wrapping
// dataflow.ErrCanceled (o.Canonical is irrelevant here — the universe is
// fixed by g).
//
// All four data-flow problems and the derived predicates share one
// dataflow.Scratch (o.Scratch, or a run-private one): the traversal order
// is computed once per direction and the bit-vector working state is
// recycled between problems instead of reallocated per analysis. The two
// problems that depend on nothing but the graph's local predicates —
// down-safety and up-safety — are solved concurrently; they read only
// shared immutable inputs (COMP, TRANSP, ¬TRANSP) and write disjoint
// results, and each still honors o.Fuel and o.Ctx on its own. None of
// this changes what is computed: every fixpoint is the unique solution
// of its own monotone system, solved in the same per-problem iteration
// order as before (see DESIGN.md "Shared analysis scratch").
func AnalyzeOpts(g *nodes.Graph, o Options) (*Analysis, error) {
	n := g.NumNodes()
	w := g.U.Size()
	fuel := o.Fuel
	sc := o.Scratch
	if sc == nil {
		sc = dataflow.NewScratch()
	}
	a := &Analysis{G: g, U: g.U, sc: sc}
	releaseRes := func(rs ...*dataflow.Result) {
		for _, r := range rs {
			if r != nil {
				sc.Release(r.In, r.Out)
			}
		}
	}

	// Shared kill vector: expressions killed by a node are those with a
	// redefined operand, i.e. ¬TRANSP.
	notTransp := sc.Matrix(n, w)
	for i := 0; i < n; i++ {
		notTransp.Row(i).NotOf(g.Transp.Row(i))
	}

	// Gen for up-safety: COMP ∧ TRANSP, because a computation whose own
	// assignment kills an operand (v = v ⊕ b) does not make the
	// expression available.
	usafeGen := sc.Matrix(n, w)
	for i := 0; i < n; i++ {
		usafeGen.Row(i).AndOf(g.Comp.Row(i), g.Transp.Row(i))
	}

	// Down-safety: backward, must.
	//   DSAFE(n) = COMP(n) ∨ (TRANSP(n) ∧ ∏_{m∈succ(n)} DSAFE(m))
	// with DSAFE ≡ false at the exit node.
	//
	// Up-safety: forward, must.
	//   USAFE(n) = ∏_{m∈pred(n)} ((USAFE(m) ∨ COMP(m)) ∧ TRANSP(m))
	// with USAFE ≡ false at the entry node.
	//
	// The two systems are independent — neither reads the other's
	// solution — so they solve in parallel over the shared scratch.
	var dsafeRes, usafeRes *dataflow.Result
	var grp conc.Group
	grp.Go(func() error {
		var err error
		dsafeRes, err = dataflow.Solve(g, &dataflow.Problem{
			Name: "dsafe", Dir: dataflow.Backward, Meet: dataflow.Must,
			Width: w, Gen: g.Comp, Kill: notTransp,
			Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
			Strategy: o.Strategy,
		})
		return err
	})
	grp.Go(func() error {
		var err error
		usafeRes, err = dataflow.Solve(g, &dataflow.Problem{
			Name: "usafe", Dir: dataflow.Forward, Meet: dataflow.Must,
			Width: w, Gen: usafeGen, Kill: notTransp,
			Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
			Strategy: o.Strategy,
		})
		return err
	})
	if err := grp.Wait(); err != nil {
		releaseRes(dsafeRes, usafeRes)
		sc.Release(notTransp, usafeGen)
		return nil, fmt.Errorf("lcm: %w", err)
	}
	a.DSafe = dsafeRes.In
	a.USafe = usafeRes.In
	// Stats keep their documented order (dsafe, usafe, delay, isolated)
	// regardless of which concurrent solve finished first.
	a.Stats = append(a.Stats, dsafeRes.Stats, usafeRes.Stats)
	sc.Release(dsafeRes.Out, usafeRes.Out, usafeGen)

	// Earliestness (derived):
	//   EARLIEST(n) = DSAFE(n) ∧ (pred(n) = ∅ ∨
	//       ¬∏_{m∈pred(n)} (TRANSP(m) ∧ (DSAFE(m) ∨ USAFE(m))))
	// A computation can be hoisted over predecessor m only if m does not
	// change its value (TRANSP) and placing it at m is safe. The fused
	// vector ops below compute the same predicates in fewer memory sweeps;
	// Derived still counts the logical (unfused) operations so the T4
	// efficiency currency stays comparable across implementations.
	a.Earliest = sc.Matrix(n, w)
	hoistable := sc.Vector(w)
	tmp := sc.Vector(w)
	for i := 0; i < n; i++ {
		row := a.Earliest.Row(i)
		row.CopyFrom(a.DSafe.Row(i))
		a.Derived++
		if g.NumPreds(i) == 0 {
			continue // entry: earliest wherever down-safe
		}
		hoistable.SetAll()
		for p := 0; p < g.NumPreds(i); p++ {
			m := g.Pred(i, p)
			tmp.OrAndOf(a.DSafe.Row(m), a.USafe.Row(m), g.Transp.Row(m))
			hoistable.And(tmp)
			a.Derived += 4
		}
		row.AndNot(hoistable)
		a.Derived++
	}

	// Delayability: forward, must.
	//   DELAY(n) = EARLIEST(n) ∨ ∏_{m∈pred(n)} (DELAY(m) ∧ ¬COMP(m))
	// with the meet-input false at the entry node. In gen/kill form the
	// transfer is OUT = (IN ∨ EARLIEST) ∧ ¬COMP.
	delayGen := sc.Matrix(n, w)
	for i := 0; i < n; i++ {
		delayGen.Row(i).AndNotOf(a.Earliest.Row(i), g.Comp.Row(i))
	}
	delayRes, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "delay", Dir: dataflow.Forward, Meet: dataflow.Must,
		Width: w, Gen: delayGen, Kill: g.Comp,
		Boundary: dataflow.BoundaryEmpty, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
		Strategy: o.Strategy,
	})
	if err != nil {
		sc.Release(notTransp, delayGen, a.Earliest)
		sc.ReleaseVector(hoistable, tmp)
		return nil, fmt.Errorf("lcm: %w", err)
	}
	// DELAY at the node is IN ∨ EARLIEST; fold EARLIEST into the solver's
	// IN matrix in place and retain it.
	a.Delay = delayRes.In
	for i := 0; i < n; i++ {
		a.Delay.Row(i).Or(a.Earliest.Row(i))
	}
	a.Stats = append(a.Stats, delayRes.Stats)
	sc.Release(delayRes.Out, delayGen)

	// Latestness (derived):
	//   LATEST(n) = DELAY(n) ∧ (COMP(n) ∨ ¬∏_{m∈succ(n)} DELAY(m))
	a.Latest = sc.Matrix(n, w)
	for i := 0; i < n; i++ {
		row := a.Latest.Row(i)
		ns := g.NumSuccs(i)
		if ns == 0 {
			// ∏ over the empty set is true: LATEST = DELAY ∧ COMP.
			row.AndOf(a.Delay.Row(i), g.Comp.Row(i))
			a.Derived += 2
			continue
		}
		hoistable.SetAll()
		for s := 0; s < ns; s++ {
			hoistable.And(a.Delay.Row(g.Succ(i, s)))
			a.Derived++
		}
		hoistable.Not()
		hoistable.Or(g.Comp.Row(i))
		row.AndOf(a.Delay.Row(i), hoistable)
		a.Derived += 4
	}
	sc.ReleaseVector(hoistable, tmp)

	// Isolation: backward, must.
	//   ISOLATED(n) = ∏_{m∈succ(n)} (LATEST(m) ∨ (¬COMP(m) ∧ ISOLATED(m)))
	// with ISOLATED ≡ true at the exit node. In flow form the node value
	// is the OUT side; the IN transfer is IN = LATEST ∨ (OUT ∧ ¬COMP).
	isoRes, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "isolated", Dir: dataflow.Backward, Meet: dataflow.Must,
		Width: w, Gen: a.Latest, Kill: g.Comp,
		Boundary: dataflow.BoundaryFull, Fuel: fuel, Ctx: o.Ctx, Scratch: sc,
		Strategy: o.Strategy,
	})
	if err != nil {
		sc.Release(notTransp)
		return nil, fmt.Errorf("lcm: %w", err)
	}
	a.Isolated = isoRes.Out
	a.Stats = append(a.Stats, isoRes.Stats)
	sc.Release(isoRes.In, notTransp)

	return a, nil
}

// Placement is a code-motion decision: which expressions to insert before
// which nodes and which computations to rewrite to the temporary.
type Placement struct {
	Mode Mode
	// Insert(node, expr): place t_expr = expr immediately before node.
	Insert *bitvec.Matrix
	// Replace(node, expr): rewrite the node's computation of expr to read
	// t_expr.
	Replace *bitvec.Matrix

	// sc is the arena the matrices came from; see Analysis.sc.
	sc *dataflow.Scratch
}

// Release returns the placement matrices to the analysis arena and nils
// them out; see Analysis.Release for the contract.
func (p *Placement) Release() {
	if p == nil || p.sc == nil {
		return
	}
	p.sc.Release(p.Insert, p.Replace)
	p.Insert, p.Replace = nil, nil
}

// Placement derives the insert/replace decision for the given mode. An
// unknown mode is a returned error, not a panic: the hardened CLIs
// validate modes up front and the pipeline surfaces the error.
func (a *Analysis) Placement(mode Mode) (*Placement, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("lcm: invalid mode %d (valid: bcm, alcm, lcm)", int(mode))
	}
	n := a.G.NumNodes()
	w := a.U.Size()
	p := &Placement{Mode: mode, sc: a.sc}
	if a.sc != nil {
		p.Insert, p.Replace = a.sc.Matrix(n, w), a.sc.Matrix(n, w)
	} else {
		p.Insert, p.Replace = bitvec.NewMatrix(n, w), bitvec.NewMatrix(n, w)
	}
	for i := 0; i < n; i++ {
		ins := p.Insert.Row(i)
		rep := p.Replace.Row(i)
		switch mode {
		case BCM:
			ins.CopyFrom(a.Earliest.Row(i))
			rep.CopyFrom(a.G.Comp.Row(i))
		case ALCM:
			ins.CopyFrom(a.Latest.Row(i))
			rep.CopyFrom(a.G.Comp.Row(i))
		case LCM:
			// INSERT = LATEST ∧ ¬ISOLATED
			ins.CopyFrom(a.Latest.Row(i))
			ins.AndNot(a.Isolated.Row(i))
			// REPLACE = COMP ∧ ¬(LATEST ∧ ISOLATED)
			rep.CopyFrom(a.Latest.Row(i))
			rep.And(a.Isolated.Row(i))
			rep.Not()
			rep.And(a.G.Comp.Row(i))
		}
	}
	return p, nil
}
