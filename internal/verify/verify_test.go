package verify

import (
	"strings"
	"testing"

	"lazycm/internal/gcse"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/mr"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const diamondSrc = `
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`

func TestEquivalentAcceptsIdentity(t *testing.T) {
	f := parse(t, diamondSrc)
	if err := Equivalent(f, f.Clone(), 1, 8); err != nil {
		t.Error(err)
	}
}

func TestEquivalentDetectsChange(t *testing.T) {
	f := parse(t, diamondSrc)
	g := f.Clone()
	// Corrupt: join returns a constant instead of y.
	g.BlockByName("join").Term = ir.Terminator{Kind: ir.Ret, HasVal: true, Val: ir.Const(999)}
	g.Recompute()
	if err := Equivalent(f, g, 1, 8); err == nil {
		t.Error("corrupted program accepted as equivalent")
	}
}

func TestNeverWorseDetectsSpeculation(t *testing.T) {
	f := parse(t, diamondSrc)
	g := f.Clone()
	// Speculative insertion: compute a+b in entry too (the else path now
	// evaluates it where the original did not... both paths still evaluate
	// once at join, so entry+join = 2 > 1).
	g.Entry().Append(ir.NewBinOp("h", ir.Add, ir.Var("a"), ir.Var("b")))
	g.Recompute()
	if err := NeverWorse(f, g, 1, 8); err == nil {
		t.Error("speculative insertion accepted")
	}
}

func TestTempsDefinedAccepts(t *testing.T) {
	res, err := lcm.Transform(parse(t, diamondSrc), lcm.LCM)
	if err != nil {
		t.Fatal(err)
	}
	if err := TempsDefined(res.F, res.TempFor); err != nil {
		t.Error(err)
	}
}

func TestTempsDefinedDetectsMissingDef(t *testing.T) {
	// t is read at join but defined only on the then arm.
	f := parse(t, `
func f(a, b, c) {
entry:
  br c then else
then:
  t = a + b
  jmp join
else:
  jmp join
join:
  y = t
  ret y
}`)
	tempFor := map[ir.Expr]string{{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}: "t"}
	err := TempsDefined(f, tempFor)
	if err == nil || !strings.Contains(err.Error(), "may be read undefined") {
		t.Errorf("partial definition accepted: %v", err)
	}
}

func TestTempsDefinedNoTemps(t *testing.T) {
	if err := TempsDefined(parse(t, diamondSrc), nil); err != nil {
		t.Error(err)
	}
}

// TestAllTransformationsOnRandomPrograms is the in-tree version of
// experiment T1: every transformation in the module, on a fleet of random
// programs, passes the full battery.
func TestAllTransformationsOnRandomPrograms(t *testing.T) {
	const numPrograms = 60
	const runsPerProgram = 4
	for seed := int64(0); seed < numPrograms; seed++ {
		f := randprog.ForSeed(seed)

		for _, mode := range []lcm.Mode{lcm.BCM, lcm.ALCM, lcm.LCM} {
			res, err := lcm.Transform(f, mode)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mode, err)
			}
			tr := Transformation{Name: mode.String(), F: res.F, TempFor: res.TempFor}
			if err := Check(f, tr, seed*1000, runsPerProgram); err != nil {
				t.Fatalf("seed %d: %v\noriginal:\n%s\ntransformed:\n%s", seed, err, f, res.F)
			}
		}

		mrRes, err := mr.Transform(f)
		if err != nil {
			t.Fatalf("seed %d MR: %v", seed, err)
		}
		if err := Check(f, Transformation{Name: "MR", F: mrRes.F, TempFor: mrRes.TempFor}, seed*1000, runsPerProgram); err != nil {
			t.Fatalf("seed %d: %v\noriginal:\n%s\ntransformed:\n%s", seed, err, f, mrRes.F)
		}

		gcseRes, err := gcse.Transform(f)
		if err != nil {
			t.Fatalf("seed %d GCSE: %v", seed, err)
		}
		if err := Check(f, Transformation{Name: "GCSE", F: gcseRes.F, TempFor: gcseRes.TempFor}, seed*1000, runsPerProgram); err != nil {
			t.Fatalf("seed %d: %v\noriginal:\n%s\ntransformed:\n%s", seed, err, f, gcseRes.F)
		}
	}
}

// TestComputationalOptimalityOnRandomPrograms is the in-tree version of
// experiment T2's core claim: BCM, ALCM and LCM are mutually as good (all
// computationally optimal), and none is worse than MR or GCSE.
func TestComputationalOptimalityOnRandomPrograms(t *testing.T) {
	const numPrograms = 40
	for seed := int64(0); seed < numPrograms; seed++ {
		f := randprog.ForSeed(seed)
		bcm, err := lcm.Transform(f, lcm.BCM)
		if err != nil {
			t.Fatal(err)
		}
		alcm, err := lcm.Transform(f, lcm.ALCM)
		if err != nil {
			t.Fatal(err)
		}
		lzy, err := lcm.Transform(f, lcm.LCM)
		if err != nil {
			t.Fatal(err)
		}
		mrRes, err := mr.Transform(f)
		if err != nil {
			t.Fatal(err)
		}
		gcseRes, err := gcse.Transform(f)
		if err != nil {
			t.Fatal(err)
		}
		s := seed * 7777
		// LCM == BCM == ALCM (mutual domination).
		if err := AsGoodAs(f, lzy.F, bcm.F, s, 4); err != nil {
			t.Fatalf("seed %d: LCM worse than BCM: %v", seed, err)
		}
		if err := AsGoodAs(f, bcm.F, lzy.F, s, 4); err != nil {
			t.Fatalf("seed %d: BCM worse than LCM: %v", seed, err)
		}
		if err := AsGoodAs(f, alcm.F, lzy.F, s, 4); err != nil {
			t.Fatalf("seed %d: ALCM worse than LCM: %v", seed, err)
		}
		// LCM ≤ MR ≤ original; LCM ≤ GCSE.
		if err := AsGoodAs(f, lzy.F, mrRes.F, s, 4); err != nil {
			t.Fatalf("seed %d: LCM worse than MR: %v\n%s\nLCM:\n%s\nMR:\n%s", seed, err, f, lzy.F, mrRes.F)
		}
		if err := AsGoodAs(f, mrRes.F, f, s, 4); err != nil {
			t.Fatalf("seed %d: MR worse than original: %v", seed, err)
		}
		if err := AsGoodAs(f, lzy.F, gcseRes.F, s, 4); err != nil {
			t.Fatalf("seed %d: LCM worse than GCSE: %v", seed, err)
		}
	}
}

func TestCheckReportsInvalidFunction(t *testing.T) {
	f := parse(t, diamondSrc)
	bad := f.Clone()
	bad.Blocks[1], bad.Blocks[2] = bad.Blocks[2], bad.Blocks[1] // stale IDs
	err := Check(f, Transformation{Name: "bad", F: bad}, 1, 2)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("invalid function accepted: %v", err)
	}
}

func TestAsGoodAsDirection(t *testing.T) {
	f := parse(t, diamondSrc)
	lzy, err := lcm.Transform(f, lcm.LCM)
	if err != nil {
		t.Fatal(err)
	}
	// The original is NOT as good as LCM when the then-arm runs (2 evals
	// vs 1): with c=1 among the sampled args this must be detected.
	if err := AsGoodAs(f, f, lzy.F, 3, 16); err == nil {
		t.Error("original judged as good as LCM; sampler may be too weak")
	}
}
