// Package verify machine-checks the properties the paper proves about its
// transformations, on concrete programs:
//
//   - Equivalent — the transformed program is observably equivalent to the
//     original on a battery of inputs (correctness);
//   - NeverWorse — on every executed path, the transformed program
//     evaluates each candidate expression at most as often as the original
//     (per-path safety: classic PRE must never slow any path down);
//   - AsGoodAs — the transformed program evaluates at most as many
//     candidate expressions as another transformation on the same inputs
//     (used to compare LCM against BCM: both must be computationally
//     optimal, i.e. mutually AsGoodAs);
//   - TempsDefined — every read of a PRE temporary is preceded by a
//     definition of it on all paths (structural correctness of the
//     insertion points).
//
// These checks are what the test suite and experiment T1 run against every
// transformation on thousands of random programs.
package verify

import (
	"fmt"
	"sort"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
	"lazycm/internal/randprog"
)

// Equivalent runs both functions on n argument vectors derived from seed
// and reports the first observable difference.
func Equivalent(orig, xformed *ir.Function, seed int64, n int) error {
	for i := 0; i < n; i++ {
		args := randprog.Args(orig, seed+int64(i))
		a, _, err := interp.Run(orig, interp.Options{Args: args})
		if err != nil {
			return fmt.Errorf("verify: original failed: %w", err)
		}
		b, _, err := interp.Run(xformed, interp.Options{Args: args})
		if err != nil {
			return fmt.Errorf("verify: transformed failed: %w", err)
		}
		if !a.ObservablyEqual(b) {
			return fmt.Errorf("verify: behaviour differs on args %v: original %s, transformed %s", args, a, b)
		}
	}
	return nil
}

// NeverWorse checks that on n runs, for every candidate expression of the
// original, the transformed program performs at most as many evaluations.
func NeverWorse(orig, xformed *ir.Function, seed int64, n int) error {
	exprs := props.Collect(orig).Exprs()
	for i := 0; i < n; i++ {
		args := randprog.Args(orig, seed+int64(i))
		_, before, err := interp.Run(orig, interp.Options{Args: args})
		if err != nil {
			return err
		}
		_, after, err := interp.Run(xformed, interp.Options{Args: args})
		if err != nil {
			return err
		}
		after = interp.CountsRestrictedTo(after, exprs)
		for _, e := range exprs {
			if after[e] > before[e] {
				return fmt.Errorf("verify: args %v: %s evaluated %d times, originally %d — path made worse",
					args, e, after[e], before[e])
			}
		}
	}
	return nil
}

// AsGoodAs checks that on n runs, candidate-expression evaluations of a
// total at most those of b, attributing evaluations to the original
// function's expression universe.
func AsGoodAs(orig, a, b *ir.Function, seed int64, n int) error {
	exprs := props.Collect(orig).Exprs()
	for i := 0; i < n; i++ {
		args := randprog.Args(orig, seed+int64(i))
		_, ca, err := interp.Run(a, interp.Options{Args: args})
		if err != nil {
			return err
		}
		_, cb, err := interp.Run(b, interp.Options{Args: args})
		if err != nil {
			return err
		}
		ta := interp.CountsRestrictedTo(ca, exprs).Total()
		tb := interp.CountsRestrictedTo(cb, exprs).Total()
		if ta > tb {
			return fmt.Errorf("verify: args %v: %d evaluations vs %d — not as good", args, ta, tb)
		}
	}
	return nil
}

// TempsDefined checks by data-flow analysis (definite assignment over the
// statement-level node graph) that every read of each temporary is
// preceded by a definition of it on all paths from entry.
func TempsDefined(f *ir.Function, tempFor map[ir.Expr]string) error {
	if len(tempFor) == 0 {
		return nil
	}
	temps := make([]string, 0, len(tempFor))
	for _, t := range tempFor {
		temps = append(temps, t)
	}
	sort.Strings(temps)
	index := make(map[string]int, len(temps))
	for i, t := range temps {
		index[t] = i
	}

	u := props.Collect(f)
	g := nodes.Build(f, u)
	n := g.NumNodes()
	w := len(temps)
	def := bitvec.NewMatrix(n, w)
	for id, nd := range g.Nodes {
		if nd.Kind != nodes.Stmt {
			continue
		}
		if d := nd.Block.Instrs[nd.Index].Defs(); d != "" {
			if i, ok := index[d]; ok {
				def.Set(id, i)
			}
		}
	}
	res, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "definite-assignment", Dir: dataflow.Forward, Meet: dataflow.Must,
		Width: w, Gen: def, Kill: bitvec.NewMatrix(n, w),
		Boundary: dataflow.BoundaryEmpty,
	})
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}

	var scratch []string
	for id, nd := range g.Nodes {
		switch nd.Kind {
		case nodes.Stmt:
			scratch = nd.Block.Instrs[nd.Index].UsedVars(scratch[:0])
		case nodes.Term:
			scratch = nd.Block.Term.UsedVars(scratch[:0])
		default:
			continue
		}
		for _, v := range scratch {
			if i, ok := index[v]; ok && !res.In.Get(id, i) {
				return fmt.Errorf("verify: temp %s may be read undefined at %s", v, nd)
			}
		}
	}
	return nil
}

// Transformation bundles what every PRE result in this module exposes, so
// one checker covers lcm, mr and gcse results.
type Transformation struct {
	Name    string
	F       *ir.Function
	TempFor map[ir.Expr]string
}

// Check runs the full battery — structural validity, defined temps,
// equivalence, and per-path never-worse — of one transformation against
// its original.
func Check(orig *ir.Function, tr Transformation, seed int64, runs int) error {
	if err := tr.F.Validate(); err != nil {
		return fmt.Errorf("verify[%s]: %w", tr.Name, err)
	}
	if err := TempsDefined(tr.F, tr.TempFor); err != nil {
		return fmt.Errorf("verify[%s]: %w", tr.Name, err)
	}
	if err := Equivalent(orig, tr.F, seed, runs); err != nil {
		return fmt.Errorf("verify[%s]: %w", tr.Name, err)
	}
	if err := NeverWorse(orig, tr.F, seed, runs); err != nil {
		return fmt.Errorf("verify[%s]: %w", tr.Name, err)
	}
	return nil
}
