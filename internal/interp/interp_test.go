package interp

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func run(t *testing.T, src string, args ...int64) (Outcome, Counts) {
	t.Helper()
	out, counts, err := Run(parse(t, src), Options{Args: args})
	if err != nil {
		t.Fatal(err)
	}
	return out, counts
}

func TestStraightLine(t *testing.T) {
	out, counts := run(t, `
func f(a, b) {
e:
  x = a + b
  y = x * 2
  print y
  ret y
}`, 3, 4)
	if !out.Returned || !out.HasValue || out.Value != 14 {
		t.Fatalf("outcome = %s", out)
	}
	if len(out.Prints) != 1 || out.Prints[0] != 14 {
		t.Fatalf("prints = %v", out.Prints)
	}
	if counts.Total() != 2 {
		t.Fatalf("counts = %v", counts)
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 1 {
		t.Errorf("count[a+b] = %d", counts[add])
	}
}

func TestBranching(t *testing.T) {
	src := `
func f(c) {
e:
  br c yes no
yes:
  ret 1
no:
  ret 0
}`
	out, _ := run(t, src, 7)
	if out.Value != 1 {
		t.Errorf("true branch: %s", out)
	}
	out, _ = run(t, src, 0)
	if out.Value != 0 {
		t.Errorf("false branch: %s", out)
	}
}

func TestLoopAndCounts(t *testing.T) {
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`
	out, counts := run(t, src, 2, 3, 10)
	if out.Value != 5 {
		t.Fatalf("value = %s", out)
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 10 {
		t.Errorf("a+b evaluated %d times, want 10", counts[add])
	}
}

func TestUndefinedReadsAreZero(t *testing.T) {
	out, _ := run(t, `
func f() {
e:
  x = u + 1
  ret x
}`)
	if out.Value != 1 {
		t.Errorf("undefined read: %s", out)
	}
}

func TestDivModByZeroTotal(t *testing.T) {
	out, _ := run(t, `
func f(a) {
e:
  x = a / 0
  y = a % 0
  z = x + y
  ret z
}`, 5)
	if !out.Returned || out.Value != 0 {
		t.Errorf("division by zero not total: %s", out)
	}
}

func TestStepBudget(t *testing.T) {
	f := parse(t, `
func f(x) {
e:
  c = 1
  jmp loop
loop:
  print c
  br c loop done
done:
  ret
}`)
	out, _, err := Run(f, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if out.Returned {
		t.Fatal("infinite loop returned")
	}
	if out.Steps != 100 {
		t.Errorf("steps = %d, want 100", out.Steps)
	}
	if len(out.Prints) == 0 {
		t.Error("no observable prints before timeout")
	}
}

func TestMissingArgsDefaultZero(t *testing.T) {
	out, _ := run(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`, 5)
	if out.Value != 5 {
		t.Errorf("missing arg: %s", out)
	}
}

func TestTooManyArgs(t *testing.T) {
	f := parse(t, "func f(a) {\ne:\n  ret a\n}")
	if _, _, err := Run(f, Options{Args: []int64{1, 2}}); err == nil {
		t.Error("extra args accepted")
	}
}

func TestNopAndBareRet(t *testing.T) {
	out, _ := run(t, `
func f() {
e:
  nop
  ret
}`)
	if !out.Returned || out.HasValue {
		t.Errorf("bare ret: %s", out)
	}
}

func TestObservablyEqual(t *testing.T) {
	a := Outcome{Returned: true, HasValue: true, Value: 3, Prints: []int64{1, 2}, Steps: 10}
	b := a
	b.Steps = 99
	if !a.ObservablyEqual(b) {
		t.Error("step count must not affect observability")
	}
	b.Value = 4
	if a.ObservablyEqual(b) {
		t.Error("different values equal")
	}
	b = a
	b.Prints = []int64{1, 3}
	if a.ObservablyEqual(b) {
		t.Error("different prints equal")
	}
	b = a
	b.Prints = []int64{1}
	if a.ObservablyEqual(b) {
		t.Error("different print lengths equal")
	}
	b = a
	b.Returned = false
	if a.ObservablyEqual(b) {
		t.Error("different termination equal")
	}
	b = a
	b.HasValue = false
	if a.ObservablyEqual(b) {
		t.Error("different HasValue equal")
	}
}

func TestOutcomeString(t *testing.T) {
	if (Outcome{}).String() == "" ||
		(Outcome{Returned: true}).String() == "" ||
		(Outcome{Returned: true, HasValue: true}).String() == "" {
		t.Error("empty outcome strings")
	}
}

func TestCountsRestrictedTo(t *testing.T) {
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	mul := ir.Expr{Op: ir.Mul, A: ir.Var("a"), B: ir.Var("b")}
	c := Counts{add: 3, mul: 5}
	r := CountsRestrictedTo(c, []ir.Expr{add})
	if r.Total() != 3 {
		t.Errorf("restricted = %v", r)
	}
}

func TestAllOperatorsExecute(t *testing.T) {
	out, _ := run(t, `
func f(a, b) {
e:
  t1 = a + b
  t2 = a - b
  t3 = a * b
  t4 = a / b
  t5 = a % b
  t6 = a == b
  t7 = a != b
  t8 = a < b
  t9 = a <= b
  t10 = a > b
  t11 = a >= b
  s1 = t1 + t2
  s2 = t3 + t4
  s3 = t5 + t6
  s4 = t7 + t8
  s5 = t9 + t10
  s6 = s1 + s2
  s7 = s3 + s4
  s8 = s5 + t11
  s9 = s6 + s7
  s10 = s9 + s8
  ret s10
}`, 7, 3)
	// 10+4+21+2+1+0+1+0+0+1+1 = a+b=10, a-b=4, a*b=21, a/b=2, a%b=1,
	// ==0, !=1, <0, <=0, >1, >=1. Sum = 41.
	if out.Value != 41 {
		t.Errorf("operator sum = %d, want 41", out.Value)
	}
}
