// Package interp executes IR functions. It is the oracle of the
// reproduction: a transformed program must produce the same observable
// behaviour (printed values and return value) as the original on every
// input, and the interpreter's per-expression evaluation counters provide
// the dynamic computation counts that the optimality experiments (T2)
// compare.
//
// Semantics are total: reading an undefined variable yields 0 (the IR
// validator accepts such programs and the random generator never relies on
// it, but totality keeps the equivalence oracle simple), and division or
// modulus by zero yields 0 (see ir.Op.Eval). Execution is bounded by a step
// budget so that looping programs always terminate in tests.
package interp

import (
	"fmt"

	"lazycm/internal/ir"
)

// Outcome is the observable result of a run.
type Outcome struct {
	// Returned reports whether execution reached a return before the step
	// budget expired.
	Returned bool
	// HasValue and Value describe the returned value.
	HasValue bool
	Value    int64
	// Prints is the sequence of printed values.
	Prints []int64
	// Steps is the number of statements and terminators executed.
	Steps int
}

// ObservablyEqual reports whether two outcomes are indistinguishable to an
// observer: same termination status, same prints, same returned value.
// Step counts are intentionally ignored — transformations change them.
func (o Outcome) ObservablyEqual(p Outcome) bool {
	if o.Returned != p.Returned || o.HasValue != p.HasValue {
		return false
	}
	if o.HasValue && o.Value != p.Value {
		return false
	}
	if len(o.Prints) != len(p.Prints) {
		return false
	}
	for i := range o.Prints {
		if o.Prints[i] != p.Prints[i] {
			return false
		}
	}
	return true
}

// String summarizes the outcome.
func (o Outcome) String() string {
	if !o.Returned {
		return fmt.Sprintf("<timeout after %d steps, prints=%v>", o.Steps, o.Prints)
	}
	if o.HasValue {
		return fmt.Sprintf("<ret %d, prints=%v, steps=%d>", o.Value, o.Prints, o.Steps)
	}
	return fmt.Sprintf("<ret, prints=%v, steps=%d>", o.Prints, o.Steps)
}

// Counts maps each candidate expression to the number of times a BinOp
// statement computing it was executed: the dynamic computation count of
// experiment T2.
type Counts map[ir.Expr]int

// Total sums all per-expression counts.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Options configures a run.
type Options struct {
	// Args are the values bound to the function's parameters, positionally.
	// Missing arguments default to 0; extra arguments are an error.
	Args []int64
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int
}

// DefaultMaxSteps is the step budget when Options.MaxSteps is zero.
const DefaultMaxSteps = 1 << 20

// Run executes f and returns its outcome and dynamic expression counts.
func Run(f *ir.Function, opts Options) (Outcome, Counts, error) {
	if len(opts.Args) > len(f.Params) {
		return Outcome{}, nil, fmt.Errorf("interp: %d args for %d params", len(opts.Args), len(f.Params))
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	env := make(map[string]int64, len(f.Params)+8)
	for i, p := range f.Params {
		if i < len(opts.Args) {
			env[p] = opts.Args[i]
		} else {
			env[p] = 0
		}
	}
	eval := func(o ir.Operand) int64 {
		if o.IsConst() {
			return o.Value
		}
		return env[o.Name]
	}

	var out Outcome
	counts := Counts{}
	b := f.Entry()
	for {
		for _, in := range b.Instrs {
			if out.Steps >= maxSteps {
				return out, counts, nil
			}
			out.Steps++
			switch in.Kind {
			case ir.BinOp:
				e, _ := in.Expr()
				counts[e]++
				env[in.Dst] = in.Op.Eval(eval(in.A), eval(in.B))
			case ir.Copy:
				env[in.Dst] = eval(in.A)
			case ir.Print:
				out.Prints = append(out.Prints, eval(in.A))
			case ir.Nop:
			default:
				return out, counts, fmt.Errorf("interp: invalid instruction kind %d", int(in.Kind))
			}
		}
		if out.Steps >= maxSteps {
			return out, counts, nil
		}
		out.Steps++
		switch b.Term.Kind {
		case ir.Jump:
			b = b.Term.Then
		case ir.Branch:
			if eval(b.Term.Cond) != 0 {
				b = b.Term.Then
			} else {
				b = b.Term.Else
			}
		case ir.Ret:
			out.Returned = true
			if b.Term.HasVal {
				out.HasValue = true
				out.Value = eval(b.Term.Val)
			}
			return out, counts, nil
		default:
			return out, counts, fmt.Errorf("interp: invalid terminator kind %d", int(b.Term.Kind))
		}
	}
}

// CountsRestrictedTo filters counts to the expressions of the given set,
// so that transformed programs (whose temporaries add no new candidate
// expressions, but whose inserted computations must be attributed to the
// original expressions) can be compared against originals.
func CountsRestrictedTo(c Counts, exprs []ir.Expr) Counts {
	out := Counts{}
	for _, e := range exprs {
		if v, ok := c[e]; ok {
			out[e] = v
		}
	}
	return out
}
