// Package triage turns the raw quarantine directory the optimization
// service accumulates into a curated crasher corpus. The service captures
// every input that faults, falls back or panics (cmd/lcmd's -quarantine
// flag); this package is the maintenance half of that loop:
//
//   - Replay runs a captured input through the hardened pipeline under
//     the capture's own "# replay:" directives and classifies the outcome
//     as a structured pipeline.Signature — stage, error class, panic
//     frame hash — the identity of the defect it witnesses;
//   - Reduce delta-debugs the input over the textual-IR grammar (drop
//     functions, drop blocks, drop instructions, simplify terminators and
//     operands) to the smallest program that still reproduces the same
//     signature;
//   - Promote dedupes crashers by signature and moves one minimized
//     representative per defect into the corpus as a signature-named,
//     sidecar-annotated regression file;
//   - Check audits a corpus in CI: every reproducing crasher must be
//     minimal, signatures must be unique, and recorded sidecars must
//     match what actually replays.
//
// The papers this reproduction leans on (lospre, certified GCSE/LICM)
// earn trust in redundancy elimination through reproducible failure
// evidence; a minimized, deduplicated crasher with a recorded signature
// is exactly that evidence.
package triage

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"lazycm/internal/lcm"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// StageParse marks failures of the textual parser (including builder and
// validation errors surfaced through it): the input never reached the
// pipeline.
const StageParse = pipeline.Stage("parse")

// DefaultTimeout bounds one replay of one crasher. A crasher whose
// defect needs longer than this to fire is reported as a deadline
// signature — still stable, still reducible.
const DefaultTimeout = 2 * time.Second

// Directives are the replay conditions captured alongside a quarantined
// input: the pipeline configuration under which the failure was
// observed. They round-trip through a "# replay:" comment line, so a
// crasher file is self-describing.
type Directives struct {
	// Mode is a pipeline mode name (lcm, alcm, bcm, mr, gcse, sr, opt) or
	// "battery", the full standard pass sequence used by TestCrasherReplay.
	Mode string
	// Fuel is the node-visit budget per fixpoint; 0 means unlimited.
	Fuel int
	// Verify enables behavioural re-verification of every pass output.
	Verify bool
	// Canonical enables commutative canonicalization.
	Canonical bool
	// Runs is the verification battery size (0 = pipeline default).
	Runs int
	// MaxRounds bounds the opt pass reapplication loop (0 = default).
	MaxRounds int
}

// DefaultDirectives is the replay configuration assumed when a file
// carries no "# replay:" line: the full battery with verification, the
// settings TestCrasherReplay has always used.
func DefaultDirectives() Directives {
	return Directives{Mode: "battery", Verify: true, Runs: 2, MaxRounds: 2}
}

// String renders the directives as the "# replay:" line payload.
func (d Directives) String() string {
	parts := []string{"mode=" + d.Mode}
	if d.Fuel > 0 {
		parts = append(parts, "fuel="+strconv.Itoa(d.Fuel))
	}
	parts = append(parts, "verify="+strconv.FormatBool(d.Verify))
	if d.Canonical {
		parts = append(parts, "canonical=true")
	}
	if d.Runs > 0 {
		parts = append(parts, "runs="+strconv.Itoa(d.Runs))
	}
	if d.MaxRounds > 0 {
		parts = append(parts, "rounds="+strconv.Itoa(d.MaxRounds))
	}
	return strings.Join(parts, " ")
}

// sidecar comment prefixes inside crasher files. '#' lines are
// transparent to the textual-IR parser, so annotated crashers remain
// directly replayable programs.
const (
	sigPrefix    = "# signature:"
	replayPrefix = "# replay:"
)

// ParseDirectives extracts the "# replay:" line from a crasher file, or
// the defaults when none is present.
func ParseDirectives(src string) Directives {
	d := DefaultDirectives()
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, replayPrefix)
		if !ok {
			continue
		}
		for _, tok := range strings.Fields(rest) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				continue
			}
			switch k {
			case "mode":
				d.Mode = v
			case "fuel":
				d.Fuel, _ = strconv.Atoi(v)
			case "verify":
				d.Verify = v == "true"
			case "canonical":
				d.Canonical = v == "true"
			case "runs":
				d.Runs, _ = strconv.Atoi(v)
			case "rounds":
				d.MaxRounds, _ = strconv.Atoi(v)
			}
		}
		break
	}
	return d
}

// RecordedSignature returns the "# signature:" sidecar of a crasher
// file; ok is false when the file has none (a raw, unpromoted capture).
func RecordedSignature(src string) (sig string, ok bool) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if rest, found := strings.CutPrefix(line, sigPrefix); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// ComposeCrasher assembles a promoted crasher file: signature sidecar,
// replay directives, then the minimized program.
func ComposeCrasher(sig string, d Directives, program string) string {
	var b strings.Builder
	b.WriteString(sigPrefix + " " + sig + "\n")
	b.WriteString(replayPrefix + " " + d.String() + "\n")
	if !strings.HasPrefix(program, "\n") {
		b.WriteByte('\n')
	}
	b.WriteString(program)
	if !strings.HasSuffix(program, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}

// batteryPasses is the standard replay sequence: the same passes
// TestCrasherReplay has always run over the corpus.
func batteryPasses() []pipeline.Pass {
	return []pipeline.Pass{
		pipeline.LCMPass(lcm.LCM), pipeline.MRPass(), pipeline.GCSEPass(),
		pipeline.OptPass(), pipeline.CleanupPass(),
	}
}

// passesFor resolves directives to a pass sequence.
func passesFor(d Directives) ([]pipeline.Pass, error) {
	if d.Mode == "" || d.Mode == "battery" {
		return batteryPasses(), nil
	}
	p, ok := pipeline.ForMode(d.Mode)
	if !ok {
		return nil, fmt.Errorf("triage: unknown replay mode %q", d.Mode)
	}
	return []pipeline.Pass{p}, nil
}

// Replay runs src through the pipeline under the given directives and
// classifies the outcome. The boolean reports whether the input
// reproduces any failure at all: false means the program parses,
// optimizes and verifies cleanly (nothing to triage). Replay never
// panics; even a parser panic is contained and classified.
func Replay(src string, d Directives, timeout time.Duration) (sig pipeline.Signature, reproduces bool) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	perr := pipeline.Guard("replay", func() error {
		sig, reproduces = replay(src, d, timeout)
		return nil
	})
	if perr != nil {
		return perr.Signature(), true
	}
	return sig, reproduces
}

func replay(src string, d Directives, timeout time.Duration) (pipeline.Signature, bool) {
	fns, err := textir.Parse(src)
	if err != nil {
		return ParseSignature(err), true
	}
	passes, err := passesFor(d)
	if err != nil {
		return pipeline.Signature{Stage: StageParse, Class: "mode"}, true
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	opts := pipeline.Options{
		Fuel: d.Fuel, Canonical: d.Canonical, Verify: d.Verify,
		Runs: d.Runs, MaxRounds: d.MaxRounds, Ctx: ctx,
	}
	for _, fn := range fns {
		res, err := pipeline.Run(fn, passes, opts)
		if sig, ok := pipeline.RunSignature(res, err); ok {
			return sig, true
		}
	}
	return pipeline.Signature{}, false
}

// ParseSignature classifies a textual-IR parse failure: pure syntax
// errors (reported with a line number by the parser) versus
// builder/validation rejections of a syntactically well-formed program.
// The frame fingerprint hashes the normalized message, so two witnesses
// of the same parse defect — different names, different line numbers —
// collapse to one signature.
func ParseSignature(err error) pipeline.Signature {
	class := "invalid"
	if _, ok := err.(*textir.ParseError); ok {
		class = "syntax"
	}
	return pipeline.Signature{
		Stage: StageParse, Class: class,
		Frame: pipeline.HashText(pipeline.Normalize(err.Error())),
	}
}

// Oracle is the reproduction predicate the reducer drives: it replays a
// candidate program and reports its failure signature, if any.
type Oracle func(src string) (pipeline.Signature, bool)

// ReplayOracle returns the standard oracle: replay under fixed
// directives with a per-call timeout.
func ReplayOracle(d Directives, timeout time.Duration) Oracle {
	return func(src string) (pipeline.Signature, bool) {
		return Replay(src, d, timeout)
	}
}
