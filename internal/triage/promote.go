package triage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lazycm/internal/atomicio"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// Entry is one crasher file as the triage scanner sees it.
type Entry struct {
	// Path is the file's location.
	Path string
	// Src is the raw file content, sidecar lines included.
	Src string
	// D are the replay directives (from the file, or defaults).
	D Directives
	// Recorded is the sidecar signature, "" when the file has none.
	Recorded string
	// Sig is the signature the file actually replays to now.
	Sig pipeline.Signature
	// Reproduces reports whether the file still fails at all.
	Reproduces bool
}

// Scan loads every .ir file under dir and replays each one to classify
// it. Files are returned in name order, so every downstream decision
// (dedupe winners, report order) is deterministic. Leftover *.tmp
// partials — a quarantine capture or promotion the process died inside —
// are swept first: the atomic-write protocol guarantees they were never
// part of the corpus, so removing them is the crash recovery.
func Scan(dir string, timeout time.Duration) ([]*Entry, error) {
	atomicio.SweepTmp(dir)
	paths, err := filepath.Glob(filepath.Join(dir, "*.ir"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	entries := make([]*Entry, 0, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		e := &Entry{Path: p, Src: string(src), D: ParseDirectives(string(src))}
		e.Recorded, _ = RecordedSignature(e.Src)
		e.Sig, e.Reproduces = Replay(e.Src, e.D, timeout)
		entries = append(entries, e)
	}
	return entries, nil
}

// PromoteOptions tunes Promote.
type PromoteOptions struct {
	// OutDir receives promoted crashers; "" means promote in place (the
	// scanned directory itself).
	OutDir string
	// Budget is the reducer's oracle budget per crasher (0 = default).
	Budget int
	// Timeout bounds each replay (0 = DefaultTimeout).
	Timeout time.Duration
	// Keep prevents deletion of raw captures after promotion; by default
	// a promoted or deduplicated raw file is removed ("moved" into the
	// corpus).
	Keep bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Promotion describes what happened to one raw crasher.
type Promotion struct {
	// Source is the raw capture; Dest the promoted corpus file.
	Source, Dest string
	// Sig is the failure signature (also Dest's basename stem).
	Sig string
	// FromBytes/ToBytes measure the reduction.
	FromBytes, ToBytes int
	// DupOf names the already-promoted file this capture duplicated,
	// "" when this capture became the promoted representative.
	DupOf string
}

// Promote curates dir: every raw crasher that still reproduces is
// minimized by Reduce, deduplicated by signature, and written to OutDir
// as crash-<signature>.ir with "# signature:" and "# replay:" sidecar
// lines; OutDir/README.md gains one entry per new promotion. Files that
// replay clean (fixed defects kept as regression seeds) and files
// already promoted (sidecar matches, name matches) are left untouched.
func Promote(dir string, opt PromoteOptions) ([]Promotion, error) {
	outDir := opt.OutDir
	if outDir == "" {
		outDir = dir
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := Scan(dir, opt.Timeout)
	if err != nil {
		return nil, err
	}

	// Existing promoted representatives claim their signatures first, so
	// re-running Promote is idempotent and dedupe prefers the corpus copy.
	seen := map[string]string{} // signature → promoted path
	for _, e := range entries {
		if e.Reproduces && e.Recorded == e.Sig.String() && e.Path == promotedPath(dir, e.Sig) {
			seen[e.Sig.String()] = e.Path
		}
	}
	if outDir != dir {
		outEntries, err := Scan(outDir, opt.Timeout)
		if err != nil {
			return nil, err
		}
		for _, e := range outEntries {
			if e.Reproduces && e.Recorded == e.Sig.String() && e.Path == promotedPath(outDir, e.Sig) {
				seen[e.Sig.String()] = e.Path
			}
		}
	}

	var promotions []Promotion
	for _, e := range entries {
		if !e.Reproduces {
			logf("%s: replays clean, leaving as regression seed", filepath.Base(e.Path))
			continue
		}
		sig := e.Sig.String()
		if seen[sig] == e.Path {
			continue // already the promoted representative
		}
		if rep, ok := seen[sig]; ok {
			// Duplicate of an already-promoted defect.
			promotions = append(promotions, Promotion{
				Source: e.Path, Dest: rep, Sig: sig,
				FromBytes: len(e.Src), ToBytes: len(e.Src), DupOf: rep,
			})
			if !opt.Keep {
				if err := os.Remove(e.Path); err != nil {
					return promotions, err
				}
			}
			logf("%s: duplicate of %s (%s), dropped", filepath.Base(e.Path), filepath.Base(rep), sig)
			continue
		}

		reduced, stats := Reduce(e.Src, e.Sig, ReplayOracle(e.D, opt.Timeout), ReduceOptions{MaxOracleCalls: opt.Budget})
		dest := promotedPath(outDir, e.Sig)
		content := ComposeCrasher(sig, e.D, reduced)
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return promotions, err
		}
		// Atomic publish: a crash mid-promotion leaves a swept *.tmp, never
		// a truncated corpus file that would replay to a different defect.
		if err := atomicio.WriteFile(dest, []byte(content), 0o644); err != nil {
			return promotions, err
		}
		if err := appendReadmeEntry(outDir, e.Sig, filepath.Base(e.Path), stats); err != nil {
			return promotions, err
		}
		seen[sig] = dest
		promotions = append(promotions, Promotion{
			Source: e.Path, Dest: dest, Sig: sig,
			FromBytes: stats.FromBytes, ToBytes: stats.ToBytes,
		})
		if !opt.Keep && e.Path != dest {
			if err := os.Remove(e.Path); err != nil {
				return promotions, err
			}
		}
		logf("%s: promoted to %s (%d→%d bytes, %d replays)",
			filepath.Base(e.Path), filepath.Base(dest), stats.FromBytes, stats.ToBytes, stats.OracleCalls)
	}
	return promotions, nil
}

// promotedPath names the corpus file for a signature.
func promotedPath(dir string, sig pipeline.Signature) string {
	return filepath.Join(dir, "crash-"+sig.String()+".ir")
}

// readmeMarker is the heading Promote appends entries under in the
// corpus README; it is created on first promotion if absent.
const readmeMarker = "## Promoted crashers"

// appendReadmeEntry records a promotion in dir/README.md, once per
// promoted file.
func appendReadmeEntry(dir string, sig pipeline.Signature, source string, stats ReduceStats) error {
	path := filepath.Join(dir, "README.md")
	name := "crash-" + sig.String() + ".ir"
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if strings.Contains(string(existing), "`"+name+"`") {
		return nil
	}
	var b strings.Builder
	b.Write(existing)
	if !strings.Contains(string(existing), readmeMarker) {
		if len(existing) > 0 && !strings.HasSuffix(string(existing), "\n") {
			b.WriteByte('\n')
		}
		b.WriteString("\n" + readmeMarker + "\n\n")
	}
	fmt.Fprintf(&b, "- `%s` — signature `%s`; minimized from `%s` (%d→%d bytes)\n",
		name, sig.String(), source, stats.FromBytes, stats.ToBytes)
	return atomicio.WriteFile(path, []byte(b.String()), 0o644)
}

// CheckOptions tunes Check.
type CheckOptions struct {
	// Budget is the reducer's oracle budget per crasher (0 = default).
	Budget int
	// Timeout bounds each replay (0 = DefaultTimeout).
	Timeout time.Duration
}

// Issue is one corpus-hygiene violation found by Check.
type Issue struct {
	Path    string
	Problem string
}

func (i Issue) String() string { return fmt.Sprintf("%s: %s", i.Path, i.Problem) }

// Check audits a crasher corpus without modifying it, the CI gate behind
// `make triage`:
//
//   - two crashers witnessing the same failure signature is a duplicate
//     (one of them should have been deduped away);
//   - a reproducing crasher the reducer can still shrink is not minimal;
//   - a recorded "# signature:" sidecar that disagrees with what the
//     file actually replays to is signature drift (the defect morphed —
//     re-promote to refresh the evidence).
//
// Files that replay clean are fixed defects kept as regression seeds;
// they are reported in notes, never as issues.
func Check(dir string, opt CheckOptions) (issues []Issue, notes []string, err error) {
	entries, err := Scan(dir, opt.Timeout)
	if err != nil {
		return nil, nil, err
	}
	bySig := map[string][]*Entry{}
	for _, e := range entries {
		if !e.Reproduces {
			if e.Recorded != "" {
				notes = append(notes, fmt.Sprintf("%s: recorded %s now replays clean (fixed; keep as regression seed)", e.Path, e.Recorded))
			}
			continue
		}
		sig := e.Sig.String()
		bySig[sig] = append(bySig[sig], e)
		if e.Recorded != "" && e.Recorded != sig {
			issues = append(issues, Issue{e.Path, fmt.Sprintf("signature drift: recorded %s, replays as %s", e.Recorded, sig)})
		}
		reduced, stats := Reduce(e.Src, e.Sig, ReplayOracle(e.D, opt.Timeout), ReduceOptions{MaxOracleCalls: opt.Budget})
		if canon := canonicalBody(e.Src); len(reduced) < len(canon) {
			issues = append(issues, Issue{e.Path, fmt.Sprintf("not minimal: reducible %d→%d bytes (run the triage promoter)", len(canon), stats.ToBytes)})
		}
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		es := bySig[sig]
		if len(es) > 1 {
			names := make([]string, len(es))
			for i, e := range es {
				names[i] = filepath.Base(e.Path)
			}
			issues = append(issues, Issue{es[0].Path, fmt.Sprintf("duplicate signature %s shared by %s", sig, strings.Join(names, ", "))})
		}
	}
	return issues, notes, nil
}

// canonicalBody is the size baseline for minimality: the program as the
// loose module model prints it, comments and sidecars stripped. Raw
// bytes are the baseline for inputs with no module structure.
func canonicalBody(src string) string {
	m, err := textir.ParseModule(src)
	if err != nil {
		return src
	}
	return m.String()
}
