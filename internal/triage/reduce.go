package triage

import (
	"strings"

	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// ReduceOptions tunes the delta-debugging reducer.
type ReduceOptions struct {
	// MaxOracleCalls bounds the total number of candidate replays; 0
	// means DefaultOracleBudget. The reducer is greedy, so exhausting the
	// budget still returns the best (smallest reproducing) program found.
	MaxOracleCalls int
}

// DefaultOracleBudget is the reducer's replay budget when unset.
const DefaultOracleBudget = 400

// ReduceStats reports what a reduction did.
type ReduceStats struct {
	// OracleCalls is the number of candidate replays performed.
	OracleCalls int
	// Accepted is the number of reduction steps that preserved the
	// signature and were kept.
	Accepted int
	// FromBytes and ToBytes are the program sizes before and after.
	FromBytes, ToBytes int
}

// Reduce shrinks src to a smaller program that still reproduces the
// target failure signature under the oracle. It delta-debugs over the
// textual-IR grammar, coarse to fine: drop whole functions, drop blocks
// (re-pointing terminators through the dropped node), drop instruction
// lines, simplify terminators (br→jmp→ret), simplify operands
// (variables→0). Every accepted step is re-validated by the oracle, so
// the result — whatever the budget — reproduces exactly the target
// signature. Inputs the loose module parser cannot structure (raw junk
// that still crashes the strict parser) fall back to plain line-level
// reduction.
//
// The returned program is at most as large as the canonicalized input;
// when no reduction preserves the signature, it is the canonicalized
// input itself.
func Reduce(src string, target pipeline.Signature, oracle Oracle, opt ReduceOptions) (string, ReduceStats) {
	budget := opt.MaxOracleCalls
	if budget <= 0 {
		budget = DefaultOracleBudget
	}
	stats := ReduceStats{FromBytes: len(src)}

	m, err := textir.ParseModule(src)
	if err != nil {
		out := reduceLines(src, target, oracle, budget, &stats)
		stats.ToBytes = len(out)
		return out, stats
	}

	// Canonicalize (strip comments, normalize whitespace) and make sure
	// the canonical form still reproduces; if not, the failure lives in
	// the raw bytes and reduction must not touch them.
	cur := m.String()
	if cur != src {
		stats.OracleCalls++
		if sig, ok := oracle(cur); !ok || sig != target {
			stats.ToBytes = len(src)
			return src, stats
		}
	}

	try := func(cand *textir.Module) bool {
		if stats.OracleCalls >= budget {
			return false
		}
		txt := cand.String()
		if len(txt) > len(cur) || txt == cur {
			return false
		}
		stats.OracleCalls++
		if sig, ok := oracle(txt); ok && sig == target {
			cur = txt
			stats.Accepted++
			return true
		}
		return false
	}

	for changed := true; changed && stats.OracleCalls < budget; {
		changed = false

		// 1. Drop whole functions (multi-function modules).
		for i := 0; len(m.Funcs) > 1 && i < len(m.Funcs); {
			cand := m.Clone()
			cand.DropFunc(i)
			if try(cand) {
				m = cand
				changed = true
				continue // the next function shifted into slot i
			}
			i++
		}

		// 2. Drop blocks, re-pointing terminators through the hole.
		for fi := 0; fi < len(m.Funcs); fi++ {
			for bi := 0; bi < len(m.Funcs[fi].Blocks); {
				cand := m.Clone()
				cand.Funcs[fi].DropBlock(bi)
				if try(cand) {
					m = cand
					changed = true
					continue
				}
				bi++
			}
		}

		// 3. Drop individual lines (loose lines first, then block lines).
		for fi := 0; fi < len(m.Funcs); fi++ {
			for li := 0; li < len(m.Funcs[fi].Loose); {
				cand := m.Clone()
				f := cand.Funcs[fi]
				f.Loose = append(f.Loose[:li:li], f.Loose[li+1:]...)
				if try(cand) {
					m = cand
					changed = true
					continue
				}
				li++
			}
			for bi := 0; bi < len(m.Funcs[fi].Blocks); bi++ {
				for li := 0; li < len(m.Funcs[fi].Blocks[bi].Lines); {
					cand := m.Clone()
					b := cand.Funcs[fi].Blocks[bi]
					b.Lines = append(b.Lines[:li:li], b.Lines[li+1:]...)
					if try(cand) {
						m = cand
						changed = true
						continue
					}
					li++
				}
			}
		}

		// 4. Simplify terminators, 5. simplify operands — line rewrites.
		for fi := 0; fi < len(m.Funcs); fi++ {
			for bi := 0; bi < len(m.Funcs[fi].Blocks); bi++ {
				for li := 0; li < len(m.Funcs[fi].Blocks[bi].Lines); li++ {
					line := m.Funcs[fi].Blocks[bi].Lines[li]
					cands := append(textir.SimplifyTermCandidates(line), textir.SimplifyOperandCandidates(line)...)
					for _, repl := range cands {
						cand := m.Clone()
						cand.Funcs[fi].Blocks[bi].Lines[li] = repl
						if try(cand) {
							m = cand
							changed = true
							break // the line changed; recompute its candidates
						}
					}
				}
			}
		}
	}

	stats.ToBytes = len(cur)
	return cur, stats
}

// reduceLines is the fallback for inputs with no parseable module
// structure: greedily drop one raw line at a time while the signature
// survives.
func reduceLines(src string, target pipeline.Signature, oracle Oracle, budget int, stats *ReduceStats) string {
	lines := strings.Split(src, "\n")
	for changed := true; changed && stats.OracleCalls < budget; {
		changed = false
		for i := 0; i < len(lines) && len(lines) > 1; {
			cand := append(append([]string(nil), lines[:i]...), lines[i+1:]...)
			txt := strings.Join(cand, "\n")
			stats.OracleCalls++
			if sig, ok := oracle(txt); ok && sig == target {
				lines = cand
				stats.Accepted++
				changed = true
				continue
			}
			i++
			if stats.OracleCalls >= budget {
				break
			}
		}
	}
	return strings.Join(lines, "\n")
}
