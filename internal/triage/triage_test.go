package triage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lazycm/internal/faultify"
	"lazycm/internal/ir"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
)

// cleanSrc optimizes and verifies without incident under every replay
// configuration used here.
const cleanSrc = `
func diamond(a, b, p) {
entry:
  br p then else
then:
  x = a + b
  print x
  jmp join
else:
  nop
  jmp join
join:
  y = a + b
  ret y
}
`

// fuelDirectives reproduce the fuel-exhaustion defect: the LCM fixpoints
// cannot finish a single node visit.
func fuelDirectives() Directives {
	return Directives{Mode: "lcm", Fuel: 1}
}

const fuelSig = "lcm-run-fuel"

func TestReplayClean(t *testing.T) {
	if sig, reproduces := Replay(cleanSrc, DefaultDirectives(), 0); reproduces {
		t.Fatalf("clean program reproduced %s", sig)
	}
}

func TestReplaySyntax(t *testing.T) {
	sig, reproduces := Replay("func f( {\n", DefaultDirectives(), 0)
	if !reproduces {
		t.Fatal("junk did not reproduce")
	}
	if sig.Stage != StageParse || sig.Class != "syntax" {
		t.Fatalf("sig = %s, want parse-syntax-*", sig)
	}
}

func TestReplayInvalid(t *testing.T) {
	// Syntactically fine, semantically rejected: jump to a missing label.
	sig, reproduces := Replay("func f() {\ne:\n  jmp nowhere\n}\n", DefaultDirectives(), 0)
	if !reproduces {
		t.Fatal("invalid program did not reproduce")
	}
	if sig.Stage != StageParse || sig.Class != "invalid" {
		t.Fatalf("sig = %s, want parse-invalid-*", sig)
	}
}

func TestReplayFuel(t *testing.T) {
	sig, reproduces := Replay(cleanSrc, fuelDirectives(), 0)
	if !reproduces {
		t.Fatal("fuel starvation did not reproduce")
	}
	if sig.String() != fuelSig {
		t.Fatalf("sig = %s, want %s", sig, fuelSig)
	}
}

func TestReplayUnknownMode(t *testing.T) {
	sig, reproduces := Replay(cleanSrc, Directives{Mode: "no-such-mode"}, 0)
	if !reproduces || sig.Class != "mode" {
		t.Fatalf("sig = %s reproduces=%v, want a mode failure", sig, reproduces)
	}
}

func TestDirectivesRoundTrip(t *testing.T) {
	d := Directives{Mode: "lcm", Fuel: 7, Verify: true, Canonical: true, Runs: 3, MaxRounds: 2}
	file := ComposeCrasher("lcm-run-fuel", d, cleanSrc)
	if got := ParseDirectives(file); got != d {
		t.Errorf("directives round trip: got %+v, want %+v", got, d)
	}
	sig, ok := RecordedSignature(file)
	if !ok || sig != "lcm-run-fuel" {
		t.Errorf("recorded signature = %q ok=%v", sig, ok)
	}
	if _, ok := RecordedSignature(cleanSrc); ok {
		t.Error("unannotated source claims a recorded signature")
	}
	// Sidecar lines are comments: the annotated file is still a program.
	if _, err := textir.Parse(file); err != nil {
		t.Errorf("annotated crasher does not parse: %v", err)
	}
}

// TestReduceFuelCrasher: the reducer must strip the bystander function
// and dead weight from a fuel crasher while the signature survives, and
// the ISSUE-level contract — result smaller or equal, same signature —
// must hold.
func TestReduceFuelCrasher(t *testing.T) {
	src := cleanSrc + `
func bystander(q) {
e:
  print q
  ret
}
`
	d := fuelDirectives()
	oracle := ReplayOracle(d, time.Second)
	target, ok := oracle(src)
	if !ok || target.String() != fuelSig {
		t.Fatalf("seed does not reproduce %s: %s ok=%v", fuelSig, target, ok)
	}
	reduced, stats := Reduce(src, target, oracle, ReduceOptions{})
	if got, ok := oracle(reduced); !ok || got != target {
		t.Fatalf("reduced program lost the signature: %s ok=%v\n%s", got, ok, reduced)
	}
	if len(reduced) > len(src) {
		t.Fatalf("reduction grew the program: %d > %d", len(reduced), len(src))
	}
	// Fuel exhaustion fires on any function, so the minimal witness is a
	// single trivial function — the reducer must get down to one.
	if got := strings.Count(reduced, "func "); got != 1 {
		t.Errorf("reduced program has %d functions, want 1:\n%s", got, reduced)
	}
	if len(reduced) > len(src)/2 {
		t.Errorf("reduction too weak: %d of %d bytes survive:\n%s", len(reduced), len(src), reduced)
	}
	if stats.Accepted == 0 || stats.OracleCalls == 0 {
		t.Errorf("stats look dead: %+v", stats)
	}
	t.Logf("reduced %d → %d bytes in %d replays:\n%s", stats.FromBytes, stats.ToBytes, stats.OracleCalls, reduced)
}

// TestReduceUnparseable: inputs the loose model rejects still shrink via
// the raw line fallback.
func TestReduceUnparseable(t *testing.T) {
	src := "garbage line one\ngarbage line two\nfunc f( {\nmore garbage\n"
	oracle := ReplayOracle(DefaultDirectives(), time.Second)
	target, ok := oracle(src)
	if !ok {
		t.Fatal("garbage does not reproduce")
	}
	reduced, _ := Reduce(src, target, oracle, ReduceOptions{})
	if got, ok := oracle(reduced); !ok || got != target {
		t.Fatalf("line-level reduction lost the signature: %s ok=%v", got, ok)
	}
	if len(reduced) > len(src) {
		t.Fatalf("line-level reduction grew the input")
	}
}

// TestReduceBudget: the oracle budget is a hard bound.
func TestReduceBudget(t *testing.T) {
	calls := 0
	oracle := func(string) (pipeline.Signature, bool) {
		calls++
		return pipeline.Signature{Class: "x"}, true
	}
	Reduce(cleanSrc, pipeline.Signature{Class: "x"}, oracle, ReduceOptions{MaxOracleCalls: 5})
	if calls > 5 {
		t.Fatalf("oracle called %d times, budget 5", calls)
	}
}

// buggyPass wraps a faultify fault as the buggy transformation it
// impersonates, so the pipeline's containment (and therefore Replay's
// classification) sees it exactly as it would a real compiler bug.
func buggyPass(ft faultify.Fault) pipeline.Pass {
	return pipeline.Pass{
		Name: "buggy-" + ft.Name,
		Run: func(f *ir.Function, _ pipeline.Options) (*ir.Function, map[ir.Expr]string, error) {
			return ft.RunFunc(f)
		},
	}
}

// faultOracle replays candidates through a pipeline whose only pass is
// the injected fault.
func faultOracle(ft faultify.Fault) Oracle {
	return func(src string) (pipeline.Signature, bool) {
		var sig pipeline.Signature
		var reproduces bool
		perr := pipeline.Guard("fault-replay", func() error {
			fns, err := textir.Parse(src)
			if err != nil {
				sig, reproduces = ParseSignature(err), true
				return nil
			}
			for _, fn := range fns {
				res, err := pipeline.Run(fn, []pipeline.Pass{buggyPass(ft)}, pipeline.Options{Verify: true, Runs: 2})
				if s, ok := pipeline.RunSignature(res, err); ok {
					sig, reproduces = s, true
					return nil
				}
			}
			return nil
		})
		if perr != nil {
			return perr.Signature(), true
		}
		return sig, reproduces
	}
}

// TestReducePreservesEveryFaultClass is the acceptance criterion from the
// issue: for every injected fault class, minimizing a crasher that
// witnesses it must keep the fault reproducible — same signature, program
// no larger.
func TestReducePreservesEveryFaultClass(t *testing.T) {
	for _, ft := range faultify.All() {
		ft := ft
		t.Run(ft.Name, func(t *testing.T) {
			oracle := faultOracle(ft)
			target, ok := oracle(cleanSrc)
			if !ok {
				t.Fatalf("fault %s does not reproduce on the victim", ft.Name)
			}
			reduced, stats := Reduce(cleanSrc, target, oracle, ReduceOptions{MaxOracleCalls: 200})
			got, ok := oracle(reduced)
			if !ok {
				t.Fatalf("fault no longer reproduces after reduction:\n%s", reduced)
			}
			if got != target {
				t.Fatalf("signature drifted: %s → %s\n%s", target, got, reduced)
			}
			if len(reduced) > len(cleanSrc) {
				t.Fatalf("reduction grew the program")
			}
			t.Logf("%s: %s, %d → %d bytes", ft.Name, target, stats.FromBytes, stats.ToBytes)
		})
	}
}

// variantA and variantB are hand-made witnesses of the same defect (fuel
// exhaustion under lcm): different names, different shapes, one signature.
const variantA = `# captured by lcmd
func first(a, b, p) {
entry:
  br p left right
left:
  u = a + b
  jmp out
right:
  v = a * b
  jmp out
out:
  w = a + b
  ret w
}
`

const variantB = `func second(m, n) {
top:
  t1 = m - n
  t2 = m - n
  print t1
  print t2
  ret t2
}
`

func writeCrasher(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPromoteDedupe is the other acceptance criterion: two variants of
// one defect collapse into a single promoted, minimized, signature-named
// crasher, and re-promoting is a no-op.
func TestPromoteDedupe(t *testing.T) {
	dir := t.TempDir()
	d := fuelDirectives()
	writeCrasher(t, dir, "a.ir", ComposeCrasher("", d, variantA))
	writeCrasher(t, dir, "b.ir", ComposeCrasher("", d, variantB))
	writeCrasher(t, dir, "clean.ir", cleanSrc) // fixed defect: untouched

	proms, err := Promote(dir, PromoteOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(proms) != 2 {
		t.Fatalf("got %d promotions, want 2: %+v", len(proms), proms)
	}
	var dups int
	for _, p := range proms {
		if p.Sig != fuelSig {
			t.Errorf("promotion signature = %s, want %s", p.Sig, fuelSig)
		}
		if p.DupOf != "" {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("want exactly 1 duplicate, got %d", dups)
	}

	names, _ := filepath.Glob(filepath.Join(dir, "*.ir"))
	for i := range names {
		names[i] = filepath.Base(names[i])
	}
	want := "crash-" + fuelSig + ".ir"
	if len(names) != 2 || names[0] != "clean.ir" || names[1] != want {
		t.Fatalf("corpus after promotion = %v, want [clean.ir %s]", names, want)
	}

	// The promoted file is self-describing and still reproduces.
	src, err := os.ReadFile(filepath.Join(dir, want))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := RecordedSignature(string(src))
	if !ok || rec != fuelSig {
		t.Fatalf("promoted sidecar = %q ok=%v", rec, ok)
	}
	if sig, reproduces := Replay(string(src), ParseDirectives(string(src)), time.Second); !reproduces || sig.String() != fuelSig {
		t.Fatalf("promoted crasher replays as %s reproduces=%v", sig, reproduces)
	}

	// README gained exactly one entry for the promoted defect.
	readme, err := os.ReadFile(filepath.Join(dir, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(readme), "`"+want+"`"); got != 1 {
		t.Fatalf("README mentions %s %d times, want 1:\n%s", want, got, readme)
	}

	// Idempotence: a second run finds nothing to do.
	proms, err = Promote(dir, PromoteOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(proms) != 0 {
		t.Fatalf("second promotion not a no-op: %+v", proms)
	}
}

func TestPromoteKeep(t *testing.T) {
	dir := t.TempDir()
	raw := writeCrasher(t, dir, "raw.ir", ComposeCrasher("", fuelDirectives(), variantB))
	if _, err := Promote(dir, PromoteOptions{Timeout: time.Second, Keep: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(raw); err != nil {
		t.Fatalf("Keep did not preserve the raw capture: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "crash-"+fuelSig+".ir")); err != nil {
		t.Fatalf("promotion missing: %v", err)
	}
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	d := fuelDirectives()

	// Start from a healthy corpus: promote one variant.
	writeCrasher(t, dir, "a.ir", ComposeCrasher("", d, variantB))
	if _, err := Promote(dir, PromoteOptions{Timeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	issues, notes, err := Check(dir, CheckOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("healthy corpus has issues: %v", issues)
	}
	if len(notes) != 0 {
		t.Fatalf("healthy corpus has notes: %v", notes)
	}

	// A second witness of the same signature: duplicate.
	writeCrasher(t, dir, "dup.ir", ComposeCrasher(fuelSig, d, variantA))
	// A sidecar that does not match what replays: drift.
	writeCrasher(t, dir, "drift.ir", ComposeCrasher("lcm-run-panic-deadbeef", Directives{Mode: "lcm", Fuel: 2}, variantB))
	// A fixed defect: clean replay with a sidecar → note, not issue.
	writeCrasher(t, dir, "fixed.ir", ComposeCrasher(fuelSig, DefaultDirectives(), cleanSrc))

	issues, notes, err = Check(dir, CheckOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var problems []string
	for _, is := range issues {
		problems = append(problems, is.String())
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "duplicate signature "+fuelSig) {
		t.Errorf("duplicate not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "signature drift") {
		t.Errorf("drift not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "not minimal") {
		t.Errorf("non-minimal dup not reported:\n%s", joined)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "replays clean") {
		t.Errorf("fixed crasher note missing: %v", notes)
	}
}

// TestScanSweepsCrashedWrites: a *.tmp partial left by a process that
// died mid-capture (or mid-promotion) is invisible to Scan — never
// parsed, never replayed, never promoted — and is cleaned off disk, so
// one crash cannot poison every later triage run.
func TestScanSweepsCrashedWrites(t *testing.T) {
	dir := t.TempDir()
	d := fuelDirectives()
	writeCrasher(t, dir, "a.ir", ComposeCrasher("", d, variantA))
	// A truncated capture: the atomic-write temp of a crasher whose
	// writer died. Content is garbage on purpose — reading it as a
	// crasher would corrupt the scan.
	full := ComposeCrasher("", d, variantB)
	tmp := writeCrasher(t, dir, "crash-x.ir.tmp", full[:len(full)/3])

	entries, err := Scan(dir, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Base(entries[0].Path) != "a.ir" {
		t.Fatalf("scan saw %d entries, want only a.ir: %+v", len(entries), entries)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("crashed write's temp file survived the scan")
	}

	// Promote over the swept directory stays healthy and never resurrects
	// the partial.
	proms, err := Promote(dir, PromoteOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(proms) != 1 {
		t.Fatalf("got %d promotions, want 1", len(proms))
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(left) != 0 {
		t.Errorf("tmp files after promote: %v", left)
	}
}
