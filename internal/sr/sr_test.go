package sr

import (
	"strings"
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Transform(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mulCount runs f and counts dynamic multiplication evaluations.
func mulCount(t *testing.T, f *ir.Function, args ...int64) int {
	t.Helper()
	_, counts, err := interp.Run(f, interp.Options{Args: args})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for e, c := range counts {
		if e.Op == ir.Mul {
			n += c
		}
	}
	return n
}

const basicLoop = `
func f(n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = i * 8
  print x
  i = i + 1
  jmp head
exit:
  ret i
}
`

func TestBasicReduction(t *testing.T) {
	res := transform(t, basicLoop)
	if res.Reduced != 1 || res.Updates != 1 {
		t.Fatalf("reduced=%d updates=%d\n%s", res.Reduced, res.Updates, res.F)
	}
	f := parse(t, basicLoop)
	// Behaviour identical on a range of trip counts.
	for _, n := range []int64{0, 1, 7} {
		a, _, _ := interp.Run(f, interp.Options{Args: []int64{n}})
		b, _, _ := interp.Run(res.F, interp.Options{Args: []int64{n}})
		if !a.ObservablyEqual(b) {
			t.Fatalf("n=%d: %s vs %s\n%s", n, a, b, res.F)
		}
	}
	// Multiplications drop from n to ≤ 1 (the preheader init).
	if got := mulCount(t, res.F, 10); got > 1 {
		t.Errorf("dynamic muls after SR = %d, want ≤ 1\n%s", got, res.F)
	}
	if got := mulCount(t, f, 10); got != 10 {
		t.Fatalf("original muls = %d", got)
	}
}

func TestReductionWithDecrement(t *testing.T) {
	src := `
func f(n) {
entry:
  i = n
  jmp head
head:
  c = 0 < i
  br c body exit
body:
  x = 4 * i
  print x
  i = i - 1
  jmp head
exit:
  ret
}
`
	res := transform(t, src)
	if res.Reduced != 1 {
		t.Fatalf("reduced=%d\n%s", res.Reduced, res.F)
	}
	f := parse(t, src)
	for _, n := range []int64{0, 3, 9} {
		a, _, _ := interp.Run(f, interp.Options{Args: []int64{n}})
		b, _, _ := interp.Run(res.F, interp.Options{Args: []int64{n}})
		if !a.ObservablyEqual(b) {
			t.Fatalf("n=%d: %s vs %s\n%s", n, a, b, res.F)
		}
	}
}

func TestMultipleUpdates(t *testing.T) {
	// Two updates of i per iteration: both must be mirrored.
	src := `
func f(n) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = i * 3
  print x
  i = i + 1
  i = i + 2
  jmp head
exit:
  ret
}
`
	res := transform(t, src)
	if res.Updates != 2 {
		t.Fatalf("updates=%d, want 2\n%s", res.Updates, res.F)
	}
	f := parse(t, src)
	a, _, _ := interp.Run(f, interp.Options{Args: []int64{10}})
	b, _, _ := interp.Run(res.F, interp.Options{Args: []int64{10}})
	if !a.ObservablyEqual(b) {
		t.Fatalf("%s vs %s\n%s", a, b, res.F)
	}
}

func TestNonIVNotReduced(t *testing.T) {
	// v is reassigned arbitrarily in the loop: not an induction variable.
	src := `
func f(n, v) {
entry:
  i = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  x = v * 8
  v = x % 7
  i = i + 1
  jmp head
exit:
  ret v
}
`
	res := transform(t, src)
	if res.Reduced != 0 {
		t.Errorf("non-IV multiplication reduced\n%s", res.F)
	}
}

func TestIVTimesIVDstExcluded(t *testing.T) {
	// j = i * 2 where j is itself updated additively: j has two def forms
	// (mul + add) so it is not an IV, and reducing j = i*2 is fine; but a
	// mul whose destination is a pure IV must be left alone.
	src := `
func f(n) {
entry:
  i = 0
  j = 0
  jmp head
head:
  c = i < n
  br c body exit
body:
  j = j + 4
  i = i + 1
  jmp head
exit:
  ret j
}
`
	res := transform(t, src)
	if res.Reduced != 0 {
		t.Errorf("nothing to reduce here\n%s", res.F)
	}
}

func TestPreheaderCreatedForBottomTest(t *testing.T) {
	// Bottom-test loop entered straight from a multi-successor block: a
	// preheader must be materialized.
	src := `
func f(n, p) {
entry:
  i = 0
  br p body out
body:
  x = i * 5
  print x
  i = i + 1
  c = i < n
  br c body out
out:
  ret i
}
`
	res := transform(t, src)
	if res.Reduced != 1 || res.Preheaders != 1 {
		t.Fatalf("reduced=%d preheaders=%d\n%s", res.Reduced, res.Preheaders, res.F)
	}
	if !strings.Contains(res.F.String(), ".preheader") {
		t.Errorf("no preheader block:\n%s", res.F)
	}
	f := parse(t, src)
	for _, args := range [][]int64{{5, 1}, {5, 0}, {0, 1}} {
		a, _, _ := interp.Run(f, interp.Options{Args: args})
		b, _, _ := interp.Run(res.F, interp.Options{Args: args})
		if !a.ObservablyEqual(b) {
			t.Fatalf("args %v: %s vs %s\n%s", args, a, b, res.F)
		}
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
func f(n, m) {
entry:
  i = 0
  jmp oh
oh:
  ci = i < n
  br ci obody exit
obody:
  a = i * 10
  j = 0
  jmp ih
ih:
  cj = j < m
  br cj ibody olatch
ibody:
  b = j * 3
  s = a + b
  print s
  j = j + 1
  jmp ih
olatch:
  i = i + 1
  jmp oh
exit:
  ret
}
`
	res := transform(t, src)
	if res.Reduced < 2 {
		t.Fatalf("reduced=%d, want both loops' muls\n%s", res.Reduced, res.F)
	}
	f := parse(t, src)
	for _, args := range [][]int64{{3, 4}, {0, 5}, {2, 0}} {
		a, _, _ := interp.Run(f, interp.Options{Args: args})
		b, _, _ := interp.Run(res.F, interp.Options{Args: args})
		if !a.ObservablyEqual(b) {
			t.Fatalf("args %v: %s vs %s\n%s", args, a, b, res.F)
		}
	}
	// Inner multiplication j*3 must execute 0 times in the loop; only
	// preheader inits remain: ≤ n inits of the inner temp + 1 outer.
	muls := mulCount(t, res.F, 3, 4)
	if muls > 4 {
		t.Errorf("dynamic muls = %d, want ≤ 4 (3 inner preheader + 1 outer)\n%s", muls, res.F)
	}
	if orig := mulCount(t, f, 3, 4); orig != 15 {
		t.Fatalf("original muls = %d, want 15", orig)
	}
}

func TestEntryIsLoopHeader(t *testing.T) {
	src := `
func f(n) {
entry:
  x = n * 6
  print x
  n = n - 1
  c = 0 < n
  br c entry out
out:
  ret
}
`
	f := parse(t, src)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{1, 4} {
		a, _, _ := interp.Run(f, interp.Options{Args: []int64{n}})
		b, _, _ := interp.Run(res.F, interp.Options{Args: []int64{n}})
		if !a.ObservablyEqual(b) {
			t.Fatalf("n=%d: %s vs %s\n%s", n, a, b, res.F)
		}
	}
	if res.Reduced != 1 {
		t.Errorf("reduced=%d\n%s", res.Reduced, res.F)
	}
}

func TestNoLoopsNoChange(t *testing.T) {
	src := `
func f(a) {
e:
  x = a * 4
  ret x
}
`
	res := transform(t, src)
	if res.Reduced != 0 || res.Updates != 0 || res.Preheaders != 0 {
		t.Errorf("straight-line code transformed: %+v", res)
	}
}

func TestRandomProgramsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := randprog.ForSeed(seed)
		res, err := Transform(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.Equivalent(f, res.F, seed*19, 4); err != nil {
			t.Fatalf("seed %d: %v\noriginal:\n%s\ntransformed:\n%s", seed, err, f, res.F)
		}
	}
}

func TestInputNotMutatedAndDeterministic(t *testing.T) {
	f := parse(t, basicLoop)
	before := f.String()
	res1, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("input mutated")
	}
	for i := 0; i < 10; i++ {
		res2, _ := Transform(f)
		if res2.F.String() != res1.F.String() {
			t.Fatal("nondeterministic")
		}
	}
}

func TestTempsReported(t *testing.T) {
	res := transform(t, basicLoop)
	if len(res.Temps) != 1 {
		t.Fatalf("Temps = %v", res.Temps)
	}
	if _, ok := res.Temps["i * 8"]; !ok {
		t.Errorf("Temps = %v", res.Temps)
	}
}
