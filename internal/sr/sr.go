// Package sr implements loop strength reduction, the classic companion
// optimization the Lazy Code Motion authors built on their framework
// (Knoop, Rüthing & Steffen, "Lazy Strength Reduction", JPL 1993): a
// multiplication of a basic induction variable by a loop-invariant
// constant is replaced by an additive recurrence.
//
// For each natural loop, a basic induction variable v is a variable whose
// only definitions inside the loop have the form v = v + c or v = v - c
// with constant c. A candidate is a computation x = v * k (or x = k * v)
// with constant k inside the loop. The transformation
//
//   - materializes a preheader (a block that runs exactly once on loop
//     entry),
//   - initializes t = v * k in the preheader,
//   - mirrors every update v = v ± c with t = t ± k·c immediately after it,
//   - and rewrites every candidate computation to x = t.
//
// On 64-bit wraparound arithmetic the additive recurrence is exactly equal
// to the multiplication, so the rewrite is unconditionally sound; the
// tests verify it with the interpreter, and experiment T8 measures the
// dynamic multiplication counts it removes.
package sr

import (
	"fmt"
	"sort"

	"lazycm/internal/graph"
	"lazycm/internal/ir"
)

// Result reports what Transform did.
type Result struct {
	// F is the transformed clone; the input is not mutated.
	F *ir.Function
	// Reduced counts candidate multiplications rewritten to temp reads.
	Reduced int
	// Updates counts the additive recurrence updates inserted.
	Updates int
	// Preheaders counts preheader blocks materialized.
	Preheaders int
	// Temps maps each reduced (variable, multiplier) pair description,
	// e.g. "v * 3", to its temporary.
	Temps map[string]string
}

// ivUpdate is one induction update v = v ± c at (block, index).
type ivUpdate struct {
	block *ir.Block
	index int
	// delta is the signed step (negative for v = v - c).
	delta int64
}

// candidate is one reducible multiplication x = v * k inside the loop.
type candidate struct {
	block *ir.Block
	index int
	v     string
	k     int64
}

// Transform applies strength reduction to a clone of f, innermost loops
// first.
func Transform(f *ir.Function) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("sr: input invalid: %w", err)
	}
	clone := f.Clone()
	res := &Result{F: clone, Temps: make(map[string]string)}

	// Process loops innermost-first so inner recurrences are in place
	// before outer loops are considered. Loop structure is recomputed
	// after each reduction because preheader insertion changes the CFG.
	for {
		loops := graph.NaturalLoops(clone)
		sort.SliceStable(loops, func(i, j int) bool { return loops[i].Depth > loops[j].Depth })
		reducedOne := false
		for _, l := range loops {
			if reduceLoop(clone, l, res) {
				reducedOne = true
				break // CFG and loop structure changed; re-analyze
			}
		}
		if !reducedOne {
			break
		}
	}
	clone.Recompute()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("sr: transformed function invalid: %w", err)
	}
	return res, nil
}

// reduceLoop reduces the first reducible (v, k) group of the loop and
// reports whether it changed anything.
func reduceLoop(f *ir.Function, l *graph.Loop, res *Result) bool {
	ivs := basicInductionVars(l)
	if len(ivs) == 0 {
		return false
	}
	cands := candidates(l, ivs)
	if len(cands) == 0 {
		return false
	}

	// Group candidates by (v, k); reduce the first group in deterministic
	// order (block ID, then index).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v < cands[j].v
		}
		if cands[i].k != cands[j].k {
			return cands[i].k < cands[j].k
		}
		if cands[i].block.ID != cands[j].block.ID {
			return cands[i].block.ID < cands[j].block.ID
		}
		return cands[i].index < cands[j].index
	})
	v, k := cands[0].v, cands[0].k
	var group []candidate
	for _, c := range cands {
		if c.v == v && c.k == k {
			group = append(group, c)
		}
	}

	pre, created := preheader(f, l)
	if pre == nil {
		return false
	}
	if created {
		res.Preheaders++
	}

	t := f.FreshVarName("sr")
	res.Temps[fmt.Sprintf("%s * %d", v, k)] = t

	// Initialize in the preheader.
	pre.Append(ir.NewBinOp(t, ir.Mul, ir.Var(v), ir.Const(k)))

	// Mirror the updates: t = t + k·delta after each v update. Collect
	// positions first, then apply per block back to front.
	updates := ivs[v]
	byBlock := map[*ir.Block][]ivUpdate{}
	for _, u := range updates {
		byBlock[u.block] = append(byBlock[u.block], u)
	}
	for b, us := range byBlock {
		sort.Slice(us, func(i, j int) bool { return us[i].index > us[j].index })
		for _, u := range us {
			b.InsertAt(u.index+1, ir.NewBinOp(t, ir.Add, ir.Var(t), ir.Const(k*u.delta)))
			res.Updates++
		}
	}

	// Rewrite the candidates. Instruction indices may have shifted by the
	// update insertions; locate each candidate again by scanning its block
	// for the multiplication form.
	for _, b := range l.Blocks {
		for j := range b.Instrs {
			in := &b.Instrs[j]
			cv, ck, ok := mulForm(*in)
			if !ok || cv != v || ck != k {
				continue
			}
			if _, dstIV := ivs[in.Dst]; dstIV {
				continue // same exclusion as candidate collection
			}
			*in = ir.NewCopy(in.Dst, ir.Var(t))
			res.Reduced++
		}
	}
	f.Recompute()
	return true
}

// basicInductionVars returns, per variable, its update sites — for
// variables whose only in-loop definitions are v = v ± const.
func basicInductionVars(l *graph.Loop) map[string][]ivUpdate {
	ivs := map[string][]ivUpdate{}
	disqualified := map[string]bool{}
	for _, b := range l.Blocks {
		for j, in := range b.Instrs {
			d := in.Defs()
			if d == "" {
				continue
			}
			if delta, ok := ivForm(in); ok {
				ivs[d] = append(ivs[d], ivUpdate{block: b, index: j, delta: delta})
			} else {
				disqualified[d] = true
			}
		}
	}
	for d := range disqualified {
		delete(ivs, d)
	}
	return ivs
}

// ivForm recognizes v = v + c and v = v - c and returns the signed step.
func ivForm(in ir.Instr) (int64, bool) {
	if in.Kind != ir.BinOp {
		return 0, false
	}
	switch in.Op {
	case ir.Add:
		if in.A.Uses(in.Dst) && in.B.IsConst() {
			return in.B.Value, true
		}
		if in.B.Uses(in.Dst) && in.A.IsConst() {
			return in.A.Value, true
		}
	case ir.Sub:
		if in.A.Uses(in.Dst) && in.B.IsConst() {
			return -in.B.Value, true
		}
	}
	return 0, false
}

// mulForm recognizes x = v * k and x = k * v with x ≠ v and returns (v, k).
func mulForm(in ir.Instr) (string, int64, bool) {
	if in.Kind != ir.BinOp || in.Op != ir.Mul {
		return "", 0, false
	}
	if in.A.IsVar() && in.B.IsConst() && in.A.Name != in.Dst {
		return in.A.Name, in.B.Value, true
	}
	if in.B.IsVar() && in.A.IsConst() && in.B.Name != in.Dst {
		return in.B.Name, in.A.Value, true
	}
	return "", 0, false
}

// candidates returns the reducible multiplications of the loop.
func candidates(l *graph.Loop, ivs map[string][]ivUpdate) []candidate {
	var out []candidate
	for _, b := range l.Blocks {
		for j, in := range b.Instrs {
			v, k, ok := mulForm(in)
			if !ok {
				continue
			}
			if _, isIV := ivs[v]; !isIV {
				continue
			}
			// The destination must not be an induction variable itself
			// (rewriting x = t must not disturb the recurrences) and must
			// not be v.
			if _, dstIV := ivs[in.Dst]; dstIV {
				continue
			}
			out = append(out, candidate{block: b, index: j, v: v, k: k})
		}
	}
	return out
}

// preheader returns a block that executes exactly once each time the loop
// is entered from outside, creating one if necessary. It returns nil if
// the loop's outside predecessors cannot be determined (should not happen
// on valid input).
func preheader(f *ir.Function, l *graph.Loop) (*ir.Block, bool) {
	h := l.Header
	var outside []graph.Edge
	for _, p := range h.Preds() {
		if l.Contains(p) {
			continue
		}
		for i, n := 0, p.NumSuccs(); i < n; i++ {
			if p.Succ(i) == h {
				outside = append(outside, graph.Edge{From: p, Index: i})
			}
		}
	}
	if h == f.Entry() {
		// The function entry is the loop header: make a fresh entry block.
		nb := f.AddBlock(f.FreshBlockName(h.Name + ".preheader"))
		nb.Term = ir.Terminator{Kind: ir.Jump, Then: h}
		last := len(f.Blocks) - 1
		f.Blocks[0], f.Blocks[last] = f.Blocks[last], f.Blocks[0]
		for _, e := range outside {
			e.From.SetSucc(e.Index, nb)
		}
		f.Recompute()
		return nb, true
	}
	if len(outside) == 0 {
		return nil, false
	}
	// A single outside predecessor that falls through only to the header
	// already is a preheader.
	if len(outside) == 1 && outside[0].From.NumSuccs() == 1 {
		return outside[0].From, false
	}
	nb := f.AddBlock(f.FreshBlockName(h.Name + ".preheader"))
	nb.Term = ir.Terminator{Kind: ir.Jump, Then: h}
	for _, e := range outside {
		e.From.SetSucc(e.Index, nb)
	}
	f.Recompute()
	return nb, true
}
