package fleet

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int32

const (
	// BreakerClosed is normal operation: requests flow, consecutive
	// failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses all requests until the cooldown elapses. An
	// open breaker is what isolates a dead backend: the router skips it
	// without spending a connection attempt.
	BreakerOpen
	// BreakerHalfOpen admits one probe request at a time; enough
	// consecutive probe successes close the breaker, any failure reopens
	// it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value takes the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip a closed
	// breaker open. Default 5.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses everything before
	// letting probes through. Default 2s.
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker. Default 2.
	HalfOpenProbes int
	// Now is the clock; tests inject a fake one. nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-backend circuit breaker: closed → open after a
// streak of failures, open → half-open after a cooldown, half-open →
// closed after successful probes (or straight back to open on any
// probe failure). Observations come from wherever the caller sees the
// backend misbehave — connection errors, 5xx responses, failed
// readiness probes — the breaker only orders them into a policy.
//
// Late observations are ignored while open: a request admitted before
// the trip may complete long after it, and neither its success nor its
// failure says anything about whether the cooldown should move.
type Breaker struct {
	mu             sync.Mutex
	cfg            BreakerConfig
	state          BreakerState
	failures       int // consecutive failures while closed
	probeSucceeded int // consecutive probe successes while half-open
	probeInFlight  bool
	openedAt       time.Time
	opened         int64 // times tripped open, for reporting
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent to this backend now.
// While open it returns false until the cooldown elapses, at which
// point the breaker turns half-open and admits exactly one in-flight
// probe at a time; the caller must Record the probe's outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeSucceeded = 0
		b.probeInFlight = true
		return true
	case BreakerHalfOpen:
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
	return false
}

// Record feeds one observed outcome for this backend: a completed
// request, a connection error, or a readiness-probe result.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerOpen:
		// Late result from before the trip: no signal about recovery.
	case BreakerHalfOpen:
		b.probeInFlight = false
		if !ok {
			b.trip()
			return
		}
		b.probeSucceeded++
		if b.probeSucceeded >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.failures = 0
		}
	}
}

// trip moves to open; caller holds the lock.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probeSucceeded = 0
	b.probeInFlight = false
	b.opened++
}

// State returns the current state without admitting anything. An open
// breaker past its cooldown still reports open — only Allow moves it to
// half-open, so State is side-effect-free for monitoring.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opened reports how many times the breaker has tripped open.
func (b *Breaker) Opened() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened
}
