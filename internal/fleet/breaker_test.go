package fleet

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldowns.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker() (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		HalfOpenProbes:   2,
		Now:              clk.now,
	})
	return b, clk
}

// TestBreakerTransitions walks the full state machine: closed → open on
// a failure streak, open refuses everything until the cooldown, then
// half-open admits exactly one probe at a time, a probe failure reopens
// with a fresh cooldown, and enough probe successes close it again.
func TestBreakerTransitions(t *testing.T) {
	b, clk := testBreaker()

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker is not closed and allowing")
	}
	// A success between failures resets the streak: 2 failures, success,
	// 2 failures is not a trip at threshold 3.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("interrupted failure streak tripped the breaker")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("3 consecutive failures did not trip the breaker")
	}
	if b.Opened() != 1 {
		t.Fatalf("opened counter = %d, want 1", b.Opened())
	}

	// Open: everything refused until the cooldown elapses; late results
	// from requests admitted before the trip are ignored.
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatal("late success moved an open breaker")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker allowed a request before the cooldown")
	}

	// Cooldown over: exactly one probe admitted at a time.
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure: straight back to open, fresh cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if b.Opened() != 2 {
		t.Fatalf("opened counter = %d, want 2", b.Opened())
	}

	// Recovery: two successful probes (HalfOpenProbes) close it.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown did not admit a probe")
	}
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatal("one probe success closed a breaker that wants 2")
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the next probe after a success")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("enough probe successes did not close the breaker")
	}

	// Closed again with a clean failure count: it takes a full fresh
	// streak to trip.
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("stale failures carried over into the re-closed breaker")
	}
}

// TestBreakerStateIsPassive: State never admits a probe — an open
// breaker past its cooldown stays open until someone calls Allow.
func TestBreakerStateIsPassive(t *testing.T) {
	b, clk := testBreaker()
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clk.advance(time.Minute)
	if b.State() != BreakerOpen {
		t.Fatal("State moved the breaker")
	}
	if !b.Allow() {
		t.Fatal("Allow after cooldown refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatal("Allow did not transition to half-open")
	}
}

// TestBreakerDefaults: the zero config is usable.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped before the default threshold of 5")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("default threshold of 5 did not trip")
	}
}
