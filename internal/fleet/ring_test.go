package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = KeyOf("key", fmt.Sprint(i))
	}
	return keys
}

func ringOf(n int) *Ring {
	r := NewRing(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://backend-%d:8657", i))
	}
	return r
}

// TestRingDistribution: ownership of 1k keys stays near-uniform on 3, 5
// and 8 backends. The bound is deliberately loose (±35% of the fair
// share) — consistent hashing is approximately uniform, and the test
// guards against a broken hash or vnode scheme, not statistical noise.
func TestRingDistribution(t *testing.T) {
	keys := testKeys(1000)
	for _, n := range []int{3, 5, 8} {
		r := ringOf(n)
		counts := make(map[string]int)
		for _, k := range keys {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("n=%d: key %x has no owner", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d backends own keys: %v", n, len(counts), counts)
		}
		fair := float64(len(keys)) / float64(n)
		for id, c := range counts {
			if float64(c) < 0.65*fair || float64(c) > 1.35*fair {
				t.Errorf("n=%d: backend %s owns %d keys, fair share %.0f (all: %v)", n, id, c, fair, counts)
			}
		}
	}
}

// TestRingMinimalMovement: a membership change moves at most one
// node's fair share of the K keys — ceil(K/N) over the smaller
// membership, i.e. the fair share of the node that joined or left —
// every moved key involves that node, and unrelated keys keep their
// owner. This is the property that keeps backend result caches warm
// across fleet resizes: a join from N backends moves ≤ ceil(K/N) keys
// (all onto the joiner, expected K/(N+1)), and a leave back to N
// restores the previous placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(1000)
	for _, n := range []int{3, 5, 8} {
		r := ringOf(n)
		before := make(map[uint64]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}

		joined := "http://backend-new:8657"
		r.Add(joined)
		bound := (len(keys) + n - 1) / n // ceil(K/N): one node's fair share pre-join
		moved := 0
		for _, k := range keys {
			after := r.Owner(k)
			if after == before[k] {
				continue
			}
			moved++
			if after != joined {
				t.Errorf("n=%d join: key %x moved %s→%s, neither is the joining backend", n, k, before[k], after)
			}
		}
		if moved == 0 || moved > bound {
			t.Errorf("n=%d join: %d keys moved, want 1..%d", n, moved, bound)
		}

		// Leave: removing the joined backend must restore the previous
		// ownership exactly — the keys that move are exactly the ones it
		// owned, and they go back where they came from.
		r.Remove(joined)
		for _, k := range keys {
			if got := r.Owner(k); got != before[k] {
				t.Errorf("n=%d leave: key %x owned by %s, want %s", n, k, got, before[k])
			}
		}

		// Leave of an original member: moved keys are exactly the ones the
		// leaver owned — its fair share, ceil(K/(N-1)) over the shrunken
		// membership — and none of them may still point at it.
		leaver := r.Pick(keys[0], 1)[0]
		r.Remove(leaver)
		bound = (len(keys) + n - 2) / (n - 1) // ceil(K/(N-1)): the leaver's fair share post-leave
		moved = 0
		for _, k := range keys {
			after := r.Owner(k)
			if after == before[k] {
				continue
			}
			moved++
			if before[k] != leaver {
				t.Errorf("n=%d leave: key %x moved %s→%s but %s left", n, k, before[k], after, leaver)
			}
			if after == leaver {
				t.Errorf("n=%d leave: key %x still owned by departed %s", n, k, leaver)
			}
		}
		if moved == 0 || moved > bound {
			t.Errorf("n=%d leave: %d keys moved, want 1..%d", n, moved, bound)
		}
	}
}

// TestRingPick: replica preference order is deterministic, distinct,
// owner-first, and capped by membership.
func TestRingPick(t *testing.T) {
	r := ringOf(5)
	key := KeyOf("some program", "lcm")
	picks := r.Pick(key, 3)
	if len(picks) != 3 {
		t.Fatalf("Pick returned %d backends, want 3", len(picks))
	}
	if picks[0] != r.Owner(key) {
		t.Errorf("Pick[0] = %s, Owner = %s", picks[0], r.Owner(key))
	}
	seen := map[string]bool{}
	for _, id := range picks {
		if seen[id] {
			t.Errorf("Pick repeated backend %s: %v", id, picks)
		}
		seen[id] = true
	}
	again := r.Pick(key, 3)
	for i := range picks {
		if picks[i] != again[i] {
			t.Fatalf("Pick not deterministic: %v vs %v", picks, again)
		}
	}
	if got := r.Pick(key, 99); len(got) != 5 {
		t.Errorf("Pick(99) returned %d backends, want all 5", len(got))
	}
	if got := NewRing(0).Pick(key, 2); got != nil {
		t.Errorf("empty ring picked %v", got)
	}
}

// TestWithinBound: the bounded-load rule admits on an idle fleet,
// refuses a backend far above the average, and is disabled by factor<=1.
func TestWithinBound(t *testing.T) {
	if !WithinBound(0, 0, 3, 1.25) {
		t.Error("idle fleet refused placement")
	}
	// 10 in flight on one backend of 3 with 12 total: average 4.33,
	// capacity ceil(1.25*13/3)=6 → refuse.
	if WithinBound(10, 12, 3, 1.25) {
		t.Error("overloaded backend accepted placement")
	}
	if !WithinBound(3, 12, 3, 1.25) {
		t.Error("under-average backend refused placement")
	}
	if !WithinBound(1000, 0, 3, 1.0) {
		t.Error("factor<=1 should disable the bound")
	}
	if !WithinBound(1000, 0, 0, 1.25) {
		t.Error("empty fleet should disable the bound")
	}
}
