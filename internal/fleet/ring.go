// Package fleet holds the routing primitives behind cmd/lcmgate and
// the multi-endpoint client: a consistent-hash ring with virtual nodes
// and a bounded-load placement rule, and a per-backend circuit breaker.
// Both are deliberately free of I/O — pure data structures over
// injected observations — so every state transition is unit-testable
// without a network.
//
// LCM results are location-independent (the server's cache key is a
// sha256 over program+directives), so the only thing placement buys is
// cache affinity: sending the same program to the same backend turns
// repeat-heavy traffic into cache hits. That is why the ring hashes
// request content, why minimal key movement on membership change
// matters (a resize should not flush every backend's cache), and why a
// failover to another replica is always safe — any backend computes the
// same bytes.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultVnodes is how many points each backend contributes to the ring
// when NewRing is given a non-positive count. More vnodes means more
// uniform ownership and finer-grained movement on membership change, at
// O(members×vnodes) memory.
const DefaultVnodes = 512

// Ring is a consistent-hash ring with virtual nodes. Keys and points
// live on a uint64 circle; a key is owned by the first point clockwise
// from it. Adding or removing one member moves only the keys that
// member's points own — about 1/N of the keyspace — which is what keeps
// backend result caches warm across fleet resizes.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash
	members map[string]bool
}

type point struct {
	h  uint64
	id string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (non-positive means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// KeyOf hashes request-identifying strings onto the ring's circle.
// sha256 rather than a cheap hash: routing keys come from request
// bodies, and a well-mixed 64-bit prefix keeps ownership uniform for
// adversarial as well as random inputs.
func KeyOf(parts ...string) uint64 {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

func vnodeHash(id string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", id, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{vnodeHash(id, i), id})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].h < r.points[b].h })
}

// Remove deletes a member's virtual nodes. Removing an unknown member
// is a no-op.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set in unspecified order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	return ids
}

// Len reports the number of members.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key — the first point clockwise from
// it — or "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	picks := r.Pick(key, 1)
	if len(picks) == 0 {
		return ""
	}
	return picks[0]
}

// Pick returns up to n distinct members in clockwise order from key:
// the owner first, then the replicas a router fails over to, in the
// order it should try them. The order is a pure function of (key,
// membership), so every gateway replica and every retry agrees on it.
func (r *Ring) Pick(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	picked := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(picked) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			picked = append(picked, p.id)
		}
	}
	return picked
}

// WithinBound is the bounded-load placement rule (consistent hashing
// with bounded loads): a member may accept another request only while
// its in-flight count stays under factor × the fleet-wide average
// (counting the request being placed). A hot key that floods one
// backend spills to its next replica instead of queueing arbitrarily
// deep, while an idle fleet (total 0) still admits everywhere. A
// factor <= 1 disables the bound rather than refusing all placement.
func WithinBound(inflight, totalInflight int64, members int, factor float64) bool {
	if members <= 0 || factor <= 1 {
		return true
	}
	capacity := math.Ceil(factor * float64(totalInflight+1) / float64(members))
	return float64(inflight) < capacity
}
