package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lazycm/internal/bitvec"
)

// TestWorklistAgreesWithRoundRobin: the two solvers must compute the
// identical fixpoint on random graphs and problems, for every
// direction/meet/boundary combination.
func TestWorklistAgreesWithRoundRobin(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		var edges [][2]int
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		for i := 0; i < r.Intn(2*n); i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		g := newSliceGraph(n, edges)
		w := 1 + r.Intn(8)
		gen := bitvec.NewMatrix(n, w)
		kill := bitvec.NewMatrix(n, w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				if r.Intn(3) == 0 {
					gen.Set(i, j)
				}
				if r.Intn(3) == 0 {
					kill.Set(i, j)
				}
			}
		}
		for _, dir := range []Direction{Forward, Backward} {
			for _, meet := range []Meet{Must, May} {
				for _, bound := range []Boundary{BoundaryEmpty, BoundaryFull} {
					p := &Problem{Name: "w", Dir: dir, Meet: meet, Width: w, Gen: gen, Kill: kill, Boundary: bound}
					a, errA := Solve(g, p)
					b, errB := SolveWorklist(g, p)
					if errA != nil || errB != nil {
						return false
					}
					if !a.In.Equal(b.In) || !a.Out.Equal(b.Out) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustSolveWorklist(t *testing.T, g Graph, p *Problem) *Result {
	t.Helper()
	res, err := SolveWorklist(g, p)
	if err != nil {
		t.Fatalf("SolveWorklist(%s): %v", p.Name, err)
	}
	return res
}

func TestWorklistStats(t *testing.T) {
	res := mustSolveWorklist(t, diamondG(), availProblem(Must))
	if res.Stats.NodeVisits < 4 || res.Stats.VectorOps == 0 {
		t.Errorf("stats implausible: %+v", res.Stats)
	}
}

func TestWorklistDimensionError(t *testing.T) {
	_, err := SolveWorklist(diamondG(), &Problem{Name: "bad", Width: 1, Gen: bitvec.NewMatrix(3, 1), Kill: bitvec.NewMatrix(4, 1)})
	if err == nil {
		t.Fatal("no error on dimension mismatch")
	}
}

func TestWorklistDeterministic(t *testing.T) {
	p := availProblem(Must)
	a := mustSolveWorklist(t, diamondG(), p)
	for i := 0; i < 5; i++ {
		b := mustSolveWorklist(t, diamondG(), p)
		if !a.In.Equal(b.In) || a.Stats != b.Stats {
			t.Fatal("worklist solver nondeterministic")
		}
	}
}

func BenchmarkSolverStrategies(b *testing.B) {
	// A ladder graph with a kill in the middle: enough structure to make
	// the comparison meaningful.
	const n = 200
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
		if i%7 == 0 && i+5 < n {
			edges = append(edges, [2]int{i, i + 5})
		}
		if i%13 == 0 && i > 6 {
			edges = append(edges, [2]int{i, i - 6}) // back edges
		}
	}
	g := newSliceGraph(n, edges)
	const w = 128
	gen := bitvec.NewMatrix(n, w)
	kill := bitvec.NewMatrix(n, w)
	for i := 0; i < n; i++ {
		gen.Set(i, (i*17)%w)
		kill.Set(i, (i*31)%w)
	}
	p := &Problem{Name: "bench", Dir: Forward, Meet: Must, Width: w, Gen: gen, Kill: kill}
	b.Run("roundrobin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(g, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("worklist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveWorklist(g, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
