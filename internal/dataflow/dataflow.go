// Package dataflow implements the iterative bit-vector data-flow framework
// of the reproduction: unidirectional gen/kill problems over an abstract
// directed graph, solved round-robin in (reverse) postorder until a fixed
// point. Every analysis of the Lazy Code Motion paper — up-safety,
// down-safety, delayability, isolation — and the auxiliary liveness
// analysis are instances of this framework; the Morel–Renvoise baseline is
// deliberately not, because it is bidirectional, which is exactly the cost
// the paper eliminates (experiment T4 measures the difference using the
// Stats this package reports).
package dataflow

import (
	"context"
	"errors"
	"fmt"

	"lazycm/internal/bitvec"
)

// ErrFuelExhausted reports that a solver ran out of its node-visit budget
// before reaching a fixed point. Callers test for it with errors.Is; the
// concrete error carries the problem name and the budget.
var ErrFuelExhausted = errors.New("dataflow: fuel exhausted before fixpoint")

// ErrCanceled reports that a fixpoint was abandoned because its context
// was canceled or its deadline expired. Callers test for it with
// errors.Is; the concrete *CancelError also unwraps to the context's own
// error, so errors.Is(err, context.DeadlineExceeded) distinguishes a
// deadline from an explicit cancel.
var ErrCanceled = errors.New("dataflow: canceled before fixpoint")

// CancelError is the concrete error returned when a fixpoint observes a
// done context. It unwraps to both ErrCanceled and the context error
// (context.Canceled or context.DeadlineExceeded).
type CancelError struct {
	// Problem is the name of the fixpoint that was abandoned.
	Problem string
	// Err is the context's error.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("dataflow: %s: canceled before fixpoint: %v", e.Problem, e.Err)
}

func (e *CancelError) Unwrap() []error { return []error{ErrCanceled, e.Err} }

// Canceled wraps a done context's error for the named fixpoint, or
// returns nil when ctx is nil or still live. Fixpoint loops outside this
// package (the MR placement-possible system, the block-level LATER
// system, the opt reapplication rounds) use it so every cancellation in
// the tree is the same structured error.
func Canceled(ctx context.Context, problem string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CancelError{Problem: problem, Err: err}
	}
	return nil
}

// cancelInterval is how many node visits may pass between context checks
// inside a sweep, bounding cancellation latency on very large graphs
// without paying a context poll per node.
const cancelInterval = 256

// FuelError is the concrete error returned when a Problem's Fuel budget is
// exhausted. It unwraps to ErrFuelExhausted.
type FuelError struct {
	// Problem is the name of the problem that ran dry.
	Problem string
	// Fuel is the node-visit budget that was exceeded.
	Fuel int
}

func (e *FuelError) Error() string {
	return fmt.Sprintf("dataflow: %s: fuel exhausted after %d node visits before fixpoint", e.Problem, e.Fuel)
}

func (e *FuelError) Unwrap() error { return ErrFuelExhausted }

// Graph is the directed graph a problem is solved over. Nodes are dense
// indices 0..NumNodes()-1.
type Graph interface {
	NumNodes() int
	NumSuccs(n int) int
	Succ(n, i int) int
	NumPreds(n int) int
	Pred(n, i int) int
}

// Direction selects forward (along edges) or backward (against edges)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// String names the direction.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Meet selects the confluence operator.
type Meet int

const (
	// Must intersects the inputs: a property must hold on all paths.
	Must Meet = iota
	// May unions the inputs: a property holds on some path.
	May
)

// String names the meet operator.
func (m Meet) String() string {
	if m == Must {
		return "must"
	}
	return "may"
}

// Boundary selects the meet input at boundary nodes (no predecessors for
// forward problems, no successors for backward ones).
type Boundary int

const (
	// BoundaryEmpty makes the property false at the boundary.
	BoundaryEmpty Boundary = iota
	// BoundaryFull makes the property true at the boundary.
	BoundaryFull
)

// Problem is a gen/kill bit-vector data-flow problem. With
// flow-side = IN for forward problems applied as
//
//	IN(n)  = meet over preds m of OUT(m)        (boundary at no preds)
//	OUT(n) = GEN(n) ∨ (IN(n) ∧ ¬KILL(n))
//
// and symmetrically for backward problems
//
//	OUT(n) = meet over succs m of IN(m)         (boundary at no succs)
//	IN(n)  = GEN(n) ∨ (OUT(n) ∧ ¬KILL(n))
type Problem struct {
	// Name labels the problem in stats output.
	Name string
	Dir  Direction
	Meet Meet
	// Width is the number of bits per node (e.g. the expression universe
	// size).
	Width int
	// Gen and Kill are per-node vectors; both must be NumNodes×Width.
	Gen, Kill *bitvec.Matrix
	// Boundary is the meet input at boundary nodes.
	Boundary Boundary
	// Fuel bounds the solver's node visits; 0 means unlimited. A problem
	// whose fixpoint is not reached within Fuel visits fails with a
	// FuelError instead of iterating further, so a buggy (non-monotone)
	// transfer function cannot spin the process.
	Fuel int
	// Ctx, when non-nil, lets the caller abandon the solve: the solvers
	// poll it at iteration boundaries (each sweep, and every
	// cancelInterval node visits within a sweep) and fail with a
	// *CancelError once it is done. Nil means "never canceled".
	Ctx context.Context
	// Scratch, when non-nil, supplies the solver's traversal order and
	// working storage from a shared arena instead of fresh allocations.
	// The solution is identical either way; see Scratch. The caller owns
	// the Result matrices and releases back to the arena whichever side
	// it does not keep.
	Scratch *Scratch
}

// check validates the problem's shape against the graph. It is the shared
// precondition of both solvers.
func (p *Problem) check(g Graph) error {
	n := g.NumNodes()
	if p.Gen == nil || p.Kill == nil {
		return fmt.Errorf("dataflow: %s: nil gen/kill matrix", p.Name)
	}
	if p.Gen.Rows() != n || p.Kill.Rows() != n || p.Gen.Cols() != p.Width || p.Kill.Cols() != p.Width {
		return fmt.Errorf("dataflow: %s: gen %dx%d / kill %dx%d do not match graph (%d nodes) and width %d",
			p.Name, p.Gen.Rows(), p.Gen.Cols(), p.Kill.Rows(), p.Kill.Cols(), n, p.Width)
	}
	return nil
}

// Result holds the fixpoint solution and solver statistics.
type Result struct {
	// In and Out are the per-node solution matrices, indexed by node.
	In, Out *bitvec.Matrix
	Stats   Stats
}

// Stats records solver effort, the efficiency currency of experiment T4.
type Stats struct {
	// Name echoes the problem name.
	Name string
	// Passes is the number of full round-robin sweeps, including the last
	// (unchanged) confirming sweep.
	Passes int
	// NodeVisits is the number of node evaluations.
	NodeVisits int
	// VectorOps counts whole-bit-vector operations (and/or/andnot/copy),
	// the unit the PRE-efficiency literature reports.
	VectorOps int
}

// Add accumulates other into s (keeping s's name).
func (s *Stats) Add(other Stats) {
	s.Passes += other.Passes
	s.NodeVisits += other.NodeVisits
	s.VectorOps += other.VectorOps
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d passes, %d node visits, %d vector ops", s.Name, s.Passes, s.NodeVisits, s.VectorOps)
}

// Solve runs the problem to its (unique) fixed point over g. The iteration
// order is reverse postorder for forward problems and postorder for
// backward ones, computed over reachable nodes; nodes unreachable in the
// iteration direction keep their initial value.
//
// Solve fails with a descriptive error when the gen/kill matrices do not
// match the graph and width, with a FuelError when p.Fuel is positive and
// exhausted before the fixed point, and with a CancelError when p.Ctx is
// done before the fixed point.
func Solve(g Graph, p *Problem) (*Result, error) {
	if err := p.check(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	in, out, meetIn := p.state(n)
	res := &Result{In: in, Out: out}
	res.Stats.Name = p.Name

	// Initialize the flow-side values to top so a Must meet can descend.
	// For May problems bottom (empty) is the correct start.
	if p.Meet == Must {
		for i := 0; i < n; i++ {
			if p.Dir == Forward {
				res.Out.Row(i).SetAll()
			} else {
				res.In.Row(i).SetAll()
			}
		}
	}

	order := p.order(g)

	for {
		if err := Canceled(p.Ctx, p.Name); err != nil {
			p.releaseState(in, out, meetIn)
			return nil, err
		}
		res.Stats.Passes++
		changed := false
		for _, node := range order {
			res.Stats.NodeVisits++
			if p.Fuel > 0 && res.Stats.NodeVisits > p.Fuel {
				p.releaseState(in, out, meetIn)
				return nil, &FuelError{Problem: p.Name, Fuel: p.Fuel}
			}
			if res.Stats.NodeVisits%cancelInterval == 0 {
				if err := Canceled(p.Ctx, p.Name); err != nil {
					p.releaseState(in, out, meetIn)
					return nil, err
				}
			}
			var flowIn, flowOut *bitvec.Vector
			var degree int
			if p.Dir == Forward {
				flowIn, flowOut = res.In.Row(node), res.Out.Row(node)
				degree = g.NumPreds(node)
			} else {
				flowIn, flowOut = res.Out.Row(node), res.In.Row(node)
				degree = g.NumSuccs(node)
			}

			// Meet.
			if degree == 0 {
				if p.Boundary == BoundaryFull {
					meetIn.SetAll()
				} else {
					meetIn.ClearAll()
				}
			} else {
				first := true
				for i := 0; i < degree; i++ {
					var src *bitvec.Vector
					if p.Dir == Forward {
						src = res.Out.Row(g.Pred(node, i))
					} else {
						src = res.In.Row(g.Succ(node, i))
					}
					if first {
						meetIn.CopyFrom(src)
						first = false
					} else if p.Meet == Must {
						meetIn.And(src)
					} else {
						meetIn.Or(src)
					}
					res.Stats.VectorOps++
				}
			}
			if flowIn.CopyFrom(meetIn) {
				changed = true
			}
			res.Stats.VectorOps++

			// Transfer, fused into one word sweep:
			//   flowOut = gen ∨ (flowIn ∧ ¬kill)
			// Accounted as the three logical ops (andnot, or, copy) it
			// replaces, so VectorOps stays the comparable currency of
			// experiment T4 regardless of fusion.
			if flowOut.OrAndNotOf(p.Gen.Row(node), flowIn, p.Kill.Row(node)) {
				changed = true
			}
			res.Stats.VectorOps += 3
		}
		if !changed {
			if p.Scratch != nil {
				p.Scratch.ReleaseVector(meetIn)
			}
			return res, nil
		}
	}
}

// iterationOrder returns reverse postorder from boundary nodes for forward
// problems, and reverse postorder of the reversed graph for backward ones.
// Nodes unreachable from any boundary node are appended afterwards so they
// still stabilize.
func iterationOrder(g Graph, dir Direction) []int {
	n := g.NumNodes()
	seen := make([]bool, n)
	post := make([]int, 0, n)

	degree := func(i int) int {
		if dir == Forward {
			return g.NumPreds(i)
		}
		return g.NumSuccs(i)
	}
	next := func(i, k int) int {
		if dir == Forward {
			return g.Succ(i, k)
		}
		return g.Pred(i, k)
	}
	fanout := func(i int) int {
		if dir == Forward {
			return g.NumSuccs(i)
		}
		return g.NumPreds(i)
	}

	type frame struct{ node, i int }
	var stack []frame
	dfs := func(root int) {
		if seen[root] {
			return
		}
		seen[root] = true
		stack = append(stack, frame{node: root})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.i < fanout(fr.node) {
				s := next(fr.node, fr.i)
				fr.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{node: s})
				}
				continue
			}
			post = append(post, fr.node)
			stack = stack[:len(stack)-1]
		}
	}
	for i := 0; i < n; i++ {
		if degree(i) == 0 {
			dfs(i)
		}
	}
	for i := 0; i < n; i++ {
		dfs(i)
	}
	// Reverse postorder.
	order := make([]int, len(post))
	for i, v := range post {
		order[len(post)-1-i] = v
	}
	return order
}
