// Package dataflow implements the iterative bit-vector data-flow framework
// of the reproduction: unidirectional gen/kill problems over an abstract
// directed graph, solved round-robin in (reverse) postorder until a fixed
// point. Every analysis of the Lazy Code Motion paper — up-safety,
// down-safety, delayability, isolation — and the auxiliary liveness
// analysis are instances of this framework; the Morel–Renvoise baseline is
// deliberately not, because it is bidirectional, which is exactly the cost
// the paper eliminates (experiment T4 measures the difference using the
// Stats this package reports).
//
// Three solver strategies compute the same unique fixpoint (DESIGN.md §11
// gives the argument): Serial round-robin sweeps (the reference), Sliced
// word-parallel sweeps (the expression universe partitioned by 64-bit
// word, one goroutine per disjoint word-column slice of the shared state),
// and Sparse masked worklists (only unstable words re-propagate, through
// an intrusive zero-allocation queue). The default Auto strategy picks by
// problem shape; the randomized equivalence suite asserts bit-identical
// results across all three.
package dataflow

import (
	"context"
	"errors"
	"fmt"

	"lazycm/internal/bitvec"
)

// ErrFuelExhausted reports that a solver ran out of its node-visit budget
// before reaching a fixed point. Callers test for it with errors.Is; the
// concrete error carries the problem name and the budget.
var ErrFuelExhausted = errors.New("dataflow: fuel exhausted before fixpoint")

// ErrCanceled reports that a fixpoint was abandoned because its context
// was canceled or its deadline expired. Callers test for it with
// errors.Is; the concrete *CancelError also unwraps to the context's own
// error, so errors.Is(err, context.DeadlineExceeded) distinguishes a
// deadline from an explicit cancel.
var ErrCanceled = errors.New("dataflow: canceled before fixpoint")

// CancelError is the concrete error returned when a fixpoint observes a
// done context. It unwraps to both ErrCanceled and the context error
// (context.Canceled or context.DeadlineExceeded).
type CancelError struct {
	// Problem is the name of the fixpoint that was abandoned.
	Problem string
	// Err is the context's error.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("dataflow: %s: canceled before fixpoint: %v", e.Problem, e.Err)
}

func (e *CancelError) Unwrap() []error { return []error{ErrCanceled, e.Err} }

// Canceled wraps a done context's error for the named fixpoint, or
// returns nil when ctx is nil or still live. Fixpoint loops outside this
// package (the MR placement-possible system, the block-level LATER
// system, the opt reapplication rounds) use it so every cancellation in
// the tree is the same structured error.
func Canceled(ctx context.Context, problem string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CancelError{Problem: problem, Err: err}
	}
	return nil
}

// cancelInterval is how many node visits may pass between context checks
// inside a sweep, bounding cancellation latency on very large graphs
// without paying a context poll per node.
const cancelInterval = 256

// FuelError is the concrete error returned when a Problem's Fuel budget is
// exhausted. It unwraps to ErrFuelExhausted.
type FuelError struct {
	// Problem is the name of the problem that ran dry.
	Problem string
	// Fuel is the node-visit budget that was exceeded.
	Fuel int
}

func (e *FuelError) Error() string {
	return fmt.Sprintf("dataflow: %s: fuel exhausted after %d node visits before fixpoint", e.Problem, e.Fuel)
}

func (e *FuelError) Unwrap() error { return ErrFuelExhausted }

// Graph is the directed graph a problem is solved over. Nodes are dense
// indices 0..NumNodes()-1.
type Graph interface {
	NumNodes() int
	NumSuccs(n int) int
	Succ(n, i int) int
	NumPreds(n int) int
	Pred(n, i int) int
}

// Direction selects forward (along edges) or backward (against edges)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// String names the direction.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Meet selects the confluence operator.
type Meet int

const (
	// Must intersects the inputs: a property must hold on all paths.
	Must Meet = iota
	// May unions the inputs: a property holds on some path.
	May
)

// String names the meet operator.
func (m Meet) String() string {
	if m == Must {
		return "must"
	}
	return "may"
}

// Boundary selects the meet input at boundary nodes (no predecessors for
// forward problems, no successors for backward ones).
type Boundary int

const (
	// BoundaryEmpty makes the property false at the boundary.
	BoundaryEmpty Boundary = iota
	// BoundaryFull makes the property true at the boundary.
	BoundaryFull
)

// Strategy selects how Solve reaches the fixpoint. Every strategy computes
// the identical solution; the choice is purely a performance trade-off.
type Strategy int

const (
	// Auto picks a strategy from the problem shape: Sliced for wide
	// universes on non-trivial graphs, Sparse for large narrow graphs,
	// Serial otherwise.
	Auto Strategy = iota
	// Serial is the reference round-robin sweep in (reverse) postorder.
	Serial
	// Sliced partitions the expression universe by 64-bit word and solves
	// the disjoint word-column slices concurrently.
	Sliced
	// Sparse uses the masked worklist of SolveWorklist: only words that
	// actually changed re-propagate to dependents.
	Sparse
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Serial:
		return "serial"
	case Sliced:
		return "sliced"
	case Sparse:
		return "sparse"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Auto-dispatch thresholds. Word-slicing pays only when each slice carries
// enough words across enough nodes to amortize goroutine startup; the
// sparse worklist pays only when the graph is large enough that full
// re-sweeps dominate its queue overhead.
const (
	slicedMinWords = 4   // ≥ 256 expressions before slicing engages
	slicedMinNodes = 128 // and a graph big enough to sweep repeatedly
	sparseMinNodes = 512 // narrow but deep graphs go sparse
)

// pick resolves Auto against the problem shape.
func (p *Problem) pick(g Graph) Strategy {
	if p.Strategy != Auto {
		return p.Strategy
	}
	if numWordsFor(p.Width) >= slicedMinWords && g.NumNodes() >= slicedMinNodes {
		return Sliced
	}
	if g.NumNodes() >= sparseMinNodes {
		return Sparse
	}
	return Serial
}

// numWordsFor returns the number of 64-bit words backing a vector of the
// given bit width.
func numWordsFor(width int) int { return (width + 63) >> 6 }

// normVectorOps converts a word-op count into whole-vector-op units so
// Stats.VectorOps stays the comparable currency of experiment T4 across
// strategies that touch partial vectors.
func normVectorOps(wordOps, numWords int) int {
	if numWords == 0 {
		return 0
	}
	return (wordOps + numWords - 1) / numWords
}

// Problem is a gen/kill bit-vector data-flow problem. With
// flow-side = IN for forward problems applied as
//
//	IN(n)  = meet over preds m of OUT(m)        (boundary at no preds)
//	OUT(n) = GEN(n) ∨ (IN(n) ∧ ¬KILL(n))
//
// and symmetrically for backward problems
//
//	OUT(n) = meet over succs m of IN(m)         (boundary at no succs)
//	IN(n)  = GEN(n) ∨ (OUT(n) ∧ ¬KILL(n))
type Problem struct {
	// Name labels the problem in stats output.
	Name string
	Dir  Direction
	Meet Meet
	// Width is the number of bits per node (e.g. the expression universe
	// size).
	Width int
	// Gen and Kill are per-node vectors; both must be NumNodes×Width.
	Gen, Kill *bitvec.Matrix
	// Boundary is the meet input at boundary nodes.
	Boundary Boundary
	// Fuel bounds the solver's node visits; 0 means unlimited. A problem
	// whose fixpoint is not reached within Fuel visits fails with a
	// FuelError instead of iterating further, so a buggy (non-monotone)
	// transfer function cannot spin the process.
	Fuel int
	// Ctx, when non-nil, lets the caller abandon the solve: the solvers
	// poll it at iteration boundaries (each sweep, and every
	// cancelInterval node visits within a sweep) and fail with a
	// *CancelError once it is done. Nil means "never canceled".
	Ctx context.Context
	// Scratch, when non-nil, supplies the solver's traversal order and
	// working storage from a shared arena instead of fresh allocations.
	// The solution is identical either way; see Scratch. The caller owns
	// the Result matrices and releases back to the arena whichever side
	// it does not keep.
	Scratch *Scratch
	// Strategy selects the solver; the zero value Auto picks by problem
	// shape. Every strategy reaches the identical fixpoint (DESIGN.md
	// §11); tests force specific strategies to assert exactly that.
	Strategy Strategy
}

// check validates the problem's shape against the graph. It is the shared
// precondition of both solvers.
func (p *Problem) check(g Graph) error {
	n := g.NumNodes()
	if p.Gen == nil || p.Kill == nil {
		return fmt.Errorf("dataflow: %s: nil gen/kill matrix", p.Name)
	}
	if p.Gen.Rows() != n || p.Kill.Rows() != n || p.Gen.Cols() != p.Width || p.Kill.Cols() != p.Width {
		return fmt.Errorf("dataflow: %s: gen %dx%d / kill %dx%d do not match graph (%d nodes) and width %d",
			p.Name, p.Gen.Rows(), p.Gen.Cols(), p.Kill.Rows(), p.Kill.Cols(), n, p.Width)
	}
	return nil
}

// Result holds the fixpoint solution and solver statistics.
type Result struct {
	// In and Out are the per-node solution matrices, indexed by node.
	In, Out *bitvec.Matrix
	Stats   Stats
}

// Stats records solver effort, the efficiency currency of experiment T4.
type Stats struct {
	// Name echoes the problem name.
	Name string
	// Passes is the number of full round-robin sweeps, including the last
	// (unchanged) confirming sweep.
	Passes int
	// NodeVisits is the number of node evaluations.
	NodeVisits int
	// VectorOps counts whole-bit-vector operations (and/or/andnot/copy),
	// the unit the PRE-efficiency literature reports.
	VectorOps int
}

// Add accumulates other into s (keeping s's name).
func (s *Stats) Add(other Stats) {
	s.Passes += other.Passes
	s.NodeVisits += other.NodeVisits
	s.VectorOps += other.VectorOps
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d passes, %d node visits, %d vector ops", s.Name, s.Passes, s.NodeVisits, s.VectorOps)
}

// Solve runs the problem to its (unique) fixed point over g. The iteration
// order is reverse postorder for forward problems and postorder for
// backward ones, computed over reachable nodes; nodes unreachable in the
// iteration direction keep their initial value.
//
// Solve dispatches on p.Strategy (Auto resolves by problem shape); every
// strategy computes the identical solution, so callers never observe the
// choice except through Stats and wall time.
//
// Solve fails with a descriptive error when the gen/kill matrices do not
// match the graph and width, with a FuelError when p.Fuel is positive and
// exhausted before the fixed point, and with a CancelError when p.Ctx is
// done before the fixed point.
func Solve(g Graph, p *Problem) (*Result, error) {
	if err := p.check(g); err != nil {
		return nil, err
	}
	switch p.pick(g) {
	case Sliced:
		return solveSliced(g, p)
	case Sparse:
		return solveSparse(g, p)
	}
	return solveSerial(g, p)
}

// solveSerial is the reference solver: round-robin sweeps over the whole
// vector of every node until a sweep changes nothing.
//
// The sweep works on the matrices' flat word backing rather than per-row
// Vector views: most functions have a universe of at most a word or two,
// so a Row header, a bounds check, and a method dispatch per node visit
// would cost more than the word math itself. The meet-side adjacency is
// flattened once per solve for the same reason — two interface calls per
// edge per pass become one flat index load. None of this changes what is
// computed; the op accounting below mirrors the vector formulation
// exactly, so Stats stays the comparable currency of experiment T4.
func solveSerial(g Graph, p *Problem) (*Result, error) {
	n := g.NumNodes()
	var in, out *bitvec.Matrix
	if p.Scratch != nil {
		in, out = p.Scratch.Matrix(n, p.Width), p.Scratch.Matrix(n, p.Width)
	} else {
		in, out = bitvec.NewMatrix(n, p.Width), bitvec.NewMatrix(n, p.Width)
	}
	res := &Result{In: in, Out: out}
	res.Stats.Name = p.Name

	stride := in.Stride()
	lastMask := ^uint64(0)
	if rem := uint(p.Width) & 63; rem != 0 {
		lastMask = (uint64(1) << rem) - 1
	}

	// The dataflow orientation: fi is the meet result side, fo the
	// transferred side neighbors read. For backward problems they live in
	// the opposite matrices.
	fiMat, foMat := in, out
	if p.Dir != Forward {
		fiMat, foMat = out, in
	}

	// Initialize the flow-side values to top so a Must meet can descend.
	// For May problems bottom (empty) is the correct start.
	if p.Meet == Must && stride > 0 {
		w := foMat.Data()
		for i := range w {
			w[i] = ^uint64(0)
		}
		for r := 0; r < n; r++ {
			w[r*stride+stride-1] &= lastMask
		}
	}

	// Flatten the meet-side adjacency: offs[i]..offs[i+1] index the
	// sources whose fo rows meet into node i.
	offs := p.ints(n + 1)
	total := 0
	for i := 0; i < n; i++ {
		offs[i] = int32(total)
		if p.Dir == Forward {
			total += g.NumPreds(i)
		} else {
			total += g.NumSuccs(i)
		}
	}
	offs[n] = int32(total)
	edges := p.ints(total)
	for i := 0; i < n; i++ {
		e := int(offs[i])
		if p.Dir == Forward {
			for k := 0; e+k < int(offs[i+1]); k++ {
				edges[e+k] = int32(g.Pred(i, k))
			}
		} else {
			for k := 0; e+k < int(offs[i+1]); k++ {
				edges[e+k] = int32(g.Succ(i, k))
			}
		}
	}

	order := p.order(g)
	fiW, foW := fiMat.Data(), foMat.Data()
	genW, killW := p.Gen.Data(), p.Kill.Data()
	meet := p.words(stride)
	release := func() {
		p.releaseInts(offs, edges)
		p.releaseWords(meet)
	}
	fail := func(err error) (*Result, error) {
		release()
		if p.Scratch != nil {
			p.Scratch.Release(in, out)
		}
		return nil, err
	}

	for {
		if err := Canceled(p.Ctx, p.Name); err != nil {
			return fail(err)
		}
		res.Stats.Passes++
		changed := false
		for _, node := range order {
			res.Stats.NodeVisits++
			if p.Fuel > 0 && res.Stats.NodeVisits > p.Fuel {
				return fail(&FuelError{Problem: p.Name, Fuel: p.Fuel})
			}
			if res.Stats.NodeVisits%cancelInterval == 0 {
				if err := Canceled(p.Ctx, p.Name); err != nil {
					return fail(err)
				}
			}
			base := node * stride
			e0, e1 := int(offs[node]), int(offs[node+1])

			// Meet. Each source counts as one vector op, exactly as the
			// vector formulation counted its CopyFrom/And/Or per source.
			if e0 == e1 {
				if p.Boundary == BoundaryFull {
					for k := 0; k < stride; k++ {
						meet[k] = ^uint64(0)
					}
					if stride > 0 {
						meet[stride-1] &= lastMask
					}
				} else {
					for k := 0; k < stride; k++ {
						meet[k] = 0
					}
				}
			} else {
				sb := int(edges[e0]) * stride
				copy(meet, foW[sb:sb+stride])
				res.Stats.VectorOps++
				if p.Meet == Must {
					for e := e0 + 1; e < e1; e++ {
						sb := int(edges[e]) * stride
						sw := foW[sb : sb+stride]
						for k := 0; k < stride; k++ {
							meet[k] &= sw[k]
						}
						res.Stats.VectorOps++
					}
				} else {
					for e := e0 + 1; e < e1; e++ {
						sb := int(edges[e]) * stride
						sw := foW[sb : sb+stride]
						for k := 0; k < stride; k++ {
							meet[k] |= sw[k]
						}
						res.Stats.VectorOps++
					}
				}
			}
			for k := 0; k < stride; k++ {
				if fiW[base+k] != meet[k] {
					fiW[base+k] = meet[k]
					changed = true
				}
			}
			res.Stats.VectorOps++

			// Transfer, fused into one word sweep:
			//   flowOut = gen ∨ (flowIn ∧ ¬kill)
			// Accounted as the three logical ops (andnot, or, copy) it
			// replaces.
			for k := 0; k < stride; k++ {
				nv := genW[base+k] | (meet[k] &^ killW[base+k])
				if foW[base+k] != nv {
					foW[base+k] = nv
					changed = true
				}
			}
			res.Stats.VectorOps += 3
		}
		if !changed {
			release()
			return res, nil
		}
	}
}

// iterationOrder returns reverse postorder from boundary nodes for forward
// problems, and reverse postorder of the reversed graph for backward ones.
// Nodes unreachable from any boundary node are appended afterwards so they
// still stabilize.
func iterationOrder(g Graph, dir Direction) []int {
	n := g.NumNodes()
	seen := make([]bool, n)
	post := make([]int, 0, n)

	degree := func(i int) int {
		if dir == Forward {
			return g.NumPreds(i)
		}
		return g.NumSuccs(i)
	}
	next := func(i, k int) int {
		if dir == Forward {
			return g.Succ(i, k)
		}
		return g.Pred(i, k)
	}
	fanout := func(i int) int {
		if dir == Forward {
			return g.NumSuccs(i)
		}
		return g.NumPreds(i)
	}

	type frame struct{ node, i int }
	var stack []frame
	dfs := func(root int) {
		if seen[root] {
			return
		}
		seen[root] = true
		stack = append(stack, frame{node: root})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.i < fanout(fr.node) {
				s := next(fr.node, fr.i)
				fr.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{node: s})
				}
				continue
			}
			post = append(post, fr.node)
			stack = stack[:len(stack)-1]
		}
	}
	for i := 0; i < n; i++ {
		if degree(i) == 0 {
			dfs(i)
		}
	}
	for i := 0; i < n; i++ {
		dfs(i)
	}
	// Reverse postorder.
	order := make([]int, len(post))
	for i, v := range post {
		order[len(post)-1-i] = v
	}
	return order
}
