package dataflow

import "sync/atomic"

// Process-wide solver telemetry. The counters are cheap monotonic atomics
// bumped at solve granularity (never inside hot loops beyond a single Add
// per solve), surfaced on lcmd's /healthz and /readyz and folded into the
// lcmgate fleet summary, so the chaos soak can assert that the parallel
// and sparse paths actually engage under load rather than silently
// falling back to serial.
var (
	telemetryParallelSlices atomic.Int64
	telemetrySparseSkips    atomic.Int64
)

// TelemetryCounters is a snapshot of the solver engagement counters.
type TelemetryCounters struct {
	// ParallelSlices counts word-column slices solved by concurrent
	// goroutines across all sliced solves.
	ParallelSlices int64
	// SparseSkips counts vector words the sparse worklist did NOT touch
	// at node evaluations because they were already stable.
	SparseSkips int64
}

// Telemetry returns the current counter snapshot.
func Telemetry() TelemetryCounters {
	return TelemetryCounters{
		ParallelSlices: telemetryParallelSlices.Load(),
		SparseSkips:    telemetrySparseSkips.Load(),
	}
}
