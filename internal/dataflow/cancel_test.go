package dataflow

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSolveCanceledContext: both solvers abandon a solve promptly when the
// context is already done, and the error is structured — it unwraps to
// ErrCanceled and to the concrete context error.
func TestSolveCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, solve := range []struct {
		name string
		run  func(g Graph, p *Problem) (*Result, error)
	}{
		{"Solve", Solve},
		{"SolveWorklist", SolveWorklist},
	} {
		p := availProblem(Must)
		p.Ctx = ctx
		res, err := solve.run(diamondG(), p)
		if err == nil {
			t.Fatalf("%s: succeeded under a canceled context", solve.name)
		}
		if res != nil {
			t.Errorf("%s: non-nil result alongside error", solve.name)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: error does not unwrap to ErrCanceled: %v", solve.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error does not unwrap to context.Canceled: %v", solve.name, err)
		}
		var ce *CancelError
		if !errors.As(err, &ce) || ce.Problem != "avail" {
			t.Errorf("%s: error is not a *CancelError naming the problem: %v", solve.name, err)
		}
	}
}

// TestSolveDeadlineDistinguishable: a deadline expiry is distinguishable
// from an explicit cancel through errors.Is.
func TestSolveDeadlineDistinguishable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	p := availProblem(Must)
	p.Ctx = ctx
	_, err := Solve(diamondG(), p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to context.DeadlineExceeded: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("deadline error claims to be an explicit cancel: %v", err)
	}
	if errors.Is(err, ErrFuelExhausted) {
		t.Errorf("cancellation must not be confused with fuel exhaustion: %v", err)
	}
}

// TestSolveNilContext: a nil context means "never canceled" — the zero
// Problem keeps working unchanged.
func TestSolveNilContext(t *testing.T) {
	p := availProblem(Must)
	if p.Ctx != nil {
		t.Fatal("test premise broken: zero problem has a context")
	}
	if _, err := Solve(diamondG(), p); err != nil {
		t.Fatalf("nil-context solve failed: %v", err)
	}
}

// TestCanceledHelper: the package-level helper used by external fixpoints.
func TestCanceledHelper(t *testing.T) {
	if err := Canceled(nil, "x"); err != nil {
		t.Errorf("nil context reported canceled: %v", err)
	}
	if err := Canceled(context.Background(), "x"); err != nil {
		t.Errorf("live context reported canceled: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx, "pp")
	if err == nil {
		t.Fatal("done context not reported")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("helper error badly structured: %v", err)
	}
}
