package dataflow

import "lazycm/internal/ir"

// BlockGraph adapts an ir.Function's basic-block CFG to the Graph
// interface, indexing nodes by block ID. The function's Recompute must be
// current.
type BlockGraph struct {
	F *ir.Function
}

// NumNodes implements Graph.
func (g BlockGraph) NumNodes() int { return g.F.NumBlocks() }

// NumSuccs implements Graph.
func (g BlockGraph) NumSuccs(n int) int { return g.F.Blocks[n].NumSuccs() }

// Succ implements Graph.
func (g BlockGraph) Succ(n, i int) int { return g.F.Blocks[n].Succ(i).ID }

// NumPreds implements Graph.
func (g BlockGraph) NumPreds(n int) int { return len(g.F.Blocks[n].Preds()) }

// Pred implements Graph.
func (g BlockGraph) Pred(n, i int) int { return g.F.Blocks[n].Preds()[i].ID }
