package dataflow

import (
	"context"
	"errors"
	"testing"

	"lazycm/internal/bitvec"
	"lazycm/internal/conc"
)

// scratchGraph is a small diamond with a back edge, enough to need a
// second sweep.
func scratchGraph() *sliceGraph {
	return newSliceGraph(6,
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 1}, {4, 5}})
}

// scratchProblem builds a deterministic Must/forward problem over g.
func scratchProblem(n, w int, sc *Scratch) *Problem {
	gen := bitvec.NewMatrix(n, w)
	kill := bitvec.NewMatrix(n, w)
	for i := 0; i < n; i++ {
		gen.Set(i, i%w)
		kill.Set(i, (i+1)%w)
	}
	return &Problem{
		Name: "scratch-test", Dir: Forward, Meet: Must, Width: w,
		Gen: gen, Kill: kill, Boundary: BoundaryEmpty, Scratch: sc,
	}
}

// TestScratchSolutionIdentical: the arena changes where storage comes
// from, never what is computed — solution and stats match the fresh
// allocation path exactly, for both solvers, and repeatedly so reused
// (dirty) storage is proven to be re-zeroed.
func TestScratchSolutionIdentical(t *testing.T) {
	g := scratchGraph()
	const w = 70 // force a partial last word
	sc := NewScratch()
	for _, solve := range []struct {
		name string
		fn   func(Graph, *Problem) (*Result, error)
	}{{"Solve", Solve}, {"SolveWorklist", SolveWorklist}} {
		fresh, err := solve.fn(g, scratchProblem(g.NumNodes(), w, nil))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			got, err := solve.fn(g, scratchProblem(g.NumNodes(), w, sc))
			if err != nil {
				t.Fatal(err)
			}
			if !got.In.Equal(fresh.In) || !got.Out.Equal(fresh.Out) {
				t.Fatalf("%s round %d: scratch solution differs from fresh", solve.name, round)
			}
			if got.Stats != fresh.Stats {
				t.Fatalf("%s round %d: stats %+v != fresh %+v", solve.name, round, got.Stats, fresh.Stats)
			}
			// Dirty the retained matrices, then hand them back: the next
			// round must still match, proving pooled storage is re-zeroed.
			got.In.Row(0).SetAll()
			got.Out.Row(0).SetAll()
			sc.Release(got.In, got.Out)
		}
	}
}

// TestScratchOrderCached: the traversal order is computed once per
// (graph, direction) and the cached slice is returned afterwards.
func TestScratchOrderCached(t *testing.T) {
	g := scratchGraph()
	sc := NewScratch()
	a := sc.Order(g, Forward)
	b := sc.Order(g, Forward)
	if &a[0] != &b[0] {
		t.Fatal("Order recomputed instead of cached")
	}
	want := iterationOrder(g, Forward)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("cached order %v != fresh %v", a, want)
		}
	}
	back := sc.Order(g, Backward)
	wantBack := iterationOrder(g, Backward)
	for i := range wantBack {
		if back[i] != wantBack[i] {
			t.Fatalf("backward order %v != fresh %v", back, wantBack)
		}
	}
}

// TestScratchConcurrentSolves: one arena shared by parallel solves over
// the same graph — the DSAFE/USAFE shape — races nothing (-race is the
// referee) and every solve still matches the fresh path.
func TestScratchConcurrentSolves(t *testing.T) {
	g := scratchGraph()
	const w = 33
	fresh, err := Solve(g, scratchProblem(g.NumNodes(), w, nil))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	var grp conc.Group
	for k := 0; k < 8; k++ {
		grp.Go(func() error {
			res, err := Solve(g, scratchProblem(g.NumNodes(), w, sc))
			if err != nil {
				return err
			}
			if !res.In.Equal(fresh.In) || !res.Out.Equal(fresh.Out) {
				return errors.New("concurrent scratch solve diverged")
			}
			sc.Release(res.In, res.Out)
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestScratchErrorPathsRelease: fuel and cancellation failures return
// their state to the arena (no pooled-storage leak) and still produce
// the same structured errors as the fresh path.
func TestScratchErrorPathsRelease(t *testing.T) {
	g := scratchGraph()
	sc := NewScratch()

	p := scratchProblem(g.NumNodes(), 8, sc)
	p.Fuel = 2
	if _, err := Solve(g, p); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("fuel err = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p2 := scratchProblem(g.NumNodes(), 8, sc)
	p2.Ctx = ctx
	if _, err := Solve(g, p2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel err = %v", err)
	}

	// The released matrices are reusable and clean.
	m := sc.Matrix(g.NumNodes(), 8)
	for i := 0; i < g.NumNodes(); i++ {
		if !m.Row(i).IsEmpty() {
			t.Fatal("pooled matrix not zeroed after error-path release")
		}
	}
}
