package dataflow

import "lazycm/internal/bitvec"

// SolveWorklist solves the same problem as Solve but with a classic
// worklist algorithm: a node is re-evaluated only when one of its
// meet-inputs changed. Both solvers reach the identical (unique) fixpoint
// — the lattice is finite and the transfer functions monotone — so the
// choice is purely an efficiency trade-off, which the benchmarks compare:
// round-robin sweeps in (reverse) postorder touch every node each pass but
// have perfect locality; the worklist touches only awakened nodes but pays
// queue overhead.
// Like Solve, it fails with a descriptive error on mismatched gen/kill
// dimensions, with a FuelError when p.Fuel is positive and exhausted, and
// with a CancelError when p.Ctx is done before the fixpoint.
func SolveWorklist(g Graph, p *Problem) (*Result, error) {
	if err := p.check(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	in, out, meetIn := p.state(n)
	res := &Result{In: in, Out: out}
	res.Stats.Name = p.Name
	if p.Meet == Must {
		for i := 0; i < n; i++ {
			if p.Dir == Forward {
				res.Out.Row(i).SetAll()
			} else {
				res.In.Row(i).SetAll()
			}
		}
	}

	// Seed the queue with every node in a good order and track membership
	// so nodes are not queued twice.
	order := p.order(g)
	queue := make([]int, len(order))
	copy(queue, order)
	queued := make([]bool, n)
	for _, node := range order {
		queued[node] = true
	}
	res.Stats.Passes = 1 // one conceptual pass; NodeVisits carries the cost

	if err := Canceled(p.Ctx, p.Name); err != nil {
		p.releaseState(in, out, meetIn)
		return nil, err
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		queued[node] = false
		res.Stats.NodeVisits++
		if p.Fuel > 0 && res.Stats.NodeVisits > p.Fuel {
			p.releaseState(in, out, meetIn)
			return nil, &FuelError{Problem: p.Name, Fuel: p.Fuel}
		}
		if res.Stats.NodeVisits%cancelInterval == 0 {
			if err := Canceled(p.Ctx, p.Name); err != nil {
				p.releaseState(in, out, meetIn)
				return nil, err
			}
		}

		var flowIn, flowOut *bitvec.Vector
		var degree int
		if p.Dir == Forward {
			flowIn, flowOut = res.In.Row(node), res.Out.Row(node)
			degree = g.NumPreds(node)
		} else {
			flowIn, flowOut = res.Out.Row(node), res.In.Row(node)
			degree = g.NumSuccs(node)
		}

		if degree == 0 {
			if p.Boundary == BoundaryFull {
				meetIn.SetAll()
			} else {
				meetIn.ClearAll()
			}
		} else {
			first := true
			for i := 0; i < degree; i++ {
				var src *bitvec.Vector
				if p.Dir == Forward {
					src = res.Out.Row(g.Pred(node, i))
				} else {
					src = res.In.Row(g.Succ(node, i))
				}
				if first {
					meetIn.CopyFrom(src)
					first = false
				} else if p.Meet == Must {
					meetIn.And(src)
				} else {
					meetIn.Or(src)
				}
				res.Stats.VectorOps++
			}
		}
		flowIn.CopyFrom(meetIn)
		res.Stats.VectorOps++

		// Fused transfer: flowOut = gen ∨ (flowIn ∧ ¬kill), accounted as
		// the andnot/or/copy chain it replaces (see Solve).
		changed := flowOut.OrAndNotOf(p.Gen.Row(node), flowIn, p.Kill.Row(node))
		res.Stats.VectorOps += 3
		if !changed {
			continue
		}

		// Awaken dependents.
		var fanout int
		if p.Dir == Forward {
			fanout = g.NumSuccs(node)
		} else {
			fanout = g.NumPreds(node)
		}
		for i := 0; i < fanout; i++ {
			var dep int
			if p.Dir == Forward {
				dep = g.Succ(node, i)
			} else {
				dep = g.Pred(node, i)
			}
			if !queued[dep] {
				queued[dep] = true
				queue = append(queue, dep)
			}
		}
	}
	if p.Scratch != nil {
		p.Scratch.ReleaseVector(meetIn)
	}
	return res, nil
}
