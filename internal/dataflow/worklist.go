package dataflow

import "lazycm/internal/bitvec"

// SolveWorklist solves the same problem as Solve but with a sparse masked
// worklist: a node is re-evaluated only when one of its meet-inputs
// changed, and only on the 64-bit words that actually changed. The fused
// bit-vector ops report a changed-word mask (see bitvec's mask
// conventions, including the saturating tail bucket for vectors wider
// than 64 words), and that mask is what propagates to dependents — so one
// churning expression re-propagates its own word instead of re-sweeping
// the whole vector. Both solvers reach the identical (unique) fixpoint —
// the lattice is finite and the transfer functions monotone (DESIGN.md
// §11) — so the choice is purely an efficiency trade-off.
//
// The queue is intrusive and allocation-free on the steady state: an
// index ring of capacity NumNodes (membership-deduped by a bitset, so it
// can never overflow) plus a per-node pending-word mask, all drawn from
// the scratch arena when the problem carries one.
//
// Like Solve, it fails with a descriptive error on mismatched gen/kill
// dimensions, with a FuelError when p.Fuel is positive and exhausted, and
// with a CancelError when p.Ctx is done before the fixpoint.
func SolveWorklist(g Graph, p *Problem) (*Result, error) {
	if err := p.check(g); err != nil {
		return nil, err
	}
	return solveSparse(g, p)
}

func solveSparse(g Graph, p *Problem) (*Result, error) {
	n := g.NumNodes()
	nw := numWordsFor(p.Width)
	in, out, meetIn := p.state(n)
	res := &Result{In: in, Out: out}
	res.Stats.Name = p.Name
	if p.Meet == Must {
		for i := 0; i < n; i++ {
			if p.Dir == Forward {
				res.Out.Row(i).SetAll()
			} else {
				res.In.Row(i).SetAll()
			}
		}
	}

	full := bitvec.AllWordsMask(nw)
	if full == 0 {
		// Width 0: masks cannot represent any words, but every node must
		// still be evaluated once so Stats match the dense behavior. A
		// mask bit beyond the word count makes every masked op a no-op.
		full = 1
	}

	// Seed the queue with every node in a good order. ring is an intrusive
	// index ring: capacity n, membership tracked in the queuedBits bitset,
	// so a node is never enqueued twice and the ring can never overflow.
	// pending[v] accumulates the changed-word masks of v's inputs since v
	// was last evaluated.
	order := p.order(g)
	ring := p.ints(n)
	queuedBits := p.words((n + 63) >> 6)
	pending := p.words(n)
	releaseAll := func() {
		p.releaseState(in, out, meetIn)
		p.releaseInts(ring)
		p.releaseWords(queuedBits, pending)
	}
	for i, node := range order {
		ring[i] = int32(node)
		queuedBits[node>>6] |= 1 << (uint(node) & 63)
		pending[node] = full
	}
	head, count := 0, len(order)
	res.Stats.Passes = 1 // one conceptual pass; NodeVisits carries the cost
	wordOps, skippedWords := 0, 0

	if err := Canceled(p.Ctx, p.Name); err != nil {
		releaseAll()
		return nil, err
	}
	for count > 0 {
		node := int(ring[head])
		head++
		if head == n {
			head = 0
		}
		count--
		queuedBits[node>>6] &^= 1 << (uint(node) & 63)
		mask := pending[node]
		pending[node] = 0

		res.Stats.NodeVisits++
		covered := bitvec.MaskWordCount(mask, nw)
		if covered > nw {
			covered = nw // the width-0 sentinel bit covers no real word
		}
		skippedWords += nw - covered
		if p.Fuel > 0 && res.Stats.NodeVisits > p.Fuel {
			releaseAll()
			return nil, &FuelError{Problem: p.Name, Fuel: p.Fuel}
		}
		if res.Stats.NodeVisits%cancelInterval == 0 {
			if err := Canceled(p.Ctx, p.Name); err != nil {
				releaseAll()
				return nil, err
			}
		}

		var flowIn, flowOut *bitvec.Vector
		var degree int
		if p.Dir == Forward {
			flowIn, flowOut = res.In.Row(node), res.Out.Row(node)
			degree = g.NumPreds(node)
		} else {
			flowIn, flowOut = res.Out.Row(node), res.In.Row(node)
			degree = g.NumSuccs(node)
		}

		// Meet, restricted to the pending words. meetIn's words outside
		// the mask are stale from earlier visits, but only masked words
		// are read downstream.
		if degree == 0 {
			if p.Boundary == BoundaryFull {
				meetIn.SetAllMask(mask)
			} else {
				meetIn.ClearAllMask(mask)
			}
		} else {
			first := true
			for i := 0; i < degree; i++ {
				var src *bitvec.Vector
				if p.Dir == Forward {
					src = res.Out.Row(g.Pred(node, i))
				} else {
					src = res.In.Row(g.Succ(node, i))
				}
				if first {
					meetIn.CopyFromMask(src, mask)
					first = false
				} else if p.Meet == Must {
					meetIn.AndMask(src, mask)
				} else {
					meetIn.OrMask(src, mask)
				}
				wordOps += covered
			}
		}
		flowIn.CopyFromMask(meetIn, mask)
		wordOps += covered

		// Fused masked transfer: flowOut = gen ∨ (flowIn ∧ ¬kill) on the
		// pending words, accounted as the andnot/or/copy chain it
		// replaces (see solveSerial). Bit b of OUT depends only on bit b
		// of IN, so the changed-word mask it returns is exactly the set
		// of words dependents must reconsider.
		outChanged := flowOut.OrAndNotOfMask(p.Gen.Row(node), flowIn, p.Kill.Row(node), mask)
		wordOps += 3 * covered
		if outChanged == 0 {
			continue
		}

		// Awaken dependents for the changed words only.
		var fanout int
		if p.Dir == Forward {
			fanout = g.NumSuccs(node)
		} else {
			fanout = g.NumPreds(node)
		}
		for i := 0; i < fanout; i++ {
			var dep int
			if p.Dir == Forward {
				dep = g.Succ(node, i)
			} else {
				dep = g.Pred(node, i)
			}
			pending[dep] |= outChanged
			if queuedBits[dep>>6]&(1<<(uint(dep)&63)) == 0 {
				queuedBits[dep>>6] |= 1 << (uint(dep) & 63)
				tail := head + count
				if tail >= n {
					tail -= n
				}
				ring[tail] = int32(dep)
				count++
			}
		}
	}
	res.Stats.VectorOps = normVectorOps(wordOps, nw)
	telemetrySparseSkips.Add(int64(skippedWords))
	p.releaseInts(ring)
	p.releaseWords(queuedBits, pending)
	if p.Scratch != nil {
		p.Scratch.ReleaseVector(meetIn)
	}
	return res, nil
}
