package dataflow

import (
	"sync"

	"lazycm/internal/bitvec"
)

// Scratch is a reusable analysis arena: it caches the (reverse) postorder
// traversal per graph and direction, and pools bit-vector matrices and
// meet vectors so a sequence of solves — the four LCM problems, liveness,
// repeated pipeline passes — stops reallocating its working state for
// every analysis.
//
// A Scratch never changes what a solver computes, only where its storage
// comes from: the cached order is exactly the order iterationOrder would
// recompute (the traversal is deterministic for a fixed graph), and every
// pooled matrix or vector is zeroed before reuse, which is the same state
// a fresh allocation starts in. See DESIGN.md "Shared analysis scratch".
//
// Scratch is safe for concurrent use, so independent problems over the
// same graph (DSAFE and USAFE) can share one arena while solving in
// parallel. The zero value is not ready; use NewScratch.
type Scratch struct {
	mu     sync.Mutex
	orders map[orderKey][]int
	mats   []*bitvec.Matrix
	vecs   []*bitvec.Vector
	ints   [][]int32
	words  [][]uint64
}

type orderKey struct {
	g   Graph
	dir Direction
}

// maxOrderGraphs bounds the order cache: a scratch shared across many
// graphs (a long batch) keeps only the most recent handful of traversals
// rather than growing without bound.
const maxOrderGraphs = 8

// maxPooled bounds each pool; beyond it, released storage is dropped for
// the garbage collector instead of hoarded.
//
// The pools match by capacity, not exact shape: a matrix released by one
// analysis is reshaped (bitvec.Matrix.Reshape) over its backing for the
// next analysis's dimensions. Exact-shape pooling looked the same on a
// benchmark that replays one function, but a batch over many functions —
// the server's steady state, the experiment drivers — never sees the
// same shape twice in a row, and an arena that can only recycle exact
// shapes degenerates there to an allocator with extra steps.
const maxPooled = 32

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{orders: make(map[orderKey][]int)}
}

// Order returns the iteration order for g in the given direction,
// computing it on first use and serving the cached copy afterwards. The
// returned slice is shared and must be treated as read-only; concurrent
// solvers over the same graph read the same slice.
func (s *Scratch) Order(g Graph, dir Direction) []int {
	k := orderKey{g: g, dir: dir}
	s.mu.Lock()
	if o, ok := s.orders[k]; ok {
		s.mu.Unlock()
		return o
	}
	s.mu.Unlock()
	// Compute outside the lock: traversal cost dominates, and two racing
	// computations of the same deterministic order are harmless.
	o := iterationOrder(g, dir)
	s.mu.Lock()
	if len(s.orders) >= 2*maxOrderGraphs { // both directions per graph
		s.orders = make(map[orderKey][]int)
	}
	s.orders[k] = o
	s.mu.Unlock()
	return o
}

// Matrix returns a zeroed rows×cols matrix, recycling the best-fitting
// released one — the smallest backing that still holds the shape — so
// small requests do not strand large backings.
func (s *Scratch) Matrix(rows, cols int) *bitvec.Matrix {
	need := rows * ((cols + 63) >> 6)
	s.mu.Lock()
	best := -1
	bestWords := 0
	for i, m := range s.mats {
		rc, wc := m.Caps()
		if rc < rows || wc < need {
			continue
		}
		if best < 0 || wc < bestWords {
			best, bestWords = i, wc
		}
	}
	if best >= 0 {
		m := s.mats[best]
		last := len(s.mats) - 1
		s.mats[best] = s.mats[last]
		s.mats = s.mats[:last]
		s.mu.Unlock()
		m.Reshape(rows, cols)
		return m
	}
	s.mu.Unlock()
	return bitvec.NewMatrix(rows, cols)
}

// Release returns matrices to the pool for reuse. A released matrix must
// no longer be referenced by the caller — the next Matrix call may hand
// it out reshaped and zeroed. nil entries are ignored, so callers can
// release unconditionally on error paths.
func (s *Scratch) Release(ms ...*bitvec.Matrix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range ms {
		if m == nil {
			continue
		}
		if len(s.mats) < maxPooled {
			s.mats = append(s.mats, m)
		}
	}
}

// Vector returns a zeroed vector of length n from the pool.
func (s *Scratch) Vector(n int) *bitvec.Vector {
	need := (n + 63) >> 6
	s.mu.Lock()
	best := -1
	bestWords := 0
	for i, v := range s.vecs {
		wc := v.WordCap()
		if wc < need {
			continue
		}
		if best < 0 || wc < bestWords {
			best, bestWords = i, wc
		}
	}
	if best >= 0 {
		v := s.vecs[best]
		last := len(s.vecs) - 1
		s.vecs[best] = s.vecs[last]
		s.vecs = s.vecs[:last]
		s.mu.Unlock()
		v.Reshape(n)
		return v
	}
	s.mu.Unlock()
	return bitvec.New(n)
}

// ReleaseVector returns vectors to the pool. Like Release, a released
// vector must not be used again by the caller; nils are ignored.
func (s *Scratch) ReleaseVector(vs ...*bitvec.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		if len(s.vecs) < maxPooled {
			s.vecs = append(s.vecs, v)
		}
	}
}

// Ints returns an int32 slice of length n from the pool, contents
// unspecified. The solvers use it for flattened adjacency and the sparse
// worklist for its intrusive index ring.
func (s *Scratch) Ints(n int) []int32 {
	s.mu.Lock()
	best := -1
	bestCap := 0
	for i, v := range s.ints {
		if c := cap(v); c >= n && (best < 0 || c < bestCap) {
			best, bestCap = i, c
		}
	}
	if best >= 0 {
		v := s.ints[best]
		last := len(s.ints) - 1
		s.ints[best] = s.ints[last]
		s.ints = s.ints[:last]
		s.mu.Unlock()
		return v[:n]
	}
	s.mu.Unlock()
	return make([]int32, n)
}

// ReleaseInts returns int32 slices to the pool; nils are ignored.
func (s *Scratch) ReleaseInts(vs ...[]int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		if len(s.ints) < maxPooled {
			s.ints = append(s.ints, v[:cap(v)])
		}
	}
}

// Words returns a zeroed uint64 slice of length n from the pool. The
// sparse worklist uses it for its membership bitset and pending-word
// masks, both of which rely on a zeroed start.
func (s *Scratch) Words(n int) []uint64 {
	s.mu.Lock()
	best := -1
	bestCap := 0
	for i, v := range s.words {
		if c := cap(v); c >= n && (best < 0 || c < bestCap) {
			best, bestCap = i, c
		}
	}
	if best >= 0 {
		v := s.words[best]
		last := len(s.words) - 1
		s.words[best] = s.words[last]
		s.words = s.words[:last]
		s.mu.Unlock()
		v = v[:n]
		clear(v)
		return v
	}
	s.mu.Unlock()
	return make([]uint64, n)
}

// ReleaseWords returns uint64 slices to the pool; nils are ignored.
func (s *Scratch) ReleaseWords(vs ...[]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		if len(s.words) < maxPooled {
			s.words = append(s.words, v[:cap(v)])
		}
	}
}

// ints, words and their release counterparts resolve against the scratch
// arena when the problem carries one, falling back to fresh allocations.
func (p *Problem) ints(n int) []int32 {
	if p.Scratch != nil {
		return p.Scratch.Ints(n)
	}
	return make([]int32, n)
}

func (p *Problem) releaseInts(vs ...[]int32) {
	if p.Scratch != nil {
		p.Scratch.ReleaseInts(vs...)
	}
}

func (p *Problem) words(n int) []uint64 {
	if p.Scratch != nil {
		return p.Scratch.Words(n)
	}
	return make([]uint64, n)
}

func (p *Problem) releaseWords(vs ...[]uint64) {
	if p.Scratch != nil {
		p.Scratch.ReleaseWords(vs...)
	}
}

// order resolves the iteration order for a problem: the scratch cache
// when the problem carries one, a fresh traversal otherwise.
func (p *Problem) order(g Graph) []int {
	if p.Scratch != nil {
		return p.Scratch.Order(g, p.Dir)
	}
	return iterationOrder(g, p.Dir)
}

// state allocates the solver's working state, drawing from the scratch
// arena when available.
func (p *Problem) state(n int) (in, out *bitvec.Matrix, meet *bitvec.Vector) {
	if p.Scratch != nil {
		return p.Scratch.Matrix(n, p.Width), p.Scratch.Matrix(n, p.Width), p.Scratch.Vector(p.Width)
	}
	return bitvec.NewMatrix(n, p.Width), bitvec.NewMatrix(n, p.Width), bitvec.New(p.Width)
}

// releaseState returns failed-solve state to the arena so error paths
// (fuel, cancellation) do not leak pooled storage.
func (p *Problem) releaseState(in, out *bitvec.Matrix, meet *bitvec.Vector) {
	if p.Scratch == nil {
		return
	}
	p.Scratch.Release(in, out)
	p.Scratch.ReleaseVector(meet)
}
