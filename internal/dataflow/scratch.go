package dataflow

import (
	"sync"

	"lazycm/internal/bitvec"
)

// Scratch is a reusable analysis arena: it caches the (reverse) postorder
// traversal per graph and direction, and pools bit-vector matrices and
// meet vectors so a sequence of solves — the four LCM problems, liveness,
// repeated pipeline passes — stops reallocating its working state for
// every analysis.
//
// A Scratch never changes what a solver computes, only where its storage
// comes from: the cached order is exactly the order iterationOrder would
// recompute (the traversal is deterministic for a fixed graph), and every
// pooled matrix or vector is zeroed before reuse, which is the same state
// a fresh allocation starts in. See DESIGN.md "Shared analysis scratch".
//
// Scratch is safe for concurrent use, so independent problems over the
// same graph (DSAFE and USAFE) can share one arena while solving in
// parallel. The zero value is not ready; use NewScratch.
type Scratch struct {
	mu     sync.Mutex
	orders map[orderKey][]int
	mats   map[matKey][]*bitvec.Matrix
	vecs   map[int][]*bitvec.Vector
}

type orderKey struct {
	g   Graph
	dir Direction
}

type matKey struct{ rows, cols int }

// maxOrderGraphs bounds the order cache: a scratch shared across many
// graphs (a long batch) keeps only the most recent handful of traversals
// rather than growing without bound.
const maxOrderGraphs = 8

// maxPooled bounds each pool bucket; beyond it, released storage is
// dropped for the garbage collector instead of hoarded.
const maxPooled = 16

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{
		orders: make(map[orderKey][]int),
		mats:   make(map[matKey][]*bitvec.Matrix),
		vecs:   make(map[int][]*bitvec.Vector),
	}
}

// Order returns the iteration order for g in the given direction,
// computing it on first use and serving the cached copy afterwards. The
// returned slice is shared and must be treated as read-only; concurrent
// solvers over the same graph read the same slice.
func (s *Scratch) Order(g Graph, dir Direction) []int {
	k := orderKey{g: g, dir: dir}
	s.mu.Lock()
	if o, ok := s.orders[k]; ok {
		s.mu.Unlock()
		return o
	}
	s.mu.Unlock()
	// Compute outside the lock: traversal cost dominates, and two racing
	// computations of the same deterministic order are harmless.
	o := iterationOrder(g, dir)
	s.mu.Lock()
	if len(s.orders) >= 2*maxOrderGraphs { // both directions per graph
		s.orders = make(map[orderKey][]int)
	}
	s.orders[k] = o
	s.mu.Unlock()
	return o
}

// Matrix returns a zeroed rows×cols matrix, recycling a released one when
// the pool has a match.
func (s *Scratch) Matrix(rows, cols int) *bitvec.Matrix {
	k := matKey{rows: rows, cols: cols}
	s.mu.Lock()
	bucket := s.mats[k]
	if n := len(bucket); n > 0 {
		m := bucket[n-1]
		s.mats[k] = bucket[:n-1]
		s.mu.Unlock()
		m.ClearAll()
		return m
	}
	s.mu.Unlock()
	return bitvec.NewMatrix(rows, cols)
}

// Release returns matrices to the pool for reuse. A released matrix must
// no longer be referenced by the caller — the next Matrix call with the
// same shape may hand it out zeroed. nil entries are ignored, so callers
// can release unconditionally on error paths.
func (s *Scratch) Release(ms ...*bitvec.Matrix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range ms {
		if m == nil {
			continue
		}
		k := matKey{rows: m.Rows(), cols: m.Cols()}
		if len(s.mats[k]) < maxPooled {
			s.mats[k] = append(s.mats[k], m)
		}
	}
}

// Vector returns a zeroed vector of length n from the pool.
func (s *Scratch) Vector(n int) *bitvec.Vector {
	s.mu.Lock()
	bucket := s.vecs[n]
	if l := len(bucket); l > 0 {
		v := bucket[l-1]
		s.vecs[n] = bucket[:l-1]
		s.mu.Unlock()
		v.ClearAll()
		return v
	}
	s.mu.Unlock()
	return bitvec.New(n)
}

// ReleaseVector returns vectors to the pool. Like Release, a released
// vector must not be used again by the caller; nils are ignored.
func (s *Scratch) ReleaseVector(vs ...*bitvec.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		if len(s.vecs[v.Len()]) < maxPooled {
			s.vecs[v.Len()] = append(s.vecs[v.Len()], v)
		}
	}
}

// order resolves the iteration order for a problem: the scratch cache
// when the problem carries one, a fresh traversal otherwise.
func (p *Problem) order(g Graph) []int {
	if p.Scratch != nil {
		return p.Scratch.Order(g, p.Dir)
	}
	return iterationOrder(g, p.Dir)
}

// state allocates the solver's working state, drawing from the scratch
// arena when available.
func (p *Problem) state(n int) (in, out *bitvec.Matrix, meet *bitvec.Vector) {
	if p.Scratch != nil {
		return p.Scratch.Matrix(n, p.Width), p.Scratch.Matrix(n, p.Width), p.Scratch.Vector(p.Width)
	}
	return bitvec.NewMatrix(n, p.Width), bitvec.NewMatrix(n, p.Width), bitvec.New(p.Width)
}

// releaseState returns failed-solve state to the arena so error paths
// (fuel, cancellation) do not leak pooled storage.
func (p *Problem) releaseState(in, out *bitvec.Matrix, meet *bitvec.Vector) {
	if p.Scratch == nil {
		return
	}
	p.Scratch.Release(in, out)
	p.Scratch.ReleaseVector(meet)
}
