package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lazycm/internal/bitvec"
)

// randGraph builds a random digraph of n nodes: a spine 0→1→…→n-1 plus
// extra random edges (including back edges), so both directions have
// boundary nodes and real cycles.
func randGraph(rng *rand.Rand, n int) *sliceGraph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	extra := n / 2
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return newSliceGraph(n, edges)
}

func randMatrix(rng *rand.Rand, rows, cols int) *bitvec.Matrix {
	m := bitvec.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		// Sparse-ish rows: set ~1/8 of the bits.
		for b := 0; b < cols; b += 1 + rng.Intn(15) {
			m.Set(i, b)
		}
	}
	return m
}

// TestSolverEquivalence is the randomized harness the correctness of the
// sliced and sparse strategies rests on: for random graphs, random
// gen/kill sets, every direction × meet × boundary combination, and
// widths spanning one word to past the tail bucket, the three solvers
// must produce bit-identical In and Out matrices. Run under -race in CI,
// it also proves the sliced solver's disjoint-word-column claim.
func TestSolverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	widths := []int{1, 63, 64, 65, 300, 4200} // 4200 bits = 66 words: tail bucket
	if testing.Short() {
		widths = []int{1, 65, 300}
	}
	sc := NewScratch()
	for _, width := range widths {
		for trial := 0; trial < 4; trial++ {
			n := 2 + rng.Intn(200)
			g := randGraph(rng, n)
			gen := randMatrix(rng, n, width)
			kill := randMatrix(rng, n, width)
			for _, dir := range []Direction{Forward, Backward} {
				for _, meet := range []Meet{Must, May} {
					for _, bnd := range []Boundary{BoundaryEmpty, BoundaryFull} {
						name := fmt.Sprintf("w%d/n%d/%v/%v/b%d", width, n, dir, meet, bnd)
						base := Problem{
							Name: name, Dir: dir, Meet: meet, Width: width,
							Gen: gen, Kill: kill, Boundary: bnd,
						}
						pSerial := base
						pSerial.Strategy = Serial
						ref, err := Solve(g, &pSerial)
						if err != nil {
							t.Fatalf("%s serial: %v", name, err)
						}
						for _, strat := range []Strategy{Sliced, Sparse} {
							// With and without a shared scratch arena.
							for _, scratch := range []*Scratch{nil, sc} {
								p := base
								p.Strategy = strat
								p.Scratch = scratch
								got, err := Solve(g, &p)
								if err != nil {
									t.Fatalf("%s %v: %v", name, strat, err)
								}
								if !got.In.Equal(ref.In) || !got.Out.Equal(ref.Out) {
									t.Fatalf("%s: %v result differs from serial reference", name, strat)
								}
								if scratch != nil {
									scratch.Release(got.In, got.Out)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSolverEquivalenceAuto pins the dispatcher: whatever Auto picks must
// match the serial reference on shapes that cross the dispatch thresholds.
func TestSolverEquivalenceAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ n, width int }{
		{10, 40},                    // serial
		{slicedMinNodes + 10, 300},  // sliced
		{sparseMinNodes + 100, 40},  // sparse
		{sparseMinNodes + 100, 300}, // sliced (wide wins)
	}
	for _, sh := range shapes {
		g := randGraph(rng, sh.n)
		gen := randMatrix(rng, sh.n, sh.width)
		kill := randMatrix(rng, sh.n, sh.width)
		base := Problem{
			Name: "auto", Dir: Backward, Meet: Must, Width: sh.width,
			Gen: gen, Kill: kill, Boundary: BoundaryEmpty,
		}
		pSerial := base
		pSerial.Strategy = Serial
		ref, err := Solve(g, &pSerial)
		if err != nil {
			t.Fatal(err)
		}
		pAuto := base
		got, err := Solve(g, &pAuto)
		if err != nil {
			t.Fatal(err)
		}
		if !got.In.Equal(ref.In) || !got.Out.Equal(ref.Out) {
			t.Fatalf("n=%d width=%d: auto (%v) differs from serial", sh.n, sh.width, base.pick(g))
		}
	}
}

// TestSparseTelemetryCounts verifies the sparse solver reports skipped
// words once the fixpoint localizes: on a long chain with one generating
// node, later visits must cover far less than the whole vector.
func TestSparseTelemetryCounts(t *testing.T) {
	before := Telemetry()
	n, width := 600, 1 // narrow + deep: Auto goes sparse
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := newSliceGraph(n, edges)
	gen := bitvec.NewMatrix(n, width)
	kill := bitvec.NewMatrix(n, width)
	gen.Set(0, 0)
	p := &Problem{Name: "chain", Dir: Forward, Meet: Must, Width: width, Gen: gen, Kill: kill}
	if _, err := Solve(g, p); err != nil {
		t.Fatal(err)
	}
	if got := p.pick(g); got != Sparse {
		t.Fatalf("auto picked %v, want sparse", got)
	}
	// Width 1 = 1 word: nothing skippable. Use a wide forced-sparse solve
	// over a cyclic graph (revisits carry partial masks) to observe skips.
	rng := rand.New(rand.NewSource(3))
	widew := 300
	gw := randGraph(rng, n)
	genW := randMatrix(rng, n, widew)
	killW := randMatrix(rng, n, widew)
	pw := &Problem{Name: "wide", Dir: Forward, Meet: Must, Width: widew, Gen: genW, Kill: killW, Strategy: Sparse}
	if _, err := Solve(gw, pw); err != nil {
		t.Fatal(err)
	}
	after := Telemetry()
	if after.SparseSkips <= before.SparseSkips {
		t.Fatalf("sparse skips did not advance: %d -> %d", before.SparseSkips, after.SparseSkips)
	}
}

// TestSlicedTelemetryCounts verifies a wide solve advances the parallel
// slice counter.
func TestSlicedTelemetryCounts(t *testing.T) {
	before := Telemetry()
	rng := rand.New(rand.NewSource(9))
	n, width := slicedMinNodes+20, 700
	g := randGraph(rng, n)
	p := &Problem{
		Name: "wide", Dir: Forward, Meet: Must, Width: width,
		Gen: randMatrix(rng, n, width), Kill: randMatrix(rng, n, width),
	}
	if got := p.pick(g); got != Sliced {
		t.Fatalf("auto picked %v, want sliced", got)
	}
	if _, err := Solve(g, p); err != nil {
		t.Fatal(err)
	}
	after := Telemetry()
	if after.ParallelSlices <= before.ParallelSlices {
		t.Fatalf("parallel slices did not advance: %d -> %d", before.ParallelSlices, after.ParallelSlices)
	}
}

// TestSlicedErrorPaths checks fuel exhaustion and cancellation surface
// from the sliced solver the same way they do from the serial one.
func TestSlicedErrorPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, width := 50, 300
	g := randGraph(rng, n)
	p := &Problem{
		Name: "fuel", Dir: Forward, Meet: Must, Width: width,
		Gen: randMatrix(rng, n, width), Kill: randMatrix(rng, n, width),
		Fuel: 3, Strategy: Sliced,
	}
	if _, err := Solve(g, p); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("expected fuel error, got %v", err)
	}
}
