package dataflow

import (
	"runtime"

	"lazycm/internal/bitvec"
	"lazycm/internal/conc"
)

// Word-sliced parallel solving: a gen/kill bit-vector problem is bitwise
// independent — bit b of any node's OUT depends only on bit b of its
// inputs — so it is word-independent too. solveSliced partitions the
// expression universe into contiguous 64-bit-word ranges and runs the
// serial algorithm once per range, concurrently, against the SAME shared
// In/Out matrices. Each slice reads and writes only its own word columns
// of every row; writes to disjoint elements of a []uint64 are race-free
// under the Go memory model, so the slices need no synchronization until
// the final join. The fixpoint of each slice is exactly the projection of
// the serial fixpoint onto its words (DESIGN.md §11), so the joined result
// is bit-identical to the serial one. This composes with the per-function
// batch parallelism above it: slices are nested inside whatever worker is
// already solving this function.

// maxSlices caps the goroutines per solve; beyond the machine's
// parallelism extra slices only add scheduling overhead. The floor of two
// keeps the sliced path alive on single-CPU machines: slices interleave
// on one thread, and a slice whose words converge early stops sweeping —
// work the serial solver would keep redoing until the slowest word
// stabilizes.
func maxSlices() int {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	if p < 2 {
		p = 2
	}
	return p
}

// sliceStats is one slice's private effort tally, joined after Wait.
type sliceStats struct {
	passes  int
	visits  int
	wordOps int
}

func solveSliced(g Graph, p *Problem) (*Result, error) {
	n := g.NumNodes()
	nw := numWordsFor(p.Width)
	slices := nw / 2 // at least two words per slice
	if m := maxSlices(); slices > m {
		slices = m
	}
	if slices <= 1 || n == 0 {
		return solveSerial(g, p)
	}

	in, out, meet0 := p.state(n)
	res := &Result{In: in, Out: out}
	res.Stats.Name = p.Name
	order := p.order(g)

	meets := make([]*bitvec.Vector, slices)
	meets[0] = meet0
	for k := 1; k < slices; k++ {
		if p.Scratch != nil {
			meets[k] = p.Scratch.Vector(p.Width)
		} else {
			meets[k] = bitvec.New(p.Width)
		}
	}
	stats := make([]sliceStats, slices)

	var grp conc.Group
	for k := 0; k < slices; k++ {
		k := k
		lo, hi := k*nw/slices, (k+1)*nw/slices
		grp.Go(func() error {
			st, err := p.solveSlice(g, in, out, order, meets[k], lo, hi)
			stats[k] = st
			return err
		})
	}
	err := grp.Wait()
	if p.Scratch != nil {
		p.Scratch.ReleaseVector(meets...)
	}
	if err != nil {
		if p.Scratch != nil {
			p.Scratch.Release(in, out)
		}
		return nil, err
	}

	// Join the effort tallies into serial-comparable units: the slices ran
	// the same sweeps side by side, so Passes/NodeVisits are the maximum
	// over slices (what a serial solver of the slowest slice would report),
	// and VectorOps normalizes total word-ops by the vector width.
	wordOps := 0
	for _, st := range stats {
		if st.passes > res.Stats.Passes {
			res.Stats.Passes = st.passes
		}
		if st.visits > res.Stats.NodeVisits {
			res.Stats.NodeVisits = st.visits
		}
		wordOps += st.wordOps
	}
	res.Stats.VectorOps = normVectorOps(wordOps, nw)
	telemetryParallelSlices.Add(int64(slices))
	return res, nil
}

// solveSlice runs the serial algorithm restricted to words [lo, hi) of
// every vector. Fuel is a per-slice node-visit budget (the same bound the
// serial solver applies to its single lane), and cancellation is polled on
// the same cadence.
func (p *Problem) solveSlice(g Graph, in, out *bitvec.Matrix, order []int, meetIn *bitvec.Vector, lo, hi int) (sliceStats, error) {
	var st sliceStats
	n := g.NumNodes()
	width := hi - lo

	// Initialize this slice's words of the flow side to top for Must.
	if p.Meet == Must {
		for i := 0; i < n; i++ {
			if p.Dir == Forward {
				out.Row(i).SetAllRange(lo, hi)
			} else {
				in.Row(i).SetAllRange(lo, hi)
			}
		}
	}

	for {
		if err := Canceled(p.Ctx, p.Name); err != nil {
			return st, err
		}
		st.passes++
		changed := false
		for _, node := range order {
			st.visits++
			if p.Fuel > 0 && st.visits > p.Fuel {
				return st, &FuelError{Problem: p.Name, Fuel: p.Fuel}
			}
			if st.visits%cancelInterval == 0 {
				if err := Canceled(p.Ctx, p.Name); err != nil {
					return st, err
				}
			}
			var flowIn, flowOut *bitvec.Vector
			var degree int
			if p.Dir == Forward {
				flowIn, flowOut = in.Row(node), out.Row(node)
				degree = g.NumPreds(node)
			} else {
				flowIn, flowOut = out.Row(node), in.Row(node)
				degree = g.NumSuccs(node)
			}

			// Meet, restricted to this slice's words.
			if degree == 0 {
				if p.Boundary == BoundaryFull {
					meetIn.SetAllRange(lo, hi)
				} else {
					meetIn.ClearAllRange(lo, hi)
				}
			} else {
				first := true
				for i := 0; i < degree; i++ {
					var src *bitvec.Vector
					if p.Dir == Forward {
						src = out.Row(g.Pred(node, i))
					} else {
						src = in.Row(g.Succ(node, i))
					}
					if first {
						meetIn.CopyFromRange(src, lo, hi)
						first = false
					} else if p.Meet == Must {
						meetIn.AndRange(src, lo, hi)
					} else {
						meetIn.OrRange(src, lo, hi)
					}
					st.wordOps += width
				}
			}
			if flowIn.CopyFromRange(meetIn, lo, hi) {
				changed = true
			}
			st.wordOps += width

			// Fused transfer on this slice's words, accounted as the
			// andnot/or/copy chain it replaces (see solveSerial).
			if flowOut.OrAndNotOfRange(p.Gen.Row(node), flowIn, p.Kill.Row(node), lo, hi) {
				changed = true
			}
			st.wordOps += 3 * width
		}
		if !changed {
			return st, nil
		}
	}
}
