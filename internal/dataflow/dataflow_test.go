package dataflow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lazycm/internal/bitvec"
	"lazycm/internal/ir"
)

// sliceGraph is a test graph given by adjacency lists.
type sliceGraph struct {
	succs [][]int
	preds [][]int
}

func newSliceGraph(n int, edges [][2]int) *sliceGraph {
	g := &sliceGraph{succs: make([][]int, n), preds: make([][]int, n)}
	for _, e := range edges {
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	return g
}

func (g *sliceGraph) NumNodes() int      { return len(g.succs) }
func (g *sliceGraph) NumSuccs(n int) int { return len(g.succs[n]) }
func (g *sliceGraph) Succ(n, i int) int  { return g.succs[n][i] }
func (g *sliceGraph) NumPreds(n int) int { return len(g.preds[n]) }
func (g *sliceGraph) Pred(n, i int) int  { return g.preds[n][i] }

// diamondG: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
func diamondG() *sliceGraph {
	return newSliceGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

// availability on the diamond: expression generated in node 1 only.
// IN(3) must be empty under Must (not generated along 0->2) and set under
// May (generated along 0->1).
func availProblem(meet Meet) *Problem {
	gen := bitvec.NewMatrix(4, 1)
	kill := bitvec.NewMatrix(4, 1)
	gen.Set(1, 0)
	return &Problem{Name: "avail", Dir: Forward, Meet: meet, Width: 1, Gen: gen, Kill: kill, Boundary: BoundaryEmpty}
}

// mustSolve runs Solve and fails the test on error.
func mustSolve(t *testing.T, g Graph, p *Problem) *Result {
	t.Helper()
	res, err := Solve(g, p)
	if err != nil {
		t.Fatalf("Solve(%s): %v", p.Name, err)
	}
	return res
}

func TestForwardMust(t *testing.T) {
	res := mustSolve(t, diamondG(), availProblem(Must))
	if res.In.Get(3, 0) {
		t.Error("Must: expr available at join despite missing on one path")
	}
	if !res.Out.Get(1, 0) {
		t.Error("OUT(1) should hold the generated expr")
	}
	if res.In.Get(0, 0) || res.Out.Get(0, 0) {
		t.Error("entry should be empty with BoundaryEmpty")
	}
}

func TestForwardMay(t *testing.T) {
	res := mustSolve(t, diamondG(), availProblem(May))
	if !res.In.Get(3, 0) {
		t.Error("May: expr partially available at join")
	}
	if res.In.Get(2, 0) {
		t.Error("node 2 has no generating predecessor")
	}
}

func TestKill(t *testing.T) {
	// 0 -> 1 -> 2; gen at 0, kill at 1.
	g := newSliceGraph(3, [][2]int{{0, 1}, {1, 2}})
	gen := bitvec.NewMatrix(3, 1)
	kill := bitvec.NewMatrix(3, 1)
	gen.Set(0, 0)
	kill.Set(1, 0)
	res := mustSolve(t, g, &Problem{Name: "k", Dir: Forward, Meet: Must, Width: 1, Gen: gen, Kill: kill, Boundary: BoundaryEmpty})
	if !res.In.Get(1, 0) {
		t.Error("IN(1) should see gen from 0")
	}
	if res.Out.Get(1, 0) || res.In.Get(2, 0) {
		t.Error("kill at 1 should stop propagation")
	}
}

func TestBackwardMust(t *testing.T) {
	// Anticipatability on the diamond: expression computed in 1 and 2.
	// OUT(0) must be set (computed on both arms). If only in 1: unset.
	g := diamondG()
	gen := bitvec.NewMatrix(4, 1)
	kill := bitvec.NewMatrix(4, 1)
	gen.Set(1, 0)
	gen.Set(2, 0)
	res := mustSolve(t, g, &Problem{Name: "ant", Dir: Backward, Meet: Must, Width: 1, Gen: gen, Kill: kill, Boundary: BoundaryEmpty})
	if !res.Out.Get(0, 0) {
		t.Error("anticipatable on both arms but OUT(0) unset")
	}
	gen2 := bitvec.NewMatrix(4, 1)
	gen2.Set(1, 0)
	res2 := mustSolve(t, g, &Problem{Name: "ant2", Dir: Backward, Meet: Must, Width: 1, Gen: gen2, Kill: kill, Boundary: BoundaryEmpty})
	if res2.Out.Get(0, 0) {
		t.Error("anticipatable on one arm only but OUT(0) set")
	}
}

func TestBoundaryFullBackward(t *testing.T) {
	// With BoundaryFull, a backward Must problem starts true at exits:
	// with no gens/kills everything becomes true everywhere.
	g := newSliceGraph(3, [][2]int{{0, 1}, {1, 2}})
	gen := bitvec.NewMatrix(3, 2)
	kill := bitvec.NewMatrix(3, 2)
	res := mustSolve(t, g, &Problem{Name: "b", Dir: Backward, Meet: Must, Width: 2, Gen: gen, Kill: kill, Boundary: BoundaryFull})
	for n := 0; n < 3; n++ {
		if res.In.Row(n).Count() != 2 || res.Out.Row(n).Count() != 2 {
			t.Errorf("node %d not saturated: in=%v out=%v", n, res.In.Row(n), res.Out.Row(n))
		}
	}
}

func TestLoopFixpoint(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3. Availability generated at 0,
	// killed nowhere: must remain available through the loop.
	g := newSliceGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}})
	gen := bitvec.NewMatrix(4, 1)
	kill := bitvec.NewMatrix(4, 1)
	gen.Set(0, 0)
	res := mustSolve(t, g, &Problem{Name: "loop", Dir: Forward, Meet: Must, Width: 1, Gen: gen, Kill: kill, Boundary: BoundaryEmpty})
	for n := 1; n < 4; n++ {
		if !res.In.Get(n, 0) {
			t.Errorf("IN(%d) lost availability in loop", n)
		}
	}
	// Now kill inside the loop at node 2: nothing after 2 (and via the
	// back edge, nothing at 1 either on the second pass) stays available.
	kill.Set(2, 0)
	res = mustSolve(t, g, &Problem{Name: "loop2", Dir: Forward, Meet: Must, Width: 1, Gen: gen, Kill: kill, Boundary: BoundaryEmpty})
	if res.In.Get(1, 0) {
		t.Error("IN(1) should be killed via back edge")
	}
	if res.In.Get(3, 0) {
		t.Error("IN(3) should be killed")
	}
}

func TestStatsPopulated(t *testing.T) {
	res := mustSolve(t, diamondG(), availProblem(Must))
	s := res.Stats
	if s.Name != "avail" || s.Passes < 2 || s.NodeVisits < 8 || s.VectorOps == 0 {
		t.Errorf("stats implausible: %+v", s)
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.Passes != 2*s.Passes {
		t.Error("Stats.Add wrong")
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestDimensionMismatchError(t *testing.T) {
	_, err := Solve(diamondG(), &Problem{Name: "bad", Width: 1, Gen: bitvec.NewMatrix(3, 1), Kill: bitvec.NewMatrix(4, 1)})
	if err == nil {
		t.Fatal("no error on dimension mismatch")
	}
	if _, err := Solve(diamondG(), &Problem{Name: "nil", Width: 1}); err == nil {
		t.Fatal("no error on nil gen/kill")
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := availProblem(Must)
	p.Fuel = 3 // the diamond needs at least 2 sweeps x 4 nodes
	_, err := Solve(diamondG(), p)
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("Solve: want ErrFuelExhausted, got %v", err)
	}
	var fe *FuelError
	if !errors.As(err, &fe) || fe.Problem != "avail" || fe.Fuel != 3 {
		t.Fatalf("FuelError fields wrong: %+v", err)
	}
	if _, err := SolveWorklist(diamondG(), p); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("SolveWorklist: want ErrFuelExhausted, got %v", err)
	}

	// With enough fuel both solvers converge and the budget is inert.
	p.Fuel = 1 << 20
	if _, err := Solve(diamondG(), p); err != nil {
		t.Fatalf("ample fuel: %v", err)
	}
	if _, err := SolveWorklist(diamondG(), p); err != nil {
		t.Fatalf("ample fuel (worklist): %v", err)
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := availProblem(Must)
	a := mustSolve(t, diamondG(), p)
	for i := 0; i < 5; i++ {
		b := mustSolve(t, diamondG(), p)
		if !a.In.Equal(b.In) || !a.Out.Equal(b.Out) || a.Stats != b.Stats {
			t.Fatal("solver nondeterministic")
		}
	}
}

func TestBlockGraphAdapter(t *testing.T) {
	f, err := ir.NewBuilder("g", "c").
		Block("entry").Branch(ir.Var("c"), "a", "b").
		Block("a").Jump("join").
		Block("b").Jump("join").
		Block("join").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := BlockGraph{F: f}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumSuccs(0) != 2 || g.Succ(0, 0) != 1 || g.Succ(0, 1) != 2 {
		t.Error("successors wrong")
	}
	join := f.BlockByName("join").ID
	if g.NumPreds(join) != 2 {
		t.Error("join preds wrong")
	}
	if g.NumPreds(0) != 0 || g.NumSuccs(join) != 0 {
		t.Error("boundary degrees wrong")
	}
}

// TestQuickFixpointIsFixed verifies on random graphs that the returned
// solution actually satisfies the data-flow equations (it is a fixed
// point), for all four direction/meet combinations.
func TestQuickFixpointIsFixed(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		var edges [][2]int
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]int{i, i + 1}) // spine keeps it connected
		}
		extra := r.Intn(2 * n)
		for i := 0; i < extra; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		g := newSliceGraph(n, edges)
		w := 1 + r.Intn(9)
		gen := bitvec.NewMatrix(n, w)
		kill := bitvec.NewMatrix(n, w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				if r.Intn(3) == 0 {
					gen.Set(i, j)
				}
				if r.Intn(3) == 0 {
					kill.Set(i, j)
				}
			}
		}
		for _, dir := range []Direction{Forward, Backward} {
			for _, meet := range []Meet{Must, May} {
				bound := Boundary(r.Intn(2))
				p := &Problem{Name: "q", Dir: dir, Meet: meet, Width: w, Gen: gen, Kill: kill, Boundary: bound}
				res, err := Solve(g, p)
				if err != nil {
					return false
				}
				if !satisfies(g, p, res) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// satisfies re-evaluates the equations once and checks nothing changes.
func satisfies(g Graph, p *Problem, res *Result) bool {
	n := g.NumNodes()
	for node := 0; node < n; node++ {
		meetIn := bitvec.New(p.Width)
		var degree int
		if p.Dir == Forward {
			degree = g.NumPreds(node)
		} else {
			degree = g.NumSuccs(node)
		}
		if degree == 0 {
			if p.Boundary == BoundaryFull {
				meetIn.SetAll()
			}
		} else {
			first := true
			for i := 0; i < degree; i++ {
				var src *bitvec.Vector
				if p.Dir == Forward {
					src = res.Out.Row(g.Pred(node, i))
				} else {
					src = res.In.Row(g.Succ(node, i))
				}
				if first {
					meetIn.CopyFrom(src)
					first = false
				} else if p.Meet == Must {
					meetIn.And(src)
				} else {
					meetIn.Or(src)
				}
			}
		}
		var flowIn, flowOut *bitvec.Vector
		if p.Dir == Forward {
			flowIn, flowOut = res.In.Row(node), res.Out.Row(node)
		} else {
			flowIn, flowOut = res.Out.Row(node), res.In.Row(node)
		}
		if !flowIn.Equal(meetIn) {
			return false
		}
		tmp := meetIn.Copy()
		tmp.AndNot(p.Kill.Row(node))
		tmp.Or(p.Gen.Row(node))
		if !flowOut.Equal(tmp) {
			return false
		}
	}
	return true
}

func TestDirectionMeetStrings(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("Direction strings")
	}
	if Must.String() != "must" || May.String() != "may" {
		t.Error("Meet strings")
	}
}
