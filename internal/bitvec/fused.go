package bitvec

// Fused bulk operations: each is the word-level fusion of two or three
// primitive operations into a single pass over the words, writing the
// receiver as the destination. The data-flow solvers and the LCM
// predicate derivations are chains of exactly these shapes
// (gen ∨ (x ∧ ¬kill), (a ∨ b) ∧ c, …); fusing them removes both the
// extra memory sweeps and the temporary vectors the composed forms
// materialize. Each fused op reports whether the destination changed,
// so fixpoint solvers can drive their convergence test from it directly.

// AndOf sets v = a ∧ b and reports whether v changed.
func (v *Vector) AndOf(a, b *Vector) bool {
	v.checkSame(a)
	v.checkSame(b)
	changed := false
	for i := range v.words {
		nw := a.words[i] & b.words[i]
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// OrOf sets v = a ∨ b and reports whether v changed.
func (v *Vector) OrOf(a, b *Vector) bool {
	v.checkSame(a)
	v.checkSame(b)
	changed := false
	for i := range v.words {
		nw := a.words[i] | b.words[i]
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// AndNotOf sets v = a ∧ ¬b and reports whether v changed.
func (v *Vector) AndNotOf(a, b *Vector) bool {
	v.checkSame(a)
	v.checkSame(b)
	changed := false
	for i := range v.words {
		nw := a.words[i] &^ b.words[i]
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// NotOf sets v = ¬a (complement within the vector's length) and reports
// whether v changed.
func (v *Vector) NotOf(a *Vector) bool {
	v.checkSame(a)
	changed := false
	last := len(v.words) - 1
	for i := range v.words {
		nw := ^a.words[i]
		if i == last {
			if extra := v.n & wordMask; extra != 0 {
				nw &= (1 << uint(extra)) - 1
			}
		}
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// OrAndNotOf sets v = gen ∨ (src ∧ ¬kill) and reports whether v changed.
// This is the whole gen/kill transfer function of the data-flow framework
// in one sweep; the solvers use it with v = the flow-out row and
// src = the just-computed meet, eliminating the andnot/or/copy chain.
func (v *Vector) OrAndNotOf(gen, src, kill *Vector) bool {
	v.checkSame(gen)
	v.checkSame(src)
	v.checkSame(kill)
	changed := false
	for i := range v.words {
		nw := gen.words[i] | (src.words[i] &^ kill.words[i])
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// OrAndOf sets v = (a ∨ b) ∧ c and reports whether v changed. The
// EARLIEST derivation's per-predecessor term
// (DSAFE(m) ∨ USAFE(m)) ∧ TRANSP(m) is this shape.
func (v *Vector) OrAndOf(a, b, c *Vector) bool {
	v.checkSame(a)
	v.checkSame(b)
	v.checkSame(c)
	changed := false
	for i := range v.words {
		nw := (a.words[i] | b.words[i]) & c.words[i]
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// AndAndOf sets v = a ∧ b ∧ c and reports whether v changed.
func (v *Vector) AndAndOf(a, b, c *Vector) bool {
	v.checkSame(a)
	v.checkSame(b)
	v.checkSame(c)
	changed := false
	for i := range v.words {
		nw := a.words[i] & b.words[i] & c.words[i]
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}
