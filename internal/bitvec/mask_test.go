package bitvec

import (
	"math/rand"
	"testing"
)

func randomVector(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
	}
	return v
}

func TestAllWordsMask(t *testing.T) {
	cases := []struct {
		numWords int
		want     uint64
	}{
		{0, 0},
		{1, 1},
		{3, 0b111},
		{63, (1 << 63) - 1},
		{64, ^uint64(0)},
		{100, ^uint64(0)},
	}
	for _, c := range cases {
		if got := AllWordsMask(c.numWords); got != c.want {
			t.Errorf("AllWordsMask(%d) = %#x, want %#x", c.numWords, got, c.want)
		}
	}
}

func TestMaskWordCount(t *testing.T) {
	if got := MaskWordCount(0b101, 3); got != 2 {
		t.Errorf("MaskWordCount(0b101, 3) = %d, want 2", got)
	}
	// Tail bucket: bit 63 covers words 63..69 of a 70-word vector.
	if got := MaskWordCount(1<<63, 70); got != 7 {
		t.Errorf("MaskWordCount(tail, 70) = %d, want 7", got)
	}
	if got := MaskWordCount(AllWordsMask(70), 70); got != 70 {
		t.Errorf("MaskWordCount(all, 70) = %d, want 70", got)
	}
}

// TestMaskedOpsAgainstFull checks every masked op against its full-width
// counterpart: with a full mask the results must be identical, and with a
// partial mask only the covered words may differ from the starting value.
func TestMaskedOpsAgainstFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 4500 bits = 71 words, wide enough to exercise the tail bucket.
	for _, n := range []int{1, 64, 65, 130, 4500} {
		nw := (n + 63) / 64
		full := AllWordsMask(nw)
		for trial := 0; trial < 50; trial++ {
			a := randomVector(rng, n)
			b := randomVector(rng, n)
			gen := randomVector(rng, n)
			kill := randomVector(rng, n)

			// Full mask ⇒ identical to the unmasked op.
			got, want := a.Copy(), a.Copy()
			mask := got.CopyFromMask(b, full)
			changed := want.CopyFrom(b)
			if !got.Equal(want) {
				t.Fatalf("n=%d CopyFromMask(full) mismatch", n)
			}
			if (mask != 0) != changed {
				t.Fatalf("n=%d CopyFromMask changed mask %#x vs bool %v", n, mask, changed)
			}

			got, want = a.Copy(), a.Copy()
			mask = got.AndMask(b, full)
			changed = want.And(b)
			if !got.Equal(want) || (mask != 0) != changed {
				t.Fatalf("n=%d AndMask(full) mismatch", n)
			}

			got, want = a.Copy(), a.Copy()
			mask = got.OrMask(b, full)
			changed = want.Or(b)
			if !got.Equal(want) || (mask != 0) != changed {
				t.Fatalf("n=%d OrMask(full) mismatch", n)
			}

			got, want = a.Copy(), a.Copy()
			mask = got.OrAndNotOfMask(gen, b, kill, full)
			changed = want.OrAndNotOf(gen, b, kill)
			if !got.Equal(want) || (mask != 0) != changed {
				t.Fatalf("n=%d OrAndNotOfMask(full) mismatch", n)
			}

			got, want = a.Copy(), a.Copy()
			got.SetAllMask(full)
			want.SetAll()
			if !got.Equal(want) {
				t.Fatalf("n=%d SetAllMask(full) mismatch", n)
			}
			got, want = a.Copy(), a.Copy()
			got.ClearAllMask(full)
			want.ClearAll()
			if !got.Equal(want) {
				t.Fatalf("n=%d ClearAllMask(full) mismatch", n)
			}

			// Partial mask ⇒ covered words match the op, others untouched.
			partial := rng.Uint64() & full
			got = a.Copy()
			ret := got.OrAndNotOfMask(gen, b, kill, partial)
			want = a.Copy()
			want.OrAndNotOf(gen, b, kill)
			for wi := 0; wi < nw; wi++ {
				bit := wi
				if bit > maskTail {
					bit = maskTail
				}
				covered := partial&(1<<uint(bit)) != 0
				if covered && got.words[wi] != want.words[wi] {
					t.Fatalf("n=%d covered word %d not transformed", n, wi)
				}
				if !covered && got.words[wi] != a.words[wi] {
					t.Fatalf("n=%d uncovered word %d modified", n, wi)
				}
				if got.words[wi] != a.words[wi] && ret&(1<<uint(bit)) == 0 {
					t.Fatalf("n=%d changed word %d not reported in mask %#x", n, wi, ret)
				}
			}
		}
	}
}

// TestRangeOpsAgainstFull checks the word-range ops against the full-width
// counterparts on a partition of the word space, verifying that applying an
// op slice-by-slice over a full partition equals the unmasked op.
func TestRangeOpsAgainstFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 63, 64, 200, 1000} {
		nw := (n + 63) / 64
		for trial := 0; trial < 50; trial++ {
			a := randomVector(rng, n)
			b := randomVector(rng, n)
			gen := randomVector(rng, n)
			kill := randomVector(rng, n)
			// Random partition of [0, nw) into up to 4 slices.
			cuts := []int{0, nw}
			for i := 0; i < 3; i++ {
				cuts = append(cuts, rng.Intn(nw+1))
			}
			got, want := a.Copy(), a.Copy()
			anyChanged := false
			// Sort cuts.
			for i := range cuts {
				for j := i + 1; j < len(cuts); j++ {
					if cuts[j] < cuts[i] {
						cuts[i], cuts[j] = cuts[j], cuts[i]
					}
				}
			}
			for i := 0; i+1 < len(cuts); i++ {
				if got.OrAndNotOfRange(gen, b, kill, cuts[i], cuts[i+1]) {
					anyChanged = true
				}
			}
			changed := want.OrAndNotOf(gen, b, kill)
			if !got.Equal(want) || anyChanged != changed {
				t.Fatalf("n=%d OrAndNotOfRange partition mismatch", n)
			}

			got, want = a.Copy(), a.Copy()
			got.SetAllRange(0, nw)
			want.SetAll()
			if !got.Equal(want) {
				t.Fatalf("n=%d SetAllRange mismatch", n)
			}

			got, want = a.Copy(), a.Copy()
			if got.CopyFromRange(b, 0, nw) != want.CopyFrom(b) || !got.Equal(want) {
				t.Fatalf("n=%d CopyFromRange mismatch", n)
			}
			got, want = a.Copy(), a.Copy()
			if got.AndRange(b, 0, nw) != want.And(b) || !got.Equal(want) {
				t.Fatalf("n=%d AndRange mismatch", n)
			}
			got, want = a.Copy(), a.Copy()
			if got.OrRange(b, 0, nw) != want.Or(b) || !got.Equal(want) {
				t.Fatalf("n=%d OrRange mismatch", n)
			}
		}
	}
}

// TestSetAllRangeTrim verifies the trim invariant: setting the final word
// slice must not set bits beyond Len.
func TestSetAllRangeTrim(t *testing.T) {
	v := New(70) // 2 words, 6 live bits in word 1
	v.SetAllRange(1, 2)
	if v.Count() != 6 {
		t.Fatalf("SetAllRange trim: count = %d, want 6", v.Count())
	}
	w := New(70)
	w.SetAllMask(1 << 1)
	if w.Count() != 6 {
		t.Fatalf("SetAllMask trim: count = %d, want 6", w.Count())
	}
}

func TestFlatMatrixLayout(t *testing.T) {
	m := NewMatrix(5, 130)
	m.Set(0, 0)
	m.Set(4, 129)
	m.Set(2, 64)
	if !m.Get(0, 0) || !m.Get(4, 129) || !m.Get(2, 64) || m.Get(1, 0) {
		t.Fatal("flat matrix get/set mismatch")
	}
	c := m.Copy()
	if !c.Equal(m) {
		t.Fatal("copy not equal")
	}
	c.Clear(2, 64)
	if c.Equal(m) || m.Get(2, 64) == false {
		t.Fatal("copy aliases original")
	}
	m.ClearAll()
	for i := 0; i < 5; i++ {
		if !m.Row(i).IsEmpty() {
			t.Fatalf("row %d not cleared", i)
		}
	}
	// Row must return a stable pointer into the matrix (intrusive headers).
	if m.Row(3) != m.Row(3) {
		t.Fatal("Row not stable")
	}
}
