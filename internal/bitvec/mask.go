package bitvec

import "math/bits"

// Word masks: the sparse worklist solver tracks which 64-bit words of a
// node's vector are unstable, so a churning expression only re-propagates
// its own word instead of re-sweeping the whole vector. A mask is a uint64
// in which bit w stands for word w of the vector — except bit 63, which is
// a saturating "tail bucket" standing for every word ≥ 63 when the vector
// is wider than 64 words (4096 bits). Saturation trades precision for a
// fixed-size mask: pathologically wide universes degrade gracefully to
// coarser re-propagation, never to wrong results.
//
// Each masked operation below touches only the words the mask covers and
// returns the mask of words it actually changed. The returned mask uses the
// same tail-bucket convention, so masks compose: OR the result into a
// dependent node's pending mask and the unstable words flow through the
// graph exactly as far as they reach.

const maskTail = 63 // mask bit covering words maskTail..NumWords-1

// AllWordsMask returns the mask covering every word of a vector that is
// numWords words long.
func AllWordsMask(numWords int) uint64 {
	if numWords >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1) << uint(numWords)) - 1
}

// MaskWordCount returns how many words of a numWords-long vector the mask
// covers. The telemetry in the sparse solver uses it to count skipped words.
func MaskWordCount(mask uint64, numWords int) int {
	if numWords > wordBits && mask&(1<<maskTail) != 0 {
		return bits.OnesCount64(mask) - 1 + (numWords - maskTail)
	}
	return bits.OnesCount64(mask)
}

// NumWords returns the number of 64-bit words backing the vector.
func (v *Vector) NumWords() int { return len(v.words) }

// maskSpan returns the word range [lo, hi) covered by mask bit b, clamped
// to the vector's word count.
func maskSpan(b, numWords int) (int, int) {
	if b == maskTail && numWords > wordBits {
		return maskTail, numWords
	}
	if b >= numWords {
		return numWords, numWords
	}
	return b, b + 1
}

// CopyFromMask overwrites the masked words of v with those of o and returns
// the mask of words that changed.
func (v *Vector) CopyFromMask(o *Vector, mask uint64) uint64 {
	v.checkSame(o)
	nw := len(v.words)
	var changed uint64
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			if v.words[i] != o.words[i] {
				v.words[i] = o.words[i]
				changed |= 1 << uint(b)
			}
		}
	}
	return changed
}

// AndMask sets v = v ∧ o on the masked words and returns the mask of words
// that changed.
func (v *Vector) AndMask(o *Vector, mask uint64) uint64 {
	v.checkSame(o)
	nw := len(v.words)
	var changed uint64
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			w := v.words[i] & o.words[i]
			if w != v.words[i] {
				v.words[i] = w
				changed |= 1 << uint(b)
			}
		}
	}
	return changed
}

// OrMask sets v = v ∨ o on the masked words and returns the mask of words
// that changed.
func (v *Vector) OrMask(o *Vector, mask uint64) uint64 {
	v.checkSame(o)
	nw := len(v.words)
	var changed uint64
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			w := v.words[i] | o.words[i]
			if w != v.words[i] {
				v.words[i] = w
				changed |= 1 << uint(b)
			}
		}
	}
	return changed
}

// SetAllMask sets every bit of the masked words (respecting the vector's
// length in the final word).
func (v *Vector) SetAllMask(mask uint64) {
	nw := len(v.words)
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			v.words[i] = ^uint64(0)
		}
		if hi == nw {
			v.trim()
		}
	}
}

// ClearAllMask clears every bit of the masked words.
func (v *Vector) ClearAllMask(mask uint64) {
	nw := len(v.words)
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			v.words[i] = 0
		}
	}
}

// OrAndNotOfMask sets v = gen ∨ (src ∧ ¬kill) on the masked words — the
// whole gen/kill transfer restricted to the unstable words — and returns
// the mask of words that changed.
func (v *Vector) OrAndNotOfMask(gen, src, kill *Vector, mask uint64) uint64 {
	v.checkSame(gen)
	v.checkSame(src)
	v.checkSame(kill)
	nw := len(v.words)
	var changed uint64
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		lo, hi := maskSpan(b, nw)
		for i := lo; i < hi; i++ {
			w := gen.words[i] | (src.words[i] &^ kill.words[i])
			if w != v.words[i] {
				v.words[i] = w
				changed |= 1 << uint(b)
			}
		}
	}
	return changed
}
