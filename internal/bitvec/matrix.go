package bitvec

import "fmt"

// Matrix is a rows×cols bit matrix stored as one vector per row. It is the
// shape every data-flow state in this module takes: one row per node, one
// column per expression.
type Matrix struct {
	rows, cols int
	data       []*Vector
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitvec: negative matrix dimensions %d×%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]*Vector, rows)}
	for i := range m.data {
		m.data[i] = New(cols)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i. The returned vector is shared with the matrix; callers
// that need a private copy must Copy it.
func (m *Matrix) Row(i int) *Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitvec: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i]
}

// Get reports whether bit (row, col) is set.
func (m *Matrix) Get(row, col int) bool { return m.Row(row).Get(col) }

// Set sets bit (row, col).
func (m *Matrix) Set(row, col int) { m.Row(row).Set(col) }

// Clear clears bit (row, col).
func (m *Matrix) Clear(row, col int) { m.Row(row).Clear(col) }

// SetBool sets bit (row, col) to b.
func (m *Matrix) SetBool(row, col int, b bool) { m.Row(row).SetBool(col, b) }

// ClearAll clears every bit of every row, keeping the backing storage.
// Scratch arenas use it to recycle matrices between analyses.
func (m *Matrix) ClearAll() {
	for _, v := range m.data {
		v.ClearAll()
	}
}

// Copy returns an independent copy of m.
func (m *Matrix) Copy() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]*Vector, m.rows)}
	for i, v := range m.data {
		c.data[i] = v.Copy()
	}
	return c
}

// Equal reports whether m and o have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if !m.data[i].Equal(o.data[i]) {
			return false
		}
	}
	return true
}

// Column extracts column c as a fresh vector of length Rows.
func (m *Matrix) Column(c int) *Vector {
	v := New(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.data[i].Get(c) {
			v.Set(i)
		}
	}
	return v
}
