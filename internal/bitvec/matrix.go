package bitvec

import "fmt"

// Matrix is a rows×cols bit matrix. It is the shape every data-flow state in
// this module takes: one row per node, one column per expression.
//
// Storage is flat: a single []uint64 backing holds every row contiguously
// (stride words apiece) and a []Vector header slice aliases into it. A matrix
// is therefore three allocations regardless of its row count, where the
// previous one-words-slice-per-row layout cost 2·rows+1 — at depth-5 program
// scale that was the dominant allocation source of an entire analysis. The
// flat backing also makes ClearAll a single memclr and gives row sweeps
// perfect spatial locality.
type Matrix struct {
	rows, cols int
	stride     int // words per row
	vecs       []Vector
	words      []uint64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitvec: negative matrix dimensions %d×%d", rows, cols))
	}
	stride := (cols + wordMask) >> wordLog
	m := &Matrix{
		rows:   rows,
		cols:   cols,
		stride: stride,
		vecs:   make([]Vector, rows),
		words:  make([]uint64, rows*stride),
	}
	for i := range m.vecs {
		m.vecs[i] = Vector{n: cols, words: m.words[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i. The returned vector aliases the matrix backing; callers
// that need a private copy must Copy it.
func (m *Matrix) Row(i int) *Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitvec: row %d out of range [0,%d)", i, m.rows))
	}
	return &m.vecs[i]
}

// Stride returns the number of backing words per row.
func (m *Matrix) Stride() int { return m.stride }

// Data returns the flat backing storage: row i occupies
// Data()[i*Stride() : (i+1)*Stride()]. Mutating the slice mutates the
// matrix. The serial solver's hot loop indexes it directly so a sweep
// over narrow vectors does not pay a Row header and a method dispatch
// per visit.
func (m *Matrix) Data() []uint64 { return m.words }

// Get reports whether bit (row, col) is set.
func (m *Matrix) Get(row, col int) bool { return m.Row(row).Get(col) }

// Set sets bit (row, col).
func (m *Matrix) Set(row, col int) { m.Row(row).Set(col) }

// Clear clears bit (row, col).
func (m *Matrix) Clear(row, col int) { m.Row(row).Clear(col) }

// SetBool sets bit (row, col) to b.
func (m *Matrix) SetBool(row, col int, b bool) { m.Row(row).SetBool(col, b) }

// ClearAll clears every bit of every row, keeping the backing storage.
// Scratch arenas use it to recycle matrices between analyses.
func (m *Matrix) ClearAll() {
	clear(m.words)
}

// Caps returns the row and word capacities of the backing storage — the
// largest shapes Reshape can take without reallocating.
func (m *Matrix) Caps() (rows, words int) { return cap(m.vecs), cap(m.words) }

// Reshape re-forms m as a zeroed rows×cols matrix over its existing
// backing, returning false (and leaving m untouched) when the backing is
// too small. Scratch arenas use it to recycle a matrix released by one
// analysis for the differently-shaped state of the next, so a batch over
// many functions stops allocating once its largest shape has been seen.
func (m *Matrix) Reshape(rows, cols int) bool {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitvec: negative matrix dimensions %d×%d", rows, cols))
	}
	stride := (cols + wordMask) >> wordLog
	need := rows * stride
	if cap(m.words) < need || cap(m.vecs) < rows {
		return false
	}
	m.rows, m.cols, m.stride = rows, cols, stride
	m.words = m.words[:need]
	clear(m.words)
	m.vecs = m.vecs[:rows]
	for i := range m.vecs {
		m.vecs[i] = Vector{n: cols, words: m.words[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return true
}

// Copy returns an independent copy of m.
func (m *Matrix) Copy() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.words, m.words)
	return c
}

// Equal reports whether m and o have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.words {
		if m.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Column extracts column c as a fresh vector of length Rows.
func (m *Matrix) Column(c int) *Vector {
	v := New(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.vecs[i].Get(c) {
			v.Set(i)
		}
	}
	return v
}
